/**
 * @file
 * Thread-pool implementation.
 */

#include "sim/parallel.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace nocstar::sim
{

unsigned
defaultJobs()
{
    if (const char *env = std::getenv("NOCSTAR_JOBS")) {
        char *end = nullptr;
        long value = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && value > 0)
            return static_cast<unsigned>(value);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

unsigned
autoShards(unsigned tiles, unsigned jobs)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    unsigned budget = std::max(1u, hw / std::max(1u, jobs));
    return std::max(1u, std::min(tiles, budget));
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultJobs();
    // A single-worker pool runs everything inline in map(); only spawn
    // real workers when there is parallelism to exploit.
    if (threads <= 1)
        return;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    if (workers_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping_ and nothing left to run
            task = std::move(tasks_.front());
            tasks_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (tasks_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace nocstar::sim
