/**
 * @file
 * Checkpoint frame writer/reader implementation.
 */

#include "sim/checkpoint.hh"

#include <cstdio>

namespace nocstar::sim
{

namespace
{

constexpr std::uint32_t kMagic = ckptTag('N', 'C', 'K', 'P');

void
putLeInto(std::vector<std::uint8_t> &out, std::uint64_t v,
          unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
getLeFrom(const std::vector<std::uint8_t> &buf, std::size_t pos,
          unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
    return v;
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t hash)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

void
CkptWriter::begin(std::uint32_t tag)
{
    if (inSection_)
        panic("checkpoint section opened inside another section");
    inSection_ = true;
    putLe(tag, 4);
    sectionStart_ = buf_.size();
    putLe(0, 8); // length, patched by end()
}

void
CkptWriter::end()
{
    if (!inSection_)
        panic("checkpoint end() without begin()");
    inSection_ = false;
    std::uint64_t len = buf_.size() - sectionStart_ - 8;
    for (unsigned i = 0; i < 8; ++i)
        buf_[sectionStart_ + i] =
            static_cast<std::uint8_t>(len >> (8 * i));
}

std::vector<std::uint8_t>
CkptWriter::framed() const
{
    if (inSection_)
        panic("checkpoint framed() with an open section");
    std::vector<std::uint8_t> out;
    out.reserve(buf_.size() + 32);
    putLeInto(out, kMagic, 4);
    putLeInto(out, kCheckpointVersion, 4);
    putLeInto(out, fingerprint_, 8);
    putLeInto(out, buf_.size(), 8);
    out.insert(out.end(), buf_.begin(), buf_.end());
    putLeInto(out, fnv1a(out.data(), out.size()), 8);
    return out;
}

void
CkptWriter::save(const std::string &path) const
{
    std::vector<std::uint8_t> out = framed();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("checkpoint: cannot open '", path, "' for writing");
    std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
    bool flushed = std::fclose(f) == 0;
    if (written != out.size() || !flushed)
        fatal("checkpoint: short write to '", path, "'");
}

CkptReader::CkptReader(const std::string &path,
                       std::uint64_t expect_fingerprint)
    : path_(path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("checkpoint: cannot open '", path, "'");
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        fatal("checkpoint: cannot size '", path, "'");
    }
    buf_.resize(static_cast<std::size_t>(size));
    std::size_t got = buf_.empty()
                          ? 0
                          : std::fread(buf_.data(), 1, buf_.size(), f);
    std::fclose(f);
    if (got != buf_.size())
        fatal("checkpoint: short read from '", path, "'");

    // Header: magic, version, fingerprint, payload size; trailer:
    // checksum. 32 bytes total framing.
    if (buf_.size() < 32)
        fatal("checkpoint '", path, "': truncated (", buf_.size(),
              " bytes is smaller than the file header)");
    if (getLeFrom(buf_, 0, 4) != kMagic)
        fatal("checkpoint '", path, "': bad magic (not a checkpoint "
              "file)");
    std::uint64_t version = getLeFrom(buf_, 4, 4);
    if (version != kCheckpointVersion)
        fatal("checkpoint '", path, "': format version ", version,
              " but this build reads version ", kCheckpointVersion);
    std::uint64_t fingerprint = getLeFrom(buf_, 8, 8);
    if (fingerprint != expect_fingerprint)
        fatal("checkpoint '", path, "': configuration fingerprint ",
              fingerprint, " does not match this run's ",
              expect_fingerprint,
              " (the checkpoint was produced by a different system "
              "configuration)");
    std::uint64_t payload = getLeFrom(buf_, 16, 8);
    if (payload != buf_.size() - 32)
        fatal("checkpoint '", path, "': truncated (payload claims ",
              payload, " bytes, file holds ", buf_.size() - 32, ")");
    std::uint64_t stored = getLeFrom(buf_, buf_.size() - 8, 8);
    std::uint64_t computed = fnv1a(buf_.data(), buf_.size() - 8);
    if (stored != computed)
        fatal("checkpoint '", path, "': checksum mismatch (file is "
              "corrupted)");
    pos_ = 24;
    payloadEnd_ = buf_.size() - 8;
}

void
CkptReader::enter(std::uint32_t tag)
{
    if (inSection_)
        panic("checkpoint enter() inside a section");
    if (payloadEnd_ - pos_ < 12)
        fatal("checkpoint '", path_, "': expected another section but "
              "the payload is exhausted");
    std::uint32_t found =
        static_cast<std::uint32_t>(getLeFrom(buf_, pos_, 4));
    std::uint64_t len = getLeFrom(buf_, pos_ + 4, 8);
    if (found != tag)
        fatal("checkpoint '", path_, "': expected section ",
              static_cast<char>(tag >> 24),
              static_cast<char>((tag >> 16) & 0xff),
              static_cast<char>((tag >> 8) & 0xff),
              static_cast<char>(tag & 0xff), " but found ",
              static_cast<char>(found >> 24),
              static_cast<char>((found >> 16) & 0xff),
              static_cast<char>((found >> 8) & 0xff),
              static_cast<char>(found & 0xff));
    pos_ += 12;
    if (len > payloadEnd_ - pos_)
        fatal("checkpoint '", path_, "': section length ", len,
              " overruns the payload");
    sectionEnd_ = pos_ + static_cast<std::size_t>(len);
    inSection_ = true;
}

void
CkptReader::leave()
{
    if (!inSection_)
        panic("checkpoint leave() without enter()");
    if (pos_ != sectionEnd_)
        fatal("checkpoint '", path_, "': section has ",
              sectionEnd_ - pos_, " unread bytes (format mismatch)");
    inSection_ = false;
}

void
CkptReader::need(std::size_t n)
{
    std::size_t limit = inSection_ ? sectionEnd_ : payloadEnd_;
    if (limit - pos_ < n)
        fatal("checkpoint '", path_, "': field read of ", n,
              " bytes overruns its section (format mismatch)");
}

std::uint64_t
CkptReader::getLe(unsigned bytes)
{
    need(bytes);
    std::uint64_t v = getLeFrom(buf_, pos_, bytes);
    pos_ += bytes;
    return v;
}

} // namespace nocstar::sim
