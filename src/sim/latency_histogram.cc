/**
 * @file
 * LatencyHistogram percentile walk and stat dumpers.
 */

#include "sim/latency_histogram.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "sim/json.hh"

namespace nocstar::sim
{

std::uint64_t
LatencyHistogram::percentile(double q) const
{
    if (empty())
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-quantile among the sorted samples, 1-based; q = 0
    // asks for the smallest sample.
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(samples_))));
    std::uint64_t cumulative = 0;
    for (std::uint32_t i = 0; i < numBuckets; ++i) {
        cumulative += buckets_[i];
        if (cumulative >= rank)
            return std::clamp(bucketHigh(i), minValue(), max_);
    }
    return max_; // unreachable: cumulative reaches samples_
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.empty())
        return;
    samples_ += other.samples_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::uint32_t i = 0; i < numBuckets; ++i)
        buckets_[i] += other.buckets_[i];
}

void
LatencyHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
}

} // namespace nocstar::sim

namespace nocstar::stats
{

namespace
{

void
emitLine(std::ostream &os, const std::string &prefix,
         const std::string &name, double value, const std::string &desc)
{
    os << std::left << std::setw(44) << (prefix + name) << " "
       << std::setw(16) << std::setprecision(8) << value
       << " # " << desc << "\n";
}

} // namespace

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name() + ".samples",
             static_cast<double>(hist_.numSamples()), desc());
    emitLine(os, prefix, name() + ".mean", hist_.mean(), desc());
    emitLine(os, prefix, name() + ".min",
             static_cast<double>(hist_.minValue()), desc());
    emitLine(os, prefix, name() + ".max",
             static_cast<double>(hist_.maxValue()), desc());
    emitLine(os, prefix, name() + ".p50",
             static_cast<double>(hist_.percentile(0.50)), desc());
    emitLine(os, prefix, name() + ".p90",
             static_cast<double>(hist_.percentile(0.90)), desc());
    emitLine(os, prefix, name() + ".p99",
             static_cast<double>(hist_.percentile(0.99)), desc());
    emitLine(os, prefix, name() + ".p999",
             static_cast<double>(hist_.percentile(0.999)), desc());
}

void
Histogram::dumpJson(std::ostream &os) const
{
    os << "{\"samples\":" << hist_.numSamples()
       << ",\"sum\":" << hist_.sum() << ",\"mean\":";
    json::number(os, hist_.mean());
    os << ",\"min\":" << hist_.minValue()
       << ",\"max\":" << hist_.maxValue()
       << ",\"p50\":" << hist_.percentile(0.50)
       << ",\"p90\":" << hist_.percentile(0.90)
       << ",\"p99\":" << hist_.percentile(0.99)
       << ",\"p999\":" << hist_.percentile(0.999);
    // Sparse buckets as [inclusive low edge, count] pairs: enough to
    // re-derive any percentile after merging documents offline.
    os << ",\"buckets\":[";
    bool first = true;
    const auto &buckets = hist_.buckets();
    for (std::uint32_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "[" << sim::LatencyHistogram::bucketLow(i) << ","
           << buckets[i] << "]";
    }
    os << "]}";
}

} // namespace nocstar::stats
