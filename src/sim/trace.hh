/**
 * @file
 * Cycle-stamped debug tracing with named per-component flags, in the
 * spirit of gem5's DPRINTF machinery.
 *
 * Usage at a call site:
 *
 *     TRACE(Fabric, "core ", src, " -> ", dst, " granted");
 *
 * When the flag is disabled this compiles to a single predicted branch
 * on a cached bool -- the argument expressions are never evaluated.
 * Under -DNOCSTAR_NO_TRACE the macro compiles to nothing at all, so
 * instrumented hot paths can be proven free of overhead.
 *
 * Flags are selected at runtime either programmatically (setFlags /
 * setFlag) or through the NOCSTAR_DEBUG_FLAGS environment variable, a
 * comma-separated list of flag names ("TLB,Fabric") or "All". Output
 * goes to a single sink (stderr by default; never stdout, which the
 * sweep benches reserve for machine-parsed tables), each line stamped
 * with the current cycle of the simulation running on this thread.
 */

#ifndef NOCSTAR_SIM_TRACE_HH
#define NOCSTAR_SIM_TRACE_HH

#include <array>
#include <ostream>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nocstar::trace
{

/** One debug flag per simulator component. */
enum class Flag : unsigned
{
    TLB,       ///< L1/L2 TLB lookups, fills, invalidations
    Fabric,    ///< NOCSTAR path setup, grants, denials, deliveries
    Walker,    ///< page-table walks and PSC behaviour
    Shootdown, ///< TLB shootdown fan-out and completion
    EventQ,    ///< event scheduling and dispatch
    System,    ///< per-thread issue/finish and run phases
    Stats,     ///< epoch snapshots and stat dumps
    NumFlags,
};

constexpr unsigned numFlags = static_cast<unsigned>(Flag::NumFlags);

/** Canonical name of @p flag (also the NOCSTAR_DEBUG_FLAGS token). */
const char *flagName(Flag flag);

namespace detail
{
/** Cached enables; TRACE() loads one bool and branches on it. */
extern std::array<bool, numFlags> enabledFlags;
/** Current cycle of the simulation owned by this thread (see below). */
extern thread_local const Cycle *cycleSource;
/** Stamp and write one trace line (only called with the flag on). */
void write(Flag flag, const std::string &message);
} // namespace detail

/** @return true if @p flag is currently selected. */
inline bool
enabled(Flag flag)
{
    return detail::enabledFlags[static_cast<unsigned>(flag)];
}

/** Enable or disable a single flag. */
void setFlag(Flag flag, bool on);

/**
 * Replace the current selection with a comma-separated list of flag
 * names; "All" selects everything, "" clears everything.
 * @return false if any token was not a known flag (known ones still
 * take effect, unknown ones are reported via warn()).
 */
bool setFlags(const std::string &csv);

/** Disable every flag. */
void clearFlags();

/** Apply NOCSTAR_DEBUG_FLAGS from the environment (if set). */
void initFromEnv();

/** Redirect trace output (nullptr restores the default, stderr). */
void setSink(std::ostream *os);

/**
 * Register where the current cycle lives for trace stamping. The
 * EventQueue registers its clock on construction and on run(), so
 * components never pass cycles explicitly; thread-local so parallel
 * sweeps stamp with their own simulation's clock.
 */
inline void
setCycleSource(const Cycle *cycle)
{
    detail::cycleSource = cycle;
}

/** Deregister @p cycle if it is the active source (queue teardown). */
inline void
clearCycleSource(const Cycle *cycle)
{
    if (detail::cycleSource == cycle)
        detail::cycleSource = nullptr;
}

/** Cycle used to stamp trace lines emitted by this thread. */
inline Cycle
currentCycle()
{
    return detail::cycleSource ? *detail::cycleSource : 0;
}

/** Format and write one line; only call with the flag enabled. */
template <typename... Args>
void
emit(Flag flag, const Args &...args)
{
    detail::write(flag, strCat(args...));
}

} // namespace nocstar::trace

#ifdef NOCSTAR_NO_TRACE
#define TRACE(flag, ...) \
    do { \
    } while (0)
#else
/**
 * Emit a cycle-stamped debug line under a component flag. Arguments
 * are anything streamable (manipulators like std::hex included) and
 * are evaluated only when the flag is enabled.
 */
#define TRACE(flag, ...) \
    do { \
        if (::nocstar::trace::enabled( \
                ::nocstar::trace::Flag::flag)) [[unlikely]] \
            ::nocstar::trace::emit(::nocstar::trace::Flag::flag, \
                                   __VA_ARGS__); \
    } while (0)
#endif

#endif // NOCSTAR_SIM_TRACE_HH
