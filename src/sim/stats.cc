/**
 * @file
 * Statistics package implementation.
 */

#include "sim/stats.hh"

#include <cmath>
#include <iomanip>

#include "sim/json.hh"

namespace nocstar::stats
{

Stat::Stat(StatGroup *parent, std::string name, std::string desc)
    : name_(std::move(name)), desc_(std::move(desc))
{
    if (!parent)
        panic("stat '", name_, "' constructed without a parent group");
    parent->addStat(this);
}

namespace
{

void
emitLine(std::ostream &os, const std::string &prefix,
         const std::string &name, double value, const std::string &desc)
{
    os << std::left << std::setw(44) << (prefix + name) << " "
       << std::setw(16) << std::setprecision(8) << value
       << " # " << desc << "\n";
}

} // namespace

void
Scalar::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name(), value_, desc());
}

void
Scalar::dumpJson(std::ostream &os) const
{
    json::number(os, value_);
}

double
Vector::total() const
{
    double sum = 0;
    for (double v : values_)
        sum += v;
    return sum;
}

void
Vector::dump(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values_.size(); ++i) {
        emitLine(os, prefix, name() + "[" + std::to_string(i) + "]",
                 values_[i], desc());
    }
    emitLine(os, prefix, name() + ".total", total(), desc());
}

void
Vector::dumpJson(std::ostream &os) const
{
    os << "{\"values\":[";
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i)
            os << ",";
        json::number(os, values_[i]);
    }
    os << "],\"total\":";
    json::number(os, total());
    os << "}";
}

Distribution::Distribution(StatGroup *parent, std::string name,
                           std::string desc, double min, double max,
                           double bucket_size)
    : Stat(parent, std::move(name), std::move(desc)),
      min_(min), max_(max), bucketSize_(bucket_size)
{
    // A distribution's bounds come from configuration knobs (core
    // counts, latency ranges), so a degenerate range is a user error,
    // not a simulator bug: report it instead of silently allocating a
    // nonsense bucket vector.
    if (max <= min)
        fatal("distribution '", this->name(), "': max (", max,
              ") must exceed min (", min, ")");
    if (bucket_size <= 0)
        fatal("distribution '", this->name(), "': bucket size (",
              bucket_size, ") must be positive");
    auto buckets = static_cast<std::size_t>(
        std::ceil((max - min) / bucket_size));
    buckets_.assign(buckets, 0);
}

void
Distribution::sample(double v, std::uint64_t count)
{
    if (samples_ == 0) {
        minSample_ = v;
        maxSample_ = v;
    } else {
        minSample_ = std::min(minSample_, v);
        maxSample_ = std::max(maxSample_, v);
    }
    samples_ += count;
    sum_ += v * count;

    if (v < min_) {
        underflow_ += count;
    } else if (v >= max_) {
        overflow_ += count;
    } else {
        auto idx = static_cast<std::size_t>((v - min_) / bucketSize_);
        buckets_[std::min(idx, buckets_.size() - 1)] += count;
    }
}

double
Distribution::percentileEst(double q) const
{
    if (!samples_)
        return 0;
    q = std::min(std::max(q, 0.0), 1.0);
    const double target = q * static_cast<double>(samples_);
    // Underflow samples sit below every bucket: a quantile inside them
    // can only be pinned to the recorded minimum.
    double cumulative = static_cast<double>(underflow_);
    double estimate = minSample_;
    if (target > cumulative) {
        estimate = maxSample_; // quantile beyond all buckets: overflow
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            if (!buckets_[i])
                continue;
            const auto count = static_cast<double>(buckets_[i]);
            if (cumulative + count >= target) {
                // The bucket holding the rank reports its bucket value
                // directly. Interpolating within the bucket assumes
                // samples spread uniformly across it, which grossly
                // inflates point-mass distributions (e.g. a >99%-zero
                // streak distribution reported p50 ~ 0.5 with a mean
                // of 0.003); integer-valued stats make the lower edge
                // the exact answer, and for fractional stats it is
                // never worse than the midpoint assumption.
                estimate = min_ + bucketSize_ * static_cast<double>(i);
                break;
            }
            cumulative += count;
        }
    }
    return std::min(std::max(estimate, minSample_), maxSample_);
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name() + ".samples",
             static_cast<double>(samples_), desc());
    emitLine(os, prefix, name() + ".mean", mean(), desc());
    emitLine(os, prefix, name() + ".min", minSample_, desc());
    emitLine(os, prefix, name() + ".max", maxSample_, desc());
    if (underflow_)
        emitLine(os, prefix, name() + ".underflow",
                 static_cast<double>(underflow_), desc());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        double lo = min_ + bucketSize_ * static_cast<double>(i);
        emitLine(os, prefix,
                 name() + ".bucket[" + std::to_string(lo) + "]",
                 static_cast<double>(buckets_[i]), desc());
    }
    if (overflow_)
        emitLine(os, prefix, name() + ".overflow",
                 static_cast<double>(overflow_), desc());
}

void
Distribution::dumpJson(std::ostream &os) const
{
    os << "{\"samples\":" << samples_ << ",\"mean\":";
    json::number(os, mean());
    os << ",\"min\":";
    json::number(os, minSample_);
    os << ",\"max\":";
    json::number(os, maxSample_);
    // Derived quantile *estimates* (bucket interpolation, clamped to
    // [min, max)); exact-rank percentiles live in stats::Histogram.
    os << ",\"p50_est\":";
    json::number(os, percentileEst(0.50));
    os << ",\"p99_est\":";
    json::number(os, percentileEst(0.99));
    os << ",\"underflow\":" << underflow_
       << ",\"overflow\":" << overflow_ << ",\"bucket_size\":";
    json::number(os, bucketSize_);
    // Sparse buckets: [bucket low edge, count] pairs, non-zero only.
    os << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (!buckets_[i])
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "[";
        json::number(os, min_ + bucketSize_ * static_cast<double>(i));
        os << "," << buckets_[i] << "]";
    }
    os << "]}";
}

void
Distribution::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    underflow_ = overflow_ = samples_ = 0;
    sum_ = minSample_ = maxSample_ = 0;
}

void
Formula::dump(std::ostream &os, const std::string &prefix) const
{
    emitLine(os, prefix, name(), fn_(), desc());
}

void
Formula::dumpJson(std::ostream &os) const
{
    json::number(os, fn_());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name_(std::move(name)), parent_(parent)
{
    if (parent_)
        parent_->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent_)
        parent_->removeChild(this);
}

void
StatGroup::addStat(Stat *stat)
{
    auto [it, inserted] = statsByName_.emplace(stat->name(), stat);
    if (!inserted)
        panic("duplicate stat name '", stat->name(), "' in group ", name_);
    statList_.push_back(stat);
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(children_.begin(), children_.end(), child);
    if (it != children_.end())
        children_.erase(it);
}

void
StatGroup::dumpAll(std::ostream &os, const std::string &prefix) const
{
    std::string path = prefix.empty() ? name_ + "." : prefix + name_ + ".";
    for (const Stat *stat : statList_)
        stat->dump(os, path);
    for (const StatGroup *child : children_)
        child->dumpAll(os, path);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const Stat *stat : statList_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << json::escape(stat->name()) << "\":";
        stat->dumpJson(os);
    }
    for (const StatGroup *child : children_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << json::escape(child->name_) << "\":";
        child->dumpJson(os);
    }
    os << "}";
}

void
StatGroup::resetAll()
{
    for (Stat *stat : statList_)
        stat->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

const Stat *
StatGroup::find(const std::string &name) const
{
    auto it = statsByName_.find(name);
    return it == statsByName_.end() ? nullptr : it->second;
}

} // namespace nocstar::stats
