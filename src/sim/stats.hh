/**
 * @file
 * A lightweight statistics package inspired by gem5's Stats.
 *
 * Stats register themselves with an owning StatGroup by name; groups dump
 * a flat, sorted, machine-parseable listing. Only the pieces the
 * simulator needs are implemented: scalars, vectors, distributions and
 * derived formulas.
 */

#ifndef NOCSTAR_SIM_STATS_HH
#define NOCSTAR_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace nocstar::stats
{

class StatGroup;

/** Base class for all named statistics. */
class Stat
{
  public:
    Stat(StatGroup *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    /** Write one or more "name value # desc" lines. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Write this stat's value as one JSON value (no name, no desc). */
    virtual void dumpJson(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** A single accumulating counter / value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }
    Scalar &operator=(double v) { value_ = v; return *this; }

    double value() const { return value_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** A fixed-length vector of counters. */
class Vector : public Stat
{
  public:
    Vector(StatGroup *parent, std::string name, std::string desc,
           std::size_t size)
        : Stat(parent, std::move(name), std::move(desc)), values_(size, 0.0)
    {}

    double &operator[](std::size_t i) { return values_.at(i); }
    double operator[](std::size_t i) const { return values_.at(i); }
    std::size_t size() const { return values_.size(); }

    double total() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { std::fill(values_.begin(), values_.end(), 0.0); }

  private:
    std::vector<double> values_;
};

/**
 * A bucketed histogram over [min, max) plus running mean / extrema;
 * samples outside the range land in underflow/overflow buckets.
 */
class Distribution : public Stat
{
  public:
    Distribution(StatGroup *parent, std::string name, std::string desc,
                 double min, double max, double bucketSize);

    void sample(double v, std::uint64_t count = 1);

    std::uint64_t numSamples() const { return samples_; }
    double mean() const { return samples_ ? sum_ / samples_ : 0.0; }
    double minSample() const { return minSample_; }
    double maxSample() const { return maxSample_; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Approximate q-quantile interpolated linearly inside the linear
     * buckets and clamped to [min, max). An *estimate* only -- its
     * error is bounded by one bucket width plus whatever lands in the
     * underflow/overflow bins; stats that need exact tail ranks use a
     * LatencyHistogram (stats::Histogram) instead.
     */
    double percentileEst(double q) const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override;

  private:
    double min_;
    double max_;
    double bucketSize_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    double sum_ = 0;
    double minSample_ = 0;
    double maxSample_ = 0;
};

/** A value computed on demand from other stats. */
class Formula : public Stat
{
  public:
    Formula(StatGroup *parent, std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(parent, std::move(name), std::move(desc)), fn_(std::move(fn))
    {}

    double value() const { return fn_(); }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override {}

  private:
    std::function<double()> fn_;
};

/**
 * Owner of a set of stats (and child groups), keyed by name.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return name_; }

    /** Dump this group's stats and all children, prefixed by path. */
    void dumpAll(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Write this group as one JSON object: a key per stat (value only)
     * plus a key per child group (nested object). Machine-readable
     * counterpart of dumpAll() for sweep post-processing and the
     * epoch-snapshot mechanism.
     */
    void dumpJson(std::ostream &os) const;

    /** Reset this group's stats and all children. */
    void resetAll();

    /** Look up a stat by name in this group only (nullptr if missing). */
    const Stat *find(const std::string &name) const;

  private:
    friend class Stat;

    void addStat(Stat *stat);
    void addChild(StatGroup *child);
    void removeChild(StatGroup *child);

    std::string name_;
    StatGroup *parent_;
    std::vector<Stat *> statList_;
    std::map<std::string, Stat *> statsByName_;
    std::vector<StatGroup *> children_;
};

} // namespace nocstar::stats

#endif // NOCSTAR_SIM_STATS_HH
