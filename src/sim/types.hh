/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef NOCSTAR_SIM_TYPES_HH
#define NOCSTAR_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace nocstar
{

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** A virtual or physical page number (address >> page shift). */
using PageNum = std::uint64_t;

/** Identifier of a core / tile (also indexes TLB slices). */
using CoreId = std::uint32_t;

/** Identifier of a hardware thread within a core. */
using ThreadId = std::uint32_t;

/** Address-space / process context identifier (like x86 PCID). */
using ContextId = std::uint32_t;

/** Sentinel for "no cycle scheduled". */
constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel core id. */
constexpr CoreId invalidCore = std::numeric_limits<CoreId>::max();

/** Page sizes supported by the modelled x86-64 MMU. */
enum class PageSize : std::uint8_t
{
    FourKB,
    TwoMB,
    OneGB,
};

/** Number of distinct page sizes. */
constexpr int numPageSizes = 3;

/** @return log2 of the byte size of @p size pages. */
constexpr int
pageShift(PageSize size)
{
    switch (size) {
      case PageSize::FourKB: return 12;
      case PageSize::TwoMB: return 21;
      case PageSize::OneGB: return 30;
    }
    return 12;
}

/** @return byte size of a page of the given size class. */
constexpr Addr
pageBytes(PageSize size)
{
    return Addr{1} << pageShift(size);
}

/** @return the virtual page number of @p addr for pages of @p size. */
constexpr PageNum
pageNumber(Addr addr, PageSize size)
{
    return addr >> pageShift(size);
}

} // namespace nocstar

#endif // NOCSTAR_SIM_TYPES_HH
