/**
 * @file
 * Deterministic pseudo-random sources used throughout the simulator.
 *
 * All randomness must flow through Random so that runs are reproducible
 * given a seed; std::rand and std::random_device are banned.
 */

#ifndef NOCSTAR_SIM_RANDOM_HH
#define NOCSTAR_SIM_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace nocstar
{

/**
 * A small, fast, seedable generator (xoshiro256**).
 */
class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        reseed(seed);
    }

    /** Re-initialise state from a 64-bit seed via splitmix64. */
    void
    reseed(std::uint64_t seed)
    {
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t x, int k) {
            return (x << k) | (x >> (64 - k));
        };
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Random::below(0)");
        // Lemire's nearly-divisionless bounded sampling.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        if (hi < lo)
            panic("Random::between: hi < lo");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Snapshot the raw generator state (checkpointing). */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Restore a state captured by state(). */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        for (std::size_t i = 0; i < 4; ++i)
            state_[i] = s[i];
    }

  private:
    std::uint64_t state_[4];
};

/**
 * Zipf-distributed sampler over [0, n) with skew @p alpha, using the
 * rejection-inversion method of Hormann and Derflinger, which needs no
 * O(n) table and is fast for the large ranges page streams use.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of distinct items (>= 1).
     * @param alpha skew; 0 degenerates to uniform, typical 0.6 - 1.2.
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw one sample; item 0 is the most popular. */
    std::uint64_t sample(Random &rng) const;

    std::uint64_t numItems() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    double h(double x) const;
    double hInverse(double x) const;

    std::uint64_t n_;
    double alpha_;
    double hx0_;
    double hn_;
    double s_;
    /**
     * Precomputed rejection thresholds h(k + 0.5) - k^-alpha for the
     * most popular items. The skew concentrates nearly all draws on
     * small k, so this removes the two pow() calls from the common
     * rejection test; values are computed with the identical
     * expressions, so sampling is bit-for-bit unchanged.
     */
    std::vector<double> rejectBound_;
};

} // namespace nocstar

#endif // NOCSTAR_SIM_RANDOM_HH
