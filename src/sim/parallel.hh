/**
 * @file
 * A fixed-size worker pool for running independent simulations in
 * parallel (the paper's evaluation is hundreds of embarrassingly
 * parallel sweeps; cf. Fig 18's 1,320 runs).
 *
 * Safety model: each cpu::System owns its EventQueue, Random streams
 * and stat tree, and no simulator component keeps mutable global
 * state, so simulations on different threads never share data. The
 * pool therefore provides plain task parallelism with no locking
 * inside the simulated world; parallelMap() preserves input order in
 * its result vector, so sweep output is byte-identical regardless of
 * the worker count.
 *
 * Worker-count resolution (highest priority first): an explicit
 * argument, the NOCSTAR_JOBS environment variable, then
 * std::thread::hardware_concurrency().
 */

#ifndef NOCSTAR_SIM_PARALLEL_HH
#define NOCSTAR_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nocstar::sim
{

/**
 * Number of workers to use when the caller does not say: NOCSTAR_JOBS
 * if set to a positive integer, otherwise the hardware thread count
 * (at least 1).
 */
unsigned defaultJobs();

/**
 * Deterministic shard count for `--shards auto`: one shard per
 * hardware thread left over after @p jobs sweep workers claim theirs
 * (the same jobs x shards <= cores product rule the oversubscription
 * clamp enforces from the other side), capped at @p tiles (a shard
 * needs at least one core's step stream to be useful) and floored at
 * 1 (the window engine's serial exactness baseline). Results are
 * shard-count-invariant, so this only ever tunes wall-clock.
 */
unsigned autoShards(unsigned tiles, unsigned jobs = 1);

/**
 * A fixed-size thread pool. Workers are spawned on construction and
 * joined on destruction; tasks are run in submission order but
 * complete in any order.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultJobs(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue one task. Never blocks. */
    void post(std::function<void()> task);

    /** Block until every posted task has finished. */
    void drain();

    /**
     * Apply @p fn to every element of @p items, returning the results
     * in input order. The result type must be default-constructible
     * and movable. With one worker (or one item) this degenerates to
     * a serial loop on the calling thread, guaranteeing identical
     * behavior to not using the pool at all. The first exception
     * thrown by @p fn (if any) is rethrown on the calling thread once
     * all tasks have settled.
     */
    template <typename In, typename Fn>
    auto
    map(const std::vector<In> &items, Fn fn)
        -> std::vector<std::invoke_result_t<Fn &, const In &>>
    {
        using Out = std::invoke_result_t<Fn &, const In &>;
        std::vector<Out> results(items.size());
        if (size() <= 1 || items.size() <= 1) {
            for (std::size_t i = 0; i < items.size(); ++i)
                results[i] = fn(items[i]);
            return results;
        }

        struct MapState
        {
            std::mutex mutex;
            std::condition_variable done;
            std::size_t remaining;
            std::exception_ptr error;
        };
        auto state = std::make_shared<MapState>();
        state->remaining = items.size();

        for (std::size_t i = 0; i < items.size(); ++i) {
            post([&items, &results, &fn, i, state] {
                try {
                    results[i] = fn(items[i]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    if (!state->error)
                        state->error = std::current_exception();
                }
                std::lock_guard<std::mutex> lock(state->mutex);
                if (--state->remaining == 0)
                    state->done.notify_all();
            });
        }

        std::unique_lock<std::mutex> lock(state->mutex);
        state->done.wait(lock, [&] { return state->remaining == 0; });
        if (state->error)
            std::rethrow_exception(state->error);
        return results;
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable wake_; ///< workers wait here for tasks
    std::condition_variable idle_; ///< drain() waits here
    std::size_t active_ = 0; ///< tasks currently executing
    bool stopping_ = false;
};

/**
 * One-shot convenience: run @p fn over @p items on @p jobs workers
 * (0 = defaultJobs()), preserving input order in the results.
 */
template <typename In, typename Fn>
auto
parallelMap(const std::vector<In> &items, Fn fn, unsigned jobs = 0)
    -> std::vector<std::invoke_result_t<Fn &, const In &>>
{
    ThreadPool pool(jobs);
    return pool.map(items, std::move(fn));
}

} // namespace nocstar::sim

#endif // NOCSTAR_SIM_PARALLEL_HH
