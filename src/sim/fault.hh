/**
 * @file
 * Seeded, deterministic fault injection for the interconnect and the
 * translation structures, plus the knobs of the resilience mechanisms
 * that respond to it.
 *
 * A FaultPlan is pure data: per-link outage windows (permanent or
 * transient), loss/corruption probabilities, and the retry-budget /
 * backoff / watchdog policy. It is carried by value inside OrgConfig;
 * an empty plan (the default) means the fault layer is never consulted
 * and the hot paths are byte-identical to a build without it.
 *
 * Plans can be written by hand in a small line-oriented text format
 * (see FaultPlan::parse) and handed to every bench via --fault-plan.
 * All randomness flows through a FaultInjector seeded from the plan,
 * so a given (plan, seed) pair reproduces the same fault sequence on
 * every run and at any sweep parallelism.
 */

#ifndef NOCSTAR_SIM_FAULT_HH
#define NOCSTAR_SIM_FAULT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace nocstar::sim
{

/** One scheduled outage of a directed mesh link. */
struct LinkFaultSpec
{
    /** Flattened link id (tile * 4 + direction, GridTopology order). */
    std::uint32_t link = 0;
    /** Cycle the outage begins. */
    Cycle start = 0;
    /** Outage length in cycles; 0 means the link never recovers. */
    Cycle duration = 0;

    bool permanent() const { return duration == 0; }

    /** First cycle the link is healthy again (exclusive end). */
    Cycle
    end() const
    {
        return permanent() ? invalidCycle : start + duration;
    }
};

/**
 * A complete fault-injection scenario plus the resilience policy that
 * responds to it. Default-constructed plans are empty: no fault is
 * ever injected and no resilience machinery is instantiated.
 */
struct FaultPlan
{
    /** Scheduled link outages. */
    std::vector<LinkFaultSpec> linkFaults;
    /** Probability a winning path-setup grant is lost in flight. */
    double grantLossProb = 0;
    /** Probability an L2/slice hit reads a corrupt (ECC) entry and the
     * translation must be re-walked. */
    double sliceEccProb = 0;
    /** Probability a completed page walk hit an ECC error on a
     * page-table read and must be redone. */
    double walkEccProb = 0;
    /** Seed for every fault-related random stream. */
    std::uint64_t seed = 1;

    // Resilience policy (consulted only while the plan is non-empty).
    /** Failed setups a message may retry before it is degraded onto
     * the fallback queued mesh. */
    unsigned retryBudget = 64;
    /** Cap on the exponential retry backoff, in cycles. */
    Cycle backoffCap = 64;
    /** Cycles a message may sit unserved before the livelock watchdog
     * trips (0 disables the watchdog). */
    Cycle watchdogCycles = 100000;
    /** Watchdog behaviour: fatal() (true) or count-and-degrade. */
    bool watchdogFatal = false;

    /** True when the plan can never inject anything. */
    bool
    empty() const
    {
        return linkFaults.empty() && grantLossProb == 0 &&
               sliceEccProb == 0 && walkEccProb == 0;
    }

    /**
     * Field-level sanity errors ("probability out of range", "link id
     * beyond the mesh", ...). @p link_index_space bounds link ids; pass
     * 0 to skip the topology-dependent checks.
     */
    std::vector<std::string>
    validate(unsigned link_index_space = 0) const;

    /**
     * Parse the plan text format. One directive per line; '#' starts a
     * comment. Directives:
     *
     *   seed N
     *   link TILE DIR START DURATION   (DIR: E|W|N|S; DURATION cycles
     *                                   or the word "permanent")
     *   link-id FLAT START DURATION    (pre-flattened link id)
     *   grant-loss P
     *   slice-ecc P
     *   walk-ecc P
     *   retry-budget N
     *   backoff-cap N
     *   watchdog CYCLES [fatal]
     *
     * Every malformed line is reported; any error is fatal().
     */
    static FaultPlan parse(std::istream &in, const std::string &origin);

    /** Load and parse @p path; fatal() if unreadable or malformed. */
    static FaultPlan parseFile(const std::string &path);
};

/**
 * The runtime half: a plan plus its seeded random stream. Each
 * consumer (fabric, organization, walker) owns its own injector with a
 * distinct stream id so their draw sequences stay independent of each
 * other and of call interleaving.
 */
class FaultInjector
{
  public:
    /** Stream ids salt the seed so consumers draw independently. */
    enum class Stream : std::uint64_t
    {
        Fabric = 0x0fab,
        SliceEcc = 0x51ce,
        WalkEcc = 0x3a1c,
    };

    FaultInjector(const FaultPlan &plan, Stream stream,
                  std::uint64_t salt = 0)
        : plan_(plan),
          rng_(plan.seed ^ (static_cast<std::uint64_t>(stream) << 32) ^
               salt)
    {}

    const FaultPlan &plan() const { return plan_; }

    /** Draw: was this winning grant lost in flight? */
    bool
    loseGrant()
    {
        return plan_.grantLossProb > 0 &&
               rng_.chance(plan_.grantLossProb);
    }

    /** Draw: did this slice hit read a corrupt entry? */
    bool
    sliceEcc()
    {
        return plan_.sliceEccProb > 0 && rng_.chance(plan_.sliceEccProb);
    }

    /** Draw: must this completed walk be redone? */
    bool
    walkEcc()
    {
        return plan_.walkEccProb > 0 && rng_.chance(plan_.walkEccProb);
    }

  private:
    FaultPlan plan_;
    Random rng_;
};

} // namespace nocstar::sim

#endif // NOCSTAR_SIM_FAULT_HH
