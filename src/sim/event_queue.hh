/**
 * @file
 * A minimal deterministic discrete-event kernel, cycle granular.
 *
 * Events are intrusive (gem5-style): an Event object owns its scheduling
 * state and is processed at most once per schedule() call. Determinism is
 * guaranteed by a FIFO tiebreak among events scheduled for the same cycle
 * with equal priority.
 */

#ifndef NOCSTAR_SIM_EVENT_QUEUE_HH
#define NOCSTAR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nocstar
{

class EventQueue;

/**
 * Base class for schedulable work. Derive and implement process(), or use
 * LambdaEvent for one-off callbacks.
 */
class Event
{
  public:
    /** Lower value == processed earlier within the same cycle. */
    using Priority = std::int32_t;

    static constexpr Priority defaultPriority = 0;
    /** Arbitration events run after all same-cycle requests are posted. */
    static constexpr Priority arbitrationPriority = 100;
    /** Stat-dump style events run last in a cycle. */
    static constexpr Priority lastPriority = 1000;

    explicit Event(Priority prio = defaultPriority) : _priority(prio) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Callback invoked when the event's cycle is reached. */
    virtual void process() = 0;

    /** @return true while the event sits in a queue awaiting process(). */
    bool scheduled() const { return _scheduled; }

    /** @return cycle this event is scheduled for (invalidCycle if none). */
    Cycle when() const { return _when; }

    Priority priority() const { return _priority; }

  private:
    friend class EventQueue;

    Priority _priority;
    Cycle _when = invalidCycle;
    bool _scheduled = false;
    /** Generation counter so stale queue records are ignored. */
    std::uint64_t _generation = 0;
};

/** Convenience event wrapping a std::function. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn,
                         Priority prio = defaultPriority)
        : Event(prio), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * The global clock and pending-event store for one simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulation cycle. */
    Cycle curCycle() const { return _curCycle; }

    /** Schedule @p ev for absolute cycle @p when (>= curCycle()). */
    void schedule(Event *ev, Cycle when);

    /** Remove @p ev from the queue; no-op fields reset. */
    void deschedule(Event *ev);

    /** Deschedule if needed, then schedule at @p when. */
    void reschedule(Event *ev, Cycle when);

    /** @return true if no events remain. */
    bool empty() const { return _numScheduled == 0; }

    /** Number of scheduled (live) events. */
    std::size_t size() const { return _numScheduled; }

    /**
     * Run until the queue drains or the cycle limit is passed.
     * @param limit stop before processing events beyond this cycle.
     * @return number of events processed.
     */
    std::uint64_t run(Cycle limit = invalidCycle);

    /** Process events for the current head cycle only. */
    void runOneCycle();

    /**
     * Schedule a one-shot callback; the queue owns the event's
     * lifetime. The backing events come from a free-list pool, so a
     * steady-state simulation stops allocating per message: once the
     * pool has grown to the peak number of in-flight callbacks, every
     * subsequent call reuses a recycled event.
     */
    void scheduleLambda(Cycle when, std::function<void()> fn,
                        Event::Priority prio = Event::defaultPriority);

    /** Pooled lambda events currently awaiting reuse (test hook). */
    std::size_t freeLambdaEvents() const { return lambdaFree_.size(); }
    /** Pooled lambda events ever allocated by this queue (test hook). */
    std::size_t allocatedLambdaEvents() const { return lambdaAll_.size(); }

  private:
    struct Record
    {
        Cycle when;
        Event::Priority priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *event;

        bool
        operator>(const Record &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    /** Pop and process the single front event. @return true if live. */
    bool serviceOne();

    /**
     * A recyclable one-shot callback event owned by the queue. On
     * process() it releases itself back to the owner's free list
     * before running the callback, so the callback itself may
     * immediately reacquire (and reschedule) the same object.
     */
    class PooledLambdaEvent : public Event
    {
      public:
        explicit PooledLambdaEvent(EventQueue *owner) : owner_(owner) {}

        void
        process() override
        {
            auto fn = std::move(fn_);
            fn_ = nullptr;
            owner_->lambdaFree_.push_back(this);
            fn();
        }

      private:
        friend class EventQueue;

        EventQueue *owner_;
        std::function<void()> fn_;
    };

    std::priority_queue<Record, std::vector<Record>, std::greater<>> _queue;
    Cycle _curCycle = 0;
    std::uint64_t _nextSeq = 0;
    std::size_t _numScheduled = 0;
    /** Recycled lambda events ready for the next scheduleLambda(). */
    std::vector<PooledLambdaEvent *> lambdaFree_;
    /** Every pooled event this queue ever allocated (for teardown). */
    std::vector<PooledLambdaEvent *> lambdaAll_;

  public:
    ~EventQueue();
};

} // namespace nocstar

#endif // NOCSTAR_SIM_EVENT_QUEUE_HH
