/**
 * @file
 * A minimal deterministic discrete-event kernel, cycle granular.
 *
 * Events are intrusive (gem5-style): an Event object owns its scheduling
 * state and is processed at most once per schedule() call. Determinism is
 * guaranteed by a FIFO tiebreak among events scheduled for the same cycle
 * with equal priority.
 *
 * The pending store is a timing wheel: near-future events (within
 * `wheelSize` cycles, which covers everything on the per-access path)
 * go into per-cycle buckets found through an occupancy bitmap, so
 * schedule and dispatch are O(1) instead of O(log n) binary-heap
 * operations on 40-byte records. Far-future events (periodic context
 * switches, storm ops) overflow into a small heap and are folded into
 * the wheel as the clock approaches them. Processing order is exactly
 * (cycle, priority, schedule order), identical to a single global
 * priority queue.
 */

#ifndef NOCSTAR_SIM_EVENT_QUEUE_HH
#define NOCSTAR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_function.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace nocstar
{

class EventQueue;

/**
 * Base class for schedulable work. Derive and implement process(), or use
 * LambdaEvent for one-off callbacks.
 */
class Event
{
  public:
    /** Lower value == processed earlier within the same cycle. */
    using Priority = std::int32_t;

    static constexpr Priority defaultPriority = 0;
    /** Arbitration events run after all same-cycle requests are posted. */
    static constexpr Priority arbitrationPriority = 100;
    /** Stat-dump style events run last in a cycle. */
    static constexpr Priority lastPriority = 1000;

    explicit Event(Priority prio = defaultPriority) : _priority(prio) {}
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Callback invoked when the event's cycle is reached. */
    virtual void process() = 0;

    /** @return true while the event sits in a queue awaiting process(). */
    bool scheduled() const { return _scheduled; }

    /** @return cycle this event is scheduled for (invalidCycle if none). */
    Cycle when() const { return _when; }

    Priority priority() const { return _priority; }

  private:
    friend class EventQueue;

    Priority _priority;
    Cycle _when = invalidCycle;
    bool _scheduled = false;
    /** Generation counter so stale queue records are ignored. */
    std::uint64_t _generation = 0;
};

/**
 * One-shot simulation callback. The capacity covers the largest
 * continuation chain on the per-access path (a fabric delivery
 * carrying an organization continuation that itself owns the
 * requester's completion callback); outgrowing it is a compile error,
 * never a heap allocation.
 */
using SimCallback = InlineFunction<void(), 256>;

/** Convenience event wrapping an inline callback. */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(SimCallback fn, Priority prio = defaultPriority)
        : Event(prio), fn_(std::move(fn))
    {}

    void process() override { fn_(); }

  private:
    SimCallback fn_;
};

/**
 * The global clock and pending-event store for one simulation.
 */
class EventQueue
{
  public:
    /** Registers this queue's clock as the thread's trace-stamp source. */
    EventQueue();

    /** Current simulation cycle. */
    Cycle curCycle() const { return _curCycle; }

    /** Schedule @p ev for absolute cycle @p when (>= curCycle()). */
    void schedule(Event *ev, Cycle when);

    /** Remove @p ev from the queue; no-op fields reset. */
    void deschedule(Event *ev);

    /** Deschedule if needed, then schedule at @p when. */
    void reschedule(Event *ev, Cycle when);

    /** @return true if no events remain. */
    bool empty() const { return _numScheduled == 0; }

    /** Number of scheduled (live) events. */
    std::size_t size() const { return _numScheduled; }

    /**
     * Earliest cycle holding any pending record (live or stale) in the
     * wheel or the overflow heap, or invalidCycle when none remain.
     * Stale records (lazily descheduled events) make the result
     * conservative: it may name a cycle with nothing live to run, but
     * never a cycle later than the first live event.
     */
    Cycle nextEventCycle() const;

    /**
     * @return true when no record (live or stale) is pending anywhere
     * in [curCycle(), @p when], and the overflow heap holds nothing at
     * or before @p when. Conservative: stale records count as pending.
     * Windows reaching beyond the wheel horizon report false.
     */
    bool quietUntil(Cycle when) const;

    /**
     * Earliest cycle in [curCycle(), @p when] holding any pending
     * record (live or stale), or invalidCycle when that whole span is
     * quiet. The shard window loop uses this instead of quietUntil()
     * so a broken quiescence check reports *which* cycle broke it and
     * execution can resume there rather than re-scanning from
     * curCycle(). Unlike quietUntil() this is exact even when @p when
     * lies beyond the wheel horizon: every wheel record is within the
     * horizon by construction and the overflow heap's head covers the
     * rest.
     */
    Cycle firstBusyCycle(Cycle when) const;

    /**
     * Advance the clock to @p when without processing anything.
     * Precondition: no pending record sits strictly before @p when
     * (e.g. quietUntil(when) held); violating it would strand wheel
     * records behind the clock. Used by the hit-streak bypass, which
     * establishes the precondition via quietUntil().
     */
    void
    advanceTo(Cycle when)
    {
        if (when < _curCycle)
            panic("advanceTo into the past: ", when, " < ", _curCycle);
        _curCycle = when;
    }

    /**
     * Run until the queue drains or the cycle limit is passed.
     * @param limit stop before processing events beyond this cycle.
     * @return number of events processed.
     */
    std::uint64_t run(Cycle limit = invalidCycle);

    /** Process events for the current head cycle only. */
    void runOneCycle();

    /**
     * Schedule a one-shot callback; the queue owns the event's
     * lifetime. The backing events come from a free-list pool, so a
     * steady-state simulation stops allocating per message: once the
     * pool has grown to the peak number of in-flight callbacks, every
     * subsequent call reuses a recycled event.
     */
    void scheduleLambda(Cycle when, SimCallback fn,
                        Event::Priority prio = Event::defaultPriority);

    /** Pooled lambda events currently awaiting reuse (test hook). */
    std::size_t freeLambdaEvents() const { return lambdaFree_.size(); }
    /** Pooled lambda events ever allocated by this queue (test hook). */
    std::size_t allocatedLambdaEvents() const { return lambdaAll_.size(); }

  private:
    /** Wheel span in cycles; must be a power of two. */
    static constexpr std::size_t wheelSize = 4096;
    static constexpr std::size_t wheelMask = wheelSize - 1;
    static constexpr std::size_t wheelWords = wheelSize / 64;

    struct Record
    {
        Cycle when;
        Event::Priority priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *event;

        bool
        operator>(const Record &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    /**
     * A wheel-resident record. The cycle is implied by the bucket (a
     * bucket only ever holds records for the one in-horizon cycle that
     * maps to it), so it is not stored; 32-byte records keep bucket
     * scans dense.
     */
    struct WheelRecord
    {
        Event::Priority priority;
        std::uint64_t seq;
        std::uint64_t generation;
        Event *event;
    };

    /** Put a record for cycle @p when (within the horizon) in its bucket. */
    void pushToWheel(Cycle when, const WheelRecord &rec);

    /**
     * Move overflow records whose cycle now lies within the wheel
     * horizon [_curCycle, _curCycle + wheelSize) into their buckets.
     * Must only be called after the clock has advanced (bucket indices
     * alias modulo wheelSize relative to _curCycle).
     */
    void foldOverflow();

    /**
     * Process every record in @p cycle's bucket in (priority, seq)
     * order, including records scheduled for the same cycle while
     * processing. @return number of live events processed.
     */
    std::uint64_t processCycle(Cycle cycle);

    /**
     * A recyclable one-shot callback event owned by the queue. On
     * process() it releases itself back to the owner's free list
     * before running the callback, so the callback itself may
     * immediately reacquire (and reschedule) the same object.
     */
    class PooledLambdaEvent : public Event
    {
      public:
        explicit PooledLambdaEvent(EventQueue *owner) : owner_(owner) {}

        void
        process() override
        {
            SimCallback fn = std::move(fn_);
            owner_->lambdaFree_.push_back(this);
            fn();
        }

      private:
        friend class EventQueue;

        EventQueue *owner_;
        SimCallback fn_;
    };

    /** Per-cycle buckets for events within the wheel horizon. */
    std::vector<std::vector<WheelRecord>> wheel_{wheelSize};
    /** One bit per bucket: set while the bucket holds any record. */
    std::uint64_t occupied_[wheelWords] = {};
    /** Records (live or stale) currently in the wheel. */
    std::size_t wheelCount_ = 0;
    /** Events beyond the wheel horizon, ordered by (when, prio, seq). */
    std::priority_queue<Record, std::vector<Record>, std::greater<>>
        overflow_;
    Cycle _curCycle = 0;
    std::uint64_t _nextSeq = 0;
    std::size_t _numScheduled = 0;
    /** Recycled lambda events ready for the next scheduleLambda(). */
    std::vector<PooledLambdaEvent *> lambdaFree_;
    /** Every pooled event this queue ever allocated (for teardown). */
    std::vector<PooledLambdaEvent *> lambdaAll_;

  public:
    ~EventQueue();
};

} // namespace nocstar

#endif // NOCSTAR_SIM_EVENT_QUEUE_HH
