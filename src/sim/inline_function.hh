/**
 * @file
 * InlineFunction: a fixed-capacity, move-only replacement for
 * std::function on the simulator's per-access hot path.
 *
 * Every continuation flowing through the event queue, the fabric and
 * the organization callbacks used to be a std::function, whose capture
 * blocks larger than the small-buffer optimization (two pointers on
 * libstdc++) live on the heap -- one malloc/free pair per simulated
 * message. InlineFunction stores the callable in an in-object buffer
 * of a compile-time capacity instead; a capture block that outgrows
 * the buffer is a build error (static_assert), never a silent
 * allocation. Unlike std::function it also accepts move-only
 * callables, which lets continuations own nested continuations by
 * value.
 *
 * The type is move-only: moving relocates the stored callable between
 * buffers via its move constructor and leaves the source empty.
 */

#ifndef NOCSTAR_SIM_INLINE_FUNCTION_HH
#define NOCSTAR_SIM_INLINE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace nocstar
{

template <typename Signature, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
  public:
    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction(F &&f)
    {
        emplace(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept { moveFrom(other); }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    InlineFunction &
    operator=(F &&f)
    {
        reset();
        emplace(std::forward<F>(f));
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    /** @return true if a callable is stored. */
    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args)
    {
        if (!invoke_)
            panic("empty InlineFunction invoked");
        return invoke_(&storage_, std::forward<Args>(args)...);
    }

    /**
     * Const invocation, matching std::function's const operator():
     * the stored callable itself is invoked non-const (the buffer is
     * never a genuinely const object -- continuations live in events,
     * requests and closures, all mutable storage).
     */
    R
    operator()(Args... args) const
    {
        if (!invoke_)
            panic("empty InlineFunction invoked");
        return invoke_(const_cast<void *>(
                           static_cast<const void *>(&storage_)),
                       std::forward<Args>(args)...);
    }

    /** Drop the stored callable, leaving the function empty. */
    void
    reset()
    {
        if (destroy_) {
            destroy_(&storage_);
            invoke_ = nullptr;
            relocate_ = nullptr;
            destroy_ = nullptr;
        }
    }

    /** Buffer capacity in bytes (compile-time). */
    static constexpr std::size_t capacity() { return Capacity; }

  private:
    using InvokeFn = R (*)(void *, Args &&...);
    using RelocateFn = void (*)(void *dst, void *src);
    using DestroyFn = void (*)(void *);

    template <typename F>
    void
    emplace(F &&f)
    {
        using Stored = std::decay_t<F>;
        static_assert(sizeof(Stored) <= Capacity,
                      "capture block exceeds InlineFunction capacity; "
                      "raise the capacity parameter");
        static_assert(alignof(Stored) <= alignof(std::max_align_t),
                      "over-aligned callables are not supported");
        static_assert(std::is_nothrow_move_constructible_v<Stored>,
                      "InlineFunction requires nothrow-movable "
                      "callables");
        ::new (static_cast<void *>(&storage_))
            Stored(std::forward<F>(f));
        invoke_ = [](void *s, Args &&...args) -> R {
            return (*static_cast<Stored *>(s))(
                std::forward<Args>(args)...);
        };
        relocate_ = [](void *dst, void *src) {
            Stored *from = static_cast<Stored *>(src);
            ::new (dst) Stored(std::move(*from));
            from->~Stored();
        };
        destroy_ = [](void *s) { static_cast<Stored *>(s)->~Stored(); };
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        if (!other.invoke_)
            return;
        other.relocate_(&storage_, &other.storage_);
        invoke_ = other.invoke_;
        relocate_ = other.relocate_;
        destroy_ = other.destroy_;
        other.invoke_ = nullptr;
        other.relocate_ = nullptr;
        other.destroy_ = nullptr;
    }

    InvokeFn invoke_ = nullptr;
    RelocateFn relocate_ = nullptr;
    DestroyFn destroy_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[Capacity];
};

template <typename Sig, std::size_t N>
bool
operator==(const InlineFunction<Sig, N> &f, std::nullptr_t)
{
    return !f;
}

template <typename Sig, std::size_t N>
bool
operator!=(const InlineFunction<Sig, N> &f, std::nullptr_t)
{
    return static_cast<bool>(f);
}

} // namespace nocstar

#endif // NOCSTAR_SIM_INLINE_FUNCTION_HH
