/**
 * @file
 * HDR-style log-bucketed latency histogram with exact-rank percentiles.
 *
 * The value domain is split into a linear region (values below 64 get
 * one bucket each, so small latencies are exact) and log-linear region:
 * for each power-of-two magnitude up to 2^40 cycles, 64 sub-buckets of
 * equal width. A bucket's width is therefore never more than 1/64th of
 * the values it holds, bounding the relative error of any reported
 * percentile at 2^-6 ~ 1.6 % (< the 2 % budget). record() is O(1) --
 * one bit-scan and one array increment -- and merge() is a bucket-wise
 * integer add, so it is commutative and associative: per-shard or
 * per-lane instances fold into one canonical result regardless of how
 * the recording work was partitioned. All state is integral (counts
 * and sums, never running doubles), which is what makes the fold
 * deterministic at every shard count.
 *
 * `sim::LatencyHistogram` is the plain value type; `stats::Histogram`
 * wraps one as a Stat so percentile stats appear in dumpAll() listings
 * and the stats JSON document next to Scalars and Distributions.
 */

#ifndef NOCSTAR_SIM_LATENCY_HISTOGRAM_HH
#define NOCSTAR_SIM_LATENCY_HISTOGRAM_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/stats.hh"

namespace nocstar::sim
{

/** Mergeable log-bucketed histogram of cycle counts in [0, 2^41). */
class LatencyHistogram
{
  public:
    /** Sub-buckets per power-of-two magnitude (2^6 = 64). */
    static constexpr unsigned subBucketBits = 6;
    static constexpr unsigned subBuckets = 1u << subBucketBits;
    /** Largest tracked magnitude: values up to 2^(40+1)-1 cycles. */
    static constexpr unsigned maxExponent = 40;
    /** Values at or above this saturate into the top bucket. */
    static constexpr std::uint64_t maxTrackable =
        (std::uint64_t{1} << (maxExponent + 1)) - 1;
    static constexpr unsigned numBuckets =
        subBuckets + (maxExponent - subBucketBits + 1) * subBuckets;

    LatencyHistogram() : buckets_(numBuckets, 0) {}

    /** Add @p count samples of value @p v. O(1). */
    void
    record(std::uint64_t v, std::uint64_t count = 1)
    {
        if (!count)
            return;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
        samples_ += count;
        sum_ += v * count;
        buckets_[bucketIndex(v)] += count;
    }

    std::uint64_t numSamples() const { return samples_; }
    std::uint64_t sum() const { return sum_; }
    bool empty() const { return samples_ == 0; }
    std::uint64_t minValue() const { return empty() ? 0 : min_; }
    std::uint64_t maxValue() const { return max_; }
    double
    mean() const
    {
        return samples_
            ? static_cast<double>(sum_) / static_cast<double>(samples_)
            : 0.0;
    }

    /**
     * Exact-rank percentile: the reported value is the inclusive upper
     * bound of the bucket holding the ceil(q * samples)-th smallest
     * sample, clamped to [min, max] -- so it is never below the true
     * percentile's bucket and never more than one bucket width (<= 1.6
     * % relative) above the true value. @p q in [0, 1]; 0 on empty.
     */
    std::uint64_t percentile(double q) const;

    /**
     * Fold @p other into this histogram. Pure integer adds: the result
     * depends only on the multiset of recorded samples, not on how
     * they were split across instances or the order of the folds.
     */
    void merge(const LatencyHistogram &other);

    void reset();

    bool
    operator==(const LatencyHistogram &other) const
    {
        return samples_ == other.samples_ && sum_ == other.sum_ &&
               min_ == other.min_ && max_ == other.max_ &&
               buckets_ == other.buckets_;
    }

    /** Raw bucket counts, for the sparse dumpers and tests. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Bucket of value @p v (values > maxTrackable saturate). */
    static std::uint32_t
    bucketIndex(std::uint64_t v)
    {
        if (v < subBuckets)
            return static_cast<std::uint32_t>(v);
        if (v > maxTrackable)
            v = maxTrackable;
        const unsigned e = 63u - static_cast<unsigned>(std::countl_zero(v));
        const unsigned shift = e - subBucketBits;
        return subBuckets + shift * subBuckets +
               static_cast<std::uint32_t>((v >> shift) - subBuckets);
    }

    /** Smallest value landing in bucket @p i. */
    static std::uint64_t
    bucketLow(std::uint32_t i)
    {
        if (i < subBuckets)
            return i;
        const std::uint32_t r = i - subBuckets;
        const unsigned shift = r / subBuckets;
        return (std::uint64_t{subBuckets} + r % subBuckets) << shift;
    }

    /** Largest value landing in bucket @p i (inclusive). */
    static std::uint64_t
    bucketHigh(std::uint32_t i)
    {
        if (i < subBuckets)
            return i;
        const unsigned shift = (i - subBuckets) / subBuckets;
        return bucketLow(i) + (std::uint64_t{1} << shift) - 1;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
    std::uint64_t max_ = 0;
};

} // namespace nocstar::sim

namespace nocstar::stats
{

/**
 * A LatencyHistogram registered as a named Stat: dumps samples, mean,
 * extrema and exact-rank p50/p90/p99/p99.9 lines, and a JSON object
 * with the same summary plus the sparse bucket counts (so merged
 * documents can re-derive any percentile).
 */
class Histogram : public Stat
{
  public:
    using Stat::Stat;

    void
    record(std::uint64_t v, std::uint64_t count = 1)
    {
        hist_.record(v, count);
    }

    sim::LatencyHistogram &value() { return hist_; }
    const sim::LatencyHistogram &value() const { return hist_; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { hist_.reset(); }

  private:
    sim::LatencyHistogram hist_;
};

} // namespace nocstar::stats

#endif // NOCSTAR_SIM_LATENCY_HISTOGRAM_HH
