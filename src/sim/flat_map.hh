/**
 * @file
 * FlatMap: an open-addressing hash map for POD keys on the simulator's
 * per-access hot path.
 *
 * std::unordered_map costs one heap node per element and a pointer
 * chase per lookup; the page table, the walker's paging-structure
 * caches and the walk-reference line stores all sit on the translate
 * path, so those cache misses dominate short probes. FlatMap keeps
 * key/value slots in one contiguous array with a separate byte of
 * state per slot (empty / full / tombstone), probes linearly from a
 * mixed hash, and reuses the first tombstone seen on insert. Power-of-
 * two capacity; grows (dropping tombstones) when live + dead slots
 * pass 7/8 occupancy.
 *
 * Requirements: Key and Value are cheap to copy/move and default-
 * constructible; erase uses tombstones, so pointers returned by find()
 * stay valid until the next insert (which may rehash).
 */

#ifndef NOCSTAR_SIM_FLAT_MAP_HH
#define NOCSTAR_SIM_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nocstar
{

/** splitmix64 finalizer: avalanches structured integer keys. */
inline std::uint64_t
flatMapMix(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

template <typename Key, typename Value>
class FlatMap
{
  public:
    /** Slot layout mirrors std::pair for drop-in iteration. */
    struct Slot
    {
        Key first;
        Value second;
    };

    FlatMap() = default;

    template <bool Const>
    class Iterator
    {
      public:
        using MapPtr = std::conditional_t<Const, const FlatMap *,
                                          FlatMap *>;
        using SlotRef = std::conditional_t<Const, const Slot &, Slot &>;
        using SlotPtr = std::conditional_t<Const, const Slot *, Slot *>;

        Iterator(MapPtr map, std::size_t pos) : map_(map), pos_(pos)
        {
            skipDead();
        }

        SlotRef operator*() const { return map_->slots_[pos_]; }
        SlotPtr operator->() const { return &map_->slots_[pos_]; }

        Iterator &
        operator++()
        {
            ++pos_;
            skipDead();
            return *this;
        }

        bool
        operator==(const Iterator &o) const
        {
            return pos_ == o.pos_;
        }

        bool operator!=(const Iterator &o) const { return !(*this == o); }

      private:
        void
        skipDead()
        {
            while (pos_ < map_->states_.size() &&
                   map_->states_[pos_] != kFull)
                ++pos_;
        }

        MapPtr map_;
        std::size_t pos_;
    };

    using iterator = Iterator<false>;
    using const_iterator = Iterator<true>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, states_.size()); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const
    {
        return const_iterator(this, states_.size());
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Total slot count (test hook). */
    std::size_t capacity() const { return states_.size(); }
    /** Dead (erased, not yet reclaimed) slots (test hook). */
    std::size_t tombstones() const { return tombstones_; }

    void
    clear()
    {
        states_.assign(states_.size(), kEmpty);
        size_ = 0;
        tombstones_ = 0;
    }

    /** Pre-size so that @p n elements insert without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t needed = minCapacity;
        while (needed * 7 < n * 8)
            needed <<= 1;
        if (needed > states_.size())
            rehash(needed);
    }

    /** @return pointer to the mapped value, or nullptr if absent. */
    Value *
    find(const Key &key)
    {
        std::size_t pos = findPos(key);
        return pos != npos ? &slots_[pos].second : nullptr;
    }

    const Value *
    find(const Key &key) const
    {
        std::size_t pos = findPos(key);
        return pos != npos ? &slots_[pos].second : nullptr;
    }

    bool contains(const Key &key) const { return findPos(key) != npos; }

    /**
     * Insert (key, value) if absent.
     * @return {pointer to the mapped value, true if newly inserted}.
     */
    std::pair<Value *, bool>
    emplace(const Key &key, Value value)
    {
        growIfNeeded();
        std::size_t mask = states_.size() - 1;
        std::size_t pos = probeStart(key);
        std::size_t grave = npos;
        while (true) {
            std::uint8_t state = states_[pos];
            if (state == kEmpty) {
                // Reuse the first tombstone crossed, keeping probe
                // chains short after heavy erase traffic.
                std::size_t target = grave != npos ? grave : pos;
                if (grave != npos)
                    --tombstones_;
                states_[target] = kFull;
                slots_[target].first = key;
                slots_[target].second = std::move(value);
                ++size_;
                return {&slots_[target].second, true};
            }
            if (state == kTomb) {
                if (grave == npos)
                    grave = pos;
            } else if (slots_[pos].first == key) {
                return {&slots_[pos].second, false};
            }
            pos = (pos + 1) & mask;
        }
    }

    /** Find-or-default-construct, like std::unordered_map. */
    Value &
    operator[](const Key &key)
    {
        return *emplace(key, Value{}).first;
    }

    /** @return true if the key was present and is now erased. */
    bool
    erase(const Key &key)
    {
        std::size_t pos = findPos(key);
        if (pos == npos)
            return false;
        states_[pos] = kTomb;
        ++tombstones_;
        --size_;
        return true;
    }

  private:
    static constexpr std::size_t npos = ~std::size_t{0};
    static constexpr std::size_t minCapacity = 16;
    enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };

    std::size_t
    probeStart(const Key &key) const
    {
        return static_cast<std::size_t>(
                   flatMapMix(static_cast<std::uint64_t>(key))) &
               (states_.size() - 1);
    }

    std::size_t
    findPos(const Key &key) const
    {
        if (states_.empty())
            return npos;
        std::size_t mask = states_.size() - 1;
        std::size_t pos = probeStart(key);
        while (true) {
            std::uint8_t state = states_[pos];
            if (state == kEmpty)
                return npos;
            if (state == kFull && slots_[pos].first == key)
                return pos;
            pos = (pos + 1) & mask;
        }
    }

    void
    growIfNeeded()
    {
        if (states_.empty()) {
            rehash(minCapacity);
            return;
        }
        // Tombstones count against occupancy so probe chains stay
        // bounded; rehashing reclaims them.
        if ((size_ + tombstones_ + 1) * 8 > states_.size() * 7)
            rehash(size_ + 1 > states_.size() * 7 / 16
                       ? states_.size() * 2
                       : states_.size());
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<std::uint8_t> old_states = std::move(states_);
        slots_.assign(new_capacity, Slot{});
        states_.assign(new_capacity, kEmpty);
        std::size_t mask = new_capacity - 1;
        tombstones_ = 0;
        for (std::size_t i = 0; i < old_states.size(); ++i) {
            if (old_states[i] != kFull)
                continue;
            std::size_t pos = probeStart(old_slots[i].first);
            while (states_[pos] != kEmpty)
                pos = (pos + 1) & mask;
            states_[pos] = kFull;
            slots_[pos] = std::move(old_slots[i]);
        }
    }

    std::vector<Slot> slots_;
    std::vector<std::uint8_t> states_;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
};

} // namespace nocstar

#endif // NOCSTAR_SIM_FLAT_MAP_HH
