/**
 * @file
 * Versioned tagged-binary checkpoint serialization.
 *
 * A checkpoint file is a fixed header (magic, format version, a
 * 64-bit fingerprint of the producing configuration), a sequence of
 * tagged sections ([u32 tag][u64 length][payload]) and a trailing
 * FNV-1a checksum over every preceding byte. Sections are written and
 * read in the same fixed order; the reader validates the magic,
 * version, fingerprint and checksum up front and every field read is
 * bounds-checked against its section, so a truncated, corrupted or
 * mismatched file is rejected with a structured FatalError instead of
 * yielding a silently wrong simulation.
 *
 * The writer/reader pair is deliberately dumb: components serialize
 * themselves field by field (fixed-width little-endian integers and
 * IEEE doubles), so the byte stream is identical across hosts and a
 * restore is exact, not approximate.
 */

#ifndef NOCSTAR_SIM_CHECKPOINT_HH
#define NOCSTAR_SIM_CHECKPOINT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace nocstar::sim
{

/** Four-character section/format tags as big-endian-readable u32s. */
constexpr std::uint32_t
ckptTag(char a, char b, char c, char d)
{
    return (static_cast<std::uint32_t>(static_cast<unsigned char>(a))
            << 24) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(b))
            << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(c))
            << 8) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d));
}

/** Current checkpoint format version. Bump on any layout change. */
constexpr std::uint32_t kCheckpointVersion = 1;

/** 64-bit FNV-1a, used for the trailing checksum and fingerprints. */
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t hash = 0xcbf29ce484222325ULL);

/**
 * Serializes checkpoint sections into a growable buffer and writes
 * the framed file (header + sections + checksum) in one shot.
 */
class CkptWriter
{
  public:
    explicit CkptWriter(std::uint64_t fingerprint)
        : fingerprint_(fingerprint)
    {}

    /** Open a tagged section; every put lands inside it. */
    void begin(std::uint32_t tag);
    /** Close the open section, patching its length field. */
    void end();

    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        putLe(v, 4);
    }

    void
    u64(std::uint64_t v)
    {
        putLe(v, 8);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        putLe(bits, 8);
    }

    /** Serialized size so far (memory-audit accounting). */
    std::size_t sizeBytes() const { return buf_.size(); }

    /** Write the framed checkpoint to @p path (fatal on I/O error). */
    void save(const std::string &path) const;

    /** The framed bytes that save() would write (tests, audits). */
    std::vector<std::uint8_t> framed() const;

  private:
    void
    putLe(std::uint64_t v, unsigned bytes)
    {
        for (unsigned i = 0; i < bytes; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::uint64_t fingerprint_;
    std::vector<std::uint8_t> buf_;
    std::size_t sectionStart_ = 0;
    bool inSection_ = false;
};

/**
 * Validates and reads a checkpoint file. The constructor checks the
 * frame (magic, version, fingerprint, checksum); enter()/leave()
 * walk the sections in written order, and every getter bounds-checks
 * against the section payload, so malformed files fail fast with a
 * structured error naming the problem.
 */
class CkptReader
{
  public:
    /** Load and validate @p path against @p expect_fingerprint. */
    CkptReader(const std::string &path,
               std::uint64_t expect_fingerprint);

    /** Open the next section, which must carry @p tag. */
    void enter(std::uint32_t tag);
    /** Close the current section, which must be fully consumed. */
    void leave();

    std::uint8_t
    u8()
    {
        need(1);
        return buf_[pos_++];
    }

    std::uint32_t
    u32()
    {
        return static_cast<std::uint32_t>(getLe(4));
    }

    std::uint64_t
    u64()
    {
        return getLe(8);
    }

    double
    f64()
    {
        std::uint64_t bits = getLe(8);
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    /** True once every section has been consumed. */
    bool atEnd() const { return pos_ >= payloadEnd_; }

  private:
    void need(std::size_t n);
    std::uint64_t getLe(unsigned bytes);

    std::string path_;
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t payloadEnd_ = 0;
    std::size_t sectionEnd_ = 0;
    bool inSection_ = false;
};

} // namespace nocstar::sim

#endif // NOCSTAR_SIM_CHECKPOINT_HH
