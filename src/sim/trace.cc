/**
 * @file
 * Debug trace flag registry and line sink.
 */

#include "sim/trace.hh"

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>

namespace nocstar::trace
{

namespace detail
{

std::array<bool, numFlags> enabledFlags = {};
thread_local const Cycle *cycleSource = nullptr;

namespace
{

/** Sink shared by all threads; lines are written atomically under a
 * lock so parallel sweeps never interleave partial lines. */
std::ostream *sink = nullptr;
std::mutex sinkMutex;

} // namespace

void
write(Flag flag, const std::string &message)
{
    std::ostringstream line;
    line << std::setw(10) << currentCycle() << ": " << std::left
         << std::setw(9) << flagName(flag) << ": " << message << "\n";
    std::lock_guard<std::mutex> lock(sinkMutex);
    (sink ? *sink : std::cerr) << line.str();
}

} // namespace detail

const char *
flagName(Flag flag)
{
    switch (flag) {
      case Flag::TLB: return "TLB";
      case Flag::Fabric: return "Fabric";
      case Flag::Walker: return "Walker";
      case Flag::Shootdown: return "Shootdown";
      case Flag::EventQ: return "EventQ";
      case Flag::System: return "System";
      case Flag::Stats: return "Stats";
      case Flag::NumFlags: break;
    }
    return "?";
}

void
setFlag(Flag flag, bool on)
{
    detail::enabledFlags[static_cast<unsigned>(flag)] = on;
}

void
clearFlags()
{
    detail::enabledFlags.fill(false);
}

bool
setFlags(const std::string &csv)
{
    clearFlags();
    bool all_known = true;
    std::size_t pos = 0;
    while (pos <= csv.size() && !csv.empty()) {
        std::size_t comma = csv.find(',', pos);
        std::string token = csv.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? csv.size() + 1 : comma + 1;
        if (token.empty())
            continue;
        if (token == "All" || token == "all") {
            detail::enabledFlags.fill(true);
            continue;
        }
        bool matched = false;
        for (unsigned f = 0; f < numFlags; ++f) {
            if (token == flagName(static_cast<Flag>(f))) {
                detail::enabledFlags[f] = true;
                matched = true;
                break;
            }
        }
        if (!matched) {
            all_known = false;
            warn("unknown debug flag '", token,
                 "' (known: TLB, Fabric, Walker, Shootdown, EventQ, "
                 "System, Stats, All)");
        }
    }
    return all_known;
}

void
initFromEnv()
{
    if (const char *env = std::getenv("NOCSTAR_DEBUG_FLAGS"))
        setFlags(env);
}

void
setSink(std::ostream *os)
{
    std::lock_guard<std::mutex> lock(detail::sinkMutex);
    detail::sink = os;
}

namespace
{

/** Pick up NOCSTAR_DEBUG_FLAGS before main() runs. The flag array is
 * constant-initialized, so there is no initialization-order hazard. */
struct EnvInit
{
    EnvInit() { initFromEnv(); }
} envInit;

} // namespace

} // namespace nocstar::trace
