/**
 * @file
 * Error and status reporting helpers, in the spirit of gem5's
 * base/logging.hh. panic() flags simulator bugs; fatal() flags user
 * configuration errors.
 */

#ifndef NOCSTAR_SIM_LOGGING_HH
#define NOCSTAR_SIM_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nocstar
{

/** Concatenate any streamable arguments into a string. */
template <typename... Args>
std::string
strCat(const Args &...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Thrown by panic(); should never escape in a correct simulator. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

/** Thrown by fatal(); indicates an invalid user configuration. */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Report an internal simulator bug and abort via exception so tests can
 * assert on misuse.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError(strCat("panic: ", args...));
}

/** Report an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError(strCat("fatal: ", args...));
}

/** Warn about questionable but survivable conditions. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::cerr << "warn: " << strCat(args...) << "\n";
}

/**
 * Informational status output. Goes to stderr: stdout is reserved for
 * the machine-parsed tables the sweep benches print, which must stay
 * byte-identical run to run.
 */
template <typename... Args>
void
inform(const Args &...args)
{
    std::cerr << "info: " << strCat(args...) << "\n";
}

} // namespace nocstar

/** Warn at most once per call site (rate-limited diagnostics). */
#define warn_once(...) \
    do { \
        static bool _nocstar_once = false; \
        if (!_nocstar_once) { \
            _nocstar_once = true; \
            ::nocstar::warn(__VA_ARGS__); \
        } \
    } while (0)

/** Warn whenever @p cond holds. */
#define warn_if(cond, ...) \
    do { \
        if (cond) \
            ::nocstar::warn(__VA_ARGS__); \
    } while (0)

/** Warn the first time @p cond holds at this call site, then stay
 * silent (the rate-limited form for per-access conditions). */
#define warn_if_once(cond, ...) \
    do { \
        static bool _nocstar_once = false; \
        if (!_nocstar_once && (cond)) { \
            _nocstar_once = true; \
            ::nocstar::warn(__VA_ARGS__); \
        } \
    } while (0)

#endif // NOCSTAR_SIM_LOGGING_HH
