/**
 * @file
 * Trace recorder implementation and Chrome trace-event JSON export.
 */

#include "sim/trace_recorder.hh"

#include <fstream>

#include "sim/json.hh"

namespace nocstar::sim
{

#ifndef NOCSTAR_NO_TRACE
namespace detail
{
bool recordingActive = false;
} // namespace detail
#endif

const char *
laneName(Lane lane)
{
    switch (lane) {
      case Lane::Translation: return "translations (per core)";
      case Lane::Slice: return "L2 TLB slices";
      case Lane::Walker: return "page walkers";
      case Lane::Link: return "fabric links";
      case Lane::Message: return "fabric messages (per source)";
      case Lane::Counter: return "counters";
      case Lane::Shard: return "shard engine (window phases)";
      case Lane::NumLanes: break;
    }
    return "?";
}

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder instance;
    return instance;
}

void
TraceRecorder::start(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity ? capacity : 1;
    ring_.clear();
    ring_.reserve(capacity_);
    next_ = 0;
    wrapped_ = false;
    total_ = 0;
    enabled_ = true;
#ifndef NOCSTAR_NO_TRACE
    detail::recordingActive = true;
#endif
}

void
TraceRecorder::stop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = false;
#ifndef NOCSTAR_NO_TRACE
    detail::recordingActive = false;
#endif
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    next_ = 0;
    wrapped_ = false;
    total_ = 0;
}

std::size_t
TraceRecorder::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return wrapped_ ? capacity_ : ring_.size();
}

std::uint64_t
TraceRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return wrapped_ ? total_ - capacity_ : 0;
}

std::uint64_t
TraceRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

void
TraceRecorder::push(const Record &rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!enabled_)
        return;
    ++total_;
    if (ring_.size() < capacity_) {
        ring_.push_back(rec);
        next_ = ring_.size() % capacity_;
        return;
    }
    // Full: overwrite the oldest slot.
    ring_[next_] = rec;
    next_ = (next_ + 1) % capacity_;
    wrapped_ = true;
}

void
TraceRecorder::span(Lane lane, std::uint32_t track, const char *name,
                    Cycle start, Cycle end, std::uint64_t arg0,
                    std::uint64_t arg1, const char *arg0_name,
                    const char *arg1_name)
{
    push(Record{name, arg0_name, arg1_name, start,
                end > start ? end - start : 0, arg0, arg1, track, lane,
                Kind::Span});
}

void
TraceRecorder::instant(Lane lane, std::uint32_t track, const char *name,
                       Cycle at, std::uint64_t arg0, std::uint64_t arg1,
                       const char *arg0_name, const char *arg1_name)
{
    push(Record{name, arg0_name, arg1_name, at, 0, arg0, arg1, track,
                lane, Kind::Instant});
}

void
TraceRecorder::counter(std::uint32_t track, const char *name, Cycle at,
                       std::uint64_t value)
{
    push(Record{name, nullptr, nullptr, at, 0, value, 0, track,
                Lane::Counter, Kind::Counter});
}

std::vector<TraceRecorder::Record>
TraceRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!wrapped_)
        return ring_;
    std::vector<Record> out;
    out.reserve(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i)
        out.push_back(ring_[(next_ + i) % capacity_]);
    return out;
}

namespace
{

void
emitRecord(std::ostream &os, const TraceRecorder::Record &rec)
{
    using Kind = TraceRecorder::Kind;
    if (rec.kind == Kind::Counter) {
        // Counter samples carry exactly one value; Perfetto stacks
        // samples with the same (pid, tid, name) into one track.
        os << "{\"name\":\"" << json::escape(rec.name)
           << "\",\"ph\":\"C\",\"ts\":" << rec.start
           << ",\"pid\":" << static_cast<unsigned>(rec.lane)
           << ",\"tid\":" << rec.track << ",\"args\":{\"value\":"
           << rec.arg0 << "}}";
        return;
    }
    os << "{\"name\":\"" << json::escape(rec.name) << "\",\"ph\":\""
       << (rec.kind == Kind::Instant ? 'i' : 'X')
       << "\",\"ts\":" << rec.start;
    if (rec.kind != Kind::Instant)
        os << ",\"dur\":" << rec.duration;
    else
        os << ",\"s\":\"t\"";
    os << ",\"pid\":" << static_cast<unsigned>(rec.lane)
       << ",\"tid\":" << rec.track;
    if (rec.arg0Name || rec.arg1Name) {
        os << ",\"args\":{";
        bool first = true;
        if (rec.arg0Name) {
            os << "\"" << json::escape(rec.arg0Name)
               << "\":" << rec.arg0;
            first = false;
        }
        if (rec.arg1Name) {
            if (!first)
                os << ",";
            os << "\"" << json::escape(rec.arg1Name)
               << "\":" << rec.arg1;
        }
        os << "}";
    }
    os << "}";
}

} // namespace

void
TraceRecorder::exportChromeJson(std::ostream &os) const
{
    std::vector<Record> records = snapshot();
    std::uint64_t lost = dropped();

    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"clock\":\"cycles (shown as us)\",\"dropped\":"
       << lost << "},\"traceEvents\":[";
    bool first = true;
    // Name the lanes so Perfetto shows readable process rows.
    for (unsigned lane = 0; lane < numLanes; ++lane) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << lane
           << ",\"tid\":0,\"args\":{\"name\":\""
           << json::escape(laneName(static_cast<Lane>(lane)))
           << "\"}}";
    }
    for (const Record &rec : records) {
        os << ",\n";
        emitRecord(os, rec);
    }
    os << "]}\n";
}

bool
TraceRecorder::exportChromeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    exportChromeJson(out);
    return static_cast<bool>(out);
}

} // namespace nocstar::sim
