/**
 * @file
 * Zipf sampler implementation (rejection inversion).
 */

#include "sim/random.hh"

#include <algorithm>
#include <cmath>

namespace nocstar
{

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    if (n == 0)
        panic("ZipfSampler over empty range");
    if (alpha < 0)
        panic("ZipfSampler with negative alpha");
    hx0_ = h(0.5) - 1.0;
    hn_ = h(static_cast<double>(n_) + 0.5);
    s_ = 1.0 - hInverse(h(1.5) - std::pow(2.0, -alpha_));

    if (alpha_ != 0.0) {
        std::uint64_t cached = std::min<std::uint64_t>(n_, 4096);
        rejectBound_.reserve(cached);
        for (std::uint64_t k = 1; k <= cached; ++k) {
            double kd = static_cast<double>(k);
            rejectBound_.push_back(h(kd + 0.5) - std::pow(kd, -alpha_));
        }
    }
}

double
ZipfSampler::h(double x) const
{
    // Integral of 1/x^alpha.
    if (alpha_ == 1.0)
        return std::log(x);
    return std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
}

double
ZipfSampler::hInverse(double x) const
{
    if (alpha_ == 1.0)
        return std::exp(x);
    return std::pow(x * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
}

std::uint64_t
ZipfSampler::sample(Random &rng) const
{
    if (alpha_ == 0.0)
        return rng.below(n_); // uniform special case

    while (true) {
        double u = hn_ + rng.uniform() * (hx0_ - hn_);
        double x = hInverse(u);
        auto k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        else if (k > n_)
            k = n_;
        double kd = static_cast<double>(k);
        if (kd - x <= s_)
            return k - 1;
        double bound = k <= rejectBound_.size()
            ? rejectBound_[k - 1]
            : h(kd + 0.5) - std::pow(kd, -alpha_);
        if (u >= bound)
            return k - 1;
    }
}

} // namespace nocstar
