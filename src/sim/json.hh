/**
 * @file
 * Minimal JSON emission helpers shared by the stats dumper, the trace
 * recorder and the bench harness. Only what the simulator needs to
 * *write* valid JSON: string escaping and finite number formatting.
 */

#ifndef NOCSTAR_SIM_JSON_HH
#define NOCSTAR_SIM_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace nocstar::json
{

/** Escape @p s for inclusion inside a JSON string literal. */
inline std::string
escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Write @p v as a JSON number: integers exactly, reals with enough
 * digits to round-trip, non-finite values (which JSON cannot express)
 * as 0.
 */
inline void
number(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace nocstar::json

#endif // NOCSTAR_SIM_JSON_HH
