/**
 * @file
 * Structured simulation-event capture: a bounded ring buffer of spans
 * and instants (translation lifecycles, fabric link occupancy, page
 * walks) with a Chrome trace-event JSON exporter, so a full translation
 * timeline can be inspected visually in Perfetto / chrome://tracing.
 *
 * Capture is off by default and gated by one cached global bool, so an
 * instrumentation point costs a single predicted branch when disabled
 * (and nothing at all under -DNOCSTAR_NO_TRACE, where recording() is a
 * compile-time false). Record names and argument names must be string
 * literals (or otherwise outlive the recorder): records store the
 * pointers, never copies.
 */

#ifndef NOCSTAR_SIM_TRACE_RECORDER_HH
#define NOCSTAR_SIM_TRACE_RECORDER_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace nocstar::sim
{

/** Display lane (Chrome "process") a record belongs to. */
enum class Lane : std::uint8_t
{
    Translation, ///< per-core translation lifecycles
    Slice,       ///< L2 TLB slice / bank array occupancy
    Walker,      ///< per-core page-table walkers
    Link,        ///< fabric link hold spans
    Message,     ///< fabric message setup/traversal and denials
    Counter,     ///< sampled counter tracks (queue depth, misses, ...)
    Shard,       ///< shard-engine window phases and crew park/wake
    NumLanes,
};

constexpr unsigned numLanes = static_cast<unsigned>(Lane::NumLanes);

/** Human-readable lane name (Chrome process_name metadata). */
const char *laneName(Lane lane);

/**
 * Bounded in-memory recorder. One global instance is shared by all
 * instrumentation points; when the buffer fills, the oldest records
 * are overwritten and counted as dropped.
 */
class TraceRecorder
{
  public:
    /** Record flavor, mapping 1:1 onto a Chrome "ph" phase. */
    enum class Kind : std::uint8_t
    {
        Span,    ///< "ph":"X" complete event
        Instant, ///< "ph":"i" point event
        Counter, ///< "ph":"C" counter-track sample
    };

    struct Record
    {
        const char *name;     ///< static string: event label
        const char *arg0Name; ///< static string or nullptr
        const char *arg1Name; ///< static string or nullptr
        Cycle start;
        Cycle duration;       ///< 0 for instants and counters
        std::uint64_t arg0;   ///< for counters: the sampled value
        std::uint64_t arg1;
        std::uint32_t track;  ///< Chrome tid within the lane
        Lane lane;
        Kind kind;
    };

    /** The process-wide recorder used by the instrumentation points. */
    static TraceRecorder &global();

    /** Begin capturing, with room for @p capacity records. */
    void start(std::size_t capacity = defaultCapacity);

    /** Stop capturing (records are kept until clear()/start()). */
    void stop();

    bool enabled() const { return enabled_; }

    /** Drop all captured records and the dropped count. */
    void clear();

    /** Records currently held (<= capacity). */
    std::size_t size() const;

    /** Records overwritten because the ring was full. */
    std::uint64_t dropped() const;

    /** Records ever offered while enabled (held + dropped). */
    std::uint64_t recorded() const;

    /** Record a span covering cycles [@p start, @p end]. */
    void span(Lane lane, std::uint32_t track, const char *name,
              Cycle start, Cycle end, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0, const char *arg0_name = nullptr,
              const char *arg1_name = nullptr);

    /** Record a point event at cycle @p at. */
    void instant(Lane lane, std::uint32_t track, const char *name,
                 Cycle at, std::uint64_t arg0 = 0,
                 std::uint64_t arg1 = 0,
                 const char *arg0_name = nullptr,
                 const char *arg1_name = nullptr);

    /**
     * Record a counter-track sample: @p value at cycle @p at. Each
     * distinct (track, name) pair renders as its own stacked counter
     * track in Perfetto ("ph":"C"); @p name must be a string literal.
     */
    void counter(std::uint32_t track, const char *name, Cycle at,
                 std::uint64_t value);

    /** Records in ring order, oldest first (test / analysis hook). */
    std::vector<Record> snapshot() const;

    /**
     * Write everything as a Chrome trace-event JSON document
     * (chrome://tracing, Perfetto "Open trace file"). Cycles are
     * exported as microseconds, so one display "us" is one cycle.
     */
    void exportChromeJson(std::ostream &os) const;

    /** exportChromeJson() to a file; @return false if unwritable. */
    bool exportChromeJson(const std::string &path) const;

    static constexpr std::size_t defaultCapacity = 1u << 20;

  private:
    void push(const Record &rec);

    mutable std::mutex mutex_;
    std::vector<Record> ring_;
    std::size_t capacity_ = 0;
    std::size_t next_ = 0; ///< slot the next record lands in
    bool wrapped_ = false;
    bool enabled_ = false;
    std::uint64_t total_ = 0;
};

#ifdef NOCSTAR_NO_TRACE
/** Compiled-out capture: branches on recording() fold away. */
inline constexpr bool
recording()
{
    return false;
}
#else
namespace detail
{
/** Mirrors TraceRecorder::global().enabled(); one cached bool. */
extern bool recordingActive;
} // namespace detail

/** @return true while the global recorder is capturing. */
inline bool
recording()
{
    return detail::recordingActive;
}
#endif

/** Shorthand for TraceRecorder::global(). */
inline TraceRecorder &
recorder()
{
    return TraceRecorder::global();
}

} // namespace nocstar::sim

#endif // NOCSTAR_SIM_TRACE_RECORDER_HH
