/**
 * @file
 * Fault-plan validation and text-format parsing.
 */

#include "sim/fault.hh"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace nocstar::sim
{

namespace
{

bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty() || tok[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

bool
parseProb(const std::string &tok, double &out)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    if (v < 0.0 || v > 1.0)
        return false;
    out = v;
    return true;
}

/** Direction letter -> GridTopology direction index (E/W/N/S). */
int
directionIndex(const std::string &tok)
{
    if (tok == "E" || tok == "e") return 0;
    if (tok == "W" || tok == "w") return 1;
    if (tok == "N" || tok == "n") return 2;
    if (tok == "S" || tok == "s") return 3;
    return -1;
}

bool
parseDuration(const std::string &tok, Cycle &out)
{
    if (tok == "permanent") {
        out = 0;
        return true;
    }
    std::uint64_t v = 0;
    if (!parseU64(tok, v) || v == 0)
        return false;
    out = v;
    return true;
}

} // namespace

std::vector<std::string>
FaultPlan::validate(unsigned link_index_space) const
{
    std::vector<std::string> errors;
    auto prob = [&errors](double p, const char *what) {
        if (p < 0.0 || p > 1.0)
            errors.push_back(strCat(what, " probability ", p,
                                    " outside [0, 1]"));
    };
    prob(grantLossProb, "grant-loss");
    prob(sliceEccProb, "slice-ecc");
    prob(walkEccProb, "walk-ecc");

    for (std::size_t i = 0; i < linkFaults.size(); ++i) {
        const LinkFaultSpec &f = linkFaults[i];
        if (link_index_space && f.link >= link_index_space)
            errors.push_back(strCat("link fault #", i, ": link id ",
                                    f.link, " beyond the mesh (",
                                    link_index_space, " links)"));
    }

    if (!empty()) {
        if (retryBudget == 0)
            errors.push_back("retry-budget must be >= 1");
        if (backoffCap == 0)
            errors.push_back("backoff-cap must be >= 1");
    }
    return errors;
}

FaultPlan
FaultPlan::parse(std::istream &in, const std::string &origin)
{
    FaultPlan plan;
    std::vector<std::string> errors;
    std::string line;
    unsigned lineno = 0;

    auto bad = [&errors, &origin, &lineno](const std::string &why) {
        errors.push_back(strCat(origin, ":", lineno, ": ", why));
    };

    while (std::getline(in, line)) {
        ++lineno;
        if (std::size_t hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        std::istringstream tokens(line);
        std::string word;
        if (!(tokens >> word))
            continue; // blank / comment-only line

        std::vector<std::string> args;
        std::string tok;
        while (tokens >> tok)
            args.push_back(tok);

        std::uint64_t v = 0;
        if (word == "seed") {
            if (args.size() != 1 || !parseU64(args[0], v))
                bad("seed needs one non-negative integer");
            else
                plan.seed = v;
        } else if (word == "link") {
            LinkFaultSpec f;
            int dir = args.size() >= 2 ? directionIndex(args[1]) : -1;
            std::uint64_t tile = 0;
            if (args.size() != 4 || !parseU64(args[0], tile) ||
                dir < 0 || !parseU64(args[2], f.start) ||
                !parseDuration(args[3], f.duration)) {
                bad("link needs: TILE E|W|N|S START "
                    "DURATION|permanent");
            } else {
                f.link = static_cast<std::uint32_t>(tile * 4 +
                                                    dir);
                plan.linkFaults.push_back(f);
            }
        } else if (word == "link-id") {
            LinkFaultSpec f;
            std::uint64_t id = 0;
            if (args.size() != 3 || !parseU64(args[0], id) ||
                !parseU64(args[1], f.start) ||
                !parseDuration(args[2], f.duration)) {
                bad("link-id needs: FLAT START DURATION|permanent");
            } else {
                f.link = static_cast<std::uint32_t>(id);
                plan.linkFaults.push_back(f);
            }
        } else if (word == "grant-loss") {
            if (args.size() != 1 ||
                !parseProb(args[0], plan.grantLossProb))
                bad("grant-loss needs one probability in [0, 1]");
        } else if (word == "slice-ecc") {
            if (args.size() != 1 ||
                !parseProb(args[0], plan.sliceEccProb))
                bad("slice-ecc needs one probability in [0, 1]");
        } else if (word == "walk-ecc") {
            if (args.size() != 1 ||
                !parseProb(args[0], plan.walkEccProb))
                bad("walk-ecc needs one probability in [0, 1]");
        } else if (word == "retry-budget") {
            if (args.size() != 1 || !parseU64(args[0], v) || v == 0)
                bad("retry-budget needs one positive integer");
            else
                plan.retryBudget = static_cast<unsigned>(v);
        } else if (word == "backoff-cap") {
            if (args.size() != 1 || !parseU64(args[0], v) || v == 0)
                bad("backoff-cap needs one positive integer");
            else
                plan.backoffCap = v;
        } else if (word == "watchdog") {
            bool is_fatal = args.size() == 2 && args[1] == "fatal";
            if ((args.size() != 1 && !is_fatal) ||
                !parseU64(args[0], v)) {
                bad("watchdog needs: CYCLES [fatal]");
            } else {
                plan.watchdogCycles = v;
                plan.watchdogFatal = is_fatal;
            }
        } else {
            bad(strCat("unknown directive '", word, "'"));
        }
    }

    for (const std::string &e : plan.validate())
        errors.push_back(strCat(origin, ": ", e));

    if (!errors.empty()) {
        std::string all;
        for (const std::string &e : errors)
            all += "\n  " + e;
        fatal("invalid fault plan:", all);
    }
    return plan;
}

FaultPlan
FaultPlan::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fault plan '", path, "'");
    return parse(in, path);
}

} // namespace nocstar::sim
