/**
 * @file
 * Event queue implementation.
 */

#include "sim/event_queue.hh"

namespace nocstar
{

Event::~Event()
{
    if (_scheduled)
        panic("event destroyed while still scheduled");
}

EventQueue::~EventQueue()
{
    // Pooled lambda events may still be pending at teardown; detach
    // them so their destructors do not trip the scheduled() assertion.
    for (PooledLambdaEvent *ev : lambdaAll_) {
        ev->_scheduled = false;
        delete ev;
    }
}

void
EventQueue::schedule(Event *ev, Cycle when)
{
    if (ev->_scheduled)
        panic("double schedule of event already queued for cycle ",
              ev->_when);
    if (when < _curCycle)
        panic("scheduling event in the past: ", when, " < ", _curCycle);

    ev->_scheduled = true;
    ev->_when = when;
    ++ev->_generation;
    _queue.push(Record{when, ev->priority(), _nextSeq++, ev->_generation,
                       ev});
    ++_numScheduled;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        panic("deschedule of unscheduled event");
    // Lazy removal: bump the generation so the queued record is stale.
    ev->_scheduled = false;
    ev->_when = invalidCycle;
    ++ev->_generation;
    --_numScheduled;
}

void
EventQueue::reschedule(Event *ev, Cycle when)
{
    if (ev->_scheduled)
        deschedule(ev);
    schedule(ev, when);
}

bool
EventQueue::serviceOne()
{
    Record rec = _queue.top();
    _queue.pop();

    Event *ev = rec.event;
    if (!ev->_scheduled || ev->_generation != rec.generation)
        return false; // stale record from a deschedule/reschedule

    _curCycle = rec.when;
    ev->_scheduled = false;
    ev->_when = invalidCycle;
    --_numScheduled;
    ev->process();
    return true;
}

std::uint64_t
EventQueue::run(Cycle limit)
{
    std::uint64_t processed = 0;
    while (!_queue.empty()) {
        if (_queue.top().when > limit)
            break;
        if (serviceOne())
            ++processed;
    }
    // Advance the clock to the limit if we stopped on it and work remains.
    if (limit != invalidCycle && !_queue.empty() && _curCycle < limit)
        _curCycle = limit;
    return processed;
}

void
EventQueue::runOneCycle()
{
    if (_queue.empty())
        return;
    Cycle head = _queue.top().when;
    while (!_queue.empty() && _queue.top().when == head)
        serviceOne();
}

void
EventQueue::scheduleLambda(Cycle when, std::function<void()> fn,
                           Event::Priority prio)
{
    PooledLambdaEvent *ev;
    if (!lambdaFree_.empty()) {
        ev = lambdaFree_.back();
        lambdaFree_.pop_back();
    } else {
        ev = new PooledLambdaEvent(this);
        lambdaAll_.push_back(ev);
    }
    ev->fn_ = std::move(fn);
    ev->_priority = prio;
    schedule(ev, when);
}

} // namespace nocstar
