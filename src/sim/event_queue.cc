/**
 * @file
 * Event queue implementation.
 */

#include "sim/event_queue.hh"

#include <bit>

#include "sim/trace.hh"

namespace nocstar
{

Event::~Event()
{
    if (_scheduled)
        panic("event destroyed while still scheduled");
}

EventQueue::EventQueue()
{
    // Trace lines emitted by components of this simulation are stamped
    // with this queue's clock (thread-local, so parallel sweeps each
    // stamp with their own simulation's time).
    trace::setCycleSource(&_curCycle);
}

EventQueue::~EventQueue()
{
    trace::clearCycleSource(&_curCycle);
    // Pooled lambda events may still be pending at teardown; detach
    // them so their destructors do not trip the scheduled() assertion.
    for (PooledLambdaEvent *ev : lambdaAll_) {
        ev->_scheduled = false;
        delete ev;
    }
}

void
EventQueue::schedule(Event *ev, Cycle when)
{
    if (ev->_scheduled)
        panic("double schedule of event already queued for cycle ",
              ev->_when);
    if (when < _curCycle)
        panic("scheduling event in the past: ", when, " < ", _curCycle);

    TRACE(EventQ, "schedule event prio ", ev->priority(), " for cycle ",
          when);
    ev->_scheduled = true;
    ev->_when = when;
    ++ev->_generation;
    if (when - _curCycle < wheelSize)
        pushToWheel(when, WheelRecord{ev->priority(), _nextSeq++,
                                      ev->_generation, ev});
    else
        overflow_.push(Record{when, ev->priority(), _nextSeq++,
                              ev->_generation, ev});
    ++_numScheduled;
}

void
EventQueue::pushToWheel(Cycle when, const WheelRecord &rec)
{
    std::size_t bucket = when & wheelMask;
    wheel_[bucket].push_back(rec);
    occupied_[bucket >> 6] |= std::uint64_t{1} << (bucket & 63);
    ++wheelCount_;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        panic("deschedule of unscheduled event");
    TRACE(EventQ, "deschedule event queued for cycle ", ev->_when);
    // Lazy removal: bump the generation so the queued record is stale.
    ev->_scheduled = false;
    ev->_when = invalidCycle;
    ++ev->_generation;
    --_numScheduled;
}

void
EventQueue::reschedule(Event *ev, Cycle when)
{
    if (ev->_scheduled)
        deschedule(ev);
    schedule(ev, when);
}

Cycle
EventQueue::nextEventCycle() const
{
    Cycle next = invalidCycle;
    if (wheelCount_ > 0) {
        // Wheel entries always sit within [curCycle, curCycle +
        // wheelSize), so the first occupied bucket at or after the
        // current one (circularly) identifies the earliest cycle.
        std::size_t start = _curCycle & wheelMask;
        for (std::size_t w = 0; w <= wheelWords; ++w) {
            std::size_t word = ((start >> 6) + w) & (wheelWords - 1);
            std::uint64_t bits = occupied_[word];
            if (w == 0)
                bits &= ~std::uint64_t{0} << (start & 63);
            if (!bits)
                continue;
            std::size_t bucket =
                (word << 6) +
                static_cast<std::size_t>(std::countr_zero(bits));
            next = _curCycle + ((bucket - start) & wheelMask);
            break;
        }
    }
    if (!overflow_.empty() && overflow_.top().when < next)
        next = overflow_.top().when;
    return next;
}

bool
EventQueue::quietUntil(Cycle when) const
{
    if (when - _curCycle >= wheelSize)
        return false; // window leaves the horizon: report conservatively
    if (!overflow_.empty() && overflow_.top().when <= when)
        return false;
    // Check the occupancy bits of every bucket in [_curCycle, when].
    // Bucket bits are maintained precisely (cleared the moment a bucket
    // drains, even mid-processCycle), so a clear window really means
    // nothing -- live or stale -- is pending there.
    std::size_t start = _curCycle & wheelMask;
    std::size_t n = static_cast<std::size_t>(when - _curCycle) + 1;
    std::size_t word = start >> 6;
    std::uint64_t bits = occupied_[word] >> (start & 63);
    std::size_t avail = 64 - (start & 63);
    for (;;) {
        if (n <= avail) {
            std::uint64_t keep =
                n == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
            return (bits & keep) == 0;
        }
        if (bits)
            return false;
        n -= avail;
        word = (word + 1) & (wheelWords - 1);
        bits = occupied_[word];
        avail = 64;
    }
}

Cycle
EventQueue::firstBusyCycle(Cycle when) const
{
    // nextEventCycle() is exactly "earliest cycle with any pending
    // record, live or stale": the occupancy bitmap is maintained
    // precisely and the overflow head bounds everything beyond the
    // horizon. Clip it to the queried window.
    Cycle busy = nextEventCycle();
    return busy <= when ? busy : invalidCycle;
}

void
EventQueue::foldOverflow()
{
    // Bucket indices are interpreted relative to _curCycle, so a record
    // may only enter the wheel once its cycle lies within [_curCycle,
    // _curCycle + wheelSize). Folding relative to any anchor ahead of
    // the clock (e.g. the next head cycle before the clock reaches it)
    // would let the record alias to `when - wheelSize` on a later scan
    // if the clock never catches up -- which happens whenever run()
    // stops on its limit, or the head bucket holds only records
    // invalidated by deschedule().
    while (!overflow_.empty() &&
           overflow_.top().when - _curCycle < wheelSize) {
        const Record &rec = overflow_.top();
        pushToWheel(rec.when, WheelRecord{rec.priority, rec.seq,
                                          rec.generation, rec.event});
        overflow_.pop();
    }
}

std::uint64_t
EventQueue::processCycle(Cycle cycle)
{
    std::size_t index = cycle & wheelMask;
    std::vector<WheelRecord> &bucket = wheel_[index];
    std::uint64_t processed = 0;

    auto clear_bit = [&] {
        occupied_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
    };

    // Fast path: schedule() appends in seq order, so a bucket whose
    // records run (priority, seq)-non-decreasing front to back is
    // already in dispatch order and can be consumed by cursor.
    // Records folded in from the overflow heap carry older seqs and
    // can break the order, as can a lower-priority record appended
    // behind a higher-priority one; the `sorted` watermark verifies
    // the invariant incrementally (covering same-cycle records
    // appended by process()) and the first violation falls through to
    // the exact min-scan below.
    auto ordered = [](const WheelRecord &a, const WheelRecord &b) {
        return a.priority < b.priority ||
               (a.priority == b.priority && a.seq < b.seq);
    };
    std::size_t cursor = 0;
    std::size_t sorted = 0; // [0, sorted] verified non-decreasing
    while (cursor < bucket.size()) {
        while (sorted + 1 < bucket.size() &&
               ordered(bucket[sorted], bucket[sorted + 1]))
            ++sorted;
        if (sorted + 1 < bucket.size())
            break; // a lower priority arrived behind a higher one
        WheelRecord rec = bucket[cursor++];
        --wheelCount_;
        if (cursor == bucket.size()) {
            // Drain the bucket *before* dispatching its last record:
            // handlers (and the hit-streak bypass they host) observe
            // precise occupancy for this cycle.
            bucket.clear();
            cursor = 0;
            sorted = 0;
            clear_bit();
        }
        Event *ev = rec.event;
        if (!ev->_scheduled || ev->_generation != rec.generation)
            continue; // stale record from a deschedule/reschedule
        ev->_scheduled = false;
        ev->_when = invalidCycle;
        --_numScheduled;
        TRACE(EventQ, "process event prio ", rec.priority, " seq ",
              rec.seq);
        ev->process();
        ++processed;
    }
    if (cursor > 0)
        bucket.erase(bucket.begin(),
                     bucket.begin() + static_cast<std::ptrdiff_t>(cursor));

    // Exact fallback for mixed-priority buckets: smallest (priority,
    // seq) first; buckets are small, so a linear scan beats maintaining
    // a heap. Same-cycle records appended by process() are picked up by
    // later passes.
    while (!bucket.empty()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < bucket.size(); ++i) {
            if (bucket[i].priority < bucket[best].priority ||
                (bucket[i].priority == bucket[best].priority &&
                 bucket[i].seq < bucket[best].seq))
                best = i;
        }
        WheelRecord rec = bucket[best];
        bucket[best] = bucket.back();
        bucket.pop_back();
        --wheelCount_;
        if (bucket.empty())
            clear_bit();

        Event *ev = rec.event;
        if (!ev->_scheduled || ev->_generation != rec.generation)
            continue; // stale record from a deschedule/reschedule

        ev->_scheduled = false;
        ev->_when = invalidCycle;
        --_numScheduled;
        TRACE(EventQ, "process event prio ", rec.priority, " seq ",
              rec.seq);
        ev->process();
        ++processed;
    }
    return processed;
}

std::uint64_t
EventQueue::run(Cycle limit)
{
    trace::setCycleSource(&_curCycle);
    std::uint64_t processed = 0;
    while (_numScheduled > 0) {
        Cycle head = nextEventCycle();
        if (head > limit)
            break;
        // Advance the clock before folding so newly folded records are
        // within the wheel horizon of _curCycle (see foldOverflow()).
        _curCycle = head;
        foldOverflow();
        processed += processCycle(head);
    }
    // Advance the clock to the limit if we stopped on it and work remains.
    if (limit != invalidCycle && _numScheduled > 0 && _curCycle < limit)
        _curCycle = limit;
    return processed;
}

void
EventQueue::runOneCycle()
{
    if (wheelCount_ == 0 && overflow_.empty())
        return;
    Cycle head = nextEventCycle();
    _curCycle = head;
    foldOverflow();
    processCycle(head);
}

void
EventQueue::scheduleLambda(Cycle when, SimCallback fn,
                           Event::Priority prio)
{
    PooledLambdaEvent *ev;
    if (!lambdaFree_.empty()) {
        ev = lambdaFree_.back();
        lambdaFree_.pop_back();
    } else {
        ev = new PooledLambdaEvent(this);
        lambdaAll_.push_back(ev);
    }
    ev->fn_ = std::move(fn);
    ev->_priority = prio;
    schedule(ev, when);
}

} // namespace nocstar
