/**
 * @file
 * Primitives for deterministic sharded execution inside one simulation:
 * a persistent crew of window workers with a spin barrier (windows are
 * microseconds; a condition-variable handoff per window would eat the
 * parallel speedup) that parks idle workers on a condition variable
 * when a window is slow to arrive, and single-writer per-shard
 * mailboxes drained in a deterministic merge order at window
 * boundaries so results are independent of thread interleaving.
 *
 * Safety model: during a window each worker touches only its own
 * shard's state (and its own mailbox lane); between windows only the
 * caller thread runs. The barrier's release/acquire pair on the window
 * generation publishes each side's writes to the other, so no other
 * synchronization is needed anywhere in the sharded engine.
 */

#ifndef NOCSTAR_SIM_SHARD_HH
#define NOCSTAR_SIM_SHARD_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nocstar::sim
{

/**
 * A fixed crew of shard workers reused across every window of a run.
 * Shard 0 always executes on the calling thread; shards 1..N-1 live as
 * long-running loops on dedicated threads (not a ThreadPool, whose
 * single-worker degenerate mode runs tasks inline on the caller -- a
 * feature for map(), but fatal for an infinite worker loop), parked in
 * a bounded spin (with yield backoff) between windows. runWindow(fn)
 * invokes fn(shard) for every shard concurrently and returns once all
 * have finished.
 */
class ShardCrew
{
  public:
    using WindowFn = std::function<void(unsigned shard)>;
    /**
     * Observability hook invoked on a *worker thread* when it parks on
     * the condvar (@p parked true) and again when it wakes (@p parked
     * false). It runs concurrently with the caller thread, so the hook
     * must do its own synchronization; it is passed at construction
     * (before the workers spawn) so the workers never race a setter.
     * Never invoked for shard 0 or in serial mode.
     */
    using ParkHook = std::function<void(unsigned shard, bool parked)>;

    /**
     * @param parallel run shards 1..N-1 on worker threads. When false
     * (or N == 1) every shard executes on the caller thread instead --
     * results are identical by construction (shards touch disjoint
     * state within a window), so serial mode is the right fallback
     * when the host has fewer free CPUs than shards: a spin barrier
     * across oversubscribed workers costs scheduler round-trips per
     * window instead of buying wall-clock time.
     */
    explicit ShardCrew(unsigned shards, bool parallel = true,
                       ParkHook park_hook = {})
        : shards_(shards), parallel_(parallel && shards > 1),
          parkHook_(std::move(park_hook))
    {
        if (!parallel_)
            return;
        workers_.reserve(shards_ - 1);
        for (unsigned s = 1; s < shards_; ++s)
            workers_.emplace_back([this, s] { workerLoop(s); });
    }

    ~ShardCrew()
    {
        if (parallel_) {
            stop_.store(true, std::memory_order_release);
            generation_.fetch_add(1); // seq_cst, see wakeSleepers()
            wakeSleepers();
            for (std::thread &worker : workers_)
                worker.join();
        }
    }

    ShardCrew(const ShardCrew &) = delete;
    ShardCrew &operator=(const ShardCrew &) = delete;

    unsigned shards() const { return shards_; }

    /** True when shards 1..N-1 run on worker threads. */
    bool parallel() const { return parallel_; }

    /** Run @p fn once per shard, in parallel; barriers on completion. */
    void
    runWindow(const WindowFn &fn)
    {
        if (!parallel_) {
            for (unsigned s = 0; s < shards_; ++s)
                fn(s);
            return;
        }
        fn_ = &fn;
        arrived_.store(0, std::memory_order_relaxed);
        generation_.fetch_add(1); // seq_cst, see wakeSleepers()
        wakeSleepers();
        fn(0);
        unsigned spins = 0;
        while (arrived_.load(std::memory_order_acquire) != shards_ - 1) {
            // Yield periodically: on a host with fewer free CPUs than
            // shards the workers only run when this thread gets off
            // the core (a pure pause loop here would livelock a
            // single-CPU machine for the scheduler quantum).
            if (++spins > 4096) {
                std::this_thread::yield();
                spins = 0;
            } else {
                backoff();
            }
        }
    }

  private:
    static void
    backoff()
    {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
    }

    /**
     * Wake any workers parked on the condvar. Skipping the notify when
     * sleepers_ reads 0 is safe because every operation involved is
     * seq_cst: a worker orders sleepers_++ before its under-lock
     * generation check, and the signaler orders the generation bump
     * before this sleepers_ load. If a parked worker's check missed
     * the new generation, that check preceded the bump in the single
     * total order, so its earlier increment is visible here and the
     * notify is taken; conversely a worker that increments after this
     * load re-checks the generation under the lock and sees the bump,
     * so it never blocks on a signal that already fired.
     */
    void
    wakeSleepers()
    {
        if (sleepers_.load() == 0)
            return;
        {
            // Empty critical section: a worker between its generation
            // check and the actual block holds the mutex, so this
            // cannot slip into that gap.
            std::lock_guard<std::mutex> lock(parkMutex_);
        }
        parked_.notify_all();
    }

    void
    workerLoop(unsigned shard)
    {
        // Spin-then-yield-then-park: the spin catches back-to-back
        // windows (typically a few µs apart), the yields cover a long
        // serial phase on a busy host, and the condvar park stops an
        // idle shard worker from burning a core when windows stop
        // arriving altogether (end of run, long serial uncore phase,
        // caller blocked elsewhere).
        static constexpr unsigned spinsPerYield = 4096;
        static constexpr unsigned yieldsBeforePark = 64;
        std::uint64_t seen = 0;
        for (;;) {
            std::uint64_t gen;
            unsigned spins = 0;
            unsigned yields = 0;
            while ((gen = generation_.load(std::memory_order_acquire)) ==
                   seen) {
                if (yields >= yieldsBeforePark) {
                    if (parkHook_)
                        parkHook_(shard, true);
                    sleepers_.fetch_add(1); // seq_cst, see wakeSleepers()
                    {
                        std::unique_lock<std::mutex> lock(parkMutex_);
                        parked_.wait(lock, [&] {
                            return generation_.load() != seen;
                        });
                    }
                    sleepers_.fetch_sub(1);
                    if (parkHook_)
                        parkHook_(shard, false);
                    continue;
                }
                if (++spins > spinsPerYield) {
                    // Yield so an oversubscribed host still makes
                    // progress before the park threshold.
                    std::this_thread::yield();
                    spins = 0;
                    ++yields;
                } else {
                    backoff();
                }
            }
            seen = gen;
            if (stop_.load(std::memory_order_acquire))
                return;
            (*fn_)(shard);
            arrived_.fetch_add(1, std::memory_order_release);
        }
    }

    unsigned shards_;
    bool parallel_;
    ParkHook parkHook_;
    std::vector<std::thread> workers_;
    const WindowFn *fn_ = nullptr;
    std::atomic<std::uint64_t> generation_{0};
    std::atomic<unsigned> arrived_{0};
    std::atomic<bool> stop_{false};
    std::atomic<unsigned> sleepers_{0};
    std::mutex parkMutex_;
    std::condition_variable parked_;
};

/**
 * Per-shard single-writer mailboxes with a deterministic drain order.
 *
 * During a window, shard s appends records to lane s only (no locks,
 * no false sharing on other lanes' vectors beyond the spine). At the
 * window boundary the caller thread drains all lanes merged by
 * (key(record), source shard, intra-lane sequence): the key is the
 * caller's canonical order (e.g. (cycle, thread)), and the (shard,
 * seq) tiebreak makes even key-ties independent of thread
 * interleaving, because lane contents depend only on that shard's own
 * deterministic execution.
 */
template <typename T>
class ShardMailboxes
{
  public:
    explicit ShardMailboxes(unsigned shards) : lanes_(shards) {}

    unsigned lanes() const { return static_cast<unsigned>(lanes_.size()); }

    /** Append a record to @p shard's lane (single writer per lane). */
    void
    post(unsigned shard, T record)
    {
        lanes_[shard].push_back(std::move(record));
    }

    bool
    empty() const
    {
        for (const auto &lane : lanes_)
            if (!lane.empty())
                return false;
        return true;
    }

    /**
     * Merge every lane into one vector ordered by (@p key, shard, seq)
     * and clear the lanes. @p key maps a record to any type with
     * operator< (use a tuple for compound orders).
     */
    template <typename KeyFn>
    std::vector<T>
    drain(KeyFn key)
    {
        struct Tagged
        {
            std::size_t shard;
            std::size_t seq;
        };
        std::vector<T> merged;
        std::vector<Tagged> tags;
        for (std::size_t s = 0; s < lanes_.size(); ++s) {
            for (std::size_t i = 0; i < lanes_[s].size(); ++i) {
                merged.push_back(std::move(lanes_[s][i]));
                tags.push_back(Tagged{s, i});
            }
            lanes_[s].clear();
        }
        std::vector<std::size_t> order(merged.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      auto ka = key(merged[a]);
                      auto kb = key(merged[b]);
                      if (ka < kb)
                          return true;
                      if (kb < ka)
                          return false;
                      if (tags[a].shard != tags[b].shard)
                          return tags[a].shard < tags[b].shard;
                      return tags[a].seq < tags[b].seq;
                  });
        std::vector<T> result;
        result.reserve(merged.size());
        for (std::size_t i : order)
            result.push_back(std::move(merged[i]));
        return result;
    }

  private:
    std::vector<std::vector<T>> lanes_;
};

} // namespace nocstar::sim

#endif // NOCSTAR_SIM_SHARD_HH
