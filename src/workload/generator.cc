/**
 * @file
 * Address stream generator implementation.
 */

#include "workload/generator.hh"

namespace nocstar::workload
{

AccessGenerator::AccessGenerator(const WorkloadSpec &spec, ContextId ctx,
                                 unsigned thread, std::uint64_t seed)
    : spec_(spec), ctx_(ctx), thread_(thread),
      rng_(seed ^ (static_cast<std::uint64_t>(ctx) << 32) ^
           (static_cast<std::uint64_t>(thread) << 16) ^ 0xabcdef12345ULL),
      warmZipf_(spec.warmPages, spec.warmAlpha)
{}

Addr
AccessGenerator::draw()
{
    double u = rng_.uniform();
    PageNum page;
    Addr base;

    if (u < spec_.coldFraction) {
        page = rng_.below(spec_.coldPages);
        base = coldBase(ctx_);
    } else if (u < spec_.coldFraction + spec_.warmFraction) {
        // Warm pool: identical rank->page mapping for every thread of
        // this context, so hot pages genuinely overlap across cores.
        page = warmZipf_.sample(rng_);
        base = sharedBase(ctx_);
    } else {
        // Per-thread hot set, uniform: the inner-loop working set.
        page = rng_.below(spec_.hotPages);
        base = privateBase(ctx_, thread_);
    }

    Addr vaddr = base + (page << pageShift(PageSize::FourKB));
    // Spread accesses within the page so data-side behaviour is sane.
    vaddr |= rng_.below(pageBytes(PageSize::FourKB)) & ~Addr{7};
    return vaddr;
}

} // namespace nocstar::workload
