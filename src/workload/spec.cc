/**
 * @file
 * Paper workload table.
 *
 * Pool sizes are in 4 KB pages. For scale: the L1 TLB reaches 64
 * pages, a private L2 TLB 1024 pages (4 MB), a 16/32/64-core shared L2
 * TLB 16 K / 32 K / 64 K pages. Warm pools sit between the private and
 * the large shared reach, so the shared organizations rescue most warm
 * misses -- more of them at higher core counts, as Fig 2 reports.
 * Poor-locality workloads (canneal, gups, xsbench) have large, flat
 * warm pools and big hot sets that overflow the L1 TLB.
 */

#include "workload/spec.hh"

#include "sim/logging.hh"

namespace nocstar::workload
{

namespace
{

std::vector<WorkloadSpec>
buildTable()
{
    std::vector<WorkloadSpec> table;
    auto add = [&](const char *name, std::uint64_t hot,
                   std::uint64_t warm, double warm_alpha,
                   double warm_frac, double cold_frac, double ipa,
                   double base_cpi, double data_stall,
                   double superpages) {
        WorkloadSpec s;
        s.name = name;
        s.hotPages = hot;
        s.warmPages = warm;
        s.warmAlpha = warm_alpha;
        s.coldPages = std::uint64_t{1} << 24; // ~64 GB tail region
        s.warmFraction = warm_frac;
        s.coldFraction = cold_frac;
        s.instructionsPerAccess = ipa;
        s.baseCpi = base_cpi;
        s.dataStallPerAccess = data_stall;
        s.superpageFraction = superpages;
        table.push_back(std::move(s));
    };

    //   name        hot   warm    wA    wF     cF     ipa  cpi  ds   sp
    add("graph500", 96, 24576, 1.18, .26, .0015, 3.0, .50, 1.6, .55);
    add("canneal", 112, 32768, 1.08, .30, .0020, 3.2, .55, 1.8, .50);
    add("xsbench", 104, 28672, 1.12, .28, .0018, 3.0, .50, 1.5, .60);
    add("datacaching", 72, 18432, 1.38, .23, .0010, 3.5, .60, 1.4, .70);
    add("swtesting", 68, 16384, 1.42, .20, .0007, 3.3, .55, 1.3, .65);
    add("graphanalytics", 80, 22528, 1.25, .23, .0012, 3.0, .50, 1.5,
        .60);
    add("nutch", 68, 14336, 1.42, .18, .0007, 3.6, .60, 1.2, .70);
    add("olio", 66, 12288, 1.46, .16, .0005, 3.6, .60, 1.1, .75);
    add("redis", 72, 16384, 1.38, .20, .0010, 3.4, .55, 1.4, .70);
    add("mongodb", 76, 20480, 1.32, .22, .0012, 3.4, .55, 1.5, .65);
    add("gups", 128, 36864, 1.08, .32, .0040, 2.8, .45, 1.8, .60);
    return table;
}

} // namespace

const std::vector<WorkloadSpec> &
paperWorkloads()
{
    static const std::vector<WorkloadSpec> table = buildTable();
    return table;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const WorkloadSpec &spec : paperWorkloads()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown workload '", name, "'");
}

WorkloadSpec
testWorkload()
{
    WorkloadSpec s;
    s.name = "test";
    s.hotPages = 48;
    s.warmPages = 8192;
    s.warmAlpha = 1.2;
    s.coldPages = 1 << 20;
    s.warmFraction = 0.12;
    s.coldFraction = 0.003;
    s.instructionsPerAccess = 3.0;
    s.baseCpi = 0.6;
    s.dataStallPerAccess = 2.0;
    s.superpageFraction = 0.5;
    return s;
}

} // namespace nocstar::workload
