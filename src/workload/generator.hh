/**
 * @file
 * Per-thread virtual-address stream generator driven by a WorkloadSpec.
 *
 * Virtual address layout (per context):
 *   warm (shared) pool : 0x0100'0000'0000 + ctx * 0x0400'0000'0000
 *   hot (thread) pool  : shared base + 0x0004'0000'0000 * (thread + 1)
 *   cold tail          : shared base + 0x0200'0000'0000
 * so pools never collide across threads or contexts.
 */

#ifndef NOCSTAR_WORKLOAD_GENERATOR_HH
#define NOCSTAR_WORKLOAD_GENERATOR_HH

#include <memory>

#include "sim/random.hh"
#include "sim/types.hh"
#include "workload/address_source.hh"
#include "workload/spec.hh"

namespace nocstar::workload
{

/**
 * Deterministic address stream for one hardware thread.
 */
class AccessGenerator : public AddressSource
{
  public:
    /**
     * @param spec workload parameters.
     * @param ctx process context (shared pool is per-context).
     * @param thread global thread index within the app instance.
     * @param seed stream seed; streams with distinct (ctx, thread)
     *        never correlate.
     */
    AccessGenerator(const WorkloadSpec &spec, ContextId ctx,
                    unsigned thread, std::uint64_t seed);

    /** Next virtual byte address of the stream. */
    Addr next() override { return draw(); }

    /** Batched draw: one virtual dispatch for @p n addresses. */
    void
    nextBatch(Addr *out, std::size_t n) override
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = draw();
    }

    const WorkloadSpec &spec() const { return spec_; }
    ContextId ctx() const { return ctx_; }

    /** Base of the shared pool for @p ctx (exposed for tests). */
    static Addr
    sharedBase(ContextId ctx)
    {
        return 0x010000000000ULL + static_cast<Addr>(ctx) *
                                       0x040000000000ULL;
    }

    static Addr
    coldBase(ContextId ctx)
    {
        // 2 TB into the context's arena, clear of any private pool.
        return sharedBase(ctx) + 0x020000000000ULL;
    }

    static Addr
    privateBase(ContextId ctx, unsigned thread)
    {
        return sharedBase(ctx) +
               0x000400000000ULL * (static_cast<Addr>(thread) + 1);
    }

    /** Checkpoint: the RNG words are the only mutable state. */
    void
    saveState(std::vector<std::uint64_t> &out) const override
    {
        for (std::uint64_t word : rng_.state())
            out.push_back(word);
    }

    std::size_t
    restoreState(const std::vector<std::uint64_t> &in,
                 std::size_t pos) override
    {
        rng_.setState({in.at(pos), in.at(pos + 1), in.at(pos + 2),
                       in.at(pos + 3)});
        return pos + 4;
    }

  private:
    /** One address draw (non-virtual core of next()/nextBatch()). */
    Addr draw();

    WorkloadSpec spec_;
    ContextId ctx_;
    unsigned thread_;
    Random rng_;
    ZipfSampler warmZipf_;
};

} // namespace nocstar::workload

#endif // NOCSTAR_WORKLOAD_GENERATOR_HH
