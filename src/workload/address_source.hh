/**
 * @file
 * Abstract per-thread address source. The synthetic generator and the
 * trace replayer both implement this, so the System is agnostic to
 * where its address streams come from.
 */

#ifndef NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH
#define NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH

#include <cstddef>

#include "sim/types.hh"

namespace nocstar::workload
{

/**
 * One hardware thread's stream of virtual byte addresses.
 */
class AddressSource
{
  public:
    virtual ~AddressSource() = default;

    /** Next virtual address; sources never run dry (traces loop). */
    virtual Addr next() = 0;

    /**
     * Draw the next @p n addresses of the stream into @p out -- the
     * same values @p n successive next() calls would return. Concrete
     * sources override this to amortize the per-address virtual call
     * (the synthetic generator draws its whole batch inline, the
     * trace replayer turns into a wrap-aware memcpy).
     */
    virtual void
    nextBatch(Addr *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
    }
};

} // namespace nocstar::workload

#endif // NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH
