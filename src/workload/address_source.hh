/**
 * @file
 * Abstract per-thread address source. The synthetic generator and the
 * trace replayer both implement this, so the System is agnostic to
 * where its address streams come from.
 */

#ifndef NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH
#define NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH

#include "sim/types.hh"

namespace nocstar::workload
{

/**
 * One hardware thread's stream of virtual byte addresses.
 */
class AddressSource
{
  public:
    virtual ~AddressSource() = default;

    /** Next virtual address; sources never run dry (traces loop). */
    virtual Addr next() = 0;
};

} // namespace nocstar::workload

#endif // NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH
