/**
 * @file
 * Abstract per-thread address source. The synthetic generator and the
 * trace replayer both implement this, so the System is agnostic to
 * where its address streams come from.
 */

#ifndef NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH
#define NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace nocstar::workload
{

/**
 * One hardware thread's stream of virtual byte addresses.
 */
class AddressSource
{
  public:
    virtual ~AddressSource() = default;

    /** Next virtual address; sources never run dry (traces loop). */
    virtual Addr next() = 0;

    /**
     * Draw the next @p n addresses of the stream into @p out -- the
     * same values @p n successive next() calls would return. Concrete
     * sources override this to amortize the per-address virtual call
     * (the synthetic generator draws its whole batch inline, the
     * trace replayer turns into a wrap-aware memcpy).
     */
    virtual void
    nextBatch(Addr *out, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = next();
    }

    /**
     * Append this source's resumable position to @p out as 64-bit
     * words (checkpointing). The synthetic generator saves its RNG
     * state, the trace replayer its cursor; a source with no mutable
     * state saves nothing.
     */
    virtual void saveState(std::vector<std::uint64_t> &out) const
    {
        (void)out;
    }

    /**
     * Consume the words saveState() appended from @p in starting at
     * @p pos, restoring the stream position. Returns the new @p pos.
     */
    virtual std::size_t
    restoreState(const std::vector<std::uint64_t> &in, std::size_t pos)
    {
        (void)in;
        return pos;
    }
};

} // namespace nocstar::workload

#endif // NOCSTAR_WORKLOAD_ADDRESS_SOURCE_HH
