/**
 * @file
 * Trace capture and replay.
 *
 * Format: plain text, one record per line: `<thread> <hex-vaddr>`,
 * with `#`-prefixed comment lines. A trace file carries the streams
 * of all threads of one application; TraceFile::sourceFor() extracts
 * one thread's stream as an AddressSource that loops when exhausted,
 * so trace-driven runs can be as long as synthetic ones.
 */

#ifndef NOCSTAR_WORKLOAD_TRACE_HH
#define NOCSTAR_WORKLOAD_TRACE_HH

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/address_source.hh"

namespace nocstar::workload
{

/**
 * An in-memory address trace, grouped by thread.
 */
class TraceFile
{
  public:
    /** Parse @p path; fatal() on malformed records. */
    static TraceFile load(const std::string &path);

    /** Append one record (capture side). */
    void append(unsigned thread, Addr vaddr);

    /** Write the trace to @p path. */
    void save(const std::string &path) const;

    /** Threads with at least one record. */
    std::vector<unsigned> threads() const;

    /** Number of records for @p thread. */
    std::size_t recordCount(unsigned thread) const;

    std::size_t totalRecords() const { return total_; }

    /**
     * A looping replay source for @p thread; fatal() if the thread has
     * no records. The source keeps a reference into this TraceFile,
     * which must outlive it.
     */
    std::unique_ptr<AddressSource> sourceFor(unsigned thread) const;

  private:
    std::unordered_map<unsigned, std::vector<Addr>> perThread_;
    std::size_t total_ = 0;
};

/**
 * Replays one thread's records in order, wrapping around at the end.
 */
class TraceSource : public AddressSource
{
  public:
    explicit TraceSource(const std::vector<Addr> &records)
        : records_(records)
    {}

    Addr
    next() override
    {
        Addr vaddr = records_[cursor_];
        cursor_ = (cursor_ + 1) % records_.size();
        return vaddr;
    }

    void
    nextBatch(Addr *out, std::size_t n) override
    {
        // Wrap-aware block copies instead of a modulo per record.
        while (n > 0) {
            std::size_t run = std::min(n, records_.size() - cursor_);
            std::copy_n(records_.begin() +
                            static_cast<std::ptrdiff_t>(cursor_),
                        run, out);
            cursor_ += run;
            if (cursor_ == records_.size())
                cursor_ = 0;
            out += run;
            n -= run;
        }
    }

    /** Checkpoint: the replay cursor is the only mutable state. */
    void
    saveState(std::vector<std::uint64_t> &out) const override
    {
        out.push_back(cursor_);
    }

    std::size_t
    restoreState(const std::vector<std::uint64_t> &in,
                 std::size_t pos) override
    {
        cursor_ = static_cast<std::size_t>(in.at(pos)) %
                  records_.size();
        return pos + 1;
    }

  private:
    const std::vector<Addr> &records_;
    std::size_t cursor_ = 0;
};

} // namespace nocstar::workload

#endif // NOCSTAR_WORKLOAD_TRACE_HH
