/**
 * @file
 * Trace file implementation.
 */

#include "workload/trace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace nocstar::workload
{

TraceFile
TraceFile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '", path, "'");

    TraceFile trace;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        unsigned thread;
        std::string vaddr_text;
        if (!(fields >> thread >> vaddr_text))
            fatal("malformed trace record at ", path, ":", line_no);
        Addr vaddr = 0;
        try {
            vaddr = std::stoull(vaddr_text, nullptr, 16);
        } catch (const std::exception &) {
            fatal("bad address '", vaddr_text, "' at ", path, ":",
                  line_no);
        }
        trace.append(thread, vaddr);
    }
    return trace;
}

void
TraceFile::append(unsigned thread, Addr vaddr)
{
    perThread_[thread].push_back(vaddr);
    ++total_;
}

void
TraceFile::save(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '", path, "'");
    out << "# nocstar trace: <thread> <hex-vaddr>\n";
    for (unsigned thread : threads()) {
        for (Addr vaddr : perThread_.at(thread))
            out << thread << " " << std::hex << vaddr << std::dec
                << "\n";
    }
}

std::vector<unsigned>
TraceFile::threads() const
{
    std::vector<unsigned> ids;
    ids.reserve(perThread_.size());
    for (const auto &[thread, records] : perThread_) {
        if (!records.empty())
            ids.push_back(thread);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
}

std::size_t
TraceFile::recordCount(unsigned thread) const
{
    auto it = perThread_.find(thread);
    return it == perThread_.end() ? 0 : it->second.size();
}

std::unique_ptr<AddressSource>
TraceFile::sourceFor(unsigned thread) const
{
    auto it = perThread_.find(thread);
    if (it == perThread_.end() || it->second.empty())
        fatal("trace has no records for thread ", thread);
    return std::make_unique<TraceSource>(it->second);
}

} // namespace nocstar::workload
