/**
 * @file
 * Synthetic workload specifications standing in for the paper's
 * Parsec / CloudSuite / HPC benchmarks.
 *
 * We cannot replay the authors' 2 TB Simics traces, so each workload is
 * a parameterized address-stream generator calibrated to the TLB-level
 * statistics the paper reports: private L2 TLB miss rates of 5-18 %, a
 * shared L2 TLB eliminating 70-90 % of those misses (most for the
 * poor-locality workloads canneal / gups / xsbench), and 50-80 % of the
 * footprint superpage-backed under transparent hugepages.
 *
 * The stream mixes three locality tiers:
 *  - a per-thread HOT set sized around the L1 TLB reach (uniform),
 *    modelling the inner-loop working set; its spill fills the L2 TLB
 *    with cheap hits;
 *  - a process-shared WARM pool (Zipf) touched by all threads, sized
 *    between the private and the chip-wide shared L2 TLB reach -- this
 *    is the tier a shared last-level TLB rescues, and the source of
 *    the sharing / implicit-prefetch benefits;
 *  - a COLD uniform tail over a huge region, the irreducible misses
 *    that no TLB capacity can absorb (2 TB footprints).
 */

#ifndef NOCSTAR_WORKLOAD_SPEC_HH
#define NOCSTAR_WORKLOAD_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nocstar::workload
{

/** Generator parameters for one application. */
struct WorkloadSpec
{
    std::string name;

    /** Pages in each thread's hot set (4 KB units, ~L1 TLB reach). */
    std::uint64_t hotPages = 56;
    /** Pages in the process-shared warm pool. */
    std::uint64_t warmPages = 32768;
    /** Zipf skew of the warm pool (0 = uniform). */
    double warmAlpha = 1.2;
    /** Pages in the cold tail region. */
    std::uint64_t coldPages = std::uint64_t{1} << 24;

    /** Fraction of accesses to the shared warm pool. */
    double warmFraction = 0.13;
    /** Fraction of accesses to the cold tail. */
    double coldFraction = 0.003;

    /** Average instructions between memory accesses. */
    double instructionsPerAccess = 3.0;
    /** Cycles per instruction excluding translation and data stalls. */
    double baseCpi = 0.6;
    /** Average non-translation memory stall cycles per access. */
    double dataStallPerAccess = 2.0;

    /** Fraction of 2 MB regions superpage-backed under THP. */
    double superpageFraction = 0.65;
};

/** The paper's eleven evaluation workloads, in figure order. */
const std::vector<WorkloadSpec> &paperWorkloads();

/** Find a paper workload by name; fatal() if unknown. */
const WorkloadSpec &findWorkload(const std::string &name);

/** A small, well-behaved spec for unit tests and the quickstart. */
WorkloadSpec testWorkload();

} // namespace nocstar::workload

#endif // NOCSTAR_WORKLOAD_SPEC_HH
