/**
 * @file
 * The baseline organization: per-core private L2 TLBs (Fig 1(a)),
 * Haswell-like 1024-entry 8-way arrays with 9-cycle lookup.
 */

#ifndef NOCSTAR_CORE_PRIVATE_ORG_HH
#define NOCSTAR_CORE_PRIVATE_ORG_HH

#include <memory>
#include <vector>

#include "core/organization.hh"

namespace nocstar::core
{

/**
 * Private per-core L2 TLBs.
 */
class PrivateOrg : public TlbOrganization
{
  public:
    PrivateOrg(const OrgConfig &config, OrgContext context,
               stats::StatGroup *parent = nullptr);

    void translate(CoreId core, ContextId ctx, Addr vaddr, Cycle now,
                   TranslationDone done) override;

    void shootdown(CoreId initiator, ContextId ctx, Addr vaddr,
                   const std::vector<CoreId> &sharers, Cycle now,
                   ShootdownDone on_complete) override;

    void flushAll() override;

    void preloadPrivate(CoreId core, ContextId ctx, Addr vaddr,
                        const mem::Translation &t) override;

    std::uint64_t totalEntries() const override;

    /** Every hit pays initiate + the private array's access latency. */
    Cycle
    minCompletionLead() const override
    {
        return config_.initiateLatency + lookupLatency_;
    }

    /** Direct array access for tests. */
    tlb::SetAssocTlb &arrayOf(CoreId core) { return *arrays_.at(core); }

    // Sharded pre-probe support: one home array per core, the
    // requester's own.
    unsigned numHomeArrays() const override { return config_.numCores; }

    unsigned
    homeArrayOf(CoreId core, Addr vaddr) const override
    {
        (void)vaddr;
        return static_cast<unsigned>(core);
    }

    ProbeResult
    probeHomeArray(CoreId core, ContextId ctx, Addr vaddr) override
    {
        const tlb::TlbEntry *hit = arrays_[core]->lookupAnySize(ctx, vaddr);
        return hit ? ProbeResult{true, *hit} : ProbeResult{};
    }

    tlb::SetAssocTlb &array(unsigned index) override
    {
        return *arrays_.at(index);
    }

    /** Fixed cost of a private-TLB shootdown (IPI + local inval). */
    static constexpr Cycle shootdownLatency = 50;

  private:
    Cycle lookupLatency_;
    std::vector<std::unique_ptr<tlb::SetAssocTlb>> arrays_;
};

} // namespace nocstar::core

#endif // NOCSTAR_CORE_PRIVATE_ORG_HH
