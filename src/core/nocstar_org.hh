/**
 * @file
 * NOCSTAR: distributed shared L2 TLB slices over the single-cycle
 * circuit-switched fabric (paper §III). Area-normalized 920-entry
 * slices; remote accesses follow the Fig 10 timeline: path setup,
 * single-cycle traversal, slice lookup, (speculative) response path
 * setup, single-cycle response traversal.
 */

#ifndef NOCSTAR_CORE_NOCSTAR_ORG_HH
#define NOCSTAR_CORE_NOCSTAR_ORG_HH

#include <memory>
#include <vector>

#include "core/interconnect.hh"
#include "core/organization.hh"

namespace nocstar::core
{

/**
 * The paper's proposed organization.
 */
class NocstarOrg : public TlbOrganization
{
  public:
    NocstarOrg(const OrgConfig &config, OrgContext context,
               stats::StatGroup *parent = nullptr);

    void translate(CoreId core, ContextId ctx, Addr vaddr, Cycle now,
                   TranslationDone done) override;

    void shootdown(CoreId initiator, ContextId ctx, Addr vaddr,
                   const std::vector<CoreId> &sharers, Cycle now,
                   ShootdownDone on_complete) override;

    void flushAll() override;

    void preloadShared(ContextId ctx, Addr vaddr,
                       const mem::Translation &t) override;

    std::uint64_t totalEntries() const override;

    void
    syncFaultStats(Cycle now) override
    {
        fabric_->syncFaultStats(now);
    }

    /**
     * Home slice: 4 KB-granule interleaving (same as distributed),
     * optionally remapped cluster-locally (SliceMapping::ClusterLocal)
     * so consecutive interleave indices fill one crossbar cluster
     * before striping to the next.
     */
    CoreId
    sliceOf(Addr vaddr) const
    {
        auto idx = static_cast<CoreId>(
            (vaddr >> pageShift(PageSize::FourKB)) % config_.numCores);
        return homeOf_.empty() ? idx : homeOf_[idx];
    }

    tlb::SetAssocTlb &sliceArray(CoreId slice)
    {
        return *slices_.at(slice);
    }

    // Sharded pre-probe support: one home array per slice tile.
    unsigned numHomeArrays() const override { return config_.numCores; }

    unsigned
    homeArrayOf(CoreId core, Addr vaddr) const override
    {
        (void)core;
        return static_cast<unsigned>(sliceOf(vaddr));
    }

    ProbeResult
    probeHomeArray(CoreId core, ContextId ctx, Addr vaddr) override
    {
        (void)core;
        const tlb::TlbEntry *hit =
            slices_[sliceOf(vaddr)]->lookupAnySize(ctx, vaddr);
        return hit ? ProbeResult{true, *hit} : ProbeResult{};
    }

    tlb::SetAssocTlb &array(unsigned index) override
    {
        return *slices_.at(index);
    }

    CoreId
    walkCoreFor(CoreId requester, Addr vaddr) const override
    {
        return config_.ptwPlacement == PtwPlacement::Remote
            ? sliceOf(vaddr) : requester;
    }

    Interconnect &fabric() { return *fabric_; }

    Cycle sliceLatency() const { return sliceLatency_; }

    /**
     * Every completion path (local, single-trip, round-trip, denial
     * retries, mesh fallback, walks) runs through a slice lookup
     * ending at portStart(>= now + initiate) + sliceLatency_ first.
     */
    Cycle
    minCompletionLead() const override
    {
        return config_.initiateLatency + sliceLatency_;
    }

  private:
    /**
     * Continue after a slice lookup that hit: respond to the core.
     * The @p ecc / @p degraded flags below accumulate the outcome
     * classification along the continuation chain (corrupt home-array
     * read; any leg so far fell back to the maintenance mesh) and end
     * up on the TranslationResult.
     */
    void respondHit(CoreId core, CoreId slice, tlb::TlbEntry entry,
                    Cycle lookup_done, Cycle now, bool degraded,
                    TranslationDone done);

    /** Continue after a slice miss per the walk-placement policy. */
    void handleMiss(CoreId core, CoreId slice, ContextId ctx, Addr vaddr,
                    Cycle lookup_done, Cycle now, bool ecc, bool degraded,
                    TranslationDone done);

    void finishWithWalk(CoreId walk_core, CoreId requester, CoreId slice,
                        ContextId ctx, Addr vaddr, Cycle start, Cycle now,
                        bool ecc, bool degraded, TranslationDone done);

    noc::GridTopology topo_;
    std::unique_ptr<Interconnect> fabric_;
    std::vector<std::unique_ptr<tlb::SetAssocTlb>> slices_;
    std::vector<Cycle> leaderNextFree_;
    /** Interleave index -> home tile (empty for the identity map). */
    std::vector<CoreId> homeOf_;
    Cycle sliceLatency_;
};

} // namespace nocstar::core

#endif // NOCSTAR_CORE_NOCSTAR_ORG_HH
