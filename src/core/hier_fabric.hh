/**
 * @file
 * The hierarchical hybrid NOCSTAR fabric for the 256-1024-tile design
 * points (TeraNoC-style, PAPERS.md): tiles are grouped into rectangular
 * clusters; within a cluster every tile reaches every other through a
 * single-cycle crossbar, and clusters are joined by a circuit-switched
 * mesh with the same all-links-ANDed setup and rotating chip-wide
 * priority as the flat fabric.
 *
 * Resource model:
 *  - an intra-cluster hop occupies the crossbar output port of the
 *    tile it reaches (one message per port per cycle) and costs one
 *    cycle;
 *  - an inter-cluster message climbs to its cluster's gateway over the
 *    crossbar (skipped when the source *is* the gateway), crosses the
 *    cluster mesh in ceil(clusterHops / HPCmax) cycles, and descends to
 *    the destination over its cluster's crossbar;
 *  - cluster mesh links are identified in the *tile* link id space as
 *    (gateway tile) * 4 + direction, so the per-link stats vectors,
 *    heatmap export and fault plans are shared with the flat fabric --
 *    and a 1x1-cluster hierarchy is link-for-link identical to it.
 *
 * Memory at scale is cluster-factored: the only per-pair table is over
 * cluster pairs (a 1024-tile mesh in 4x4 clusters stores 64x64 paths,
 * not 1024x1024), and per-tile state is O(tiles).
 */

#ifndef NOCSTAR_CORE_HIER_FABRIC_HH
#define NOCSTAR_CORE_HIER_FABRIC_HH

#include <span>
#include <string>
#include <vector>

#include "core/interconnect.hh"

namespace nocstar::core
{

/**
 * Hierarchical crossbar-of-clusters fabric behind the Interconnect
 * seam.
 */
class HierFabric final : public Interconnect
{
  public:
    HierFabric(const std::string &name, EventQueue &queue,
               const noc::GridTopology &topo, const FabricConfig &config,
               stats::StatGroup *parent = nullptr);

    unsigned pathHops(CoreId src, CoreId dst) const override;
    Cycle traversal(CoreId src, CoreId dst) const override;
    void pathLinksInto(CoreId src, CoreId dst,
                       std::vector<std::uint32_t> &out) const override;

    /** Mesh links plus crossbar output ports held at @p now. */
    unsigned
    linksHeld(Cycle now) const override
    {
        unsigned held = Interconnect::linksHeld(now);
        for (Cycle until : xbarHeldUntil_)
            held += until > now ? 1 : 0;
        return held;
    }

    /** Cluster of @p tile (flattened over the cluster grid). */
    unsigned clusterOf(CoreId tile) const { return clusterOfTile_[tile]; }

    /** Gateway (top-left) tile of @p cluster. */
    CoreId gatewayOf(unsigned cluster) const { return gateway_[cluster]; }

    unsigned numClusters() const { return clusterGrid_.numTiles(); }

    std::size_t
    memoryBytes() const override
    {
        return Interconnect::memoryBytes() +
               clusterOfTile_.capacity() * sizeof(std::uint32_t) +
               gateway_.capacity() * sizeof(CoreId) +
               xbarHeldUntil_.capacity() * sizeof(Cycle) +
               cPathOffset_.capacity() * sizeof(std::uint32_t) +
               cPathLinks_.capacity() * sizeof(std::uint32_t) +
               clusterPairDegraded_.capacity() * sizeof(std::uint8_t);
    }

    // Hierarchy-specific telemetry, registered after the shared stats
    // so fabric-agnostic stats documents keep their layout.
    stats::Scalar clusterLocalMessages; ///< granted within one crossbar
    stats::Scalar interClusterMessages; ///< granted over the cluster mesh
    /** Failed setups first blocked by a busy crossbar output port. */
    stats::Scalar xbarDenies;

  protected:
    bool tryAcquire(const Request &req, Cycle now) override;
    bool pairUnreachable(const Request &req) const override;
    void onPermanentLinkDeath(std::uint32_t link) override;

  private:
    /** Cluster-mesh links of cluster pair cs -> cd (tile link ids). */
    std::span<const std::uint32_t>
    clusterLinks(unsigned cs, unsigned cd) const
    {
        std::size_t pair =
            static_cast<std::size_t>(cs) * clusterGrid_.numTiles() + cd;
        return {cPathLinks_.data() + cPathOffset_[pair],
                cPathOffset_[pair + 1] - cPathOffset_[pair]};
    }

    /** Build the cluster-pair path table (ctor only). */
    void buildClusterPaths();

    /** Recompute cluster paths around permanently dead mesh links. */
    void rebuildClusterPaths();

    /** Trace-lane id of tile @p t's crossbar port: the ids above the
     * mesh link space, so Lane::Link rows never collide. */
    std::uint32_t
    xbarLaneOf(CoreId t) const
    {
        return topo_.linkIndexSpace() + t;
    }

    unsigned clusterW_;
    unsigned clusterH_;
    /** The cluster grid (width/clusterW_ x height/clusterH_). */
    noc::GridTopology clusterGrid_;
    /** Tile -> cluster (O(tiles)). */
    std::vector<std::uint32_t> clusterOfTile_;
    /** Cluster -> gateway tile. */
    std::vector<CoreId> gateway_;
    /** Cycle through which each crossbar output port is held. */
    std::vector<Cycle> xbarHeldUntil_;
    /**
     * Cluster-factored path table: XY (rerouted when faulted) paths
     * over the cluster grid for every cluster pair, links flattened in
     * the tile link id space via the gateway tiles.
     */
    std::vector<std::uint32_t> cPathOffset_;
    std::vector<std::uint32_t> cPathLinks_;
    /** Per cluster pair: no circuit path survives route-around. */
    std::vector<std::uint8_t> clusterPairDegraded_;
};

} // namespace nocstar::core

#endif // NOCSTAR_CORE_HIER_FABRIC_HH
