/**
 * @file
 * The Interconnect seam: the abstract interface every TLB-carrying
 * fabric implements, plus the shared circuit-switched arbitration
 * engine both concrete fabrics (flat NOCSTAR, hierarchical hybrid)
 * are built on.
 *
 * What the interface guarantees to organizations and the system:
 *  - path-setup request/grant semantics: a send() posted in cycle T
 *    arbitrates from T, one outstanding setup per source tile per
 *    cycle (single set of request wires), all-or-nothing resource
 *    acquisition, 1-cycle retry;
 *  - deterministic grant order: contenders are served in rotated
 *    static priority (rotation advances every priorityEpoch cycles,
 *    chip-wide consistent), ties broken by source id then FIFO age --
 *    so a run's outcome depends only on its config and seed, never on
 *    host parallelism;
 *  - message delivery with continuation: the DeliverFn fires exactly
 *    once, at the destination latch cycle, on the simulated queue;
 *  - per-link stats/heatmap export: the link_grants / link_denies /
 *    link_hold_cycles vectors are indexed by flattened LinkId over the
 *    *tile* mesh for every implementation, so heatmap tooling is
 *    fabric-agnostic;
 *  - fault-injection hooks: link outages (transient or permanent,
 *    with deterministic route-around), grant loss, capped backoff,
 *    watchdog, and the store-and-forward mesh fallback all live in the
 *    shared engine; implementations only supply the path/resource
 *    model;
 *  - trace lanes: granted paths emit Lane::Link hold spans and
 *    Lane::Message spans keyed the same way for every implementation.
 *
 * Construction goes through makeInterconnect() (defined in
 * org_factory.cc, the single construction point for (organization,
 * fabric) pairs). Nothing outside src/core/ includes the concrete
 * fabric headers.
 */

#ifndef NOCSTAR_CORE_INTERCONNECT_HH
#define NOCSTAR_CORE_INTERCONNECT_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "noc/topology.hh"
#include "sim/event_queue.hh"
#include "sim/latency_histogram.hh"
#include "sim/stats.hh"

namespace nocstar::core
{

/** Fabric tuning knobs. */
struct FabricConfig
{
    FabricKind kind = FabricKind::Flat;
    unsigned hpcMax = 16;
    Cycle priorityEpoch = 1000;
    /** Contention-free mode: every setup succeeds (NOCSTAR-ideal). */
    bool ideal = false;
    /**
     * Fault-injection plan (not owned; must outlive the fabric).
     * Null or empty means no fault machinery is instantiated and
     * every hot path behaves exactly as a fault-free build.
     */
    const sim::FaultPlan *faults = nullptr;
    /**
     * Hierarchical cluster geometry in tiles (0 = auto: near-square
     * clusters of up to 4x4 tiles). Must divide the mesh dimensions;
     * OrgConfig::validate() reports violations with hints.
     */
    unsigned clusterWidth = 0;
    unsigned clusterHeight = 0;
    /**
     * Keep one grant-wait histogram per source tile (cycles from
     * send() to path grant), for the priority-rotation fairness
     * figure. Host-side only -- simulated timing and the stats tree
     * are byte-identical with it off (the default).
     */
    bool recordGrantWait = false;
};

/**
 * Abstract interconnect: the only fabric type organizations, the
 * system and the bench wiring see. Also hosts the shared arbitration
 * engine (request queues, priority rotation, retry/backoff/watchdog,
 * mesh fallback) -- concrete fabrics supply the resource model via the
 * protected virtuals.
 */
class Interconnect : public stats::StatGroup
{
  public:
    /**
     * Invoked when the message is latched at the destination tile.
     * Inline capacity fits the largest organization continuation
     * (NOCSTAR remote lookup carrying the entry and the requester's
     * completion callback).
     */
    using DeliverFn = InlineFunction<void(Cycle arrival), 192>;

    Interconnect(const std::string &name, EventQueue &queue,
                 const noc::GridTopology &topo,
                 const FabricConfig &config,
                 stats::StatGroup *parent = nullptr);

    ~Interconnect() override;

    /**
     * One-way message: arbitration begins at max(now, curCycle); on
     * success the message arrives traversal(src, dst) cycles after its
     * setup cycle. Local (src == dst) messages deliver immediately.
     *
     * Each source tile has a single path-setup port (one set of
     * request wires to the arbiters), so its outstanding messages
     * arbitrate oldest-first, one per cycle.
     */
    void send(CoreId src, CoreId dst, Cycle now, DeliverFn deliver);

    /**
     * Round-trip acquisition (Fig 16 left): the forward *and* reverse
     * paths are held from the setup cycle until the response has
     * returned, @p occupancy cycles after the request arrives at the
     * destination. @p deliver fires at the destination arrival; the
     * caller schedules the response completion itself (the return path
     * is pre-granted, adding one traversal).
     */
    void sendRoundTrip(CoreId src, CoreId dst, Cycle now, Cycle occupancy,
                       DeliverFn deliver);

    const noc::GridTopology &topology() const { return topo_; }

    /** Hop count of the current path src -> dst (reporting only). */
    virtual unsigned pathHops(CoreId src, CoreId dst) const = 0;

    /** Cycles a granted src -> dst path takes to traverse. */
    virtual Cycle traversal(CoreId src, CoreId dst) const = 0;

    /**
     * Append the flattened tile-mesh link ids a src -> dst message
     * occupies (debug / differential tests; intra-cluster crossbar
     * hops of the hierarchical fabric contribute no mesh links).
     */
    virtual void pathLinksInto(CoreId src, CoreId dst,
                               std::vector<std::uint32_t> &out) const = 0;

    /** Traversal cycles of a pipelined mesh segment of @p hops hops. */
    Cycle
    traversalCycles(unsigned hops) const
    {
        if (hops == 0)
            return 0;
        return (hops + config_.hpcMax - 1) / config_.hpcMax;
    }

    // Statistics exercised by the figures. Identical names, types and
    // registration order for every implementation, so stats documents
    // are fabric-agnostic.
    stats::Scalar messagesSent;
    stats::Scalar setupAttempts;
    stats::Scalar setupFailures;
    /** Messages that experienced no contention delay at all (granted
     * in the cycle they were posted, no port queueing, no retry). */
    stats::Scalar zeroRetryMessages;
    stats::Scalar totalNetworkLatency; ///< send-call -> delivery cycles
    stats::Distribution retryDistribution;
    // Per-link load-imbalance telemetry, indexed by flattened link id
    // (GridTopology::LinkId::flatten()): how often each link was
    // acquired, how often it was the first blocker of a failed setup,
    // and for how many cycles in total it was held. linkHoldCycles
    // against the run length is the per-link occupancy heatmap.
    stats::Vector linkGrants;
    stats::Vector linkDenies;
    stats::Vector linkHoldCycles;
    // Fault-injection / resilience telemetry. All stay zero (and cost
    // nothing on the hot path) unless a fault plan is configured.
    stats::Scalar faultsInjected; ///< outages begun + grants lost
    /** Messages that gave up on circuit setup and fell back to the
     * store-and-forward maintenance mesh. */
    stats::Scalar degradedMessages;
    stats::Scalar backoffCycles; ///< extra wait beyond the 1-cycle retry
    stats::Scalar watchdogTrips; ///< messages rescued by the watchdog
    /** Cycles each link spent inside a fault window, indexed like
     * linkGrants (brought current by syncFaultStats()). */
    stats::Vector linkDeadCycles;

    /**
     * Bring linkDeadCycles current through @p now. Called before epoch
     * snapshots and at end of run; no-op without a fault plan.
     */
    void syncFaultStats(Cycle now);

    /**
     * True only while a delivery callback of a degraded (mesh-
     * fallback) message is running. The organization continuations
     * read it inside their DeliverFn bodies to tag the translation
     * they are completing; the single-threaded event queue guarantees
     * deliveries never nest across messages.
     */
    bool deliveredDegraded() const { return deliveringDegraded_; }

    /** Circuit resources held at cycle @p now (counter-track sampling). */
    virtual unsigned
    linksHeld(Cycle now) const
    {
        unsigned held = 0;
        for (Cycle until : linkHeldUntil_)
            held += until > now ? 1 : 0;
        return held;
    }

    /** Average cycles from send() to delivery, network portion only. */
    double
    averageLatency() const
    {
        double n = messagesSent.value();
        return n > 0 ? totalNetworkLatency.value() / n : 0.0;
    }

    /** Fraction of messages that acquired their path with no retry. */
    double
    noContentionFraction() const
    {
        double n = messagesSent.value();
        return n > 0 ? zeroRetryMessages.value() / n : 0.0;
    }

    /** Failed setup attempts over all attempts (scaling figure). */
    double
    setupRetryRate() const
    {
        double n = setupAttempts.value();
        return n > 0 ? setupFailures.value() / n : 0.0;
    }

    /** Non-null when FabricConfig::recordGrantWait was set: one
     * histogram of send()-to-grant waits per source tile. */
    const sim::LatencyHistogram *
    grantWaitOf(CoreId src) const
    {
        return grantWait_ ? &(*grantWait_)[src] : nullptr;
    }

    /**
     * Resident bytes of the arbitration state (link holds, request
     * FIFOs, occupancy bitmaps, fault vectors), for the scaling
     * bench's per-component memory audit. Subclasses add their path
     * tables. Queued requests are counted at their live size -- the
     * audit reads at quiescent points, where the FIFOs are empty.
     */
    virtual std::size_t
    memoryBytes() const
    {
        std::size_t bytes =
            linkHeldUntil_.capacity() * sizeof(Cycle) +
            contenders_.capacity() * sizeof(CoreId) +
            pendingBits_.capacity() * sizeof(std::uint64_t) +
            linkFaultyUntil_.capacity() * sizeof(Cycle) +
            linkDeadPermanent_.capacity() * sizeof(std::uint8_t) +
            meshLinkFree_.capacity() * sizeof(Cycle) +
            pending_.size() * sizeof(std::deque<Request>);
        for (const std::deque<Request> &fifo : pending_)
            bytes += fifo.size() * sizeof(Request);
        if (grantWait_)
            bytes += grantWait_->size() * sizeof(sim::LatencyHistogram);
        return bytes;
    }

  protected:
    struct Request
    {
        CoreId src;
        CoreId dst;
        Cycle posted; ///< cycle of the original send() call
        Cycle activeAt; ///< earliest cycle this request may arbitrate
        Cycle holdExtra; ///< extra link-hold cycles (round-trip mode)
        bool roundTrip;
        unsigned retries;
        std::uint64_t seq; ///< FIFO tiebreak among same-source requests
        DeliverFn deliver;
    };

    /**
     * Try to reserve every resource of @p req's path(s): deny-counting,
     * fault checks and the hold-until bookkeeping live here. Must be
     * all-or-nothing.
     */
    virtual bool tryAcquire(const Request &req, Cycle now) = 0;

    /** Route-around left no circuit path for this pair: skip setup and
     * serve it from the fallback mesh. Only consulted with faults. */
    virtual bool pairUnreachable(const Request &req) const = 0;

    /** A link just died permanently (already marked in
     * linkDeadPermanent_): recompute paths around it. */
    virtual void onPermanentLinkDeath(std::uint32_t link) = 0;

    /** Run one arbitration round for the current cycle. */
    void arbitrate();

    /** A link fault window just opened: mark it, reroute if permanent. */
    void activateFault(const sim::LinkFaultSpec &fault);

    /** Pop @p src's head request and deliver it over the fallback
     * store-and-forward mesh instead of the circuit fabric. */
    void degrade(CoreId src, Cycle now);

    void scheduleArbitration(Cycle when);

    std::size_t
    pairIndex(CoreId src, CoreId dst) const
    {
        return static_cast<std::size_t>(src) * topo_.numTiles() + dst;
    }

    EventQueue &queue_;
    noc::GridTopology topo_;
    FabricConfig config_;

    /** Cycle through which each directed link is held (exclusive). */
    std::vector<Cycle> linkHeldUntil_;
    /** Scratch list of arbitrating sources, reused across rounds. */
    std::vector<CoreId> contenders_;
    /** Per-source FIFO of waiting requests (one setup port each). */
    std::vector<std::deque<Request>> pending_;
    /**
     * One bit per source tile, set while its FIFO is non-empty, so
     * arbitration rounds visit only tiles with work instead of
     * scanning every queue.
     */
    std::vector<std::uint64_t> pendingBits_;
    std::size_t numPending_ = 0;
    Cycle arbitrationScheduledFor_ = invalidCycle;
    std::uint64_t nextSeq_ = 0;
    LambdaEvent arbitrationEvent_;

    // Fault machinery; allocated only when config_.faults is a
    // non-empty plan, so the guards below reduce to one null check.
    /** Seeded draw source for grant loss (Stream::Fabric). */
    std::unique_ptr<sim::FaultInjector> faults_;
    /** Cycle through which each link is fault-disabled (exclusive);
     * invalidCycle for permanently dead links. */
    std::vector<Cycle> linkFaultyUntil_;
    std::vector<std::uint8_t> linkDeadPermanent_;
    /** Per-link next-free cycle of the fallback mesh (QueuedMesh
     * model: router + wire cycle per hop, one flit per link-cycle). */
    std::vector<Cycle> meshLinkFree_;
    /** linkDeadCycles is accounted through this cycle. */
    Cycle faultStatsThrough_ = 0;
    /** See deliveredDegraded(). */
    bool deliveringDegraded_ = false;

    /** Per-source grant-wait histograms (null unless recording). */
    std::unique_ptr<std::vector<sim::LatencyHistogram>> grantWait_;
};

/**
 * Resolve the hierarchical cluster geometry of @p config against
 * @p topo: auto (0) picks near-square clusters of up to 4x4 tiles.
 * fatal()s on geometry OrgConfig::validate() would have rejected.
 */
void resolveClusterGeometry(const FabricConfig &config,
                            const noc::GridTopology &topo,
                            unsigned &clusterWidth,
                            unsigned &clusterHeight);

/**
 * Single construction point for fabrics (org_factory.cc): builds the
 * implementation FabricConfig::kind selects.
 */
std::unique_ptr<Interconnect>
makeInterconnect(const std::string &name, EventQueue &queue,
                 const noc::GridTopology &topo, const FabricConfig &config,
                 stats::StatGroup *parent = nullptr);

/**
 * Convenience overload deriving the FabricConfig from an organization
 * config. @p config must outlive the fabric (the fault plan is
 * referenced, not copied).
 */
std::unique_ptr<Interconnect>
makeInterconnect(const std::string &name, EventQueue &queue,
                 const noc::GridTopology &topo, const OrgConfig &config,
                 stats::StatGroup *parent = nullptr);

} // namespace nocstar::core

#endif // NOCSTAR_CORE_INTERCONNECT_HH
