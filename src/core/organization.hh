/**
 * @file
 * Last-level TLB organizations (paper Fig 1): the base class owns the
 * machinery every organization shares -- contention tracking for
 * Figs 5/6, port scheduling, walk dispatch with requester/remote
 * placement, prefetch, shootdown bookkeeping -- while subclasses model
 * the private, monolithic, distributed and NOCSTAR timing paths.
 */

#ifndef NOCSTAR_CORE_ORGANIZATION_HH
#define NOCSTAR_CORE_ORGANIZATION_HH

#include <memory>
#include <string>
#include <vector>

#include "core/config.hh"
#include "energy/translation_energy.hh"
#include "mem/page_table.hh"
#include "mem/page_walker.hh"
#include "noc/topology.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/trace_recorder.hh"
#include "tlb/prefetcher.hh"
#include "tlb/set_assoc_tlb.hh"

namespace nocstar::core
{

/** Completed translation handed back to the requesting core. */
struct TranslationResult
{
    Cycle completedAt = 0;
    tlb::TlbEntry entry;
    bool l2Hit = false;
    bool walked = false;
    /**
     * The home slice/bank serving this access was not co-located with
     * the requesting tile (the lookup crossed the interconnect).
     * Private organizations never set it; the monolithic structure at
     * the chip edge always does.
     */
    bool remote = false;
    /**
     * The translation was redone for ECC: a home-array hit read back
     * corrupt (sliceEccRewalks) or the page walk itself re-walked for
     * a corrupt table entry (walker eccRewalks).
     */
    bool eccRewalk = false;
    /**
     * At least one fabric message on this translation's path fell back
     * to the store-and-forward mesh (NOCSTAR under fault injection).
     */
    bool degraded = false;
};

/**
 * Outcome of a home-array probe taken ahead of translate() by the
 * sharded engine's parallel pre-probe phase (see DESIGN.md, "sharding
 * the uncore"). Carries the full functional result of the one
 * lookupAnySize() call translate() would have made: the hit/miss
 * outcome and, on a hit, the entry value as read (LRU stamp, prefetch
 * flag and hit/miss counters were already updated by the probe).
 */
struct ProbeResult
{
    bool hit = false;
    tlb::TlbEntry entry;
};

/** Callback when a translation completes (inline, no heap). */
using TranslationDone =
    InlineFunction<void(const TranslationResult &), 48>;

/** Callback when a shootdown's L2 invalidation has completed. */
using ShootdownDone = InlineFunction<void(Cycle), 48>;

/**
 * Continuation of a page-table walk. Sized for the organization
 * continuations that own the requester's TranslationDone plus the
 * request coordinates.
 */
using WalkDone = InlineFunction<void(const mem::WalkResult &), 136>;

/**
 * Environment handed to an organization by the System.
 */
struct OrgContext
{
    EventQueue *queue = nullptr;
    mem::PageTable *pageTable = nullptr;
    /** One walker per core. */
    std::vector<mem::PageTableWalker *> walkers;
    energy::TranslationEnergyModel *energy = nullptr;
    /** Invalidate one translation in a core's L1 TLB group. */
    InlineFunction<void(CoreId, ContextId, PageNum, PageSize), 32>
        l1Invalidate;
    /** Flush a core's entire L1 TLB group. */
    InlineFunction<void(CoreId), 32> l1Flush;
};

/**
 * Abstract last-level TLB organization.
 */
class TlbOrganization : public stats::StatGroup
{
  public:
    TlbOrganization(const std::string &name, const OrgConfig &config,
                    OrgContext context, stats::StatGroup *parent = nullptr);
    ~TlbOrganization() override = default;

    /**
     * Resolve an L1 TLB miss raised at @p now on @p core. @p done runs
     * once the translation is available at the requesting core.
     */
    virtual void translate(CoreId core, ContextId ctx, Addr vaddr,
                           Cycle now, TranslationDone done) = 0;

    /**
     * Shoot down the page containing @p vaddr: all sharer L1s are
     * invalidated immediately (IPI handlers), and the L2 structure's
     * stale entry is invalidated via the configured relay policy.
     * @param sharers cores whose L1s received the IPI.
     * @param on_complete optional callback when the L2 entry is gone.
     */
    virtual void shootdown(CoreId initiator, ContextId ctx, Addr vaddr,
                           const std::vector<CoreId> &sharers, Cycle now,
                           ShootdownDone on_complete) = 0;

    /** Flush all L2 structures (context switch without PCID). */
    virtual void flushAll() = 0;

    /**
     * Functionally install a steady-state-resident translation into
     * one core's private structure (no-op for shared organizations).
     * Pre-warming skips the compulsory-miss phase that short
     * simulations would otherwise measure instead of steady state.
     */
    virtual void
    preloadPrivate(CoreId core, ContextId ctx, Addr vaddr,
                   const mem::Translation &t)
    {
        (void)core; (void)ctx; (void)vaddr; (void)t;
    }

    /**
     * Functionally install a steady-state-resident translation into
     * the shared structure's home slice/bank (no-op for private).
     */
    virtual void
    preloadShared(ContextId ctx, Addr vaddr, const mem::Translation &t)
    {
        (void)ctx; (void)vaddr; (void)t;
    }

    /** Total L2 TLB entries across the chip (for leakage). */
    virtual std::uint64_t totalEntries() const = 0;

    /**
     * Bring fault-accounting stats (per-link dead cycles, ...) current
     * through @p now. Called before every epoch snapshot and at the
     * end of the run; a no-op unless the organization carries fault
     * machinery.
     */
    virtual void syncFaultStats(Cycle now) { (void)now; }

    /**
     * Provable lower bound on (completedAt - now) for any translate()
     * call: every organization charges initiateLatency up front and
     * then at least one full array access before the earliest possible
     * completion (networks, ports and walks only add to that). The
     * sharded engine's conservative lookahead window is derived from
     * this bound (see DESIGN.md, "conservative lookahead"), so an
     * override returning more than the true minimum would corrupt
     * results, and one returning less only shrinks the window.
     */
    virtual Cycle minCompletionLead() const { return 1; }

    /**
     * Provable lower bound on (mutation cycle - now) for any mutation
     * of a home L2 array (walk fill, prefetch insert) caused by a
     * translate() call at @p now. Every organization charges the full
     * completion lead before its lookup misses, and a fill needs at
     * least one further walk cycle beyond the lookup, hence the
     * default. The sharded engine requires this to strictly exceed
     * its window lead before enabling the parallel pre-probe phase
     * (see DESIGN.md, "sharding the uncore"): it guarantees no miss
     * replayed inside a window can mutate any home array within that
     * same window.
     */
    virtual Cycle minUncoreLead() const { return minCompletionLead() + 1; }

    /**
     * Number of home-tile-partitioned L2 arrays translate() probes
     * (slices, banks, or private per-core arrays). 0 means the
     * organization does not support the sharded engine's parallel
     * pre-probe phase. Array index i is what homeArrayOf() returns;
     * the engine gives each array to exactly one shard (single-writer
     * ownership during the parallel phase).
     */
    virtual unsigned numHomeArrays() const { return 0; }

    /**
     * Index (< numHomeArrays()) of the one home array a
     * translate(core, ..., vaddr, ...) call probes.
     */
    virtual unsigned
    homeArrayOf(CoreId core, Addr vaddr) const
    {
        (void)core; (void)vaddr;
        return 0;
    }

    /**
     * The L2 array behind home index @p index (< numHomeArrays()).
     * Functional warming and checkpointing use this to reach every
     * array exactly once; index i is what homeArrayOf() returns.
     */
    virtual tlb::SetAssocTlb &array(unsigned index) = 0;

    /**
     * The core whose walker would service a miss on (@p requester,
     * @p vaddr) under the configured walk-placement policy. Functional
     * warming warms that walker's PSCs and L2 PTE lines, matching the
     * detailed path's reference placement.
     */
    virtual CoreId
    walkCoreFor(CoreId requester, Addr vaddr) const
    {
        (void)vaddr;
        return requester;
    }

    /**
     * Perform translate()'s home-array probe ahead of time: the exact
     * lookupAnySize() call it would make, with the same LRU update,
     * prefetch-flag clear and per-array hit/miss counting, touching
     * nothing outside that one array. A later translateWithProbe()
     * call with the returned result then skips its own array access,
     * making the pair exactly equivalent to one plain translate().
     */
    virtual ProbeResult
    probeHomeArray(CoreId core, ContextId ctx, Addr vaddr)
    {
        (void)core; (void)ctx; (void)vaddr;
        return {};
    }

    /**
     * translate(), consuming @p probe (taken earlier by
     * probeHomeArray() for the same (core, ctx, vaddr)) instead of
     * touching the home array again. @p probe must outlive the call.
     */
    void
    translateWithProbe(CoreId core, ContextId ctx, Addr vaddr, Cycle now,
                       TranslationDone done, const ProbeResult &probe)
    {
        preProbe_ = &probe;
        translate(core, ctx, vaddr, now, std::move(done));
        preProbe_ = nullptr;
    }

    const OrgConfig &config() const { return config_; }

    /** In-flight L2 accesses right now (counter-track sampling). */
    unsigned outstandingAccesses() const { return outstanding_; }

    // Chip-wide statistics shared by all organizations.
    stats::Scalar l2Accesses;
    stats::Scalar l2Hits;
    stats::Scalar l2Misses;
    stats::Scalar walksLaunched;
    stats::Scalar prefetchInserts;
    stats::Scalar shootdowns;
    stats::Scalar shootdownL2Invalidations;
    stats::Scalar totalAccessLatency; ///< L1-miss -> completion cycles
    stats::Scalar totalShootdownLatency;
    /** Concurrent chip-wide L2 accesses at each access start (Fig 5). */
    stats::Distribution concurrency;
    /** Concurrent same-slice accesses at each access start (Fig 6). */
    stats::Distribution sliceConcurrency;
    /** Hits discarded because the entry read back corrupt (ECC). */
    stats::Scalar sliceEccRewalks;

    double
    l2MissRate() const
    {
        double acc = l2Accesses.value();
        return acc > 0 ? l2Misses.value() / acc : 0.0;
    }

    double
    averageAccessLatency() const
    {
        double acc = l2Accesses.value();
        return acc > 0 ? totalAccessLatency.value() / acc : 0.0;
    }

  protected:
    /** RAII-style tracking of one in-flight L2 access. */
    void noteAccessStart(unsigned slice);
    void noteAccessEnd(unsigned slice);

    /**
     * Pipelined read-port schedule: at most config.readPortsPerCycle
     * new lookups may start per cycle on one slice / bank.
     * @return the cycle the lookup actually starts.
     */
    Cycle portStart(unsigned slice, Cycle earliest);

    /**
     * Launch the page-table walk for a missed translation on
     * @p walk_core's walker and hand the result to @p k.
     */
    void launchWalk(CoreId walk_core, CoreId requester, ContextId ctx,
                    Addr vaddr, Cycle now, WalkDone k);

    /** Record walk references with the energy model. */
    void chargeWalkEnergy(const mem::WalkResult &walk);

    /**
     * Functionally insert prefetch candidates around a missed page
     * into @p array (no timing; write-port pressure is negligible at
     * TLB miss rates).
     */
    void prefetchAround(tlb::SetAssocTlb &array, ContextId ctx,
                        PageNum vpn, PageSize size);

    /** Make a TLB entry from a walk's translation. */
    tlb::TlbEntry entryFor(ContextId ctx, Addr vaddr,
                           const mem::Translation &t) const;

    /**
     * Draw: did this L2/slice hit read a corrupt entry? Always false
     * (and draws nothing) when the fault plan has no slice-ecc
     * probability, so fault-free runs stay byte-identical.
     */
    bool
    eccCorrupted()
    {
        return eccFaults_ && eccFaults_->sliceEcc();
    }

    /**
     * The home-array probe inside translate(): consume the armed
     * pre-probe when translateWithProbe() set one (the array was
     * already read, counted and LRU-stamped by probeHomeArray()),
     * otherwise perform the live lookup. The returned pointer is only
     * valid until translate() returns; every caller copies the entry
     * by value before handing it to a continuation.
     */
    const tlb::TlbEntry *
    homeProbe(tlb::SetAssocTlb &array, ContextId ctx, Addr vaddr)
    {
        if (preProbe_) {
            const ProbeResult *probe = preProbe_;
            preProbe_ = nullptr;
            return probe->hit ? &probe->entry : nullptr;
        }
        return array.lookupAnySize(ctx, vaddr);
    }

    /**
     * Record one slice/bank array lookup on the structured-trace
     * Slice lane (one track per slice). Free when recording is off.
     */
    void
    noteSliceLookup(unsigned slice, Cycle start, Cycle done, bool hit)
    {
        if (sim::recording())
            sim::recorder().span(sim::Lane::Slice, slice,
                                 hit ? "lookup hit" : "lookup miss",
                                 start, done);
    }

    OrgConfig config_;
    OrgContext ctx_;
    tlb::TlbPrefetcher prefetcher_;
    /** Allocated only when the plan injects slice ECC errors. */
    std::unique_ptr<sim::FaultInjector> eccFaults_;
    /** Armed by translateWithProbe() for the duration of one
     * translate() call; consumed by homeProbe(). */
    const ProbeResult *preProbe_ = nullptr;

  private:
    struct PortState
    {
        Cycle cycle = 0;
        unsigned used = 0;
    };

    unsigned outstanding_ = 0;
    std::vector<unsigned> sliceOutstanding_;
    std::vector<PortState> ports_;
};

/** Render a validate() error list one-per-line for a fatal() report. */
std::string joinConfigErrors(const std::vector<std::string> &errors);

/** Build the organization selected by @p config. */
std::unique_ptr<TlbOrganization>
makeOrganization(const OrgConfig &config, OrgContext context,
                 stats::StatGroup *parent = nullptr);

} // namespace nocstar::core

#endif // NOCSTAR_CORE_ORGANIZATION_HH
