/**
 * @file
 * Distributed shared last-level TLB (Fig 1(d)): one slice per tile,
 * VPN-interleaved, reached over a traditional multi-hop mesh (the
 * paper's "distributed" comparison point) or a zero-latency ideal
 * interconnect (the "ideal" upper bound in Figs 12/13/15).
 */

#ifndef NOCSTAR_CORE_DISTRIBUTED_ORG_HH
#define NOCSTAR_CORE_DISTRIBUTED_ORG_HH

#include <memory>
#include <vector>

#include "core/organization.hh"
#include "noc/network.hh"

namespace nocstar::core
{

/**
 * Per-core shared slices over a baseline network.
 */
class DistributedOrg : public TlbOrganization
{
  public:
    DistributedOrg(const OrgConfig &config, OrgContext context,
                   stats::StatGroup *parent = nullptr);

    void translate(CoreId core, ContextId ctx, Addr vaddr, Cycle now,
                   TranslationDone done) override;

    void shootdown(CoreId initiator, ContextId ctx, Addr vaddr,
                   const std::vector<CoreId> &sharers, Cycle now,
                   ShootdownDone on_complete) override;

    void flushAll() override;

    void preloadShared(ContextId ctx, Addr vaddr,
                       const mem::Translation &t) override;

    std::uint64_t totalEntries() const override;

    /**
     * A local-slice hit completes at portStart(t0) + sliceLatency_;
     * remote slices and walks only add network cycles. Holds for the
     * ideal (zero-latency) network too.
     */
    Cycle
    minCompletionLead() const override
    {
        return config_.initiateLatency + sliceLatency_;
    }

    /**
     * Home slice of a virtual address: 4 KB-granule interleaving on
     * low VPN bits ("simple indexing using bits from the virtual
     * address", §III-A). A 2 MB entry is cached in the slice of the
     * granule that missed, so hot superpages may be replicated across
     * slices -- the price of keeping lookups single-probe.
     */
    CoreId
    sliceOf(Addr vaddr) const
    {
        return static_cast<CoreId>(
            (vaddr >> pageShift(PageSize::FourKB)) % config_.numCores);
    }

    tlb::SetAssocTlb &sliceArray(CoreId slice)
    {
        return *slices_.at(slice);
    }

    // Sharded pre-probe support: one home array per slice tile.
    unsigned numHomeArrays() const override { return config_.numCores; }

    unsigned
    homeArrayOf(CoreId core, Addr vaddr) const override
    {
        (void)core;
        return static_cast<unsigned>(sliceOf(vaddr));
    }

    ProbeResult
    probeHomeArray(CoreId core, ContextId ctx, Addr vaddr) override
    {
        (void)core;
        const tlb::TlbEntry *hit =
            slices_[sliceOf(vaddr)]->lookupAnySize(ctx, vaddr);
        return hit ? ProbeResult{true, *hit} : ProbeResult{};
    }

    tlb::SetAssocTlb &array(unsigned index) override
    {
        return *slices_.at(index);
    }

    CoreId
    walkCoreFor(CoreId requester, Addr vaddr) const override
    {
        return config_.ptwPlacement == PtwPlacement::Remote
            ? sliceOf(vaddr) : requester;
    }

    Cycle sliceLatency() const { return sliceLatency_; }

  private:
    void finishWithWalk(CoreId walk_core, CoreId requester, CoreId slice,
                        ContextId ctx, Addr vaddr, Cycle start, Cycle now,
                        bool ecc, TranslationDone done);

    noc::GridTopology topo_;
    std::unique_ptr<noc::Network> network_;
    std::vector<std::unique_ptr<tlb::SetAssocTlb>> slices_;
    Cycle sliceLatency_;
};

} // namespace nocstar::core

#endif // NOCSTAR_CORE_DISTRIBUTED_ORG_HH
