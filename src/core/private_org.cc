/**
 * @file
 * Private L2 TLB organization implementation.
 */

#include "core/private_org.hh"

#include "energy/sram_model.hh"

namespace nocstar::core
{

PrivateOrg::PrivateOrg(const OrgConfig &config, OrgContext context,
                       stats::StatGroup *parent)
    : TlbOrganization("private_org", config, std::move(context), parent),
      lookupLatency_(energy::SramModel::accessLatency(config.l2Entries))
{
    arrays_.reserve(config.numCores);
    for (unsigned i = 0; i < config.numCores; ++i) {
        arrays_.push_back(std::make_unique<tlb::SetAssocTlb>(
            "l2_core" + std::to_string(i), config.l2Entries,
            config.l2Assoc, this));
    }
}

void
PrivateOrg::translate(CoreId core, ContextId ctx, Addr vaddr, Cycle now,
                      TranslationDone done)
{
    tlb::SetAssocTlb &array = *arrays_[core];
    Cycle t0 = now + config_.initiateLatency;
    Cycle start = portStart(core, t0);

    ++l2Accesses;
    noteAccessStart(core);
    if (ctx_.energy)
        ctx_.energy->addPrivateL2Lookup(config_.l2Entries);

    const tlb::TlbEntry *hit = homeProbe(array, ctx, vaddr);
    bool ecc = false;
    if (hit && eccCorrupted()) {
        // The entry read back corrupt: drop it and take the miss path.
        ++sliceEccRewalks;
        ecc = true;
        ContextId ectx = hit->ctx;
        PageNum vpn = hit->vpn;
        PageSize size = hit->size;
        array.invalidate(ectx, vpn, size);
        hit = nullptr;
    }
    Cycle lookup_done = start + lookupLatency_;

    TRACE(TLB, "core ", core, " private L2 ", hit ? "hit" : "miss",
          " vaddr 0x", std::hex, vaddr, std::dec);
    noteSliceLookup(core, start, lookup_done, hit != nullptr);

    if (hit) {
        ++l2Hits;
        TranslationResult result;
        result.completedAt = lookup_done;
        result.entry = *hit;
        result.l2Hit = true;
        totalAccessLatency += static_cast<double>(lookup_done - now);
        ctx_.queue->scheduleLambda(
            lookup_done, [this, core, result, done = std::move(done)] {
                noteAccessEnd(core);
                done(result);
            });
        return;
    }

    ++l2Misses;
    launchWalk(core, core, ctx, vaddr, lookup_done,
               [this, core, ctx, vaddr, now, ecc,
                done = std::move(done)](const mem::WalkResult &walk) {
                   tlb::SetAssocTlb &arr = *arrays_[core];
                   tlb::TlbEntry entry =
                       entryFor(ctx, vaddr, walk.translation);
                   arr.insert(entry);
                   prefetchAround(arr, ctx, entry.vpn, entry.size);

                   TranslationResult result;
                   result.completedAt = ctx_.queue->curCycle();
                   result.entry = entry;
                   result.walked = true;
                   result.eccRewalk = ecc || walk.eccRetried;
                   totalAccessLatency +=
                       static_cast<double>(result.completedAt - now);
                   noteAccessEnd(core);
                   done(result);
               });
}

void
PrivateOrg::shootdown(CoreId, ContextId ctx, Addr vaddr,
                      const std::vector<CoreId> &sharers, Cycle now,
                      ShootdownDone on_complete)
{
    ++shootdowns;
    mem::Translation t = ctx_.pageTable->translate(ctx, vaddr);
    PageNum vpn = pageNumber(vaddr, t.size);
    TRACE(Shootdown, "vaddr 0x", std::hex, vaddr, std::dec, " to ",
          sharers.size(), " sharers");

    for (CoreId sharer : sharers)
        if (ctx_.l1Invalidate)
            ctx_.l1Invalidate(sharer, ctx, vpn, t.size);

    // Every private L2 may hold a stale copy; the IPI handler on each
    // core invalidates locally, all in parallel.
    std::uint64_t removed = 0;
    for (auto &array : arrays_)
        removed += array->invalidate(ctx, vpn, t.size) ? 1 : 0;
    shootdownL2Invalidations += static_cast<double>(removed);

    Cycle done = now + shootdownLatency;
    totalShootdownLatency += static_cast<double>(done - now);
    if (on_complete)
        ctx_.queue->scheduleLambda(
            done, [cb = std::move(on_complete), done] { cb(done); });
}

void
PrivateOrg::preloadPrivate(CoreId core, ContextId ctx, Addr vaddr,
                           const mem::Translation &t)
{
    arrays_.at(core)->insert(entryFor(ctx, vaddr, t));
}

void
PrivateOrg::flushAll()
{
    for (auto &array : arrays_)
        array->invalidateAll();
}

std::uint64_t
PrivateOrg::totalEntries() const
{
    return static_cast<std::uint64_t>(config_.l2Entries) *
           config_.numCores;
}

} // namespace nocstar::core
