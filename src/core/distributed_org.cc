/**
 * @file
 * Distributed shared TLB implementation.
 */

#include "core/distributed_org.hh"

#include "energy/sram_model.hh"

namespace nocstar::core
{

DistributedOrg::DistributedOrg(const OrgConfig &config,
                               OrgContext context,
                               stats::StatGroup *parent)
    : TlbOrganization("distributed_org", config, std::move(context),
                      parent),
      topo_(noc::GridTopology::forCores(config.numCores))
{
    for (unsigned i = 0; i < config.numCores; ++i) {
        slices_.push_back(std::make_unique<tlb::SetAssocTlb>(
            "slice" + std::to_string(i), config.l2Entries,
            config.l2Assoc, this));
    }
    sliceLatency_ = energy::SramModel::accessLatency(config.l2Entries);

    if (config.kind == OrgKind::IdealShared)
        network_ = std::make_unique<noc::IdealNetwork>("ideal", topo_,
                                                       this);
    else
        network_ = std::make_unique<noc::MeshNetwork>("mesh", topo_,
                                                      this);
}

void
DistributedOrg::finishWithWalk(CoreId walk_core, CoreId requester,
                               CoreId slice, ContextId ctx, Addr vaddr,
                               Cycle start, Cycle now, bool ecc,
                               TranslationDone done)
{
    launchWalk(
        walk_core, requester, ctx, vaddr, start,
        [this, walk_core, requester, slice, ctx, vaddr, now, ecc,
         done = std::move(done)](const mem::WalkResult &walk) mutable {
            Cycle walk_done = ctx_.queue->curCycle();
            tlb::TlbEntry entry = entryFor(ctx, vaddr, walk.translation);

            // The fill is installed in the home slice either way; if
            // the requester walked, the fill message is off the
            // critical path.
            slices_[slice]->insert(entry);
            prefetchAround(*slices_[slice], ctx, entry.vpn,
                           entry.size);
            if (ctx_.energy && walk_core != slice)
                ctx_.energy->addL2Message(
                    energy::NocStyle::DistributedMesh,
                    topo_.hops(walk_core, slice), 0);

            Cycle completed = walk_done;
            if (walk_core != requester) {
                // Remote walk: the translation response still has to
                // travel back to the requester.
                completed +=
                    network_->traverse(walk_core, requester, walk_done);
                if (ctx_.energy)
                    ctx_.energy->addL2Message(
                        energy::NocStyle::DistributedMesh,
                        topo_.hops(walk_core, requester), 0);
            }

            TranslationResult result;
            result.completedAt = completed;
            result.entry = entry;
            result.walked = true;
            result.remote = slice != requester;
            result.eccRewalk = ecc || walk.eccRetried;
            totalAccessLatency +=
                static_cast<double>(completed - now);
            ctx_.queue->scheduleLambda(
                completed, [this, slice, result,
                            done = std::move(done)] {
                    noteAccessEnd(slice);
                    done(result);
                });
        });
}

void
DistributedOrg::translate(CoreId core, ContextId ctx, Addr vaddr,
                          Cycle now, TranslationDone done)
{
    CoreId slice = sliceOf(vaddr);
    tlb::SetAssocTlb &array = *slices_[slice];
    Cycle t0 = now + config_.initiateLatency;

    ++l2Accesses;
    noteAccessStart(slice);

    unsigned hops = topo_.hops(core, slice);
    if (ctx_.energy)
        ctx_.energy->addL2Message(energy::NocStyle::DistributedMesh,
                                  hops, array.numEntries());

    const tlb::TlbEntry *hit = homeProbe(array, ctx, vaddr);
    bool ecc = false;
    if (hit && eccCorrupted()) {
        // The entry read back corrupt: drop it and take the miss path.
        ++sliceEccRewalks;
        ecc = true;
        ContextId ectx = hit->ctx;
        PageNum vpn = hit->vpn;
        PageSize size = hit->size;
        array.invalidate(ectx, vpn, size);
        hit = nullptr;
    }

    Cycle req_arrival = slice == core
        ? t0 : t0 + network_->traverse(core, slice, t0);
    Cycle start = portStart(slice, req_arrival + (slice == core ? 0 : 1));
    Cycle lookup_done = start + sliceLatency_;

    TRACE(TLB, "core ", core, " L2 ", hit ? "hit" : "miss",
          " vaddr 0x", std::hex, vaddr, std::dec, " home slice ",
          slice);
    noteSliceLookup(slice, start, lookup_done, hit != nullptr);

    if (hit) {
        ++l2Hits;
        Cycle completed = slice == core
            ? lookup_done
            : lookup_done + network_->traverse(slice, core, lookup_done);
        if (ctx_.energy && slice != core)
            ctx_.energy->addL2Message(energy::NocStyle::DistributedMesh,
                                      hops, 0);
        TranslationResult result;
        result.completedAt = completed;
        result.entry = *hit;
        result.l2Hit = true;
        result.remote = slice != core;
        totalAccessLatency += static_cast<double>(completed - now);
        ctx_.queue->scheduleLambda(
            completed, [this, slice, result, done = std::move(done)] {
                noteAccessEnd(slice);
                done(result);
            });
        return;
    }

    ++l2Misses;
    if (config_.ptwPlacement == PtwPlacement::Remote || slice == core) {
        // Walk at the slice's core, then respond with the translation.
        finishWithWalk(slice, core, slice, ctx, vaddr, lookup_done, now,
                       ecc, std::move(done));
    } else {
        // Miss message returns to the requester, which walks locally.
        Cycle miss_arrival =
            lookup_done + network_->traverse(slice, core, lookup_done);
        if (ctx_.energy)
            ctx_.energy->addL2Message(energy::NocStyle::DistributedMesh,
                                      hops, 0);
        finishWithWalk(core, core, slice, ctx, vaddr, miss_arrival, now,
                       ecc, std::move(done));
    }
}

void
DistributedOrg::shootdown(CoreId, ContextId ctx, Addr vaddr,
                          const std::vector<CoreId> &sharers, Cycle now,
                          ShootdownDone on_complete)
{
    ++shootdowns;
    mem::Translation t = ctx_.pageTable->translate(ctx, vaddr);
    PageNum vpn = pageNumber(vaddr, t.size);
    TRACE(Shootdown, "vaddr 0x", std::hex, vaddr, std::dec, " to ",
          sharers.size(), " sharers");

    for (CoreId sharer : sharers)
        if (ctx_.l1Invalidate)
            ctx_.l1Invalidate(sharer, ctx, vpn, t.size);

    CoreId slice = sliceOf(vaddr);
    if (slices_.at(slice)->invalidate(ctx, vpn, t.size))
        ++shootdownL2Invalidations;

    Cycle last = now;
    if (config_.invalLeaderGroup == 0) {
        // Each IPI'd core relays its own invalidation to the slice.
        for (CoreId sharer : sharers) {
            Cycle arrive = now + network_->traverse(sharer, slice, now);
            Cycle processed = portStart(slice, arrive + 1) + 1;
            last = std::max(last, processed);
        }
    } else {
        // Leader relay: one upstream message per sharer, one deduped
        // downstream invalidation per involved leader.
        std::vector<bool> leader_sent(config_.numCores, false);
        for (CoreId sharer : sharers) {
            CoreId leader = sharer - (sharer % config_.invalLeaderGroup);
            Cycle at_leader =
                now + network_->traverse(sharer, leader, now);
            if (!leader_sent.at(leader)) {
                leader_sent[leader] = true;
                Cycle arrive = at_leader +
                    network_->traverse(leader, slice, at_leader);
                Cycle processed = portStart(slice, arrive + 1) + 1;
                last = std::max(last, processed);
            } else {
                last = std::max(last, at_leader);
            }
        }
    }
    totalShootdownLatency += static_cast<double>(last - now);
    if (on_complete)
        ctx_.queue->scheduleLambda(
            last, [cb = std::move(on_complete), last] { cb(last); });
}

void
DistributedOrg::preloadShared(ContextId ctx, Addr vaddr,
                              const mem::Translation &t)
{
    slices_.at(sliceOf(vaddr))->insert(entryFor(ctx, vaddr, t));
}

void
DistributedOrg::flushAll()
{
    for (auto &slice : slices_)
        slice->invalidateAll();
}

std::uint64_t
DistributedOrg::totalEntries() const
{
    return static_cast<std::uint64_t>(config_.l2Entries) *
           config_.numCores;
}

} // namespace nocstar::core
