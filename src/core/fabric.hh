/**
 * @file
 * The flat NOCSTAR interconnect (paper §III-B): a latchless,
 * circuit-switched side-band network giving near single-cycle
 * traversal between any L1 TLB and any L2 TLB slice.
 *
 * Control path, modelled cycle-accurately:
 *  - a requester posts path-setup requests to the arbiter of *every*
 *    link on its XY path in the same cycle;
 *  - each link arbiter grants at most one requester per cycle;
 *  - a requester proceeds only if ALL its links granted ("the grants
 *    are ANDed"); otherwise it retries next cycle, guaranteeing no
 *    partially-held paths and hence no deadlock;
 *  - arbiters share a static priority order that rotates round-robin
 *    every priorityEpoch cycles (default 1000) to prevent starvation.
 *    Because the order is chip-wide consistent, the highest-priority
 *    contender always acquires its full path: livelock-free.
 *
 * Datapath: granted messages traverse muxes without latching, covering
 * up to HPCmax hops per cycle; longer paths take ceil(hops / HPCmax)
 * cycles through pipeline latches (§III-B3).
 *
 * The request queues, priority rotation and fault policy live in the
 * Interconnect base; this class supplies the path/resource model. Only
 * src/core/ includes this header -- everything else sees Interconnect
 * and constructs through makeInterconnect().
 */

#ifndef NOCSTAR_CORE_FABRIC_HH
#define NOCSTAR_CORE_FABRIC_HH

#include <span>
#include <string>
#include <vector>

#include "core/interconnect.hh"

namespace nocstar::core
{

/**
 * Event-driven flat NOCSTAR fabric: one chip-wide circuit-switched
 * mesh, XY paths.
 */
class NocstarFabric final : public Interconnect
{
  public:
    /**
     * Largest tile count that keeps the dense per-pair path table
     * (O(tiles^2 x mean hops) words). Above it paths are materialized
     * on demand into two reusable scratch buffers instead, so a
     * 1024-tile fabric costs O(tiles) memory, not gigawords. A fault
     * plan forces the table at any size: route-around rewrites paths,
     * which needs them stored.
     */
    static constexpr unsigned kPathTableMaxTiles = 256;

    NocstarFabric(const std::string &name, EventQueue &queue,
                  const noc::GridTopology &topo,
                  const FabricConfig &config,
                  stats::StatGroup *parent = nullptr);

    /** Hop count of the current path src -> dst. */
    unsigned
    pathHops(CoreId src, CoreId dst) const override
    {
        if (pathOffset_.empty())
            return topo_.hops(src, dst);
        std::size_t pair = pairIndex(src, dst);
        return pathOffset_[pair + 1] - pathOffset_[pair];
    }

    /** Traversal cycles of the granted path src -> dst. */
    Cycle
    traversal(CoreId src, CoreId dst) const override
    {
        return traversalCycles(pathHops(src, dst));
    }

    void pathLinksInto(CoreId src, CoreId dst,
                       std::vector<std::uint32_t> &out) const override;

  protected:
    bool tryAcquire(const Request &req, Cycle now) override;
    bool pairUnreachable(const Request &req) const override;

    /** Recompute paths around the newly dead link (rebuildPaths). */
    void
    onPermanentLinkDeath(std::uint32_t) override
    {
        rebuildPaths();
    }

  private:
    /**
     * Flattened link ids of the current path src -> dst from the
     * precomputed table. Matches GridTopology::xyPath link-for-link
     * until route-around rewrites the pair.
     */
    std::span<const std::uint32_t>
    tableLinks(CoreId src, CoreId dst) const
    {
        std::size_t pair = pairIndex(src, dst);
        return {pathLinks_.data() + pathOffset_[pair],
                pathOffset_[pair + 1] - pathOffset_[pair]};
    }

    /**
     * The path src -> dst without per-attempt allocation: a table span
     * when the table exists, otherwise the XY path filled into scratch
     * buffer @p slot (0 forward, 1 reverse -- both directions of a
     * round trip must be live at once).
     */
    std::span<const std::uint32_t>
    pathSpan(CoreId src, CoreId dst, unsigned slot)
    {
        if (!pathOffset_.empty())
            return tableLinks(src, dst);
        scratch_[slot].clear();
        topo_.xyLinksInto(src, dst, scratch_[slot]);
        return scratch_[slot];
    }

    /** Build pathLinks_/pathOffset_ from the topology (ctor only). */
    void buildPathTable();

  public:
    std::size_t
    memoryBytes() const override
    {
        return Interconnect::memoryBytes() +
               pathOffset_.capacity() * sizeof(std::uint32_t) +
               pathLinks_.capacity() * sizeof(std::uint32_t) +
               pairDegraded_.capacity() * sizeof(std::uint8_t) +
               scratch_[0].capacity() * sizeof(std::uint32_t) +
               scratch_[1].capacity() * sizeof(std::uint32_t);
    }

  private:

    /**
     * Recompute the path table around permanently dead links. Only
     * pairs whose current path crosses a dead link change (BFS over
     * the surviving links); pairs with no surviving path at all are
     * marked degraded and served by the fallback mesh from then on.
     */
    void rebuildPaths();

    /**
     * Precomputed XY paths for all (src, dst) pairs: the links of
     * pair p live at pathLinks_[pathOffset_[p] .. pathOffset_[p+1]).
     * Both empty above kPathTableMaxTiles (without faults).
     */
    std::vector<std::uint32_t> pathOffset_;
    std::vector<std::uint32_t> pathLinks_;
    /** Per (src, dst) pair: no circuit path survives route-around. */
    std::vector<std::uint8_t> pairDegraded_;
    /** On-demand path buffers (tables disabled): forward / reverse. */
    std::vector<std::uint32_t> scratch_[2];
};

} // namespace nocstar::core

#endif // NOCSTAR_CORE_FABRIC_HH
