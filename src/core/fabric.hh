/**
 * @file
 * The NOCSTAR interconnect (paper §III-B): a latchless, circuit-switched
 * side-band network giving near single-cycle traversal between any
 * L1 TLB and any L2 TLB slice.
 *
 * Control path, modelled cycle-accurately:
 *  - a requester posts path-setup requests to the arbiter of *every*
 *    link on its XY path in the same cycle;
 *  - each link arbiter grants at most one requester per cycle;
 *  - a requester proceeds only if ALL its links granted ("the grants
 *    are ANDed"); otherwise it retries next cycle, guaranteeing no
 *    partially-held paths and hence no deadlock;
 *  - arbiters share a static priority order that rotates round-robin
 *    every priorityEpoch cycles (default 1000) to prevent starvation.
 *    Because the order is chip-wide consistent, the highest-priority
 *    contender always acquires its full path: livelock-free.
 *
 * Datapath: granted messages traverse muxes without latching, covering
 * up to HPCmax hops per cycle; longer paths take ceil(hops / HPCmax)
 * cycles through pipeline latches (§III-B3).
 */

#ifndef NOCSTAR_CORE_FABRIC_HH
#define NOCSTAR_CORE_FABRIC_HH

#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/config.hh"
#include "noc/topology.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace nocstar::core
{

/** Fabric tuning knobs. */
struct FabricConfig
{
    unsigned hpcMax = 16;
    Cycle priorityEpoch = 1000;
    /** Contention-free mode: every setup succeeds (NOCSTAR-ideal). */
    bool ideal = false;
    /**
     * Fault-injection plan (not owned; must outlive the fabric).
     * Null or empty means no fault machinery is instantiated and
     * every hot path behaves exactly as a fault-free build.
     */
    const sim::FaultPlan *faults = nullptr;
};

/**
 * Event-driven NOCSTAR fabric.
 */
class NocstarFabric : public stats::StatGroup
{
  public:
    /**
     * Invoked when the message is latched at the destination tile.
     * Inline capacity fits the largest organization continuation
     * (NOCSTAR remote lookup carrying the entry and the requester's
     * completion callback).
     */
    using DeliverFn = InlineFunction<void(Cycle arrival), 192>;

    NocstarFabric(const std::string &name, EventQueue &queue,
                  const noc::GridTopology &topo,
                  const FabricConfig &config,
                  stats::StatGroup *parent = nullptr);

    ~NocstarFabric() override;

    /**
     * One-way message: arbitration begins at max(now, curCycle); on
     * success the message arrives ceil(hops/HPCmax) cycles after its
     * setup cycle. Local (src == dst) messages deliver immediately.
     *
     * Each source tile has a single path-setup port (one set of
     * request wires to the arbiters), so its outstanding messages
     * arbitrate oldest-first, one per cycle.
     */
    void send(CoreId src, CoreId dst, Cycle now, DeliverFn deliver);

    /**
     * Round-trip acquisition (Fig 16 left): the forward *and* reverse
     * paths are held from the setup cycle until the response has
     * returned, @p occupancy cycles after the request arrives at the
     * destination. @p deliver fires at the destination arrival; the
     * caller schedules the response completion itself (the return path
     * is pre-granted, adding one traversal).
     */
    void sendRoundTrip(CoreId src, CoreId dst, Cycle now, Cycle occupancy,
                       DeliverFn deliver);

    const noc::GridTopology &topology() const { return topo_; }

    /**
     * Flattened link ids of the XY path src -> dst, from the table
     * precomputed at construction (arbitration allocates nothing per
     * attempt). Matches GridTopology::xyPath link-for-link.
     */
    std::span<const std::uint32_t>
    pathLinks(CoreId src, CoreId dst) const
    {
        std::size_t pair = pairIndex(src, dst);
        return {pathLinks_.data() + pathOffset_[pair],
                pathOffset_[pair + 1] - pathOffset_[pair]};
    }

    /** Hop count of the precomputed XY path src -> dst. */
    unsigned
    pathHops(CoreId src, CoreId dst) const
    {
        std::size_t pair = pairIndex(src, dst);
        return pathOffset_[pair + 1] - pathOffset_[pair];
    }

    /** Traversal cycles for a granted path of @p hops hops. */
    Cycle
    traversalCycles(unsigned hops) const
    {
        if (hops == 0)
            return 0;
        return (hops + config_.hpcMax - 1) / config_.hpcMax;
    }

    // Statistics exercised by the figures.
    stats::Scalar messagesSent;
    stats::Scalar setupAttempts;
    stats::Scalar setupFailures;
    /** Messages that experienced no contention delay at all (granted
     * in the cycle they were posted, no port queueing, no retry). */
    stats::Scalar zeroRetryMessages;
    stats::Scalar totalNetworkLatency; ///< send-call -> delivery cycles
    stats::Distribution retryDistribution;
    // Per-link load-imbalance telemetry, indexed by flattened link id
    // (GridTopology::LinkId::flatten()): how often each link was
    // acquired, how often it was the first blocker of a failed setup,
    // and for how many cycles in total it was held. linkHoldCycles
    // against the run length is the per-link occupancy heatmap.
    stats::Vector linkGrants;
    stats::Vector linkDenies;
    stats::Vector linkHoldCycles;
    // Fault-injection / resilience telemetry. All stay zero (and cost
    // nothing on the hot path) unless a fault plan is configured.
    stats::Scalar faultsInjected; ///< outages begun + grants lost
    /** Messages that gave up on circuit setup and fell back to the
     * store-and-forward maintenance mesh. */
    stats::Scalar degradedMessages;
    stats::Scalar backoffCycles; ///< extra wait beyond the 1-cycle retry
    stats::Scalar watchdogTrips; ///< messages rescued by the watchdog
    /** Cycles each link spent inside a fault window, indexed like
     * linkGrants (brought current by syncFaultStats()). */
    stats::Vector linkDeadCycles;

    /**
     * Bring linkDeadCycles current through @p now. Called before epoch
     * snapshots and at end of run; no-op without a fault plan.
     */
    void syncFaultStats(Cycle now);

    /**
     * True only while a delivery callback of a degraded (mesh-
     * fallback) message is running. The organization continuations
     * read it inside their DeliverFn bodies to tag the translation
     * they are completing; the single-threaded event queue guarantees
     * deliveries never nest across messages.
     */
    bool deliveredDegraded() const { return deliveringDegraded_; }

    /** Directed links held at cycle @p now (counter-track sampling). */
    unsigned
    linksHeld(Cycle now) const
    {
        unsigned held = 0;
        for (Cycle until : linkHeldUntil_)
            held += until > now ? 1 : 0;
        return held;
    }

    /** Average cycles from send() to delivery, network portion only. */
    double
    averageLatency() const
    {
        double n = messagesSent.value();
        return n > 0 ? totalNetworkLatency.value() / n : 0.0;
    }

    /** Fraction of messages that acquired their path with no retry. */
    double
    noContentionFraction() const
    {
        double n = messagesSent.value();
        return n > 0 ? zeroRetryMessages.value() / n : 0.0;
    }

  private:
    struct Request
    {
        CoreId src;
        CoreId dst;
        Cycle posted; ///< cycle of the original send() call
        Cycle activeAt; ///< earliest cycle this request may arbitrate
        Cycle holdExtra; ///< extra link-hold cycles (round-trip mode)
        bool roundTrip;
        unsigned retries;
        std::uint64_t seq; ///< FIFO tiebreak among same-source requests
        DeliverFn deliver;
    };

    /** Run one arbitration round for the current cycle. */
    void arbitrate();

    /** Try to reserve all links of @p req's path(s). */
    bool tryAcquire(const Request &req, Cycle now);

    /** A link fault window just opened: mark it, reroute if permanent. */
    void activateFault(const sim::LinkFaultSpec &fault);

    /**
     * Recompute the path table around permanently dead links. Only
     * pairs whose current path crosses a dead link change (BFS over
     * the surviving links); pairs with no surviving path at all are
     * marked degraded and served by the fallback mesh from then on.
     */
    void rebuildPaths();

    /** Pop @p src's head request and deliver it over the fallback
     * store-and-forward mesh instead of the circuit fabric. */
    void degrade(CoreId src, Cycle now);

    void scheduleArbitration(Cycle when);

    std::size_t
    pairIndex(CoreId src, CoreId dst) const
    {
        return static_cast<std::size_t>(src) * topo_.numTiles() + dst;
    }

    /** Build pathLinks_/pathOffset_ from the topology (ctor only). */
    void buildPathTable();

    EventQueue &queue_;
    noc::GridTopology topo_;
    FabricConfig config_;

    /** Cycle through which each directed link is held (exclusive). */
    std::vector<Cycle> linkHeldUntil_;
    /**
     * Precomputed XY paths for all (src, dst) pairs: the links of
     * pair p live at pathLinks_[pathOffset_[p] .. pathOffset_[p+1]).
     */
    std::vector<std::uint32_t> pathOffset_;
    std::vector<std::uint32_t> pathLinks_;
    /** Scratch list of arbitrating sources, reused across rounds. */
    std::vector<CoreId> contenders_;
    /** Per-source FIFO of waiting requests (one setup port each). */
    std::vector<std::deque<Request>> pending_;
    /**
     * One bit per source tile, set while its FIFO is non-empty, so
     * arbitration rounds visit only tiles with work instead of
     * scanning every queue.
     */
    std::vector<std::uint64_t> pendingBits_;
    std::size_t numPending_ = 0;
    Cycle arbitrationScheduledFor_ = invalidCycle;
    std::uint64_t nextSeq_ = 0;
    LambdaEvent arbitrationEvent_;

    // Fault machinery; allocated only when config_.faults is a
    // non-empty plan, so the guards below reduce to one null check.
    /** Seeded draw source for grant loss (Stream::Fabric). */
    std::unique_ptr<sim::FaultInjector> faults_;
    /** Cycle through which each link is fault-disabled (exclusive);
     * invalidCycle for permanently dead links. */
    std::vector<Cycle> linkFaultyUntil_;
    std::vector<std::uint8_t> linkDeadPermanent_;
    /** Per (src, dst) pair: no circuit path survives route-around. */
    std::vector<std::uint8_t> pairDegraded_;
    /** Per-link next-free cycle of the fallback mesh (QueuedMesh
     * model: router + wire cycle per hop, one flit per link-cycle). */
    std::vector<Cycle> meshLinkFree_;
    /** linkDeadCycles is accounted through this cycle. */
    Cycle faultStatsThrough_ = 0;
    /** See deliveredDegraded(). */
    bool deliveringDegraded_ = false;
};

} // namespace nocstar::core

#endif // NOCSTAR_CORE_FABRIC_HH
