/**
 * @file
 * Organization and interconnect factory: the single construction point
 * for (organization, fabric) pairs. Only this file names the concrete
 * fabric classes; everything else sees core::Interconnect.
 */

#include <algorithm>

#include "core/distributed_org.hh"
#include "core/fabric.hh"
#include "core/hier_fabric.hh"
#include "core/interconnect.hh"
#include "core/monolithic_org.hh"
#include "core/nocstar_org.hh"
#include "core/organization.hh"
#include "core/private_org.hh"

namespace nocstar::core
{

void
resolveClusterGeometry(const FabricConfig &config,
                       const noc::GridTopology &topo,
                       unsigned &clusterWidth, unsigned &clusterHeight)
{
    clusterWidth = config.clusterWidth;
    clusterHeight = config.clusterHeight;
    if (clusterWidth == 0 && clusterHeight == 0) {
        // Auto geometry: near-square clusters of up to 4x4 tiles. Both
        // mesh dimensions are powers of two (validate() enforces it for
        // the hierarchical fabric), so min(4, dim) always divides.
        clusterWidth = std::min(4u, topo.width());
        clusterHeight = std::min(4u, topo.height());
    }
    if (clusterWidth == 0 || clusterHeight == 0 ||
        topo.width() % clusterWidth != 0 ||
        topo.height() % clusterHeight != 0)
        fatal("cluster geometry ", clusterWidth, "x", clusterHeight,
              " does not tile the ", topo.width(), "x", topo.height(),
              " mesh");
}

std::unique_ptr<Interconnect>
makeInterconnect(const std::string &name, EventQueue &queue,
                 const noc::GridTopology &topo,
                 const FabricConfig &config, stats::StatGroup *parent)
{
    switch (config.kind) {
      case FabricKind::Flat:
        return std::make_unique<NocstarFabric>(name, queue, topo,
                                               config, parent);
      case FabricKind::Hierarchical:
        return std::make_unique<HierFabric>(name, queue, topo, config,
                                            parent);
    }
    fatal("unknown fabric kind");
}

std::unique_ptr<Interconnect>
makeInterconnect(const std::string &name, EventQueue &queue,
                 const noc::GridTopology &topo, const OrgConfig &config,
                 stats::StatGroup *parent)
{
    FabricConfig fabric;
    fabric.kind = config.fabricKind;
    fabric.hpcMax = config.hpcMax;
    fabric.priorityEpoch = config.priorityEpoch;
    fabric.ideal = config.kind == OrgKind::NocstarIdeal;
    fabric.faults = config.faults.empty() ? nullptr : &config.faults;
    fabric.clusterWidth = config.clusterWidth;
    fabric.clusterHeight = config.clusterHeight;
    fabric.recordGrantWait = config.recordGrantWait;
    return makeInterconnect(name, queue, topo, fabric, parent);
}

std::unique_ptr<TlbOrganization>
makeOrganization(const OrgConfig &config, OrgContext context,
                 stats::StatGroup *parent)
{
    if (std::vector<std::string> errors = config.validate();
        !errors.empty())
        fatal("invalid organization config:", joinConfigErrors(errors));
    switch (config.kind) {
      case OrgKind::Private:
        return std::make_unique<PrivateOrg>(config, std::move(context),
                                            parent);
      case OrgKind::MonolithicMesh:
      case OrgKind::MonolithicSmart:
        return std::make_unique<MonolithicOrg>(config, std::move(context),
                                               parent);
      case OrgKind::Distributed:
      case OrgKind::IdealShared:
        return std::make_unique<DistributedOrg>(config,
                                                std::move(context),
                                                parent);
      case OrgKind::Nocstar:
      case OrgKind::NocstarIdeal:
        return std::make_unique<NocstarOrg>(config, std::move(context),
                                            parent);
    }
    fatal("unknown organization kind");
}

} // namespace nocstar::core
