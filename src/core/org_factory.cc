/**
 * @file
 * Organization factory.
 */

#include "core/distributed_org.hh"
#include "core/monolithic_org.hh"
#include "core/nocstar_org.hh"
#include "core/organization.hh"
#include "core/private_org.hh"

namespace nocstar::core
{

std::unique_ptr<TlbOrganization>
makeOrganization(const OrgConfig &config, OrgContext context,
                 stats::StatGroup *parent)
{
    if (std::vector<std::string> errors = config.validate();
        !errors.empty())
        fatal("invalid organization config:", joinConfigErrors(errors));
    switch (config.kind) {
      case OrgKind::Private:
        return std::make_unique<PrivateOrg>(config, std::move(context),
                                            parent);
      case OrgKind::MonolithicMesh:
      case OrgKind::MonolithicSmart:
        return std::make_unique<MonolithicOrg>(config, std::move(context),
                                               parent);
      case OrgKind::Distributed:
      case OrgKind::IdealShared:
        return std::make_unique<DistributedOrg>(config,
                                                std::move(context),
                                                parent);
      case OrgKind::Nocstar:
      case OrgKind::NocstarIdeal:
        return std::make_unique<NocstarOrg>(config, std::move(context),
                                            parent);
    }
    fatal("unknown organization kind");
}

} // namespace nocstar::core
