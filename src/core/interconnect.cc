/**
 * @file
 * The shared circuit-switched arbitration engine behind the
 * Interconnect seam.
 *
 * Timing convention: a send() posted in cycle T arbitrates in T (the
 * "path setup" cycle); granted data occupies its resources during
 * cycles (T, T+traversal] and is latched at the destination at
 * T+traversal. Reported network latency counts the setup cycle plus
 * traversal and any waiting, so an uncontended single-hop message
 * costs 2 cycles, matching §V ("1 cycle in path setup and another
 * cycle to traverse").
 *
 * Each tile owns a single set of path-setup request wires, so at most
 * one request per source arbitrates per cycle; younger requests from
 * the same tile queue behind it. This keeps a saturated fabric's
 * arbitration cost bounded by the tile count per cycle.
 */

#include "core/interconnect.hh"

#include <algorithm>
#include <bit>

#include "sim/trace.hh"
#include "sim/trace_recorder.hh"

namespace nocstar::core
{

Interconnect::Interconnect(const std::string &name, EventQueue &queue,
                           const noc::GridTopology &topo,
                           const FabricConfig &config,
                           stats::StatGroup *parent)
    : stats::StatGroup(name, parent),
      messagesSent(this, "messages", "messages delivered"),
      setupAttempts(this, "setup_attempts", "path setup attempts"),
      setupFailures(this, "setup_failures", "failed setup attempts"),
      zeroRetryMessages(this, "zero_retry_messages",
                        "messages with no contention delay"),
      totalNetworkLatency(this, "network_latency",
                          "total setup+traversal+wait cycles"),
      retryDistribution(this, "retries", "setup retries per message",
                        0, 64, 1),
      linkGrants(this, "link_grants", "path grants per link",
                 topo.linkIndexSpace()),
      linkDenies(this, "link_denies",
                 "failed setups this link blocked first",
                 topo.linkIndexSpace()),
      linkHoldCycles(this, "link_hold_cycles",
                     "total cycles each link was held",
                     topo.linkIndexSpace()),
      faultsInjected(this, "faults_injected",
                     "link outages begun plus grants lost"),
      degradedMessages(this, "degraded_messages",
                       "messages delivered over the fallback mesh"),
      backoffCycles(this, "backoff_cycles",
                    "retry wait cycles beyond the 1-cycle minimum"),
      watchdogTrips(this, "watchdog_trips",
                    "stalled messages rescued by the watchdog"),
      linkDeadCycles(this, "link_dead_cycles",
                     "cycles each link spent fault-disabled",
                     topo.linkIndexSpace()),
      queue_(queue), topo_(topo), config_(config),
      linkHeldUntil_(topo.linkIndexSpace(), 0),
      pending_(topo.numTiles()),
      pendingBits_((topo.numTiles() + 63) / 64, 0),
      arbitrationEvent_([this] { arbitrate(); },
                        Event::arbitrationPriority)
{
    if (config_.hpcMax == 0)
        fatal("NOCSTAR fabric needs hpcMax >= 1");
    if (config_.faults && config_.faults->empty())
        config_.faults = nullptr;
    contenders_.reserve(topo_.numTiles());
    if (config_.recordGrantWait)
        grantWait_ = std::make_unique<std::vector<sim::LatencyHistogram>>(
            topo_.numTiles());

    if (config_.faults) {
        const sim::FaultPlan &plan = *config_.faults;
        if (std::vector<std::string> errors =
                plan.validate(topo_.linkIndexSpace());
            !errors.empty())
            fatal("invalid fault plan for fabric '", name, "': ",
                  errors.front());
        faults_ = std::make_unique<sim::FaultInjector>(
            plan, sim::FaultInjector::Stream::Fabric);
        linkFaultyUntil_.assign(topo_.linkIndexSpace(), 0);
        linkDeadPermanent_.assign(topo_.linkIndexSpace(), 0);
        meshLinkFree_.assign(topo_.linkIndexSpace(), 0);
        // Fault activations run at default priority, i.e. before the
        // cycle's arbitration round, so an outage starting at cycle T
        // already blocks setups in T.
        for (const sim::LinkFaultSpec &f : plan.linkFaults)
            queue_.scheduleLambda(f.start,
                                  [this, f] { activateFault(f); });
    }
}

Interconnect::~Interconnect()
{
    if (arbitrationEvent_.scheduled())
        queue_.deschedule(&arbitrationEvent_);
}

void
Interconnect::scheduleArbitration(Cycle when)
{
    if (arbitrationEvent_.scheduled()) {
        if (arbitrationScheduledFor_ <= when)
            return;
        queue_.deschedule(&arbitrationEvent_);
    }
    queue_.schedule(&arbitrationEvent_, when);
    arbitrationScheduledFor_ = when;
}

void
Interconnect::send(CoreId src, CoreId dst, Cycle now, DeliverFn deliver)
{
    if (src == dst) {
        deliver(now);
        return;
    }
    Cycle active = std::max(now, queue_.curCycle());
    TRACE(Fabric, "post one-way ", src, " -> ", dst, " active at ",
          active);
    pending_[src].push_back(Request{src, dst, active, active, 0,
                                    false, 0, nextSeq_++,
                                    std::move(deliver)});
    pendingBits_[src >> 6] |= std::uint64_t{1} << (src & 63);
    ++numPending_;
    scheduleArbitration(active);
}

void
Interconnect::sendRoundTrip(CoreId src, CoreId dst, Cycle now,
                            Cycle occupancy, DeliverFn deliver)
{
    if (src == dst) {
        deliver(now);
        return;
    }
    Cycle active = std::max(now, queue_.curCycle());
    TRACE(Fabric, "post round-trip ", src, " -> ", dst, " occupancy ",
          occupancy, " active at ", active);
    pending_[src].push_back(Request{src, dst, active, active,
                                    occupancy, true, 0, nextSeq_++,
                                    std::move(deliver)});
    pendingBits_[src >> 6] |= std::uint64_t{1} << (src & 63);
    ++numPending_;
    scheduleArbitration(active);
}

void
Interconnect::arbitrate()
{
    Cycle now = queue_.curCycle();
    arbitrationScheduledFor_ = invalidCycle;

    // Chip-wide consistent static priority, rotated every epoch so no
    // requester starves (§III-B2).
    unsigned tiles = topo_.numTiles();
    unsigned rotation = static_cast<unsigned>(
        (now / config_.priorityEpoch) % tiles);

    // One eligible request per source: the oldest whose turn has come.
    // Only sources with queued work have their bit set, so the round
    // touches just those queues.
    contenders_.clear();
    for (std::size_t w = 0; w < pendingBits_.size(); ++w) {
        std::uint64_t bits = pendingBits_[w];
        while (bits) {
            auto src = static_cast<CoreId>(
                (w << 6) +
                static_cast<unsigned>(std::countr_zero(bits)));
            bits &= bits - 1;
            if (pending_[src].front().activeAt <= now)
                contenders_.push_back(src);
        }
    }
    // Rotated static priority: sources >= rotation first, each group
    // ascending. contenders_ is gathered in ascending order, so a
    // rotate produces exactly the order the per-source keyed sort
    // (a + tiles - rotation) % tiles would.
    std::rotate(contenders_.begin(),
                std::lower_bound(contenders_.begin(), contenders_.end(),
                                 static_cast<CoreId>(rotation)),
                contenders_.end());

    for (CoreId src : contenders_) {
        Request &req = pending_[src].front();
        if (faults_ && pairUnreachable(req)) {
            // Route-around found no surviving circuit path; don't burn
            // arbitration cycles on a setup that can never succeed.
            degrade(src, now);
            continue;
        }
        ++setupAttempts;
        if (!tryAcquire(req, now)) {
            ++setupFailures;
            ++req.retries;
            if (faults_) {
                const sim::FaultPlan &plan = faults_->plan();
                if (plan.watchdogCycles != 0 &&
                    now - req.posted >= plan.watchdogCycles) {
                    if (plan.watchdogFatal)
                        fatal("fabric watchdog: message ", req.src,
                              " -> ", req.dst, " unserved for ",
                              now - req.posted, " cycles");
                    ++watchdogTrips;
                    degrade(src, now);
                    continue;
                }
                if (req.retries > plan.retryBudget) {
                    degrade(src, now);
                    continue;
                }
                // Capped exponential backoff: 1, 2, 4, ... cycles.
                Cycle delay = std::min<Cycle>(
                    plan.backoffCap,
                    Cycle{1} << std::min(req.retries - 1, 30u));
                req.activeAt = now + delay;
                backoffCycles += static_cast<double>(delay - 1);
            } else {
                req.activeAt = now + 1;
            }
            TRACE(Fabric, "setup denied ", req.src, " -> ", req.dst,
                  " retry ", req.retries);
            if (sim::recording())
                sim::recorder().instant(sim::Lane::Message, req.src,
                                        "setup denied", now, req.dst,
                                        req.retries, "dst", "retries");
            continue;
        }

        Cycle traversal = this->traversal(req.src, req.dst);
        Cycle arrival = now + traversal;

        TRACE(Fabric, "setup granted ", req.src, " -> ", req.dst,
              " after ", req.retries, " retries, arrival ", arrival);
        if (sim::recording())
            sim::recorder().span(sim::Lane::Message, req.src,
                                 req.roundTrip ? "round-trip message"
                                               : "message",
                                 req.posted, arrival, req.dst,
                                 req.retries, "dst", "retries");
        ++messagesSent;
        if (now == req.posted)
            ++zeroRetryMessages;
        retryDistribution.sample(static_cast<double>(req.retries));
        // Latency counts waiting (port queueing + retries) + the
        // setup cycle + traversal.
        totalNetworkLatency += static_cast<double>(
            (now - req.posted) + 1 + traversal);
        if (grantWait_)
            (*grantWait_)[req.src].record(now - req.posted);

        DeliverFn deliver = std::move(req.deliver);
        queue_.scheduleLambda(arrival,
                              [deliver = std::move(deliver), arrival] {
                                  deliver(arrival);
                              });

        pending_[src].pop_front();
        --numPending_;
        // The setup port frees next cycle for the next queued request.
        if (!pending_[src].empty())
            pending_[src].front().activeAt = std::max(
                pending_[src].front().activeAt, now + 1);
        else
            pendingBits_[src >> 6] &=
                ~(std::uint64_t{1} << (src & 63));
    }

    if (numPending_ > 0) {
        Cycle next = invalidCycle;
        for (std::size_t w = 0; w < pendingBits_.size(); ++w) {
            std::uint64_t bits = pendingBits_[w];
            while (bits) {
                auto src = static_cast<CoreId>(
                    (w << 6) +
                    static_cast<unsigned>(std::countr_zero(bits)));
                bits &= bits - 1;
                next = std::min(next,
                                pending_[src].front().activeAt);
            }
        }
        scheduleArbitration(std::max(next, now + 1));
    }
}

void
Interconnect::activateFault(const sim::LinkFaultSpec &fault)
{
    ++faultsInjected;
    linkFaultyUntil_[fault.link] =
        std::max(linkFaultyUntil_[fault.link], fault.end());
    TRACE(Fabric, "link ", fault.link, " fault window opens at ",
          queue_.curCycle(),
          fault.permanent() ? " (permanent)" : "");
    if (fault.permanent() && !linkDeadPermanent_[fault.link]) {
        linkDeadPermanent_[fault.link] = 1;
        onPermanentLinkDeath(fault.link);
    }
}

void
Interconnect::degrade(CoreId src, Cycle now)
{
    Request &req = pending_[src].front();
    // Deliver over the store-and-forward maintenance mesh instead
    // (noc::QueuedMeshNetwork timing: router + wire cycle per hop, one
    // flit per link-cycle). The maintenance mesh is a tile-level
    // structure for every fabric kind, so this path is shared. For
    // round-trip messages only the forward trip is recosted; the
    // caller's pre-granted-return accounting stands in for the
    // response, which is an understatement we accept for a degraded
    // corner.
    Cycle t = now;
    for (const noc::LinkId &link : topo_.xyPath(req.src, req.dst)) {
        t += 1; // route compute / switch allocation
        Cycle &free_at = meshLinkFree_[link.flatten()];
        if (free_at > t)
            t = free_at; // wait for the link
        free_at = t + 1;
        t += 1; // wire traversal
    }
    Cycle arrival = t;

    ++degradedMessages;
    ++messagesSent;
    retryDistribution.sample(static_cast<double>(req.retries));
    totalNetworkLatency +=
        static_cast<double>((arrival - req.posted) + 1);
    if (grantWait_)
        (*grantWait_)[req.src].record(now - req.posted);
    TRACE(Fabric, "degraded ", req.src, " -> ", req.dst, " after ",
          req.retries, " retries, mesh arrival ", arrival);
    if (sim::recording())
        sim::recorder().span(sim::Lane::Message, req.src,
                             "degraded message", req.posted, arrival,
                             req.dst, req.retries, "dst", "retries");

    DeliverFn deliver = std::move(req.deliver);
    // Flag the delivery as degraded for its whole (synchronous)
    // callback, so continuations can tag the translation result.
    queue_.scheduleLambda(arrival,
                          [this, deliver = std::move(deliver), arrival] {
                              deliveringDegraded_ = true;
                              deliver(arrival);
                              deliveringDegraded_ = false;
                          });

    pending_[src].pop_front();
    --numPending_;
    // The setup port frees next cycle, as for a granted setup.
    if (!pending_[src].empty())
        pending_[src].front().activeAt = std::max(
            pending_[src].front().activeAt, now + 1);
    else
        pendingBits_[src >> 6] &= ~(std::uint64_t{1} << (src & 63));
}

void
Interconnect::syncFaultStats(Cycle now)
{
    if (!faults_ || now <= faultStatsThrough_)
        return;
    for (const sim::LinkFaultSpec &f : faults_->plan().linkFaults) {
        Cycle from = std::max(f.start, faultStatsThrough_);
        Cycle to = std::min(f.end(), now);
        if (to > from)
            linkDeadCycles[f.link] += static_cast<double>(to - from);
    }
    faultStatsThrough_ = now;
}

} // namespace nocstar::core
