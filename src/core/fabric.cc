/**
 * @file
 * Flat NOCSTAR fabric: the path/resource model behind the shared
 * Interconnect arbitration engine. XY paths over one chip-wide mesh,
 * precomputed per pair up to kPathTableMaxTiles tiles (or whenever a
 * fault plan needs rewritable paths), materialized on demand above.
 */

#include "core/fabric.hh"

#include <algorithm>
#include <limits>

#include "sim/trace.hh"
#include "sim/trace_recorder.hh"

namespace nocstar::core
{

NocstarFabric::NocstarFabric(const std::string &name, EventQueue &queue,
                             const noc::GridTopology &topo,
                             const FabricConfig &config,
                             stats::StatGroup *parent)
    : Interconnect(name, queue, topo, config, parent)
{
    // The base constructor nulled out an empty fault plan, so this is
    // the "fault machinery live" test.
    if (topo_.numTiles() <= kPathTableMaxTiles || faults_) {
        buildPathTable();
    } else {
        scratch_[0].reserve(topo_.width() + topo_.height());
        scratch_[1].reserve(topo_.width() + topo_.height());
    }
    if (faults_)
        pairDegraded_.assign(
            static_cast<std::size_t>(topo_.numTiles()) *
                topo_.numTiles(), 0);
}

void
NocstarFabric::buildPathTable()
{
    unsigned tiles = topo_.numTiles();
    pathOffset_.assign(static_cast<std::size_t>(tiles) * tiles + 1, 0);
    // Total link count across all pairs equals the sum of Manhattan
    // distances; size once, then fill.
    std::size_t total = 0;
    for (CoreId src = 0; src < tiles; ++src)
        for (CoreId dst = 0; dst < tiles; ++dst)
            total += topo_.hops(src, dst);
    if (total > std::numeric_limits<std::uint32_t>::max())
        fatal("fabric path table needs ", total,
              " entries, past the 32-bit offset space; the ", tiles,
              "-tile mesh is too large for stored paths");
    pathLinks_.reserve(total);

    for (CoreId src = 0; src < tiles; ++src) {
        for (CoreId dst = 0; dst < tiles; ++dst) {
            topo_.xyLinksInto(src, dst, pathLinks_);
            pathOffset_[pairIndex(src, dst) + 1] =
                static_cast<std::uint32_t>(pathLinks_.size());
        }
    }
}

void
NocstarFabric::pathLinksInto(CoreId src, CoreId dst,
                             std::vector<std::uint32_t> &out) const
{
    if (pathOffset_.empty()) {
        topo_.xyLinksInto(src, dst, out);
        return;
    }
    std::span<const std::uint32_t> path = tableLinks(src, dst);
    out.insert(out.end(), path.begin(), path.end());
}

bool
NocstarFabric::pairUnreachable(const Request &req) const
{
    return pairDegraded_[pairIndex(req.src, req.dst)] ||
           (req.roundTrip &&
            pairDegraded_[pairIndex(req.dst, req.src)]);
}

bool
NocstarFabric::tryAcquire(const Request &req, Cycle now)
{
    // Both directions come with no per-attempt allocation (this runs
    // on every retry of every arbitration round): table spans, or the
    // XY path filled into the reusable scratch buffers. Note the XY
    // reverse path dst -> src is not the mirrored forward path, so it
    // is materialized separately.
    std::span<const std::uint32_t> path = pathSpan(req.src, req.dst, 0);
    std::span<const std::uint32_t> reverse;
    if (req.roundTrip)
        reverse = pathSpan(req.dst, req.src, 1);

    Cycle traversal = traversalCycles(static_cast<unsigned>(path.size()));
    // Round trip additionally holds the reverse path through the slice
    // access and the response traversal.
    Cycle hold = req.roundTrip ? 2 * traversal + req.holdExtra : traversal;

    if (!config_.ideal) {
        for (std::uint32_t link : path) {
            if (linkHeldUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
        for (std::uint32_t link : reverse) {
            if (linkHeldUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
    }

    if (faults_) {
        // Fault-disabled links deny even the ideal fabric: an outage
        // is physical, not contention.
        for (std::uint32_t link : path) {
            if (linkFaultyUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
        for (std::uint32_t link : reverse) {
            if (linkFaultyUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
        // All arbiters granted; model the grant pulse itself getting
        // corrupted on the way back (drawn only for would-be winners,
        // so the stream is reproducible for a given plan + seed).
        if (faults_->loseGrant()) {
            ++faultsInjected;
            return false;
        }
    }

    bool record = sim::recording();
    for (std::uint32_t link : path) {
        linkHeldUntil_[link] = std::max(linkHeldUntil_[link], now + hold);
        linkGrants[link] += 1;
        linkHoldCycles[link] += static_cast<double>(hold);
        if (record)
            sim::recorder().span(sim::Lane::Link, link, "held", now,
                                 now + hold, req.src, req.dst, "src",
                                 "dst");
    }
    for (std::uint32_t link : reverse) {
        linkHeldUntil_[link] = std::max(linkHeldUntil_[link], now + hold);
        linkGrants[link] += 1;
        linkHoldCycles[link] += static_cast<double>(hold);
        if (record)
            sim::recorder().span(sim::Lane::Link, link, "held (reverse)",
                                 now, now + hold, req.src, req.dst,
                                 "src", "dst");
    }
    return true;
}

void
NocstarFabric::rebuildPaths()
{
    unsigned tiles = topo_.numTiles();
    std::vector<std::uint32_t> offsets(
        static_cast<std::size_t>(tiles) * tiles + 1, 0);
    std::vector<std::uint32_t> links;
    links.reserve(pathLinks_.size());

    // BFS tree from one source over the surviving links; neighbours
    // are visited in fixed E, W, N, S order so the rerouted paths are
    // deterministic. Computed lazily, once per source that needs it.
    std::vector<std::int32_t> parent(tiles);
    std::vector<std::uint32_t> viaLink(tiles, 0);
    std::vector<CoreId> order;
    std::int64_t treeFor = -1;
    auto ensureTree = [&](CoreId src) {
        if (treeFor == static_cast<std::int64_t>(src))
            return;
        treeFor = src;
        std::fill(parent.begin(), parent.end(), -1);
        parent[src] = static_cast<std::int32_t>(src);
        order.clear();
        order.push_back(src);
        static constexpr struct { int dx, dy; } step[4] = {
            {1, 0}, {-1, 0}, {0, -1}, {0, 1}}; // E, W, N, S
        for (std::size_t head = 0; head < order.size(); ++head) {
            CoreId at = order[head];
            noc::Coord c = topo_.coordOf(at);
            for (unsigned d = 0; d < 4; ++d) {
                int nx = static_cast<int>(c.x) + step[d].dx;
                int ny = static_cast<int>(c.y) + step[d].dy;
                if (nx < 0 || ny < 0 ||
                    nx >= static_cast<int>(topo_.width()) ||
                    ny >= static_cast<int>(topo_.height()))
                    continue;
                std::uint32_t link = at * 4 + d;
                if (linkDeadPermanent_[link])
                    continue;
                auto to = topo_.tileAt({static_cast<unsigned>(nx),
                                        static_cast<unsigned>(ny)});
                if (parent[to] >= 0)
                    continue;
                parent[to] = static_cast<std::int32_t>(at);
                viaLink[to] = link;
                order.push_back(to);
            }
        }
    };

    // Pairs whose XY path survives keep it bit-for-bit (their timing
    // must not change); only pairs crossing a dead link reroute.
    std::vector<std::uint32_t> reversed;
    for (CoreId src = 0; src < tiles; ++src) {
        for (CoreId dst = 0; dst < tiles; ++dst) {
            std::size_t pair = pairIndex(src, dst);
            std::span<const std::uint32_t> old = tableLinks(src, dst);
            bool crossesDead = false;
            for (std::uint32_t link : old) {
                if (linkDeadPermanent_[link]) {
                    crossesDead = true;
                    break;
                }
            }
            if (!crossesDead) {
                links.insert(links.end(), old.begin(), old.end());
            } else {
                ensureTree(src);
                if (parent[dst] < 0) {
                    pairDegraded_[pair] = 1;
                    TRACE(Fabric, "no surviving path ", src, " -> ",
                          dst, "; pair degraded to fallback mesh");
                } else {
                    pairDegraded_[pair] = 0;
                    reversed.clear();
                    for (CoreId at = dst; at != src;
                         at = static_cast<CoreId>(parent[at]))
                        reversed.push_back(viaLink[at]);
                    links.insert(links.end(), reversed.rbegin(),
                                 reversed.rend());
                }
            }
            offsets[pair + 1] =
                static_cast<std::uint32_t>(links.size());
        }
    }
    pathOffset_ = std::move(offsets);
    pathLinks_ = std::move(links);
}

} // namespace nocstar::core
