/**
 * @file
 * NOCSTAR fabric implementation.
 *
 * Timing convention: a send() posted in cycle T arbitrates in T (the
 * "path setup" cycle); granted data occupies its links during cycles
 * (T, T+traversal] and is latched at the destination at T+traversal.
 * Reported network latency counts the setup cycle plus traversal and
 * any waiting, so an uncontended single-hop message costs 2 cycles,
 * matching §V ("1 cycle in path setup and another cycle to traverse").
 *
 * Each tile owns a single set of path-setup request wires, so at most
 * one request per source arbitrates per cycle; younger requests from
 * the same tile queue behind it. This keeps a saturated fabric's
 * arbitration cost bounded by the tile count per cycle.
 */

#include "core/fabric.hh"

#include <algorithm>
#include <bit>

#include "sim/trace.hh"
#include "sim/trace_recorder.hh"

namespace nocstar::core
{

NocstarFabric::NocstarFabric(const std::string &name, EventQueue &queue,
                             const noc::GridTopology &topo,
                             const FabricConfig &config,
                             stats::StatGroup *parent)
    : stats::StatGroup(name, parent),
      messagesSent(this, "messages", "messages delivered"),
      setupAttempts(this, "setup_attempts", "path setup attempts"),
      setupFailures(this, "setup_failures", "failed setup attempts"),
      zeroRetryMessages(this, "zero_retry_messages",
                        "messages with no contention delay"),
      totalNetworkLatency(this, "network_latency",
                          "total setup+traversal+wait cycles"),
      retryDistribution(this, "retries", "setup retries per message",
                        0, 64, 1),
      linkGrants(this, "link_grants", "path grants per link",
                 topo.linkIndexSpace()),
      linkDenies(this, "link_denies",
                 "failed setups this link blocked first",
                 topo.linkIndexSpace()),
      linkHoldCycles(this, "link_hold_cycles",
                     "total cycles each link was held",
                     topo.linkIndexSpace()),
      queue_(queue), topo_(topo), config_(config),
      linkHeldUntil_(topo.linkIndexSpace(), 0),
      pending_(topo.numTiles()),
      pendingBits_((topo.numTiles() + 63) / 64, 0),
      arbitrationEvent_([this] { arbitrate(); },
                        Event::arbitrationPriority)
{
    if (config_.hpcMax == 0)
        fatal("NOCSTAR fabric needs hpcMax >= 1");
    buildPathTable();
    contenders_.reserve(topo_.numTiles());
}

void
NocstarFabric::buildPathTable()
{
    unsigned tiles = topo_.numTiles();
    pathOffset_.assign(static_cast<std::size_t>(tiles) * tiles + 1, 0);
    // Total link count across all pairs equals the sum of Manhattan
    // distances; size once, then fill.
    std::size_t total = 0;
    for (CoreId src = 0; src < tiles; ++src)
        for (CoreId dst = 0; dst < tiles; ++dst)
            total += topo_.hops(src, dst);
    pathLinks_.reserve(total);

    for (CoreId src = 0; src < tiles; ++src) {
        for (CoreId dst = 0; dst < tiles; ++dst) {
            for (const noc::LinkId &link : topo_.xyPath(src, dst))
                pathLinks_.push_back(link.flatten());
            pathOffset_[pairIndex(src, dst) + 1] =
                static_cast<std::uint32_t>(pathLinks_.size());
        }
    }
}

NocstarFabric::~NocstarFabric()
{
    if (arbitrationEvent_.scheduled())
        queue_.deschedule(&arbitrationEvent_);
}

void
NocstarFabric::scheduleArbitration(Cycle when)
{
    if (arbitrationEvent_.scheduled()) {
        if (arbitrationScheduledFor_ <= when)
            return;
        queue_.deschedule(&arbitrationEvent_);
    }
    queue_.schedule(&arbitrationEvent_, when);
    arbitrationScheduledFor_ = when;
}

void
NocstarFabric::send(CoreId src, CoreId dst, Cycle now, DeliverFn deliver)
{
    if (src == dst) {
        deliver(now);
        return;
    }
    Cycle active = std::max(now, queue_.curCycle());
    TRACE(Fabric, "post one-way ", src, " -> ", dst, " active at ",
          active);
    pending_[src].push_back(Request{src, dst, active, active, 0,
                                    false, 0, nextSeq_++,
                                    std::move(deliver)});
    pendingBits_[src >> 6] |= std::uint64_t{1} << (src & 63);
    ++numPending_;
    scheduleArbitration(active);
}

void
NocstarFabric::sendRoundTrip(CoreId src, CoreId dst, Cycle now,
                             Cycle occupancy, DeliverFn deliver)
{
    if (src == dst) {
        deliver(now);
        return;
    }
    Cycle active = std::max(now, queue_.curCycle());
    TRACE(Fabric, "post round-trip ", src, " -> ", dst, " occupancy ",
          occupancy, " active at ", active);
    pending_[src].push_back(Request{src, dst, active, active,
                                    occupancy, true, 0, nextSeq_++,
                                    std::move(deliver)});
    pendingBits_[src >> 6] |= std::uint64_t{1} << (src & 63);
    ++numPending_;
    scheduleArbitration(active);
}

bool
NocstarFabric::tryAcquire(const Request &req, Cycle now)
{
    // Both directions come from the precomputed table; no per-attempt
    // allocation on this path (it runs on every retry of every
    // arbitration round). Note the XY reverse path dst -> src is not
    // the mirrored forward path, so it has its own table entry.
    std::span<const std::uint32_t> path = pathLinks(req.src, req.dst);
    std::span<const std::uint32_t> reverse;
    if (req.roundTrip)
        reverse = pathLinks(req.dst, req.src);

    Cycle traversal = traversalCycles(static_cast<unsigned>(path.size()));
    // Round trip additionally holds the reverse path through the slice
    // access and the response traversal.
    Cycle hold = req.roundTrip ? 2 * traversal + req.holdExtra : traversal;

    if (!config_.ideal) {
        for (std::uint32_t link : path) {
            if (linkHeldUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
        for (std::uint32_t link : reverse) {
            if (linkHeldUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
    }

    bool record = sim::recording();
    for (std::uint32_t link : path) {
        linkHeldUntil_[link] = std::max(linkHeldUntil_[link], now + hold);
        linkGrants[link] += 1;
        linkHoldCycles[link] += static_cast<double>(hold);
        if (record)
            sim::recorder().span(sim::Lane::Link, link, "held", now,
                                 now + hold, req.src, req.dst, "src",
                                 "dst");
    }
    for (std::uint32_t link : reverse) {
        linkHeldUntil_[link] = std::max(linkHeldUntil_[link], now + hold);
        linkGrants[link] += 1;
        linkHoldCycles[link] += static_cast<double>(hold);
        if (record)
            sim::recorder().span(sim::Lane::Link, link, "held (reverse)",
                                 now, now + hold, req.src, req.dst,
                                 "src", "dst");
    }
    return true;
}

void
NocstarFabric::arbitrate()
{
    Cycle now = queue_.curCycle();
    arbitrationScheduledFor_ = invalidCycle;

    // Chip-wide consistent static priority, rotated every epoch so no
    // requester starves (§III-B2).
    unsigned tiles = topo_.numTiles();
    unsigned rotation = static_cast<unsigned>(
        (now / config_.priorityEpoch) % tiles);

    // One eligible request per source: the oldest whose turn has come.
    // Only sources with queued work have their bit set, so the round
    // touches just those queues.
    contenders_.clear();
    for (std::size_t w = 0; w < pendingBits_.size(); ++w) {
        std::uint64_t bits = pendingBits_[w];
        while (bits) {
            auto src = static_cast<CoreId>(
                (w << 6) +
                static_cast<unsigned>(std::countr_zero(bits)));
            bits &= bits - 1;
            if (pending_[src].front().activeAt <= now)
                contenders_.push_back(src);
        }
    }
    // Rotated static priority: sources >= rotation first, each group
    // ascending. contenders_ is gathered in ascending order, so a
    // rotate produces exactly the order the per-source keyed sort
    // (a + tiles - rotation) % tiles would.
    std::rotate(contenders_.begin(),
                std::lower_bound(contenders_.begin(), contenders_.end(),
                                 static_cast<CoreId>(rotation)),
                contenders_.end());

    for (CoreId src : contenders_) {
        Request &req = pending_[src].front();
        ++setupAttempts;
        if (!tryAcquire(req, now)) {
            ++setupFailures;
            ++req.retries;
            req.activeAt = now + 1;
            TRACE(Fabric, "setup denied ", req.src, " -> ", req.dst,
                  " retry ", req.retries);
            if (sim::recording())
                sim::recorder().instant(sim::Lane::Message, req.src,
                                        "setup denied", now, req.dst,
                                        req.retries, "dst", "retries");
            continue;
        }

        Cycle traversal = traversalCycles(pathHops(req.src, req.dst));
        Cycle arrival = now + traversal;

        TRACE(Fabric, "setup granted ", req.src, " -> ", req.dst,
              " after ", req.retries, " retries, arrival ", arrival);
        if (sim::recording())
            sim::recorder().span(sim::Lane::Message, req.src,
                                 req.roundTrip ? "round-trip message"
                                               : "message",
                                 req.posted, arrival, req.dst,
                                 req.retries, "dst", "retries");
        ++messagesSent;
        if (now == req.posted)
            ++zeroRetryMessages;
        retryDistribution.sample(static_cast<double>(req.retries));
        // Latency counts waiting (port queueing + retries) + the
        // setup cycle + traversal.
        totalNetworkLatency += static_cast<double>(
            (now - req.posted) + 1 + traversal);

        DeliverFn deliver = std::move(req.deliver);
        queue_.scheduleLambda(arrival,
                              [deliver = std::move(deliver), arrival] {
                                  deliver(arrival);
                              });

        pending_[src].pop_front();
        --numPending_;
        // The setup port frees next cycle for the next queued request.
        if (!pending_[src].empty())
            pending_[src].front().activeAt = std::max(
                pending_[src].front().activeAt, now + 1);
        else
            pendingBits_[src >> 6] &=
                ~(std::uint64_t{1} << (src & 63));
    }

    if (numPending_ > 0) {
        Cycle next = invalidCycle;
        for (std::size_t w = 0; w < pendingBits_.size(); ++w) {
            std::uint64_t bits = pendingBits_[w];
            while (bits) {
                auto src = static_cast<CoreId>(
                    (w << 6) +
                    static_cast<unsigned>(std::countr_zero(bits)));
                bits &= bits - 1;
                next = std::min(next,
                                pending_[src].front().activeAt);
            }
        }
        scheduleArbitration(std::max(next, now + 1));
    }
}

} // namespace nocstar::core
