/**
 * @file
 * NOCSTAR organization implementation.
 */

#include "core/nocstar_org.hh"

#include "energy/sram_model.hh"

namespace nocstar::core
{

NocstarOrg::NocstarOrg(const OrgConfig &config, OrgContext context,
                       stats::StatGroup *parent)
    : TlbOrganization("nocstar_org", config, std::move(context), parent),
      topo_(noc::GridTopology::forCores(config.numCores)),
      leaderNextFree_(config.numCores, 0)
{
    // config_ (the base class's stable copy of the plan, not the
    // caller's argument) keeps the referenced fault plan alive for the
    // fabric's lifetime. Construction of the concrete fabric kind is
    // org_factory.cc's job.
    fabric_ = makeInterconnect("fabric", *ctx_.queue, topo_, config_,
                               this);

    if (config.sliceMapping == SliceMapping::ClusterLocal) {
        // Consecutive interleave indices fill one cluster (row-major
        // inside it) before moving to the next, so runs of hot pages
        // stay behind one crossbar instead of striping the chip.
        FabricConfig geom;
        geom.clusterWidth = config.clusterWidth;
        geom.clusterHeight = config.clusterHeight;
        unsigned cw = 0, ch = 0;
        resolveClusterGeometry(geom, topo_, cw, ch);
        unsigned perCluster = cw * ch;
        homeOf_.resize(config.numCores);
        for (unsigned i = 0; i < config.numCores; ++i) {
            unsigned cluster = i / perCluster;
            unsigned within = i % perCluster;
            noc::Coord cc{cluster % (topo_.width() / cw),
                          cluster / (topo_.width() / cw)};
            homeOf_[i] = topo_.tileAt({cc.x * cw + within % cw,
                                       cc.y * ch + within / cw});
        }
    }

    std::uint32_t entries = config.sliceEntriesFor();
    for (unsigned i = 0; i < config.numCores; ++i) {
        slices_.push_back(std::make_unique<tlb::SetAssocTlb>(
            "slice" + std::to_string(i), entries, config.l2Assoc, this));
    }
    sliceLatency_ = energy::SramModel::accessLatency(entries);
}

void
NocstarOrg::respondHit(CoreId core, CoreId slice, tlb::TlbEntry entry,
                       Cycle lookup_done, Cycle now, bool degraded,
                       TranslationDone done)
{
    auto complete = [this, core, slice, entry, now, degraded,
                     done = std::move(done)](Cycle arrival) mutable {
        TranslationResult result;
        result.completedAt = arrival;
        result.entry = entry;
        result.l2Hit = true;
        result.remote = slice != core;
        result.degraded = degraded || fabric_->deliveredDegraded();
        totalAccessLatency += static_cast<double>(arrival - now);
        ctx_.queue->scheduleLambda(
            arrival, [this, slice, result, done = std::move(done)] {
                noteAccessEnd(slice);
                done(result);
            });
    };

    if (slice == core) {
        complete(lookup_done);
        return;
    }
    if (ctx_.energy)
        ctx_.energy->addL2Message(energy::NocStyle::Nocstar,
                                  topo_.hops(slice, core), 0);
    // Response path setup overlaps the tail of the slice lookup
    // (§III-C: "the response path can be setup speculatively, during
    // the L2 TLB lookup").
    fabric_->send(slice, core, lookup_done, std::move(complete));
}

void
NocstarOrg::finishWithWalk(CoreId walk_core, CoreId requester,
                           CoreId slice, ContextId ctx, Addr vaddr,
                           Cycle start, Cycle now, bool ecc,
                           bool degraded, TranslationDone done)
{
    launchWalk(
        walk_core, requester, ctx, vaddr, start,
        [this, walk_core, requester, slice, ctx, vaddr, now, ecc,
         degraded,
         done = std::move(done)](const mem::WalkResult &walk) mutable {
            Cycle walk_done = ctx_.queue->curCycle();
            tlb::TlbEntry entry = entryFor(ctx, vaddr, walk.translation);
            const bool rewalk = ecc || walk.eccRetried;

            auto fill_slice = [this, slice, ctx, entry](Cycle) {
                slices_[slice]->insert(entry);
                prefetchAround(*slices_[slice], ctx, entry.vpn,
                               entry.size);
            };

            auto complete = [this, requester, slice, entry, now, rewalk,
                             degraded,
                             done = std::move(done)](Cycle at) mutable {
                TranslationResult result;
                result.completedAt = at;
                result.entry = entry;
                result.walked = true;
                result.remote = slice != requester;
                result.eccRewalk = rewalk;
                result.degraded =
                    degraded || fabric_->deliveredDegraded();
                totalAccessLatency += static_cast<double>(at - now);
                ctx_.queue->scheduleLambda(
                    at, [this, slice, result, done = std::move(done)] {
                        noteAccessEnd(slice);
                        done(result);
                    });
            };

            if (walk_core == requester) {
                // Requester walked; fill message to the home slice is
                // off the critical path.
                if (slice != requester) {
                    if (ctx_.energy)
                        ctx_.energy->addL2Message(
                            energy::NocStyle::Nocstar,
                            topo_.hops(requester, slice), 0);
                    fabric_->send(requester, slice, walk_done,
                                  fill_slice);
                } else {
                    fill_slice(walk_done);
                }
                complete(walk_done);
            } else {
                // Remote walk at the slice's core: fill locally, then
                // respond with the translation.
                fill_slice(walk_done);
                if (ctx_.energy)
                    ctx_.energy->addL2Message(
                        energy::NocStyle::Nocstar,
                        topo_.hops(walk_core, requester), 0);
                fabric_->send(walk_core, requester, walk_done,
                              std::move(complete));
            }
        });
}

void
NocstarOrg::handleMiss(CoreId core, CoreId slice, ContextId ctx,
                       Addr vaddr, Cycle lookup_done, Cycle now,
                       bool ecc, bool degraded, TranslationDone done)
{
    if (config_.ptwPlacement == PtwPlacement::Remote || slice == core) {
        finishWithWalk(slice, core, slice, ctx, vaddr, lookup_done, now,
                       ecc, degraded, std::move(done));
        return;
    }
    // Miss message travels back to the requester, which walks.
    if (ctx_.energy)
        ctx_.energy->addL2Message(energy::NocStyle::Nocstar,
                                  topo_.hops(slice, core), 0);
    fabric_->send(slice, core, lookup_done,
                  [this, core, slice, ctx, vaddr, now, ecc,
                   degraded, done = std::move(done)](Cycle arrival) mutable {
                      finishWithWalk(core, core, slice, ctx, vaddr,
                                     arrival, now, ecc,
                                     degraded ||
                                         fabric_->deliveredDegraded(),
                                     std::move(done));
                  });
}

void
NocstarOrg::translate(CoreId core, ContextId ctx, Addr vaddr, Cycle now,
                      TranslationDone done)
{
    CoreId slice = sliceOf(vaddr);
    tlb::SetAssocTlb &array = *slices_[slice];
    Cycle t0 = now + config_.initiateLatency;

    ++l2Accesses;
    noteAccessStart(slice);

    if (ctx_.energy)
        ctx_.energy->addL2Message(energy::NocStyle::Nocstar,
                                  topo_.hops(core, slice),
                                  array.numEntries());

    // Functional lookup now (live, or the shard crew's pre-probe);
    // timing assembled by the continuations.
    const tlb::TlbEntry *hit_entry = homeProbe(array, ctx, vaddr);
    bool hit = hit_entry != nullptr;
    bool ecc = false;
    tlb::TlbEntry entry = hit ? *hit_entry : tlb::TlbEntry{};
    if (hit && eccCorrupted()) {
        // The entry read back corrupt: drop it and take the miss path.
        ++sliceEccRewalks;
        ecc = true;
        array.invalidate(entry.ctx, entry.vpn, entry.size);
        hit = false;
        entry = tlb::TlbEntry{};
    }

    if (hit)
        ++l2Hits;
    else
        ++l2Misses;
    TRACE(TLB, "core ", core, " L2 ", hit ? "hit" : "miss",
          " vaddr 0x", std::hex, vaddr, std::dec, " home slice ",
          slice);

    if (slice == core) {
        Cycle start = portStart(slice, t0);
        Cycle lookup_done = start + sliceLatency_;
        noteSliceLookup(slice, start, lookup_done, hit);
        if (hit)
            respondHit(core, slice, entry, lookup_done, now,
                       /*degraded=*/false, std::move(done));
        else
            handleMiss(core, slice, ctx, vaddr, lookup_done, now, ecc,
                       /*degraded=*/false, std::move(done));
        return;
    }

    if (config_.pathAcquire == PathAcquire::RoundTrip) {
        // Hold request + response paths for the whole remote access.
        Cycle occupancy = sliceLatency_ + 2;
        fabric_->sendRoundTrip(
            core, slice, t0, occupancy,
            [this, core, slice, ctx, vaddr, hit, entry, now, ecc,
             done = std::move(done)](Cycle arrival) mutable {
                const bool deg = fabric_->deliveredDegraded();
                Cycle start = portStart(slice, arrival + 1);
                Cycle lookup_done = start + sliceLatency_;
                noteSliceLookup(slice, start, lookup_done, hit);
                if (hit) {
                    // Return path is pre-granted: one traversal, no
                    // arbitration.
                    Cycle back =
                        lookup_done + fabric_->traversal(slice, core);
                    TranslationResult result;
                    result.completedAt = back;
                    result.entry = entry;
                    result.l2Hit = true;
                    result.remote = true;
                    result.degraded = deg;
                    totalAccessLatency +=
                        static_cast<double>(back - now);
                    ctx_.queue->scheduleLambda(
                        back, [this, slice, result,
                               done = std::move(done)] {
                            noteAccessEnd(slice);
                            done(result);
                        });
                } else {
                    handleMiss(core, slice, ctx, vaddr, lookup_done,
                               now, ecc, deg, std::move(done));
                }
            });
        return;
    }

    fabric_->send(core, slice, t0,
                  [this, core, slice, ctx, vaddr, hit, entry, now, ecc,
                   done = std::move(done)](Cycle arrival) mutable {
                      const bool deg = fabric_->deliveredDegraded();
                      Cycle start = portStart(slice, arrival + 1);
                      Cycle lookup_done = start + sliceLatency_;
                      noteSliceLookup(slice, start, lookup_done, hit);
                      if (hit)
                          respondHit(core, slice, entry, lookup_done,
                                     now, deg, std::move(done));
                      else
                          handleMiss(core, slice, ctx, vaddr,
                                     lookup_done, now, ecc, deg,
                                     std::move(done));
                  });
}

void
NocstarOrg::shootdown(CoreId, ContextId ctx, Addr vaddr,
                      const std::vector<CoreId> &sharers, Cycle now,
                      ShootdownDone on_complete)
{
    ++shootdowns;
    mem::Translation t = ctx_.pageTable->translate(ctx, vaddr);
    PageNum vpn = pageNumber(vaddr, t.size);
    TRACE(Shootdown, "vaddr 0x", std::hex, vaddr, std::dec, " to ",
          sharers.size(), " sharers");

    for (CoreId sharer : sharers)
        if (ctx_.l1Invalidate)
            ctx_.l1Invalidate(sharer, ctx, vpn, t.size);

    CoreId slice = sliceOf(vaddr);
    if (slices_.at(slice)->invalidate(ctx, vpn, t.size))
        ++shootdownL2Invalidations;

    // Completion is tracked with a shared countdown across the relay
    // messages actually sent.
    struct ShootState
    {
        unsigned outstanding = 0;
        Cycle last = 0;
        Cycle started = 0;
        ShootdownDone onComplete;
        TlbOrganization *org;
    };
    auto state = std::make_shared<ShootState>();
    state->started = now;
    state->onComplete = std::move(on_complete);
    state->org = this;

    auto arm = [state] { ++state->outstanding; };
    // Sentinel guards against synchronous (local) deliveries draining
    // the countdown before all legs are armed.
    arm();
    auto fired = [this, state](Cycle at) {
        state->last = std::max(state->last, at);
        if (--state->outstanding == 0) {
            totalShootdownLatency +=
                static_cast<double>(state->last - state->started);
            if (state->onComplete)
                state->onComplete(state->last);
        }
    };

    auto slice_leg = [this, state, slice, fired](CoreId from, Cycle at) {
        fabric_->send(from, slice, at, [this, slice, fired](Cycle arr) {
            // Write-port occupancy: the invalidation lookup occupies
            // the slice like a one-cycle pipelined access.
            Cycle processed = portStart(slice, arr + 1) + 1;
            ctx_.queue->scheduleLambda(processed, [fired, processed] {
                fired(processed);
            });
        });
    };

    if (config_.invalLeaderGroup == 0) {
        for (CoreId sharer : sharers) {
            arm();
            slice_leg(sharer, now);
        }
    } else {
        // Upstream: every IPI'd core notifies its group leader.
        // Downstream: each involved leader relays one deduplicated
        // invalidation to the home slice, serialized at the leader.
        std::vector<bool> leader_involved(config_.numCores, false);
        for (CoreId sharer : sharers) {
            CoreId leader = sharer - (sharer % config_.invalLeaderGroup);
            leader_involved.at(leader) = true;
            arm();
            fabric_->send(sharer, leader, now,
                          [fired](Cycle arr) { fired(arr); });
        }
        for (CoreId leader = 0; leader < config_.numCores; ++leader) {
            if (!leader_involved[leader])
                continue;
            // Leader serializes relays at one per cycle; the relay
            // follows the slowest plausible upstream notification.
            Cycle relay = std::max(now + 1, leaderNextFree_[leader]);
            leaderNextFree_[leader] = relay + 1;
            arm();
            slice_leg(leader, relay);
        }
    }
    fired(now); // release the sentinel
}

void
NocstarOrg::preloadShared(ContextId ctx, Addr vaddr,
                          const mem::Translation &t)
{
    slices_.at(sliceOf(vaddr))->insert(entryFor(ctx, vaddr, t));
}

void
NocstarOrg::flushAll()
{
    for (auto &slice : slices_)
        slice->invalidateAll();
}

std::uint64_t
NocstarOrg::totalEntries() const
{
    return static_cast<std::uint64_t>(config_.sliceEntriesFor()) *
           config_.numCores;
}

} // namespace nocstar::core
