/**
 * @file
 * Configuration types for last-level TLB organizations (paper Table II)
 * and the policy knobs the evaluation sweeps.
 */

#ifndef NOCSTAR_CORE_CONFIG_HH
#define NOCSTAR_CORE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault.hh"
#include "sim/types.hh"

namespace nocstar::core
{

/** The last-level TLB organizations of Fig 1 / Table II. */
enum class OrgKind
{
    Private, ///< per-core private L2 TLBs (baseline)
    MonolithicMesh, ///< banked monolithic shared L2 TLB over a mesh
    MonolithicSmart, ///< banked monolithic shared L2 TLB over SMART
    Distributed, ///< per-core slices over a multi-hop mesh
    IdealShared, ///< per-core slices with a zero-latency interconnect
    Nocstar, ///< per-core slices over the NOCSTAR fabric
    NocstarIdeal, ///< NOCSTAR with contention-free path setup
};

/** Where the page-table walk runs after a shared-slice miss (§III-F). */
enum class PtwPlacement
{
    Requester, ///< miss message returns; requesting core walks
    Remote, ///< the slice's core walks, then responds with the PTE
};

/** Link acquisition modes for the NOCSTAR fabric (§V, Fig 16 left). */
enum class PathAcquire
{
    OneWay, ///< request and response each arbitrate separately
    RoundTrip, ///< both directions held for the whole slice access
};

/** Interconnect implementation behind the core::Interconnect seam. */
enum class FabricKind
{
    Flat, ///< one chip-wide circuit-switched mesh (the paper's NOCSTAR)
    /** TeraNoC-style hybrid: single-cycle crossbar within a cluster,
     * circuit-switched mesh with rotating chip-wide priority between
     * clusters. The 256-1024-tile design point. */
    Hierarchical,
};

/** How interleave indices map to home-slice tiles. */
enum class SliceMapping
{
    RowMajor, ///< index i homes on tile i (the paper's layout)
    /** Consecutive indices fill one cluster before moving to the next
     * (hierarchical fabric only): keeps runs of hot pages behind one
     * crossbar instead of striping them across the cluster mesh. */
    ClusterLocal,
};

/** @return a short printable name for an organization. */
const char *orgKindName(OrgKind kind);

/** @return a short printable name for a fabric kind. */
const char *fabricKindName(FabricKind kind);

struct OrgConfig;

/**
 * Parse a `flat` / `hier` / `hier:CxC` fabric spec (the `--fabric`
 * bench flag) into @p config's fabricKind / cluster geometry fields.
 * @return an error message, or empty on success.
 */
std::string parseFabricSpec(const std::string &spec, OrgConfig &config);

/** @return true for the organizations with per-core shared slices. */
bool isSliced(OrgKind kind);

/** @return true for any shared (non-private) organization. */
bool isShared(OrgKind kind);

/** Full organization configuration. */
struct OrgConfig
{
    OrgKind kind = OrgKind::Private;
    unsigned numCores = 16;

    /** Private / distributed slice capacity (Table II: 1024, 8-way). */
    std::uint32_t l2Entries = 1024;
    std::uint32_t l2Assoc = 8;
    /** Area-normalized NOCSTAR slice capacity (Table II: 920). */
    std::uint32_t nocstarSliceEntries = 920;

    /** Monolithic banking (paper: 4 banks at 16/32 cores, 8 at 64). */
    unsigned banks = 4;

    /** NOCSTAR / SMART maximum hops traversed per cycle. */
    unsigned hpcMax = 16;
    /** NOCSTAR arbitration priority rotation period (§III-B2). */
    Cycle priorityEpoch = 1000;
    PathAcquire pathAcquire = PathAcquire::OneWay;

    /** Interconnect implementation for the NOCSTAR organizations. */
    FabricKind fabricKind = FabricKind::Flat;
    /**
     * Hierarchical cluster geometry in tiles (width x height). Both
     * zero (the default) picks a geometry automatically; both must be
     * set together otherwise, and each must divide the corresponding
     * mesh dimension.
     */
    unsigned clusterWidth = 0;
    unsigned clusterHeight = 0;
    /** Interleave-index -> home-tile mapping (hierarchical only). */
    SliceMapping sliceMapping = SliceMapping::RowMajor;
    /**
     * Record per-source-tile grant-wait histograms in the fabric (for
     * the scaling bench's rotation-fairness p99). Host-side only:
     * simulated timing is unaffected.
     */
    bool recordGrantWait = false;

    PtwPlacement ptwPlacement = PtwPlacement::Requester;

    /** Sequential prefetch distance after L2 misses (0 disables). */
    unsigned prefetchDistance = 0;

    /**
     * Fig 4 mode: if nonzero, the monolithic organization's entire
     * access (network + SRAM) is modelled as this fixed latency.
     */
    Cycle monolithicAccessOverride = 0;

    /**
     * Shootdown relay policy: 0 sends invalidations directly from each
     * core to the slice; g >= 1 relays through one leader per g cores.
     */
    unsigned invalLeaderGroup = 0;

    /** New lookups a slice / bank can start per cycle (read ports). */
    unsigned readPortsPerCycle = 2;

    /** Extra cycle between L1 miss detection and L2/path initiation. */
    Cycle initiateLatency = 1;

    /**
     * Fault-injection scenario plus the resilience policy responding
     * to it. Empty (the default) means no fault machinery is ever
     * instantiated: the simulated timing, the random streams and the
     * sweep output are all byte-identical to a fault-free build.
     */
    sim::FaultPlan faults;

    /**
     * Field-level configuration errors, one message per violation
     * (empty means the configuration is usable). makeOrganization()
     * fatal()s with the full list, so a bad sweep dies with every
     * problem named instead of asserting somewhere mid-run.
     */
    std::vector<std::string> validate() const;

    /** Slice capacity actually used by this organization. */
    std::uint32_t
    sliceEntriesFor() const
    {
        switch (kind) {
          case OrgKind::Nocstar:
          case OrgKind::NocstarIdeal:
            return nocstarSliceEntries;
          default:
            return l2Entries;
        }
    }
};

} // namespace nocstar::core

#endif // NOCSTAR_CORE_CONFIG_HH
