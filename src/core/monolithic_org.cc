/**
 * @file
 * Monolithic shared TLB implementation.
 */

#include "core/monolithic_org.hh"

#include "energy/sram_model.hh"

namespace nocstar::core
{

MonolithicOrg::MonolithicOrg(const OrgConfig &config, OrgContext context,
                             stats::StatGroup *parent)
    : TlbOrganization("monolithic_org", config, std::move(context),
                      parent),
      topo_(noc::GridTopology::forCores(config.numCores))
{
    if (config.banks == 0)
        fatal("monolithic organization needs at least one bank");

    std::uint64_t total = static_cast<std::uint64_t>(config.l2Entries) *
                          config.numCores;
    std::uint32_t per_bank =
        static_cast<std::uint32_t>(total / config.banks);
    per_bank -= per_bank % config.l2Assoc;
    for (unsigned b = 0; b < config.banks; ++b) {
        banks_.push_back(std::make_unique<tlb::SetAssocTlb>(
            "bank" + std::to_string(b), per_bank, config.l2Assoc, this));
    }
    // Banking multiplies ports (each bank accepts its own request per
    // cycle) but the read still traverses the full structure's
    // decode / H-tree / sense path, so the access latency is that of
    // the whole array (paper Fig 11a: ~15 cycles at 32x, hops = 0).
    bankLatency_ = energy::SramModel::accessLatency(total);

    // The structure sits at one end of the chip (paper §II-C: "the
    // entire structure was placed at one end"): middle of the bottom
    // row, so top-row tiles pay the full vertical distance.
    structureTile_ = (topo_.height() - 1) * topo_.width() +
                     topo_.width() / 2;

    if (config.kind == OrgKind::MonolithicSmart) {
        network_ = std::make_unique<noc::SmartNetwork>(
            "smart", topo_, config.hpcMax, this);
        energyStyle_ = energy::NocStyle::MonolithicMesh;
    } else {
        network_ = std::make_unique<noc::MeshNetwork>("mesh", topo_,
                                                      this);
        energyStyle_ = energy::NocStyle::MonolithicMesh;
    }
}

Cycle
MonolithicOrg::traverse(CoreId from, CoreId to, Cycle now)
{
    return network_->traverse(from, to, now);
}

void
MonolithicOrg::translate(CoreId core, ContextId ctx, Addr vaddr,
                         Cycle now, TranslationDone done)
{
    unsigned bank = bankOf(vaddr);
    tlb::SetAssocTlb &array = *banks_[bank];
    Cycle t0 = now + config_.initiateLatency;

    ++l2Accesses;
    noteAccessStart(bank);

    unsigned hops = topo_.hops(core, structureTile_);
    if (ctx_.energy)
        ctx_.energy->addL2Message(energyStyle_, hops,
                                  array.numEntries());

    // Functional lookup now (live, or the shard crew's pre-probe);
    // timing assembled below.
    const tlb::TlbEntry *hit = homeProbe(array, ctx, vaddr);
    bool ecc = false;
    if (hit && eccCorrupted()) {
        // The entry read back corrupt: drop it and take the miss path.
        ++sliceEccRewalks;
        ecc = true;
        ContextId ectx = hit->ctx;
        PageNum vpn = hit->vpn;
        PageSize size = hit->size;
        array.invalidate(ectx, vpn, size);
        hit = nullptr;
    }

    Cycle lookup_start;
    Cycle lookup_done;
    Cycle resp_arrival;
    if (config_.monolithicAccessOverride) {
        // Fig 4 mode: the entire network + array access is a fixed
        // number of cycles; port contention still applies.
        lookup_start = portStart(bank, t0);
        lookup_done = lookup_start + config_.monolithicAccessOverride;
        resp_arrival = lookup_done;
    } else {
        Cycle req_arrival = t0 + traverse(core, structureTile_, t0);
        lookup_start = portStart(bank, req_arrival + 1);
        lookup_done = lookup_start + bankLatency_;
        resp_arrival =
            lookup_done + traverse(structureTile_, core, lookup_done);
    }
    if (ctx_.energy)
        ctx_.energy->addL2Message(energyStyle_, hops, 0); // response

    TRACE(TLB, "core ", core, " L2 ", hit ? "hit" : "miss",
          " vaddr 0x", std::hex, vaddr, std::dec, " bank ", bank);
    noteSliceLookup(bank, lookup_start, lookup_done, hit != nullptr);

    if (hit) {
        ++l2Hits;
        TranslationResult result;
        result.completedAt = resp_arrival;
        result.entry = *hit;
        result.l2Hit = true;
        // The monolithic structure sits at the chip edge: every access
        // crosses the mesh, so its hits are remote by construction.
        result.remote = true;
        totalAccessLatency += static_cast<double>(resp_arrival - now);
        ctx_.queue->scheduleLambda(
            resp_arrival, [this, bank, result, done = std::move(done)] {
                noteAccessEnd(bank);
                done(result);
            });
        return;
    }

    // Miss: the miss message returns to the requester, which performs
    // the walk and then sends the fill back to the bank (off the
    // critical path).
    ++l2Misses;
    launchWalk(core, core, ctx, vaddr, resp_arrival,
               [this, bank, core, ctx, vaddr, now, ecc,
                done = std::move(done)](const mem::WalkResult &walk) {
                   tlb::SetAssocTlb &arr = *banks_[bank];
                   tlb::TlbEntry entry =
                       entryFor(ctx, vaddr, walk.translation);
                   arr.insert(entry);
                   prefetchAround(arr, ctx, entry.vpn, entry.size);
                   if (ctx_.energy)
                       ctx_.energy->addL2Message(
                           energyStyle_,
                           topo_.hops(core, structureTile_), 0);

                   TranslationResult result;
                   result.completedAt = ctx_.queue->curCycle();
                   result.entry = entry;
                   result.walked = true;
                   result.remote = true;
                   result.eccRewalk = ecc || walk.eccRetried;
                   totalAccessLatency +=
                       static_cast<double>(result.completedAt - now);
                   noteAccessEnd(bank);
                   done(result);
               });
}

void
MonolithicOrg::shootdown(CoreId, ContextId ctx, Addr vaddr,
                         const std::vector<CoreId> &sharers, Cycle now,
                         ShootdownDone on_complete)
{
    ++shootdowns;
    mem::Translation t = ctx_.pageTable->translate(ctx, vaddr);
    PageNum vpn = pageNumber(vaddr, t.size);
    TRACE(Shootdown, "vaddr 0x", std::hex, vaddr, std::dec, " to ",
          sharers.size(), " sharers");

    for (CoreId sharer : sharers)
        if (ctx_.l1Invalidate)
            ctx_.l1Invalidate(sharer, ctx, vpn, t.size);

    unsigned bank = bankOf(vaddr);
    if (banks_.at(bank)->invalidate(ctx, vpn, t.size))
        ++shootdownL2Invalidations;

    // Every IPI'd sharer relays an invalidation to the structure; they
    // serialize on the bank's port.
    Cycle last = now;
    for (CoreId sharer : sharers) {
        Cycle arrive = now + traverse(sharer, structureTile_, now);
        Cycle processed = portStart(bank, arrive + 1) + 1;
        last = std::max(last, processed);
    }
    totalShootdownLatency += static_cast<double>(last - now);
    if (on_complete)
        ctx_.queue->scheduleLambda(
            last, [cb = std::move(on_complete), last] { cb(last); });
}

void
MonolithicOrg::preloadShared(ContextId ctx, Addr vaddr,
                             const mem::Translation &t)
{
    banks_.at(bankOf(vaddr))->insert(entryFor(ctx, vaddr, t));
}

void
MonolithicOrg::flushAll()
{
    for (auto &bank : banks_)
        bank->invalidateAll();
}

std::uint64_t
MonolithicOrg::totalEntries() const
{
    std::uint64_t total = 0;
    for (const auto &bank : banks_)
        total += bank->numEntries();
    return total;
}

} // namespace nocstar::core
