/**
 * @file
 * Shared organization machinery.
 */

#include "core/organization.hh"

#include <bit>
#include <stdexcept>

namespace nocstar::core
{

const char *
orgKindName(OrgKind kind)
{
    switch (kind) {
      case OrgKind::Private: return "private";
      case OrgKind::MonolithicMesh: return "monolithic-mesh";
      case OrgKind::MonolithicSmart: return "monolithic-smart";
      case OrgKind::Distributed: return "distributed";
      case OrgKind::IdealShared: return "ideal-shared";
      case OrgKind::Nocstar: return "nocstar";
      case OrgKind::NocstarIdeal: return "nocstar-ideal";
    }
    return "?";
}

bool
isSliced(OrgKind kind)
{
    switch (kind) {
      case OrgKind::Distributed:
      case OrgKind::IdealShared:
      case OrgKind::Nocstar:
      case OrgKind::NocstarIdeal:
        return true;
      default:
        return false;
    }
}

bool
isShared(OrgKind kind)
{
    return kind != OrgKind::Private;
}

const char *
fabricKindName(FabricKind kind)
{
    switch (kind) {
      case FabricKind::Flat: return "flat";
      case FabricKind::Hierarchical: return "hier";
    }
    return "?";
}

std::string
parseFabricSpec(const std::string &spec, OrgConfig &config)
{
    if (spec == "flat") {
        config.fabricKind = FabricKind::Flat;
        config.clusterWidth = 0;
        config.clusterHeight = 0;
        return "";
    }
    if (spec == "hier") {
        config.fabricKind = FabricKind::Hierarchical;
        config.clusterWidth = 0;
        config.clusterHeight = 0;
        return "";
    }
    if (spec.rfind("hier:", 0) == 0) {
        std::string geometry = spec.substr(5);
        std::size_t x = geometry.find('x');
        unsigned w = 0, h = 0;
        try {
            std::size_t used = 0;
            if (x == std::string::npos || x == 0 ||
                x + 1 >= geometry.size())
                throw std::invalid_argument("shape");
            w = std::stoul(geometry.substr(0, x), &used);
            if (used != x)
                throw std::invalid_argument("width");
            h = std::stoul(geometry.substr(x + 1), &used);
            if (used != geometry.size() - x - 1)
                throw std::invalid_argument("height");
        } catch (const std::exception &) {
            return strCat("bad cluster geometry '", geometry,
                          "' (expected WxH, e.g. hier:4x4)");
        }
        if (w == 0 || h == 0)
            return strCat("bad cluster geometry '", geometry,
                          "': dimensions must be >= 1");
        config.fabricKind = FabricKind::Hierarchical;
        config.clusterWidth = w;
        config.clusterHeight = h;
        return "";
    }
    return strCat("unknown fabric '", spec,
                  "' (expected flat, hier or hier:WxH)");
}

std::vector<std::string>
OrgConfig::validate() const
{
    std::vector<std::string> errors;
    if (numCores == 0)
        errors.push_back("numCores must be >= 1");
    if (l2Entries == 0)
        errors.push_back("l2Entries must be >= 1");
    if (l2Assoc == 0)
        errors.push_back("l2Assoc must be >= 1");
    if (l2Assoc != 0 && l2Entries % l2Assoc != 0)
        errors.push_back(strCat("l2Entries (", l2Entries,
                                ") not a multiple of l2Assoc (",
                                l2Assoc, ")"));
    if (readPortsPerCycle == 0)
        errors.push_back("readPortsPerCycle must be >= 1");

    bool nocstar =
        kind == OrgKind::Nocstar || kind == OrgKind::NocstarIdeal;
    bool monolithic = kind == OrgKind::MonolithicMesh ||
                      kind == OrgKind::MonolithicSmart;
    if (nocstar) {
        if (nocstarSliceEntries == 0)
            errors.push_back("nocstarSliceEntries must be >= 1");
        else if (l2Assoc != 0 && nocstarSliceEntries % l2Assoc != 0)
            errors.push_back(
                strCat("nocstarSliceEntries (", nocstarSliceEntries,
                       ") not a multiple of l2Assoc (", l2Assoc, ")"));
        if (priorityEpoch == 0)
            errors.push_back("priorityEpoch must be >= 1");
    }
    if ((nocstar || kind == OrgKind::MonolithicSmart) && hpcMax == 0)
        errors.push_back("hpcMax must be >= 1");
    if (monolithic) {
        if (banks == 0)
            errors.push_back("banks must be >= 1");
        else if (banks > numCores)
            errors.push_back(strCat("banks (", banks,
                                    ") exceeds numCores (", numCores,
                                    ")"));
    }

    bool hier = fabricKind == FabricKind::Hierarchical;
    if (hier && !nocstar)
        errors.push_back(strCat(
            "the hierarchical fabric needs a NOCSTAR organization "
            "(kind is ", orgKindName(kind), ")"));
    if (!hier && (clusterWidth != 0 || clusterHeight != 0))
        errors.push_back(
            "cluster geometry is set but the fabric is flat "
            "(did you mean fabricKind = Hierarchical / --fabric=hier?)");
    if (!hier && sliceMapping == SliceMapping::ClusterLocal)
        errors.push_back(
            "cluster-local slice mapping needs the hierarchical fabric");
    if ((clusterWidth == 0) != (clusterHeight == 0))
        errors.push_back(strCat(
            "clusterWidth (", clusterWidth, ") and clusterHeight (",
            clusterHeight, ") must be set together (0x0 picks the "
            "geometry automatically)"));

    if (isShared(kind) && numCores > 0) {
        // Every interconnect model assumes the cores tile a full
        // W x H mesh (power-of-two friendly; 24 = 8x3 is also fine).
        noc::GridTopology topo = noc::GridTopology::forCores(numCores);
        if (topo.numTiles() != numCores)
            errors.push_back(
                strCat("numCores (", numCores, ") does not tile a "
                       "full mesh (nearest grid is ", topo.width(),
                       "x", topo.height(), ")"));
        else if (hier && nocstar) {
            // The cluster grid math assumes power-of-two mesh sides, so
            // every legal cluster size divides evenly.
            if (!std::has_single_bit(topo.width()) ||
                !std::has_single_bit(topo.height()))
                errors.push_back(strCat(
                    "the hierarchical fabric needs power-of-two mesh "
                    "dimensions, but ", numCores, " cores tile ",
                    topo.width(), "x", topo.height(),
                    " (try ", topo.width() * topo.width(),
                    " or ", std::bit_floor(numCores), " cores)"));
            else if (clusterWidth != 0 && clusterHeight != 0) {
                if (topo.width() % clusterWidth != 0)
                    errors.push_back(strCat(
                        "clusterWidth (", clusterWidth,
                        ") must divide the mesh width (", topo.width(),
                        "); any power of two up to ", topo.width(),
                        " works"));
                if (topo.height() % clusterHeight != 0)
                    errors.push_back(strCat(
                        "clusterHeight (", clusterHeight,
                        ") must divide the mesh height (",
                        topo.height(), "); any power of two up to ",
                        topo.height(), " works"));
            }
        }
        for (std::string &e : faults.validate(topo.linkIndexSpace()))
            errors.push_back("faults: " + e);
    } else {
        for (std::string &e : faults.validate())
            errors.push_back("faults: " + e);
    }
    return errors;
}

std::string
joinConfigErrors(const std::vector<std::string> &errors)
{
    std::string all;
    for (const std::string &e : errors)
        all += "\n  - " + e;
    return all;
}

TlbOrganization::TlbOrganization(const std::string &name,
                                 const OrgConfig &config,
                                 OrgContext context,
                                 stats::StatGroup *parent)
    : stats::StatGroup(name, parent),
      l2Accesses(this, "l2_accesses", "L2 TLB demand accesses"),
      l2Hits(this, "l2_hits", "L2 TLB demand hits"),
      l2Misses(this, "l2_misses", "L2 TLB demand misses"),
      walksLaunched(this, "walks", "page walks launched"),
      prefetchInserts(this, "prefetch_inserts",
                      "translations inserted by the prefetcher"),
      shootdowns(this, "shootdowns", "shootdown operations"),
      shootdownL2Invalidations(this, "shootdown_l2_invalidations",
                               "L2 entries invalidated by shootdowns"),
      totalAccessLatency(this, "access_latency_cycles",
                         "total L1-miss-to-completion cycles"),
      totalShootdownLatency(this, "shootdown_latency_cycles",
                            "total shootdown completion cycles"),
      concurrency(this, "concurrency",
                  "chip-wide concurrent L2 accesses at access start",
                  1, 513, 1),
      sliceConcurrency(this, "slice_concurrency",
                       "same-slice concurrent accesses at access start",
                       1, 513, 1),
      sliceEccRewalks(this, "slice_ecc_rewalks",
                      "hits discarded for ECC corruption"),
      config_(config), ctx_(std::move(context)),
      prefetcher_(config.prefetchDistance)
{
    if (config_.faults.sliceEccProb > 0)
        eccFaults_ = std::make_unique<sim::FaultInjector>(
            config_.faults, sim::FaultInjector::Stream::SliceEcc);
    if (!ctx_.queue || !ctx_.pageTable)
        fatal("organization '", name, "' missing queue or page table");
    if (ctx_.walkers.size() != config.numCores)
        fatal("organization '", name, "' expects one walker per core");
    unsigned slices = std::max(config.numCores, config.banks);
    sliceOutstanding_.assign(slices, 0);
    ports_.assign(slices, PortState{});
}

void
TlbOrganization::noteAccessStart(unsigned slice)
{
    // Sample including this access, so "1" means an isolated access,
    // matching the paper's "1 acc" category.
    ++outstanding_;
    ++sliceOutstanding_[slice];
    concurrency.sample(static_cast<double>(outstanding_));
    sliceConcurrency.sample(
        static_cast<double>(sliceOutstanding_[slice]));
}

void
TlbOrganization::noteAccessEnd(unsigned slice)
{
    if (outstanding_ == 0 || sliceOutstanding_[slice] == 0)
        panic("unbalanced access tracking");
    --outstanding_;
    --sliceOutstanding_[slice];
}

Cycle
TlbOrganization::portStart(unsigned slice, Cycle earliest)
{
    PortState &port = ports_[slice];
    if (port.cycle < earliest) {
        port.cycle = earliest;
        port.used = 1;
        return earliest;
    }
    // Find the first cycle at or after port.cycle with spare issue slots.
    if (port.used < config_.readPortsPerCycle) {
        ++port.used;
        return port.cycle;
    }
    ++port.cycle;
    port.used = 1;
    return port.cycle;
}

void
TlbOrganization::launchWalk(CoreId walk_core, CoreId requester,
                            ContextId ctx, Addr vaddr, Cycle now,
                            WalkDone k)
{
    ++walksLaunched;
    mem::WalkResult walk =
        ctx_.walkers.at(walk_core)->walk(ctx, vaddr, requester, now);
    chargeWalkEnergy(walk);
    Cycle done = now + walk.totalLatency();
    ctx_.queue->scheduleLambda(done, [walk, k = std::move(k)] {
        k(walk);
    });
}

void
TlbOrganization::chargeWalkEnergy(const mem::WalkResult &walk)
{
    if (!ctx_.energy)
        return;
    for (unsigned i = 0; i < walk.pscHits; ++i)
        ctx_.energy->addWalkReference(energy::WalkService::PwcHit);
    for (unsigned i = 0; i < walk.l2Refs; ++i)
        ctx_.energy->addWalkReference(energy::WalkService::L2Hit);
    for (unsigned i = 0; i < walk.llcRefs; ++i)
        ctx_.energy->addWalkReference(energy::WalkService::LlcHit);
    for (unsigned i = 0; i < walk.dramRefs; ++i)
        ctx_.energy->addWalkReference(energy::WalkService::Dram);
}

void
TlbOrganization::prefetchAround(tlb::SetAssocTlb &array, ContextId ctx,
                                PageNum vpn, PageSize size)
{
    if (prefetcher_.distance() == 0)
        return;
    for (PageNum candidate : prefetcher_.candidates(vpn)) {
        Addr vaddr = candidate << pageShift(size);
        mem::Translation t = ctx_.pageTable->translate(ctx, vaddr);
        if (t.size != size)
            continue; // neighbouring page has a different granularity
        if (array.present(ctx, candidate, size))
            continue;
        tlb::TlbEntry entry;
        entry.valid = true;
        entry.vpn = candidate;
        entry.ppn = t.ppn;
        entry.ctx = ctx;
        entry.size = size;
        entry.prefetched = true;
        array.insert(entry);
        ++prefetchInserts;
    }
}

tlb::TlbEntry
TlbOrganization::entryFor(ContextId ctx, Addr vaddr,
                          const mem::Translation &t) const
{
    tlb::TlbEntry entry;
    entry.valid = true;
    entry.size = t.size;
    entry.vpn = pageNumber(vaddr, t.size);
    entry.ppn = t.ppn;
    entry.ctx = ctx;
    return entry;
}

} // namespace nocstar::core
