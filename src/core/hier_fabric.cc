/**
 * @file
 * Hierarchical hybrid fabric: crossbar clusters over a circuit-switched
 * cluster mesh, behind the shared Interconnect arbitration engine.
 */

#include "core/hier_fabric.hh"

#include <algorithm>
#include <limits>

#include "sim/trace.hh"
#include "sim/trace_recorder.hh"

namespace nocstar::core
{

HierFabric::HierFabric(const std::string &name, EventQueue &queue,
                       const noc::GridTopology &topo,
                       const FabricConfig &config,
                       stats::StatGroup *parent)
    : Interconnect(name, queue, topo, config, parent),
      clusterLocalMessages(this, "cluster_local_messages",
                           "messages granted within one crossbar"),
      interClusterMessages(this, "inter_cluster_messages",
                           "messages granted over the cluster mesh"),
      xbarDenies(this, "xbar_denies",
                 "failed setups a crossbar port blocked first"),
      clusterW_(1), clusterH_(1), clusterGrid_(1, 1)
{
    resolveClusterGeometry(config_, topo_, clusterW_, clusterH_);
    clusterGrid_ = noc::GridTopology(topo_.width() / clusterW_,
                                     topo_.height() / clusterH_);

    clusterOfTile_.resize(topo_.numTiles());
    for (CoreId t = 0; t < topo_.numTiles(); ++t) {
        noc::Coord c = topo_.coordOf(t);
        clusterOfTile_[t] = clusterGrid_.tileAt(
            {c.x / clusterW_, c.y / clusterH_});
    }
    gateway_.resize(clusterGrid_.numTiles());
    for (unsigned cl = 0; cl < clusterGrid_.numTiles(); ++cl) {
        noc::Coord cc = clusterGrid_.coordOf(cl);
        gateway_[cl] =
            topo_.tileAt({cc.x * clusterW_, cc.y * clusterH_});
    }
    xbarHeldUntil_.assign(topo_.numTiles(), 0);
    buildClusterPaths();
    if (faults_)
        clusterPairDegraded_.assign(
            static_cast<std::size_t>(numClusters()) * numClusters(), 0);
}

void
HierFabric::buildClusterPaths()
{
    unsigned nc = clusterGrid_.numTiles();
    cPathOffset_.assign(static_cast<std::size_t>(nc) * nc + 1, 0);
    std::size_t total = 0;
    for (unsigned cs = 0; cs < nc; ++cs)
        for (unsigned cd = 0; cd < nc; ++cd)
            total += clusterGrid_.hops(cs, cd);
    if (total > std::numeric_limits<std::uint32_t>::max())
        fatal("cluster path table needs ", total,
              " entries, past the 32-bit offset space; the ", nc,
              "-cluster grid is too large for stored paths");
    cPathLinks_.reserve(total);

    for (unsigned cs = 0; cs < nc; ++cs) {
        for (unsigned cd = 0; cd < nc; ++cd) {
            // Cluster links are flattened in the tile link id space via
            // their gateway tiles, so stats vectors, heatmaps and fault
            // plans are shared with the flat fabric.
            for (const noc::LinkId &link : clusterGrid_.xyPath(cs, cd))
                cPathLinks_.push_back(
                    gateway_[link.node] * 4 +
                    static_cast<std::uint32_t>(link.dir));
            cPathOffset_[static_cast<std::size_t>(cs) * nc + cd + 1] =
                static_cast<std::uint32_t>(cPathLinks_.size());
        }
    }
}

unsigned
HierFabric::pathHops(CoreId src, CoreId dst) const
{
    if (src == dst)
        return 0;
    unsigned cs = clusterOfTile_[src], cd = clusterOfTile_[dst];
    if (cs == cd)
        return 1;
    return (src != gateway_[cs] ? 1 : 0) +
           static_cast<unsigned>(clusterLinks(cs, cd).size()) +
           (dst != gateway_[cd] ? 1 : 0);
}

Cycle
HierFabric::traversal(CoreId src, CoreId dst) const
{
    if (src == dst)
        return 0;
    unsigned cs = clusterOfTile_[src], cd = clusterOfTile_[dst];
    if (cs == cd)
        return 1;
    // Crossbar climb to the gateway, pipelined cluster mesh, crossbar
    // descent -- each crossbar stage skipped when the endpoint is its
    // cluster's gateway.
    return (src != gateway_[cs] ? 1 : 0) +
           traversalCycles(
               static_cast<unsigned>(clusterLinks(cs, cd).size())) +
           (dst != gateway_[cd] ? 1 : 0);
}

void
HierFabric::pathLinksInto(CoreId src, CoreId dst,
                          std::vector<std::uint32_t> &out) const
{
    unsigned cs = clusterOfTile_[src], cd = clusterOfTile_[dst];
    if (cs == cd)
        return; // crossbar hops occupy no mesh links
    std::span<const std::uint32_t> path = clusterLinks(cs, cd);
    out.insert(out.end(), path.begin(), path.end());
}

bool
HierFabric::pairUnreachable(const Request &req) const
{
    unsigned cs = clusterOfTile_[req.src], cd = clusterOfTile_[req.dst];
    if (cs == cd)
        return false; // the crossbar has no faultable links
    std::size_t nc = numClusters();
    return clusterPairDegraded_[cs * nc + cd] ||
           (req.roundTrip && clusterPairDegraded_[cd * nc + cs]);
}

bool
HierFabric::tryAcquire(const Request &req, Cycle now)
{
    Cycle trav = traversal(req.src, req.dst);
    Cycle hold = req.roundTrip ? 2 * trav + req.holdExtra : trav;
    bool record = sim::recording();

    auto holdXbar = [&](CoreId t, const char *label) {
        xbarHeldUntil_[t] = std::max(xbarHeldUntil_[t], now + hold);
        if (record)
            sim::recorder().span(sim::Lane::Link, xbarLaneOf(t), label,
                                 now, now + hold, req.src, req.dst,
                                 "src", "dst");
    };

    unsigned cs = clusterOfTile_[req.src], cd = clusterOfTile_[req.dst];
    if (cs == cd) {
        // Single crossbar hop: the output port of the tile reached
        // (and of the source for the pre-granted return).
        if (!config_.ideal) {
            if (xbarHeldUntil_[req.dst] > now) {
                ++xbarDenies;
                return false;
            }
            if (req.roundTrip && xbarHeldUntil_[req.src] > now) {
                ++xbarDenies;
                return false;
            }
        }
        if (faults_ && faults_->loseGrant()) {
            ++faultsInjected;
            return false;
        }
        holdXbar(req.dst, "xbar held");
        if (req.roundTrip)
            holdXbar(req.src, "xbar held (reverse)");
        ++clusterLocalMessages;
        return true;
    }

    CoreId gwS = gateway_[cs], gwD = gateway_[cd];
    bool srcXbar = req.src != gwS;
    bool dstXbar = req.dst != gwD;
    std::span<const std::uint32_t> path = clusterLinks(cs, cd);
    std::span<const std::uint32_t> reverse;
    if (req.roundTrip)
        reverse = clusterLinks(cd, cs);

    if (!config_.ideal) {
        // Resources in message order: gateway climb, cluster mesh,
        // destination descent; then the reverse chain for round trips.
        if (srcXbar && xbarHeldUntil_[gwS] > now) {
            ++xbarDenies;
            return false;
        }
        for (std::uint32_t link : path) {
            if (linkHeldUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
        if (dstXbar && xbarHeldUntil_[req.dst] > now) {
            ++xbarDenies;
            return false;
        }
        if (req.roundTrip) {
            if (dstXbar && xbarHeldUntil_[gwD] > now) {
                ++xbarDenies;
                return false;
            }
            for (std::uint32_t link : reverse) {
                if (linkHeldUntil_[link] > now) {
                    linkDenies[link] += 1;
                    return false;
                }
            }
            if (srcXbar && xbarHeldUntil_[req.src] > now) {
                ++xbarDenies;
                return false;
            }
        }
    }

    if (faults_) {
        // Fault-disabled mesh links deny even the ideal fabric.
        for (std::uint32_t link : path) {
            if (linkFaultyUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
        for (std::uint32_t link : reverse) {
            if (linkFaultyUntil_[link] > now) {
                linkDenies[link] += 1;
                return false;
            }
        }
        if (faults_->loseGrant()) {
            ++faultsInjected;
            return false;
        }
    }

    auto holdLink = [&](std::uint32_t link, const char *label) {
        linkHeldUntil_[link] = std::max(linkHeldUntil_[link], now + hold);
        linkGrants[link] += 1;
        linkHoldCycles[link] += static_cast<double>(hold);
        if (record)
            sim::recorder().span(sim::Lane::Link, link, label, now,
                                 now + hold, req.src, req.dst, "src",
                                 "dst");
    };
    if (srcXbar)
        holdXbar(gwS, "xbar held");
    for (std::uint32_t link : path)
        holdLink(link, "held");
    if (dstXbar)
        holdXbar(req.dst, "xbar held");
    if (req.roundTrip) {
        if (dstXbar)
            holdXbar(gwD, "xbar held (reverse)");
        for (std::uint32_t link : reverse)
            holdLink(link, "held (reverse)");
        if (srcXbar)
            holdXbar(req.src, "xbar held (reverse)");
    }
    ++interClusterMessages;
    return true;
}

void
HierFabric::onPermanentLinkDeath(std::uint32_t)
{
    // A dead link that is not a cluster-mesh link appears in no stored
    // path; the rebuild then keeps every pair bit-for-bit.
    rebuildClusterPaths();
}

void
HierFabric::rebuildClusterPaths()
{
    unsigned nc = clusterGrid_.numTiles();
    std::vector<std::uint32_t> offsets(
        static_cast<std::size_t>(nc) * nc + 1, 0);
    std::vector<std::uint32_t> links;
    links.reserve(cPathLinks_.size());

    // BFS tree from one source cluster over the surviving cluster-mesh
    // links, neighbours in fixed E, W, N, S order, mirroring the flat
    // fabric's deterministic route-around.
    std::vector<std::int32_t> parent(nc);
    std::vector<std::uint32_t> viaLink(nc, 0);
    std::vector<unsigned> order;
    std::int64_t treeFor = -1;
    auto ensureTree = [&](unsigned src) {
        if (treeFor == static_cast<std::int64_t>(src))
            return;
        treeFor = src;
        std::fill(parent.begin(), parent.end(), -1);
        parent[src] = static_cast<std::int32_t>(src);
        order.clear();
        order.push_back(src);
        static constexpr struct { int dx, dy; } step[4] = {
            {1, 0}, {-1, 0}, {0, -1}, {0, 1}}; // E, W, N, S
        for (std::size_t head = 0; head < order.size(); ++head) {
            unsigned at = order[head];
            noc::Coord c = clusterGrid_.coordOf(at);
            for (unsigned d = 0; d < 4; ++d) {
                int nx = static_cast<int>(c.x) + step[d].dx;
                int ny = static_cast<int>(c.y) + step[d].dy;
                if (nx < 0 || ny < 0 ||
                    nx >= static_cast<int>(clusterGrid_.width()) ||
                    ny >= static_cast<int>(clusterGrid_.height()))
                    continue;
                std::uint32_t link = gateway_[at] * 4 + d;
                if (linkDeadPermanent_[link])
                    continue;
                unsigned to = clusterGrid_.tileAt(
                    {static_cast<unsigned>(nx),
                     static_cast<unsigned>(ny)});
                if (parent[to] >= 0)
                    continue;
                parent[to] = static_cast<std::int32_t>(at);
                viaLink[to] = link;
                order.push_back(to);
            }
        }
    };

    std::vector<std::uint32_t> reversed;
    for (unsigned cs = 0; cs < nc; ++cs) {
        for (unsigned cd = 0; cd < nc; ++cd) {
            std::size_t pair = static_cast<std::size_t>(cs) * nc + cd;
            std::span<const std::uint32_t> old = clusterLinks(cs, cd);
            bool crossesDead = false;
            for (std::uint32_t link : old) {
                if (linkDeadPermanent_[link]) {
                    crossesDead = true;
                    break;
                }
            }
            if (!crossesDead) {
                links.insert(links.end(), old.begin(), old.end());
            } else {
                ensureTree(cs);
                if (parent[cd] < 0) {
                    clusterPairDegraded_[pair] = 1;
                    TRACE(Fabric, "no surviving cluster path ", cs,
                          " -> ", cd,
                          "; pair degraded to fallback mesh");
                } else {
                    clusterPairDegraded_[pair] = 0;
                    reversed.clear();
                    for (unsigned at = cd; at != cs;
                         at = static_cast<unsigned>(parent[at]))
                        reversed.push_back(viaLink[at]);
                    links.insert(links.end(), reversed.rbegin(),
                                 reversed.rend());
                }
            }
            offsets[pair + 1] =
                static_cast<std::uint32_t>(links.size());
        }
    }
    cPathOffset_ = std::move(offsets);
    cPathLinks_ = std::move(links);
}

} // namespace nocstar::core
