/**
 * @file
 * Monolithic shared last-level TLB (Fig 1(b)/(c)): one large banked
 * structure placed at one end of the chip, reached over a multi-hop
 * mesh or a SMART NoC. This is the organization of the original shared
 * L2 TLB proposal the paper uses as its first comparison point.
 */

#ifndef NOCSTAR_CORE_MONOLITHIC_ORG_HH
#define NOCSTAR_CORE_MONOLITHIC_ORG_HH

#include <memory>
#include <vector>

#include "core/organization.hh"
#include "noc/network.hh"

namespace nocstar::core
{

/**
 * Banked monolithic shared L2 TLB behind a baseline NoC.
 */
class MonolithicOrg : public TlbOrganization
{
  public:
    MonolithicOrg(const OrgConfig &config, OrgContext context,
                  stats::StatGroup *parent = nullptr);

    void translate(CoreId core, ContextId ctx, Addr vaddr, Cycle now,
                   TranslationDone done) override;

    void shootdown(CoreId initiator, ContextId ctx, Addr vaddr,
                   const std::vector<CoreId> &sharers, Cycle now,
                   ShootdownDone on_complete) override;

    void flushAll() override;

    void preloadShared(ContextId ctx, Addr vaddr,
                       const mem::Translation &t) override;

    std::uint64_t totalEntries() const override;

    /**
     * Fig-4 override mode completes at portStart(t0) + override; the
     * full model adds traversals around the bank access. Either way
     * initiate + the fixed array term is a floor.
     */
    Cycle
    minCompletionLead() const override
    {
        return config_.initiateLatency +
               (config_.monolithicAccessOverride
                    ? config_.monolithicAccessOverride
                    : bankLatency_);
    }

    /** Tile adjacent to which the monolithic structure is placed. */
    CoreId structureTile() const { return structureTile_; }

    /** Bank index for a virtual address (4 KB-granule interleaving). */
    unsigned
    bankOf(Addr vaddr) const
    {
        return static_cast<unsigned>(
            (vaddr >> pageShift(PageSize::FourKB)) % config_.banks);
    }

    tlb::SetAssocTlb &bankArray(unsigned bank) { return *banks_.at(bank); }

    // Sharded pre-probe support: one home array per bank. Banks are
    // fewer than tiles, so some shards may own none.
    unsigned numHomeArrays() const override { return config_.banks; }

    unsigned
    homeArrayOf(CoreId core, Addr vaddr) const override
    {
        (void)core;
        return bankOf(vaddr);
    }

    ProbeResult
    probeHomeArray(CoreId core, ContextId ctx, Addr vaddr) override
    {
        (void)core;
        const tlb::TlbEntry *hit =
            banks_[bankOf(vaddr)]->lookupAnySize(ctx, vaddr);
        return hit ? ProbeResult{true, *hit} : ProbeResult{};
    }

    tlb::SetAssocTlb &array(unsigned index) override
    {
        return *banks_.at(index);
    }

    Cycle bankLatency() const { return bankLatency_; }

  private:
    /** One-way latency core -> structure (or back), tracking stats. */
    Cycle traverse(CoreId from, CoreId to, Cycle now);

    noc::GridTopology topo_;
    std::unique_ptr<noc::Network> network_;
    std::vector<std::unique_ptr<tlb::SetAssocTlb>> banks_;
    CoreId structureTile_;
    Cycle bankLatency_;
    energy::NocStyle energyStyle_;
};

} // namespace nocstar::core

#endif // NOCSTAR_CORE_MONOLITHIC_ORG_HH
