/**
 * @file
 * Data-cache hierarchy model for page-walk references.
 *
 * Walk references probe the requesting walker's per-core L2 cache, then
 * the shared LLC, then DRAM (latencies per the paper's Haswell
 * methodology: 12 / 50 / ~150+ cycles). Capacity pressure from the
 * application's own data is modelled as a retention time: a line older
 * than the configured TTL has been evicted by app traffic. Tuning the
 * TTLs reproduces the paper's measurement that 70-87 % of walks reach
 * the LLC or memory.
 *
 * The model also counts "foreign fills" -- PTE lines installed into a
 * core's L2 on behalf of *another* core's translation -- which is the
 * cache-pollution effect that makes remote-core page walks slightly
 * worse than requester-side walks (paper Fig 17).
 */

#ifndef NOCSTAR_MEM_CACHE_MODEL_HH
#define NOCSTAR_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "energy/translation_energy.hh"
#include "sim/checkpoint.hh"
#include "sim/flat_map.hh"
#include "sim/inline_function.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace nocstar::mem
{

/** Outcome of one walk reference. */
struct CacheAccessResult
{
    Cycle latency = 0;
    energy::WalkService service = energy::WalkService::Dram;
    /** True if this access installed a line into the walker core's L2. */
    bool filledL2 = false;
};

/** Timing / sizing knobs for the walk service hierarchy. */
struct CacheModelConfig
{
    Cycle l2Latency = 12;
    Cycle llcLatency = 50;
    Cycle dramLatency = 250;
    /** PTE-line capacity of one core's L2 (lines). */
    std::uint32_t l2Lines = 768;
    /** PTE-line capacity of the shared LLC (lines). */
    std::uint32_t llcLines = 131072;
    /** App-pressure retention of PTE lines in the L2 (cycles). */
    Cycle l2RetentionCycles = 300000;
    /** App-pressure retention of PTE lines in the LLC (cycles). */
    Cycle llcRetentionCycles = 10000000;
};

/**
 * Per-system cache hierarchy for walk references.
 */
class CacheModel : public stats::StatGroup
{
  public:
    CacheModel(const std::string &name, unsigned num_cores,
               const CacheModelConfig &config,
               stats::StatGroup *parent = nullptr);

    /**
     * Service one walk reference to @p line issued by the walker on
     * @p walk_core at time @p now, on behalf of the translation
     * requester @p requester_core.
     */
    CacheAccessResult access(CoreId walk_core, CoreId requester_core,
                             Addr line, Cycle now);

    /** Foreign PTE fills absorbed by @p core's L2 cache. */
    std::uint64_t foreignFills(CoreId core) const;

    /**
     * Functional-warming reference: moves the line stores exactly as
     * access() would (probe refresh, LLC fill on miss, L2 fill) but
     * counts no stats, never fires the foreign-fill hook and returns
     * no latency. Used by fast-forward warming.
     */
    void warmAccess(CoreId walk_core, Addr line, Cycle now);

    /** Serialize every line store (checkpointing). */
    void saveState(sim::CkptWriter &w) const;

    /** Restore state captured by saveState(). */
    void restoreState(sim::CkptReader &r);

    /** Resident bytes of the line stores (memory audit). */
    std::size_t memoryBytes() const;

    /**
     * Hook invoked whenever a foreign fill lands in a core's L2, so the
     * system can charge that core a pollution penalty (Fig 17).
     */
    using ForeignFillHook = InlineFunction<void(CoreId), 32>;

    void
    setForeignFillHook(ForeignFillHook hook)
    {
        foreignFillHook_ = std::move(hook);
    }

    const CacheModelConfig &config() const { return config_; }

    stats::Scalar l2Hits;
    stats::Scalar llcHits;
    stats::Scalar dramAccesses;
    stats::Scalar foreignFillCount;

    /** Fraction of references serviced past the L2 (LLC or DRAM). */
    double
    beyondL2Fraction() const
    {
        double total = l2Hits.value() + llcHits.value() +
                       dramAccesses.value();
        return total > 0
            ? (llcHits.value() + dramAccesses.value()) / total : 0.0;
    }

  private:
    /** A bounded line store with FIFO eviction and TTL expiry. */
    struct LineStore
    {
        std::uint32_t maxLines = 0;
        Cycle ttl = 0;
        FlatMap<Addr, Cycle> lines; ///< line -> last touch
        std::deque<Addr> fifo;

        bool probe(Addr line, Cycle now);
        /** @return true if the line was newly installed. */
        bool fill(Addr line, Cycle now);
    };

    static void saveStore(sim::CkptWriter &w, const LineStore &store);
    static void restoreStore(sim::CkptReader &r, LineStore &store);

    CacheModelConfig config_;
    std::vector<LineStore> l2_; ///< one per core
    LineStore llc_;
    std::vector<std::uint64_t> foreignFills_;
    ForeignFillHook foreignFillHook_;
};

} // namespace nocstar::mem

#endif // NOCSTAR_MEM_CACHE_MODEL_HH
