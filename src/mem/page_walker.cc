/**
 * @file
 * Page-table walker implementation.
 */

#include "mem/page_walker.hh"

#include "sim/trace.hh"
#include "sim/trace_recorder.hh"

namespace nocstar::mem
{

bool
PageTableWalker::Psc::probe(std::uint64_t key)
{
    return entries.contains(key);
}

void
PageTableWalker::Psc::fill(std::uint64_t key, Cycle now)
{
    auto [touched, inserted] = entries.emplace(key, now);
    *touched = now;
    if (!inserted)
        return;
    fifo.push_back(key);
    while (entries.size() > maxEntries && !fifo.empty()) {
        entries.erase(fifo.front());
        fifo.pop_front();
    }
}

PageTableWalker::PageTableWalker(const std::string &name, CoreId core,
                                 PageTable &table, CacheModel &caches,
                                 const WalkerConfig &config,
                                 stats::StatGroup *parent)
    : stats::StatGroup(name, parent),
      walks(this, "walks", "page table walks performed"),
      walkCycles(this, "walk_cycles", "cycles spent walking"),
      queueCycles(this, "queue_cycles", "cycles walks waited for walker"),
      eccRewalks(this, "ecc_rewalks",
                 "walks redone for page-table ECC errors"),
      core_(core), table_(table), caches_(caches), config_(config),
      eccRng_(config.eccSeed)
{
    for (auto &psc : psc_)
        psc.maxEntries = config.pscEntriesPerLevel;
}

WalkResult
PageTableWalker::walk(ContextId ctx, Addr vaddr, CoreId requester_core,
                      Cycle now)
{
    WalkResult result;
    result.translation = table_.translate(ctx, vaddr);

    Cycle start = std::max(now, busyUntil_);
    result.queueDelay = start - now;

    if (config_.fixedLatency) {
        result.walkLatency = config_.fixedLatency;
        // Count one LLC-class reference so the energy model charges
        // fixed-mode walks something plausible.
        result.llcRefs = 1;
    } else {
        Cycle latency = 0;
        WalkLines lines = table_.walkAddresses(ctx, vaddr);

        // Upper levels (all but the leaf) may hit the PSCs.
        std::size_t leaf = lines.size() - 1;
        for (std::size_t level = 0; level < lines.size(); ++level) {
            bool upper = level < leaf && level < 3;
            std::uint64_t psc_key =
                (static_cast<std::uint64_t>(ctx) << 48) ^
                (vaddr >> (39 - 9 * level));
            if (upper && psc_[level].probe(psc_key)) {
                latency += config_.pscHitLatency;
                ++result.pscHits;
                continue;
            }
            CacheAccessResult ref = caches_.access(
                core_, requester_core, lines[level], start + latency);
            latency += ref.latency;
            switch (ref.service) {
              case energy::WalkService::L2Hit: ++result.l2Refs; break;
              case energy::WalkService::LlcHit: ++result.llcRefs; break;
              case energy::WalkService::Dram: ++result.dramRefs; break;
              default: break;
            }
            if (upper)
                psc_[level].fill(psc_key, start + latency);
        }
        result.walkLatency = latency;
    }

    // Fault injection: a corrupt page-table read forces the whole walk
    // to rerun. Approximated as a second back-to-back walk of the same
    // cost (the PSCs and caches are now warm in reality, so this is a
    // mild overstatement). Never draws when the probability is zero.
    if (config_.eccRetryProb > 0 &&
        eccRng_.chance(config_.eccRetryProb)) {
        ++eccRewalks;
        result.walkLatency *= 2;
        result.eccRetried = true;
    }

    busyUntil_ = start + result.walkLatency;
    ++walks;
    walkCycles += static_cast<double>(result.walkLatency);
    queueCycles += static_cast<double>(result.queueDelay);
    TRACE(Walker, "core ", core_, " walk vaddr 0x", std::hex, vaddr,
          std::dec, " latency ", result.walkLatency, " queue ",
          result.queueDelay, " psc hits ", result.pscHits, " dram ",
          result.dramRefs);
    if (sim::recording())
        sim::recorder().span(sim::Lane::Walker, core_, "walk", start,
                             start + result.walkLatency,
                             result.pscHits, result.dramRefs,
                             "psc_hits", "dram_refs");
    return result;
}

void
PageTableWalker::warmWalk(ContextId ctx, Addr vaddr, Cycle now)
{
    table_.translate(ctx, vaddr);
    if (config_.fixedLatency)
        return; // fixed-latency mode references no modeled caches
    WalkLines lines = table_.walkAddresses(ctx, vaddr);
    std::size_t leaf = lines.size() - 1;
    for (std::size_t level = 0; level < lines.size(); ++level) {
        bool upper = level < leaf && level < 3;
        std::uint64_t psc_key =
            (static_cast<std::uint64_t>(ctx) << 48) ^
            (vaddr >> (39 - 9 * level));
        if (upper && psc_[level].probe(psc_key))
            continue;
        caches_.warmAccess(core_, lines[level], now);
        if (upper)
            psc_[level].fill(psc_key, now);
    }
}

void
PageTableWalker::saveState(sim::CkptWriter &w) const
{
    // The fifo holds exactly the live keys in fill order, so saving
    // (key, fill cycle) pairs in fifo order reconstructs both the map
    // and the eviction order.
    for (const Psc &psc : psc_) {
        w.u64(psc.fifo.size());
        for (std::uint64_t key : psc.fifo) {
            const Cycle *cycle = psc.entries.find(key);
            w.u64(key);
            w.u64(cycle ? *cycle : 0);
        }
    }
}

void
PageTableWalker::restoreState(sim::CkptReader &r)
{
    for (Psc &psc : psc_) {
        psc.entries.clear();
        psc.fifo.clear();
        std::uint64_t count = r.u64();
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t key = r.u64();
            Cycle cycle = r.u64();
            psc.entries.emplace(key, cycle);
            psc.fifo.push_back(key);
        }
    }
}

} // namespace nocstar::mem
