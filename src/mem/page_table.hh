/**
 * @file
 * Functional x86-64-style page table with demand allocation and
 * transparent 2 MB superpages.
 *
 * Virtual address space is carved into 2 MB-aligned regions. On first
 * touch a region is deterministically backed either by one 2 MB
 * superpage or by 512 4 KB pages, so a configurable fraction of the
 * footprint is superpage-mapped (the paper reports Linux achieving
 * 50-80 %). Physical pages come from a bump allocator.
 *
 * The table also produces the *walk reference addresses* (PML4E, PDPTE,
 * PDE, PTE line addresses) that the cache model services, so walk
 * latency is variable exactly as in the paper's simulations.
 */

#ifndef NOCSTAR_MEM_PAGE_TABLE_HH
#define NOCSTAR_MEM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/flat_map.hh"
#include "sim/types.hh"

namespace nocstar::mem
{

/** A resolved translation. */
struct Translation
{
    PageNum ppn = 0; ///< physical page number in units of `size` pages
    PageSize size = PageSize::FourKB;
    /** Monotonic version; bumped on remap so stale TLB entries differ. */
    std::uint32_t version = 0;
};

/** Page-walk levels, root first. */
enum class WalkLevel : std::uint8_t
{
    Pml4 = 0,
    Pdpt = 1,
    Pd = 2,
    Pt = 3,
};

/**
 * Walk reference line addresses: at most 4 (PML4E..PTE), no heap.
 * Mirrors the std::vector surface the walker and tests use.
 */
struct WalkLines
{
    std::array<Addr, 4> line{};
    std::uint32_t count = 0;

    std::size_t size() const { return count; }
    Addr operator[](std::size_t i) const { return line[i]; }
    const Addr *begin() const { return line.data(); }
    const Addr *end() const { return line.data() + count; }
    void push_back(Addr a) { line[count++] = a; }
};

/**
 * Per-process (context) page tables behind one interface.
 */
class PageTable
{
  public:
    /**
     * @param superpage_fraction fraction of 2 MB regions backed by a
     *        superpage when superpages are enabled (0 disables).
     * @param seed determinism salt for region backing decisions.
     */
    explicit PageTable(double superpage_fraction = 0.0,
                       std::uint64_t seed = 1);

    /** Translate @p vaddr in @p ctx, allocating on first touch. */
    Translation translate(ContextId ctx, Addr vaddr);

    /**
     * Read-only translate: the same result as translate() when the
     * region containing @p vaddr is already allocated, std::nullopt
     * otherwise. Never allocates and never touches the memo, so
     * concurrent peek() calls are safe while no thread mutates the
     * table -- the sharded engine's parallel phase relies on exactly
     * that (an unallocated region also proves the access cannot be an
     * L1 TLB hit, so the shard can defer it without resolving it).
     */
    std::optional<Translation> peek(ContextId ctx, Addr vaddr) const;

    /**
     * Walk reference line addresses for @p vaddr: 4 lines for a 4 KB
     * mapping (PML4E..PTE), 3 for a 2 MB mapping (stops at the PDE).
     */
    WalkLines walkAddresses(ContextId ctx, Addr vaddr) const;

    /**
     * Remap the page containing @p vaddr to fresh physical backing,
     * emulating an OS page migration / permission change; the caller is
     * responsible for shooting down stale TLB entries.
     * @return the new translation.
     */
    Translation remap(ContextId ctx, Addr vaddr);

    /**
     * Promote the region containing @p vaddr to a 2 MB superpage (or
     * demote back to 4 KB pages if @p promote is false), as the paper's
     * TLB-storm microbenchmark does in a loop.
     * @return number of 4 KB translations invalidated (512 on change).
     */
    unsigned setRegionSuperpage(ContextId ctx, Addr vaddr, bool promote);

    /** @return true if @p vaddr lies in a superpage-backed region. */
    bool isSuperpage(ContextId ctx, Addr vaddr) const;

    /**
     * Override the superpage fraction for one context (multiprogrammed
     * mixes have per-app THP behaviour). Affects regions not yet
     * allocated.
     */
    void
    setContextSuperpageFraction(ContextId ctx, double fraction)
    {
        contextFraction_[ctx] = fraction;
    }

    double superpageFraction() const { return superpageFraction_; }

    /** Number of distinct 2 MB regions allocated so far. */
    std::uint64_t regionsAllocated() const { return regionPool_.size(); }

    /**
     * Serialize the allocation state (frame allocator, region pool,
     * region index). The memo is a version-validated pure cache and is
     * not saved; restoreState() clears it, which cannot change any
     * translate() result.
     */
    void saveState(sim::CkptWriter &w) const;

    /** Restore state captured by saveState(). */
    void restoreState(sim::CkptReader &r);

    /** Resident bytes of the region pool, index and memo (audit). */
    std::size_t memoryBytes() const;

  private:
    struct Region
    {
        bool superpage;
        /** Physical 2 MB frame number backing this region. */
        PageNum frame;
        std::uint32_t version;
    };

    using RegionKey = std::uint64_t;

    /**
     * Direct-mapped region memo. regionIndex_ slots move on rehash but
     * pool indices are stable forever, so the memo caches the pool
     * index; the stored version detects remap/promotion in between. A
     * Zipf stream touches a few hundred hot regions, so a small table
     * keyed by the hashed region key captures nearly all translates
     * without the full map probe.
     */
    struct RegionMemo
    {
        RegionKey key = 0;
        std::uint32_t index = ~std::uint32_t{0};
        std::uint32_t version = 0;
    };

    static constexpr std::size_t memoSize = 4096;

    RegionMemo &
    memoSlot(RegionKey key)
    {
        return memo_[flatMapMix(key) & (memoSize - 1)];
    }

    static RegionKey
    regionKey(ContextId ctx, Addr vaddr)
    {
        return (static_cast<std::uint64_t>(ctx) << 44) ^
               (vaddr >> pageShift(PageSize::TwoMB));
    }

    /** Pool index of the region containing @p vaddr (allocating). */
    std::uint32_t regionIndexFor(ContextId ctx, Addr vaddr);

    const Region &
    regionFor(ContextId ctx, Addr vaddr)
    {
        return regionPool_[regionIndexFor(ctx, vaddr)];
    }

    bool regionWantsSuperpage(ContextId ctx, RegionKey key) const;

    double superpageFraction_;
    std::uint64_t seed_;
    PageNum nextFrame_ = 1; ///< bump allocator of 2 MB frames
    FlatMap<RegionKey, std::uint32_t> regionIndex_;
    std::vector<Region> regionPool_;
    std::vector<RegionMemo> memo_{memoSize}; ///< hashed by region key
    FlatMap<ContextId, double> contextFraction_;
};

} // namespace nocstar::mem

#endif // NOCSTAR_MEM_PAGE_TABLE_HH
