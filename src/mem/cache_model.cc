/**
 * @file
 * Walk-reference cache model implementation.
 */

#include "mem/cache_model.hh"

#include "sim/logging.hh"

namespace nocstar::mem
{

bool
CacheModel::LineStore::probe(Addr line, Cycle now)
{
    Cycle *touched = lines.find(line);
    if (!touched)
        return false;
    if (ttl && now > *touched + ttl) {
        // Aged out by application traffic; treat as a miss. The stale
        // map entry is refreshed by the subsequent fill.
        return false;
    }
    *touched = now;
    return true;
}

bool
CacheModel::LineStore::fill(Addr line, Cycle now)
{
    auto [touched, inserted] = lines.emplace(line, now);
    if (!inserted) {
        *touched = now;
        return false;
    }
    fifo.push_back(line);
    // FIFO capacity eviction; lazily skip entries already re-filled.
    while (lines.size() > maxLines && !fifo.empty()) {
        Addr victim = fifo.front();
        fifo.pop_front();
        lines.erase(victim);
    }
    return true;
}

CacheModel::CacheModel(const std::string &name, unsigned num_cores,
                       const CacheModelConfig &config,
                       stats::StatGroup *parent)
    : stats::StatGroup(name, parent),
      l2Hits(this, "l2_hits", "walk refs serviced by a core L2"),
      llcHits(this, "llc_hits", "walk refs serviced by the LLC"),
      dramAccesses(this, "dram_accesses", "walk refs serviced by DRAM"),
      foreignFillCount(this, "foreign_fills",
                       "PTE fills into an L2 on behalf of another core"),
      config_(config),
      foreignFills_(num_cores, 0)
{
    if (num_cores == 0)
        fatal("cache model needs at least one core");
    l2_.resize(num_cores);
    for (auto &store : l2_) {
        store.maxLines = config.l2Lines;
        store.ttl = config.l2RetentionCycles;
    }
    llc_.maxLines = config.llcLines;
    llc_.ttl = config.llcRetentionCycles;
}

CacheAccessResult
CacheModel::access(CoreId walk_core, CoreId requester_core, Addr line,
                   Cycle now)
{
    if (walk_core >= l2_.size())
        panic("cache access from unknown core ", walk_core);

    CacheAccessResult result;
    LineStore &l2 = l2_[walk_core];

    if (l2.probe(line, now)) {
        result.latency = config_.l2Latency;
        result.service = energy::WalkService::L2Hit;
        ++l2Hits;
        return result;
    }

    if (llc_.probe(line, now)) {
        result.latency = config_.llcLatency;
        result.service = energy::WalkService::LlcHit;
        ++llcHits;
    } else {
        result.latency = config_.dramLatency;
        result.service = energy::WalkService::Dram;
        ++dramAccesses;
        llc_.fill(line, now);
    }

    // Fill path: the line lands in the walking core's L2 either way.
    result.filledL2 = l2.fill(line, now);
    if (result.filledL2 && walk_core != requester_core) {
        foreignFills_[walk_core]++;
        ++foreignFillCount;
        if (foreignFillHook_)
            foreignFillHook_(walk_core);
    }
    return result;
}

std::uint64_t
CacheModel::foreignFills(CoreId core) const
{
    return core < foreignFills_.size() ? foreignFills_[core] : 0;
}

void
CacheModel::warmAccess(CoreId walk_core, Addr line, Cycle now)
{
    if (walk_core >= l2_.size())
        panic("cache warm access from unknown core ", walk_core);
    LineStore &l2 = l2_[walk_core];
    if (l2.probe(line, now))
        return;
    if (!llc_.probe(line, now))
        llc_.fill(line, now);
    l2.fill(line, now);
}

void
CacheModel::saveStore(sim::CkptWriter &w, const LineStore &store)
{
    // The fifo holds the live lines in install order, so (line, last
    // touch) pairs in fifo order reconstruct map and eviction order.
    w.u64(store.fifo.size());
    for (Addr line : store.fifo) {
        const Cycle *touched = store.lines.find(line);
        w.u64(line);
        w.u64(touched ? *touched : 0);
    }
}

void
CacheModel::restoreStore(sim::CkptReader &r, LineStore &store)
{
    store.lines.clear();
    store.fifo.clear();
    std::uint64_t count = r.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        Addr line = r.u64();
        Cycle touched = r.u64();
        store.lines.emplace(line, touched);
        store.fifo.push_back(line);
    }
}

void
CacheModel::saveState(sim::CkptWriter &w) const
{
    w.u64(l2_.size());
    for (const LineStore &store : l2_)
        saveStore(w, store);
    saveStore(w, llc_);
}

void
CacheModel::restoreState(sim::CkptReader &r)
{
    std::uint64_t cores = r.u64();
    if (cores != l2_.size())
        fatal("cache model checkpoint: ", cores,
              " cores saved but this system has ", l2_.size());
    for (LineStore &store : l2_)
        restoreStore(r, store);
    restoreStore(r, llc_);
}

std::size_t
CacheModel::memoryBytes() const
{
    using LineSlot = FlatMap<Addr, Cycle>::Slot;
    auto storeBytes = [](const LineStore &store) {
        return store.lines.capacity() * (sizeof(LineSlot) + 1) +
               store.fifo.size() * sizeof(Addr);
    };
    std::size_t total = storeBytes(llc_);
    for (const LineStore &store : l2_)
        total += storeBytes(store);
    return total;
}

} // namespace nocstar::mem
