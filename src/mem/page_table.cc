/**
 * @file
 * Functional page table implementation.
 */

#include "mem/page_table.hh"

#include "sim/logging.hh"

namespace nocstar::mem
{

namespace
{

/** splitmix64-style hash for deterministic region decisions. */
std::uint64_t
mix(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

PageTable::PageTable(double superpage_fraction, std::uint64_t seed)
    : superpageFraction_(superpage_fraction), seed_(seed)
{
    if (superpage_fraction < 0.0 || superpage_fraction > 1.0)
        fatal("superpage fraction must be within [0,1], got ",
              superpage_fraction);
}

bool
PageTable::regionWantsSuperpage(ContextId ctx, RegionKey key) const
{
    double fraction = superpageFraction_;
    if (const double *ctx_fraction = contextFraction_.find(ctx))
        fraction = *ctx_fraction;
    if (fraction <= 0.0)
        return false;
    double u = static_cast<double>(mix(key ^ seed_) >> 11) * 0x1.0p-53;
    return u < fraction;
}

std::uint32_t
PageTable::regionIndexFor(ContextId ctx, Addr vaddr)
{
    RegionKey key = regionKey(ctx, vaddr);
    auto [index, inserted] = regionIndex_.emplace(
        key, static_cast<std::uint32_t>(regionPool_.size()));
    if (inserted)
        regionPool_.push_back(
            Region{regionWantsSuperpage(ctx, key), nextFrame_++, 0});
    return *index;
}

Translation
PageTable::translate(ContextId ctx, Addr vaddr)
{
    RegionKey key = regionKey(ctx, vaddr);
    RegionMemo &m = memoSlot(key);
    const Region *region = nullptr;
    if (m.key == key && m.index < regionPool_.size()) {
        const Region &r = regionPool_[m.index];
        if (r.version == m.version)
            region = &r;
    }
    if (!region) {
        std::uint32_t index = regionIndexFor(ctx, vaddr);
        m = RegionMemo{key, index, regionPool_[index].version};
        region = &regionPool_[index];
    }

    Translation result;
    result.version = region->version;
    if (region->superpage) {
        result.size = PageSize::TwoMB;
        result.ppn = region->frame;
    } else {
        result.size = PageSize::FourKB;
        // 512 4 KB pages per 2 MB frame.
        Addr offset_in_region =
            (vaddr >> pageShift(PageSize::FourKB)) & 0x1ff;
        result.ppn = (region->frame << 9) | offset_in_region;
    }
    return result;
}

std::optional<Translation>
PageTable::peek(ContextId ctx, Addr vaddr) const
{
    RegionKey key = regionKey(ctx, vaddr);
    const std::uint32_t *index = regionIndex_.find(key);
    if (!index)
        return std::nullopt;
    const Region &region = regionPool_[*index];
    Translation result;
    result.version = region.version;
    if (region.superpage) {
        result.size = PageSize::TwoMB;
        result.ppn = region.frame;
    } else {
        result.size = PageSize::FourKB;
        Addr offset_in_region =
            (vaddr >> pageShift(PageSize::FourKB)) & 0x1ff;
        result.ppn = (region.frame << 9) | offset_in_region;
    }
    return result;
}

WalkLines
PageTable::walkAddresses(ContextId ctx, Addr vaddr) const
{
    // Synthesize stable, well-distributed page-table-entry line
    // addresses from the VA's per-level indices. Adjacent virtual pages
    // share upper-level entries and usually the same PTE cache line,
    // exactly like a radix table.
    WalkLines lines;

    auto entry_line = [&](WalkLevel level, Addr table_id, Addr index) {
        // 8-byte entries, 64-byte lines -> 8 entries per line.
        Addr table_base = mix((static_cast<std::uint64_t>(ctx) << 3) ^
                              (static_cast<Addr>(level) << 56) ^ table_id)
                          & 0x0000fffffffff000ULL;
        return table_base + ((index >> 3) << 6);
    };

    Addr pml4_idx = (vaddr >> 39) & 0x1ff;
    Addr pdpt_idx = (vaddr >> 30) & 0x1ff;
    Addr pd_idx = (vaddr >> 21) & 0x1ff;
    Addr pt_idx = (vaddr >> 12) & 0x1ff;

    lines.push_back(entry_line(WalkLevel::Pml4, 0, pml4_idx));
    lines.push_back(entry_line(WalkLevel::Pdpt, pml4_idx, pdpt_idx));
    lines.push_back(entry_line(WalkLevel::Pd, (pml4_idx << 9) | pdpt_idx,
                               pd_idx));

    // A 2 MB mapping terminates at the PDE.
    RegionKey key = regionKey(ctx, vaddr);
    const std::uint32_t *index = regionIndex_.find(key);
    bool superpage = index ? regionPool_[*index].superpage
                           : regionWantsSuperpage(ctx, key);
    if (!superpage) {
        lines.push_back(entry_line(
            WalkLevel::Pt,
            (pml4_idx << 18) | (pdpt_idx << 9) | pd_idx, pt_idx));
    }
    return lines;
}

Translation
PageTable::remap(ContextId ctx, Addr vaddr)
{
    Region &region = regionPool_[regionIndexFor(ctx, vaddr)];
    region.frame = nextFrame_++;
    ++region.version;
    return translate(ctx, vaddr);
}

unsigned
PageTable::setRegionSuperpage(ContextId ctx, Addr vaddr, bool promote)
{
    Region &region = regionPool_[regionIndexFor(ctx, vaddr)];
    if (region.superpage == promote)
        return 0;
    region.superpage = promote;
    ++region.version;
    // Promoting (or demoting) rewrites 512 leaf PTEs / one PDE; the
    // paper's storm microbenchmark counts 512 invalidations per change.
    return promote ? 512 : 1;
}

bool
PageTable::isSuperpage(ContextId ctx, Addr vaddr) const
{
    RegionKey key = regionKey(ctx, vaddr);
    if (const std::uint32_t *index = regionIndex_.find(key))
        return regionPool_[*index].superpage;
    return regionWantsSuperpage(ctx, key);
}

void
PageTable::saveState(sim::CkptWriter &w) const
{
    w.u64(nextFrame_);
    w.u64(regionPool_.size());
    for (const Region &region : regionPool_) {
        w.u8(region.superpage ? 1 : 0);
        w.u64(region.frame);
        w.u32(region.version);
    }
    w.u64(regionIndex_.size());
    for (const auto &slot : regionIndex_) {
        w.u64(slot.first);
        w.u32(slot.second);
    }
}

void
PageTable::restoreState(sim::CkptReader &r)
{
    nextFrame_ = r.u64();
    regionPool_.clear();
    std::uint64_t pool = r.u64();
    regionPool_.reserve(pool);
    for (std::uint64_t i = 0; i < pool; ++i) {
        Region region;
        region.superpage = r.u8() != 0;
        region.frame = r.u64();
        region.version = r.u32();
        regionPool_.push_back(region);
    }
    regionIndex_.clear();
    std::uint64_t count = r.u64();
    regionIndex_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        RegionKey key = r.u64();
        std::uint32_t index = r.u32();
        if (index >= regionPool_.size())
            fatal("page table checkpoint: region index ", index,
                  " out of range (pool has ", regionPool_.size(), ")");
        regionIndex_.emplace(key, index);
    }
    // The memo caches (key, pool index, version) triples; stale slots
    // would be version-checked anyway, but start clean.
    memo_.assign(memoSize, RegionMemo{});
}

std::size_t
PageTable::memoryBytes() const
{
    using IndexSlot = FlatMap<RegionKey, std::uint32_t>::Slot;
    return regionPool_.capacity() * sizeof(Region) +
           regionIndex_.capacity() * (sizeof(IndexSlot) + 1) +
           memo_.capacity() * sizeof(RegionMemo);
}

} // namespace nocstar::mem
