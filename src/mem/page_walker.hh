/**
 * @file
 * Hardware page-table walker, one per core.
 *
 * A walk traverses the radix table root-to-leaf. Upper-level entries
 * are cached in per-level paging-structure caches (PSCs, near-free on
 * hit); leaf references are serviced by the data-cache hierarchy model,
 * making walk latency variable as in the paper. A walker handles one
 * walk at a time, so concurrent misses queue -- this is exactly the
 * "page table walker congestion" risk of walking at the remote node
 * (paper §III-F).
 *
 * Table III's fixed-latency sensitivity mode (10/20/40/80 cycles)
 * bypasses the cache model.
 */

#ifndef NOCSTAR_MEM_PAGE_WALKER_HH
#define NOCSTAR_MEM_PAGE_WALKER_HH

#include <cstdint>
#include <deque>
#include <string>

#include "mem/cache_model.hh"
#include "mem/page_table.hh"
#include "sim/flat_map.hh"
#include "sim/random.hh"
#include "sim/stats.hh"

namespace nocstar::mem
{

/** Walker timing configuration. */
struct WalkerConfig
{
    /** If nonzero, every walk takes exactly this many cycles. */
    Cycle fixedLatency = 0;
    /** Paging-structure-cache entries per upper level. */
    std::uint32_t pscEntriesPerLevel = 32;
    /** Cycles per PSC-hit level (tag match, pipelined). */
    Cycle pscHitLatency = 1;
    /**
     * Fault injection: probability a completed walk read a corrupt
     * (ECC) page-table line and must be redone from scratch. Zero
     * (the default) never draws from the random stream.
     */
    double eccRetryProb = 0;
    /** Seed for the ECC draw stream (distinct per walker). */
    std::uint64_t eccSeed = 0;
};

/** Outcome of one page-table walk. */
struct WalkResult
{
    Translation translation;
    /** Cycles spent queued behind an earlier walk on this walker. */
    Cycle queueDelay = 0;
    /** Cycles of the walk itself, excluding queueing. */
    Cycle walkLatency = 0;
    /** Walk references by service point (for energy accounting). */
    unsigned pscHits = 0;
    unsigned l2Refs = 0;
    unsigned llcRefs = 0;
    unsigned dramRefs = 0;
    /** The walk reran for a corrupt page-table read (ECC injection). */
    bool eccRetried = false;

    Cycle totalLatency() const { return queueDelay + walkLatency; }
};

/**
 * One core's page-table walker.
 */
class PageTableWalker : public stats::StatGroup
{
  public:
    PageTableWalker(const std::string &name, CoreId core,
                    PageTable &table, CacheModel &caches,
                    const WalkerConfig &config,
                    stats::StatGroup *parent = nullptr);

    /**
     * Perform a walk starting at @p now on behalf of
     * @p requester_core (equals this walker's core unless the
     * remote-walk policy is in force).
     */
    WalkResult walk(ContextId ctx, Addr vaddr, CoreId requester_core,
                    Cycle now);

    CoreId core() const { return core_; }

    /** Cycle until which the walker is occupied. */
    Cycle busyUntil() const { return busyUntil_; }

    /**
     * Functional-warming walk: updates the PSCs and the cache model's
     * line stores exactly along the walk's reference pattern, but
     * counts no stats, charges no energy and leaves the walker's
     * timing (busyUntil) untouched. Used by fast-forward to keep
     * walker-adjacent state warm without simulating the walk.
     */
    void warmWalk(ContextId ctx, Addr vaddr, Cycle now);

    /** Serialize the PSC state (checkpointing). */
    void saveState(sim::CkptWriter &w) const;

    /** Restore state captured by saveState(). */
    void restoreState(sim::CkptReader &r);

    stats::Scalar walks;
    stats::Scalar walkCycles;
    stats::Scalar queueCycles;
    /** Walks redone because a page-table read hit an ECC error. */
    stats::Scalar eccRewalks;

  private:
    /** Bounded per-level PSC: maps a VA prefix to presence. */
    struct Psc
    {
        std::uint32_t maxEntries = 0;
        FlatMap<std::uint64_t, Cycle> entries;
        std::deque<std::uint64_t> fifo;

        bool probe(std::uint64_t key);
        void fill(std::uint64_t key, Cycle now);
    };

    CoreId core_;
    PageTable &table_;
    CacheModel &caches_;
    WalkerConfig config_;
    Cycle busyUntil_ = 0;
    Psc psc_[3]; ///< PML4 / PDPT / PD levels
    /** ECC draw stream; consulted only when eccRetryProb > 0. */
    Random eccRng_;
};

} // namespace nocstar::mem

#endif // NOCSTAR_MEM_PAGE_WALKER_HH
