/**
 * @file
 * A set-associative TLB array with true-LRU replacement and
 * modulo-indexing on the low-order virtual page number bits (paper
 * §III-E), supporting mixed page sizes in one array via per-size probes.
 *
 * Storage is structure-of-arrays: tags live in a packed 64-bit key
 * array ((vpn, ctx, size) folded into one word, all-ones = invalid)
 * compared across all ways with portable SIMD, recency in a parallel
 * lastUse array scanned branchlessly for victims, and the full
 * TlbEntry payload in a third parallel array touched only on hits.
 * A set's four tags span one 32-byte vector load instead of four
 * 40-byte struct probes, which is where most of the lookup time of
 * the scalar array-of-structs layout went.
 */

#ifndef NOCSTAR_TLB_SET_ASSOC_TLB_HH
#define NOCSTAR_TLB_SET_ASSOC_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/stats.hh"
#include "tlb/tlb_entry.hh"

namespace nocstar::tlb
{

/**
 * Set-associative translation array.
 *
 * The array is size-agnostic: lookups and inserts name an explicit
 * PageSize, and a dual-size lookup helper probes 4 KB then 2 MB the way
 * a dual-granularity L2 TLB does.
 */
class SetAssocTlb : public stats::StatGroup
{
  public:
    /**
     * @param name stat group name.
     * @param entries total entry count (need not be a power of two).
     * @param assoc associativity; entries must divide evenly into sets.
     * @param parent optional owning stat group.
     */
    SetAssocTlb(const std::string &name, std::uint32_t entries,
                std::uint32_t assoc, stats::StatGroup *parent = nullptr);

    /**
     * Probe for a translation of a specific page size.
     * @param update_lru refresh recency on hit (demand accesses do;
     *        snoops / invalidation probes must not).
     * @return the matching entry, or nullptr.
     */
    const TlbEntry *lookup(ContextId ctx, PageNum vpn, PageSize size,
                           bool update_lru = true);

    /**
     * Probe for @p vaddr trying 4 KB then 2 MB then 1 GB granularity.
     * Counts a single access (one pipelined SRAM read).
     */
    const TlbEntry *lookupAnySize(ContextId ctx, Addr vaddr,
                                  bool update_lru = true);

    /**
     * Insert a translation, evicting the set's LRU entry if needed.
     * Re-inserting an existing translation refreshes it in place.
     * @return the evicted valid entry, if any.
     */
    std::optional<TlbEntry> insert(const TlbEntry &entry);

    /**
     * Non-statistical presence check (prefetch filtering, snoops);
     * does not touch recency or hit/miss counters.
     */
    bool present(ContextId ctx, PageNum vpn, PageSize size) const;

    /**
     * Functional-warming probe: behaves like a demand lookup for the
     * array *state* (refreshes recency, consumes the prefetched bit)
     * but counts nothing, so fast-forwarded accesses leave every
     * RunResult-visible statistic untouched.
     */
    const TlbEntry *touch(ContextId ctx, PageNum vpn, PageSize size);

    /** Functional-warming counterpart of lookupAnySize(). */
    const TlbEntry *touchAnySize(ContextId ctx, Addr vaddr);

    /**
     * Serialize the mutable array state (tags, recency, payloads,
     * LRU clock) to @p w. Geometry is written first and checked on
     * restore, so a checkpoint never lands in a mismatched array.
     */
    void saveState(sim::CkptWriter &w) const;

    /** Restore state captured by saveState(). */
    void restoreState(sim::CkptReader &r);

    /** Resident bytes of the SoA storage (memory audit). */
    std::size_t memoryBytes() const;

    /** Invalidate one translation. @return true if it was present. */
    bool invalidate(ContextId ctx, PageNum vpn, PageSize size);

    /** Invalidate everything belonging to @p ctx. @return count. */
    std::uint64_t invalidateContext(ContextId ctx);

    /** Invalidate the whole array (context switch without PCID). */
    std::uint64_t invalidateAll();

    std::uint32_t numEntries() const { return numEntries_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t numSets() const { return numSets_; }

    /** Number of currently valid entries (live counter, O(1)). */
    std::uint64_t occupancy() const { return validCount_; }

    /** Largest VPN a packed tag can hold (46 tag bits). */
    static constexpr PageNum maxVpn = (PageNum{1} << 46) - 1;
    /** Largest context id a packed tag can hold (16 tag bits). */
    static constexpr ContextId maxCtx = (ContextId{1} << 16) - 1;

    // Aggregate statistics (public so organizations can derive rates).
    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar insertions;
    stats::Scalar evictions;
    stats::Scalar invalidations;

    /** Demand hit on an entry brought in by the prefetcher. */
    stats::Scalar prefetchHits;

    double
    missRate() const
    {
        double acc = hits.value() + misses.value();
        return acc > 0 ? misses.value() / acc : 0.0;
    }

  private:
    /**
     * Packed tag word: vpn[63:18] | ctx[17:2] | size[1:0]. The
     * injective encoding makes a whole-way match one 64-bit compare.
     * All-ones marks an empty way; no valid key can collide with it
     * because its size field reads 3 and PageSize stops at 2.
     */
    static constexpr std::uint64_t invalidKey = ~std::uint64_t{0};

    static std::uint64_t
    packKey(ContextId ctx, PageNum vpn, PageSize size)
    {
        return (vpn << 18) |
               (static_cast<std::uint64_t>(ctx) << 2) |
               static_cast<std::uint64_t>(size);
    }

    /** True when (ctx, vpn) exceeds the packed tag's field widths. */
    static bool
    outOfTagRange(ContextId ctx, PageNum vpn)
    {
        return vpn > maxVpn || ctx > maxCtx;
    }

    /** Set index for (vpn, size): modulo indexing on low VPN bits. */
    std::uint32_t setIndex(PageNum vpn, PageSize size) const;

    /** Way holding @p key within @p set, or -1. */
    int findWay(std::uint32_t set, std::uint64_t key) const;

    /** Index into the parallel arrays of (set, way), or -1. */
    int findIndex(ContextId ctx, PageNum vpn, PageSize size) const;

    /** The set's replacement victim: first empty way, else true LRU. */
    std::uint32_t victimWay(std::uint32_t set) const;

    std::uint32_t numEntries_;
    std::uint32_t assoc_;
    std::uint32_t numSets_;
    /** numSets_ - 1 when the set count is a power of two, else 0. */
    std::uint64_t setMask_ = 0;
    /**
     * ceil(2^128 / numSets_) for Lemire's exact remainder-by-multiply
     * (only consulted when numSets_ is not a power of two). A 64-bit
     * divide sits on every probe of every lookup; this replaces it
     * with two multiplies while producing bit-identical indices.
     */
    unsigned __int128 setFastModM_ = 0;
    std::uint64_t lruClock_ = 0;
    std::uint64_t validCount_ = 0;
    /**
     * Packed tags, padded with 3 trailing invalid slots so the last
     * set's 4-lane vector load never reads past the allocation.
     */
    std::vector<std::uint64_t> keys_;
    /**
     * LRU stamps; empty ways hold 0 and valid ways hold >= 1, so one
     * strict min-scan picks the first empty way when any exists and
     * the unique least-recently-used way otherwise.
     */
    std::vector<std::uint64_t> lastUse_;
    /** Full entries, indexed like keys_; read only on hits. */
    std::vector<TlbEntry> payload_;
};

} // namespace nocstar::tlb

#endif // NOCSTAR_TLB_SET_ASSOC_TLB_HH
