/**
 * @file
 * L1 TLB group implementation.
 */

#include "tlb/l1_tlb.hh"

#include <algorithm>
#include <cmath>

namespace nocstar::tlb
{

std::uint32_t
L1TlbGroup::scaled(std::uint32_t n, double scale, std::uint32_t assoc)
{
    auto v = static_cast<std::uint32_t>(
        std::llround(static_cast<double>(n) * scale));
    v = std::max(v, assoc);
    // Keep whole sets.
    v -= v % assoc;
    return std::max(v, assoc);
}

L1TlbGroup::L1TlbGroup(const std::string &name, const L1TlbConfig &config,
                       stats::StatGroup *parent)
    : stats::StatGroup(name, parent)
{
    tlb4k_ = std::make_unique<SetAssocTlb>(
        "l1_4k", scaled(config.entries4k, config.scale, config.assoc4k),
        config.assoc4k, this);
    tlb2m_ = std::make_unique<SetAssocTlb>(
        "l1_2m", scaled(config.entries2m, config.scale, config.assoc2m),
        config.assoc2m, this);
    tlb1g_ = std::make_unique<SetAssocTlb>(
        "l1_1g", scaled(config.entries1g, config.scale, config.assoc1g),
        config.assoc1g, this);
}

SetAssocTlb &
L1TlbGroup::arrayFor(PageSize size)
{
    switch (size) {
      case PageSize::FourKB: return *tlb4k_;
      case PageSize::TwoMB: return *tlb2m_;
      case PageSize::OneGB: return *tlb1g_;
    }
    return *tlb4k_;
}

} // namespace nocstar::tlb
