/**
 * @file
 * Sequential TLB prefetcher: on a demand L2 TLB miss for virtual page V,
 * queue prefetches for V +- 1..distance (Table III; follows the original
 * shared-TLB paper's stride prefetching study, where +-2 was best and
 * more aggressive distances polluted the TLB).
 */

#ifndef NOCSTAR_TLB_PREFETCHER_HH
#define NOCSTAR_TLB_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace nocstar::tlb
{

/** Emits the prefetch candidate VPNs around a missed page. */
class TlbPrefetcher
{
  public:
    /** @param distance 0 disables; N prefetches +-1..N pages. */
    explicit TlbPrefetcher(unsigned distance = 0) : distance_(distance) {}

    unsigned distance() const { return distance_; }

    /**
     * Candidate pages around @p vpn, nearest first, alternating +/-.
     * Never emits the missed page itself; clamps at VPN 0.
     */
    std::vector<PageNum>
    candidates(PageNum vpn) const
    {
        std::vector<PageNum> result;
        result.reserve(2 * distance_);
        for (unsigned d = 1; d <= distance_; ++d) {
            result.push_back(vpn + d);
            if (vpn >= d)
                result.push_back(vpn - d);
        }
        return result;
    }

  private:
    unsigned distance_;
};

} // namespace nocstar::tlb

#endif // NOCSTAR_TLB_PREFETCHER_HH
