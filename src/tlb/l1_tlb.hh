/**
 * @file
 * Per-core L1 TLB group: one array per supported page size, looked up in
 * parallel with the L1 cache (single cycle, VIPT; paper §IV).
 *
 * Haswell-like defaults: 64-entry 4-way for 4 KB pages, 32-entry 4-way
 * for 2 MB, 4-entry fully associative for 1 GB. Fig 6's L1-size
 * sensitivity scales all three arrays by a common factor.
 */

#ifndef NOCSTAR_TLB_L1_TLB_HH
#define NOCSTAR_TLB_L1_TLB_HH

#include <memory>
#include <string>

#include "tlb/set_assoc_tlb.hh"

namespace nocstar::tlb
{

/** Sizing knobs for an L1 TLB group. */
struct L1TlbConfig
{
    std::uint32_t entries4k = 64;
    std::uint32_t assoc4k = 4;
    std::uint32_t entries2m = 32;
    std::uint32_t assoc2m = 4;
    std::uint32_t entries1g = 4;
    std::uint32_t assoc1g = 4;
    /** Multiplier applied to all entry counts (0.5x / 1.5x studies). */
    double scale = 1.0;
};

/**
 * The three per-size L1 arrays behind one lookup interface.
 */
class L1TlbGroup : public stats::StatGroup
{
  public:
    L1TlbGroup(const std::string &name, const L1TlbConfig &config,
               stats::StatGroup *parent = nullptr);

    /**
     * Probe the array for @p size pages only (the page size of a VA is
     * known once translated; on a miss the L2 resolves the real size).
     */
    const TlbEntry *
    lookup(ContextId ctx, PageNum vpn, PageSize size)
    {
        return arrayFor(size).lookup(ctx, vpn, size);
    }

    /** Insert a refill coming back from the L2 / page walker. */
    void
    insert(const TlbEntry &entry)
    {
        arrayFor(entry.size).insert(entry);
    }

    /**
     * Stat-free probe used by functional fast-forward: refreshes LRU
     * exactly like lookup() but counts no hits/misses, so warming
     * leaves the measured stats untouched.
     */
    const TlbEntry *
    touch(ContextId ctx, PageNum vpn, PageSize size)
    {
        return arrayFor(size).touch(ctx, vpn, size);
    }

    /**
     * Stat-free probe of all three arrays without a prior translation
     * (fast-forward hot path: most accesses hit the L1, so resolving
     * the page size first just to pick the array would make the page
     * table the bottleneck). Each array only ever holds entries of its
     * own size, so a hit here mutates exactly what touch() with the
     * translated size would.
     */
    const TlbEntry *
    touchAnySize(ContextId ctx, Addr vaddr)
    {
        if (const TlbEntry *entry = tlb4k_->touch(
                ctx, pageNumber(vaddr, PageSize::FourKB),
                PageSize::FourKB))
            return entry;
        if (const TlbEntry *entry = tlb2m_->touch(
                ctx, pageNumber(vaddr, PageSize::TwoMB),
                PageSize::TwoMB))
            return entry;
        return tlb1g_->touch(ctx, pageNumber(vaddr, PageSize::OneGB),
                             PageSize::OneGB);
    }

    /** Serialize all three arrays (checkpointing). */
    void
    saveState(sim::CkptWriter &w) const
    {
        tlb4k_->saveState(w);
        tlb2m_->saveState(w);
        tlb1g_->saveState(w);
    }

    /** Restore state captured by saveState(). */
    void
    restoreState(sim::CkptReader &r)
    {
        tlb4k_->restoreState(r);
        tlb2m_->restoreState(r);
        tlb1g_->restoreState(r);
    }

    /** Resident bytes of the three arrays (memory audit). */
    std::size_t
    memoryBytes() const
    {
        return tlb4k_->memoryBytes() + tlb2m_->memoryBytes() +
               tlb1g_->memoryBytes();
    }

    /** Invalidate a single translation (shootdown). */
    bool
    invalidate(ContextId ctx, PageNum vpn, PageSize size)
    {
        return arrayFor(size).invalidate(ctx, vpn, size);
    }

    /** Flush everything (context switch without PCID). */
    std::uint64_t
    invalidateAll()
    {
        std::uint64_t n = 0;
        n += tlb4k_->invalidateAll();
        n += tlb2m_->invalidateAll();
        n += tlb1g_->invalidateAll();
        return n;
    }

    std::uint64_t
    demandAccesses() const
    {
        return static_cast<std::uint64_t>(
            tlb4k_->hits.value() + tlb4k_->misses.value() +
            tlb2m_->hits.value() + tlb2m_->misses.value() +
            tlb1g_->hits.value() + tlb1g_->misses.value());
    }

    std::uint64_t
    demandMisses() const
    {
        return static_cast<std::uint64_t>(tlb4k_->misses.value() +
                                          tlb2m_->misses.value() +
                                          tlb1g_->misses.value());
    }

    SetAssocTlb &arrayFor(PageSize size);

  private:
    static std::uint32_t scaled(std::uint32_t n, double scale,
                                std::uint32_t assoc);

    std::unique_ptr<SetAssocTlb> tlb4k_;
    std::unique_ptr<SetAssocTlb> tlb2m_;
    std::unique_ptr<SetAssocTlb> tlb1g_;
};

} // namespace nocstar::tlb

#endif // NOCSTAR_TLB_L1_TLB_HH
