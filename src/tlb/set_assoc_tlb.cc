/**
 * @file
 * Set-associative TLB implementation (structure-of-arrays probes).
 */

#include "tlb/set_assoc_tlb.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "sim/logging.hh"

// Tag probes compare all ways of a set at once through GCC/Clang
// vector extensions; define NOCSTAR_TLB_SCALAR_PROBE (or build with a
// compiler without the extension) to select the scalar loop instead.
// Both paths return identical results.
#if defined(NOCSTAR_TLB_SCALAR_PROBE)
#define NOCSTAR_TLB_SIMD 0
#elif defined(__GNUC__) || defined(__clang__)
#define NOCSTAR_TLB_SIMD 1
#else
#define NOCSTAR_TLB_SIMD 0
#endif

namespace nocstar::tlb
{

SetAssocTlb::SetAssocTlb(const std::string &name, std::uint32_t entries,
                         std::uint32_t assoc, stats::StatGroup *parent)
    : stats::StatGroup(name, parent),
      hits(this, "hits", "demand lookups that hit"),
      misses(this, "misses", "demand lookups that missed"),
      insertions(this, "insertions", "entries written"),
      evictions(this, "evictions", "valid entries displaced by inserts"),
      invalidations(this, "invalidations", "entries removed by shootdown"),
      prefetchHits(this, "prefetch_hits",
                   "demand hits on prefetched entries")
{
    if (entries == 0 || assoc == 0)
        fatal("TLB '", name, "' must have entries and associativity");
    if (assoc > entries) {
        warn_once("TLB '", name, "': associativity ", assoc,
                  " exceeds ", entries, " entries; clamping to ",
                  entries, "-way (fully associative)");
        assoc = entries;
    }
    if (entries % assoc != 0)
        fatal("TLB '", name, "': ", entries,
              " entries not divisible by associativity ", assoc);
    numEntries_ = entries;
    assoc_ = assoc;
    numSets_ = entries / assoc;
    if ((numSets_ & (numSets_ - 1)) == 0)
        setMask_ = numSets_ - 1;
    else
        setFastModM_ = ~static_cast<unsigned __int128>(0) / numSets_ + 1;
    // 3 trailing pad slots keep the vector probe's 4-lane loads inside
    // the allocation for every way of the last set.
    keys_.assign(static_cast<std::size_t>(entries) + 3, invalidKey);
    lastUse_.assign(entries, 0);
    payload_.resize(entries);
}

std::uint32_t
SetAssocTlb::setIndex(PageNum vpn, PageSize size) const
{
    // Hash-mixed index (xor-folded multiplicative hash of the VPN plus
    // a page-size salt). Plain modulo indexing would leave most sets of
    // a shared slice unused, because the slice-interleaving already
    // fixed the low VPN bits: every VPN homed on slice s satisfies
    // vpn % numCores == s, so vpn % numSets could only reach
    // numSets / numCores distinct sets. Mixing restores full set
    // utilization while still being pure virtual-address bits.
    std::uint64_t x = vpn + (static_cast<std::uint64_t>(size) << 60);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    if (setMask_ || numSets_ == 1)
        return static_cast<std::uint32_t>(x & setMask_);
    // x % numSets_ via Lemire-Kaser direct remainder: the low 128 bits
    // of M * x, multiplied by the divisor, carry the remainder in
    // their top 64 bits. Exactly equal to the division for any x.
    unsigned __int128 lowbits = setFastModM_ * x;
    std::uint64_t lo = static_cast<std::uint64_t>(lowbits);
    std::uint64_t hi = static_cast<std::uint64_t>(lowbits >> 64);
    unsigned __int128 p_lo =
        static_cast<unsigned __int128>(lo) * numSets_;
    unsigned __int128 p_hi =
        static_cast<unsigned __int128>(hi) * numSets_ + (p_lo >> 64);
    return static_cast<std::uint32_t>(p_hi >> 64);
}

int
SetAssocTlb::findWay(std::uint32_t set, std::uint64_t key) const
{
    const std::uint64_t *base =
        keys_.data() + static_cast<std::size_t>(set) * assoc_;
#if NOCSTAR_TLB_SIMD
    typedef std::uint64_t KeyVec __attribute__((vector_size(32)));
    const KeyVec probe = {key, key, key, key};
    for (std::uint32_t w = 0; w < assoc_; w += 4) {
        KeyVec lanes;
        std::memcpy(&lanes, base + w, sizeof(lanes));
        auto eq = lanes == probe; // matching lanes read all-ones
        auto mask = static_cast<unsigned>(
            (eq[0] & 1) | (eq[1] & 2) | (eq[2] & 4) | (eq[3] & 8));
        if (std::uint32_t rem = assoc_ - w; rem < 4)
            mask &= (1u << rem) - 1; // lanes past the set's last way
        if (mask)
            return static_cast<int>(w) + std::countr_zero(mask);
    }
    return -1;
#else
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (base[way] == key)
            return static_cast<int>(way);
    }
    return -1;
#endif
}

int
SetAssocTlb::findIndex(ContextId ctx, PageNum vpn, PageSize size) const
{
    if (outOfTagRange(ctx, vpn))
        return -1; // unpackable, so insert() can never have stored it
    std::uint32_t set = setIndex(vpn, size);
    int way = findWay(set, packKey(ctx, vpn, size));
    if (way < 0)
        return -1;
    return static_cast<int>(set * assoc_) + way;
}

std::uint32_t
SetAssocTlb::victimWay(std::uint32_t set) const
{
    // Branchless strict min-scan: empty ways hold stamp 0 and valid
    // ways hold distinct stamps >= 1, so the scan lands on the first
    // empty way when one exists and on the unique LRU way otherwise --
    // the same victim the old first-invalid-else-LRU loop chose.
    const std::uint64_t *use =
        lastUse_.data() + static_cast<std::size_t>(set) * assoc_;
    std::uint32_t victim = 0;
    std::uint64_t best = use[0];
    for (std::uint32_t way = 1; way < assoc_; ++way) {
        bool earlier = use[way] < best;
        victim = earlier ? way : victim;
        best = earlier ? use[way] : best;
    }
    return victim;
}

const TlbEntry *
SetAssocTlb::lookup(ContextId ctx, PageNum vpn, PageSize size,
                    bool update_lru)
{
    int index = findIndex(ctx, vpn, size);
    if (index < 0) {
        ++misses;
        return nullptr;
    }
    ++hits;
    TlbEntry &entry = payload_[static_cast<std::size_t>(index)];
    if (entry.prefetched) {
        ++prefetchHits;
        entry.prefetched = false;
    }
    if (update_lru)
        lastUse_[static_cast<std::size_t>(index)] = ++lruClock_;
    return &entry;
}

const TlbEntry *
SetAssocTlb::lookupAnySize(ContextId ctx, Addr vaddr, bool update_lru)
{
    // One pipelined array read probes all granularities; only count one
    // access. Probe in increasing page-size order.
    static constexpr PageSize sizes[] = {PageSize::FourKB, PageSize::TwoMB,
                                         PageSize::OneGB};
    for (PageSize size : sizes) {
        int index = findIndex(ctx, pageNumber(vaddr, size), size);
        if (index >= 0) {
            ++hits;
            TlbEntry &entry = payload_[static_cast<std::size_t>(index)];
            if (entry.prefetched) {
                ++prefetchHits;
                entry.prefetched = false;
            }
            if (update_lru)
                lastUse_[static_cast<std::size_t>(index)] = ++lruClock_;
            return &entry;
        }
    }
    ++misses;
    return nullptr;
}

std::optional<TlbEntry>
SetAssocTlb::insert(const TlbEntry &entry)
{
    if (!entry.valid)
        panic("inserting invalid TLB entry");
    if (outOfTagRange(entry.ctx, entry.vpn))
        fatal("TLB entry (ctx ", entry.ctx, ", vpn ", entry.vpn,
              ") exceeds the packed tag's field widths (ctx <= ",
              maxCtx, ", vpn <= ", maxVpn, ")");
    ++insertions;

    std::uint32_t set = setIndex(entry.vpn, entry.size);
    std::uint64_t key = packKey(entry.ctx, entry.vpn, entry.size);

    // Refresh in place if already present (e.g. racing fills).
    if (int way = findWay(set, key); way >= 0) {
        std::size_t index = static_cast<std::size_t>(set) * assoc_ +
                            static_cast<std::uint32_t>(way);
        TlbEntry &existing = payload_[index];
        bool was_prefetched = existing.prefetched && entry.prefetched;
        existing = entry;
        existing.prefetched = was_prefetched;
        existing.lastUse = ++lruClock_;
        lastUse_[index] = existing.lastUse;
        return std::nullopt;
    }

    std::uint32_t way = victimWay(set);
    std::size_t index = static_cast<std::size_t>(set) * assoc_ + way;

    std::optional<TlbEntry> evicted;
    if (keys_[index] != invalidKey) {
        ++evictions;
        evicted = payload_[index];
    } else {
        ++validCount_;
    }
    keys_[index] = key;
    payload_[index] = entry;
    payload_[index].lastUse = ++lruClock_;
    lastUse_[index] = payload_[index].lastUse;
    return evicted;
}

bool
SetAssocTlb::present(ContextId ctx, PageNum vpn, PageSize size) const
{
    return findIndex(ctx, vpn, size) >= 0;
}

const TlbEntry *
SetAssocTlb::touch(ContextId ctx, PageNum vpn, PageSize size)
{
    int index = findIndex(ctx, vpn, size);
    if (index < 0)
        return nullptr;
    TlbEntry &entry = payload_[static_cast<std::size_t>(index)];
    entry.prefetched = false;
    lastUse_[static_cast<std::size_t>(index)] = ++lruClock_;
    return &entry;
}

const TlbEntry *
SetAssocTlb::touchAnySize(ContextId ctx, Addr vaddr)
{
    static constexpr PageSize sizes[] = {PageSize::FourKB,
                                         PageSize::TwoMB,
                                         PageSize::OneGB};
    for (PageSize size : sizes) {
        int index = findIndex(ctx, pageNumber(vaddr, size), size);
        if (index >= 0) {
            TlbEntry &entry = payload_[static_cast<std::size_t>(index)];
            entry.prefetched = false;
            lastUse_[static_cast<std::size_t>(index)] = ++lruClock_;
            return &entry;
        }
    }
    return nullptr;
}

void
SetAssocTlb::saveState(sim::CkptWriter &w) const
{
    w.u32(numEntries_);
    w.u32(assoc_);
    w.u64(lruClock_);
    w.u64(validCount_);
    for (std::size_t i = 0; i < numEntries_; ++i) {
        w.u64(keys_[i]);
        w.u64(lastUse_[i]);
        const TlbEntry &e = payload_[i];
        w.u8(e.valid ? 1 : 0);
        w.u64(e.vpn);
        w.u64(e.ppn);
        w.u64(e.ctx);
        w.u8(static_cast<std::uint8_t>(e.size));
        w.u64(e.lastUse);
        w.u8(e.prefetched ? 1 : 0);
    }
}

void
SetAssocTlb::restoreState(sim::CkptReader &r)
{
    std::uint32_t entries = r.u32();
    std::uint32_t assoc = r.u32();
    if (entries != numEntries_ || assoc != assoc_)
        fatal("TLB '", name(), "': checkpoint geometry ", entries, "x",
              assoc, " does not match this array's ", numEntries_, "x",
              assoc_);
    lruClock_ = r.u64();
    validCount_ = r.u64();
    for (std::size_t i = 0; i < numEntries_; ++i) {
        keys_[i] = r.u64();
        lastUse_[i] = r.u64();
        TlbEntry &e = payload_[i];
        e.valid = r.u8() != 0;
        e.vpn = r.u64();
        e.ppn = r.u64();
        e.ctx = static_cast<ContextId>(r.u64());
        e.size = static_cast<PageSize>(r.u8());
        e.lastUse = r.u64();
        e.prefetched = r.u8() != 0;
    }
}

std::size_t
SetAssocTlb::memoryBytes() const
{
    return keys_.capacity() * sizeof(std::uint64_t) +
           lastUse_.capacity() * sizeof(std::uint64_t) +
           payload_.capacity() * sizeof(TlbEntry);
}

bool
SetAssocTlb::invalidate(ContextId ctx, PageNum vpn, PageSize size)
{
    int index = findIndex(ctx, vpn, size);
    if (index < 0)
        return false;
    auto i = static_cast<std::size_t>(index);
    keys_[i] = invalidKey;
    lastUse_[i] = 0;
    payload_[i].valid = false;
    --validCount_;
    ++invalidations;
    return true;
}

std::uint64_t
SetAssocTlb::invalidateContext(ContextId ctx)
{
    if (validCount_ == 0 || ctx > maxCtx)
        return 0; // empty array / a context no tag can encode
    std::uint64_t count = 0;
    std::uint64_t ctx_bits = static_cast<std::uint64_t>(ctx) << 2;
    for (std::size_t i = 0; i < numEntries_; ++i) {
        if (keys_[i] != invalidKey &&
            (keys_[i] & (std::uint64_t{maxCtx} << 2)) == ctx_bits) {
            keys_[i] = invalidKey;
            lastUse_[i] = 0;
            payload_[i].valid = false;
            ++count;
        }
    }
    validCount_ -= count;
    invalidations += static_cast<double>(count);
    return count;
}

std::uint64_t
SetAssocTlb::invalidateAll()
{
    if (validCount_ == 0)
        return 0;
    std::uint64_t count = validCount_;
    std::fill(keys_.begin(), keys_.end(), invalidKey);
    std::fill(lastUse_.begin(), lastUse_.end(), 0);
    for (TlbEntry &entry : payload_)
        entry.valid = false;
    validCount_ = 0;
    invalidations += static_cast<double>(count);
    return count;
}

} // namespace nocstar::tlb
