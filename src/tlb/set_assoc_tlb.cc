/**
 * @file
 * Set-associative TLB implementation.
 */

#include "tlb/set_assoc_tlb.hh"

#include "sim/logging.hh"

namespace nocstar::tlb
{

SetAssocTlb::SetAssocTlb(const std::string &name, std::uint32_t entries,
                         std::uint32_t assoc, stats::StatGroup *parent)
    : stats::StatGroup(name, parent),
      hits(this, "hits", "demand lookups that hit"),
      misses(this, "misses", "demand lookups that missed"),
      insertions(this, "insertions", "entries written"),
      evictions(this, "evictions", "valid entries displaced by inserts"),
      invalidations(this, "invalidations", "entries removed by shootdown"),
      prefetchHits(this, "prefetch_hits",
                   "demand hits on prefetched entries")
{
    if (entries == 0 || assoc == 0)
        fatal("TLB '", name, "' must have entries and associativity");
    if (assoc > entries)
        assoc = entries;
    if (entries % assoc != 0)
        fatal("TLB '", name, "': ", entries,
              " entries not divisible by associativity ", assoc);
    numEntries_ = entries;
    assoc_ = assoc;
    numSets_ = entries / assoc;
    if ((numSets_ & (numSets_ - 1)) == 0)
        setMask_ = numSets_ - 1;
    else
        setFastModM_ = ~static_cast<unsigned __int128>(0) / numSets_ + 1;
    entries_.resize(entries);
}

std::uint32_t
SetAssocTlb::setIndex(PageNum vpn, PageSize size) const
{
    // Hash-mixed index (xor-folded multiplicative hash of the VPN plus
    // a page-size salt). Plain modulo indexing would leave most sets of
    // a shared slice unused, because the slice-interleaving already
    // fixed the low VPN bits: every VPN homed on slice s satisfies
    // vpn % numCores == s, so vpn % numSets could only reach
    // numSets / numCores distinct sets. Mixing restores full set
    // utilization while still being pure virtual-address bits.
    std::uint64_t x = vpn + (static_cast<std::uint64_t>(size) << 60);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    if (setMask_ || numSets_ == 1)
        return static_cast<std::uint32_t>(x & setMask_);
    // x % numSets_ via Lemire-Kaser direct remainder: the low 128 bits
    // of M * x, multiplied by the divisor, carry the remainder in
    // their top 64 bits. Exactly equal to the division for any x.
    unsigned __int128 lowbits = setFastModM_ * x;
    std::uint64_t lo = static_cast<std::uint64_t>(lowbits);
    std::uint64_t hi = static_cast<std::uint64_t>(lowbits >> 64);
    unsigned __int128 p_lo =
        static_cast<unsigned __int128>(lo) * numSets_;
    unsigned __int128 p_hi =
        static_cast<unsigned __int128>(hi) * numSets_ + (p_lo >> 64);
    return static_cast<std::uint32_t>(p_hi >> 64);
}

TlbEntry *
SetAssocTlb::findEntry(ContextId ctx, PageNum vpn, PageSize size)
{
    std::uint32_t set = setIndex(vpn, size);
    TlbEntry *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (base[way].matches(ctx, vpn, size))
            return &base[way];
    }
    return nullptr;
}

const TlbEntry *
SetAssocTlb::lookup(ContextId ctx, PageNum vpn, PageSize size,
                    bool update_lru)
{
    TlbEntry *entry = findEntry(ctx, vpn, size);
    if (!entry) {
        ++misses;
        return nullptr;
    }
    ++hits;
    if (entry->prefetched) {
        ++prefetchHits;
        entry->prefetched = false;
    }
    if (update_lru)
        entry->lastUse = ++lruClock_;
    return entry;
}

const TlbEntry *
SetAssocTlb::lookupAnySize(ContextId ctx, Addr vaddr, bool update_lru)
{
    // One pipelined array read probes all granularities; only count one
    // access. Probe in increasing page-size order.
    static constexpr PageSize sizes[] = {PageSize::FourKB, PageSize::TwoMB,
                                         PageSize::OneGB};
    for (PageSize size : sizes) {
        TlbEntry *entry = findEntry(ctx, pageNumber(vaddr, size), size);
        if (entry) {
            ++hits;
            if (entry->prefetched) {
                ++prefetchHits;
                entry->prefetched = false;
            }
            if (update_lru)
                entry->lastUse = ++lruClock_;
            return entry;
        }
    }
    ++misses;
    return nullptr;
}

std::optional<TlbEntry>
SetAssocTlb::insert(const TlbEntry &entry)
{
    if (!entry.valid)
        panic("inserting invalid TLB entry");
    ++insertions;

    // Refresh in place if already present (e.g. racing fills).
    if (TlbEntry *existing = findEntry(entry.ctx, entry.vpn, entry.size)) {
        bool was_prefetched = existing->prefetched && entry.prefetched;
        *existing = entry;
        existing->prefetched = was_prefetched;
        existing->lastUse = ++lruClock_;
        return std::nullopt;
    }

    std::uint32_t set = setIndex(entry.vpn, entry.size);
    TlbEntry *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    TlbEntry *victim = &base[0];
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (!base[way].valid) {
            victim = &base[way];
            break;
        }
        if (base[way].lastUse < victim->lastUse)
            victim = &base[way];
    }

    std::optional<TlbEntry> evicted;
    if (victim->valid) {
        ++evictions;
        evicted = *victim;
    }
    *victim = entry;
    victim->lastUse = ++lruClock_;
    return evicted;
}

bool
SetAssocTlb::present(ContextId ctx, PageNum vpn, PageSize size) const
{
    std::uint32_t set = setIndex(vpn, size);
    const TlbEntry *base =
        &entries_[static_cast<std::size_t>(set) * assoc_];
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (base[way].matches(ctx, vpn, size))
            return true;
    }
    return false;
}

bool
SetAssocTlb::invalidate(ContextId ctx, PageNum vpn, PageSize size)
{
    if (TlbEntry *entry = findEntry(ctx, vpn, size)) {
        entry->valid = false;
        ++invalidations;
        return true;
    }
    return false;
}

std::uint64_t
SetAssocTlb::invalidateContext(ContextId ctx)
{
    std::uint64_t count = 0;
    for (TlbEntry &entry : entries_) {
        if (entry.valid && entry.ctx == ctx) {
            entry.valid = false;
            ++count;
        }
    }
    invalidations += static_cast<double>(count);
    return count;
}

std::uint64_t
SetAssocTlb::invalidateAll()
{
    std::uint64_t count = 0;
    for (TlbEntry &entry : entries_) {
        if (entry.valid) {
            entry.valid = false;
            ++count;
        }
    }
    invalidations += static_cast<double>(count);
    return count;
}

std::uint64_t
SetAssocTlb::occupancy() const
{
    std::uint64_t count = 0;
    for (const TlbEntry &entry : entries_)
        count += entry.valid ? 1 : 0;
    return count;
}

} // namespace nocstar::tlb
