/**
 * @file
 * TLB entry: one cached virtual-to-physical translation.
 *
 * Matches §III-A of the paper: each entry carries a valid bit, the
 * translation and the context ID associated with it; we additionally tag
 * the page size so one array can concurrently hold 4 KB and 2 MB entries
 * the way Haswell's L2 TLB does.
 */

#ifndef NOCSTAR_TLB_TLB_ENTRY_HH
#define NOCSTAR_TLB_TLB_ENTRY_HH

#include "sim/types.hh"

namespace nocstar::tlb
{

/** One translation as stored in an L1 TLB or L2 TLB slice. */
struct TlbEntry
{
    bool valid = false;
    /** Virtual page number, in units of the entry's own page size. */
    PageNum vpn = 0;
    /** Physical page number, same units. */
    PageNum ppn = 0;
    /** Address-space identifier of the owning process. */
    ContextId ctx = 0;
    PageSize size = PageSize::FourKB;
    /** LRU timestamp maintained by the containing array. */
    std::uint64_t lastUse = 0;
    /** True if brought in by the prefetcher and never yet demanded. */
    bool prefetched = false;

    /** @return true if this entry translates (@p c, @p v, @p s). */
    bool
    matches(ContextId c, PageNum v, PageSize s) const
    {
        return valid && ctx == c && vpn == v && size == s;
    }
};

} // namespace nocstar::tlb

#endif // NOCSTAR_TLB_TLB_ENTRY_HH
