/**
 * @file
 * Full-system model: cores generating address streams through per-core
 * L1 TLBs, a last-level TLB organization, page-table walkers and the
 * walk-reference cache hierarchy -- the simulation the paper's Figures
 * 2, 4-6 and 12-19 are drawn from.
 *
 * Timing model: in-order cores; address translation is on the critical
 * path of every memory access (paper §I), so an L1 TLB miss stalls the
 * issuing thread until the organization returns the translation. All
 * other per-access costs (base CPI, data-side stalls) are per-workload
 * constants, identical across organizations, so speedups isolate the
 * translation path exactly as the paper's methodology does.
 */

#ifndef NOCSTAR_CPU_SYSTEM_HH
#define NOCSTAR_CPU_SYSTEM_HH

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/organization.hh"
#include "energy/translation_energy.hh"
#include "mem/cache_model.hh"
#include "mem/page_table.hh"
#include "mem/page_walker.hh"
#include "sim/event_queue.hh"
#include "sim/latency_histogram.hh"
#include "sim/shard.hh"
#include "tlb/l1_tlb.hh"
#include "workload/generator.hh"
#include "workload/spec.hh"
#include "workload/trace.hh"

namespace nocstar::core
{
class Interconnect;
}

namespace nocstar::cpu
{

/** One application instance in the mix. */
struct AppConfig
{
    workload::WorkloadSpec spec;
    unsigned threads = 1;
    /**
     * If non-empty, thread t replays this trace's thread-t records
     * (looping) instead of drawing from the synthetic generator; the
     * spec still provides the timing parameters (CPI, data stalls)
     * and the prewarm footprint hints.
     */
    std::string traceFile;
};

/**
 * SMARTS-style sampled simulation: long stretches of the access stream
 * run through a functional fast-forward engine (TLB / page-table /
 * cache state updates only -- no event queue, no arbitration, no
 * stats), interleaved with full-detail measurement windows whose
 * per-window samples aggregate into a mean and a 95 % confidence
 * interval. Off (windows == 0) leaves every run path byte-identical
 * to a build without the feature.
 */
struct SamplingConfig
{
    /** Detail measurement windows (0 disables sampling). */
    unsigned windows = 0;
    /** Per-thread detailed accesses measured per window. */
    std::uint64_t detailAccesses = 0;
    /** Mean per-thread accesses fast-forwarded between windows. */
    std::uint64_t ffAccesses = 0;
    /** Per-thread accesses fast-forwarded before the first window. */
    std::uint64_t warmupAccesses = 0;
    /** Seed of the window-placement jitter stream. */
    std::uint64_t seed = 1;

    bool enabled() const { return windows > 0; }
};

/** Full system configuration. */
struct SystemConfig
{
    core::OrgConfig org;
    tlb::L1TlbConfig l1;
    mem::CacheModelConfig caches;
    mem::WalkerConfig walker;

    /** Applications; context id == index into this vector. */
    std::vector<AppConfig> apps;

    unsigned smtPerCore = 1;
    /** Disable transparent superpages (Fig 12's 4 KB-only runs). */
    bool superpages = true;
    std::uint64_t seed = 1;

    /** Cycles charged to a core per foreign PTE fill (Fig 17). */
    Cycle pollutionPenalty = 15;

    /**
     * Hit-streak event-queue bypass: after an L1 TLB hit, keep
     * executing the thread's subsequent accesses inline -- advancing
     * the clock directly -- for as long as the thread's next step
     * would be the very event the queue dispatched next anyway. The
     * schedule is provably identical either way (see DESIGN.md,
     * "anatomy of the hot path"); the flag exists so tests can prove
     * it by running both settings.
     */
    bool stepBypass = true;

    /** Flush all TLBs this often (0 = never; storm runs use 1M). */
    Cycle contextSwitchInterval = 0;
    /** Storm microbenchmark remap period (0 = off). */
    Cycle stormRemapInterval = 0;

    /**
     * Deterministic sharded execution: partition the cores into this
     * many shards, each owning a private timing-wheel EventQueue for
     * its threads' step events, run in parallel inside conservative
     * lookahead windows derived from the organization's minimum
     * completion latency (see DESIGN.md, "conservative lookahead").
     * 0 (the default) selects the legacy single-queue engine,
     * bit-for-bit the pre-shard simulator. Any value >= 1 selects the
     * window engine, whose results are byte-identical at every shard
     * count -- so `--shards 1` is the exactness baseline for
     * `--shards N`, and N is purely a wall-clock knob.
     */
    unsigned shards = 0;
    /** Timed slice-invalidation messages modelled per storm op. */
    unsigned stormMessagesPerOp = 16;
    /** Cycles an IPI pauses each sharer thread. */
    Cycle ipiPauseCycles = 30;

    /**
     * Slice-hotspot microbenchmark (paper §V, "TLB slice
     * microbenchmark"): if >= 0, every thread directs a fraction of
     * its accesses at a small dedicated pool homed on this slice,
     * stressing that slice's ports and paths while the rest of the
     * stream stays normal.
     */
    int hotspotSlice = -1;
    /** Fraction of accesses redirected at the hotspot slice. */
    double hotspotFraction = 0.3;
    /** Pages in the hotspot pool (kept below one slice's capacity). */
    unsigned hotspotPages = 256;

    /**
     * If non-empty, capture every generated address as a trace record
     * keyed by global thread index and save it here after run().
     * Intended for single-app systems whose traces are replayed via
     * AppConfig::traceFile.
     */
    std::string captureTracePath;

    /**
     * Snapshot the whole stats tree every N cycles during run()
     * (0 = off). Snapshots are collected in memory and emitted as the
     * "epochs" array of the stats JSON document.
     */
    Cycle statsEpochInterval = 0;
    /**
     * Reset all stats after each epoch snapshot, turning snapshots
     * into per-interval deltas instead of cumulative totals.
     */
    bool statsEpochReset = false;
    /**
     * If non-empty, append the stats JSON document (one line) to this
     * file after run(). One line per run: a single-run file is a valid
     * JSON document, a sweep's file is JSONL.
     */
    std::string statsJsonPath;

    /**
     * Record per-outcome translation-latency histograms (exact-rank
     * p50/p90/p99/p99.9 over log buckets, <= 1.6 % relative error):
     * one histogram per outcome class -- L1 hit, local L2 hit, remote
     * L2 hit, page walk, ECC re-walk, degraded (mesh-fallback) path --
     * under the "latency" stats child group. Off by default: the
     * group is not even created, so the stats tree and every hot path
     * are byte-identical to a build without the feature.
     */
    bool latencyStats = false;
    /**
     * Additionally keep one all-outcomes histogram per context (the
     * future tenant key) under latency/ctx. Implies latencyStats.
     */
    bool latencyPerContext = false;
    /**
     * Sample observability counter tracks (event-queue depth, in-flight
     * L2 misses, fabric links held, shard window width, busy shard
     * lanes, deferred misses) into the structured trace recorder at
     * most every N cycles (0 = off). Needs an active recorder; samples
     * render as Perfetto "ph":"C" counter tracks.
     */
    Cycle counterInterval = 0;
    /**
     * Emit a one-line wall-clock progress heartbeat to stderr at this
     * period in seconds (< 0 = off, the default; 0 = every check
     * point). When enabled, one final line is always emitted at the
     * end of run(). Zero hot-path cost when off: the legacy engine
     * installs no event at all and the window engine's check is one
     * null-pointer test per window.
     */
    double progressSeconds = -1.0;

    /** Sampled-simulation parameters (off unless windows > 0). */
    SamplingConfig sampling;

    /**
     * If non-empty, save a checkpoint of the warmed functional state
     * here -- taken at the quiescent boundary after prewarm and any
     * sampling warmup, before the first detailed access -- and then
     * continue running normally.
     */
    std::string checkpointSavePath;
    /**
     * If non-empty, restore the warmed state from this checkpoint
     * instead of re-running prewarm / warmup. The checkpoint's config
     * fingerprint must match this configuration.
     */
    std::string checkpointRestorePath;

    /**
     * Field-level configuration errors, one message per violation,
     * including everything OrgConfig::validate() reports (prefixed
     * "org: "). The System constructor fatal()s with the full list.
     */
    std::vector<std::string> validate() const;
};

/** Aggregated outcome of one simulation. */
struct RunResult
{
    /** Slowest thread's finish time (barrier runtime). */
    Cycle cycles = 0;
    /**
     * Mean thread finish time: the fixed-work analogue of fixed-time
     * throughput, used for speedup comparisons because the max is
     * noisy at short run lengths.
     */
    double meanCycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0;

    std::vector<Cycle> appCycles;
    std::vector<double> appIpc;

    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t walks = 0;
    double avgL2AccessLatency = 0;
    double avgWalkLatency = 0;
    double l2MissRate = 0;

    double energyPj = 0;
    double beyondL2Fraction = 0;

    double fabricAvgLatency = 0; ///< NOCSTAR only
    double fabricNoContention = 0; ///< NOCSTAR only
    // Scaling-figure telemetry (NOCSTAR only; zero elsewhere).
    std::uint64_t fabricSetupAttempts = 0;
    std::uint64_t fabricSetupFailures = 0;
    /** setupFailures / setupAttempts. */
    double fabricRetryRate = 0;
    /**
     * Priority-rotation fairness: worst and mean per-source-tile p99
     * grant wait in cycles. Populated only when
     * OrgConfig::recordGrantWait was set.
     */
    double fabricGrantWaitP99Max = 0;
    double fabricGrantWaitP99Mean = 0;

    std::uint64_t shootdowns = 0;
    double avgShootdownLatency = 0;

    // Fault-injection outcomes (all zero without a fault plan).
    /** Fabric outages begun + grants lost. */
    std::uint64_t faultsInjected = 0;
    /** Messages that fell back to the store-and-forward mesh. */
    std::uint64_t degradedMessages = 0;
    /** degradedMessages over all fabric messages. */
    double degradedFraction = 0;
    /** Hits retried for slice ECC + walks redone for table ECC. */
    std::uint64_t eccRewalks = 0;

    /**
     * Fractions of L2 accesses in the paper's concurrency buckets:
     * [1], [2-4], [5-8], [9-12], [13-16], [17-20], [21-24], [25-28],
     * [29+] (Fig 5/6).
     */
    std::vector<double> concurrencyBuckets;
    std::vector<double> sliceConcurrencyBuckets;

    // Sampled-simulation outputs (all zero unless sampling was on).
    bool sampled = false;
    unsigned sampleWindows = 0;
    /** Accesses fast-forwarded functionally instead of simulated. */
    std::uint64_t sampledFfAccesses = 0;
    /** Mean per-window IPC proxy (window instructions / window cycles). */
    double sampledIpcMean = 0;
    /** 95 % confidence half-width around sampledIpcMean (Student t). */
    double sampledIpcCi95 = 0;
    /** Mean per-window average L2 access latency. */
    double sampledLatencyMean = 0;
    double sampledLatencyCi95 = 0;
};

/**
 * The simulated machine.
 */
class System : public stats::StatGroup
{
  public:
    explicit System(const SystemConfig &config);
    ~System() override;

    /**
     * Run until every thread has issued @p accesses_per_thread memory
     * accesses.
     */
    RunResult run(std::uint64_t accesses_per_thread);

    core::TlbOrganization &organization() { return *org_; }
    mem::PageTable &pageTable() { return *pageTable_; }
    EventQueue &queue() { return queue_; }
    tlb::L1TlbGroup &l1Of(CoreId core) { return *l1s_.at(core); }
    const SystemConfig &config() const { return config_; }

    /** Bucket a concurrency Distribution into the paper's 9 bins. */
    static std::vector<double>
    paperBuckets(const stats::Distribution &dist);

    /** Hit-streak bypass coverage (inline accesses per dispatch). */
    const stats::Distribution &bypassStreaks() const
    {
        return bypassStreaks_;
    }

    /**
     * Wall-clock split of the sharded engine's run loop (all zero on
     * the legacy engine), for the Amdahl accounting in
     * BENCH_shard.json: where does a sharded run actually spend host
     * time? Busy counters are summed across shard workers, so they
     * can exceed the wall counters on a parallel crew; barrierNanos
     * is the caller thread's wait after finishing its own shard-0
     * work, i.e. the price of load imbalance.
     */
    struct ShardTiming
    {
        /** Window-loop iterations. */
        std::uint64_t windows = 0;
        /** Phase A wall time (caller side of crew barriers). */
        std::uint64_t stepWallNanos = 0;
        /** Phase A per-shard busy time, summed over shards. */
        std::uint64_t stepBusyNanos = 0;
        /** Parallel pre-probe wall time. */
        std::uint64_t probeWallNanos = 0;
        /** Pre-probe per-shard busy time, summed over shards. */
        std::uint64_t probeBusyNanos = 0;
        /** Caller wait at barriers beyond its own shard-0 work. */
        std::uint64_t barrierNanos = 0;
        /** Mailbox drain + replay injection + lane folds. */
        std::uint64_t drainNanos = 0;
        /** Serial phase B (main-queue uncore) wall time. */
        std::uint64_t uncoreNanos = 0;
        /** Misses whose home-array probe ran on the shard crew. */
        std::uint64_t preProbes = 0;
        /** Misses deferred to window boundaries in total. */
        std::uint64_t deferredMisses = 0;
    };

    const ShardTiming &shardTiming() const { return timing_; }

    /**
     * Write the machine-readable stats document for this system as a
     * single JSON object: `{"epochs":[...],"final":{<stats tree>}}`.
     * Epoch entries are `{"epoch":k,"cycle":c,"stats":{...}}`.
     */
    void dumpStatsJson(std::ostream &out) const;

    /**
     * Per-component resident-byte accounting of the big simulation
     * structures, for the scaling bench's memory audit. Host-side
     * introspection only: taking it never perturbs simulated state.
     */
    struct MemoryAudit
    {
        /** SoA arrays of every L2 slice / bank / private array. */
        std::size_t orgArrayBytes = 0;
        /** SoA arrays of all per-core L1 TLB groups. */
        std::size_t l1Bytes = 0;
        /** Page-table region pool, index map and memo. */
        std::size_t pageTableBytes = 0;
        /** Walk-reference line stores (per-core L2s + LLC). */
        std::size_t cacheModelBytes = 0;
        /** Fabric arbitration state + path tables (NOCSTAR only). */
        std::size_t fabricBytes = 0;
        /** Serialized size of the last checkpoint written (0 if none). */
        std::size_t checkpointBytes = 0;

        std::size_t
        total() const
        {
            return orgArrayBytes + l1Bytes + pageTableBytes +
                   cacheModelBytes + fabricBytes + checkpointBytes;
        }
    };

    MemoryAudit memoryAudit() const;

  private:
    struct HwThread
    {
        /** Addresses pre-drawn from the source per nextBatch() call. */
        static constexpr unsigned addrBatch = 16;

        unsigned app;
        /** Creation-order index among this app's threads. */
        unsigned indexInApp;
        ContextId ctx;
        CoreId core;
        std::unique_ptr<workload::AddressSource> gen;
        std::uint64_t accessesDone = 0;
        /** Per-thread stream for hotspot redirection draws. */
        std::unique_ptr<Random> hotspotRng;
        std::uint64_t quota = 0;
        std::uint64_t instructions = 0;
        double cycleCarry = 0;
        Cycle pendingStall = 0;
        Cycle finishedAt = 0;
        bool finished = false;
        /**
         * Batched address buffer: refilled from gen->nextBatch()
         * (capped at the remaining quota so the source's stream
         * position stays exactly where per-access next() calls would
         * leave it), drained one address per access.
         */
        std::array<Addr, addrBatch> batch;
        unsigned batchPos = 0;
        unsigned batchLen = 0;
    };

    /**
     * Intrusive per-thread step event (gem5 idiom): one reusable
     * instance per hardware thread, rescheduled for every access, so
     * the per-access issue/resume path never touches the lambda-event
     * pool.
     */
    struct StepEvent : Event
    {
        System *sys = nullptr;
        std::size_t threadIndex = 0;

        void
        process() override
        {
            if (sys->split_)
                sys->shardStep(threadIndex);
            else
                sys->step(threadIndex);
        }
    };

    /**
     * An L1 TLB miss raised during a shard's parallel window, parked
     * until the window boundary: the organization (shared uncore
     * state) only runs serially in the drain phase, where the miss is
     * replayed at its original cycle in canonical (cycle, thread)
     * order.
     */
    struct DeferredMiss
    {
        Cycle cycle = 0;
        std::uint32_t thread = 0;
        Addr vaddr = 0;
        /**
         * True when the issuing shard already resolved the page size
         * and probed (and counted) the L1 miss; false when the page
         * table region was unallocated at probe time, which proves the
         * access misses every L1 array, so the whole access -- probe,
         * counting and all -- replays at the boundary instead.
         */
        bool probed = false;
    };

    /** A thread resumption produced by a completion during the serial
     * phase, delivered to the owning shard at the next window start. */
    struct PendingResume
    {
        std::size_t thread;
        Cycle when;
    };

    /** Per-shard stat accumulators, folded (summed as integers, then
     * added once) at every window boundary so the Scalar doubles stay
     * bit-identical at every shard count. The wall-clock fields are
     * host telemetry, not simulation state: they accumulate across
     * the whole run and never feed back into results. */
    struct ShardLane
    {
        std::uint64_t l1Accesses = 0;
        std::uint64_t l1Misses = 0;
        /** Busy nanoseconds running this shard's phase A windows. */
        std::uint64_t stepNanos = 0;
        /** Busy nanoseconds running this shard's pre-probe lists. */
        std::uint64_t probeNanos = 0;
        /** Pre-probes this shard executed. */
        std::uint64_t probes = 0;
        /**
         * L1 hits per context this window (sized only when per-context
         * latency histograms are on), folded in context order at the
         * boundary so per-ctx hit counts are shard-count invariant.
         */
        std::vector<std::uint64_t> hitsByCtx;
    };

    /** Outcome class of one translation, for the latency histograms.
     * Classification priority on a completed miss: degraded >
     * eccRewalk > walked > remote hit > local hit. */
    enum class LatClass : unsigned
    {
        L1Hit,       ///< L1 TLB hit (latency 0: overlapped with cache)
        L2HitLocal,  ///< LLTLB hit in a co-located slice/bank
        L2HitRemote, ///< LLTLB hit that crossed the interconnect
        Walk,        ///< page walk on the critical path
        EccRewalk,   ///< ECC-corrupt read forced a retry / re-walk
        Degraded,    ///< a leg fell back to the store-and-forward mesh
    };

    /**
     * The "latency" stats child group: per-outcome translation-latency
     * histograms plus (optionally) one all-outcomes histogram per
     * context. Created only when SystemConfig::latencyStats (or
     * latencyPerContext) is set, so the stats tree is unchanged
     * otherwise.
     */
    struct LatencyStats : stats::StatGroup
    {
        LatencyStats(stats::StatGroup *parent, std::size_t contexts);

        stats::Histogram l1Hit;
        stats::Histogram l2HitLocal;
        stats::Histogram l2HitRemote;
        stats::Histogram walk;
        stats::Histogram eccRewalk;
        stats::Histogram degraded;
        /** Non-null only with latencyPerContext: "ctx" child group. */
        std::unique_ptr<stats::StatGroup> ctxGroup;
        /** One all-outcomes histogram per context (may be empty). */
        std::vector<std::unique_ptr<stats::Histogram>> byCtx;

        stats::Histogram &of(LatClass c);
    };

    /** Wall-clock heartbeat state (allocated only when enabled). */
    struct Progress
    {
        std::chrono::steady_clock::time_point start;
        std::chrono::steady_clock::time_point lastEmit;
        Cycle lastCycle = 0;
        std::uint64_t lastAccesses = 0;
        std::uint64_t totalQuota = 0;
    };

    /** A crew worker parked on (or woke from) the window condvar. */
    struct ParkEvent
    {
        unsigned shard;
        bool parked;
        Cycle at;
    };

    /** The "sampling" stats child group, created only when sampling
     * is enabled so the stats tree is unchanged otherwise. */
    struct SamplingStats : stats::StatGroup
    {
        explicit SamplingStats(stats::StatGroup *parent);

        stats::Scalar windows;
        stats::Scalar ffAccesses;
        stats::Scalar ipcMean;
        stats::Scalar ipcCi95;
        stats::Scalar latencyMean;
        stats::Scalar latencyCi95;
    };

    /** Preload steady-state resident translations (see system.cc). */
    void prewarm();

    /**
     * The one state-touching install path shared by prewarm() and the
     * fast-forward engine: home L2 structure via the organization's
     * preload hooks, optionally the requesting core's L1 group.
     */
    void warmInstall(CoreId core, ContextId ctx, Addr vaddr,
                     const mem::Translation &t, bool into_l1);

    /**
     * Functionally fast-forward every unfinished thread by
     * @p accesses each: batched addresses stream through the L1 / L2 /
     * page-table / walker-cache state updates only -- no event queue,
     * no arbitration, no timing, no stats -- then the clock advances
     * by the threads' nominal (stall-free) cycles so retention TTLs
     * age as they would under detailed simulation.
     */
    void fastForward(std::uint64_t accesses);

    /** One functional access of @p thread at clock @p now. */
    void fastForwardAccess(HwThread &thread, Cycle now);

    /** Run the configured engine until all queues drain. */
    void drive();

    /** Schedule the per-run events and stats plumbing shared by the
     * detailed and sampled run paths. */
    void beginRun(std::uint64_t total_quota);

    /** Build the RunResult from the accumulated state (run() tail). */
    RunResult finishRun();

    /** The sampled-simulation run loop (sampling.enabled()). */
    RunResult runSampled(std::uint64_t accesses_per_thread);

    /**
     * FNV-1a fingerprint over every configuration field that shapes
     * the functional state a checkpoint carries (array geometry,
     * stream seeds, workload layout). Guards restore against a
     * mismatched configuration.
     */
    std::uint64_t configFingerprint() const;

    /** Serialize the warmed functional state to @p path. */
    void saveCheckpoint(const std::string &path);

    /** Restore state saved by saveCheckpoint() (fatal on mismatch). */
    void restoreCheckpoint(const std::string &path);

    /** Issue one access for @p thread at the current cycle. */
    void step(std::size_t thread_index);

    /**
     * Sharded-engine analogue of step(), run on a shard worker during
     * the parallel window phase: hits execute inline against
     * shard-owned state only (thread, per-core L1 arrays, per-shard
     * lanes, read-only page-table peeks); any miss parks the thread in
     * the deferred-miss mailbox for serial replay.
     */
    void shardStep(std::size_t thread_index);

    /**
     * Replay one deferred miss through the organization (serial).
     * @param probe the home-array probe result the shard crew took in
     * the parallel pre-probe phase, or nullptr to probe live.
     */
    void replayMiss(const DeferredMiss &miss,
                    const core::ProbeResult *probe = nullptr);

    /** Window loop of the sharded engine (replaces queue_.run()). */
    void driveSharded();

    /** Schedule the next step of @p thread at @p when. */
    void scheduleStep(std::size_t thread_index, Cycle when);

    /** Burst cost (instructions + data stalls) for one access. */
    Cycle burstCycles(HwThread &thread);

    Addr nextAddress(HwThread &thread);

    void installContextSwitchEvent();
    void installStormEvent();
    void stormOp();
    void installEpochEvent();

    /**
     * Classify and record one completed L1-miss translation into the
     * latency histograms (no-op when they are off). @p issued is the
     * cycle the access missed in the L1.
     */
    void recordMissLatency(std::size_t thread_index,
                           const core::TranslationResult &result,
                           Cycle issued);

    /** Sample the observability counter tracks at cycle @p at (the
     * caller has already checked recording() and the interval). */
    void sampleCounters(Cycle at);

    /** Periodic counter-sampling / heartbeat events (legacy engine). */
    void installCounterEvent();
    void installProgressEvent();

    /** Emit a heartbeat line if the wall-clock period elapsed (or
     * @p force); no-op when the heartbeat is off. */
    void maybeProgress(bool force = false);

    /** Drain crew park/wake events into the trace recorder (serial
     * phases only; workers may append concurrently). */
    void flushParkEvents();

    SystemConfig config_;
    EventQueue queue_;
    std::unique_ptr<mem::PageTable> pageTable_;
    std::unique_ptr<mem::CacheModel> caches_;
    std::vector<std::unique_ptr<mem::PageTableWalker>> walkers_;
    std::vector<std::unique_ptr<tlb::L1TlbGroup>> l1s_;
    energy::TranslationEnergyModel energy_;
    std::unique_ptr<core::TlbOrganization> org_;
    std::vector<HwThread> threads_;
    /** Events are pinned (non-movable), hence the deque. */
    std::deque<StepEvent> stepEvents_;
    std::vector<std::vector<std::size_t>> threadsOfCore_;
    /** Cores running each context's threads (storm sharer lists). */
    std::vector<std::vector<CoreId>> ctxSharers_;
    /** Loaded replay traces (one per app; own the record storage). */
    std::vector<std::unique_ptr<workload::TraceFile>> traces_;
    /** Capture sink when captureTracePath is set. */
    std::unique_ptr<workload::TraceFile> capture_;
    /** Atomic because shard workers retire threads concurrently; only
     * read in serial phases, so relaxed ops suffice. */
    std::atomic<unsigned> unfinished_{0};
    Random rng_;

    // Sharded-engine state (empty/null when config_.shards == 0).
    /** True when the window engine replaces the legacy single queue. */
    bool split_ = false;
    /** One private step-event queue per shard. */
    std::vector<std::unique_ptr<EventQueue>> shardQueues_;
    /** Owning shard of each hardware thread (by its core's range). */
    std::vector<unsigned> shardOfThread_;
    std::vector<ShardLane> lanes_;
    std::unique_ptr<sim::ShardMailboxes<DeferredMiss>> deferred_;
    /** Resumptions emitted by the current serial phase, delivered at
     * max(when, windowEnd_ + 1) before the next parallel phase. */
    std::vector<PendingResume> pendingResumes_;
    /** Inclusive end of the current window (bypass clamp, resume floor). */
    Cycle windowEnd_ = 0;
    /** Owning shard of each home array (contiguous index ranges). */
    std::vector<unsigned> shardOfArray_;
    /** This window's deferred misses in canonical (cycle, thread)
     * order; indices below are into this vector. */
    std::vector<DeferredMiss> replayBatch_;
    /** Pre-probe outcome per batch entry (valid iff probeTaken_). */
    std::vector<core::ProbeResult> probeResults_;
    std::vector<std::uint8_t> probeTaken_;
    /** Per-shard worklists of batch indices, each shard's in
     * canonical order (the batch itself is sorted). */
    std::vector<std::vector<std::uint32_t>> probePlan_;
    /** Wall-clock split of the window loop (see ShardTiming). */
    ShardTiming timing_;

    // Sampled-simulation / checkpoint state (inert unless configured).
    /** Sampling stats group; null unless sampling is enabled. */
    std::unique_ptr<SamplingStats> samplingStats_;
    /** Serialized size of the last checkpoint written (memory audit). */
    std::size_t checkpointBytes_ = 0;
    /** Total accesses fast-forwarded functionally this run. */
    std::uint64_t ffAccessesDone_ = 0;

    // Observability state (all null / inert unless configured).
    /** Latency histograms; null unless latencyStats/latencyPerContext. */
    std::unique_ptr<LatencyStats> latency_;
    /** Heartbeat bookkeeping; null unless progressSeconds >= 0. */
    std::unique_ptr<Progress> progress_;
    /** Next cycle at or after which counter tracks may sample again. */
    Cycle nextCounterAt_ = 0;
    /** Fabric of a NOCSTAR org, for the links-held counter track. */
    core::Interconnect *counterFabric_ = nullptr;
    /** Crew park/wake events, appended by worker threads under the
     * mutex and drained into the recorder by the caller thread. */
    std::vector<ParkEvent> parkEvents_;
    std::mutex parkMutex_;
    /** Approximate cycle stamp for park/wake instants (workers cannot
     * read a queue clock racily; the window end is close enough). */
    std::atomic<Cycle> windowEndHint_{0};

    stats::Scalar l1Accesses_;
    stats::Scalar l1Misses_;
    stats::Scalar pollutionStalls_;
    /**
     * Accesses executed inline per dispatched step (0 = the bypass
     * never fired for that dispatch), so its coverage is observable.
     */
    stats::Distribution bypassStreaks_;

    // Storm state.
    std::uint64_t stormRegionCursor_ = 0;
    bool stormPromote_ = true;

    /** Epoch snapshots taken during run(), already JSON-rendered. */
    std::vector<std::string> epochSnapshots_;
};

} // namespace nocstar::cpu

#endif // NOCSTAR_CPU_SYSTEM_HH
