/**
 * @file
 * System implementation.
 */

#include "cpu/system.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/nocstar_org.hh"
#include "energy/sram_model.hh"
#include "sim/checkpoint.hh"
#include "sim/trace_recorder.hh"

namespace nocstar::cpu
{

System::LatencyStats::LatencyStats(stats::StatGroup *parent,
                                   std::size_t contexts)
    : stats::StatGroup("latency", parent),
      l1Hit(this, "l1_hit", "translation latency: L1 TLB hits"),
      l2HitLocal(this, "l2_hit_local",
                 "translation latency: local LLTLB hits"),
      l2HitRemote(this, "l2_hit_remote",
                  "translation latency: remote LLTLB hits"),
      walk(this, "walk", "translation latency: page walks"),
      eccRewalk(this, "ecc_rewalk",
                "translation latency: ECC retry / re-walk paths"),
      degraded(this, "degraded",
               "translation latency: mesh-fallback (degraded) paths")
{
    if (contexts) {
        ctxGroup = std::make_unique<stats::StatGroup>("ctx", this);
        byCtx.reserve(contexts);
        for (std::size_t c = 0; c < contexts; ++c)
            byCtx.push_back(std::make_unique<stats::Histogram>(
                ctxGroup.get(), "ctx" + std::to_string(c),
                "translation latency: context " + std::to_string(c) +
                    ", all outcomes"));
    }
}

stats::Histogram &
System::LatencyStats::of(LatClass c)
{
    switch (c) {
      case LatClass::L1Hit:
        return l1Hit;
      case LatClass::L2HitLocal:
        return l2HitLocal;
      case LatClass::L2HitRemote:
        return l2HitRemote;
      case LatClass::Walk:
        return walk;
      case LatClass::EccRewalk:
        return eccRewalk;
      case LatClass::Degraded:
        return degraded;
    }
    return l1Hit; // unreachable
}

System::SamplingStats::SamplingStats(stats::StatGroup *parent)
    : stats::StatGroup("sampling", parent),
      windows(this, "windows", "detail measurement windows completed"),
      ffAccesses(this, "ff_accesses",
                 "accesses fast-forwarded functionally"),
      ipcMean(this, "ipc_mean", "mean per-window IPC proxy"),
      ipcCi95(this, "ipc_ci95",
              "95% confidence half-width around ipc_mean"),
      latencyMean(this, "latency_mean",
                  "mean per-window average L2 access latency"),
      latencyCi95(this, "latency_ci95",
                  "95% confidence half-width around latency_mean")
{}

namespace
{

/**
 * Two-sided 97.5 % Student-t quantiles for df = 1..30; beyond 30 the
 * normal approximation is within 2 %. Hardcoded so the CI math draws
 * nothing from any simulation stream.
 */
constexpr double kT975[30] = {
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
    2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
    2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
    2.060,  2.056, 2.052, 2.048, 2.045, 2.042};

double
tQuantile975(std::size_t df)
{
    if (df == 0)
        return 0.0;
    return df <= 30 ? kT975[df - 1] : 1.960;
}

/** Sample mean and 95 % confidence half-width (Student t). */
std::pair<double, double>
meanCi95(const std::vector<double> &xs)
{
    if (xs.empty())
        return {0.0, 0.0};
    double sum = 0;
    for (double x : xs)
        sum += x;
    double mean = sum / static_cast<double>(xs.size());
    if (xs.size() < 2)
        return {mean, 0.0};
    double ss = 0;
    for (double x : xs)
        ss += (x - mean) * (x - mean);
    double var = ss / static_cast<double>(xs.size() - 1);
    double half = tQuantile975(xs.size() - 1) *
                  std::sqrt(var / static_cast<double>(xs.size()));
    return {mean, half};
}

} // namespace

std::vector<std::string>
SystemConfig::validate() const
{
    std::vector<std::string> errors;
    for (const std::string &e : org.validate())
        errors.push_back("org: " + e);

    if (apps.empty())
        errors.push_back("needs at least one application");
    std::uint64_t total_threads = 0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        if (apps[a].threads == 0)
            errors.push_back(strCat("app #", a,
                                    ": threads must be >= 1"));
        total_threads += apps[a].threads;
    }
    std::uint64_t slots = static_cast<std::uint64_t>(org.numCores) *
                          std::max(1u, smtPerCore);
    if (org.numCores > 0 && total_threads > slots)
        errors.push_back(strCat("total threads (", total_threads,
                                ") exceed SMT slots (", slots, ")"));
    if (hotspotFraction < 0.0 || hotspotFraction > 1.0)
        errors.push_back(strCat("hotspotFraction ", hotspotFraction,
                                " outside [0, 1]"));
    if (hotspotSlice >= 0 &&
        static_cast<unsigned>(hotspotSlice) >= org.numCores)
        errors.push_back(strCat("hotspotSlice ", hotspotSlice,
                                " beyond the last core (",
                                org.numCores, " cores)"));
    if (walker.eccRetryProb < 0.0 || walker.eccRetryProb > 1.0)
        errors.push_back(strCat("walker.eccRetryProb ",
                                walker.eccRetryProb, " outside [0, 1]"));
    if (shards > org.numCores)
        errors.push_back(strCat("shards (", shards,
                                ") exceed the tile count (",
                                org.numCores, ")"));
    if (shards >= 1 && !captureTracePath.empty())
        errors.push_back("captureTracePath requires the legacy engine "
                         "(shards = 0): addresses are consumed inside "
                         "parallel shard windows");

    if (sampling.enabled()) {
        if (sampling.windows < 2)
            errors.push_back(strCat(
                "sampling.windows (", sampling.windows,
                ") must be >= 2: a confidence interval needs at least "
                "two samples"));
        if (sampling.detailAccesses == 0)
            errors.push_back("sampling.detailAccesses must be >= 1");
    }
    if (sampling.enabled() || sampling.warmupAccesses > 0 ||
        !checkpointSavePath.empty() || !checkpointRestorePath.empty()) {
        const char *what = sampling.enabled() ? "sampled simulation"
                           : sampling.warmupAccesses > 0
                               ? "fast-forward warming"
                               : "checkpointing";
        // These features schedule state at absolute cycles or consume
        // extra RNG draws outside the serialized/fast-forwarded state,
        // so they would silently break the exactness guarantees.
        if (contextSwitchInterval != 0)
            errors.push_back(strCat(what,
                                    " cannot run with "
                                    "contextSwitchInterval"));
        if (stormRemapInterval != 0)
            errors.push_back(strCat(what,
                                    " cannot run with "
                                    "stormRemapInterval"));
        if (statsEpochInterval != 0)
            errors.push_back(strCat(what,
                                    " cannot run with "
                                    "statsEpochInterval"));
        if (!captureTracePath.empty())
            errors.push_back(strCat(what,
                                    " cannot run with "
                                    "captureTracePath"));
        if (!org.faults.empty())
            errors.push_back(strCat(what,
                                    " cannot run with a fault plan"));
    }
    return errors;
}

System::System(const SystemConfig &config)
    : stats::StatGroup("system"),
      config_(config),
      rng_(config.seed ^ 0x5915ca9fULL),
      l1Accesses_(this, "l1_accesses", "L1 TLB demand accesses"),
      l1Misses_(this, "l1_misses", "L1 TLB demand misses"),
      pollutionStalls_(this, "pollution_stalls",
                       "cycles charged for foreign PTE fills"),
      bypassStreaks_(this, "bypass_streak_length",
                     "accesses executed inline per dispatched step",
                     0, 63, 1)
{
    if (std::vector<std::string> errors = config.validate();
        !errors.empty())
        fatal("invalid system config:",
              core::joinConfigErrors(errors));
    unsigned cores = config.org.numCores;

    pageTable_ = std::make_unique<mem::PageTable>(0.0, config.seed);
    for (std::size_t a = 0; a < config.apps.size(); ++a) {
        double fraction = config.superpages
            ? config.apps[a].spec.superpageFraction : 0.0;
        pageTable_->setContextSuperpageFraction(
            static_cast<ContextId>(a), fraction);
    }

    caches_ = std::make_unique<mem::CacheModel>("caches", cores,
                                                config.caches, this);
    caches_->setForeignFillHook([this](CoreId core) {
        // Charge the pollution penalty to a thread on the polluted core.
        auto &victims = threadsOfCore_.at(core);
        if (victims.empty())
            return;
        HwThread &victim = threads_[victims[0]];
        victim.pendingStall += config_.pollutionPenalty;
        pollutionStalls_ += static_cast<double>(config_.pollutionPenalty);
    });

    core::OrgContext org_ctx;
    org_ctx.queue = &queue_;
    org_ctx.pageTable = pageTable_.get();
    org_ctx.energy = &energy_;
    mem::WalkerConfig walker_config = config.walker;
    if (config.org.faults.walkEccProb > 0)
        walker_config.eccRetryProb = config.org.faults.walkEccProb;
    for (CoreId c = 0; c < cores; ++c) {
        // Distinct per-walker ECC stream, derived from the plan seed
        // so a fixed (plan, seed) pair replays exactly.
        walker_config.eccSeed =
            config.org.faults.seed ^
            (static_cast<std::uint64_t>(
                 sim::FaultInjector::Stream::WalkEcc)
             << 32) ^
            (c * 0x9e3779b97f4a7c15ULL + 1);
        walkers_.push_back(std::make_unique<mem::PageTableWalker>(
            "walker" + std::to_string(c), c, *pageTable_, *caches_,
            walker_config, this));
        org_ctx.walkers.push_back(walkers_.back().get());
        l1s_.push_back(std::make_unique<tlb::L1TlbGroup>(
            "l1_core" + std::to_string(c), config.l1, this));
    }
    org_ctx.l1Invalidate = [this](CoreId core, ContextId ctx, PageNum vpn,
                                  PageSize size) {
        l1s_.at(core)->invalidate(ctx, vpn, size);
    };
    org_ctx.l1Flush = [this](CoreId core) {
        l1s_.at(core)->invalidateAll();
    };

    org_ = core::makeOrganization(config.org, std::move(org_ctx), this);

    if (config.latencyStats || config.latencyPerContext)
        latency_ = std::make_unique<LatencyStats>(
            this, config.latencyPerContext ? config.apps.size() : 0);
    if (config.sampling.enabled())
        samplingStats_ = std::make_unique<SamplingStats>(this);
    if (auto *nocstar = dynamic_cast<core::NocstarOrg *>(org_.get()))
        counterFabric_ = &nocstar->fabric();

    // Thread placement: spread threads across cores first, then fill
    // SMT slots, exactly one app context per thread.
    threadsOfCore_.resize(cores);
    ctxSharers_.resize(config.apps.size());
    traces_.resize(config.apps.size());
    unsigned slot = 0;
    unsigned max_slots = cores * std::max(1u, config.smtPerCore);
    for (std::size_t a = 0; a < config.apps.size(); ++a) {
        const AppConfig &app = config.apps[a];
        if (!app.traceFile.empty())
            traces_[a] = std::make_unique<workload::TraceFile>(
                workload::TraceFile::load(app.traceFile));
        for (unsigned t = 0; t < app.threads; ++t) {
            if (slot >= max_slots)
                fatal("more threads than SMT slots (",
                      max_slots, ")");
            HwThread thread;
            thread.app = static_cast<unsigned>(a);
            thread.indexInApp = t;
            thread.ctx = static_cast<ContextId>(a);
            thread.core = static_cast<CoreId>(slot % cores);
            if (traces_[a])
                thread.gen = traces_[a]->sourceFor(t);
            else
                thread.gen =
                    std::make_unique<workload::AccessGenerator>(
                        app.spec, thread.ctx, t, config.seed);
            if (config.hotspotSlice >= 0)
                thread.hotspotRng = std::make_unique<Random>(
                    config.seed ^ (0x4075ULL) ^
                    (static_cast<std::uint64_t>(slot) << 20));
            threadsOfCore_[thread.core].push_back(threads_.size());
            threads_.push_back(std::move(thread));
            ++slot;
        }
    }
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        StepEvent &ev = stepEvents_.emplace_back();
        ev.sys = this;
        ev.threadIndex = i;
        // Sharer lists for shootdowns, in thread-creation order as
        // stormOp built them before.
        auto &sharers = ctxSharers_[threads_[i].ctx];
        if (std::find(sharers.begin(), sharers.end(),
                      threads_[i].core) == sharers.end())
            sharers.push_back(threads_[i].core);
    }
    if (!config.captureTracePath.empty())
        capture_ = std::make_unique<workload::TraceFile>();

    if (config.shards >= 1) {
        // Window engine: contiguous core ranges per shard, so the SMT
        // threads of one core always share a queue (their same-cycle
        // dispatch order is a per-queue property).
        split_ = true;
        unsigned shards = config.shards;
        for (unsigned s = 0; s < shards; ++s)
            shardQueues_.push_back(std::make_unique<EventQueue>());
        lanes_.assign(shards, ShardLane{});
        if (latency_ && !latency_->byCtx.empty())
            for (ShardLane &lane : lanes_)
                lane.hitsByCtx.assign(config.apps.size(), 0);
        deferred_ =
            std::make_unique<sim::ShardMailboxes<DeferredMiss>>(shards);
        shardOfThread_.reserve(threads_.size());
        for (const HwThread &thread : threads_)
            shardOfThread_.push_back(static_cast<unsigned>(
                static_cast<std::uint64_t>(thread.core) * shards /
                cores));
    }
}

System::~System() = default;

Addr
System::nextAddress(HwThread &thread)
{
    if (thread.hotspotRng &&
        thread.hotspotRng->chance(config_.hotspotFraction)) {
        // Slice-hotspot microbenchmark: a draw from the small shared
        // pool whose pages all home on the target slice.
        unsigned n = config_.org.numCores;
        PageNum page = thread.hotspotRng->below(config_.hotspotPages);
        PageNum vpn = ((0x0300000000ULL + page) * n +
                       static_cast<PageNum>(config_.hotspotSlice) % n);
        return vpn << pageShift(PageSize::FourKB);
    }
    // Generator draws and hotspot draws come from separate streams, so
    // pre-drawing a batch leaves every consumed address identical to
    // per-access next() calls; capping the refill at the remaining
    // quota keeps a capturable/replayable stream position too.
    if (thread.batchPos == thread.batchLen) {
        std::uint64_t remaining = thread.quota - thread.accessesDone + 1;
        auto n = static_cast<unsigned>(std::min<std::uint64_t>(
            HwThread::addrBatch, remaining));
        thread.gen->nextBatch(thread.batch.data(), n);
        thread.batchPos = 0;
        thread.batchLen = n;
    }
    Addr raw = thread.batch[thread.batchPos++];
    if (capture_) {
        // Capture at consumption, so the trace holds exactly the
        // addresses the run used, in issue order per thread.
        auto index = static_cast<unsigned>(&thread - threads_.data());
        capture_->append(index, raw);
    }
    return raw;
}

Cycle
System::burstCycles(HwThread &thread)
{
    const workload::WorkloadSpec &spec = config_.apps[thread.app].spec;
    double cost = spec.instructionsPerAccess * spec.baseCpi +
                  spec.dataStallPerAccess + thread.cycleCarry;
    auto whole = static_cast<Cycle>(cost);
    thread.cycleCarry = cost - static_cast<double>(whole);
    thread.instructions +=
        static_cast<std::uint64_t>(spec.instructionsPerAccess);
    Cycle stall = thread.pendingStall;
    thread.pendingStall = 0;
    return whole + stall;
}

void
System::scheduleStep(std::size_t thread_index, Cycle when)
{
    // Each thread has at most one step in flight, so its intrusive
    // event is always free for reuse here.
    if (split_)
        shardQueues_[shardOfThread_[thread_index]]->schedule(
            &stepEvents_[thread_index], when);
    else
        queue_.schedule(&stepEvents_[thread_index], when);
}

void
System::step(std::size_t thread_index)
{
    HwThread &thread = threads_[thread_index];
    Cycle now = queue_.curCycle();
    std::uint64_t streak = 0;

    // Hit-streak bypass: after an L1 hit the only pending work of this
    // thread is its own next step. When the queue is quiet until that
    // cycle (no record, live or stale, anywhere in the window -- so
    // the step event we would schedule is exactly the event the wheel
    // would dispatch next), executing it inline and advancing the
    // clock directly is schedule-identical; see DESIGN.md. Any L1
    // miss, exhausted quota or intervening event falls back to the
    // queue.
    for (;;) {
        if (thread.accessesDone >= thread.quota) {
            if (!thread.finished) {
                thread.finished = true;
                thread.finishedAt = now;
                --unfinished_;
            }
            break;
        }
        ++thread.accessesDone;

        Addr vaddr = nextAddress(thread);
        mem::Translation t = pageTable_->translate(thread.ctx, vaddr);
        PageNum vpn = pageNumber(vaddr, t.size);

        ++l1Accesses_;
        energy_.addL1Lookup();
        const tlb::TlbEntry *l1_hit =
            l1s_[thread.core]->lookup(thread.ctx, vpn, t.size);

        if (!l1_hit) {
            ++l1Misses_;
            TRACE(System, "thread ", thread_index, " core ", thread.core,
                  " L1 miss vaddr 0x", std::hex, vaddr, std::dec);
            org_->translate(
                thread.core, thread.ctx, vaddr, now,
                [this, thread_index, vaddr,
                 now](const core::TranslationResult &result) {
                    HwThread &th = threads_[thread_index];
                    recordMissLatency(thread_index, result, now);
                    if (sim::recording())
                        sim::recorder().span(
                            sim::Lane::Translation, th.core,
                            result.walked        ? "translation (walk)"
                                : result.l2Hit   ? "translation (L2 hit)"
                                                 : "translation",
                            now, result.completedAt, vaddr, thread_index,
                            "vaddr", "thread");
                    l1s_[th.core]->insert(result.entry);
                    Cycle resume = std::max(result.completedAt,
                                            queue_.curCycle());
                    scheduleStep(thread_index, resume + burstCycles(th));
                });
            break;
        }

        // Translation overlapped with the L1 cache access: no stall
        // (the hit class records latency 0 for exactly that reason).
        if (latency_) {
            latency_->l1Hit.record(0);
            if (!latency_->byCtx.empty())
                latency_->byCtx[thread.ctx]->record(0);
        }
        Cycle next = now + burstCycles(thread);
        if (!config_.stepBypass || !queue_.quietUntil(next)) {
            scheduleStep(thread_index, next);
            break;
        }
        queue_.advanceTo(next);
        now = next;
        ++streak;
    }
    bypassStreaks_.sample(static_cast<double>(streak));
}

void
System::shardStep(std::size_t thread_index)
{
    HwThread &thread = threads_[thread_index];
    unsigned shard = shardOfThread_[thread_index];
    EventQueue &q = *shardQueues_[shard];
    ShardLane &lane = lanes_[shard];
    Cycle now = q.curCycle();

    for (;;) {
        if (thread.accessesDone >= thread.quota) {
            if (!thread.finished) {
                thread.finished = true;
                thread.finishedAt = now;
                unfinished_.fetch_sub(1, std::memory_order_relaxed);
            }
            break;
        }
        ++thread.accessesDone;

        Addr vaddr = nextAddress(thread);
        std::optional<mem::Translation> t =
            pageTable_->peek(thread.ctx, vaddr);
        if (!t) {
            // Unallocated region: no L1 array can hold a page of a
            // region that does not exist yet, so this is a guaranteed
            // miss -- but the allocation mutates shared page-table
            // state, so the whole access (allocation, probe, counting)
            // replays in the serial phase.
            deferred_->post(
                shard, DeferredMiss{
                           now,
                           static_cast<std::uint32_t>(thread_index),
                           vaddr, false});
            break;
        }

        ++lane.l1Accesses;
        const tlb::TlbEntry *l1_hit = l1s_[thread.core]->lookup(
            thread.ctx, pageNumber(vaddr, t->size), t->size);
        if (!l1_hit) {
            ++lane.l1Misses;
            deferred_->post(
                shard, DeferredMiss{
                           now,
                           static_cast<std::uint32_t>(thread_index),
                           vaddr, true});
            break;
        }

        // Hit-class histogram zeros fold from the lane counters at the
        // window boundary; only the per-ctx split needs counting here
        // (lane-local, single writer, reset at every fold).
        if (!lane.hitsByCtx.empty())
            ++lane.hitsByCtx[thread.ctx];

        // L1 hit: the legacy hit-streak bypass, additionally clamped
        // to the window end (past it, the serial phase may owe this
        // queue a resumption this quiescence scan cannot see).
        Cycle next = now + burstCycles(thread);
        if (!config_.stepBypass || next > windowEnd_ ||
            q.firstBusyCycle(next) != invalidCycle) {
            q.schedule(&stepEvents_[thread_index], next);
            break;
        }
        q.advanceTo(next);
        now = next;
    }
}

void
System::replayMiss(const DeferredMiss &miss, const core::ProbeResult *probe)
{
    auto thread_index = static_cast<std::size_t>(miss.thread);
    HwThread &thread = threads_[thread_index];
    Cycle now = miss.cycle;
    Addr vaddr = miss.vaddr;

    if (!miss.probed) {
        // First touch of the region: allocate, then take the probe the
        // shard skipped, with its counting. The probe cannot hit.
        mem::Translation t = pageTable_->translate(thread.ctx, vaddr);
        ++l1Accesses_;
        energy_.addL1Lookup();
        if (l1s_[thread.core]->lookup(thread.ctx,
                                      pageNumber(vaddr, t.size), t.size))
            panic("deferred first-touch access hit the L1 TLB");
        ++l1Misses_;
    }

    TRACE(System, "thread ", thread_index, " core ", thread.core,
          " L1 miss vaddr 0x", std::hex, vaddr, std::dec);
    core::TranslationDone done =
        [this, thread_index, vaddr,
         now](const core::TranslationResult &result) {
            HwThread &th = threads_[thread_index];
            recordMissLatency(thread_index, result, now);
            if (sim::recording())
                sim::recorder().span(
                    sim::Lane::Translation, th.core,
                    result.walked        ? "translation (walk)"
                        : result.l2Hit   ? "translation (L2 hit)"
                                         : "translation",
                    now, result.completedAt, vaddr, thread_index,
                    "vaddr", "thread");
            l1s_[th.core]->insert(result.entry);
            Cycle resume = std::max(result.completedAt,
                                    queue_.curCycle());
            pendingResumes_.push_back(
                PendingResume{thread_index, resume + burstCycles(th)});
        };
    if (probe)
        org_->translateWithProbe(thread.core, thread.ctx, vaddr, now,
                                 std::move(done), *probe);
    else
        org_->translate(thread.core, thread.ctx, vaddr, now,
                        std::move(done));
}

void
System::recordMissLatency(std::size_t thread_index,
                          const core::TranslationResult &result,
                          Cycle issued)
{
    if (!latency_)
        return;
    const Cycle lat =
        result.completedAt > issued ? result.completedAt - issued : 0;
    const LatClass cls = result.degraded    ? LatClass::Degraded
        : result.eccRewalk                  ? LatClass::EccRewalk
        : result.walked                     ? LatClass::Walk
        : result.remote                     ? LatClass::L2HitRemote
                                            : LatClass::L2HitLocal;
    latency_->of(cls).record(lat);
    if (!latency_->byCtx.empty())
        latency_->byCtx[threads_[thread_index].ctx]->record(lat);
}

void
System::sampleCounters(Cycle at)
{
    std::size_t depth = queue_.size();
    for (const auto &q : shardQueues_)
        depth += q->size();
    sim::recorder().counter(0, "event queue depth", at, depth);
    sim::recorder().counter(1, "in-flight L2 misses", at,
                            org_->outstandingAccesses());
    if (counterFabric_)
        sim::recorder().counter(2, "fabric links held", at,
                                counterFabric_->linksHeld(at));
}

void
System::installCounterEvent()
{
    if (split_ || config_.counterInterval == 0 || !sim::recording())
        return;
    // lastPriority: the sample sees every event of its cycle.
    queue_.scheduleLambda(
        queue_.curCycle() + config_.counterInterval,
        [this] {
            if (unfinished_ == 0)
                return;
            sampleCounters(queue_.curCycle());
            installCounterEvent();
        },
        Event::lastPriority);
}

void
System::installProgressEvent()
{
    if (!progress_ || split_)
        return;
    // Check the wall clock every few thousand cycles: frequent enough
    // that any human-scale period is honoured, rare enough that the
    // check itself never shows up in a profile.
    constexpr Cycle checkInterval = 8192;
    queue_.scheduleLambda(
        queue_.curCycle() + checkInterval,
        [this] {
            if (unfinished_ == 0)
                return;
            maybeProgress();
            installProgressEvent();
        },
        Event::lastPriority);
}

void
System::maybeProgress(bool force)
{
    if (!progress_)
        return;
    using clock = std::chrono::steady_clock;
    const auto wall = clock::now();
    const double since =
        std::chrono::duration<double>(wall - progress_->lastEmit).count();
    if (!force && since < config_.progressSeconds)
        return;

    const Cycle cycle = queue_.curCycle();
    std::uint64_t accesses = 0;
    for (const HwThread &thread : threads_)
        accesses += thread.accessesDone;

    const double cyc_rate = since > 0
        ? static_cast<double>(cycle - progress_->lastCycle) / since
        : 0.0;
    const double acc_rate = since > 0
        ? static_cast<double>(accesses - progress_->lastAccesses) / since
        : 0.0;
    const double pct = progress_->totalQuota
        ? 100.0 * static_cast<double>(accesses) /
              static_cast<double>(progress_->totalQuota)
        : 100.0;
    const double eta = acc_rate > 0
        ? static_cast<double>(progress_->totalQuota - accesses) / acc_rate
        : 0.0;
    const std::uint64_t faults = counterFabric_
        ? static_cast<std::uint64_t>(counterFabric_->faultsInjected.value())
        : 0;
    double busy = 0.0;
    if (split_ && timing_.stepWallNanos > 0 && !lanes_.empty()) {
        // Lanes hold the live per-shard busy nanos mid-run; they fold
        // into timing_.stepBusyNanos only when the engine finishes.
        std::uint64_t busy_nanos = timing_.stepBusyNanos;
        for (const ShardLane &lane : lanes_)
            busy_nanos += lane.stepNanos;
        busy = 100.0 * static_cast<double>(busy_nanos) /
               (static_cast<double>(timing_.stepWallNanos) *
                static_cast<double>(lanes_.size()));
    }

    std::fprintf(stderr,
                 "[progress] cycle %llu | %.2fM cyc/s | %.2fM acc/s | "
                 "%.1f%% of quota | ~%.0fs left | faults %llu | "
                 "shard busy %.0f%%\n",
                 static_cast<unsigned long long>(cycle), cyc_rate * 1e-6,
                 acc_rate * 1e-6, pct, eta,
                 static_cast<unsigned long long>(faults), busy);

    progress_->lastEmit = wall;
    progress_->lastCycle = cycle;
    progress_->lastAccesses = accesses;
}

void
System::flushParkEvents()
{
    std::vector<ParkEvent> events;
    {
        std::lock_guard<std::mutex> lock(parkMutex_);
        events.swap(parkEvents_);
    }
    for (const ParkEvent &e : events)
        sim::recorder().instant(sim::Lane::Shard, 8 + e.shard,
                                e.parked ? "crew park" : "crew wake",
                                e.at, e.shard, 0, "shard", nullptr);
}

namespace
{

std::uint64_t
nanosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

void
System::driveSharded()
{
    using clock = std::chrono::steady_clock;

    // Conservative lookahead: no organization completion for a miss
    // issued at cycle c can land before c + lead, so a window covering
    // [T, T + lead - 1] can run every shard's step events in parallel
    // without observing any serial-phase effect out of order (proof in
    // DESIGN.md, "conservative lookahead"). The cross-shard bound
    // minUncoreLead() (earliest home-array mutation) can only be
    // longer; taking the min keeps the window length provably safe for
    // both phases without ever shrinking it in practice.
    const Cycle lead = std::max<Cycle>(
        1, std::min(org_->minCompletionLead(), org_->minUncoreLead()));
    const auto shards = static_cast<unsigned>(shardQueues_.size());
    // Crew park/wake instants, only wired while a recorder is live:
    // the hook runs on worker threads, so it appends to a locked
    // buffer that the caller thread drains at window boundaries.
    sim::ShardCrew::ParkHook park_hook;
    if (sim::recording())
        park_hook = [this](unsigned shard, bool parked) {
            const Cycle at = windowEndHint_.load(std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(parkMutex_);
            parkEvents_.push_back(ParkEvent{shard, parked, at});
        };
    // Worker threads only pay off when each shard can own a CPU; on a
    // smaller host the crew runs the (identical) windows serially.
    // Held indirectly so the final flushParkEvents() below can run
    // after destruction, catching the shutdown wake instants.
    auto crew_holder = std::make_unique<sim::ShardCrew>(
        shards, std::thread::hardware_concurrency() >= shards,
        std::move(park_hook));
    sim::ShardCrew &crew = *crew_holder;
    sim::ShardCrew::WindowFn window_fn = [this](unsigned shard) {
        auto t0 = clock::now();
        EventQueue &q = *shardQueues_[shard];
        if (!q.empty() && q.nextEventCycle() <= windowEnd_)
            q.run(windowEnd_);
        lanes_[shard].stepNanos += nanosSince(t0);
    };

    // Parallel pre-probe (phase B1): the home-array lookups of this
    // window's deferred misses run on the shard crew, each array
    // owned by exactly one shard, before the serial phase replays
    // them. Safe only when no home array can be mutated inside the
    // window (minUncoreLead() > lead puts every walk fill / prefetch
    // insert beyond the window end; main-queue events -- storms,
    // shootdowns, earlier windows' fills -- sit at >= the window end
    // by construction of E) and when no global ECC draw stream could
    // observe the probe order. Misses at exactly the window end still
    // probe live at replay: a same-cycle fill from an earlier window
    // may be ordered ahead of them on the main queue.
    const bool pre_probe_ok = org_->numHomeArrays() > 0 &&
                              org_->minUncoreLead() > lead &&
                              config_.org.faults.sliceEccProb <= 0;
    if (pre_probe_ok && shardOfArray_.empty()) {
        const std::uint64_t arrays = org_->numHomeArrays();
        shardOfArray_.reserve(arrays);
        for (std::uint64_t a = 0; a < arrays; ++a)
            shardOfArray_.push_back(
                static_cast<unsigned>(a * shards / arrays));
    }
    probePlan_.assign(shards, {});
    sim::ShardCrew::WindowFn probe_fn = [this](unsigned shard) {
        auto t0 = clock::now();
        ShardLane &lane = lanes_[shard];
        for (std::uint32_t i : probePlan_[shard]) {
            const DeferredMiss &miss = replayBatch_[i];
            const HwThread &thread = threads_[miss.thread];
            probeResults_[i] = org_->probeHomeArray(
                thread.core, thread.ctx, miss.vaddr);
            probeTaken_[i] = 1;
            ++lane.probes;
        }
        lane.probeNanos += nanosSince(t0);
    };

    for (;;) {
        // Wake the threads resumed by the previous serial phase. The
        // floor windowEnd_ + 1 sits above every shard clock; it
        // provably never binds (completions land beyond the window
        // that issued the miss), but keeps the no-past-schedule
        // invariant local.
        for (const PendingResume &resume : pendingResumes_)
            shardQueues_[shardOfThread_[resume.thread]]->schedule(
                &stepEvents_[resume.thread],
                std::max(resume.when, windowEnd_ + 1));
        pendingResumes_.clear();

        Cycle steps = invalidCycle;
        for (const auto &q : shardQueues_)
            steps = std::min(steps, q->nextEventCycle());
        Cycle uncore = queue_.nextEventCycle();
        if (steps == invalidCycle && uncore == invalidCycle)
            break;
        Cycle end = steps == invalidCycle
            ? uncore
            : std::min(uncore, steps + lead - 1);
        windowEnd_ = end;
        ++timing_.windows;
        windowEndHint_.store(end, std::memory_order_relaxed);

        // Per-window observability: one recording() check per window
        // (not per access), so all of this is free when off.
        const bool rec = sim::recording();
        const bool sample = rec && config_.counterInterval != 0 &&
                            end >= nextCounterAt_;
        unsigned busy_lanes = 0;
        if (sample)
            for (const auto &q : shardQueues_)
                busy_lanes += !q->empty() &&
                              q->nextEventCycle() <= end;

        // Phase A: every shard runs its own step events through the
        // window, in parallel, touching shard-owned state only.
        if (steps <= end) {
            auto wall0 = clock::now();
            std::uint64_t own0 = lanes_[0].stepNanos;
            crew.runWindow(window_fn);
            std::uint64_t wall = nanosSince(wall0);
            timing_.stepWallNanos += wall;
            // Barrier wait = caller wall time beyond its own shard-0
            // work; only meaningful when other shards ran elsewhere.
            if (crew.parallel()) {
                std::uint64_t own = lanes_[0].stepNanos - own0;
                timing_.barrierNanos += wall > own ? wall - own : 0;
            }
            if (rec)
                sim::recorder().span(sim::Lane::Shard, 0, "phase A",
                                     steps, end);
        }

        auto drain0 = clock::now();

        // Fold the shard lanes: integer sums first, one Scalar add
        // each, so the accumulated doubles are bit-identical at every
        // shard count (integral doubles below 2^53 add exactly).
        std::uint64_t accesses = 0, misses = 0;
        for (ShardLane &lane : lanes_) {
            accesses += lane.l1Accesses;
            misses += lane.l1Misses;
            lane.l1Accesses = 0;
            lane.l1Misses = 0;
        }
        l1Accesses_ += static_cast<double>(accesses);
        l1Misses_ += static_cast<double>(misses);
        energy_.addL1Lookups(accesses);

        // L1 hits all have latency 0, so one bulk record per window
        // reproduces the legacy per-access records exactly; both the
        // bulk count and the per-ctx folds are sums of lane integers,
        // hence shard-count invariant like every other Scalar.
        if (latency_) {
            latency_->l1Hit.record(0, accesses - misses);
            for (std::size_t c = 0; c < latency_->byCtx.size(); ++c) {
                std::uint64_t hits = 0;
                for (ShardLane &lane : lanes_) {
                    hits += lane.hitsByCtx[c];
                    lane.hitsByCtx[c] = 0;
                }
                latency_->byCtx[c]->record(0, hits);
            }
        }

        // Canonical replay: merge the deferred misses by (cycle,
        // thread) -- an order independent of the shard partition --
        // and inject each at its original cycle, ahead of the clock
        // because every miss cycle lies in the current window.
        std::size_t window_deferred = 0;
        if (!deferred_->empty()) {
            replayBatch_ = deferred_->drain([](const DeferredMiss &m) {
                return std::make_pair(m.cycle, m.thread);
            });
            timing_.deferredMisses += replayBatch_.size();
            window_deferred = replayBatch_.size();
            probeResults_.assign(replayBatch_.size(), {});
            probeTaken_.assign(replayBatch_.size(), 0);

            // Phase B1: partition the eligible probes by home array
            // (each shard's list stays in canonical order because the
            // batch is sorted) and run them on the crew.
            if (pre_probe_ok) {
                bool any = false;
                for (std::uint32_t i = 0;
                     i < static_cast<std::uint32_t>(replayBatch_.size());
                     ++i) {
                    const DeferredMiss &miss = replayBatch_[i];
                    if (!miss.probed || miss.cycle >= end)
                        continue;
                    const HwThread &thread = threads_[miss.thread];
                    unsigned array =
                        org_->homeArrayOf(thread.core, miss.vaddr);
                    probePlan_[shardOfArray_[array]].push_back(i);
                    any = true;
                }
                if (any) {
                    auto wall0 = clock::now();
                    std::uint64_t own0 = lanes_[0].probeNanos;
                    crew.runWindow(probe_fn);
                    std::uint64_t wall = nanosSince(wall0);
                    timing_.probeWallNanos += wall;
                    if (crew.parallel()) {
                        std::uint64_t own = lanes_[0].probeNanos - own0;
                        timing_.barrierNanos +=
                            wall > own ? wall - own : 0;
                    }
                    for (auto &plan : probePlan_)
                        plan.clear();
                    if (rec)
                        sim::recorder().span(
                            sim::Lane::Shard, 1, "phase B1 pre-probe",
                            replayBatch_.front().cycle, end);
                }
            }

            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(replayBatch_.size());
                 ++i) {
                const DeferredMiss miss = replayBatch_[i];
                if (probeTaken_[i]) {
                    const core::ProbeResult probe = probeResults_[i];
                    queue_.scheduleLambda(
                        miss.cycle, [this, miss, probe] {
                            replayMiss(miss, &probe);
                        });
                } else {
                    queue_.scheduleLambda(
                        miss.cycle, [this, miss] { replayMiss(miss); });
                }
            }
        }
        timing_.drainNanos += nanosSince(drain0);

        // Counter samples stamp the window end, which is non-
        // decreasing across windows, so every counter track's
        // timestamps stay monotonic for the Perfetto importer.
        if (sample) {
            nextCounterAt_ = end + config_.counterInterval;
            sampleCounters(end);
            sim::recorder().counter(
                3, "window width E", end,
                steps == invalidCycle ? 0 : end - steps + 1);
            sim::recorder().counter(4, "busy shard lanes", end,
                                    busy_lanes);
            sim::recorder().counter(5, "deferred misses", end,
                                    window_deferred);
        }

        // Phase B: the uncore (organization, fabric, walkers, caches,
        // storm / context-switch / epoch machinery) runs serially
        // through the same window.
        auto uncore0 = clock::now();
        Cycle b2_start = std::min(queue_.curCycle(), end);
        queue_.run(end);
        timing_.uncoreNanos += nanosSince(uncore0);
        if (rec) {
            sim::recorder().span(sim::Lane::Shard, 2,
                                 "phase B2 uncore", b2_start, end);
            flushParkEvents();
        }
        if (progress_)
            maybeProgress();
    }

    crew_holder.reset();
    if (sim::recording())
        flushParkEvents();

    for (ShardLane &lane : lanes_) {
        timing_.stepBusyNanos += lane.stepNanos;
        timing_.probeBusyNanos += lane.probeNanos;
        timing_.preProbes += lane.probes;
        lane = ShardLane{};
        if (latency_ && !latency_->byCtx.empty())
            lane.hitsByCtx.assign(config_.apps.size(), 0);
    }
}

void
System::installContextSwitchEvent()
{
    if (config_.contextSwitchInterval == 0)
        return;
    Cycle when = queue_.curCycle() + config_.contextSwitchInterval;
    queue_.scheduleLambda(when, [this] {
        if (unfinished_ == 0)
            return;
        // x86 context switch without PCID: everything is flushed.
        for (auto &l1 : l1s_)
            l1->invalidateAll();
        org_->flushAll();
        installContextSwitchEvent();
    });
}

void
System::stormOp()
{
    if (unfinished_ == 0)
        return;

    // The storm app is the last context: allocate-promote-break cycles
    // over its shared pool (paper §V, TLB storm microbenchmark).
    auto storm_app = static_cast<unsigned>(config_.apps.size() - 1);
    auto ctx = static_cast<ContextId>(storm_app);
    const workload::WorkloadSpec &spec = config_.apps[storm_app].spec;

    std::uint64_t regions =
        std::max<std::uint64_t>(1, spec.warmPages / 512);
    std::uint64_t region = stormRegionCursor_++ % regions;
    Addr base = workload::AccessGenerator::sharedBase(ctx) +
                (region << pageShift(PageSize::TwoMB));

    unsigned invalidated =
        pageTable_->setRegionSuperpage(ctx, base, stormPromote_);
    stormPromote_ = !stormPromote_;

    // Sharers: every core running a thread of the storm context,
    // precomputed at thread placement.
    const std::vector<CoreId> &sharers = ctxSharers_[ctx];

    // A promote invalidates 512 distinct entries; we time a sample of
    // the messages and pause sharers for the IPI handler.
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i].ctx == ctx && !threads_[i].finished)
            threads_[i].pendingStall += config_.ipiPauseCycles;
    }
    unsigned messages = std::min<unsigned>(
        config_.stormMessagesPerOp, std::max(1u, invalidated));
    Cycle now = queue_.curCycle();
    TRACE(Shootdown, "storm op region ", region, " ",
          stormPromote_ ? "break" : "promote", " invalidated ",
          invalidated, " entries, ", messages, " timed messages");
    for (unsigned m = 0; m < messages; ++m) {
        Addr page = base + (static_cast<Addr>(m)
                            << pageShift(PageSize::FourKB));
        CoreId initiator = sharers.empty() ? 0 : sharers[m %
                                                         sharers.size()];
        org_->shootdown(initiator, ctx, page, sharers, now, nullptr);
    }

    queue_.scheduleLambda(now + config_.stormRemapInterval,
                          [this] { stormOp(); });
}

void
System::installStormEvent()
{
    if (config_.stormRemapInterval == 0)
        return;
    queue_.scheduleLambda(queue_.curCycle() + config_.stormRemapInterval,
                          [this] { stormOp(); });
}

void
System::installEpochEvent()
{
    if (config_.statsEpochInterval == 0)
        return;
    // lastPriority: the snapshot sees every stat update of its cycle.
    queue_.scheduleLambda(
        queue_.curCycle() + config_.statsEpochInterval,
        [this] {
            if (unfinished_ == 0)
                return;
            TRACE(Stats, "epoch ", epochSnapshots_.size(),
                  " snapshot", config_.statsEpochReset
                                   ? " (and reset)" : "");
            org_->syncFaultStats(queue_.curCycle());
            std::ostringstream os;
            os << "{\"epoch\":" << epochSnapshots_.size()
               << ",\"cycle\":" << queue_.curCycle() << ",\"stats\":";
            dumpJson(os);
            os << "}";
            epochSnapshots_.push_back(os.str());
            if (config_.statsEpochReset)
                resetAll();
            installEpochEvent();
        },
        Event::lastPriority);
}

void
System::dumpStatsJson(std::ostream &out) const
{
    out << "{\"epochs\":[";
    for (std::size_t i = 0; i < epochSnapshots_.size(); ++i) {
        if (i)
            out << ",";
        out << epochSnapshots_[i];
    }
    out << "],\"final\":";
    dumpJson(out);
    out << "}";
}

std::vector<double>
System::paperBuckets(const stats::Distribution &dist)
{
    // Paper bins: 1, 2-4, 5-8, 9-12, ..., 25-28, 29+.
    std::vector<double> bins(9, 0.0);
    const auto &buckets = dist.buckets();
    std::uint64_t total = dist.numSamples();
    if (total == 0)
        return bins;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (!buckets[i])
            continue;
        auto value = static_cast<unsigned>(i + 1); // bucket i holds i+1
        std::size_t bin;
        if (value <= 1)
            bin = 0;
        else if (value <= 4)
            bin = 1;
        else if (value >= 29)
            bin = 8;
        else
            bin = 2 + (value - 5) / 4;
        bins[bin] += static_cast<double>(buckets[i]);
    }
    bins[8] += static_cast<double>(dist.overflow());
    for (double &b : bins)
        b /= static_cast<double>(total);
    return bins;
}

void
System::prewarm()
{
    // Install the steady-state resident sets so short runs measure
    // capacity behaviour rather than the compulsory-miss transient.
    // Insert deepest rank first so the hottest pages end most recent.
    bool shared = core::isShared(config_.org.kind);
    unsigned cores = config_.org.numCores;

    if (shared) {
        // One copy chip-wide: each app gets an equal share of the
        // aggregate capacity.
        std::uint64_t budget = org_->totalEntries() * 95 / 100 /
                               config_.apps.size();
        for (std::size_t a = 0; a < config_.apps.size(); ++a) {
            const auto &spec = config_.apps[a].spec;
            auto ctx = static_cast<ContextId>(a);
            std::uint64_t ranks = std::min<std::uint64_t>(
                spec.warmPages, budget);
            for (std::uint64_t r = ranks; r-- > 0;) {
                Addr vaddr =
                    workload::AccessGenerator::sharedBase(ctx) +
                    (r << pageShift(PageSize::FourKB));
                warmInstall(0, ctx, vaddr,
                            pageTable_->translate(ctx, vaddr), false);
            }
        }
    } else {
        // Every core holds its own copy of its threads' top ranks:
        // the replication the shared organizations eliminate.
        for (CoreId c = 0; c < cores; ++c) {
            const auto &residents = threadsOfCore_[c];
            if (residents.empty())
                continue;
            std::uint64_t budget = static_cast<std::uint64_t>(
                                       config_.org.l2Entries) *
                                   9 / 10 / residents.size();
            for (std::size_t ti : residents) {
                const HwThread &thread = threads_[ti];
                const auto &spec = config_.apps[thread.app].spec;
                std::uint64_t ranks = std::min<std::uint64_t>(
                    spec.warmPages, budget);
                for (std::uint64_t r = ranks; r-- > 0;) {
                    Addr vaddr =
                        workload::AccessGenerator::sharedBase(
                            thread.ctx) +
                        (r << pageShift(PageSize::FourKB));
                    warmInstall(
                        c, thread.ctx, vaddr,
                        pageTable_->translate(thread.ctx, vaddr),
                        false);
                }
            }
        }
    }

    // Hot sets: resident in both the L1 group and the L2 structure
    // (the hierarchy is mostly-inclusive).
    for (const HwThread &thread : threads_) {
        const auto &spec = config_.apps[thread.app].spec;
        unsigned t_index = thread.indexInApp;
        for (std::uint64_t p = spec.hotPages; p-- > 0;) {
            Addr vaddr =
                workload::AccessGenerator::privateBase(thread.ctx,
                                                       t_index) +
                (p << pageShift(PageSize::FourKB));
            warmInstall(thread.core, thread.ctx, vaddr,
                        pageTable_->translate(thread.ctx, vaddr), true);
        }
    }
}

void
System::warmInstall(CoreId core, ContextId ctx, Addr vaddr,
                    const mem::Translation &t, bool into_l1)
{
    if (core::isShared(config_.org.kind))
        org_->preloadShared(ctx, vaddr, t);
    else
        org_->preloadPrivate(core, ctx, vaddr, t);
    if (into_l1) {
        tlb::TlbEntry entry;
        entry.valid = true;
        entry.size = t.size;
        entry.vpn = pageNumber(vaddr, t.size);
        entry.ppn = t.ppn;
        entry.ctx = ctx;
        l1s_.at(core)->insert(entry);
    }
}

void
System::fastForwardAccess(HwThread &thread, Cycle now)
{
    ++thread.accessesDone;
    Addr vaddr = nextAddress(thread);

    // Stat-free L1 probe: refreshes recency exactly like a demand
    // lookup without touching the demand counters. Probing every size
    // array defers the page-table translation to the L1-miss path,
    // which is what keeps fast-forward several times cheaper than
    // detail per access.
    if (l1s_[thread.core]->touchAnySize(thread.ctx, vaddr))
        return;

    mem::Translation t = pageTable_->translate(thread.ctx, vaddr);
    PageNum vpn = pageNumber(vaddr, t.size);

    // L1 miss: probe the home L2 array the detailed engine would, and
    // on a miss warm the walk path (PSC + walk-reference caches) at
    // the core the placement policy would walk on, then install into
    // the home structure -- all without stats, queues or arbitration.
    tlb::SetAssocTlb &home =
        org_->array(org_->homeArrayOf(thread.core, vaddr));
    if (!home.touchAnySize(thread.ctx, vaddr)) {
        CoreId walk_core = org_->walkCoreFor(thread.core, vaddr);
        walkers_[walk_core]->warmWalk(thread.ctx, vaddr, now);
        warmInstall(thread.core, thread.ctx, vaddr, t, false);
    }
    // The returned translation refills the L1 either way.
    tlb::TlbEntry entry;
    entry.valid = true;
    entry.size = t.size;
    entry.vpn = vpn;
    entry.ppn = t.ppn;
    entry.ctx = thread.ctx;
    l1s_[thread.core]->insert(entry);
}

void
System::fastForward(std::uint64_t accesses)
{
    if (accesses == 0 || threads_.empty())
        return;
    Cycle now = queue_.curCycle();

    // Extend every quota first so nextAddress()'s remaining-quota
    // batch cap sees a consistent stream position throughout.
    for (HwThread &thread : threads_)
        thread.quota = thread.accessesDone + accesses;

    // Round-robin in address-batch quanta, so shared structures (the
    // page table, shared L2 arrays, walk caches) interleave the
    // threads' streams roughly as detailed execution would.
    std::vector<std::uint64_t> left(threads_.size(), accesses);
    bool any = true;
    while (any) {
        any = false;
        for (std::size_t i = 0; i < threads_.size(); ++i) {
            auto n = std::min<std::uint64_t>(HwThread::addrBatch,
                                             left[i]);
            if (!n)
                continue;
            any = true;
            left[i] -= n;
            for (std::uint64_t k = 0; k < n; ++k)
                fastForwardAccess(threads_[i], now);
        }
    }
    ffAccessesDone_ += accesses * threads_.size();

    // Advance the clock by the skipped stretch's nominal stall-free
    // time (the worst per-access burst cost over the mix), so
    // retention TTLs in the walk caches age across the gap. Any
    // deterministic monotone charge is sound here; this one matches
    // the detailed engine's hit-path cost. The queue is empty at every
    // fast-forward point (quiescent boundary), so advancing cannot
    // strand events.
    double worst = 0;
    for (const HwThread &thread : threads_) {
        const workload::WorkloadSpec &spec =
            config_.apps[thread.app].spec;
        worst = std::max(worst, spec.instructionsPerAccess *
                                        spec.baseCpi +
                                    spec.dataStallPerAccess);
    }
    queue_.advanceTo(now + static_cast<Cycle>(
                               worst * static_cast<double>(accesses)));
}

void
System::drive()
{
    if (split_)
        driveSharded();
    else
        queue_.run();
}

void
System::beginRun(std::uint64_t total_quota)
{
    installContextSwitchEvent();
    installStormEvent();
    installEpochEvent();

    if (config_.progressSeconds >= 0 && !progress_) {
        progress_ = std::make_unique<Progress>();
        progress_->start = std::chrono::steady_clock::now();
        progress_->lastEmit = progress_->start;
        progress_->totalQuota = total_quota;
    }
    nextCounterAt_ = 0;
    installCounterEvent();
    installProgressEvent();
}

std::uint64_t
System::configFingerprint() const
{
    // Every configuration field that shapes the functional state a
    // checkpoint carries: array geometry, stream seeds, the workload
    // layout. Deliberately excludes pure wall-clock / timing knobs
    // (shards, latencies, stats options), so a checkpoint taken at a
    // quiescent boundary restores across engine choices.
    std::vector<std::uint64_t> words;
    auto put = [&words](std::uint64_t v) { words.push_back(v); };
    auto putD = [&put](double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        put(bits);
    };

    const core::OrgConfig &org = config_.org;
    put(static_cast<std::uint64_t>(org.kind));
    put(org.numCores);
    put(org.l2Entries);
    put(org.l2Assoc);
    put(org.nocstarSliceEntries);
    put(org.banks);
    put(static_cast<std::uint64_t>(org.sliceMapping));
    put(org.clusterWidth);
    put(org.clusterHeight);
    put(static_cast<std::uint64_t>(org.ptwPlacement));
    put(org.prefetchDistance);

    const tlb::L1TlbConfig &l1 = config_.l1;
    put(l1.entries4k);
    put(l1.assoc4k);
    put(l1.entries2m);
    put(l1.assoc2m);
    put(l1.entries1g);
    put(l1.assoc1g);
    putD(l1.scale);

    const mem::CacheModelConfig &caches = config_.caches;
    put(caches.l2Lines);
    put(caches.llcLines);
    put(caches.l2RetentionCycles);
    put(caches.llcRetentionCycles);
    put(config_.walker.pscEntriesPerLevel);

    put(config_.seed);
    put(config_.superpages ? 1 : 0);
    put(config_.smtPerCore);
    put(static_cast<std::uint64_t>(config_.hotspotSlice) + 1);
    put(config_.sampling.warmupAccesses);

    put(config_.apps.size());
    for (const AppConfig &app : config_.apps) {
        const workload::WorkloadSpec &spec = app.spec;
        put(app.threads);
        put(sim::fnv1a(app.traceFile.data(), app.traceFile.size()));
        put(spec.hotPages);
        put(spec.warmPages);
        putD(spec.warmAlpha);
        put(spec.coldPages);
        putD(spec.warmFraction);
        putD(spec.coldFraction);
        putD(spec.instructionsPerAccess);
        putD(spec.baseCpi);
        putD(spec.dataStallPerAccess);
        putD(spec.superpageFraction);
    }
    return sim::fnv1a(words.data(), words.size() * sizeof(words[0]));
}

void
System::saveCheckpoint(const std::string &path)
{
    sim::CkptWriter w(configFingerprint());

    w.begin(sim::ckptTag('C', 'L', 'K', ' '));
    w.u64(queue_.curCycle());
    w.u64(ffAccessesDone_);
    w.end();

    w.begin(sim::ckptTag('R', 'N', 'G', 'S'));
    for (std::uint64_t word : rng_.state())
        w.u64(word);
    w.end();

    w.begin(sim::ckptTag('P', 'G', 'T', 'B'));
    pageTable_->saveState(w);
    w.end();

    w.begin(sim::ckptTag('C', 'A', 'C', 'H'));
    caches_->saveState(w);
    w.end();

    w.begin(sim::ckptTag('W', 'A', 'L', 'K'));
    w.u64(walkers_.size());
    for (const auto &walker : walkers_)
        walker->saveState(w);
    w.end();

    w.begin(sim::ckptTag('L', '1', 'T', 'B'));
    w.u64(l1s_.size());
    for (const auto &l1 : l1s_)
        l1->saveState(w);
    w.end();

    w.begin(sim::ckptTag('O', 'R', 'G', 'A'));
    w.u64(org_->numHomeArrays());
    for (unsigned i = 0; i < org_->numHomeArrays(); ++i)
        org_->array(i).saveState(w);
    w.end();

    w.begin(sim::ckptTag('T', 'H', 'R', 'D'));
    w.u64(threads_.size());
    for (const HwThread &thread : threads_) {
        w.u64(thread.accessesDone);
        w.u64(thread.instructions);
        w.f64(thread.cycleCarry);
        w.u64(thread.pendingStall);
        w.u32(thread.batchPos);
        w.u32(thread.batchLen);
        for (Addr a : thread.batch)
            w.u64(a);
        std::vector<std::uint64_t> gen_state;
        thread.gen->saveState(gen_state);
        w.u64(gen_state.size());
        for (std::uint64_t word : gen_state)
            w.u64(word);
        w.u8(thread.hotspotRng ? 1 : 0);
        if (thread.hotspotRng)
            for (std::uint64_t word : thread.hotspotRng->state())
                w.u64(word);
    }
    w.end();

    w.save(path);
    checkpointBytes_ = w.sizeBytes();
    inform("checkpoint: saved ", w.sizeBytes(), " bytes to ", path);
}

void
System::restoreCheckpoint(const std::string &path)
{
    sim::CkptReader r(path, configFingerprint());

    r.enter(sim::ckptTag('C', 'L', 'K', ' '));
    Cycle clk = r.u64();
    ffAccessesDone_ = r.u64();
    r.leave();

    r.enter(sim::ckptTag('R', 'N', 'G', 'S'));
    std::array<std::uint64_t, 4> rng_state;
    for (std::uint64_t &word : rng_state)
        word = r.u64();
    rng_.setState(rng_state);
    r.leave();

    r.enter(sim::ckptTag('P', 'G', 'T', 'B'));
    pageTable_->restoreState(r);
    r.leave();

    r.enter(sim::ckptTag('C', 'A', 'C', 'H'));
    caches_->restoreState(r);
    r.leave();

    r.enter(sim::ckptTag('W', 'A', 'L', 'K'));
    if (std::uint64_t n = r.u64(); n != walkers_.size())
        fatal("checkpoint ", path, ": ", n,
              " walkers saved but this system has ", walkers_.size());
    for (auto &walker : walkers_)
        walker->restoreState(r);
    r.leave();

    r.enter(sim::ckptTag('L', '1', 'T', 'B'));
    if (std::uint64_t n = r.u64(); n != l1s_.size())
        fatal("checkpoint ", path, ": ", n,
              " L1 groups saved but this system has ", l1s_.size());
    for (auto &l1 : l1s_)
        l1->restoreState(r);
    r.leave();

    r.enter(sim::ckptTag('O', 'R', 'G', 'A'));
    if (std::uint64_t n = r.u64(); n != org_->numHomeArrays())
        fatal("checkpoint ", path, ": ", n,
              " L2 arrays saved but this organization has ",
              org_->numHomeArrays());
    for (unsigned i = 0; i < org_->numHomeArrays(); ++i)
        org_->array(i).restoreState(r);
    r.leave();

    r.enter(sim::ckptTag('T', 'H', 'R', 'D'));
    if (std::uint64_t n = r.u64(); n != threads_.size())
        fatal("checkpoint ", path, ": ", n,
              " threads saved but this system has ", threads_.size());
    for (HwThread &thread : threads_) {
        thread.accessesDone = r.u64();
        thread.instructions = r.u64();
        thread.cycleCarry = r.f64();
        thread.pendingStall = r.u64();
        thread.batchPos = r.u32();
        thread.batchLen = r.u32();
        if (thread.batchPos > thread.batchLen ||
            thread.batchLen > HwThread::addrBatch)
            fatal("checkpoint ", path, ": thread batch cursor ",
                  thread.batchPos, "/", thread.batchLen,
                  " out of range");
        for (Addr &a : thread.batch)
            a = r.u64();
        std::uint64_t gen_words = r.u64();
        std::vector<std::uint64_t> gen_state(gen_words);
        for (std::uint64_t &word : gen_state)
            word = r.u64();
        if (std::size_t used = thread.gen->restoreState(gen_state, 0);
            used != gen_words)
            fatal("checkpoint ", path, ": address source consumed ",
                  used, " of ", gen_words, " state words");
        bool has_hotspot = r.u8() != 0;
        if (has_hotspot != (thread.hotspotRng != nullptr))
            fatal("checkpoint ", path, ": hotspot stream mismatch");
        if (thread.hotspotRng) {
            std::array<std::uint64_t, 4> s;
            for (std::uint64_t &word : s)
                word = r.u64();
            thread.hotspotRng->setState(s);
        }
    }
    r.leave();

    // The boundary is quiescent: the queue is empty and all timing
    // state (ports, arbitration, outstanding walks) is pristine in
    // both the checkpointing and the restoring run, so only the clock
    // itself needs re-aligning.
    queue_.advanceTo(clk);
    inform("checkpoint: restored ", path, " at cycle ", clk);
}

System::MemoryAudit
System::memoryAudit() const
{
    MemoryAudit audit;
    for (unsigned i = 0; i < org_->numHomeArrays(); ++i)
        audit.orgArrayBytes += org_->array(i).memoryBytes();
    for (const auto &l1 : l1s_)
        audit.l1Bytes += l1->memoryBytes();
    audit.pageTableBytes = pageTable_->memoryBytes();
    audit.cacheModelBytes = caches_->memoryBytes();
    if (counterFabric_)
        audit.fabricBytes = counterFabric_->memoryBytes();
    audit.checkpointBytes = checkpointBytes_;
    return audit;
}

RunResult
System::run(std::uint64_t accesses_per_thread)
{
    if (!config_.checkpointRestorePath.empty()) {
        restoreCheckpoint(config_.checkpointRestorePath);
    } else {
        prewarm();
        if (config_.sampling.warmupAccesses > 0)
            fastForward(config_.sampling.warmupAccesses);
    }
    // The warm boundary: prewarm / warmup done, nothing scheduled,
    // no detailed state yet. Both checkpoint directions anchor here.
    if (!config_.checkpointSavePath.empty())
        saveCheckpoint(config_.checkpointSavePath);

    if (config_.sampling.enabled())
        return runSampled(accesses_per_thread);

    unfinished_ = static_cast<unsigned>(threads_.size());
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        threads_[i].quota =
            threads_[i].accessesDone + accesses_per_thread;
        // Stagger starts a little so cores do not phase-lock.
        scheduleStep(i, queue_.curCycle() + rng_.below(8));
    }
    beginRun(accesses_per_thread * threads_.size());

    drive();

    return finishRun();
}

RunResult
System::runSampled(std::uint64_t accesses_per_thread)
{
    const SamplingConfig &sampling = config_.sampling;

    // Window-placement jitter comes from a dedicated stream built
    // fresh here, so a restored run draws exactly the gap lengths the
    // straight-through run would.
    Random gap_rng(sampling.seed ^ 0x5a3919f1ULL);

    // The mean fast-forward gap: explicit, or derived so that warmup
    // plus windows plus gaps tile the nominal per-thread run length.
    std::uint64_t base_gap = sampling.ffAccesses;
    if (base_gap == 0) {
        std::uint64_t spent =
            sampling.warmupAccesses +
            static_cast<std::uint64_t>(sampling.windows) *
                sampling.detailAccesses;
        if (accesses_per_thread > spent && sampling.windows > 1)
            base_gap = (accesses_per_thread - spent) /
                       (sampling.windows - 1);
    }

    beginRun(accesses_per_thread * threads_.size());

    std::vector<double> ipc_samples;
    std::vector<double> latency_samples;
    for (unsigned w = 0; w < sampling.windows; ++w) {
        if (w > 0) {
            // Jittered gap in [base/2, 3*base/2]: breaks any phase
            // lock between the window period and program periodicity,
            // the classic systematic-sampling hazard.
            std::uint64_t gap = base_gap >= 2
                ? base_gap / 2 + gap_rng.below(base_gap + 1)
                : base_gap;
            fastForward(gap);
        }

        Cycle window_start = queue_.curCycle();
        std::uint64_t instr_before = 0;
        for (const HwThread &thread : threads_)
            instr_before += thread.instructions;
        double lat_before = org_->totalAccessLatency.value();
        double acc_before = org_->l2Accesses.value();

        unfinished_ = static_cast<unsigned>(threads_.size());
        for (std::size_t i = 0; i < threads_.size(); ++i) {
            threads_[i].finished = false;
            threads_[i].quota =
                threads_[i].accessesDone + sampling.detailAccesses;
            scheduleStep(i, queue_.curCycle() + rng_.below(8));
        }
        if (w > 0) {
            // The self-reinstalling counter / heartbeat events died
            // with the previous window's drain; re-arm them.
            installCounterEvent();
            installProgressEvent();
        }
        drive();

        Cycle window_end = window_start;
        std::uint64_t instr_after = 0;
        for (const HwThread &thread : threads_) {
            window_end = std::max(window_end, thread.finishedAt);
            instr_after += thread.instructions;
        }
        Cycle window_cycles = window_end - window_start;
        ipc_samples.push_back(
            window_cycles > 0
                ? static_cast<double>(instr_after - instr_before) /
                      static_cast<double>(window_cycles)
                : 0.0);
        double window_accesses = org_->l2Accesses.value() - acc_before;
        latency_samples.push_back(
            window_accesses > 0
                ? (org_->totalAccessLatency.value() - lat_before) /
                      window_accesses
                : 0.0);
    }

    auto [ipc_mean, ipc_ci] = meanCi95(ipc_samples);
    auto [lat_mean, lat_ci] = meanCi95(latency_samples);
    samplingStats_->windows +=
        static_cast<double>(ipc_samples.size());
    samplingStats_->ffAccesses += static_cast<double>(ffAccessesDone_);
    samplingStats_->ipcMean += ipc_mean;
    samplingStats_->ipcCi95 += ipc_ci;
    samplingStats_->latencyMean += lat_mean;
    samplingStats_->latencyCi95 += lat_ci;

    RunResult result = finishRun();
    result.sampled = true;
    result.sampleWindows = static_cast<unsigned>(ipc_samples.size());
    result.sampledFfAccesses = ffAccessesDone_;
    result.sampledIpcMean = ipc_mean;
    result.sampledIpcCi95 = ipc_ci;
    result.sampledLatencyMean = lat_mean;
    result.sampledLatencyCi95 = lat_ci;
    return result;
}

RunResult
System::finishRun()
{
    if (progress_)
        maybeProgress(true);

    org_->syncFaultStats(queue_.curCycle());

    if (capture_)
        capture_->save(config_.captureTracePath);

    if (!config_.statsJsonPath.empty()) {
        // Append one line per run: a single run's file is a valid JSON
        // document, a sweep's file is JSONL.
        std::ofstream out(config_.statsJsonPath, std::ios::app);
        if (!out)
            warn("cannot write stats JSON to ", config_.statsJsonPath);
        else {
            dumpStatsJson(out);
            out << "\n";
        }
    }

    RunResult result;
    result.appCycles.assign(config_.apps.size(), 0);
    std::vector<std::uint64_t> app_instr(config_.apps.size(), 0);
    for (const HwThread &thread : threads_) {
        result.cycles = std::max(result.cycles, thread.finishedAt);
        result.meanCycles += static_cast<double>(thread.finishedAt) /
                             static_cast<double>(threads_.size());
        result.instructions += thread.instructions;
        result.appCycles[thread.app] =
            std::max(result.appCycles[thread.app], thread.finishedAt);
        app_instr[thread.app] += thread.instructions;
    }
    result.ipc = result.cycles
        ? static_cast<double>(result.instructions) /
              static_cast<double>(result.cycles)
        : 0.0;
    for (std::size_t a = 0; a < config_.apps.size(); ++a) {
        result.appIpc.push_back(
            result.appCycles[a]
                ? static_cast<double>(app_instr[a]) /
                      static_cast<double>(result.appCycles[a])
                : 0.0);
    }

    result.l1Accesses =
        static_cast<std::uint64_t>(l1Accesses_.value());
    result.l1Misses = static_cast<std::uint64_t>(l1Misses_.value());
    result.l2Accesses =
        static_cast<std::uint64_t>(org_->l2Accesses.value());
    result.l2Hits = static_cast<std::uint64_t>(org_->l2Hits.value());
    result.l2Misses = static_cast<std::uint64_t>(org_->l2Misses.value());
    result.l2MissRate = org_->l2MissRate();
    result.avgL2AccessLatency = org_->averageAccessLatency();

    double walks = 0, walk_cycles = 0;
    for (const auto &walker : walkers_) {
        walks += walker->walks.value();
        walk_cycles += walker->walkCycles.value();
    }
    result.walks = static_cast<std::uint64_t>(walks);
    result.avgWalkLatency = walks > 0 ? walk_cycles / walks : 0.0;
    result.beyondL2Fraction = caches_->beyondL2Fraction();

    // Leakage of the TLB arrays over the run at 2 GHz.
    double tlb_mw = energy::SramModel::leakageMw(org_->totalEntries());
    for (unsigned c = 0; c < config_.org.numCores; ++c)
        tlb_mw += energy::SramModel::leakageMw(100); // L1 group
    energy_.addLeakage(tlb_mw, result.cycles);
    result.energyPj = energy_.totalPj();

    if (auto *nocstar = dynamic_cast<core::NocstarOrg *>(org_.get())) {
        core::Interconnect &fabric = nocstar->fabric();
        result.fabricAvgLatency = fabric.averageLatency();
        result.fabricNoContention = fabric.noContentionFraction();
        result.fabricSetupAttempts =
            static_cast<std::uint64_t>(fabric.setupAttempts.value());
        result.fabricSetupFailures =
            static_cast<std::uint64_t>(fabric.setupFailures.value());
        result.fabricRetryRate = fabric.setupRetryRate();
        if (config_.org.recordGrantWait) {
            double worst = 0, sum = 0;
            unsigned tiles = config_.org.numCores;
            for (CoreId t = 0; t < tiles; ++t) {
                const sim::LatencyHistogram *h = fabric.grantWaitOf(t);
                double p99 = h ? h->percentile(0.99) : 0.0;
                worst = std::max(worst, p99);
                sum += p99;
            }
            result.fabricGrantWaitP99Max = worst;
            result.fabricGrantWaitP99Mean =
                tiles > 0 ? sum / tiles : 0.0;
        }
        result.faultsInjected =
            static_cast<std::uint64_t>(fabric.faultsInjected.value());
        result.degradedMessages =
            static_cast<std::uint64_t>(fabric.degradedMessages.value());
        double messages = fabric.messagesSent.value();
        result.degradedFraction = messages > 0
            ? fabric.degradedMessages.value() / messages
            : 0.0;
    }
    double ecc_rewalks = org_->sliceEccRewalks.value();
    for (const auto &walker : walkers_)
        ecc_rewalks += walker->eccRewalks.value();
    result.eccRewalks = static_cast<std::uint64_t>(ecc_rewalks);

    result.shootdowns =
        static_cast<std::uint64_t>(org_->shootdowns.value());
    result.avgShootdownLatency = result.shootdowns
        ? org_->totalShootdownLatency.value() /
              static_cast<double>(result.shootdowns)
        : 0.0;

    result.concurrencyBuckets = paperBuckets(org_->concurrency);
    result.sliceConcurrencyBuckets =
        paperBuckets(org_->sliceConcurrency);
    return result;
}

} // namespace nocstar::cpu
