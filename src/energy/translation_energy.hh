/**
 * @file
 * Full address-translation energy accounting (paper Fig 14, right).
 *
 * Tracks dynamic energy of TLB lookups, interconnect messages and page
 * table walk memory references, plus TLB leakage integrated over runtime.
 * The paper's observation that page-walk cache/memory references are
 * orders of magnitude costlier than TLB lookups drives the constants.
 */

#ifndef NOCSTAR_ENERGY_TRANSLATION_ENERGY_HH
#define NOCSTAR_ENERGY_TRANSLATION_ENERGY_HH

#include <cstdint>

#include "energy/noc_energy.hh"
#include "energy/sram_model.hh"
#include "sim/types.hh"

namespace nocstar::energy
{

/** Where a page-walk memory reference was serviced. */
enum class WalkService
{
    PwcHit, ///< paging-structure cache, near-free
    L2Hit, ///< per-core L2 data cache
    LlcHit, ///< shared last-level cache
    Dram, ///< main memory
};

/**
 * Accumulates translation energy for one simulated configuration.
 */
class TranslationEnergyModel
{
  public:
    // Dynamic energies (pJ), 28 nm class. Cache / DRAM numbers are the
    // McPAT-flavoured constants the paper's claim rests on: a DRAM PTE
    // fetch is ~3 orders of magnitude above an L1 TLB probe.
    static constexpr double l1TlbLookupPj = 2.0;
    static constexpr double pwcLookupPj = 1.0;
    static constexpr double l2CacheAccessPj = 50.0;
    static constexpr double llcAccessPj = 500.0;
    /** Full system cost of a DRAM PTE fetch (activation + IO + queue
     * occupancy), the term that makes eliminated walks dominate. */
    static constexpr double dramAccessPj = 15000.0;

    /** Count one L1 TLB probe. */
    void addL1Lookup() { dynamicPj_ += l1TlbLookupPj; }

    /**
     * Count @p n L1 TLB probes in one addition. The sharded engine
     * folds per-shard probe counts at window boundaries through this:
     * summing the integer counts first and adding once keeps the
     * accumulated double bit-identical at every shard count (integral
     * doubles below 2^53 add exactly).
     */
    void
    addL1Lookups(std::uint64_t n)
    {
        dynamicPj_ += l1TlbLookupPj * static_cast<double>(n);
    }

    /** Count one L2-TLB-bound message (lookup + traversal). */
    void
    addL2Message(NocStyle style, unsigned hops, std::uint64_t sram_entries)
    {
        dynamicPj_ += NocEnergyModel::message(style, hops,
                                              sram_entries).total();
    }

    /** Count one private-L2-TLB lookup (no interconnect). */
    void
    addPrivateL2Lookup(std::uint64_t sram_entries)
    {
        dynamicPj_ += SramModel::accessEnergyPj(sram_entries);
    }

    /** Count one page-walk memory reference. */
    void
    addWalkReference(WalkService svc)
    {
        switch (svc) {
          case WalkService::PwcHit: dynamicPj_ += pwcLookupPj; break;
          case WalkService::L2Hit: dynamicPj_ += l2CacheAccessPj; break;
          case WalkService::LlcHit: dynamicPj_ += llcAccessPj; break;
          case WalkService::Dram: dynamicPj_ += dramAccessPj; break;
        }
    }

    /**
     * Finalize leakage: @p total_tlb_mw of TLB leakage power integrated
     * over @p cycles cycles at 2 GHz (0.5 ns / cycle).
     */
    void
    addLeakage(double total_tlb_mw, Cycle cycles)
    {
        // mW * ns = pJ.
        leakagePj_ += total_tlb_mw * 0.5 * static_cast<double>(cycles);
    }

    double dynamicPj() const { return dynamicPj_; }
    double leakagePj() const { return leakagePj_; }
    double totalPj() const { return dynamicPj_ + leakagePj_; }

    void reset() { dynamicPj_ = leakagePj_ = 0; }

  private:
    double dynamicPj_ = 0;
    double leakagePj_ = 0;
};

} // namespace nocstar::energy

#endif // NOCSTAR_ENERGY_TRANSLATION_ENERGY_HH
