/**
 * @file
 * Interconnect energy model implementation.
 */

#include "energy/noc_energy.hh"

#include "energy/sram_model.hh"

namespace nocstar::energy
{

MessageEnergy
NocEnergyModel::message(NocStyle style, unsigned hops,
                        std::uint64_t sram_entries)
{
    MessageEnergy e;
    e.link = linkPjPerHop * hops;
    e.sram = SramModel::accessEnergyPj(sram_entries);

    switch (style) {
      case NocStyle::MonolithicMesh:
      case NocStyle::DistributedMesh:
        e.switching = meshRouterPj * hops;
        e.control = meshControlPjPerHop * hops;
        break;
      case NocStyle::Nocstar:
        e.switching = nocstarSwitchPj * hops;
        e.control = nocstarControlBasePj + nocstarControlPjPerHop * hops;
        break;
    }
    return e;
}

} // namespace nocstar::energy
