/**
 * @file
 * SRAM model implementation.
 */

#include "energy/sram_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace nocstar::energy
{

Cycle
SramModel::accessLatency(std::uint64_t entries)
{
    if (entries == 0)
        panic("SRAM with zero entries");
    double doublings =
        std::log2(static_cast<double>(entries) /
                  static_cast<double>(refEntries));
    double lat = refLatency + latencyPerDoubling * doublings;
    lat = std::max(lat, minLatency);
    // Whole cycles: an array that cannot quite make a cycle boundary
    // pays the next one (so the 1024- and 920-entry arrays are 9
    // cycles, matching the paper's methodology).
    return static_cast<Cycle>(std::ceil(lat - 1e-9));
}

double
SramModel::accessEnergyPj(std::uint64_t entries)
{
    // Bitline/wordline energy scales roughly with sqrt(capacity) for a
    // square-ish array; 0.27 pJ * sqrt(entries) puts a 1024-entry slice
    // at ~8.6 pJ and a 48K-entry monolithic array at ~60 pJ, matching the
    // relative magnitudes in Fig 11(b).
    return 0.27 * std::sqrt(static_cast<double>(entries));
}

double
SramModel::leakageMw(std::uint64_t entries)
{
    // Fig 9: a per-tile slice (~1K entries incl. periphery) is 10.91 mW
    // at the 2 GHz target; leakage tracks capacity linearly.
    return 10.91 * static_cast<double>(entries) / 1024.0;
}

double
SramModel::areaMm2(std::uint64_t entries)
{
    // Fig 9: 0.4646 mm^2 for the per-tile slice; linear in capacity.
    return 0.4646 * static_cast<double>(entries) / 1024.0;
}

} // namespace nocstar::energy
