/**
 * @file
 * Analytic SRAM timing / energy / area model, calibrated to the paper's
 * published 28 nm TSMC memory-compiler points.
 *
 * Calibration anchors (paper Fig 3, Fig 9):
 *  - a 1536-entry L2 TLB array reads in 9 cycles at 2 GHz;
 *  - a 32x1536-entry array reads in ~15 cycles;
 *  - latency grows close to linearly in log2(entries) between those points;
 *  - a per-tile TLB SRAM slice burns 10.91 mW in 0.4646 mm^2.
 */

#ifndef NOCSTAR_ENERGY_SRAM_MODEL_HH
#define NOCSTAR_ENERGY_SRAM_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace nocstar::energy
{

/**
 * SRAM scaling model for TLB arrays.
 */
class SramModel
{
  public:
    /** Entry count of the reference array (Intel Skylake private L2). */
    static constexpr std::uint64_t refEntries = 1536;
    /** Access latency of the reference array, cycles at 2 GHz. */
    static constexpr double refLatency = 9.0;
    /** Added cycles per doubling of entry count (fits the 32x point). */
    static constexpr double latencyPerDoubling = 1.2;
    /** Floor: even tiny arrays pay decode + sense + route overhead. */
    static constexpr double minLatency = 6.0;

    /**
     * Access latency in whole cycles for an array of @p entries entries.
     * Matches Fig 3: 0.5x -> ~8, 1x -> 9, 32x -> 15, 64x -> ~16.
     */
    static Cycle accessLatency(std::uint64_t entries);

    /** Dynamic read/write energy in pJ for one access. */
    static double accessEnergyPj(std::uint64_t entries);

    /** Leakage power in mW for an array of @p entries entries. */
    static double leakageMw(std::uint64_t entries);

    /** Area in mm^2 (28 nm) for an array of @p entries entries. */
    static double areaMm2(std::uint64_t entries);
};

} // namespace nocstar::energy

#endif // NOCSTAR_ENERGY_SRAM_MODEL_HH
