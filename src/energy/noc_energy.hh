/**
 * @file
 * Per-message interconnect energy model for the three shared-TLB
 * interconnect styles, reproducing the component split of paper
 * Fig 11(b): link / switch / control / SRAM.
 *
 * Constants are pJ per event at 28 nm, chosen so that the relative
 * magnitudes match the figure: the monolithic design is dominated by its
 * large SRAM; the distributed mesh pays buffered-router switch energy per
 * hop; NOCSTAR pays almost nothing in the datapath muxes but slightly
 * more control energy than a mesh because every link arbiter on the path
 * is requested in parallel.
 */

#ifndef NOCSTAR_ENERGY_NOC_ENERGY_HH
#define NOCSTAR_ENERGY_NOC_ENERGY_HH

#include <cstdint>

namespace nocstar::energy
{

/** Interconnect styles distinguished by the energy model. */
enum class NocStyle
{
    MonolithicMesh, ///< banked monolithic TLB behind a multi-hop mesh
    DistributedMesh, ///< per-tile slices behind a multi-hop mesh
    Nocstar, ///< per-tile slices behind the circuit-switched fabric
};

/** Energy of one message broken into Fig 11(b)'s components (pJ). */
struct MessageEnergy
{
    double link = 0;
    double switching = 0;
    double control = 0;
    double sram = 0;

    double total() const { return link + switching + control + sram; }
};

/**
 * Computes per-message traversal + lookup energy.
 */
class NocEnergyModel
{
  public:
    /** Wire energy per hop of link traversal (pJ / 128-bit message). */
    static constexpr double linkPjPerHop = 1.5;
    /** Buffered mesh router: buffer write/read + crossbar + allocators. */
    static constexpr double meshRouterPj = 3.8;
    /** NOCSTAR latchless switch: one mux stage, no buffering. */
    static constexpr double nocstarSwitchPj = 0.7;
    /** Mesh per-hop control (local route compute + switch allocation). */
    static constexpr double meshControlPjPerHop = 0.5;
    /** NOCSTAR per-link arbiter request/grant wires (parallel setup). */
    static constexpr double nocstarControlPjPerHop = 1.3;
    /** NOCSTAR fixed control cost (requester-side AND tree, retry). */
    static constexpr double nocstarControlBasePj = 2.0;

    /**
     * Energy of one request/response message that traverses @p hops hops
     * and performs one lookup in an SRAM array of @p sram_entries.
     */
    static MessageEnergy message(NocStyle style, unsigned hops,
                                 std::uint64_t sram_entries);
};

} // namespace nocstar::energy

#endif // NOCSTAR_ENERGY_NOC_ENERGY_HH
