/**
 * @file
 * Per-tile area / power report for the NOCSTAR interconnect components
 * (paper Fig 9: place-and-routed tile in 28 nm TSMC, 0.5 ns clock).
 */

#ifndef NOCSTAR_ENERGY_AREA_HH
#define NOCSTAR_ENERGY_AREA_HH

#include <algorithm>
#include <cstdint>

#include "energy/sram_model.hh"

namespace nocstar::energy
{

/** Power (mW) and area (mm^2) of one tile component. */
struct ComponentBudget
{
    const char *name;
    double powerMw;
    double areaMm2;
};

/**
 * Fig 9's published post-synthesis numbers plus derived ratios.
 */
class TileAreaReport
{
  public:
    /** NOCSTAR latchless switch per tile. */
    static constexpr ComponentBudget tileSwitch{"Switch", 0.43, 0.0022};
    /** Four link arbiters per tile (N/S/E/W). */
    static constexpr ComponentBudget arbiters{"4x Arbiters", 2.39, 0.0038};
    /** The per-tile L2 TLB SRAM slice. */
    static constexpr ComponentBudget sramTlb{"SRAM TLB", 10.91, 0.4646};

    /** Interconnect area as a fraction of the tile's TLB SRAM area. */
    static double
    interconnectAreaFraction()
    {
        return (tileSwitch.areaMm2 + arbiters.areaMm2) / sramTlb.areaMm2;
    }

    /**
     * Area-equivalent slice entries: shrink a @p private_entries private
     * TLB so slice + interconnect fits the same budget (Table II's
     * 1024 -> 920 normalization).
     */
    static std::uint64_t
    areaEquivalentSliceEntries(std::uint64_t private_entries)
    {
        double tlb_area = SramModel::areaMm2(private_entries);
        double noc_area = tileSwitch.areaMm2 + arbiters.areaMm2;
        double per_entry = tlb_area / static_cast<double>(private_entries);
        auto loss = static_cast<std::uint64_t>(noc_area / per_entry);
        // The paper conservatively rounds the loss up to ~10%, then keeps
        // the slice a whole number of 8-way sets (1024 -> 920).
        std::uint64_t conservative = private_entries * 9 / 10;
        std::uint64_t exact = private_entries - loss;
        std::uint64_t entries = std::min(exact, conservative);
        entries -= entries % 8;
        return entries ? entries : 8;
    }
};

} // namespace nocstar::energy

#endif // NOCSTAR_ENERGY_AREA_HH
