/**
 * @file
 * Quantitative back-of-envelope comparison of TLB interconnect design
 * choices, reproducing paper Table I's latency / bandwidth / area /
 * power matrix for Bus, Mesh, FBFly (wide and narrow), SMART and
 * NOCSTAR.
 *
 * Each candidate is reduced to four scalar figures of merit for an
 * N-tile chip, then scored against thresholds; the resulting good /
 * bad ratings reproduce Table I's pattern.
 */

#ifndef NOCSTAR_NOC_DESIGN_SPACE_HH
#define NOCSTAR_NOC_DESIGN_SPACE_HH

#include <string>
#include <vector>

#include "noc/topology.hh"

namespace nocstar::noc
{

/** Candidate interconnect styles of Table I. */
enum class NocDesign
{
    Bus,
    Mesh,
    FbflyWide,
    FbflyNarrow,
    Smart,
    Nocstar,
};

/** Three-level rating mirroring the paper's check/cross notation. */
enum class Rating
{
    Good, ///< single check
    VeryGood, ///< double check (FBFly-wide bandwidth)
    Bad, ///< single cross
    VeryBad, ///< double cross (FBFly-wide area/power)
};

/** Raw figures of merit for one design. */
struct NocFigures
{
    NocDesign design;
    std::string name;
    /** Average unloaded request latency, cycles. */
    double avgLatency;
    /** Saturation throughput, accepted packets/node/cycle. */
    double saturationThroughput;
    /** Area proxy: wire-mm of links + buffer bits + crossbar ports. */
    double areaProxy;
    /** Power proxy at the evaluation injection rate. */
    double powerProxy;

    Rating latencyRating;
    Rating bandwidthRating;
    Rating areaRating;
    Rating powerRating;
};

/**
 * Computes the Table I matrix for a given tile count.
 */
class DesignSpace
{
  public:
    /**
     * @param cores number of tiles.
     * @param hpc_max SMART / NOCSTAR hops-per-cycle limit.
     */
    explicit DesignSpace(unsigned cores, unsigned hpc_max = 16);

    /** Figures of merit for all six designs, in Table I order. */
    std::vector<NocFigures> evaluate() const;

    static const char *ratingString(Rating r);

  private:
    NocFigures figuresFor(NocDesign design) const;

    GridTopology topo_;
    unsigned hpcMax_;
};

} // namespace nocstar::noc

#endif // NOCSTAR_NOC_DESIGN_SPACE_HH
