/**
 * @file
 * 2D-mesh tile topology shared by every interconnect model: coordinate
 * math, Manhattan distances, and dimension-ordered (XY) path
 * enumeration down to individual directed links.
 *
 * Links are identified by (source tile, output direction). XY routing
 * first exhausts the X dimension, then Y -- the routing policy NOCSTAR's
 * link-arbiter fan-in analysis assumes (paper Fig 7(d)).
 */

#ifndef NOCSTAR_NOC_TOPOLOGY_HH
#define NOCSTAR_NOC_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nocstar::noc
{

/** Output port directions of a tile. */
enum class Direction : std::uint8_t
{
    East = 0,
    West = 1,
    North = 2,
    South = 3,
};

/**
 * A directed inter-tile link: the @p dir output of tile @p node.
 *
 * Flattened ids are 32-bit throughout (link tables, path tables,
 * stats vectors). GridTopology's constructor bounds the tile count so
 * node * 4 + dir can never overflow: the link id space stays a dense
 * 32-bit range even at the 1024-tile design points and far beyond.
 */
struct LinkId
{
    CoreId node;
    Direction dir;

    std::uint32_t
    flatten() const
    {
        return node * 4 + static_cast<std::uint32_t>(dir);
    }

    bool
    operator==(const LinkId &other) const
    {
        return node == other.node && dir == other.dir;
    }
};

/** Tile coordinate. */
struct Coord
{
    unsigned x;
    unsigned y;
};

/**
 * A width x height tile grid.
 */
class GridTopology
{
  public:
    /**
     * Bounds the tile count so every flattened link id (tile * 4 + dir)
     * and dense per-link table index fits comfortably in 32 bits.
     */
    static constexpr unsigned maxTiles = 1u << 26;

    GridTopology(unsigned width, unsigned height)
        : width_(width), height_(height)
    {
        if (width == 0 || height == 0)
            fatal("degenerate grid ", width, "x", height);
        if (static_cast<std::uint64_t>(width) * height > maxTiles)
            fatal("grid ", width, "x", height, " exceeds the ",
                  maxTiles, "-tile bound of the 32-bit link id space");
    }

    /** Near-square grid for @p cores tiles (power-of-two friendly). */
    static GridTopology
    forCores(unsigned cores)
    {
        if (cores == 0)
            fatal("grid for zero cores");
        unsigned width = 1;
        while (width * width < cores)
            width *= 2;
        unsigned height = (cores + width - 1) / width;
        if (width * height < cores)
            fatal("cannot tile ", cores, " cores");
        return {width, height};
    }

    unsigned width() const { return width_; }
    unsigned height() const { return height_; }
    unsigned numTiles() const { return width_ * height_; }

    /** Total directed links in the mesh. */
    unsigned
    numLinks() const
    {
        return 2 * ((width_ - 1) * height_ + (height_ - 1) * width_);
    }

    Coord
    coordOf(CoreId tile) const
    {
        return {static_cast<unsigned>(tile % width_),
                static_cast<unsigned>(tile / width_)};
    }

    CoreId
    tileAt(Coord c) const
    {
        return c.y * width_ + c.x;
    }

    /** Manhattan hop distance. */
    unsigned
    hops(CoreId a, CoreId b) const
    {
        Coord ca = coordOf(a), cb = coordOf(b);
        unsigned dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
        unsigned dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
        return dx + dy;
    }

    /** Mean Manhattan distance between distinct uniform-random tiles. */
    double
    averageHops() const
    {
        // E[|x1-x2|] for uniform over 0..w-1 is (w^2-1)/(3w).
        auto mean_abs = [](double n) { return (n * n - 1.0) / (3.0 * n); };
        return mean_abs(width_) + mean_abs(height_);
    }

    /** Directed links of the XY path src -> dst (empty if equal). */
    std::vector<LinkId>
    xyPath(CoreId src, CoreId dst) const
    {
        std::vector<LinkId> path;
        Coord cur = coordOf(src);
        Coord end = coordOf(dst);
        while (cur.x != end.x) {
            Direction dir =
                cur.x < end.x ? Direction::East : Direction::West;
            path.push_back({tileAt(cur), dir});
            cur.x += cur.x < end.x ? 1 : -1u;
        }
        while (cur.y != end.y) {
            Direction dir =
                cur.y < end.y ? Direction::South : Direction::North;
            path.push_back({tileAt(cur), dir});
            cur.y += cur.y < end.y ? 1 : -1u;
        }
        return path;
    }

    /**
     * Append the flattened link ids of the XY path src -> dst to
     * @p out. Identical link sequence to xyPath(), but allocation-free
     * for callers that keep a reusable buffer (path tables, on-demand
     * path generation at large tile counts).
     */
    void
    xyLinksInto(CoreId src, CoreId dst,
                std::vector<std::uint32_t> &out) const
    {
        Coord cur = coordOf(src);
        Coord end = coordOf(dst);
        while (cur.x != end.x) {
            Direction dir =
                cur.x < end.x ? Direction::East : Direction::West;
            out.push_back(LinkId{tileAt(cur), dir}.flatten());
            cur.x += cur.x < end.x ? 1 : -1u;
        }
        while (cur.y != end.y) {
            Direction dir =
                cur.y < end.y ? Direction::South : Direction::North;
            out.push_back(LinkId{tileAt(cur), dir}.flatten());
            cur.y += cur.y < end.y ? 1 : -1u;
        }
    }

    /** Dense id space for per-link state tables. */
    std::uint32_t linkIndexSpace() const { return numTiles() * 4; }

  private:
    unsigned width_;
    unsigned height_;
};

} // namespace nocstar::noc

#endif // NOCSTAR_NOC_TOPOLOGY_HH
