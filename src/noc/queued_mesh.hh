/**
 * @file
 * Contention-tracking mesh for the synthetic-traffic study (paper
 * Fig 11(c)): each directed link carries one packet per cycle; a packet
 * advances hop by hop paying router + wire delay and waits whenever the
 * next link is occupied. This captures the queueing growth a buffered
 * multi-hop mesh exhibits as injection rate rises.
 */

#ifndef NOCSTAR_NOC_QUEUED_MESH_HH
#define NOCSTAR_NOC_QUEUED_MESH_HH

#include <vector>

#include "noc/network.hh"

namespace nocstar::noc
{

/**
 * Mesh with per-link serialization.
 */
class QueuedMeshNetwork : public Network
{
  public:
    QueuedMeshNetwork(const std::string &name, const GridTopology &topo,
                      stats::StatGroup *parent = nullptr,
                      Cycle router_delay = 1, Cycle wire_delay = 1)
        : Network(name, topo, parent),
          routerDelay_(router_delay), wireDelay_(wire_delay),
          linkFree_(topo.linkIndexSpace(), 0)
    {}

  protected:
    Cycle
    latency(CoreId src, CoreId dst, Cycle now) override
    {
        Cycle t = now;
        for (const LinkId &link : topo_.xyPath(src, dst)) {
            t += routerDelay_; // route compute / switch allocation
            Cycle &free_at = linkFree_[link.flatten()];
            if (free_at > t)
                t = free_at; // wait for the link
            free_at = t + wireDelay_; // occupy for one flit time
            t += wireDelay_;
        }
        return t - now;
    }

  private:
    Cycle routerDelay_;
    Cycle wireDelay_;
    std::vector<Cycle> linkFree_;
};

} // namespace nocstar::noc

#endif // NOCSTAR_NOC_QUEUED_MESH_HH
