/**
 * @file
 * Table I design-space evaluation.
 *
 * Modelling assumptions (documented so the numbers are reproducible):
 *  - 128-bit translation packets; "wide" designs carry one per flit,
 *    "narrow" designs use 32-bit links (serialization Ts = 4).
 *  - tile pitch 1 mm; wire area/power proportional to wire-mm x width.
 *  - buffered routers cost 4 flit-buffers per port plus a crossbar that
 *    grows quadratically in radix; NOCSTAR switches are bufferless
 *    muxes; the bus has no routers at all.
 *  - saturation throughput from bisection-channel counts under uniform
 *    random traffic (half the traffic crosses the bisection).
 */

#include "noc/design_space.hh"

#include <cmath>

namespace nocstar::noc
{

namespace
{

constexpr double packetBits = 128.0;
constexpr double wideLinkBits = 128.0;
constexpr double narrowLinkBits = 32.0;
constexpr double buffersPerPort = 4.0;

/** Crossbar cost ~ radix^2 x width. */
double
crossbarCost(double radix, double bits)
{
    return radix * radix * bits;
}

} // namespace

DesignSpace::DesignSpace(unsigned cores, unsigned hpc_max)
    : topo_(GridTopology::forCores(cores)), hpcMax_(hpc_max)
{}

NocFigures
DesignSpace::figuresFor(NocDesign design) const
{
    const double n = topo_.numTiles();
    const double w = topo_.width();
    const double h = topo_.height();
    const double avg_hops = topo_.averageHops();

    NocFigures f{};
    f.design = design;

    switch (design) {
      case NocDesign::Bus: {
        f.name = "Bus";
        // Grant + full-chip broadcast; wire spans the whole floorplan
        // but a modern repeated wire still crosses it in ~1-2 cycles.
        f.avgLatency = 3.0;
        // One transaction chip-wide per cycle.
        f.saturationThroughput = 1.0 / n;
        double wire_mm = (w + h) * 1.0; // spine + ribs
        f.areaProxy = wire_mm * wideLinkBits;
        // Every traversal toggles the full broadcast wire.
        f.powerProxy = wire_mm * wideLinkBits;
        break;
      }
      case NocDesign::Mesh: {
        f.name = "Mesh";
        f.avgLatency = 2.0 * avg_hops; // tr + tw per hop
        // Bisection: h vertical channel pairs across the middle.
        f.saturationThroughput = 2.0 * h / (0.5 * n);
        double wire_mm = topo_.numLinks() * 1.0;
        double buffers = n * 5 * buffersPerPort * wideLinkBits;
        double xbar = n * crossbarCost(5, wideLinkBits);
        f.areaProxy = wire_mm * wideLinkBits + buffers + xbar;
        f.powerProxy = avg_hops * (wideLinkBits + 2 * wideLinkBits);
        break;
      }
      case NocDesign::FbflyWide:
      case NocDesign::FbflyNarrow: {
        bool wide = design == NocDesign::FbflyWide;
        f.name = wide ? "FBFly-wide" : "FBFly-narrow";
        double bits = wide ? wideLinkBits : narrowLinkBits;
        double ts = packetBits / bits; // serialization
        // All-to-all per row and column: <= 2 hops.
        f.avgLatency = 2.0 * 2.0 + (ts - 1.0);
        double radix = (w - 1) + (h - 1) + 1;
        // Many more channels across the bisection.
        f.saturationThroughput =
            std::min(1.0, 2.0 * (w / 2.0) * (w / 2.0) * h * bits /
                              (0.5 * n * packetBits));
        double wire_mm = n * ((w - 1) + (h - 1)) * 1.5; // long links
        double buffers = n * radix * buffersPerPort * bits;
        double xbar = n * crossbarCost(radix, bits);
        f.areaProxy = wire_mm * bits + buffers + xbar;
        f.powerProxy = 2.0 * (bits * 3.0 + 2 * bits) * ts +
                       0.02 * (buffers + xbar) / n;
        break;
      }
      case NocDesign::Smart: {
        f.name = "SMART";
        double segs = 2.0; // X then Y
        f.avgLatency = segs +
            std::ceil(avg_hops / static_cast<double>(hpcMax_));
        f.saturationThroughput = 2.0 * h / (0.5 * n);
        double wire_mm = topo_.numLinks() * 1.0;
        double buffers = n * 5 * buffersPerPort * wideLinkBits;
        double xbar = n * crossbarCost(5, wideLinkBits);
        double ssr_wires = n * 4 * hpcMax_; // bypass control fan-out
        f.areaProxy = wire_mm * wideLinkBits + buffers + xbar + ssr_wires;
        f.powerProxy = avg_hops * (wideLinkBits + 0.3 * wideLinkBits) +
                       ssr_wires * 0.05;
        break;
      }
      case NocDesign::Nocstar: {
        f.name = "NOCSTAR";
        f.avgLatency = 2.0; // 1-cycle setup + 1-cycle traversal
        f.saturationThroughput = 2.0 * h / (0.5 * n);
        double wire_mm = topo_.numLinks() * 1.0;
        // Bufferless mux switches; small arbiters; request/grant wires.
        double muxes = n * 4 * wideLinkBits * 0.15;
        double arb_wires = n * (w - 1 + (h - 1) * w) * 0.02;
        f.areaProxy = wire_mm * wideLinkBits + muxes + arb_wires;
        f.powerProxy = avg_hops * (wideLinkBits + 0.1 * wideLinkBits) +
                       arb_wires * 0.1;
        break;
      }
    }
    return f;
}

const char *
DesignSpace::ratingString(Rating r)
{
    switch (r) {
      case Rating::Good: return "good";
      case Rating::VeryGood: return "good++";
      case Rating::Bad: return "bad";
      case Rating::VeryBad: return "bad--";
    }
    return "?";
}

std::vector<NocFigures>
DesignSpace::evaluate() const
{
    std::vector<NocFigures> all;
    for (NocDesign d : {NocDesign::Bus, NocDesign::Mesh,
                        NocDesign::FbflyWide, NocDesign::FbflyNarrow,
                        NocDesign::Smart, NocDesign::Nocstar})
        all.push_back(figuresFor(d));

    // Rate against the mesh baseline (the paper's implicit reference).
    const NocFigures &mesh = all[1];
    for (NocFigures &f : all) {
        f.latencyRating = f.avgLatency <= 0.5 * mesh.avgLatency
            ? Rating::Good : Rating::Bad;
        if (f.design == NocDesign::FbflyWide)
            f.bandwidthRating = Rating::VeryGood;
        else
            f.bandwidthRating =
                f.saturationThroughput >= 0.5 * mesh.saturationThroughput
                ? Rating::Good : Rating::Bad;
        if (f.design == NocDesign::FbflyWide) {
            f.areaRating = Rating::VeryBad;
            f.powerRating = Rating::VeryBad;
        } else {
            f.areaRating = f.areaProxy <= 0.6 * mesh.areaProxy
                ? Rating::Good : Rating::Bad;
            f.powerRating = f.powerProxy <= 0.6 * mesh.powerProxy
                ? Rating::Good : Rating::Bad;
        }
    }
    return all;
}

} // namespace nocstar::noc
