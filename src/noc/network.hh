/**
 * @file
 * Abstract one-way traversal-latency interface implemented by the
 * baseline interconnects (mesh, SMART, bus, ideal). The NOCSTAR fabric
 * is event-driven and lives in src/core; these baselines are modelled
 * per the paper's methodology as contention-free latency functions
 * ("we place enough buffers and links in the system to prevent link
 * contention").
 */

#ifndef NOCSTAR_NOC_NETWORK_HH
#define NOCSTAR_NOC_NETWORK_HH

#include <memory>
#include <string>

#include "noc/topology.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace nocstar::noc
{

/**
 * Base interconnect latency model.
 */
class Network : public stats::StatGroup
{
  public:
    Network(const std::string &name, const GridTopology &topo,
            stats::StatGroup *parent = nullptr)
        : stats::StatGroup(name, parent),
          messages(this, "messages", "messages traversed"),
          hopCount(this, "hops", "total hops traversed"),
          latencyCycles(this, "latency_cycles",
                        "total one-way traversal cycles"),
          topo_(topo)
    {}

    /**
     * One-way latency for a message injected at @p now from tile
     * @p src to tile @p dst; implementations may track contention.
     */
    Cycle
    traverse(CoreId src, CoreId dst, Cycle now)
    {
        Cycle lat = latency(src, dst, now);
        ++messages;
        hopCount += static_cast<double>(topo_.hops(src, dst));
        latencyCycles += static_cast<double>(lat);
        return lat;
    }

    const GridTopology &topology() const { return topo_; }

    stats::Scalar messages;
    stats::Scalar hopCount;
    stats::Scalar latencyCycles;

  protected:
    virtual Cycle latency(CoreId src, CoreId dst, Cycle now) = 0;

    GridTopology topo_;
};

/**
 * Multi-hop mesh: tr = 1 cycle router + tw = 1 cycle link per hop.
 */
class MeshNetwork : public Network
{
  public:
    MeshNetwork(const std::string &name, const GridTopology &topo,
                stats::StatGroup *parent = nullptr,
                Cycle router_delay = 1, Cycle wire_delay = 1)
        : Network(name, topo, parent),
          routerDelay_(router_delay), wireDelay_(wire_delay)
    {}

  protected:
    Cycle
    latency(CoreId src, CoreId dst, Cycle) override
    {
        unsigned h = topo_.hops(src, dst);
        return static_cast<Cycle>(h) * (routerDelay_ + wireDelay_);
    }

  private:
    Cycle routerDelay_;
    Cycle wireDelay_;
};

/**
 * SMART mesh: packets bypass up to HPCmax routers per cycle over
 * pre-armed straight paths; one extra cycle arms the SMART-hop setup
 * request (SSR) per traversal segment.
 */
class SmartNetwork : public Network
{
  public:
    SmartNetwork(const std::string &name, const GridTopology &topo,
                 unsigned hpc_max, stats::StatGroup *parent = nullptr)
        : Network(name, topo, parent), hpcMax_(hpc_max ? hpc_max : 1)
    {}

    unsigned hpcMax() const { return hpcMax_; }

  protected:
    Cycle
    latency(CoreId src, CoreId dst, Cycle) override
    {
        unsigned h = topo_.hops(src, dst);
        if (h == 0)
            return 0;
        // XY paths bend at most once: each dimension segment needs its
        // own SSR setup + ceil(len/HPCmax) traversal cycles.
        Coord a = topo_.coordOf(src), b = topo_.coordOf(dst);
        unsigned dx = a.x > b.x ? a.x - b.x : b.x - a.x;
        unsigned dy = a.y > b.y ? a.y - b.y : b.y - a.y;
        Cycle total = 0;
        for (unsigned seg : {dx, dy}) {
            if (seg == 0)
                continue;
            total += 1 + (seg + hpcMax_ - 1) / hpcMax_;
        }
        return total;
    }

  private:
    unsigned hpcMax_;
};

/**
 * Shared bus: single-cycle broadcast once granted, but only one
 * transaction per cycle chip-wide; later requests queue.
 */
class BusNetwork : public Network
{
  public:
    using Network::Network;

  protected:
    Cycle
    latency(CoreId src, CoreId dst, Cycle now) override
    {
        if (src == dst)
            return 0;
        Cycle grant = std::max(now + 1, nextFree_);
        nextFree_ = grant + 1;
        return (grant - now) + 1;
    }

  private:
    Cycle nextFree_ = 0;
};

/** Zero-latency ideal interconnect. */
class IdealNetwork : public Network
{
  public:
    using Network::Network;

  protected:
    Cycle latency(CoreId, CoreId, Cycle) override { return 0; }
};

} // namespace nocstar::noc

#endif // NOCSTAR_NOC_NETWORK_HH
