/**
 * @file
 * Cycle-level tests of the NOCSTAR circuit-switched fabric: setup /
 * traversal timing, all-or-nothing link acquisition, priority
 * rotation, round-trip holds, HPCmax pipelining and starvation
 * freedom.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/interconnect.hh"
#include "sim/random.hh"

using namespace nocstar;
using namespace nocstar::core;

namespace
{

struct FabricHarness
{
    EventQueue queue;
    stats::StatGroup root{"root"};
    noc::GridTopology topo;
    std::unique_ptr<Interconnect> fabricPtr;
    Interconnect &fabric;

    explicit FabricHarness(unsigned cores = 16, FabricConfig cfg = {})
        : topo(noc::GridTopology::forCores(cores)),
          fabricPtr(makeInterconnect("fabric", queue, topo, cfg, &root)),
          fabric(*fabricPtr)
    {}
};

} // namespace

TEST(Fabric, LocalDeliveryIsImmediate)
{
    FabricHarness h;
    Cycle delivered = invalidCycle;
    h.fabric.send(3, 3, 17, [&](Cycle at) { delivered = at; });
    EXPECT_EQ(delivered, 17u); // synchronous, no network
}

TEST(Fabric, UncontendedRemoteTakesSetupPlusTraversal)
{
    FabricHarness h;
    Cycle delivered = invalidCycle;
    // 4x4 grid: 0 -> 15 is 6 hops, HPCmax 16 -> 1-cycle traversal.
    h.fabric.send(0, 15, 10, [&](Cycle at) { delivered = at; });
    h.queue.run();
    EXPECT_EQ(delivered, 11u); // setup in 10, latched end of 11
    EXPECT_DOUBLE_EQ(h.fabric.averageLatency(), 2.0);
    EXPECT_DOUBLE_EQ(h.fabric.noContentionFraction(), 1.0);
}

TEST(Fabric, HpcMaxPipelinesLongPaths)
{
    FabricConfig cfg;
    cfg.hpcMax = 4;
    FabricHarness h(64, cfg);
    Cycle delivered = invalidCycle;
    // 8x8 grid: 0 -> 63 is 14 hops -> ceil(14/4) = 4 cycles.
    h.fabric.send(0, 63, 0, [&](Cycle at) { delivered = at; });
    h.queue.run();
    EXPECT_EQ(delivered, 4u);
}

TEST(Fabric, OverlappingPathsConflictAndRetry)
{
    FabricHarness h;
    std::map<int, Cycle> log;
    // Both requests need the East link out of tile 1 in cycle 5; tile
    // 0 holds priority in epoch 0, so tile 1's request fails and
    // retries.
    h.fabric.send(0, 3, 5, [&](Cycle at) { log[0] = at; });
    h.fabric.send(1, 2, 5, [&](Cycle at) { log[1] = at; });
    h.queue.run();
    ASSERT_EQ(log.size(), 2u);
    // Winner arrives at 6; loser retries at 6, arrives at 7.
    EXPECT_EQ(log[0], 6u);
    EXPECT_EQ(log[1], 7u);
    EXPECT_EQ(h.fabric.setupFailures.value(), 1.0);
    EXPECT_DOUBLE_EQ(h.fabric.noContentionFraction(), 0.5);
}

TEST(Fabric, SameSourceRequestsQueueOnTheSetupPort)
{
    FabricHarness h;
    std::vector<Cycle> arrivals;
    // One setup port per tile: back-to-back messages from tile 0
    // arbitrate oldest-first, one per cycle, without "failing".
    h.fabric.send(0, 3, 5, [&](Cycle at) { arrivals.push_back(at); });
    h.fabric.send(0, 2, 5, [&](Cycle at) { arrivals.push_back(at); });
    h.queue.run();
    EXPECT_EQ(arrivals, (std::vector<Cycle>{6, 7}));
    EXPECT_EQ(h.fabric.setupFailures.value(), 0.0);
    EXPECT_DOUBLE_EQ(h.fabric.noContentionFraction(), 0.5);
}

TEST(Fabric, DisjointPathsGrantedSameCycle)
{
    FabricHarness h;
    std::vector<Cycle> arrivals;
    h.fabric.send(0, 1, 5, [&](Cycle at) { arrivals.push_back(at); });
    h.fabric.send(15, 14, 5, [&](Cycle at) { arrivals.push_back(at); });
    h.queue.run();
    EXPECT_EQ(arrivals, (std::vector<Cycle>{6, 6}));
    EXPECT_EQ(h.fabric.setupFailures.value(), 0.0);
}

TEST(Fabric, AllOrNothingAcquisition)
{
    FabricHarness h;
    // Request A: 0 -> 2 (east, east). Request B: 1 -> 3 (east, east).
    // They share the east link out of tile 1, so they cannot both be
    // granted in cycle 5 even though B's first link is free.
    std::map<int, Cycle> arrivals;
    h.fabric.send(0, 2, 5, [&](Cycle at) { arrivals[0] = at; });
    h.fabric.send(1, 3, 5, [&](Cycle at) { arrivals[1] = at; });
    h.queue.run();
    EXPECT_EQ(arrivals[0], 6u);
    EXPECT_EQ(arrivals[1], 7u);
}

TEST(Fabric, PriorityRotationChangesWinner)
{
    FabricConfig cfg;
    cfg.priorityEpoch = 1000;
    FabricHarness h(16, cfg);

    // In epoch 0 (rotation base 0), core 0 outranks core 1.
    std::map<int, Cycle> first;
    h.fabric.send(1, 3, 5, [&](Cycle at) { first[1] = at; });
    h.fabric.send(0, 2, 5, [&](Cycle at) { first[0] = at; });
    h.queue.run();
    EXPECT_LT(first[0], first[1]);

    // In epoch 1 (rotation base 1), core 1 outranks core 0.
    std::map<int, Cycle> second;
    h.fabric.send(1, 3, 1005, [&](Cycle at) { second[1] = at; });
    h.fabric.send(0, 2, 1005, [&](Cycle at) { second[0] = at; });
    h.queue.run();
    EXPECT_LT(second[1], second[0]);
}

TEST(Fabric, IdealModeNeverFails)
{
    FabricConfig cfg;
    cfg.ideal = true;
    FabricHarness h(16, cfg);
    std::vector<Cycle> arrivals;
    // Eight different sources converge on tile 0's links; the ideal
    // fabric grants all of them in the same cycle anyway.
    for (CoreId src = 1; src <= 8; ++src)
        h.fabric.send(src, 0, 5,
                      [&](Cycle at) { arrivals.push_back(at); });
    h.queue.run();
    ASSERT_EQ(arrivals.size(), 8u);
    for (Cycle at : arrivals)
        EXPECT_EQ(at, 6u);
    EXPECT_EQ(h.fabric.setupFailures.value(), 0.0);
}

TEST(Fabric, RoundTripHoldsLinksThroughOccupancy)
{
    FabricHarness h;
    Cycle arrival = invalidCycle;
    h.fabric.sendRoundTrip(0, 1, 5, 10, [&](Cycle at) { arrival = at; });
    // A one-way request over the same link cannot be granted until the
    // round trip completes (hold = 1 + 10 + 1 = 12 cycles from 5).
    Cycle second = invalidCycle;
    h.fabric.send(0, 1, 6, [&](Cycle at) { second = at; });
    h.queue.run();
    EXPECT_EQ(arrival, 6u);
    EXPECT_GE(second, 18u); // granted at >= 17, arrives >= 18
}

TEST(Fabric, RoundTripReservesReversePath)
{
    FabricHarness h;
    Cycle rt = invalidCycle, rev = invalidCycle;
    h.fabric.sendRoundTrip(0, 1, 5, 10, [&](Cycle at) { rt = at; });
    h.fabric.send(1, 0, 6, [&](Cycle at) { rev = at; });
    h.queue.run();
    EXPECT_EQ(rt, 6u);
    EXPECT_GE(rev, 18u);
}

TEST(Fabric, StarvationFreedomUnderSaturation)
{
    FabricHarness h;
    // Every core bombards core 0's column simultaneously; all
    // messages must eventually be delivered.
    unsigned delivered = 0;
    for (CoreId src = 1; src < 16; ++src) {
        for (int k = 0; k < 4; ++k) {
            h.fabric.send(src, 0, 5,
                          [&](Cycle) { ++delivered; });
        }
    }
    h.queue.run();
    EXPECT_EQ(delivered, 60u);
    EXPECT_GT(h.fabric.setupFailures.value(), 0.0);
}

TEST(Fabric, RetryDistributionRecorded)
{
    FabricHarness h;
    for (int i = 0; i < 4; ++i)
        h.fabric.send(0, 3, 5, [](Cycle) {});
    h.queue.run();
    EXPECT_EQ(h.fabric.retryDistribution.numSamples(), 4u);
    // Port queueing is not a retry: each request is granted on its
    // first arbitration attempt, one per cycle.
    EXPECT_DOUBLE_EQ(h.fabric.retryDistribution.mean(), 0.0);
    // But only the first message saw zero contention delay.
    EXPECT_DOUBLE_EQ(h.fabric.noContentionFraction(), 0.25);
    // Average latency: (2 + 3 + 4 + 5) / 4.
    EXPECT_DOUBLE_EQ(h.fabric.averageLatency(), 3.5);
}

TEST(Fabric, PrecomputedPathTableMatchesTopology)
{
    // The arbitration hot path reads paths from a table built once at
    // construction; it must agree link-for-link (and in hop count)
    // with GridTopology::xyPath for every (src, dst) pair.
    for (unsigned cores : {16u, 32u, 64u}) {
        FabricHarness h(cores);
        const noc::GridTopology &topo = h.fabric.topology();
        for (CoreId src = 0; src < topo.numTiles(); ++src) {
            for (CoreId dst = 0; dst < topo.numTiles(); ++dst) {
                auto expected = topo.xyPath(src, dst);
                std::vector<std::uint32_t> table;
                h.fabric.pathLinksInto(src, dst, table);
                ASSERT_EQ(table.size(), expected.size())
                    << cores << " cores, " << src << " -> " << dst;
                for (std::size_t i = 0; i < expected.size(); ++i)
                    EXPECT_EQ(table[i], expected[i].flatten())
                        << cores << " cores, " << src << " -> " << dst
                        << " link " << i;
                EXPECT_EQ(h.fabric.pathHops(src, dst),
                          topo.hops(src, dst));
            }
        }
    }
}

TEST(Fabric, ZeroHpcMaxIsFatal)
{
    EventQueue queue;
    stats::StatGroup root("root");
    noc::GridTopology topo(4, 4);
    FabricConfig cfg;
    cfg.hpcMax = 0;
    EXPECT_THROW(makeInterconnect("f", queue, topo, cfg, &root),
                 FatalError);
}

/** Property: under random traffic, every message is delivered exactly
 * once and no two same-cycle deliveries share a link (checked via the
 * fabric's own accounting: attempts = deliveries + failures). */
class FabricLoadTest : public ::testing::TestWithParam<double>
{};

TEST_P(FabricLoadTest, ConservationUnderLoad)
{
    FabricHarness h(16);
    nocstar::Random rng(99);
    unsigned sent = 0, delivered = 0;
    for (Cycle t = 0; t < 2000; ++t) {
        for (CoreId src = 0; src < 16; ++src) {
            if (rng.uniform() < GetParam()) {
                CoreId dst = static_cast<CoreId>(rng.below(16));
                if (dst == src)
                    continue;
                ++sent;
                h.fabric.send(src, dst, t,
                              [&](Cycle) { ++delivered; });
            }
        }
    }
    h.queue.run();
    EXPECT_EQ(delivered, sent);
    EXPECT_DOUBLE_EQ(h.fabric.messagesSent.value(),
                     static_cast<double>(sent));
    EXPECT_DOUBLE_EQ(h.fabric.setupAttempts.value(),
                     h.fabric.messagesSent.value() +
                         h.fabric.setupFailures.value());
}

INSTANTIATE_TEST_SUITE_P(InjectionRates, FabricLoadTest,
                         ::testing::Values(0.02, 0.1, 0.3));
