/**
 * @file
 * Unit tests for the functional page table.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/page_table.hh"
#include "sim/logging.hh"

using namespace nocstar;
using namespace nocstar::mem;

TEST(PageTable, TranslationIsDeterministic)
{
    PageTable a(0.5, 77), b(0.5, 77);
    for (Addr va = 0; va < 64 << 12; va += 4096) {
        Translation ta = a.translate(1, va);
        Translation tb = b.translate(1, va);
        EXPECT_EQ(ta.ppn, tb.ppn);
        EXPECT_EQ(ta.size, tb.size);
    }
}

TEST(PageTable, DistinctPagesGetDistinctFrames)
{
    PageTable table(0.0, 1);
    std::set<PageNum> ppns;
    for (Addr va = 0; va < (Addr{256} << 12); va += 4096) {
        Translation t = table.translate(3, va);
        EXPECT_EQ(t.size, PageSize::FourKB);
        EXPECT_TRUE(ppns.insert(t.ppn).second)
            << "duplicate ppn for va " << va;
    }
}

TEST(PageTable, ContextsDoNotShareFrames)
{
    PageTable table(0.0, 1);
    Translation a = table.translate(1, 0x1000);
    Translation b = table.translate(2, 0x1000);
    EXPECT_NE(a.ppn, b.ppn);
}

TEST(PageTable, SuperpageFractionApproximatelyHonored)
{
    PageTable table(0.6, 99);
    unsigned super = 0, regions = 2000;
    for (unsigned r = 0; r < regions; ++r) {
        Addr va = static_cast<Addr>(r) << pageShift(PageSize::TwoMB);
        if (table.translate(1, va).size == PageSize::TwoMB)
            ++super;
    }
    EXPECT_NEAR(super / static_cast<double>(regions), 0.6, 0.05);
}

TEST(PageTable, PerContextFractionOverride)
{
    PageTable table(0.0, 7);
    table.setContextSuperpageFraction(5, 1.0);
    EXPECT_EQ(table.translate(1, 0x200000).size, PageSize::FourKB);
    EXPECT_EQ(table.translate(5, 0x200000).size, PageSize::TwoMB);
}

TEST(PageTable, WalkDepthMatchesPageSize)
{
    PageTable table(1.0, 5); // everything superpage-backed
    EXPECT_EQ(table.walkAddresses(1, 0x40000000).size(), 3u);
    PageTable table4k(0.0, 5);
    EXPECT_EQ(table4k.walkAddresses(1, 0x40000000).size(), 4u);
}

TEST(PageTable, AdjacentPagesShareUpperWalkLines)
{
    PageTable table(0.0, 5);
    auto a = table.walkAddresses(1, 0x1000000);
    auto b = table.walkAddresses(1, 0x1000000 + 4096);
    ASSERT_EQ(a.size(), 4u);
    // PML4 / PDPT / PD entries identical; PTEs share one 64-byte line
    // for adjacent pages (8 entries per line).
    EXPECT_EQ(a[0], b[0]);
    EXPECT_EQ(a[1], b[1]);
    EXPECT_EQ(a[2], b[2]);
    EXPECT_EQ(a[3], b[3]);
    auto far = table.walkAddresses(1, 0x1000000 + (Addr{9} << 12));
    EXPECT_NE(a[3], far[3]);
}

TEST(PageTable, RemapChangesFrameAndVersion)
{
    PageTable table(0.0, 5);
    Translation before = table.translate(1, 0x5000);
    Translation after = table.remap(1, 0x5000);
    EXPECT_NE(before.ppn, after.ppn);
    EXPECT_EQ(after.version, before.version + 1);
}

TEST(PageTable, PromoteDemoteInvalidationCounts)
{
    PageTable table(0.0, 5);
    table.translate(1, 0x0);
    EXPECT_EQ(table.setRegionSuperpage(1, 0x0, true), 512u);
    EXPECT_TRUE(table.isSuperpage(1, 0x0));
    EXPECT_EQ(table.setRegionSuperpage(1, 0x0, true), 0u); // no change
    EXPECT_EQ(table.setRegionSuperpage(1, 0x0, false), 1u);
    EXPECT_FALSE(table.isSuperpage(1, 0x0));
}

TEST(PageTable, SuperpageOffsetsResolveWithinFrame)
{
    PageTable table(1.0, 5);
    Translation t1 = table.translate(1, 0x200000);
    Translation t2 = table.translate(1, 0x200000 + 0x1000);
    EXPECT_EQ(t1.ppn, t2.ppn); // same 2 MB frame
    EXPECT_EQ(t1.size, PageSize::TwoMB);
}

TEST(PageTable, BadFractionIsFatal)
{
    EXPECT_THROW(PageTable(-0.1, 1), FatalError);
    EXPECT_THROW(PageTable(1.5, 1), FatalError);
}

TEST(PageTable, RegionsAllocatedLazily)
{
    PageTable table(0.0, 1);
    EXPECT_EQ(table.regionsAllocated(), 0u);
    table.translate(1, 0x0);
    table.translate(1, 0x1000); // same 2 MB region
    EXPECT_EQ(table.regionsAllocated(), 1u);
    table.translate(1, 0x200000);
    EXPECT_EQ(table.regionsAllocated(), 2u);
}
