/**
 * @file
 * Unit tests for the walk-reference cache model and the page-table
 * walker.
 */

#include <gtest/gtest.h>

#include "mem/cache_model.hh"
#include "mem/page_walker.hh"

using namespace nocstar;
using namespace nocstar::mem;

namespace
{

CacheModelConfig
smallCaches()
{
    CacheModelConfig config;
    config.l2Lines = 4;
    config.llcLines = 16;
    config.l2RetentionCycles = 1000;
    config.llcRetentionCycles = 100000;
    return config;
}

} // namespace

TEST(CacheModel, MissGoesToDramThenHitsL2)
{
    stats::StatGroup g("g");
    CacheModel caches("c", 2, smallCaches(), &g);
    auto first = caches.access(0, 0, 0x1000, 10);
    EXPECT_EQ(first.service, energy::WalkService::Dram);
    auto second = caches.access(0, 0, 0x1000, 20);
    EXPECT_EQ(second.service, energy::WalkService::L2Hit);
    EXPECT_EQ(second.latency, smallCaches().l2Latency);
}

TEST(CacheModel, OtherCoreHitsSharedLlc)
{
    stats::StatGroup g("g");
    CacheModel caches("c", 2, smallCaches(), &g);
    caches.access(0, 0, 0x2000, 10);
    auto other = caches.access(1, 1, 0x2000, 20);
    EXPECT_EQ(other.service, energy::WalkService::LlcHit);
}

TEST(CacheModel, TtlExpiresL2Lines)
{
    stats::StatGroup g("g");
    CacheModel caches("c", 1, smallCaches(), &g);
    caches.access(0, 0, 0x3000, 0);
    auto later = caches.access(0, 0, 0x3000, 5000); // beyond 1000 TTL
    EXPECT_NE(later.service, energy::WalkService::L2Hit);
}

TEST(CacheModel, CapacityEvictsFifo)
{
    stats::StatGroup g("g");
    CacheModel caches("c", 1, smallCaches(), &g);
    for (Addr line = 0; line < 8; ++line)
        caches.access(0, 0, 0x1000 * (line + 1), 10 + line);
    // The first line must have been evicted from the 4-line L2 but
    // still be in the 16-line LLC.
    auto revisit = caches.access(0, 0, 0x1000, 30);
    EXPECT_EQ(revisit.service, energy::WalkService::LlcHit);
}

TEST(CacheModel, ForeignFillsTrackedAndHooked)
{
    stats::StatGroup g("g");
    CacheModel caches("c", 2, smallCaches(), &g);
    unsigned hook_calls = 0;
    caches.setForeignFillHook([&](CoreId core) {
        EXPECT_EQ(core, 1u);
        ++hook_calls;
    });
    caches.access(1, 0, 0x9000, 10); // walk on core 1 for requester 0
    EXPECT_EQ(caches.foreignFills(1), 1u);
    EXPECT_EQ(caches.foreignFills(0), 0u);
    EXPECT_EQ(hook_calls, 1u);
    // A local walk never counts as foreign.
    caches.access(0, 0, 0xa000, 11);
    EXPECT_EQ(caches.foreignFills(0), 0u);
}

TEST(CacheModel, BeyondL2FractionComputed)
{
    stats::StatGroup g("g");
    CacheModel caches("c", 1, smallCaches(), &g);
    caches.access(0, 0, 0x1000, 0); // DRAM
    caches.access(0, 0, 0x1000, 1); // L2 hit
    EXPECT_NEAR(caches.beyondL2Fraction(), 0.5, 1e-9);
}

TEST(PageWalker, FixedLatencyMode)
{
    stats::StatGroup g("g");
    PageTable table(0.0, 1);
    CacheModel caches("c", 1, smallCaches(), &g);
    WalkerConfig config;
    config.fixedLatency = 40;
    PageTableWalker walker("w", 0, table, caches, config, &g);
    WalkResult result = walker.walk(1, 0x123000, 0, 100);
    EXPECT_EQ(result.walkLatency, 40u);
    EXPECT_EQ(result.queueDelay, 0u);
    EXPECT_EQ(result.llcRefs, 1u); // energy proxy
}

TEST(PageWalker, VariableWalksGetCheaperWithPscWarmup)
{
    stats::StatGroup g("g");
    PageTable table(0.0, 1);
    CacheModelConfig cache_config; // default big caches
    CacheModel caches("c", 1, cache_config, &g);
    PageTableWalker walker("w", 0, table, caches, WalkerConfig{}, &g);

    WalkResult cold = walker.walk(1, 0x400000, 0, 0);
    WalkResult warm = walker.walk(1, 0x400000 + 4096,
                                  0, cold.totalLatency() + 10);
    EXPECT_GT(cold.walkLatency, warm.walkLatency);
    EXPECT_GT(warm.pscHits, 0u);
}

TEST(PageWalker, SuperpageWalkIsShorter)
{
    stats::StatGroup g("g");
    PageTable table(1.0, 1); // all superpages
    PageTable table4k(0.0, 1);
    CacheModelConfig cache_config;
    CacheModel caches("c", 1, cache_config, &g);
    PageTableWalker w2m("w2m", 0, table, caches, WalkerConfig{}, &g);
    PageTableWalker w4k("w4k", 0, table4k, caches, WalkerConfig{}, &g);
    WalkResult r2m = w2m.walk(1, 0x40000000, 0, 0);
    WalkResult r4k = w4k.walk(1, 0x40000000, 0, 0);
    unsigned refs2m = r2m.pscHits + r2m.l2Refs + r2m.llcRefs +
                      r2m.dramRefs;
    unsigned refs4k = r4k.pscHits + r4k.l2Refs + r4k.llcRefs +
                      r4k.dramRefs;
    EXPECT_EQ(refs2m, 3u);
    EXPECT_EQ(refs4k, 4u);
}

TEST(PageWalker, ConcurrentWalksQueue)
{
    stats::StatGroup g("g");
    PageTable table(0.0, 1);
    CacheModel caches("c", 1, CacheModelConfig{}, &g);
    PageTableWalker walker("w", 0, table, caches, WalkerConfig{}, &g);

    WalkResult first = walker.walk(1, 0x1000000, 0, 100);
    EXPECT_EQ(first.queueDelay, 0u);
    // A second walk issued while the first is in flight must wait.
    WalkResult second = walker.walk(1, 0x2000000, 0, 101);
    EXPECT_EQ(second.queueDelay, first.walkLatency - 1);
    EXPECT_EQ(walker.busyUntil(),
              101 + second.queueDelay + second.walkLatency);
}

TEST(PageWalker, StatsAccumulate)
{
    stats::StatGroup g("g");
    PageTable table(0.0, 1);
    CacheModel caches("c", 1, CacheModelConfig{}, &g);
    PageTableWalker walker("w", 0, table, caches, WalkerConfig{}, &g);
    walker.walk(1, 0x1000, 0, 0);
    walker.walk(1, 0x2000, 0, 10000);
    EXPECT_EQ(walker.walks.value(), 2.0);
    EXPECT_GT(walker.walkCycles.value(), 0.0);
}
