/**
 * @file
 * Differential test for the structure-of-arrays SetAssocTlb: drives
 * identical randomized lookup/insert/evict/invalidate sequences
 * through the pre-SoA array-of-structs implementation (kept here as
 * the executable reference) and the production array, and demands
 * byte-for-byte agreement on every observable: hit/miss outcomes,
 * returned translations, evicted entries, invalidation counts,
 * occupancy and all statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/random.hh"
#include "tlb/set_assoc_tlb.hh"

using namespace nocstar;
using namespace nocstar::tlb;

namespace
{

/**
 * The old array-of-structs SetAssocTlb, verbatim minus the stats
 * plumbing (plain counters instead): scalar per-way tag probes,
 * first-invalid-else-LRU victim selection, full-array invalidation
 * scans. This is the semantic spec the SoA rewrite must match.
 */
class ReferenceTlb
{
  public:
    ReferenceTlb(std::uint32_t entries, std::uint32_t assoc)
    {
        if (assoc > entries)
            assoc = entries;
        numEntries_ = entries;
        assoc_ = assoc;
        numSets_ = entries / assoc;
        entries_.resize(entries);
    }

    std::uint32_t
    setIndex(PageNum vpn, PageSize size) const
    {
        std::uint64_t x =
            vpn + (static_cast<std::uint64_t>(size) << 60);
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        return static_cast<std::uint32_t>(x % numSets_);
    }

    TlbEntry *
    findEntry(ContextId ctx, PageNum vpn, PageSize size)
    {
        std::uint32_t set = setIndex(vpn, size);
        TlbEntry *base =
            &entries_[static_cast<std::size_t>(set) * assoc_];
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            if (base[way].matches(ctx, vpn, size))
                return &base[way];
        }
        return nullptr;
    }

    const TlbEntry *
    lookup(ContextId ctx, PageNum vpn, PageSize size,
           bool update_lru = true)
    {
        TlbEntry *entry = findEntry(ctx, vpn, size);
        if (!entry) {
            ++misses;
            return nullptr;
        }
        ++hits;
        if (entry->prefetched) {
            ++prefetchHits;
            entry->prefetched = false;
        }
        if (update_lru)
            entry->lastUse = ++lruClock_;
        return entry;
    }

    const TlbEntry *
    lookupAnySize(ContextId ctx, Addr vaddr, bool update_lru = true)
    {
        static constexpr PageSize sizes[] = {
            PageSize::FourKB, PageSize::TwoMB, PageSize::OneGB};
        for (PageSize size : sizes) {
            TlbEntry *entry =
                findEntry(ctx, pageNumber(vaddr, size), size);
            if (entry) {
                ++hits;
                if (entry->prefetched) {
                    ++prefetchHits;
                    entry->prefetched = false;
                }
                if (update_lru)
                    entry->lastUse = ++lruClock_;
                return entry;
            }
        }
        ++misses;
        return nullptr;
    }

    std::optional<TlbEntry>
    insert(const TlbEntry &entry)
    {
        ++insertions;
        if (TlbEntry *existing =
                findEntry(entry.ctx, entry.vpn, entry.size)) {
            bool was_prefetched =
                existing->prefetched && entry.prefetched;
            *existing = entry;
            existing->prefetched = was_prefetched;
            existing->lastUse = ++lruClock_;
            return std::nullopt;
        }

        std::uint32_t set = setIndex(entry.vpn, entry.size);
        TlbEntry *base =
            &entries_[static_cast<std::size_t>(set) * assoc_];
        TlbEntry *victim = &base[0];
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            if (!base[way].valid) {
                victim = &base[way];
                break;
            }
            if (base[way].lastUse < victim->lastUse)
                victim = &base[way];
        }

        std::optional<TlbEntry> evicted;
        if (victim->valid) {
            ++evictions;
            evicted = *victim;
        }
        *victim = entry;
        victim->lastUse = ++lruClock_;
        return evicted;
    }

    bool
    present(ContextId ctx, PageNum vpn, PageSize size)
    {
        std::uint32_t set = setIndex(vpn, size);
        const TlbEntry *base =
            &entries_[static_cast<std::size_t>(set) * assoc_];
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            if (base[way].matches(ctx, vpn, size))
                return true;
        }
        return false;
    }

    bool
    invalidate(ContextId ctx, PageNum vpn, PageSize size)
    {
        if (TlbEntry *entry = findEntry(ctx, vpn, size)) {
            entry->valid = false;
            ++invalidations;
            return true;
        }
        return false;
    }

    std::uint64_t
    invalidateContext(ContextId ctx)
    {
        std::uint64_t count = 0;
        for (TlbEntry &entry : entries_) {
            if (entry.valid && entry.ctx == ctx) {
                entry.valid = false;
                ++count;
            }
        }
        invalidations += count;
        return count;
    }

    std::uint64_t
    invalidateAll()
    {
        std::uint64_t count = 0;
        for (TlbEntry &entry : entries_) {
            if (entry.valid) {
                entry.valid = false;
                ++count;
            }
        }
        invalidations += count;
        return count;
    }

    std::uint64_t
    occupancy() const
    {
        std::uint64_t count = 0;
        for (const TlbEntry &entry : entries_)
            count += entry.valid ? 1 : 0;
        return count;
    }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t prefetchHits = 0;

  private:
    std::uint32_t numEntries_;
    std::uint32_t assoc_;
    std::uint32_t numSets_;
    std::uint64_t lruClock_ = 0;
    std::vector<TlbEntry> entries_;
};

void
expectSameEntry(const TlbEntry *ref, const TlbEntry *soa,
                std::uint64_t op)
{
    ASSERT_EQ(ref != nullptr, soa != nullptr) << "op " << op;
    if (!ref)
        return;
    EXPECT_EQ(ref->vpn, soa->vpn) << "op " << op;
    EXPECT_EQ(ref->ppn, soa->ppn) << "op " << op;
    EXPECT_EQ(ref->ctx, soa->ctx) << "op " << op;
    EXPECT_EQ(ref->size, soa->size) << "op " << op;
    EXPECT_EQ(ref->prefetched, soa->prefetched) << "op " << op;
}

struct Geometry
{
    std::uint32_t entries;
    std::uint32_t assoc;
};

class TlbDifferentialTest : public ::testing::TestWithParam<Geometry>
{};

TEST_P(TlbDifferentialTest, RandomizedOpsMatchReference)
{
    const Geometry geom = GetParam();
    ReferenceTlb ref(geom.entries, geom.assoc);
    SetAssocTlb soa("soa_under_test", geom.entries, geom.assoc);

    Random rng(0xd1ffe7e57ULL ^ (static_cast<std::uint64_t>(
                                     geom.entries) << 16) ^ geom.assoc);
    static constexpr PageSize sizes[] = {
        PageSize::FourKB, PageSize::TwoMB, PageSize::OneGB};

    // Page pool sized ~3x the array so lookups hit, miss and evict.
    const std::uint64_t pool =
        std::max<std::uint64_t>(8, geom.entries * 3);

    for (std::uint64_t op = 0; op < 20000; ++op) {
        ContextId ctx = static_cast<ContextId>(rng.below(4));
        PageNum vpn = rng.below(pool) + 0x40000;
        PageSize size = sizes[rng.below(3)];
        std::uint64_t kind = rng.below(100);

        if (kind < 40) {
            bool update_lru = rng.below(4) != 0;
            expectSameEntry(ref.lookup(ctx, vpn, size, update_lru),
                            soa.lookup(ctx, vpn, size, update_lru),
                            op);
        } else if (kind < 70) {
            TlbEntry entry;
            entry.valid = true;
            entry.ctx = ctx;
            entry.vpn = vpn;
            entry.ppn = vpn ^ 0x5aa5;
            entry.size = size;
            entry.prefetched = rng.below(4) == 0;
            std::optional<TlbEntry> re = ref.insert(entry);
            std::optional<TlbEntry> se = soa.insert(entry);
            expectSameEntry(re ? &*re : nullptr,
                            se ? &*se : nullptr, op);
        } else if (kind < 80) {
            Addr vaddr = (vpn << pageShift(PageSize::FourKB)) |
                         (rng.below(512) << 3);
            expectSameEntry(ref.lookupAnySize(ctx, vaddr),
                            soa.lookupAnySize(ctx, vaddr), op);
        } else if (kind < 88) {
            EXPECT_EQ(ref.present(ctx, vpn, size),
                      soa.present(ctx, vpn, size)) << "op " << op;
        } else if (kind < 96) {
            EXPECT_EQ(ref.invalidate(ctx, vpn, size),
                      soa.invalidate(ctx, vpn, size)) << "op " << op;
        } else if (kind < 99) {
            EXPECT_EQ(ref.invalidateContext(ctx),
                      soa.invalidateContext(ctx)) << "op " << op;
        } else {
            EXPECT_EQ(ref.invalidateAll(), soa.invalidateAll())
                << "op " << op;
        }

        if (op % 512 == 0) {
            ASSERT_EQ(ref.occupancy(), soa.occupancy()) << "op " << op;
        }
        if (::testing::Test::HasFailure())
            FAIL() << "first divergence at op " << op;
    }

    EXPECT_EQ(ref.occupancy(), soa.occupancy());
    EXPECT_EQ(ref.hits, static_cast<std::uint64_t>(soa.hits.value()));
    EXPECT_EQ(ref.misses,
              static_cast<std::uint64_t>(soa.misses.value()));
    EXPECT_EQ(ref.insertions,
              static_cast<std::uint64_t>(soa.insertions.value()));
    EXPECT_EQ(ref.evictions,
              static_cast<std::uint64_t>(soa.evictions.value()));
    EXPECT_EQ(ref.invalidations,
              static_cast<std::uint64_t>(soa.invalidations.value()));
    EXPECT_EQ(ref.prefetchHits,
              static_cast<std::uint64_t>(soa.prefetchHits.value()));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbDifferentialTest,
    ::testing::Values(Geometry{64, 4},   // L1-style, pow2 sets
                      Geometry{32, 4},   // 2M L1 array
                      Geometry{4, 4},    // fully associative
                      Geometry{48, 4},   // 12 sets: Lemire fastmod
                      Geometry{96, 8},   // 12 sets, wide ways (2 chunks)
                      Geometry{16, 1},   // direct mapped
                      Geometry{24, 6},   // assoc not a lane multiple
                      Geometry{8, 16})); // assoc clamped to entries

TEST(SetAssocTlbSoa, PackedTagRangeLimitsAreEnforced)
{
    SetAssocTlb tlb("range_test", 16, 4);

    // Out-of-range probes are deterministic misses, never aliases.
    EXPECT_EQ(tlb.lookup(0, SetAssocTlb::maxVpn + 1,
                         PageSize::FourKB), nullptr);
    EXPECT_FALSE(tlb.present(SetAssocTlb::maxCtx + 1, 1,
                             PageSize::FourKB));
    EXPECT_FALSE(tlb.invalidate(0, SetAssocTlb::maxVpn + 1,
                                PageSize::FourKB));
    EXPECT_EQ(tlb.invalidateContext(SetAssocTlb::maxCtx + 1), 0u);

    // The widest encodable tag round-trips.
    TlbEntry entry;
    entry.valid = true;
    entry.ctx = SetAssocTlb::maxCtx;
    entry.vpn = SetAssocTlb::maxVpn;
    entry.ppn = 0x1234;
    entry.size = PageSize::OneGB;
    tlb.insert(entry);
    const TlbEntry *hit =
        tlb.lookup(SetAssocTlb::maxCtx, SetAssocTlb::maxVpn,
                   PageSize::OneGB);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->ppn, 0x1234u);

    // Unpackable inserts fail loudly instead of corrupting a tag.
    TlbEntry wide = entry;
    wide.vpn = SetAssocTlb::maxVpn + 1;
    EXPECT_THROW(tlb.insert(wide), FatalError);
}

TEST(SetAssocTlbSoa, OccupancyIsLiveAndEmptyFlushesShortCircuit)
{
    SetAssocTlb tlb("occupancy_test", 32, 4);
    EXPECT_EQ(tlb.occupancy(), 0u);
    // Flushing an empty array must not count invalidations.
    EXPECT_EQ(tlb.invalidateAll(), 0u);
    EXPECT_EQ(tlb.invalidateContext(3), 0u);
    EXPECT_EQ(tlb.invalidations.value(), 0.0);

    TlbEntry entry;
    entry.valid = true;
    entry.size = PageSize::FourKB;
    for (PageNum vpn = 0; vpn < 10; ++vpn) {
        entry.ctx = vpn & 1 ? 1 : 2;
        entry.vpn = 0x900 + vpn;
        entry.ppn = vpn;
        tlb.insert(entry);
    }
    EXPECT_EQ(tlb.occupancy(), 10u);
    EXPECT_EQ(tlb.invalidateContext(1), 5u);
    EXPECT_EQ(tlb.occupancy(), 5u);
    EXPECT_EQ(tlb.invalidateAll(), 5u);
    EXPECT_EQ(tlb.occupancy(), 0u);
    EXPECT_EQ(tlb.invalidations.value(), 10.0);
}

} // namespace
