/**
 * @file
 * Tests for the SRAM timing / energy / area models and the interconnect
 * energy model, anchored to the paper's published points.
 */

#include <gtest/gtest.h>

#include "energy/area.hh"
#include "energy/noc_energy.hh"
#include "energy/sram_model.hh"
#include "energy/translation_energy.hh"
#include "sim/logging.hh"

using namespace nocstar;
using namespace nocstar::energy;

TEST(SramModel, MatchesPaperAnchors)
{
    // Fig 3 anchors: 1536 entries -> 9 cycles; 32x -> ~15 cycles.
    EXPECT_EQ(SramModel::accessLatency(1536), 9u);
    EXPECT_EQ(SramModel::accessLatency(32 * 1536), 15u);
}

TEST(SramModel, PrivateAndSliceLatenciesMatchMethodology)
{
    // §IV: 1024-entry private L2 TLBs are 9 cycles; the 920-entry
    // NOCSTAR slice keeps the same latency.
    EXPECT_EQ(SramModel::accessLatency(1024), 9u);
    EXPECT_EQ(SramModel::accessLatency(920), 9u);
}

TEST(SramModel, HalfSizeIsFaster)
{
    EXPECT_LT(SramModel::accessLatency(768),
              SramModel::accessLatency(1536));
    EXPECT_GE(SramModel::accessLatency(768), 6u);
}

TEST(SramModel, ZeroEntriesPanics)
{
    EXPECT_THROW(SramModel::accessLatency(0), PanicError);
}

class SramScalingTest
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SramScalingTest, LatencyEnergyAreaMonotoneInSize)
{
    std::uint64_t entries = GetParam();
    EXPECT_LE(SramModel::accessLatency(entries),
              SramModel::accessLatency(entries * 2));
    EXPECT_LT(SramModel::accessEnergyPj(entries),
              SramModel::accessEnergyPj(entries * 2));
    EXPECT_LT(SramModel::leakageMw(entries),
              SramModel::leakageMw(entries * 2));
    EXPECT_LT(SramModel::areaMm2(entries),
              SramModel::areaMm2(entries * 2));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SramScalingTest,
                         ::testing::Values(256, 512, 1024, 1536, 4096,
                                           12288, 49152));

TEST(TileArea, InterconnectIsUnderOnePercentOfSram)
{
    // Fig 9: switch + arbiters are < 1.3 % of the tile SRAM area.
    EXPECT_LT(TileAreaReport::interconnectAreaFraction(), 0.015);
}

TEST(TileArea, AreaEquivalentSliceMatchesTableII)
{
    // Table II: 1024-entry private -> 920-entry NOCSTAR slice.
    EXPECT_EQ(TileAreaReport::areaEquivalentSliceEntries(1024), 920u);
}

TEST(TileArea, SliceEntriesAreMultipleOfAssociativity)
{
    for (std::uint64_t n : {512u, 1024u, 1536u, 2048u})
        EXPECT_EQ(TileAreaReport::areaEquivalentSliceEntries(n) % 8, 0u);
}

TEST(NocEnergy, ComponentsGrowWithHops)
{
    auto near = NocEnergyModel::message(NocStyle::Nocstar, 2, 920);
    auto far = NocEnergyModel::message(NocStyle::Nocstar, 10, 920);
    EXPECT_LT(near.link, far.link);
    EXPECT_LT(near.switching, far.switching);
    EXPECT_LT(near.control, far.control);
    EXPECT_DOUBLE_EQ(near.sram, far.sram);
}

TEST(NocEnergy, NocstarSwitchesCheaperThanMeshRouters)
{
    // Fig 11(b): circuit-switched muxes beat buffered routers on the
    // datapath, but NOCSTAR pays more control energy per hop.
    auto mesh = NocEnergyModel::message(NocStyle::DistributedMesh, 8,
                                        1024);
    auto nocstar = NocEnergyModel::message(NocStyle::Nocstar, 8, 920);
    EXPECT_LT(nocstar.switching, mesh.switching);
    EXPECT_GT(nocstar.control, mesh.control);
    EXPECT_LT(nocstar.total(), mesh.total());
}

TEST(NocEnergy, MonolithicSramDominates)
{
    // The monolithic array is ~48K entries at 32 cores: its SRAM term
    // should dominate the slice-based designs' full message energy.
    auto mono = NocEnergyModel::message(NocStyle::MonolithicMesh, 6,
                                        32 * 1536);
    auto dist = NocEnergyModel::message(NocStyle::DistributedMesh, 6,
                                        1024);
    EXPECT_GT(mono.sram, dist.total() * 0.5);
    EXPECT_GT(mono.total(), dist.total());
}

TEST(TranslationEnergy, AccumulatesAndResets)
{
    TranslationEnergyModel model;
    model.addL1Lookup();
    model.addPrivateL2Lookup(1024);
    model.addWalkReference(WalkService::Dram);
    EXPECT_GT(model.dynamicPj(), 0.0);
    model.addLeakage(10.0, 1000); // 10 mW for 1000 cycles
    EXPECT_DOUBLE_EQ(model.leakagePj(), 10.0 * 0.5 * 1000);
    EXPECT_DOUBLE_EQ(model.totalPj(),
                     model.dynamicPj() + model.leakagePj());
    model.reset();
    EXPECT_EQ(model.totalPj(), 0.0);
}

TEST(TranslationEnergy, WalkReferencesOrderedByDepth)
{
    // A DRAM PTE fetch must dwarf an L1 TLB probe (paper cites orders
    // of magnitude).
    EXPECT_GT(TranslationEnergyModel::dramAccessPj,
              100 * TranslationEnergyModel::l1TlbLookupPj);
    EXPECT_GT(TranslationEnergyModel::llcAccessPj,
              TranslationEnergyModel::l2CacheAccessPj);
    EXPECT_GT(TranslationEnergyModel::l2CacheAccessPj,
              TranslationEnergyModel::pwcLookupPj);
}
