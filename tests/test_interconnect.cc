/**
 * @file
 * Tests of the Interconnect seam: the flat fabric behind the interface
 * must be indistinguishable from the pre-seam implementation (golden
 * RunResult identity across every organization), and the hierarchical
 * crossbar-of-clusters fabric must degenerate correctly at both ends
 * of its cluster-size range (whole-chip cluster = pure crossbar,
 * 1x1 clusters = the flat mesh), stay shard-count invariant, and
 * route around dead inter-cluster links.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/hier_fabric.hh"
#include "core/interconnect.hh"
#include "cpu/system.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"

using namespace nocstar;
using namespace nocstar::core;

namespace
{

struct InterconnectHarness
{
    EventQueue queue;
    stats::StatGroup root{"root"};
    noc::GridTopology topo;
    std::unique_ptr<Interconnect> fabricPtr;
    Interconnect &fabric;

    explicit InterconnectHarness(unsigned cores = 16,
                                 FabricConfig cfg = {})
        : topo(noc::GridTopology::forCores(cores)),
          fabricPtr(makeInterconnect("fabric", queue, topo, cfg, &root)),
          fabric(*fabricPtr)
    {}

    HierFabric &
    hier()
    {
        return dynamic_cast<HierFabric &>(fabric);
    }
};

FabricConfig
hierConfig(unsigned cw, unsigned ch)
{
    FabricConfig cfg;
    cfg.kind = FabricKind::Hierarchical;
    cfg.clusterWidth = cw;
    cfg.clusterHeight = ch;
    return cfg;
}

/** NOCSTAR system config mirroring bench::makeConfig. */
cpu::SystemConfig
paperConfig(core::OrgKind kind, unsigned cores)
{
    cpu::SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    config.org.banks = cores >= 64 ? 8 : 4;
    cpu::AppConfig app;
    app.spec = workload::paperWorkloads()[0];
    app.threads = cores;
    config.apps.push_back(std::move(app));
    config.superpages = true;
    config.seed = 12345;
    return config;
}

} // namespace

// ---------------------------------------------------------------------
// Flat fabric behind the seam: golden identity.
// ---------------------------------------------------------------------

/**
 * The seam refactor must not perturb a single cycle: these RunResult
 * values were captured from the pre-Interconnect tree (seed commit)
 * with makeConfig(kind, 16, paperWorkloads()[0]) and run(2000).
 */
TEST(InterconnectSeam, FlatRunResultsMatchPreSeamGoldens)
{
    struct Golden
    {
        core::OrgKind kind;
        std::uint64_t cycles;
        double meanCycles;
        std::uint64_t l2Hits;
        std::uint64_t l2Misses;
        std::uint64_t walks;
    };
    const Golden goldens[] = {
        {core::OrgKind::Private, 19104u, 14951.875, 3533u, 597u, 597u},
        {core::OrgKind::MonolithicMesh, 26387u, 15524.8125, 4016u, 114u,
         114u},
        {core::OrgKind::MonolithicSmart, 22043u, 14212.375, 4017u, 113u,
         113u},
        {core::OrgKind::Distributed, 21507u, 13971.6875, 4001u, 129u,
         129u},
        {core::OrgKind::IdealShared, 14960u, 11330.5625, 4001u, 129u,
         129u},
        {core::OrgKind::Nocstar, 16363u, 12241.1875, 3976u, 154u, 154u},
        {core::OrgKind::NocstarIdeal, 16371u, 12231.6875, 3976u, 154u,
         154u},
    };
    for (const Golden &g : goldens) {
        cpu::System system(paperConfig(g.kind, 16));
        cpu::RunResult r = system.run(2000);
        EXPECT_EQ(r.cycles, g.cycles) << orgKindName(g.kind);
        EXPECT_DOUBLE_EQ(r.meanCycles, g.meanCycles)
            << orgKindName(g.kind);
        EXPECT_EQ(r.l2Hits, g.l2Hits) << orgKindName(g.kind);
        EXPECT_EQ(r.l2Misses, g.l2Misses) << orgKindName(g.kind);
        EXPECT_EQ(r.walks, g.walks) << orgKindName(g.kind);
    }
}

TEST(InterconnectSeam, OnDemandPathsMatchTopologyPastTableCap)
{
    // Past kPathTableMaxTiles the flat fabric stops precomputing the
    // dense pair table and walks GridTopology on demand; the paths it
    // serves must stay identical.
    InterconnectHarness h(1024);
    Random rng(7);
    for (unsigned i = 0; i < 200; ++i) {
        CoreId src = static_cast<CoreId>(rng.below(1024));
        CoreId dst = static_cast<CoreId>(rng.below(1024));
        auto expected = h.topo.xyPath(src, dst);
        std::vector<std::uint32_t> got;
        h.fabric.pathLinksInto(src, dst, got);
        ASSERT_EQ(got.size(), expected.size()) << src << " -> " << dst;
        for (std::size_t k = 0; k < expected.size(); ++k)
            EXPECT_EQ(got[k], expected[k].flatten())
                << src << " -> " << dst << " link " << k;
        EXPECT_EQ(h.fabric.pathHops(src, dst), h.topo.hops(src, dst));
    }
    // And messages still flow through the on-demand path machinery.
    Cycle delivered = invalidCycle;
    h.fabric.send(0, 1023, 10, [&](Cycle at) { delivered = at; });
    h.queue.run();
    EXPECT_NE(delivered, invalidCycle);
}

TEST(InterconnectSeam, GrantWaitHistogramsAreOptIn)
{
    InterconnectHarness off(16);
    EXPECT_EQ(off.fabric.grantWaitOf(0), nullptr);

    FabricConfig cfg;
    cfg.recordGrantWait = true;
    InterconnectHarness on(16, cfg);
    // Two requests collide on the East link out of tile 1: the winner
    // waits 0 cycles, the loser 1.
    on.fabric.send(0, 3, 5, [](Cycle) {});
    on.fabric.send(1, 2, 5, [](Cycle) {});
    on.queue.run();
    const sim::LatencyHistogram *w0 = on.fabric.grantWaitOf(0);
    const sim::LatencyHistogram *w1 = on.fabric.grantWaitOf(1);
    ASSERT_NE(w0, nullptr);
    ASSERT_NE(w1, nullptr);
    EXPECT_EQ(w0->numSamples(), 1u);
    EXPECT_EQ(w0->maxValue(), 0u);
    EXPECT_EQ(w1->numSamples(), 1u);
    EXPECT_EQ(w1->maxValue(), 1u);
}

// ---------------------------------------------------------------------
// Hierarchical fabric: degeneracies.
// ---------------------------------------------------------------------

TEST(HierFabric, WholeChipClusterDegeneratesToCrossbar)
{
    // One 4x4 cluster covering the whole 16-tile chip: every remote
    // pair is one crossbar hop regardless of Manhattan distance, even
    // with HPCmax 1 (which would make the far corner 6 mesh cycles).
    FabricConfig cfg = hierConfig(4, 4);
    cfg.hpcMax = 1;
    InterconnectHarness h(16, cfg);
    EXPECT_EQ(h.hier().numClusters(), 1u);
    for (CoreId src = 0; src < 16; ++src)
        for (CoreId dst = 0; dst < 16; ++dst) {
            EXPECT_EQ(h.fabric.traversal(src, dst),
                      src == dst ? 0u : 1u);
            EXPECT_EQ(h.fabric.pathHops(src, dst),
                      src == dst ? 0u : 1u);
        }
    Cycle delivered = invalidCycle;
    h.fabric.send(0, 15, 10, [&](Cycle at) { delivered = at; });
    h.queue.run();
    EXPECT_EQ(delivered, 11u); // setup at 10, one crossbar cycle
    EXPECT_EQ(h.hier().clusterLocalMessages.value(), 1.0);
    EXPECT_EQ(h.hier().interClusterMessages.value(), 0.0);
}

TEST(HierFabric, CrossbarOutputPortIsTheContendedResource)
{
    InterconnectHarness h(16, hierConfig(4, 4));
    std::map<int, Cycle> log;
    // Two same-cycle messages into tile 0: one crossbar output port,
    // so the lower-priority source retries.
    h.fabric.send(1, 0, 5, [&](Cycle at) { log[1] = at; });
    h.fabric.send(2, 0, 5, [&](Cycle at) { log[2] = at; });
    h.queue.run();
    EXPECT_EQ(log[1], 6u);
    EXPECT_EQ(log[2], 7u);
    EXPECT_EQ(h.fabric.setupFailures.value(), 1.0);
    EXPECT_EQ(h.hier().xbarDenies.value(), 1.0);
    // Disjoint destinations do not contend.
    std::vector<Cycle> arrivals;
    h.fabric.send(4, 8, 100, [&](Cycle at) { arrivals.push_back(at); });
    h.fabric.send(5, 9, 100, [&](Cycle at) { arrivals.push_back(at); });
    h.queue.run();
    EXPECT_EQ(arrivals, (std::vector<Cycle>{101, 101}));
}

TEST(HierFabric, UnitClustersMatchFlatCycleForCycle)
{
    // clusterSize == 1 collapses the hierarchy onto the plain mesh:
    // same link ids, same grant order, same timing, same stats.
    InterconnectHarness flat(16);
    InterconnectHarness unit(16, hierConfig(1, 1));
    EXPECT_EQ(unit.hier().numClusters(), 16u);

    auto drive = [](InterconnectHarness &h) {
        std::vector<Cycle> arrivals;
        Random rng(99);
        for (Cycle t = 0; t < 2000; ++t) {
            for (CoreId src = 0; src < 16; ++src) {
                if (rng.uniform() >= 0.15)
                    continue;
                CoreId dst = static_cast<CoreId>(rng.below(16));
                if (dst == src)
                    continue;
                h.fabric.send(src, dst, t, [&arrivals](Cycle at) {
                    arrivals.push_back(at);
                });
            }
        }
        h.queue.run();
        return arrivals;
    };
    std::vector<Cycle> flatArrivals = drive(flat);
    std::vector<Cycle> unitArrivals = drive(unit);
    EXPECT_EQ(flatArrivals, unitArrivals);
    EXPECT_DOUBLE_EQ(flat.fabric.messagesSent.value(),
                     unit.fabric.messagesSent.value());
    EXPECT_DOUBLE_EQ(flat.fabric.setupAttempts.value(),
                     unit.fabric.setupAttempts.value());
    EXPECT_DOUBLE_EQ(flat.fabric.setupFailures.value(),
                     unit.fabric.setupFailures.value());
    EXPECT_DOUBLE_EQ(flat.fabric.totalNetworkLatency.value(),
                     unit.fabric.totalNetworkLatency.value());
    ASSERT_EQ(flat.fabric.linkGrants.size(),
              unit.fabric.linkGrants.size());
    for (std::uint32_t l = 0; l < flat.fabric.linkGrants.size(); ++l) {
        EXPECT_DOUBLE_EQ(flat.fabric.linkGrants[l],
                         unit.fabric.linkGrants[l])
            << "link " << l;
        EXPECT_DOUBLE_EQ(flat.fabric.linkHoldCycles[l],
                         unit.fabric.linkHoldCycles[l])
            << "link " << l;
    }
    EXPECT_EQ(unit.hier().clusterLocalMessages.value(), 0.0);
}

TEST(HierFabric, InterClusterTraversalClimbsGateways)
{
    // 8x8 mesh in 4x4 clusters -> 2x2 cluster grid. Gateways are the
    // top-left tiles of each cluster: 0, 4, 32, 36.
    InterconnectHarness h(64, hierConfig(4, 4));
    HierFabric &hf = h.hier();
    EXPECT_EQ(hf.numClusters(), 4u);
    EXPECT_EQ(hf.gatewayOf(0), 0u);
    EXPECT_EQ(hf.gatewayOf(1), 4u);
    EXPECT_EQ(hf.gatewayOf(2), 32u);
    EXPECT_EQ(hf.gatewayOf(3), 36u);
    EXPECT_EQ(hf.clusterOf(9), 0u);  // (1,1)
    EXPECT_EQ(hf.clusterOf(13), 1u); // (5,1)

    // Same cluster: one crossbar hop.
    EXPECT_EQ(h.fabric.traversal(9, 0), 1u);
    // Non-gateway -> non-gateway across adjacent clusters: climb (1)
    // + 1 cluster-mesh hop (HPCmax covers it) + descend (1).
    EXPECT_EQ(h.fabric.pathHops(9, 13), 3u);
    EXPECT_EQ(h.fabric.traversal(9, 13), 3u);
    // Gateway -> gateway skips both crossbar legs.
    EXPECT_EQ(h.fabric.traversal(0, 4), 1u);
    // The mesh segment only occupies the inter-cluster link.
    std::vector<std::uint32_t> links;
    h.fabric.pathLinksInto(9, 13, links);
    ASSERT_EQ(links.size(), 1u);
    EXPECT_EQ(links[0],
              0u * 4 + static_cast<std::uint32_t>(
                           noc::Direction::East)); // gateway 0, East
}

// ---------------------------------------------------------------------
// Hierarchical fabric: faults.
// ---------------------------------------------------------------------

TEST(HierFabric, RoutesAroundDeadInterClusterLink)
{
    // Kill the East link out of gateway 0 (link id 0) permanently:
    // cluster 0 -> cluster 1 traffic must re-route over clusters
    // 2 and 3 without ever being degraded onto the fallback mesh.
    sim::FaultPlan plan;
    plan.linkFaults.push_back({0u, 0, 0});
    FabricConfig cfg = hierConfig(2, 2); // 4x4 mesh -> 2x2 clusters
    cfg.faults = &plan;
    InterconnectHarness h(16, cfg);

    Cycle delivered = invalidCycle;
    h.fabric.send(0, 2, 10, [&](Cycle at) { delivered = at; });
    h.queue.run();
    EXPECT_NE(delivered, invalidCycle);
    EXPECT_EQ(h.fabric.degradedMessages.value(), 0.0);
    EXPECT_EQ(h.fabric.linkGrants[0], 0.0); // dead link never granted
    // The detour holds three cluster-mesh links.
    std::vector<std::uint32_t> links;
    h.fabric.pathLinksInto(0, 2, links);
    EXPECT_EQ(links.size(), 3u);
    for (std::uint32_t l : links)
        EXPECT_NE(l, 0u);
}

// ---------------------------------------------------------------------
// Hierarchical fabric: whole-system invariances.
// ---------------------------------------------------------------------

TEST(HierFabric, SystemResultsAreShardCountInvariant)
{
    auto runWith = [](unsigned shards) {
        cpu::SystemConfig config = paperConfig(core::OrgKind::Nocstar,
                                               64);
        config.org.fabricKind = core::FabricKind::Hierarchical;
        config.shards = shards;
        cpu::System system(config);
        return system.run(1000);
    };
    cpu::RunResult one = runWith(1);
    cpu::RunResult four = runWith(4);
    cpu::RunResult autoN = runWith(sim::autoShards(64));
    for (const cpu::RunResult *r : {&four, &autoN}) {
        EXPECT_EQ(r->cycles, one.cycles);
        EXPECT_DOUBLE_EQ(r->meanCycles, one.meanCycles);
        EXPECT_EQ(r->l2Hits, one.l2Hits);
        EXPECT_EQ(r->l2Misses, one.l2Misses);
        EXPECT_EQ(r->walks, one.walks);
    }
}

TEST(HierFabric, ClusterLocalSliceMappingRunsAndStaysInCluster)
{
    cpu::SystemConfig config = paperConfig(core::OrgKind::Nocstar, 64);
    config.org.fabricKind = core::FabricKind::Hierarchical;
    config.org.sliceMapping = core::SliceMapping::ClusterLocal;
    EXPECT_TRUE(config.validate().empty());
    cpu::System system(config);
    cpu::RunResult r = system.run(500);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_EQ(r.l2Hits + r.l2Misses, r.l2Accesses);
}

TEST(HierFabric, GrantWaitPercentilesReachRunResult)
{
    cpu::SystemConfig config = paperConfig(core::OrgKind::Nocstar, 16);
    config.org.recordGrantWait = true;
    cpu::System system(config);
    cpu::RunResult r = system.run(1000);
    EXPECT_GT(r.fabricSetupAttempts, 0u);
    EXPECT_GE(r.fabricGrantWaitP99Max, 0.0);
    EXPECT_GE(r.fabricGrantWaitP99Max, r.fabricGrantWaitP99Mean);
}
