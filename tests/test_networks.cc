/**
 * @file
 * Unit tests for the baseline interconnect latency models and the
 * Table I design-space evaluation.
 */

#include <gtest/gtest.h>

#include "noc/design_space.hh"
#include "noc/network.hh"
#include "noc/queued_mesh.hh"

using namespace nocstar;
using namespace nocstar::noc;

TEST(MeshNetwork, TwoCyclesPerHop)
{
    stats::StatGroup g("g");
    GridTopology topo(4, 4);
    MeshNetwork mesh("mesh", topo, &g);
    EXPECT_EQ(mesh.traverse(0, 0, 0), 0u);
    EXPECT_EQ(mesh.traverse(0, 3, 0), 6u); // 3 hops
    EXPECT_EQ(mesh.traverse(0, 15, 0), 12u); // 6 hops
    EXPECT_EQ(mesh.messages.value(), 3.0);
}

TEST(SmartNetwork, BypassesUpToHpcMax)
{
    stats::StatGroup g("g");
    GridTopology topo(8, 8);
    SmartNetwork smart("smart", topo, 8, &g);
    // 7 hops straight east: 1 SSR + ceil(7/8) = 2 cycles.
    EXPECT_EQ(smart.traverse(0, 7, 0), 2u);
    // (0,0) -> (7,7): two segments of 7: 2 * (1 + 1) = 4.
    EXPECT_EQ(smart.traverse(0, 63, 0), 4u);
    // HPCmax 4: 7-hop segment takes 1 + 2.
    SmartNetwork smart4("smart4", topo, 4, &g);
    EXPECT_EQ(smart4.traverse(0, 7, 0), 3u);
}

TEST(SmartNetwork, FasterThanMeshForLongPaths)
{
    stats::StatGroup g("g");
    GridTopology topo(8, 8);
    MeshNetwork mesh("mesh", topo, &g);
    SmartNetwork smart("smart", topo, 16, &g);
    for (CoreId d : {7u, 21u, 63u})
        EXPECT_LT(smart.traverse(0, d, 0), mesh.traverse(0, d, 0));
}

TEST(BusNetwork, SerializesTransactions)
{
    stats::StatGroup g("g");
    GridTopology topo(4, 4);
    BusNetwork bus("bus", topo, &g);
    Cycle first = bus.traverse(0, 5, 100);
    Cycle second = bus.traverse(1, 6, 100);
    Cycle third = bus.traverse(2, 7, 100);
    EXPECT_EQ(first, 2u); // grant next cycle + 1-cycle broadcast
    EXPECT_EQ(second, 3u);
    EXPECT_EQ(third, 4u);
}

TEST(IdealNetwork, AlwaysZero)
{
    stats::StatGroup g("g");
    GridTopology topo(8, 4);
    IdealNetwork ideal("ideal", topo, &g);
    EXPECT_EQ(ideal.traverse(0, 31, 12345), 0u);
}

TEST(QueuedMesh, UncontendedMatchesMesh)
{
    stats::StatGroup g("g");
    GridTopology topo(4, 4);
    QueuedMeshNetwork queued("q", topo, &g);
    EXPECT_EQ(queued.traverse(0, 3, 0), 6u);
}

TEST(QueuedMesh, ContentionAddsQueueing)
{
    stats::StatGroup g("g");
    GridTopology topo(4, 4);
    QueuedMeshNetwork queued("q", topo, &g);
    // Two messages over the same first link in the same cycle: the
    // second waits for the link.
    Cycle a = queued.traverse(0, 3, 0);
    Cycle b = queued.traverse(0, 3, 0);
    EXPECT_EQ(a, 6u);
    EXPECT_GT(b, a);
}

TEST(QueuedMesh, DisjointPathsDoNotInterfere)
{
    stats::StatGroup g("g");
    GridTopology topo(4, 4);
    QueuedMeshNetwork queued("q", topo, &g);
    Cycle a = queued.traverse(0, 1, 0);
    Cycle b = queued.traverse(15, 14, 0);
    EXPECT_EQ(a, 2u);
    EXPECT_EQ(b, 2u);
}

TEST(DesignSpace, ReproducesTableIPattern)
{
    DesignSpace space(64, 16);
    auto figures = space.evaluate();
    ASSERT_EQ(figures.size(), 6u);

    auto find = [&](NocDesign d) -> const NocFigures & {
        for (const auto &f : figures)
            if (f.design == d)
                return f;
        throw std::runtime_error("missing design");
    };

    // Table I: Bus = latency good, bandwidth bad.
    EXPECT_EQ(find(NocDesign::Bus).latencyRating, Rating::Good);
    EXPECT_EQ(find(NocDesign::Bus).bandwidthRating, Rating::Bad);
    // Mesh = latency bad, bandwidth good.
    EXPECT_EQ(find(NocDesign::Mesh).latencyRating, Rating::Bad);
    EXPECT_EQ(find(NocDesign::Mesh).bandwidthRating, Rating::Good);
    // FBFly-wide = latency good, bandwidth very good, area/power very
    // bad.
    EXPECT_EQ(find(NocDesign::FbflyWide).latencyRating, Rating::Good);
    EXPECT_EQ(find(NocDesign::FbflyWide).bandwidthRating,
              Rating::VeryGood);
    EXPECT_EQ(find(NocDesign::FbflyWide).areaRating, Rating::VeryBad);
    // FBFly-narrow = serialization hurts latency.
    EXPECT_EQ(find(NocDesign::FbflyNarrow).latencyRating, Rating::Bad);
    // SMART = latency good but area/power bad (buffers + SSR logic).
    EXPECT_EQ(find(NocDesign::Smart).latencyRating, Rating::Good);
    EXPECT_EQ(find(NocDesign::Smart).areaRating, Rating::Bad);
    // NOCSTAR = good across the board.
    const auto &nocstar = find(NocDesign::Nocstar);
    EXPECT_EQ(nocstar.latencyRating, Rating::Good);
    EXPECT_EQ(nocstar.bandwidthRating, Rating::Good);
    EXPECT_EQ(nocstar.areaRating, Rating::Good);
    EXPECT_EQ(nocstar.powerRating, Rating::Good);
}

TEST(DesignSpace, NocstarLatencyIsTwoCycles)
{
    DesignSpace space(64, 16);
    for (const auto &f : space.evaluate()) {
        if (f.design == NocDesign::Nocstar) {
            EXPECT_DOUBLE_EQ(f.avgLatency, 2.0);
        }
    }
}
