/**
 * @file
 * Tests for trace capture and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cpu/system.hh"
#include "workload/trace.hh"

using namespace nocstar;
using namespace nocstar::workload;

namespace
{

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

} // namespace

TEST(TraceFile, RoundTripsThroughDisk)
{
    TraceFile trace;
    trace.append(0, 0x1000);
    trace.append(1, 0xdeadbeef000);
    trace.append(0, 0x2000);
    std::string path = tempPath("nocstar_trace_roundtrip.txt");
    trace.save(path);

    TraceFile loaded = TraceFile::load(path);
    EXPECT_EQ(loaded.totalRecords(), 3u);
    EXPECT_EQ(loaded.recordCount(0), 2u);
    EXPECT_EQ(loaded.recordCount(1), 1u);
    EXPECT_EQ(loaded.threads(), (std::vector<unsigned>{0, 1}));

    auto source = loaded.sourceFor(0);
    EXPECT_EQ(source->next(), 0x1000u);
    EXPECT_EQ(source->next(), 0x2000u);
    EXPECT_EQ(source->next(), 0x1000u); // loops
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_THROW(TraceFile::load("/nonexistent/nocstar.trace"),
                 FatalError);
}

TEST(TraceFile, MalformedRecordIsFatal)
{
    std::string path = tempPath("nocstar_trace_bad.txt");
    {
        std::ofstream out(path);
        out << "0 zzz-not-hex\n";
    }
    EXPECT_THROW(TraceFile::load(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceFile, UnknownThreadIsFatal)
{
    TraceFile trace;
    trace.append(0, 0x1000);
    EXPECT_THROW(trace.sourceFor(7), FatalError);
}

TEST(TraceFile, CommentsAndBlankLinesIgnored)
{
    std::string path = tempPath("nocstar_trace_comments.txt");
    {
        std::ofstream out(path);
        out << "# a comment\n\n0 1000\n# another\n0 2000\n";
    }
    TraceFile loaded = TraceFile::load(path);
    EXPECT_EQ(loaded.totalRecords(), 2u);
    std::remove(path.c_str());
}

TEST(TraceReplay, CaptureThenReplayReproducesMissStream)
{
    std::string path = tempPath("nocstar_trace_capture.txt");

    cpu::SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 4;
    {
        cpu::AppConfig app_config;
        app_config.spec = workload::testWorkload();
        app_config.threads = 4;
        config.apps.push_back(std::move(app_config));
    }
    config.seed = 31;
    config.captureTracePath = path;

    cpu::RunResult captured;
    {
        cpu::System system(config);
        captured = system.run(1500);
    }

    // Replay the captured trace: the address stream, and hence the
    // entire TLB behaviour, must reproduce exactly. The seed stays
    // fixed because it also drives the page table's superpage layout
    // and the per-thread start stagger, which a trace does not carry.
    config.captureTracePath.clear();
    config.apps[0].traceFile = path;
    cpu::System replay_system(config);
    cpu::RunResult replayed = replay_system.run(1500);

    EXPECT_EQ(replayed.l1Misses, captured.l1Misses);
    EXPECT_EQ(replayed.l2Misses, captured.l2Misses);
    EXPECT_EQ(replayed.cycles, captured.cycles);
    std::remove(path.c_str());
}

TEST(TraceReplay, ShortTraceLoops)
{
    std::string path = tempPath("nocstar_trace_short.txt");
    {
        TraceFile trace;
        for (unsigned t = 0; t < 2; ++t)
            for (Addr page = 0; page < 8; ++page)
                trace.append(t, (page + 1) << 12);
        trace.save(path);
    }

    cpu::SystemConfig config;
    config.org.kind = core::OrgKind::Private;
    config.org.numCores = 2;
    cpu::AppConfig app;
    app.spec = workload::testWorkload();
    app.threads = 2;
    app.traceFile = path;
    config.apps.push_back(app);
    cpu::System system(config);
    // Far more accesses than trace records: the source must loop.
    cpu::RunResult result = system.run(4000);
    EXPECT_EQ(result.l1Accesses, 8000u);
    // Only 8 distinct pages per thread: everything hits after warmup.
    EXPECT_LT(result.l1Misses, 100u);
    std::remove(path.c_str());
}
