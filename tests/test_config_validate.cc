/**
 * @file
 * Structured configuration validation: OrgConfig::validate() and
 * SystemConfig::validate() return one message per violation, the
 * factory and the System constructor reject invalid configurations
 * with the full list, and valid configurations pass untouched.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/organization.hh"
#include "cpu/system.hh"

using namespace nocstar;
using namespace nocstar::core;

namespace
{

cpu::SystemConfig
validSystemConfig(unsigned cores = 16)
{
    cpu::SystemConfig config;
    config.org.kind = OrgKind::Nocstar;
    config.org.numCores = cores;
    config.org.banks = 4;
    cpu::AppConfig app;
    app.spec = workload::findWorkload("gups");
    app.threads = cores;
    config.apps.push_back(app);
    return config;
}

bool
mentions(const std::vector<std::string> &errors,
         const std::string &needle)
{
    for (const std::string &e : errors)
        if (e.find(needle) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(OrgValidate, DefaultConfigsAreValid)
{
    for (OrgKind kind :
         {OrgKind::Private, OrgKind::MonolithicMesh,
          OrgKind::MonolithicSmart, OrgKind::Distributed,
          OrgKind::IdealShared, OrgKind::Nocstar,
          OrgKind::NocstarIdeal}) {
        OrgConfig config;
        config.kind = kind;
        config.numCores = 16;
        EXPECT_TRUE(config.validate().empty())
            << orgKindName(kind) << ": "
            << joinConfigErrors(config.validate());
    }
}

TEST(OrgValidate, ReportsEveryViolationAtOnce)
{
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 0;
    config.l2Entries = 0;
    config.readPortsPerCycle = 0;
    config.nocstarSliceEntries = 0;
    std::vector<std::string> errors = config.validate();
    EXPECT_TRUE(mentions(errors, "numCores"));
    EXPECT_TRUE(mentions(errors, "l2Entries"));
    EXPECT_TRUE(mentions(errors, "readPortsPerCycle"));
    EXPECT_TRUE(mentions(errors, "nocstarSliceEntries"));
    EXPECT_GE(errors.size(), 4u);
}

TEST(OrgValidate, CatchesEntriesNotMultipleOfAssoc)
{
    OrgConfig config;
    config.kind = OrgKind::Private;
    config.numCores = 4;
    config.l2Entries = 1000;
    config.l2Assoc = 16; // 1000 % 16 != 0
    EXPECT_TRUE(mentions(config.validate(), "not a multiple"));
}

TEST(OrgValidate, CatchesNonTilingCoreCount)
{
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 13; // no full WxH mesh
    EXPECT_TRUE(mentions(config.validate(), "does not tile"));
}

TEST(OrgValidate, CatchesBankOverflow)
{
    OrgConfig config;
    config.kind = OrgKind::MonolithicMesh;
    config.numCores = 4;
    config.banks = 8;
    EXPECT_TRUE(mentions(config.validate(), "banks"));
}

TEST(OrgValidate, ChecksFaultPlanAgainstTopology)
{
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 16; // 4x4: link ids < 64
    config.faults.linkFaults.push_back({200, 0, 0});
    EXPECT_TRUE(mentions(config.validate(), "faults:"));

    config.faults.linkFaults.clear();
    config.faults.grantLossProb = 1.5;
    EXPECT_TRUE(mentions(config.validate(), "faults:"));
}

TEST(OrgValidate, HierFabricGeometryRules)
{
    // The hierarchical fabric needs a NOCSTAR organization.
    OrgConfig config;
    config.kind = OrgKind::Distributed;
    config.numCores = 16;
    config.fabricKind = FabricKind::Hierarchical;
    EXPECT_TRUE(mentions(config.validate(), "NOCSTAR organization"));

    // Non-power-of-two mesh dimensions are rejected with a hint.
    config = OrgConfig{};
    config.kind = OrgKind::Nocstar;
    config.numCores = 24; // tiles 8x3
    config.fabricKind = FabricKind::Hierarchical;
    EXPECT_TRUE(mentions(config.validate(), "power-of-two"));
    EXPECT_TRUE(mentions(config.validate(), "try"));

    // Cluster dimensions must divide the mesh.
    config.numCores = 64;
    config.clusterWidth = 3;
    config.clusterHeight = 4;
    EXPECT_TRUE(mentions(config.validate(), "must divide"));

    // Either both cluster dimensions or neither.
    config.clusterWidth = 4;
    config.clusterHeight = 0;
    EXPECT_TRUE(mentions(config.validate(), "set together"));

    // A valid hierarchical geometry passes.
    config.clusterHeight = 4;
    EXPECT_TRUE(config.validate().empty())
        << joinConfigErrors(config.validate());
}

TEST(OrgValidate, FabricKnobsNeedTheRightFabric)
{
    // Cluster geometry on the flat fabric is a contradiction.
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 16;
    config.clusterWidth = 2;
    config.clusterHeight = 2;
    EXPECT_TRUE(mentions(config.validate(), "fabric is flat"));

    // Cluster-local slice placement needs the hierarchy.
    config = OrgConfig{};
    config.kind = OrgKind::Nocstar;
    config.numCores = 16;
    config.sliceMapping = SliceMapping::ClusterLocal;
    EXPECT_TRUE(
        mentions(config.validate(), "needs the hierarchical fabric"));
}

TEST(OrgValidate, ParseFabricSpec)
{
    OrgConfig config;
    EXPECT_TRUE(parseFabricSpec("flat", config).empty());
    EXPECT_EQ(config.fabricKind, FabricKind::Flat);

    EXPECT_TRUE(parseFabricSpec("hier", config).empty());
    EXPECT_EQ(config.fabricKind, FabricKind::Hierarchical);
    EXPECT_EQ(config.clusterWidth, 0u); // auto geometry
    EXPECT_EQ(config.clusterHeight, 0u);

    EXPECT_TRUE(parseFabricSpec("hier:8x4", config).empty());
    EXPECT_EQ(config.fabricKind, FabricKind::Hierarchical);
    EXPECT_EQ(config.clusterWidth, 8u);
    EXPECT_EQ(config.clusterHeight, 4u);

    // Selecting flat again clears the stale geometry.
    EXPECT_TRUE(parseFabricSpec("flat", config).empty());
    EXPECT_EQ(config.clusterWidth, 0u);

    EXPECT_FALSE(parseFabricSpec("mesh", config).empty());
    EXPECT_FALSE(parseFabricSpec("hier:", config).empty());
    EXPECT_FALSE(parseFabricSpec("hier:4", config).empty());
    EXPECT_FALSE(parseFabricSpec("hier:ax4", config).empty());
    EXPECT_FALSE(parseFabricSpec("hier:4xb", config).empty());
    EXPECT_FALSE(parseFabricSpec("hier:0x4", config).empty());
    EXPECT_FALSE(parseFabricSpec("hier:4x4x4", config).empty());
}

TEST(OrgValidate, FactoryRejectsInvalidConfig)
{
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 0;
    EventQueue queue;
    stats::StatGroup root("root");
    OrgContext context;
    context.queue = &queue;
    // Validation runs before any member is touched.
    EXPECT_THROW(makeOrganization(config, std::move(context), &root),
                 FatalError);
}

TEST(SystemValidate, ValidConfigPasses)
{
    EXPECT_TRUE(validSystemConfig().validate().empty());
}

TEST(SystemValidate, RequiresApps)
{
    cpu::SystemConfig config = validSystemConfig();
    config.apps.clear();
    EXPECT_TRUE(mentions(config.validate(), "at least one application"));
}

TEST(SystemValidate, OrgErrorsArePrefixed)
{
    cpu::SystemConfig config = validSystemConfig();
    config.org.l2Entries = 0;
    EXPECT_TRUE(mentions(config.validate(), "org: "));
}

TEST(SystemValidate, CatchesThreadOversubscription)
{
    cpu::SystemConfig config = validSystemConfig(16);
    config.apps[0].threads = 99;
    EXPECT_FALSE(config.validate().empty());

    // SMT widens the budget.
    config.apps[0].threads = 32;
    config.smtPerCore = 2;
    EXPECT_TRUE(config.validate().empty());
}

TEST(SystemValidate, CatchesZeroThreadApp)
{
    cpu::SystemConfig config = validSystemConfig();
    config.apps[0].threads = 0;
    EXPECT_FALSE(config.validate().empty());
}

TEST(SystemValidate, CatchesBadHotspotAndEccSettings)
{
    cpu::SystemConfig config = validSystemConfig(16);
    config.hotspotSlice = 16; // slices are 0..15
    EXPECT_TRUE(mentions(config.validate(), "hotspotSlice"));

    config = validSystemConfig(16);
    config.hotspotSlice = 3;
    config.hotspotFraction = 1.5;
    EXPECT_TRUE(mentions(config.validate(), "hotspotFraction"));

    config = validSystemConfig(16);
    config.walker.eccRetryProb = 2.0;
    EXPECT_FALSE(config.validate().empty());
}

TEST(SystemValidate, ConstructorRejectsWithFullList)
{
    cpu::SystemConfig config = validSystemConfig();
    config.org.l2Entries = 0;
    config.apps[0].threads = 0;
    try {
        cpu::System system(config);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("l2Entries"), std::string::npos);
        EXPECT_NE(what.find("threads"), std::string::npos);
    }
}
