/**
 * @file
 * Structured configuration validation: OrgConfig::validate() and
 * SystemConfig::validate() return one message per violation, the
 * factory and the System constructor reject invalid configurations
 * with the full list, and valid configurations pass untouched.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/organization.hh"
#include "cpu/system.hh"

using namespace nocstar;
using namespace nocstar::core;

namespace
{

cpu::SystemConfig
validSystemConfig(unsigned cores = 16)
{
    cpu::SystemConfig config;
    config.org.kind = OrgKind::Nocstar;
    config.org.numCores = cores;
    config.org.banks = 4;
    cpu::AppConfig app;
    app.spec = workload::findWorkload("gups");
    app.threads = cores;
    config.apps.push_back(app);
    return config;
}

bool
mentions(const std::vector<std::string> &errors,
         const std::string &needle)
{
    for (const std::string &e : errors)
        if (e.find(needle) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(OrgValidate, DefaultConfigsAreValid)
{
    for (OrgKind kind :
         {OrgKind::Private, OrgKind::MonolithicMesh,
          OrgKind::MonolithicSmart, OrgKind::Distributed,
          OrgKind::IdealShared, OrgKind::Nocstar,
          OrgKind::NocstarIdeal}) {
        OrgConfig config;
        config.kind = kind;
        config.numCores = 16;
        EXPECT_TRUE(config.validate().empty())
            << orgKindName(kind) << ": "
            << joinConfigErrors(config.validate());
    }
}

TEST(OrgValidate, ReportsEveryViolationAtOnce)
{
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 0;
    config.l2Entries = 0;
    config.readPortsPerCycle = 0;
    config.nocstarSliceEntries = 0;
    std::vector<std::string> errors = config.validate();
    EXPECT_TRUE(mentions(errors, "numCores"));
    EXPECT_TRUE(mentions(errors, "l2Entries"));
    EXPECT_TRUE(mentions(errors, "readPortsPerCycle"));
    EXPECT_TRUE(mentions(errors, "nocstarSliceEntries"));
    EXPECT_GE(errors.size(), 4u);
}

TEST(OrgValidate, CatchesEntriesNotMultipleOfAssoc)
{
    OrgConfig config;
    config.kind = OrgKind::Private;
    config.numCores = 4;
    config.l2Entries = 1000;
    config.l2Assoc = 16; // 1000 % 16 != 0
    EXPECT_TRUE(mentions(config.validate(), "not a multiple"));
}

TEST(OrgValidate, CatchesNonTilingCoreCount)
{
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 13; // no full WxH mesh
    EXPECT_TRUE(mentions(config.validate(), "does not tile"));
}

TEST(OrgValidate, CatchesBankOverflow)
{
    OrgConfig config;
    config.kind = OrgKind::MonolithicMesh;
    config.numCores = 4;
    config.banks = 8;
    EXPECT_TRUE(mentions(config.validate(), "banks"));
}

TEST(OrgValidate, ChecksFaultPlanAgainstTopology)
{
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 16; // 4x4: link ids < 64
    config.faults.linkFaults.push_back({200, 0, 0});
    EXPECT_TRUE(mentions(config.validate(), "faults:"));

    config.faults.linkFaults.clear();
    config.faults.grantLossProb = 1.5;
    EXPECT_TRUE(mentions(config.validate(), "faults:"));
}

TEST(OrgValidate, FactoryRejectsInvalidConfig)
{
    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 0;
    EventQueue queue;
    stats::StatGroup root("root");
    OrgContext context;
    context.queue = &queue;
    // Validation runs before any member is touched.
    EXPECT_THROW(makeOrganization(config, std::move(context), &root),
                 FatalError);
}

TEST(SystemValidate, ValidConfigPasses)
{
    EXPECT_TRUE(validSystemConfig().validate().empty());
}

TEST(SystemValidate, RequiresApps)
{
    cpu::SystemConfig config = validSystemConfig();
    config.apps.clear();
    EXPECT_TRUE(mentions(config.validate(), "at least one application"));
}

TEST(SystemValidate, OrgErrorsArePrefixed)
{
    cpu::SystemConfig config = validSystemConfig();
    config.org.l2Entries = 0;
    EXPECT_TRUE(mentions(config.validate(), "org: "));
}

TEST(SystemValidate, CatchesThreadOversubscription)
{
    cpu::SystemConfig config = validSystemConfig(16);
    config.apps[0].threads = 99;
    EXPECT_FALSE(config.validate().empty());

    // SMT widens the budget.
    config.apps[0].threads = 32;
    config.smtPerCore = 2;
    EXPECT_TRUE(config.validate().empty());
}

TEST(SystemValidate, CatchesZeroThreadApp)
{
    cpu::SystemConfig config = validSystemConfig();
    config.apps[0].threads = 0;
    EXPECT_FALSE(config.validate().empty());
}

TEST(SystemValidate, CatchesBadHotspotAndEccSettings)
{
    cpu::SystemConfig config = validSystemConfig(16);
    config.hotspotSlice = 16; // slices are 0..15
    EXPECT_TRUE(mentions(config.validate(), "hotspotSlice"));

    config = validSystemConfig(16);
    config.hotspotSlice = 3;
    config.hotspotFraction = 1.5;
    EXPECT_TRUE(mentions(config.validate(), "hotspotFraction"));

    config = validSystemConfig(16);
    config.walker.eccRetryProb = 2.0;
    EXPECT_FALSE(config.validate().empty());
}

TEST(SystemValidate, ConstructorRejectsWithFullList)
{
    cpu::SystemConfig config = validSystemConfig();
    config.org.l2Entries = 0;
    config.apps[0].threads = 0;
    try {
        cpu::System system(config);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("l2Entries"), std::string::npos);
        EXPECT_NE(what.find("threads"), std::string::npos);
    }
}
