/**
 * @file
 * Unit and property tests for the set-associative TLB, the L1 TLB
 * group and the prefetcher.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/random.hh"
#include "tlb/l1_tlb.hh"
#include "tlb/prefetcher.hh"
#include "tlb/set_assoc_tlb.hh"

using namespace nocstar;
using namespace nocstar::tlb;

namespace
{

TlbEntry
entry(ContextId ctx, PageNum vpn, PageSize size = PageSize::FourKB,
      PageNum ppn = 0)
{
    TlbEntry e;
    e.valid = true;
    e.ctx = ctx;
    e.vpn = vpn;
    e.ppn = ppn ? ppn : vpn + 1000;
    e.size = size;
    return e;
}

} // namespace

TEST(SetAssocTlb, MissThenHit)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    EXPECT_EQ(tlb.lookup(1, 42, PageSize::FourKB), nullptr);
    tlb.insert(entry(1, 42));
    const TlbEntry *hit = tlb.lookup(1, 42, PageSize::FourKB);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->ppn, 1042u);
    EXPECT_EQ(tlb.hits.value(), 1.0);
    EXPECT_EQ(tlb.misses.value(), 1.0);
}

TEST(SetAssocTlb, ContextIsolation)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    tlb.insert(entry(1, 42));
    EXPECT_EQ(tlb.lookup(2, 42, PageSize::FourKB), nullptr);
    EXPECT_NE(tlb.lookup(1, 42, PageSize::FourKB), nullptr);
}

TEST(SetAssocTlb, PageSizeIsolation)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    tlb.insert(entry(1, 42, PageSize::FourKB));
    EXPECT_EQ(tlb.lookup(1, 42, PageSize::TwoMB), nullptr);
}

TEST(SetAssocTlb, LruEvictsLeastRecentlyUsed)
{
    stats::StatGroup g("g");
    // Single set of 2 ways: every insert maps to set 0.
    SetAssocTlb tlb("t", 2, 2, &g);
    tlb.insert(entry(1, 10));
    tlb.insert(entry(1, 20));
    // Touch 10 so 20 becomes LRU.
    EXPECT_NE(tlb.lookup(1, 10, PageSize::FourKB), nullptr);
    auto evicted = tlb.insert(entry(1, 30));
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->vpn, 20u);
    EXPECT_NE(tlb.lookup(1, 10, PageSize::FourKB), nullptr);
    EXPECT_EQ(tlb.lookup(1, 20, PageSize::FourKB), nullptr);
}

TEST(SetAssocTlb, ReinsertRefreshesInPlace)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 8, 8, &g);
    tlb.insert(entry(1, 5, PageSize::FourKB, 100));
    auto evicted = tlb.insert(entry(1, 5, PageSize::FourKB, 200));
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(tlb.lookup(1, 5, PageSize::FourKB)->ppn, 200u);
    EXPECT_EQ(tlb.occupancy(), 1u);
}

TEST(SetAssocTlb, InvalidateSingleEntry)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    tlb.insert(entry(1, 7));
    EXPECT_TRUE(tlb.invalidate(1, 7, PageSize::FourKB));
    EXPECT_FALSE(tlb.invalidate(1, 7, PageSize::FourKB));
    EXPECT_EQ(tlb.lookup(1, 7, PageSize::FourKB), nullptr);
    EXPECT_EQ(tlb.invalidations.value(), 1.0);
}

TEST(SetAssocTlb, InvalidateContextAndAll)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    for (PageNum v = 0; v < 10; ++v)
        tlb.insert(entry(1, v));
    for (PageNum v = 0; v < 5; ++v)
        tlb.insert(entry(2, v));
    EXPECT_EQ(tlb.invalidateContext(1), 10u);
    EXPECT_EQ(tlb.occupancy(), 5u);
    EXPECT_EQ(tlb.invalidateAll(), 5u);
    EXPECT_EQ(tlb.occupancy(), 0u);
}

TEST(SetAssocTlb, PresentDoesNotPerturbStats)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    tlb.insert(entry(1, 3));
    EXPECT_TRUE(tlb.present(1, 3, PageSize::FourKB));
    EXPECT_FALSE(tlb.present(1, 4, PageSize::FourKB));
    EXPECT_EQ(tlb.hits.value(), 0.0);
    EXPECT_EQ(tlb.misses.value(), 0.0);
}

TEST(SetAssocTlb, PrefetchedFlagCountsFirstDemandHit)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    TlbEntry e = entry(1, 9);
    e.prefetched = true;
    tlb.insert(e);
    tlb.lookup(1, 9, PageSize::FourKB);
    tlb.lookup(1, 9, PageSize::FourKB);
    EXPECT_EQ(tlb.prefetchHits.value(), 1.0);
}

TEST(SetAssocTlb, LookupAnySizeFindsLargerPages)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    Addr vaddr = 0x40000000; // 1 GB aligned
    tlb.insert(entry(1, pageNumber(vaddr, PageSize::TwoMB),
                     PageSize::TwoMB));
    const TlbEntry *hit = tlb.lookupAnySize(1, vaddr + 0x1234);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->size, PageSize::TwoMB);
}

TEST(SetAssocTlb, NonPowerOfTwoCapacityWorks)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 920, 8, &g); // the NOCSTAR slice geometry
    EXPECT_EQ(tlb.numSets(), 115u);
    for (PageNum v = 0; v < 920; ++v)
        tlb.insert(entry(1, v * 16)); // slice-interleaved VPNs
    // Hash indexing must reach most sets despite the stride.
    EXPECT_GT(tlb.occupancy(), 800u);
}

TEST(SetAssocTlb, InvalidGeometryFatal)
{
    stats::StatGroup g("g");
    EXPECT_THROW(SetAssocTlb("t", 0, 4, &g), FatalError);
    EXPECT_THROW(SetAssocTlb("t", 100, 8, &g), FatalError);
}

TEST(SetAssocTlb, InsertInvalidEntryPanics)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    TlbEntry bad;
    EXPECT_THROW(tlb.insert(bad), PanicError);
}

/** Property: after arbitrary operations, no duplicate (ctx,vpn,size). */
class TlbPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TlbPropertyTest, NoDuplicateTranslations)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 128, 4, &g);
    Random rng(GetParam());
    for (int i = 0; i < 5000; ++i) {
        PageNum vpn = rng.below(300);
        ContextId ctx = static_cast<ContextId>(rng.below(3));
        switch (rng.below(3)) {
          case 0:
            tlb.insert(entry(ctx, vpn));
            break;
          case 1:
            tlb.lookup(ctx, vpn, PageSize::FourKB);
            break;
          default:
            tlb.invalidate(ctx, vpn, PageSize::FourKB);
            break;
        }
    }
    // Scan for duplicates via present+invalidate: invalidating an entry
    // twice must never succeed twice.
    for (ContextId ctx = 0; ctx < 3; ++ctx) {
        for (PageNum vpn = 0; vpn < 300; ++vpn) {
            if (tlb.invalidate(ctx, vpn, PageSize::FourKB)) {
                EXPECT_FALSE(tlb.invalidate(ctx, vpn,
                                            PageSize::FourKB));
            }
        }
    }
    EXPECT_EQ(tlb.occupancy(), 0u);
}

TEST_P(TlbPropertyTest, OccupancyNeverExceedsCapacity)
{
    stats::StatGroup g("g");
    SetAssocTlb tlb("t", 64, 4, &g);
    Random rng(GetParam() ^ 0x1234);
    for (int i = 0; i < 2000; ++i) {
        tlb.insert(entry(0, rng.below(100000)));
        ASSERT_LE(tlb.occupancy(), 64u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlbPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(L1TlbGroup, RoutesBySizeAndScales)
{
    stats::StatGroup g("g");
    L1TlbConfig config;
    config.scale = 0.5;
    L1TlbGroup l1("l1", config, &g);
    EXPECT_EQ(l1.arrayFor(PageSize::FourKB).numEntries(), 32u);
    EXPECT_EQ(l1.arrayFor(PageSize::TwoMB).numEntries(), 16u);
    EXPECT_EQ(l1.arrayFor(PageSize::OneGB).numEntries(), 4u);

    l1.insert(entry(1, 10, PageSize::FourKB));
    l1.insert(entry(1, 10, PageSize::TwoMB));
    EXPECT_NE(l1.lookup(1, 10, PageSize::FourKB), nullptr);
    EXPECT_NE(l1.lookup(1, 10, PageSize::TwoMB), nullptr);
    EXPECT_EQ(l1.demandAccesses(), 2u);
    EXPECT_EQ(l1.demandMisses(), 0u);
}

TEST(L1TlbGroup, InvalidateAllFlushesEverySize)
{
    stats::StatGroup g("g");
    L1TlbGroup l1("l1", L1TlbConfig{}, &g);
    l1.insert(entry(1, 1, PageSize::FourKB));
    l1.insert(entry(1, 2, PageSize::TwoMB));
    l1.insert(entry(1, 3, PageSize::OneGB));
    EXPECT_EQ(l1.invalidateAll(), 3u);
    EXPECT_EQ(l1.lookup(1, 1, PageSize::FourKB), nullptr);
}

TEST(L1TlbGroup, ScaleKeepsWholeSets)
{
    stats::StatGroup g("g");
    L1TlbConfig config;
    config.scale = 1.5;
    L1TlbGroup l1("l1", config, &g);
    EXPECT_EQ(l1.arrayFor(PageSize::FourKB).numEntries() % 4, 0u);
    EXPECT_EQ(l1.arrayFor(PageSize::FourKB).numEntries(), 96u);
}

TEST(Prefetcher, CandidatesAlternateAroundMiss)
{
    TlbPrefetcher pf(2);
    auto c = pf.candidates(100);
    EXPECT_EQ(c, (std::vector<PageNum>{101, 99, 102, 98}));
}

TEST(Prefetcher, ClampsAtPageZero)
{
    TlbPrefetcher pf(3);
    auto c = pf.candidates(1);
    // vpn 1: +1, -1, +2, (no -2), +3, (no -3)
    EXPECT_EQ(c, (std::vector<PageNum>{2, 0, 3, 4}));
}

TEST(Prefetcher, DistanceZeroEmitsNothing)
{
    TlbPrefetcher pf(0);
    EXPECT_TRUE(pf.candidates(50).empty());
}
