/**
 * @file
 * Unit tests for FlatMap, the open-addressing map backing the page
 * table, walker caches and cache-model line stores.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/flat_map.hh"
#include "sim/random.hh"

using namespace nocstar;

TEST(FlatMap, StartsEmptyWithNoStorage)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), 0u);
    EXPECT_EQ(map.find(42), nullptr);
    EXPECT_FALSE(map.contains(42));
    EXPECT_FALSE(map.erase(42));
}

TEST(FlatMap, InsertFindAndDuplicateInsert)
{
    FlatMap<std::uint64_t, int> map;
    auto [value, inserted] = map.emplace(7, 70);
    ASSERT_TRUE(inserted);
    EXPECT_EQ(*value, 70);

    auto [again, second] = map.emplace(7, 700);
    EXPECT_FALSE(second);
    EXPECT_EQ(*again, 70) << "emplace must not overwrite";

    ASSERT_NE(map.find(7), nullptr);
    EXPECT_EQ(*map.find(7), 70);
    EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, SubscriptDefaultConstructsAndUpdatesInPlace)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_EQ(map[3], 0);
    map[3] = 33;
    EXPECT_EQ(map[3], 33);
    map[3] += 1;
    EXPECT_EQ(*map.find(3), 34);
}

TEST(FlatMap, EraseLeavesTombstoneUntilReused)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 8; ++k)
        map.emplace(k, static_cast<int>(k));

    EXPECT_TRUE(map.erase(3));
    EXPECT_FALSE(map.contains(3));
    EXPECT_EQ(map.size(), 7u);
    EXPECT_EQ(map.tombstones(), 1u);

    // Other keys still reachable through/around the grave.
    for (std::uint64_t k = 0; k < 8; ++k) {
        if (k != 3)
            EXPECT_TRUE(map.contains(k)) << "key " << k;
    }
}

TEST(FlatMap, InsertReusesTombstones)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 8; ++k)
        map.emplace(k, 1);
    std::size_t cap = map.capacity();

    // Churn delete/insert of the same key: the tombstone created by
    // each erase must be reclaimed by the next insert, or the table
    // would fill with graves and rehash indefinitely.
    for (int round = 0; round < 1000; ++round) {
        ASSERT_TRUE(map.erase(5));
        auto [value, inserted] = map.emplace(5, round);
        ASSERT_TRUE(inserted);
        ASSERT_EQ(*value, round);
        ASSERT_LE(map.tombstones(), 1u);
    }
    EXPECT_EQ(map.capacity(), cap)
        << "tombstone churn must not force growth";
    EXPECT_EQ(map.size(), 8u);
}

TEST(FlatMap, GrowsAndKeepsAllEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    constexpr std::uint64_t n = 10000;
    for (std::uint64_t k = 0; k < n; ++k)
        map.emplace(k * 0x10001, k);

    EXPECT_EQ(map.size(), n);
    // Power-of-two capacity, below the 7/8 load bound.
    EXPECT_EQ(map.capacity() & (map.capacity() - 1), 0u);
    EXPECT_GE(map.capacity() * 7, map.size() * 8);
    for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t *v = map.find(k * 0x10001);
        ASSERT_NE(v, nullptr) << "key " << k;
        EXPECT_EQ(*v, k);
    }
}

TEST(FlatMap, ReservePreventsRehash)
{
    FlatMap<std::uint64_t, int> map;
    map.reserve(1000);
    std::size_t cap = map.capacity();
    for (std::uint64_t k = 0; k < 1000; ++k)
        map.emplace(k, 1);
    EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMap, IterationMatchesContents)
{
    FlatMap<std::uint64_t, int> map;
    map.emplace(10, 1);
    map.emplace(20, 2);
    map.emplace(30, 3);
    map.erase(20);

    std::vector<std::pair<std::uint64_t, int>> seen;
    for (const auto &slot : map)
        seen.emplace_back(slot.first, slot.second);
    std::sort(seen.begin(), seen.end());

    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], (std::pair<std::uint64_t, int>{10, 1}));
    EXPECT_EQ(seen[1], (std::pair<std::uint64_t, int>{30, 3}));
}

TEST(FlatMap, RandomizedParityWithUnorderedMap)
{
    // Drive both maps with the same operation stream and demand
    // identical behaviour throughout: find results, sizes, and full
    // contents at checkpoints.
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Random rng(0xf1a7f1a7);

    for (int op = 0; op < 200000; ++op) {
        std::uint64_t key = rng.below(512); // small space -> collisions
        std::uint64_t kind = rng.below(4);
        if (kind < 2) {
            auto [value, inserted] = flat.emplace(key, op);
            auto [it, ref_inserted] =
                ref.try_emplace(key, static_cast<std::uint64_t>(op));
            ASSERT_EQ(inserted, ref_inserted) << "op " << op;
            ASSERT_EQ(*value, it->second) << "op " << op;
        } else if (kind == 2) {
            ASSERT_EQ(flat.erase(key), ref.erase(key) > 0)
                << "op " << op;
        } else {
            std::uint64_t *value = flat.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(value != nullptr, it != ref.end()) << "op " << op;
            if (value)
                ASSERT_EQ(*value, it->second) << "op " << op;
        }
        ASSERT_EQ(flat.size(), ref.size()) << "op " << op;

        if (op % 5000 == 4999) {
            std::vector<std::pair<std::uint64_t, std::uint64_t>> a, b;
            for (const auto &slot : flat)
                a.emplace_back(slot.first, slot.second);
            b.assign(ref.begin(), ref.end());
            std::sort(a.begin(), a.end());
            std::sort(b.begin(), b.end());
            ASSERT_EQ(a, b) << "contents diverged at op " << op;
        }
    }
}

TEST(FlatMap, ClearKeepsCapacityDropsContents)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t k = 0; k < 100; ++k)
        map.emplace(k, 1);
    map.erase(5);
    std::size_t cap = map.capacity();

    map.clear();
    EXPECT_TRUE(map.empty());
    EXPECT_EQ(map.tombstones(), 0u);
    EXPECT_EQ(map.capacity(), cap);
    EXPECT_FALSE(map.contains(7));
    map.emplace(7, 2);
    EXPECT_EQ(*map.find(7), 2);
}
