/**
 * @file
 * Tests of the four last-level TLB organizations: timing (including
 * the Fig 10 remote-access timeline), hit/miss handling, walk
 * placement, preload, shootdowns and flushes.
 */

#include <gtest/gtest.h>

#include "core/distributed_org.hh"
#include "core/monolithic_org.hh"
#include "core/nocstar_org.hh"
#include "core/private_org.hh"
#include "energy/sram_model.hh"
#include "mem/cache_model.hh"
#include "mem/page_walker.hh"

using namespace nocstar;
using namespace nocstar::core;

namespace
{

/** Self-contained environment for one organization. */
struct OrgHarness
{
    EventQueue queue;
    stats::StatGroup root{"root"};
    mem::PageTable table{0.0, 1};
    mem::CacheModel caches;
    std::vector<std::unique_ptr<mem::PageTableWalker>> walkers;
    energy::TranslationEnergyModel energy;
    OrgConfig config;
    std::unique_ptr<TlbOrganization> org;
    std::vector<std::pair<CoreId, PageNum>> l1Invalidations;

    explicit OrgHarness(OrgKind kind, unsigned cores = 16,
                        std::function<void(OrgConfig &)> tweak = {})
        : caches("caches", cores, mem::CacheModelConfig{}, &root)
    {
        config.kind = kind;
        config.numCores = cores;
        if (tweak)
            tweak(config);

        OrgContext context;
        context.queue = &queue;
        context.pageTable = &table;
        context.energy = &energy;
        for (CoreId c = 0; c < cores; ++c) {
            walkers.push_back(std::make_unique<mem::PageTableWalker>(
                "walker" + std::to_string(c), c, table, caches,
                mem::WalkerConfig{}, &root));
            context.walkers.push_back(walkers.back().get());
        }
        context.l1Invalidate = [this](CoreId core, ContextId,
                                      PageNum vpn, PageSize) {
            l1Invalidations.push_back({core, vpn});
        };
        org = makeOrganization(config, std::move(context), &root);
    }

    /** Blocking translate helper. */
    TranslationResult
    translate(CoreId core, Addr vaddr, Cycle now)
    {
        TranslationResult out;
        bool done = false;
        org->translate(core, 1, vaddr, now,
                       [&](const TranslationResult &r) {
                           out = r;
                           done = true;
                       });
        queue.run();
        EXPECT_TRUE(done);
        return out;
    }
};

/** A 4 KB address homed on a given slice of an N-core system. */
Addr
addrOnSlice(CoreId slice, unsigned cores, std::uint64_t salt = 0)
{
    PageNum vpn = salt * cores + slice;
    return vpn << pageShift(PageSize::FourKB);
}

} // namespace

TEST(PrivateOrg, HitTakesInitiatePlusNineCycles)
{
    OrgHarness h(OrgKind::Private);
    Addr vaddr = 0x7000;
    mem::Translation t = h.table.translate(1, vaddr);
    auto &priv = dynamic_cast<PrivateOrg &>(*h.org);
    priv.preloadPrivate(2, 1, vaddr, t);

    auto result = h.translate(2, vaddr, 100);
    EXPECT_TRUE(result.l2Hit);
    // initiate (1) + SRAM lookup (9).
    EXPECT_EQ(result.completedAt, 110u);
}

TEST(PrivateOrg, MissWalksAndFills)
{
    OrgHarness h(OrgKind::Private);
    auto result = h.translate(0, 0x9000, 50);
    EXPECT_FALSE(result.l2Hit);
    EXPECT_TRUE(result.walked);
    EXPECT_GT(result.completedAt, 60u);
    // Refill is now resident.
    auto again = h.translate(0, 0x9000, result.completedAt + 10);
    EXPECT_TRUE(again.l2Hit);
    EXPECT_EQ(h.org->l2Misses.value(), 1.0);
    EXPECT_EQ(h.org->l2Hits.value(), 1.0);
}

TEST(PrivateOrg, CoresDoNotShareArrays)
{
    OrgHarness h(OrgKind::Private);
    h.translate(0, 0x9000, 0); // fills core 0 only
    auto other = h.translate(1, 0x9000, 2000);
    EXPECT_FALSE(other.l2Hit);
}

TEST(PrivateOrg, ShootdownInvalidatesEverywhere)
{
    OrgHarness h(OrgKind::Private);
    h.translate(0, 0x9000, 0);
    h.translate(1, 0x9000, 2000);
    Cycle completed = 0;
    h.org->shootdown(0, 1, 0x9000, {0, 1, 2}, 4000,
                     [&](Cycle at) { completed = at; });
    h.queue.run();
    EXPECT_EQ(completed, 4000 + PrivateOrg::shootdownLatency);
    EXPECT_EQ(h.org->shootdownL2Invalidations.value(), 2.0);
    EXPECT_EQ(h.l1Invalidations.size(), 3u);
    auto after = h.translate(0, 0x9000, 5000);
    EXPECT_FALSE(after.l2Hit);
}

TEST(NocstarOrg, RemoteHitFollowsFig10Timeline)
{
    OrgHarness h(OrgKind::Nocstar);
    auto &nocstar = dynamic_cast<NocstarOrg &>(*h.org);

    // Find an address homed on a slice one hop from core 0.
    Addr vaddr = addrOnSlice(1, 16);
    ASSERT_EQ(nocstar.sliceOf(vaddr), 1u);
    nocstar.preloadShared(1, vaddr, h.table.translate(1, vaddr));

    auto result = h.translate(0, vaddr, 0);
    EXPECT_TRUE(result.l2Hit);
    // Fig 10: L1 miss at 0, path setup at 1, traversal at 2, slice
    // access 3..11 (9 cycles), response setup overlapped, response
    // traversal, insert at 13.
    EXPECT_EQ(result.completedAt, 13u);
}

TEST(NocstarOrg, LocalHitMatchesPrivateLatency)
{
    OrgHarness h(OrgKind::Nocstar);
    auto &nocstar = dynamic_cast<NocstarOrg &>(*h.org);
    Addr vaddr = addrOnSlice(5, 16);
    nocstar.preloadShared(1, vaddr, h.table.translate(1, vaddr));
    auto result = h.translate(5, vaddr, 0);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.completedAt, 10u); // initiate + 9-cycle slice
}

TEST(NocstarOrg, SliceEntriesAreaNormalized)
{
    OrgHarness h(OrgKind::Nocstar);
    auto &nocstar = dynamic_cast<NocstarOrg &>(*h.org);
    EXPECT_EQ(nocstar.sliceArray(0).numEntries(), 920u);
    EXPECT_EQ(h.org->totalEntries(), 920u * 16);
}

TEST(NocstarOrg, MissFillsHomeSliceForAllCores)
{
    OrgHarness h(OrgKind::Nocstar);
    Addr vaddr = addrOnSlice(3, 16);
    auto first = h.translate(0, vaddr, 0);
    EXPECT_FALSE(first.l2Hit);
    // Another core now hits the shared slice: the sharing benefit.
    auto second = h.translate(7, vaddr, first.completedAt + 100);
    EXPECT_TRUE(second.l2Hit);
}

TEST(NocstarOrg, RemoteWalkPlacementRespondsAfterWalk)
{
    OrgHarness requester(OrgKind::Nocstar, 16, [](OrgConfig &c) {
        c.ptwPlacement = PtwPlacement::Requester;
    });
    OrgHarness remote(OrgKind::Nocstar, 16, [](OrgConfig &c) {
        c.ptwPlacement = PtwPlacement::Remote;
    });
    Addr vaddr = addrOnSlice(2, 16);
    auto r1 = requester.translate(0, vaddr, 0);
    auto r2 = remote.translate(0, vaddr, 0);
    EXPECT_TRUE(r1.walked);
    EXPECT_TRUE(r2.walked);
    // Remote placement walks on the slice core: the requester's walker
    // stays idle and the slice core's walker was used.
    EXPECT_EQ(requester.walkers[0]->walks.value(), 1.0);
    EXPECT_EQ(requester.walkers[2]->walks.value(), 0.0);
    EXPECT_EQ(remote.walkers[0]->walks.value(), 0.0);
    EXPECT_EQ(remote.walkers[2]->walks.value(), 1.0);
}

TEST(NocstarOrg, RoundTripAcquireStillResolves)
{
    OrgHarness h(OrgKind::Nocstar, 16, [](OrgConfig &c) {
        c.pathAcquire = PathAcquire::RoundTrip;
    });
    auto &nocstar = dynamic_cast<NocstarOrg &>(*h.org);
    Addr vaddr = addrOnSlice(1, 16);
    nocstar.preloadShared(1, vaddr, h.table.translate(1, vaddr));
    auto result = h.translate(0, vaddr, 0);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.completedAt, 13u);
}

TEST(NocstarOrg, ShootdownLeaderDeduplicates)
{
    // 4 sharers in one leader group -> 1 downstream invalidation.
    OrgHarness direct(OrgKind::Nocstar, 16);
    OrgHarness leader(OrgKind::Nocstar, 16, [](OrgConfig &c) {
        c.invalLeaderGroup = 4;
    });
    Addr vaddr = addrOnSlice(9, 16);
    std::vector<CoreId> sharers{0, 1, 2, 3};

    direct.translate(0, vaddr, 0);
    leader.translate(0, vaddr, 0);

    Cycle direct_done = 0, leader_done = 0;
    direct.org->shootdown(0, 1, vaddr, sharers, 10000,
                          [&](Cycle at) { direct_done = at; });
    direct.queue.run();
    leader.org->shootdown(0, 1, vaddr, sharers, 10000,
                          [&](Cycle at) { leader_done = at; });
    leader.queue.run();

    EXPECT_GT(direct_done, 10000u);
    EXPECT_GT(leader_done, 10000u);
    // Direct mode sends 4 slice messages; leader mode sends 4 leader
    // notifications + 1 slice message. Check via fabric counters.
    auto &dfab = dynamic_cast<NocstarOrg &>(*direct.org).fabric();
    auto &lfab = dynamic_cast<NocstarOrg &>(*leader.org).fabric();
    double dmsgs = dfab.messagesSent.value();
    double lmsgs = lfab.messagesSent.value();
    // Leader group of {0..3} has leader 0; sharer 0's upstream
    // message is local (not counted), so: direct 4 vs leader 3+1.
    EXPECT_DOUBLE_EQ(dmsgs - lmsgs, 0.0);
    EXPECT_EQ(direct.org->shootdownL2Invalidations.value(), 1.0);
    EXPECT_EQ(leader.org->shootdownL2Invalidations.value(), 1.0);
}

TEST(NocstarOrg, FlushAllEmptiesSlices)
{
    OrgHarness h(OrgKind::Nocstar);
    auto &nocstar = dynamic_cast<NocstarOrg &>(*h.org);
    for (unsigned i = 0; i < 8; ++i) {
        Addr vaddr = addrOnSlice(i, 16, 3);
        nocstar.preloadShared(1, vaddr, h.table.translate(1, vaddr));
    }
    h.org->flushAll();
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(nocstar.sliceArray(i).occupancy(), 0u);
}

TEST(DistributedOrg, RemoteHitPaysMeshRoundTrip)
{
    OrgHarness h(OrgKind::Distributed);
    auto &dist = dynamic_cast<DistributedOrg &>(*h.org);
    Addr vaddr = addrOnSlice(1, 16); // one hop from core 0
    dist.preloadShared(1, vaddr, h.table.translate(1, vaddr));
    auto result = h.translate(0, vaddr, 0);
    EXPECT_TRUE(result.l2Hit);
    // initiate 1 + mesh 2 + latch 1 + lookup 9 + mesh 2 = 15.
    EXPECT_EQ(result.completedAt, 15u);
}

TEST(DistributedOrg, IdealSharedHasZeroNetworkLatency)
{
    OrgHarness h(OrgKind::IdealShared);
    auto &dist = dynamic_cast<DistributedOrg &>(*h.org);
    Addr vaddr = addrOnSlice(9, 16); // far from core 0
    dist.preloadShared(1, vaddr, h.table.translate(1, vaddr));
    auto result = h.translate(0, vaddr, 0);
    EXPECT_TRUE(result.l2Hit);
    // initiate 1 + latch 1 + lookup 9; no interconnect latency.
    EXPECT_EQ(result.completedAt, 11u);
}

TEST(MonolithicOrg, BankGeometryAndLatency)
{
    OrgHarness h(OrgKind::MonolithicMesh, 16, [](OrgConfig &c) {
        c.banks = 4;
    });
    auto &mono = dynamic_cast<MonolithicOrg &>(*h.org);
    // 16 cores x 1024 entries / 4 banks = 4096 entries per bank.
    EXPECT_EQ(mono.bankArray(0).numEntries(), 4096u);
    EXPECT_EQ(h.org->totalEntries(), 16384u);
    // Banking buys ports, not latency: the access pays the full
    // 16K-entry array, 9 + 1.2*log2(16384/1536) -> 14 cycles.
    EXPECT_EQ(mono.bankLatency(),
              energy::SramModel::accessLatency(16384));
}

TEST(MonolithicOrg, AccessPaysNetworkBothWays)
{
    OrgHarness h(OrgKind::MonolithicMesh);
    auto &mono = dynamic_cast<MonolithicOrg &>(*h.org);
    Addr vaddr = 0x4000;
    mono.preloadShared(1, vaddr, h.table.translate(1, vaddr));
    CoreId far_core = 0; // top-left; structure is bottom-middle
    auto result = h.translate(far_core, vaddr, 0);
    EXPECT_TRUE(result.l2Hit);
    unsigned hops = noc::GridTopology::forCores(16).hops(
        far_core, mono.structureTile());
    Cycle expected = 1 + 2 * hops + 1 + mono.bankLatency() + 2 * hops;
    EXPECT_EQ(result.completedAt, expected);
}

TEST(MonolithicOrg, AccessOverrideReplacesTiming)
{
    OrgHarness h(OrgKind::MonolithicMesh, 16, [](OrgConfig &c) {
        c.monolithicAccessOverride = 25;
    });
    auto &mono = dynamic_cast<MonolithicOrg &>(*h.org);
    Addr vaddr = 0x4000;
    mono.preloadShared(1, vaddr, h.table.translate(1, vaddr));
    auto result = h.translate(0, vaddr, 0);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.completedAt, 26u); // initiate + 25-cycle access
}

TEST(MonolithicOrg, SmartVariantIsFasterThanMesh)
{
    OrgHarness mesh(OrgKind::MonolithicMesh);
    OrgHarness smart(OrgKind::MonolithicSmart);
    Addr vaddr = 0x4000;
    dynamic_cast<MonolithicOrg &>(*mesh.org)
        .preloadShared(1, vaddr, mesh.table.translate(1, vaddr));
    dynamic_cast<MonolithicOrg &>(*smart.org)
        .preloadShared(1, vaddr, smart.table.translate(1, vaddr));
    auto rm = mesh.translate(0, vaddr, 0);
    auto rs = smart.translate(0, vaddr, 0);
    EXPECT_LT(rs.completedAt, rm.completedAt);
}

TEST(Organizations, FactoryBuildsEveryKind)
{
    for (OrgKind kind :
         {OrgKind::Private, OrgKind::MonolithicMesh,
          OrgKind::MonolithicSmart, OrgKind::Distributed,
          OrgKind::IdealShared, OrgKind::Nocstar,
          OrgKind::NocstarIdeal}) {
        OrgHarness h(kind, 16);
        EXPECT_NE(h.org, nullptr);
        EXPECT_GT(h.org->totalEntries(), 0u);
        EXPECT_STRNE(orgKindName(kind), "?");
    }
}

TEST(Organizations, ConcurrencyTrackingBalances)
{
    OrgHarness h(OrgKind::Nocstar);
    for (unsigned i = 0; i < 6; ++i)
        h.org->translate(i, 1, addrOnSlice(8, 16, i), 0,
                         [](const TranslationResult &) {});
    h.queue.run();
    EXPECT_EQ(h.org->concurrency.numSamples(), 6u);
    // All six target slice 8: the last sampled concurrency must have
    // seen several outstanding accesses.
    EXPECT_GT(h.org->concurrency.maxSample(), 1.0);
}
