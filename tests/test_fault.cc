/**
 * @file
 * Fault-injection subsystem: plan parsing and validation, seeded
 * injector determinism, fabric outages (route-around, mesh fallback,
 * retry budget, backoff cap, watchdog) and end-to-end reproducibility
 * of faulted full-system runs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/interconnect.hh"
#include "cpu/system.hh"
#include "sim/fault.hh"

using namespace nocstar;
using namespace nocstar::core;

namespace
{

struct FabricHarness
{
    EventQueue queue;
    stats::StatGroup root{"root"};
    noc::GridTopology topo;
    std::unique_ptr<Interconnect> fabricPtr;
    Interconnect &fabric;

    explicit FabricHarness(unsigned cores = 16, FabricConfig cfg = {})
        : topo(noc::GridTopology::forCores(cores)),
          fabricPtr(makeInterconnect("fabric", queue, topo, cfg, &root)),
          fabric(*fabricPtr)
    {}
};

sim::FaultPlan
planFromString(const std::string &text)
{
    std::istringstream in(text);
    return sim::FaultPlan::parse(in, "test");
}

cpu::SystemConfig
faultedSystemConfig(const sim::FaultPlan &plan)
{
    cpu::SystemConfig config;
    config.org.kind = OrgKind::Nocstar;
    config.org.numCores = 16;
    config.org.banks = 4;
    config.org.faults = plan;
    cpu::AppConfig app;
    app.spec = workload::findWorkload("gups");
    app.threads = 16;
    config.apps.push_back(app);
    return config;
}

} // namespace

TEST(FaultPlan, ParsesEveryDirective)
{
    sim::FaultPlan plan = planFromString(
        "# comment\n"
        "seed 42\n"
        "link 1 E 100 permanent\n"
        "link-id 9 200 50   # transient\n"
        "grant-loss 0.25\n"
        "slice-ecc 0.5\n"
        "walk-ecc 0.125\n"
        "retry-budget 7\n"
        "backoff-cap 16\n"
        "watchdog 5000 fatal\n");
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.linkFaults.size(), 2u);
    EXPECT_EQ(plan.linkFaults[0].link, 1u * 4 + 0);
    EXPECT_EQ(plan.linkFaults[0].start, 100u);
    EXPECT_TRUE(plan.linkFaults[0].permanent());
    EXPECT_EQ(plan.linkFaults[1].link, 9u);
    EXPECT_EQ(plan.linkFaults[1].end(), 250u);
    EXPECT_DOUBLE_EQ(plan.grantLossProb, 0.25);
    EXPECT_DOUBLE_EQ(plan.sliceEccProb, 0.5);
    EXPECT_DOUBLE_EQ(plan.walkEccProb, 0.125);
    EXPECT_EQ(plan.retryBudget, 7u);
    EXPECT_EQ(plan.backoffCap, 16u);
    EXPECT_EQ(plan.watchdogCycles, 5000u);
    EXPECT_TRUE(plan.watchdogFatal);
    EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RejectsGarbageListingEveryError)
{
    try {
        planFromString("grant-loss 1.5\n"
                       "link 3 Q 0 permanent\n"
                       "retry-budget zero\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        std::string what = err.what();
        EXPECT_NE(what.find("grant-loss"), std::string::npos);
        EXPECT_NE(what.find("test:2"), std::string::npos);
        EXPECT_NE(what.find("retry-budget"), std::string::npos);
    }
}

TEST(FaultPlan, ValidateCatchesOutOfRangeLink)
{
    sim::FaultPlan plan;
    plan.linkFaults.push_back({9999, 0, 0});
    EXPECT_TRUE(plan.validate().empty()); // space unknown: no check
    EXPECT_FALSE(plan.validate(64).empty());
}

TEST(FaultPlan, EmptyPlanIsEmpty)
{
    sim::FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    plan.grantLossProb = 0.1;
    EXPECT_FALSE(plan.empty());
}

TEST(FaultInjector, SameSeedSameSequence)
{
    sim::FaultPlan plan;
    plan.grantLossProb = 0.3;
    plan.seed = 99;
    sim::FaultInjector a(plan, sim::FaultInjector::Stream::Fabric);
    sim::FaultInjector b(plan, sim::FaultInjector::Stream::Fabric);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.loseGrant(), b.loseGrant());
}

TEST(FaultInjector, StreamsAreIndependent)
{
    sim::FaultPlan plan;
    plan.grantLossProb = 0.5;
    plan.sliceEccProb = 0.5;
    plan.seed = 7;
    sim::FaultInjector fabric(plan,
                              sim::FaultInjector::Stream::Fabric);
    sim::FaultInjector ecc(plan,
                           sim::FaultInjector::Stream::SliceEcc);
    bool differ = false;
    for (int i = 0; i < 64; ++i)
        differ |= fabric.loseGrant() != ecc.sliceEcc();
    EXPECT_TRUE(differ);
}

TEST(FaultInjector, ZeroProbabilityNeverFires)
{
    sim::FaultPlan plan; // all probabilities zero
    sim::FaultInjector inj(plan, sim::FaultInjector::Stream::Fabric);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.loseGrant());
        EXPECT_FALSE(inj.sliceEcc());
        EXPECT_FALSE(inj.walkEcc());
    }
}

TEST(FaultFabric, RejectsPlanWithOutOfRangeLink)
{
    sim::FaultPlan plan;
    plan.linkFaults.push_back({9999, 0, 0});
    FabricConfig cfg;
    cfg.faults = &plan;
    EXPECT_THROW(FabricHarness(16, cfg), FatalError);
}

TEST(FaultFabric, RoutesAroundDeadLink)
{
    // Kill tile 1's East output: the 1 -> 2 xy path's only link.
    sim::FaultPlan plan;
    plan.linkFaults.push_back(
        {noc::LinkId{1, noc::Direction::East}.flatten(), 0, 0});
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);

    Cycle delivered = invalidCycle;
    h.fabric.send(1, 2, 5, [&](Cycle at) { delivered = at; });
    h.queue.run();

    EXPECT_NE(delivered, invalidCycle);
    // The dead link was never granted; the detour stayed on-fabric.
    unsigned dead = noc::LinkId{1, noc::Direction::East}.flatten();
    EXPECT_DOUBLE_EQ(h.fabric.linkGrants[dead], 0.0);
    EXPECT_DOUBLE_EQ(h.fabric.degradedMessages.value(), 0.0);
    EXPECT_DOUBLE_EQ(h.fabric.faultsInjected.value(), 1.0);
}

TEST(FaultFabric, IsolatedSourceFallsBackToMesh)
{
    // All four outputs of tile 5 die: no circuit path from 5 exists,
    // so its messages must take the store-and-forward mesh.
    sim::FaultPlan plan;
    for (auto dir : {noc::Direction::East, noc::Direction::West,
                     noc::Direction::North, noc::Direction::South})
        plan.linkFaults.push_back(
            {noc::LinkId{5, dir}.flatten(), 0, 0});
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);

    Cycle delivered = invalidCycle;
    h.fabric.send(5, 6, 10, [&](Cycle at) { delivered = at; });
    h.queue.run();

    EXPECT_NE(delivered, invalidCycle);
    EXPECT_GT(delivered, 10u);
    EXPECT_DOUBLE_EQ(h.fabric.degradedMessages.value(), 1.0);
}

TEST(FaultFabric, TransientOutageDelaysUntilRepair)
{
    // Tile 1's East output is out for cycles [0, 100); the message
    // retries with exponential backoff and succeeds after repair.
    sim::FaultPlan plan;
    plan.linkFaults.push_back(
        {noc::LinkId{1, noc::Direction::East}.flatten(), 0, 100});
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);

    Cycle delivered = invalidCycle;
    h.fabric.send(1, 2, 5, [&](Cycle at) { delivered = at; });
    h.queue.run();

    EXPECT_NE(delivered, invalidCycle);
    EXPECT_GE(delivered, 100u);
    EXPECT_GT(h.fabric.backoffCycles.value(), 0.0);
    EXPECT_DOUBLE_EQ(h.fabric.degradedMessages.value(), 0.0);
}

TEST(FaultFabric, BackoffCapBoundsRetrySpacing)
{
    sim::FaultPlan plan;
    plan.linkFaults.push_back(
        {noc::LinkId{1, noc::Direction::East}.flatten(), 0, 200});
    plan.backoffCap = 4;
    plan.retryBudget = 1000;
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);

    Cycle delivered = invalidCycle;
    h.fabric.send(1, 2, 5, [&](Cycle at) { delivered = at; });
    h.queue.run();

    // Retries arrive at most backoffCap apart, so delivery lands
    // within one cap of the repair (plus traversal).
    EXPECT_GE(delivered, 200u);
    EXPECT_LE(delivered, 200u + plan.backoffCap + 2);
}

TEST(FaultFabric, RetryBudgetExhaustionDegrades)
{
    sim::FaultPlan plan;
    plan.linkFaults.push_back(
        {noc::LinkId{1, noc::Direction::East}.flatten(), 0, 10000});
    plan.retryBudget = 3;
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);

    Cycle delivered = invalidCycle;
    h.fabric.send(1, 2, 5, [&](Cycle at) { delivered = at; });
    h.queue.run();

    EXPECT_NE(delivered, invalidCycle);
    EXPECT_LT(delivered, 10000u); // did not wait out the outage
    EXPECT_DOUBLE_EQ(h.fabric.degradedMessages.value(), 1.0);
}

TEST(FaultFabric, WatchdogRescuesStuckMessage)
{
    sim::FaultPlan plan;
    plan.linkFaults.push_back(
        {noc::LinkId{1, noc::Direction::East}.flatten(), 0, 10000});
    plan.retryBudget = 1000000;
    plan.watchdogCycles = 50;
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);

    Cycle delivered = invalidCycle;
    h.fabric.send(1, 2, 5, [&](Cycle at) { delivered = at; });
    h.queue.run();

    EXPECT_NE(delivered, invalidCycle);
    EXPECT_DOUBLE_EQ(h.fabric.watchdogTrips.value(), 1.0);
    EXPECT_DOUBLE_EQ(h.fabric.degradedMessages.value(), 1.0);
}

TEST(FaultFabric, FatalWatchdogThrows)
{
    sim::FaultPlan plan;
    plan.linkFaults.push_back(
        {noc::LinkId{1, noc::Direction::East}.flatten(), 0, 10000});
    plan.retryBudget = 1000000;
    plan.watchdogCycles = 50;
    plan.watchdogFatal = true;
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);

    h.fabric.send(1, 2, 5, [](Cycle) {});
    EXPECT_THROW(h.queue.run(), FatalError);
}

TEST(FaultFabric, GrantLossInjectsAndRetries)
{
    sim::FaultPlan plan;
    plan.grantLossProb = 1.0;
    plan.retryBudget = 2;
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);

    Cycle delivered = invalidCycle;
    h.fabric.send(0, 3, 5, [&](Cycle at) { delivered = at; });
    h.queue.run();

    EXPECT_NE(delivered, invalidCycle);
    EXPECT_GE(h.fabric.faultsInjected.value(), 3.0); // every grant lost
    EXPECT_DOUBLE_EQ(h.fabric.degradedMessages.value(), 1.0);
}

TEST(FaultFabric, LinkDeadCyclesAccountsOutageWindows)
{
    sim::FaultPlan plan;
    unsigned dead = noc::LinkId{1, noc::Direction::East}.flatten();
    plan.linkFaults.push_back({dead, 10, 40}); // [10, 50)
    FabricConfig cfg;
    cfg.faults = &plan;
    FabricHarness h(16, cfg);
    h.queue.run();

    h.fabric.syncFaultStats(100);
    EXPECT_DOUBLE_EQ(h.fabric.linkDeadCycles[dead], 40.0);
    // Second sync past the window adds nothing.
    h.fabric.syncFaultStats(200);
    EXPECT_DOUBLE_EQ(h.fabric.linkDeadCycles[dead], 40.0);
}

TEST(FaultSystem, FaultedRunsAreReproducible)
{
    sim::FaultPlan plan = planFromString(
        "link 5 E 0 permanent\n"
        "link 5 W 0 permanent\n"
        "link 5 N 0 permanent\n"
        "link 5 S 0 permanent\n"
        "grant-loss 0.01\n"
        "slice-ecc 0.002\n"
        "walk-ecc 0.002\n"
        "seed 7\n");

    cpu::RunResult first, second;
    {
        cpu::System system(faultedSystemConfig(plan));
        first = system.run(800);
    }
    {
        cpu::System system(faultedSystemConfig(plan));
        second = system.run(800);
    }
    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.instructions, second.instructions);
    EXPECT_EQ(first.faultsInjected, second.faultsInjected);
    EXPECT_EQ(first.degradedMessages, second.degradedMessages);
    EXPECT_EQ(first.eccRewalks, second.eccRewalks);
    EXPECT_GT(first.faultsInjected, 0u);
    EXPECT_GT(first.degradedMessages, 0u);
}

TEST(FaultSystem, DifferentSeedsDiverge)
{
    sim::FaultPlan plan;
    plan.grantLossProb = 0.05;
    plan.seed = 1;
    cpu::RunResult a, b;
    {
        cpu::System system(faultedSystemConfig(plan));
        a = system.run(800);
    }
    plan.seed = 2;
    {
        cpu::System system(faultedSystemConfig(plan));
        b = system.run(800);
    }
    EXPECT_GT(a.faultsInjected, 0u);
    EXPECT_GT(b.faultsInjected, 0u);
    // Not a hard guarantee, but with thousands of draws the streams
    // should not produce identical injection counts and timings.
    EXPECT_TRUE(a.faultsInjected != b.faultsInjected ||
                a.cycles != b.cycles);
}

TEST(FaultSystem, WalkEccDoublesFlaggedWalks)
{
    sim::FaultPlan plan;
    plan.walkEccProb = 1.0;
    cpu::SystemConfig config = faultedSystemConfig(plan);
    cpu::System system(config);
    cpu::RunResult result = system.run(500);
    EXPECT_GT(result.walks, 0u);
    EXPECT_GE(result.eccRewalks, result.walks);
}
