/**
 * @file
 * Property tests for the HDR-style latency histogram: bucket geometry,
 * randomized differential percentiles against a sorted-vector
 * reference, merge order/partition invariance, saturation, and the
 * Stat wrapper's dump formats.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include "sim/latency_histogram.hh"
#include "sim/stats.hh"

using namespace nocstar;
using sim::LatencyHistogram;

namespace
{

/** Exact q-quantile under the histogram's rank convention. */
std::uint64_t
exactPercentile(const std::vector<std::uint64_t> &sorted, double q)
{
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::uint64_t>(std::ceil(q * n));
    rank = std::max<std::uint64_t>(1, rank);
    return sorted[rank - 1];
}

/** Values drawn across every magnitude the histogram tracks. */
std::vector<std::uint64_t>
drawSamples(std::mt19937_64 &rng, std::size_t count)
{
    std::vector<std::uint64_t> values;
    values.reserve(count);
    std::uniform_int_distribution<unsigned> exponent(0, 40);
    for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t lo = std::uint64_t{1} << exponent(rng);
        std::uniform_int_distribution<std::uint64_t> value(0, 2 * lo);
        values.push_back(value(rng));
    }
    return values;
}

} // namespace

TEST(LatencyHistogramTest, BucketGeometryIsContiguousAndCovering)
{
    // Every bucket's [low, high] range is non-empty, adjacent buckets
    // tile the domain with no gaps, and bucketIndex is the inverse of
    // the range functions.
    for (std::uint32_t i = 0; i < LatencyHistogram::numBuckets; ++i) {
        const std::uint64_t lo = LatencyHistogram::bucketLow(i);
        const std::uint64_t hi = LatencyHistogram::bucketHigh(i);
        ASSERT_LE(lo, hi);
        EXPECT_EQ(LatencyHistogram::bucketIndex(lo), i);
        EXPECT_EQ(LatencyHistogram::bucketIndex(hi), i);
        if (i + 1 < LatencyHistogram::numBuckets)
            EXPECT_EQ(LatencyHistogram::bucketHigh(i) + 1,
                      LatencyHistogram::bucketLow(i + 1));
    }
    EXPECT_EQ(LatencyHistogram::bucketHigh(LatencyHistogram::numBuckets -
                                           1),
              LatencyHistogram::maxTrackable);
}

TEST(LatencyHistogramTest, RandomizedPercentilesMatchSortedReference)
{
    std::mt19937_64 rng(0xfeedface);
    for (int round = 0; round < 20; ++round) {
        std::vector<std::uint64_t> values =
            drawSamples(rng, 1 + rng() % 4000);
        LatencyHistogram hist;
        for (std::uint64_t v : values)
            hist.record(v);
        std::sort(values.begin(), values.end());

        EXPECT_EQ(hist.numSamples(), values.size());
        EXPECT_EQ(hist.minValue(), values.front());
        EXPECT_EQ(hist.maxValue(), values.back());
        for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
            const std::uint64_t exact = exactPercentile(values, q);
            const std::uint64_t est = hist.percentile(q);
            // Never below the true value, never more than one bucket
            // width (1/64 relative) above it.
            ASSERT_GE(est, exact) << "q=" << q;
            ASSERT_LE(est - exact, exact / 64) << "q=" << q;
        }
    }
}

TEST(LatencyHistogramTest, MergeIsOrderAndPartitionInvariant)
{
    std::mt19937_64 rng(0xabad1dea);
    const std::vector<std::uint64_t> values = drawSamples(rng, 6000);

    LatencyHistogram reference;
    for (std::uint64_t v : values)
        reference.record(v);

    for (int round = 0; round < 8; ++round) {
        // Random partition into a random number of parts.
        const std::size_t parts = 1 + rng() % 9;
        std::vector<LatencyHistogram> shards(parts);
        for (std::uint64_t v : values)
            shards[rng() % parts].record(v);

        // Fold in a random order.
        std::vector<std::size_t> order(parts);
        for (std::size_t i = 0; i < parts; ++i)
            order[i] = i;
        std::shuffle(order.begin(), order.end(), rng);
        LatencyHistogram merged;
        for (std::size_t i : order)
            merged.merge(shards[i]);

        EXPECT_TRUE(merged == reference) << "round " << round;
        for (double q : {0.5, 0.99})
            EXPECT_EQ(merged.percentile(q), reference.percentile(q));
    }
}

TEST(LatencyHistogramTest, BulkRecordMatchesRepeatedRecord)
{
    LatencyHistogram bulk, repeated;
    bulk.record(0, 1000);
    bulk.record(17, 3);
    bulk.record(900, 0); // count 0: no-op, must not disturb extrema
    for (int i = 0; i < 1000; ++i)
        repeated.record(0);
    for (int i = 0; i < 3; ++i)
        repeated.record(17);
    EXPECT_TRUE(bulk == repeated);
    EXPECT_EQ(bulk.maxValue(), 17u);
}

TEST(LatencyHistogramTest, SaturationAndReset)
{
    LatencyHistogram hist;
    const std::uint64_t huge = LatencyHistogram::maxTrackable * 2;
    hist.record(huge);
    hist.record(5);
    // The raw extremum is preserved even though the bucket saturates;
    // the percentile walk reports the top bucket's upper bound.
    EXPECT_EQ(hist.maxValue(), huge);
    EXPECT_EQ(hist.percentile(1.0), LatencyHistogram::maxTrackable);
    EXPECT_EQ(hist.percentile(0.0), 5u);

    hist.reset();
    EXPECT_TRUE(hist.empty());
    EXPECT_EQ(hist.numSamples(), 0u);
    EXPECT_EQ(hist.percentile(0.5), 0u);
    LatencyHistogram fresh;
    EXPECT_TRUE(hist == fresh);
}

TEST(LatencyHistogramTest, StatDumpAndJson)
{
    stats::StatGroup root("root");
    stats::Histogram stat(&root, "lat", "a latency histogram");
    for (std::uint64_t v = 0; v < 100; ++v)
        stat.record(v);

    std::ostringstream dump;
    root.dumpAll(dump);
    const std::string text = dump.str();
    EXPECT_NE(text.find("lat.samples"), std::string::npos) << text;
    EXPECT_NE(text.find("lat.p50"), std::string::npos) << text;
    EXPECT_NE(text.find("lat.p999"), std::string::npos) << text;

    std::ostringstream js;
    stat.dumpJson(js);
    const std::string doc = js.str();
    EXPECT_NE(doc.find("\"samples\":100"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"p50\":"), std::string::npos) << doc;
    EXPECT_NE(doc.find("\"buckets\":[[0,1]"), std::string::npos) << doc;
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
              std::count(doc.begin(), doc.end(), ']'));
}
