/**
 * @file
 * Unit and property tests for the grid topology and XY routing.
 */

#include <gtest/gtest.h>

#include "noc/topology.hh"

using namespace nocstar;
using namespace nocstar::noc;

TEST(Topology, ForCoresPicksNearSquareGrids)
{
    EXPECT_EQ(GridTopology::forCores(16).width(), 4u);
    EXPECT_EQ(GridTopology::forCores(16).height(), 4u);
    EXPECT_EQ(GridTopology::forCores(32).width(), 8u);
    EXPECT_EQ(GridTopology::forCores(32).height(), 4u);
    EXPECT_EQ(GridTopology::forCores(64).width(), 8u);
    EXPECT_EQ(GridTopology::forCores(64).height(), 8u);
    EXPECT_EQ(GridTopology::forCores(256).width(), 16u);
    EXPECT_EQ(GridTopology::forCores(512).width(), 32u);
}

TEST(Topology, CoordRoundTrips)
{
    GridTopology topo(8, 4);
    for (CoreId t = 0; t < topo.numTiles(); ++t) {
        Coord c = topo.coordOf(t);
        EXPECT_EQ(topo.tileAt(c), t);
        EXPECT_LT(c.x, 8u);
        EXPECT_LT(c.y, 4u);
    }
}

TEST(Topology, HopsAreManhattan)
{
    GridTopology topo(4, 4);
    EXPECT_EQ(topo.hops(0, 0), 0u);
    EXPECT_EQ(topo.hops(0, 3), 3u);
    EXPECT_EQ(topo.hops(0, 15), 6u); // (0,0) -> (3,3)
    EXPECT_EQ(topo.hops(5, 10), topo.hops(10, 5));
}

TEST(Topology, XyPathLengthEqualsHops)
{
    GridTopology topo(8, 8);
    for (CoreId s : {0u, 7u, 35u, 63u}) {
        for (CoreId d : {0u, 8u, 21u, 56u, 63u}) {
            auto path = topo.xyPath(s, d);
            EXPECT_EQ(path.size(), topo.hops(s, d));
        }
    }
}

TEST(Topology, XyPathGoesXFirst)
{
    GridTopology topo(4, 4);
    // From (0,0) to (2,2): two East links then two South links.
    auto path = topo.xyPath(0, 10);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[0].dir, Direction::East);
    EXPECT_EQ(path[1].dir, Direction::East);
    EXPECT_EQ(path[2].dir, Direction::South);
    EXPECT_EQ(path[3].dir, Direction::South);
    EXPECT_EQ(path[0].node, 0u);
    EXPECT_EQ(path[2].node, 2u);
}

TEST(Topology, ReversePathUsesDifferentLinks)
{
    GridTopology topo(4, 4);
    auto fwd = topo.xyPath(0, 5);
    auto rev = topo.xyPath(5, 0);
    for (const LinkId &f : fwd)
        for (const LinkId &r : rev)
            EXPECT_FALSE(f == r);
}

TEST(Topology, NumLinksMatchesGridFormula)
{
    GridTopology topo(4, 4);
    // 2 * ((w-1)*h + (h-1)*w) = 2 * (12 + 12) = 48 directed links.
    EXPECT_EQ(topo.numLinks(), 48u);
}

TEST(Topology, DegenerateGridFatal)
{
    EXPECT_THROW(GridTopology(0, 4), FatalError);
    EXPECT_THROW(GridTopology::forCores(0), FatalError);
}

/** Property: analytic average hops matches brute force enumeration. */
class TopologyAvgTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(TopologyAvgTest, AverageHopsMatchesBruteForce)
{
    GridTopology topo = GridTopology::forCores(GetParam());
    double sum = 0;
    unsigned n = topo.numTiles();
    for (CoreId a = 0; a < n; ++a)
        for (CoreId b = 0; b < n; ++b)
            sum += topo.hops(a, b);
    double brute = sum / (static_cast<double>(n) * n);
    EXPECT_NEAR(topo.averageHops(), brute, 1e-9);
}

TEST_P(TopologyAvgTest, AllPathsStayInGrid)
{
    GridTopology topo = GridTopology::forCores(GetParam());
    for (CoreId a = 0; a < topo.numTiles(); a += 3) {
        for (CoreId b = 0; b < topo.numTiles(); b += 5) {
            for (const LinkId &link : topo.xyPath(a, b)) {
                EXPECT_LT(link.node, topo.numTiles());
                EXPECT_LT(link.flatten(), topo.linkIndexSpace());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Grids, TopologyAvgTest,
                         ::testing::Values(4, 16, 32, 64));
