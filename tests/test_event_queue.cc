/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace nocstar;

namespace
{

class CountingEvent : public Event
{
  public:
    explicit CountingEvent(std::vector<int> *log, int id,
                           Priority prio = defaultPriority)
        : Event(prio), log_(log), id_(id)
    {}

    void process() override { log_->push_back(id_); }

  private:
    std::vector<int> *log_;
    int id_;
};

} // namespace

TEST(EventQueue, StartsEmptyAtCycleZero)
{
    EventQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.curCycle(), 0u);
    EXPECT_EQ(queue.run(), 0u);
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    queue.schedule(&b, 20);
    queue.schedule(&a, 10);
    queue.schedule(&c, 30);
    EXPECT_EQ(queue.run(), 3u);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.curCycle(), 30u);
}

TEST(EventQueue, FifoAmongSameCycleSamePriority)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    queue.schedule(&a, 5);
    queue.schedule(&b, 5);
    queue.schedule(&c, 5);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PriorityOrdersWithinCycle)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent late(&log, 9, Event::lastPriority);
    CountingEvent arb(&log, 5, Event::arbitrationPriority);
    CountingEvent normal(&log, 1);
    queue.schedule(&late, 7);
    queue.schedule(&arb, 7);
    queue.schedule(&normal, 7);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{1, 5, 9}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2);
    queue.schedule(&a, 10);
    queue.schedule(&b, 11);
    queue.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2);
    queue.schedule(&a, 10);
    queue.schedule(&b, 20);
    queue.reschedule(&a, 30);
    queue.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
    EXPECT_EQ(queue.curCycle(), 30u);
}

TEST(EventQueue, RunWithLimitStopsEarly)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2);
    queue.schedule(&a, 10);
    queue.schedule(&b, 100);
    EXPECT_EQ(queue.run(50), 1u);
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_FALSE(queue.empty());
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_EQ(log.size(), 2u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue queue;
    std::vector<Cycle> fired;
    queue.scheduleLambda(1, [&] {
        fired.push_back(queue.curCycle());
        queue.scheduleLambda(queue.curCycle() + 5, [&] {
            fired.push_back(queue.curCycle());
        });
    });
    queue.run();
    EXPECT_EQ(fired, (std::vector<Cycle>{1, 6}));
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1);
    queue.schedule(&a, 10);
    EXPECT_THROW(queue.schedule(&a, 12), PanicError);
    queue.deschedule(&a);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue queue;
    queue.scheduleLambda(10, [] {});
    queue.run();
    std::vector<int> log;
    CountingEvent a(&log, 1);
    EXPECT_THROW(queue.schedule(&a, 5), PanicError);
}

TEST(EventQueue, DescheduleUnscheduledPanics)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1);
    EXPECT_THROW(queue.deschedule(&a), PanicError);
}

TEST(EventQueue, RunOneCycleProcessesHeadCycleOnly)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2), c(&log, 3);
    queue.schedule(&a, 4);
    queue.schedule(&b, 4);
    queue.schedule(&c, 9);
    queue.runOneCycle();
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
    EXPECT_EQ(queue.size(), 1u);
    queue.run();
}

TEST(EventQueue, ManyLambdaEventsAreReaped)
{
    EventQueue queue;
    std::uint64_t count = 0;
    for (int i = 0; i < 10000; ++i)
        queue.scheduleLambda(static_cast<Cycle>(i), [&] { ++count; });
    queue.run();
    EXPECT_EQ(count, 10000u);
    // Everything scheduled before running, so the pool grew to the
    // in-flight peak; after the run every event is back on the free
    // list awaiting reuse.
    EXPECT_EQ(queue.allocatedLambdaEvents(), 10000u);
    EXPECT_EQ(queue.freeLambdaEvents(), 10000u);
}

TEST(EventQueue, PooledLambdaEventsAreReused)
{
    // A steady-state message chain (each delivery schedules the next)
    // must recycle a single pooled event instead of allocating one
    // per scheduleLambda call.
    EventQueue queue;
    std::uint64_t count = 0;
    std::function<void()> chain = [&] {
        if (++count < 1000)
            queue.scheduleLambda(queue.curCycle() + 1, chain);
    };
    queue.scheduleLambda(0, chain);
    queue.run();
    EXPECT_EQ(count, 1000u);
    EXPECT_EQ(queue.allocatedLambdaEvents(), 1u);
    EXPECT_EQ(queue.freeLambdaEvents(), 1u);
}

TEST(EventQueue, FarFutureEventSurvivesLimitedRun)
{
    // Regression: run(limit) used to fold overflow records into the
    // wheel relative to the head cycle before the clock reached it;
    // breaking on the limit then left the clock behind, and the next
    // scan misread the folded bucket as `when - wheelSize` (an event
    // at 10000 fired at 1808 after run(50)).
    EventQueue queue;
    std::vector<Cycle> fired;
    queue.scheduleLambda(10000, [&] { fired.push_back(queue.curCycle()); });
    EXPECT_EQ(queue.run(50), 0u);
    EXPECT_TRUE(fired.empty());
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_EQ(fired, (std::vector<Cycle>{10000}));
    EXPECT_EQ(queue.curCycle(), 10000u);
}

TEST(EventQueue, StaleHeadDoesNotAliasOverflowEvent)
{
    // Regression: a descheduled (stale) record at the head bucket let
    // nextEventCycle() report a cycle the clock never advanced to, and
    // overflow records folded relative to that phantom head aliased to
    // earlier buckets (an event at 8000 fired at 3904).
    EventQueue queue;
    std::vector<int> log;
    CountingEvent stale(&log, 1);
    queue.schedule(&stale, 4000);
    std::vector<Cycle> fired;
    queue.scheduleLambda(8000, [&] { fired.push_back(queue.curCycle()); });
    queue.deschedule(&stale);
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(fired, (std::vector<Cycle>{8000}));
    EXPECT_EQ(queue.curCycle(), 8000u);
}

TEST(EventQueue, FarFutureOrderingAcrossRepeatedLimitedRuns)
{
    // Stepping the queue in small limit increments (the way System
    // interleaves with context-switch/storm events that live in the
    // overflow heap) must preserve exact (cycle, priority, seq) order.
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2), c(&log, 3), d(&log, 4);
    queue.schedule(&a, 100);
    queue.schedule(&b, 5000);
    queue.schedule(&c, 9000);
    queue.schedule(&d, 20000);
    for (Cycle limit = 0; limit <= 25000; limit += 64)
        queue.run(limit);
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SizeTracksLiveEvents)
{
    EventQueue queue;
    std::vector<int> log;
    CountingEvent a(&log, 1), b(&log, 2);
    queue.schedule(&a, 1);
    queue.schedule(&b, 2);
    EXPECT_EQ(queue.size(), 2u);
    queue.deschedule(&b);
    EXPECT_EQ(queue.size(), 1u);
    queue.run();
    EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueue, NextEventCycleEmptyQueueIsInvalid)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextEventCycle(), invalidCycle);
    // Still invalid after the clock has moved.
    queue.scheduleLambda(100, [] {});
    queue.run();
    EXPECT_EQ(queue.nextEventCycle(), invalidCycle);
}

TEST(EventQueue, NextEventCycleSeesOverflowHeapHead)
{
    // An event beyond the wheel horizon lives only in the overflow
    // heap; nextEventCycle() must still report it.
    EventQueue queue;
    queue.scheduleLambda(100000, [] {});
    EXPECT_EQ(queue.nextEventCycle(), 100000u);
    std::vector<int> log;
    CountingEvent a(&log, 1);
    queue.schedule(&a, 12);
    EXPECT_EQ(queue.nextEventCycle(), 12u);
    queue.deschedule(&a);
    // The stale record keeps the answer conservative (never later
    // than the first live event) but the clock must not be misled.
    EXPECT_LE(queue.nextEventCycle(), 100000u);
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_EQ(queue.curCycle(), 100000u);
}

TEST(EventQueue, NextEventCycleHeadAtCurrentCycle)
{
    // From inside a dispatched event, a sibling scheduled for the
    // same cycle must read back as pending at curCycle itself.
    EventQueue queue;
    Cycle seen = invalidCycle;
    queue.scheduleLambda(7, [&] { seen = queue.nextEventCycle(); });
    queue.scheduleLambda(7, [] {});
    queue.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, QuietUntilBoundsAndStrictness)
{
    EventQueue queue;
    // Empty queue: quiet anywhere inside the wheel horizon, but the
    // check refuses windows reaching the horizon (can't prove them).
    EXPECT_TRUE(queue.quietUntil(0));
    EXPECT_TRUE(queue.quietUntil(4094));
    EXPECT_FALSE(queue.quietUntil(4096));

    std::vector<int> log;
    CountingEvent a(&log, 1);
    queue.schedule(&a, 50);
    EXPECT_TRUE(queue.quietUntil(49));   // window excludes the event
    EXPECT_FALSE(queue.quietUntil(50));  // window includes it
    EXPECT_FALSE(queue.quietUntil(51));

    // Overflow-heap events bound the quiet window too. Run past the
    // descheduled record first: run() never visits stale buckets on
    // its own, so a live event at 60 drags the scan (and the bit
    // clearing) across bucket 50.
    queue.deschedule(&a);
    queue.scheduleLambda(60, [] {});
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(queue.curCycle(), 60u);
    queue.scheduleLambda(queue.curCycle() + 100000, [] {});
    EXPECT_TRUE(queue.quietUntil(queue.curCycle() + 4000));
    EXPECT_FALSE(queue.quietUntil(queue.curCycle() + 100000));
}

TEST(EventQueue, QuietUntilStaleRecordIsConservative)
{
    // A descheduled record leaves its bucket bit set until the scan
    // reaches it; quietUntil() may answer false (conservative), but
    // must never answer true past a *live* event hiding behind it.
    EventQueue queue;
    std::vector<int> log;
    CountingEvent stale(&log, 1), live(&log, 2);
    queue.schedule(&stale, 30);
    queue.schedule(&live, 40);
    queue.deschedule(&stale);
    EXPECT_FALSE(queue.quietUntil(40));
    EXPECT_FALSE(queue.quietUntil(4095));
    queue.deschedule(&live);
}

TEST(EventQueue, QuietUntilPreciseDuringDispatch)
{
    // The bypass fires from *inside* a dispatched step event, so the
    // current bucket's occupancy bit must already be clear when the
    // bucket's last record is being processed -- and still set while
    // a same-cycle sibling waits.
    EventQueue queue;
    std::vector<bool> quiet;
    queue.scheduleLambda(10, [&] { quiet.push_back(queue.quietUntil(20)); });
    queue.scheduleLambda(10, [&] { quiet.push_back(queue.quietUntil(20)); });
    queue.scheduleLambda(30, [] {});
    queue.run();
    // First dispatch: sibling at 10 still pending -> not quiet.
    // Second dispatch: bucket drained, next event at 30 -> quiet to 20.
    EXPECT_EQ(quiet, (std::vector<bool>{false, true}));
}

TEST(EventQueue, AdvanceToMovesClockAndRejectsPast)
{
    EventQueue queue;
    queue.advanceTo(0); // no-op: advancing to the present is legal
    queue.advanceTo(123);
    EXPECT_EQ(queue.curCycle(), 123u);
    EXPECT_THROW(queue.advanceTo(122), PanicError);

    // Scheduling relative to the advanced clock works as usual.
    std::vector<int> log;
    CountingEvent a(&log, 1);
    queue.schedule(&a, 200);
    queue.run();
    EXPECT_EQ(queue.curCycle(), 200u);
    EXPECT_EQ(log, (std::vector<int>{1}));
}

TEST(EventQueue, AdvanceToInsideDispatchSkipsQuietCycles)
{
    // The bypass pattern end-to-end: an event checks the queue is
    // quiet, advances the clock over the gap, and the queue resumes
    // exact dispatch from the new cycle.
    EventQueue queue;
    std::vector<Cycle> fired;
    queue.scheduleLambda(5, [&] {
        ASSERT_TRUE(queue.quietUntil(24));
        queue.advanceTo(24);
        queue.scheduleLambda(25, [&] { fired.push_back(queue.curCycle()); });
    });
    queue.scheduleLambda(25, [&] { fired.push_back(queue.curCycle()); });
    queue.run();
    EXPECT_EQ(fired, (std::vector<Cycle>{25, 25}));
    EXPECT_EQ(queue.curCycle(), 25u);
}
