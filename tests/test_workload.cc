/**
 * @file
 * Tests for the workload specifications and the address generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hh"
#include "workload/spec.hh"

using namespace nocstar;
using namespace nocstar::workload;

TEST(WorkloadSpec, ElevenPaperWorkloads)
{
    const auto &table = paperWorkloads();
    ASSERT_EQ(table.size(), 11u);
    EXPECT_EQ(table.front().name, "graph500");
    EXPECT_EQ(table.back().name, "gups");
    std::set<std::string> names;
    for (const auto &spec : table) {
        EXPECT_TRUE(names.insert(spec.name).second)
            << "duplicate workload " << spec.name;
        EXPECT_GT(spec.hotPages, 0u);
        EXPECT_GT(spec.warmPages, spec.hotPages);
        EXPECT_GT(spec.coldPages, spec.warmPages);
        EXPECT_GT(spec.warmFraction, 0.0);
        EXPECT_LT(spec.warmFraction + spec.coldFraction, 1.0);
        EXPECT_GE(spec.superpageFraction, 0.5);
        EXPECT_LE(spec.superpageFraction, 0.8);
    }
}

TEST(WorkloadSpec, FindByName)
{
    EXPECT_EQ(findWorkload("gups").name, "gups");
    EXPECT_THROW(findWorkload("doom"), FatalError);
}

TEST(WorkloadSpec, PoorLocalityTrioHasLargerPools)
{
    // The paper singles out canneal, gups and xsbench as poor-locality.
    double avg_warm = 0;
    for (const auto &spec : paperWorkloads())
        avg_warm += static_cast<double>(spec.warmPages) / 11.0;
    for (const char *name : {"canneal", "gups", "xsbench"})
        EXPECT_GT(findWorkload(name).warmPages, avg_warm);
}

TEST(Generator, DeterministicForSameSeed)
{
    auto spec = testWorkload();
    AccessGenerator a(spec, 0, 0, 5), b(spec, 0, 0, 5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Generator, ThreadsProduceDistinctStreams)
{
    auto spec = testWorkload();
    AccessGenerator a(spec, 0, 0, 5), b(spec, 0, 1, 5);
    bool differ = false;
    for (int i = 0; i < 64 && !differ; ++i)
        differ = a.next() != b.next();
    EXPECT_TRUE(differ);
}

TEST(Generator, PoolsDoNotOverlap)
{
    Addr shared = AccessGenerator::sharedBase(0);
    Addr cold = AccessGenerator::coldBase(0);
    Addr priv0 = AccessGenerator::privateBase(0, 0);
    Addr priv63 = AccessGenerator::privateBase(0, 63);
    auto spec = testWorkload();
    EXPECT_LT(shared + (spec.warmPages << 12), priv0);
    EXPECT_LT(priv63 + (spec.hotPages << 12), cold);
    EXPECT_LT(cold + (spec.coldPages << 12),
              AccessGenerator::sharedBase(1));
}

TEST(Generator, AddressesLandInDeclaredPools)
{
    auto spec = testWorkload();
    AccessGenerator gen(spec, 2, 3, 9);
    Addr shared_lo = AccessGenerator::sharedBase(2);
    Addr shared_hi = shared_lo + (spec.warmPages << 12);
    Addr priv_lo = AccessGenerator::privateBase(2, 3);
    Addr priv_hi = priv_lo + (spec.hotPages << 12);
    Addr cold_lo = AccessGenerator::coldBase(2);
    Addr cold_hi = cold_lo + (spec.coldPages << 12);

    int shared_n = 0, priv_n = 0, cold_n = 0;
    constexpr int draws = 20000;
    for (int i = 0; i < draws; ++i) {
        Addr a = gen.next();
        if (a >= shared_lo && a < shared_hi)
            ++shared_n;
        else if (a >= priv_lo && a < priv_hi)
            ++priv_n;
        else if (a >= cold_lo && a < cold_hi)
            ++cold_n;
        else
            FAIL() << "address outside every pool: " << std::hex << a;
    }
    EXPECT_NEAR(shared_n / static_cast<double>(draws),
                spec.warmFraction, 0.02);
    EXPECT_NEAR(cold_n / static_cast<double>(draws), spec.coldFraction,
                0.005);
    EXPECT_GT(priv_n, draws / 2);
}

TEST(Generator, SharedPoolOverlapsAcrossThreads)
{
    auto spec = testWorkload();
    AccessGenerator a(spec, 0, 0, 5), b(spec, 0, 7, 5);
    std::set<PageNum> pages_a;
    for (int i = 0; i < 5000; ++i) {
        Addr addr = a.next();
        if (addr < AccessGenerator::privateBase(0, 0))
            pages_a.insert(addr >> 12);
    }
    int overlap = 0, shared_b = 0;
    for (int i = 0; i < 5000; ++i) {
        Addr addr = b.next();
        if (addr < AccessGenerator::privateBase(0, 0)) {
            ++shared_b;
            overlap += pages_a.count(addr >> 12) ? 1 : 0;
        }
    }
    ASSERT_GT(shared_b, 0);
    // Zipf heads coincide: most shared draws overlap.
    EXPECT_GT(overlap / static_cast<double>(shared_b), 0.5);
}
