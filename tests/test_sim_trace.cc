/**
 * @file
 * Unit tests for the debug-trace layer (flags, TRACE macro, cycle
 * stamping) and the structured trace recorder (ring buffer, Chrome
 * JSON export, JSON escaping).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/trace.hh"
#include "sim/trace_recorder.hh"

using namespace nocstar;

namespace
{

/** Redirect trace output into a string for the test's lifetime. */
class SinkCapture
{
  public:
    SinkCapture() { trace::setSink(&os_); }

    ~SinkCapture()
    {
        trace::setSink(nullptr);
        trace::clearFlags();
    }

    std::string text() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

} // namespace

TEST(TraceFlags, SetFlagsParsesCsv)
{
    trace::clearFlags();
    EXPECT_TRUE(trace::setFlags("TLB,Fabric"));
    EXPECT_TRUE(trace::enabled(trace::Flag::TLB));
    EXPECT_TRUE(trace::enabled(trace::Flag::Fabric));
    EXPECT_FALSE(trace::enabled(trace::Flag::Walker));
    EXPECT_FALSE(trace::enabled(trace::Flag::EventQ));
    trace::clearFlags();
}

TEST(TraceFlags, SetFlagsReplacesSelection)
{
    trace::setFlags("TLB");
    trace::setFlags("Walker");
    EXPECT_FALSE(trace::enabled(trace::Flag::TLB));
    EXPECT_TRUE(trace::enabled(trace::Flag::Walker));
    trace::clearFlags();
}

TEST(TraceFlags, AllSelectsEverything)
{
    EXPECT_TRUE(trace::setFlags("All"));
    for (unsigned f = 0; f < trace::numFlags; ++f)
        EXPECT_TRUE(trace::enabled(static_cast<trace::Flag>(f)));
    EXPECT_TRUE(trace::setFlags(""));
    for (unsigned f = 0; f < trace::numFlags; ++f)
        EXPECT_FALSE(trace::enabled(static_cast<trace::Flag>(f)));
}

TEST(TraceFlags, UnknownTokenReturnsFalseButKnownOnesApply)
{
    EXPECT_FALSE(trace::setFlags("TLB,Bogus"));
    EXPECT_TRUE(trace::enabled(trace::Flag::TLB));
    trace::clearFlags();
}

TEST(TraceFlags, SingleFlagToggle)
{
    trace::clearFlags();
    trace::setFlag(trace::Flag::Shootdown, true);
    EXPECT_TRUE(trace::enabled(trace::Flag::Shootdown));
    trace::setFlag(trace::Flag::Shootdown, false);
    EXPECT_FALSE(trace::enabled(trace::Flag::Shootdown));
}

#ifndef NOCSTAR_NO_TRACE

TEST(TraceMacro, DisabledFlagEmitsNothingAndSkipsArguments)
{
    SinkCapture capture;
    trace::clearFlags();
    int evaluations = 0;
    auto touch = [&evaluations] {
        ++evaluations;
        return 1;
    };
    TRACE(TLB, "should not appear ", touch());
    EXPECT_EQ(capture.text(), "");
    EXPECT_EQ(evaluations, 0) << "arguments must be lazily evaluated";
}

TEST(TraceMacro, EnabledFlagEmitsStampedLine)
{
    SinkCapture capture;
    trace::setFlags("Fabric");
    Cycle cycle = 42;
    trace::setCycleSource(&cycle);
    TRACE(Fabric, "grant ", 3, " -> ", 7);
    trace::clearCycleSource(&cycle);
    std::string text = capture.text();
    EXPECT_NE(text.find("42"), std::string::npos) << text;
    EXPECT_NE(text.find("Fabric"), std::string::npos) << text;
    EXPECT_NE(text.find("grant 3 -> 7"), std::string::npos) << text;
}

TEST(TraceMacro, CycleSourceFollowsEventQueue)
{
    SinkCapture capture;
    trace::setFlags("EventQ");
    {
        EventQueue queue;
        queue.scheduleLambda(9, [] {});
        queue.run();
        // The schedule and process lines carry the queue's clock.
        std::string text = capture.text();
        EXPECT_NE(text.find("schedule event"), std::string::npos)
            << text;
        EXPECT_NE(text.find("process event"), std::string::npos)
            << text;
        EXPECT_NE(text.find(" 9: EventQ"), std::string::npos) << text;
    }
    // Queue destroyed: the thread's cycle source must be cleared, not
    // dangling.
    EXPECT_EQ(trace::currentCycle(), 0u);
}

TEST(TraceRecorderTest, DisabledRecorderIgnoresRecords)
{
    sim::TraceRecorder rec;
    EXPECT_FALSE(rec.enabled());
    rec.span(sim::Lane::Link, 0, "held", 0, 5);
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.recorded(), 0u);
}

TEST(TraceRecorderTest, RecordsSpansAndInstants)
{
    sim::TraceRecorder rec;
    rec.start(16);
    rec.span(sim::Lane::Translation, 2, "translation", 10, 25, 0xabc,
             5, "vaddr", "thread");
    rec.instant(sim::Lane::Message, 3, "setup denied", 12);
    EXPECT_EQ(rec.size(), 2u);
    EXPECT_EQ(rec.dropped(), 0u);
    auto records = rec.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_STREQ(records[0].name, "translation");
    EXPECT_EQ(records[0].start, 10u);
    EXPECT_EQ(records[0].duration, 15u);
    EXPECT_EQ(records[0].track, 2u);
    EXPECT_EQ(records[0].kind, sim::TraceRecorder::Kind::Span);
    EXPECT_EQ(records[1].kind, sim::TraceRecorder::Kind::Instant);
    EXPECT_EQ(records[1].duration, 0u);
}

TEST(TraceRecorderTest, RingWrapsOverwritingOldest)
{
    sim::TraceRecorder rec;
    rec.start(4);
    for (std::uint64_t i = 0; i < 6; ++i)
        rec.span(sim::Lane::Link, 0, "held", i, i + 1, i);
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.dropped(), 2u);
    EXPECT_EQ(rec.recorded(), 6u);
    auto records = rec.snapshot();
    ASSERT_EQ(records.size(), 4u);
    // Oldest two (start 0, 1) were overwritten; order is chronological.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(records[i].start, i + 2);
}

TEST(TraceRecorderTest, StopFreezesCapture)
{
    sim::TraceRecorder rec;
    rec.start(8);
    rec.span(sim::Lane::Walker, 1, "walk", 0, 30);
    rec.stop();
    rec.span(sim::Lane::Walker, 1, "walk", 40, 70);
    EXPECT_EQ(rec.size(), 1u);
    // start() resets the buffer for a fresh capture.
    rec.start(8);
    EXPECT_EQ(rec.size(), 0u);
    rec.stop();
}

TEST(TraceRecorderTest, ChromeExportShape)
{
    sim::TraceRecorder rec;
    rec.start(8);
    rec.span(sim::Lane::Slice, 4, "lookup hit", 100, 103, 7, 0,
             "req", nullptr);
    rec.instant(sim::Lane::Message, 1, "setup denied", 101, 9, 2,
                "dst", "retries");
    rec.stop();

    std::ostringstream os;
    rec.exportChromeJson(os);
    std::string text = os.str();
    // Complete event with duration on the slice lane.
    EXPECT_NE(text.find("\"name\":\"lookup hit\""), std::string::npos)
        << text;
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"ts\":100"), std::string::npos) << text;
    EXPECT_NE(text.find("\"dur\":3"), std::string::npos) << text;
    EXPECT_NE(text.find("\"args\":{\"req\":7}"), std::string::npos)
        << text;
    // Instant event.
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"s\":\"t\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"args\":{\"dst\":9,\"retries\":2}"),
              std::string::npos)
        << text;
    // Lane metadata.
    EXPECT_NE(text.find("\"process_name\""), std::string::npos) << text;
    EXPECT_NE(text.find("L2 TLB slices"), std::string::npos) << text;
    // Balanced object/array delimiters (cheap well-formedness check).
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
    EXPECT_EQ(std::count(text.begin(), text.end(), '['),
              std::count(text.begin(), text.end(), ']'));
}

TEST(TraceRecorderTest, CounterSamplesExportAsCounterEvents)
{
    sim::TraceRecorder rec;
    rec.start(8);
    rec.counter(0, "queue depth", 10, 3);
    rec.counter(1, "in-flight", 10, 7);
    rec.counter(0, "queue depth", 20, 0);
    rec.stop();

    auto records = rec.snapshot();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].kind, sim::TraceRecorder::Kind::Counter);
    EXPECT_EQ(records[0].lane, sim::Lane::Counter);
    EXPECT_EQ(records[0].arg0, 3u);
    EXPECT_EQ(records[1].track, 1u);

    std::ostringstream os;
    rec.exportChromeJson(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos) << text;
    EXPECT_NE(text.find("\"name\":\"queue depth\""), std::string::npos)
        << text;
    // A zero sample still exports (drops the track to the axis).
    EXPECT_NE(text.find("\"ts\":20"), std::string::npos) << text;
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
}

TEST(TraceRecorderTest, CounterRingWrapKeepsNewestSamples)
{
    sim::TraceRecorder rec;
    rec.start(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        rec.counter(0, "depth", i * 5, i);
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.dropped(), 6u);
    auto records = rec.snapshot();
    ASSERT_EQ(records.size(), 4u);
    // Oldest samples were overwritten; survivors stay chronological,
    // so the exported counter track still has monotonic timestamps.
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(records[i].start, (i + 6) * 5);
        EXPECT_EQ(records[i].arg0, i + 6);
    }
    rec.stop();
}

TEST(TraceRecorderTest, GlobalGateTracksStartStop)
{
    EXPECT_FALSE(sim::recording());
    sim::TraceRecorder::global().start(16);
    EXPECT_TRUE(sim::recording());
    sim::recorder().span(sim::Lane::Link, 1, "held", 0, 2);
    EXPECT_EQ(sim::TraceRecorder::global().size(), 1u);
    sim::TraceRecorder::global().stop();
    EXPECT_FALSE(sim::recording());
    sim::TraceRecorder::global().clear();
}

#endif // !NOCSTAR_NO_TRACE

TEST(JsonHelpers, EscapeHandlesSpecials)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(json::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(json::escape("tab\there"), "tab\\there");
    EXPECT_EQ(json::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonHelpers, NumberFormatting)
{
    auto render = [](double v) {
        std::ostringstream os;
        json::number(os, v);
        return os.str();
    };
    EXPECT_EQ(render(0), "0");
    EXPECT_EQ(render(42), "42");
    EXPECT_EQ(render(-3), "-3");
    EXPECT_EQ(render(2.5), "2.5");
    EXPECT_EQ(render(1.0 / 0.0), "0"); // JSON has no Infinity
    double parsed = std::strtod(render(0.1).c_str(), nullptr);
    EXPECT_DOUBLE_EQ(parsed, 0.1); // round-trips
}
