/**
 * @file
 * The parallel-sweep stats guarantee: with --stats-json (and epoch
 * snapshots) active, a sweep's JSONL output is byte-identical at any
 * job count -- parallel sweeps write per-simulation temp files that
 * SweepHarness concatenates in input order.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "workload/spec.hh"

using namespace nocstar;
using namespace nocstar::bench;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::vector<SimJob>
sweepJobs()
{
    std::vector<SimJob> jobs;
    for (unsigned i = 0; i < 4; ++i) {
        cpu::SystemConfig config;
        config.org.kind = core::OrgKind::Nocstar;
        config.org.numCores = 8;
        cpu::AppConfig app;
        app.spec = workload::testWorkload();
        app.threads = 8;
        config.apps.push_back(std::move(app));
        config.seed = 100 + i;
        jobs.push_back(SimJob{std::move(config), 1200});
    }
    return jobs;
}

/** Run the sweep at @p jobs workers and return the JSONL bytes. */
std::string
sweepDocument(unsigned jobs)
{
    const std::string sink = "test_sweep_stats.jsonl";
    std::remove(sink.c_str());
    observability().statsJson = sink;
    observability().epoch = 3000;
    {
        SweepHarness harness(
            "test_sweep_stats_j" + std::to_string(jobs), jobs);
        harness.runMany(sweepJobs());
    }
    observability().statsJson.clear();
    observability().epoch = 0;
    std::string doc = slurp(sink);
    std::remove(sink.c_str());
    return doc;
}

} // namespace

TEST(SweepStatsJson, ByteIdenticalAtAnyJobCount)
{
    const std::string serial = sweepDocument(1);
    ASSERT_FALSE(serial.empty());
    // One JSONL line per simulation, each a full stats document with
    // epoch snapshots.
    EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'), 4);
    EXPECT_NE(serial.find("\"epochs\":[{"), std::string::npos);

    EXPECT_EQ(serial, sweepDocument(2));
    EXPECT_EQ(serial, sweepDocument(4));

    // No temp files left behind.
    for (unsigned i = 0; i < 8; ++i) {
        std::ifstream tmp("test_sweep_stats.jsonl.tmp" +
                          std::to_string(i));
        EXPECT_FALSE(tmp.good()) << "stale temp file " << i;
    }
}
