/**
 * @file
 * Unit and property tests for the deterministic random sources.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/random.hh"

using namespace nocstar;

TEST(Random, DeterministicForSameSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DiffersAcrossSeeds)
{
    Random a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Random, BelowIsWithinBound)
{
    Random rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000000007ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Random, BelowZeroPanics)
{
    Random rng(7);
    EXPECT_THROW(rng.below(0), PanicError);
}

TEST(Random, BetweenIsInclusive)
{
    Random rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::uint64_t v = rng.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformInUnitInterval)
{
    Random rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Random, ChanceMatchesProbability)
{
    Random rng(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Random, BelowIsRoughlyUniform)
{
    Random rng(17);
    std::map<std::uint64_t, int> counts;
    constexpr int draws = 40000;
    for (int i = 0; i < draws; ++i)
        counts[rng.below(8)]++;
    for (std::uint64_t v = 0; v < 8; ++v)
        EXPECT_NEAR(counts[v] / static_cast<double>(draws), 0.125, 0.01);
}

TEST(Zipf, ZeroAlphaIsUniform)
{
    Random rng(19);
    ZipfSampler zipf(16, 0.0);
    std::map<std::uint64_t, int> counts;
    constexpr int draws = 64000;
    for (int i = 0; i < draws; ++i)
        counts[zipf.sample(rng)]++;
    for (std::uint64_t v = 0; v < 16; ++v)
        EXPECT_NEAR(counts[v] / static_cast<double>(draws), 1.0 / 16,
                    0.01);
}

TEST(Zipf, SamplesStayInRange)
{
    Random rng(23);
    ZipfSampler zipf(1000, 1.2);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(zipf.sample(rng), 1000u);
}

TEST(Zipf, EmptyRangePanics)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), PanicError);
}

TEST(Zipf, NegativeAlphaPanics)
{
    EXPECT_THROW(ZipfSampler(10, -0.5), PanicError);
}

/** Property sweep: rank popularity must be non-increasing. */
class ZipfAlphaTest : public ::testing::TestWithParam<double>
{};

TEST_P(ZipfAlphaTest, PopularityDecreasesWithRank)
{
    double alpha = GetParam();
    Random rng(31);
    ZipfSampler zipf(256, alpha);
    std::vector<int> counts(256, 0);
    for (int i = 0; i < 200000; ++i)
        counts[zipf.sample(rng)]++;

    // Compare coarse buckets; exact per-rank ordering is too noisy.
    auto bucket = [&](int lo, int hi) {
        int sum = 0;
        for (int i = lo; i < hi; ++i)
            sum += counts[i];
        return sum;
    };
    int first = bucket(0, 16), mid = bucket(16, 64),
        tail = bucket(64, 256);
    EXPECT_GT(first, mid * 16 / 48 - 1000); // per-item density ordering
    double first_density = first / 16.0;
    double mid_density = mid / 48.0;
    double tail_density = tail / 192.0;
    EXPECT_GE(first_density, mid_density);
    EXPECT_GE(mid_density, tail_density);
}

TEST_P(ZipfAlphaTest, HeadMassGrowsWithAlpha)
{
    double alpha = GetParam();
    Random rng(37);
    ZipfSampler zipf(1024, alpha);
    int head = 0;
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i)
        head += zipf.sample(rng) < 32 ? 1 : 0;
    double frac = head / static_cast<double>(draws);
    if (alpha >= 1.2) {
        EXPECT_GT(frac, 0.45);
    }
    if (alpha <= 0.5) {
        EXPECT_LT(frac, 0.35);
    }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, ZipfAlphaTest,
                         ::testing::Values(0.3, 0.5, 0.8, 1.0, 1.2,
                                           1.5));
