/**
 * @file
 * Tests for the sweep thread pool: result ordering, degenerate
 * configurations (one worker, far more tasks than workers), the
 * NOCSTAR_JOBS resolution, exception propagation, and the guarantee
 * the whole parallel-runner design rests on -- identical simulations
 * run concurrently produce identical results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "cpu/system.hh"
#include "sim/parallel.hh"
#include "workload/spec.hh"

using namespace nocstar;

namespace
{

std::vector<int>
iota(int n)
{
    std::vector<int> items(n);
    std::iota(items.begin(), items.end(), 0);
    return items;
}

} // namespace

TEST(Parallel, MapMatchesSerialLoopAtEveryWorkerCount)
{
    auto items = iota(200);
    auto fn = [](const int &v) { return v * v + 7; };

    std::vector<int> expected;
    for (int v : items)
        expected.push_back(fn(v));

    for (unsigned jobs : {1u, 2u, 4u, 9u}) {
        auto results = sim::parallelMap(items, fn, jobs);
        EXPECT_EQ(results, expected) << "jobs=" << jobs;
    }
}

TEST(Parallel, OrderPreservedWithMoreTasksThanThreads)
{
    // 3 workers, 120 tasks whose finish order is scrambled by giving
    // early tasks more work; results must still land at their input
    // index.
    auto items = iota(120);
    auto results = sim::parallelMap(
        items,
        [](const int &v) {
            volatile long sink = 0;
            for (long i = 0; i < (120 - v) * 1000L; ++i)
                sink += i;
            return v * 2;
        },
        3);
    ASSERT_EQ(results.size(), items.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], static_cast<int>(i) * 2);
}

TEST(Parallel, SingleWorkerRunsInline)
{
    // With one worker no threads are spawned: tasks run on the
    // calling thread, in order.
    sim::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 0u);
    std::vector<int> order;
    pool.post([&] { order.push_back(1); });
    pool.post([&] { order.push_back(2); });
    pool.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Parallel, PostAndDrainRunEverything)
{
    sim::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.post([&] { ++count; });
    pool.drain();
    EXPECT_EQ(count.load(), 100);
}

TEST(Parallel, MapRethrowsTaskExceptions)
{
    auto items = iota(32);
    EXPECT_THROW(sim::parallelMap(
                     items,
                     [](const int &v) {
                         if (v == 17)
                             throw std::runtime_error("boom");
                         return v;
                     },
                     4),
                 std::runtime_error);
}

TEST(Parallel, DefaultJobsHonorsEnvVar)
{
    ::setenv("NOCSTAR_JOBS", "7", 1);
    EXPECT_EQ(sim::defaultJobs(), 7u);
    ::setenv("NOCSTAR_JOBS", "not-a-number", 1);
    EXPECT_GE(sim::defaultJobs(), 1u);
    ::unsetenv("NOCSTAR_JOBS");
    EXPECT_GE(sim::defaultJobs(), 1u);
}

TEST(Parallel, ConcurrentIdenticalSimulationsAreDeterministic)
{
    // Each cpu::System owns its event queue and RNG streams; running
    // the same configuration on several threads at once must yield
    // bit-identical statistics (this is what makes sweep output
    // independent of the job count).
    cpu::SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 16;
    cpu::AppConfig app;
    app.spec = workload::paperWorkloads()[0];
    app.threads = 16;
    config.apps.push_back(std::move(app));
    config.seed = 424242;

    auto reference = cpu::System(config).run(800);

    std::vector<int> lanes(6, 0);
    auto results = sim::parallelMap(
        lanes, [&](const int &) { return cpu::System(config).run(800); },
        3);

    for (const cpu::RunResult &r : results) {
        EXPECT_EQ(r.cycles, reference.cycles);
        EXPECT_EQ(r.meanCycles, reference.meanCycles);
        EXPECT_EQ(r.instructions, reference.instructions);
        EXPECT_EQ(r.ipc, reference.ipc);
        EXPECT_EQ(r.l1Accesses, reference.l1Accesses);
        EXPECT_EQ(r.l1Misses, reference.l1Misses);
        EXPECT_EQ(r.l2Accesses, reference.l2Accesses);
        EXPECT_EQ(r.l2Hits, reference.l2Hits);
        EXPECT_EQ(r.l2Misses, reference.l2Misses);
        EXPECT_EQ(r.walks, reference.walks);
        EXPECT_EQ(r.avgL2AccessLatency, reference.avgL2AccessLatency);
        EXPECT_EQ(r.avgWalkLatency, reference.avgWalkLatency);
        EXPECT_EQ(r.energyPj, reference.energyPj);
        EXPECT_EQ(r.fabricAvgLatency, reference.fabricAvgLatency);
        EXPECT_EQ(r.fabricNoContention, reference.fabricNoContention);
        EXPECT_EQ(r.appCycles, reference.appCycles);
        EXPECT_EQ(r.appIpc, reference.appIpc);
    }
}
