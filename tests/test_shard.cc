/**
 * @file
 * Sharded-engine tests: deterministic mailbox merging, the exact
 * first-busy-cycle probe, the window crew, and the headline guarantee
 * -- the window engine's results are byte-identical at every shard
 * count, on every organization, with faults, storms, SMT and epoch
 * snapshots in play.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "cpu/system.hh"
#include "sim/fault.hh"
#include "sim/parallel.hh"
#include "sim/shard.hh"

using namespace nocstar;
using namespace nocstar::cpu;

// --------------------------------------------------------------------
// ShardMailboxes: deterministic merge order.

namespace
{

struct Rec
{
    Cycle cycle;
    unsigned thread;
    int payload;
};

} // namespace

TEST(ShardMailboxes, MergesByKeyThenShardThenSeq)
{
    sim::ShardMailboxes<Rec> boxes(3);
    EXPECT_TRUE(boxes.empty());

    // Lane 2 first, lane 0 last: arrival order across lanes must not
    // matter, only (key, shard, seq).
    boxes.post(2, Rec{5, 7, 1});
    boxes.post(2, Rec{5, 7, 2}); // same key, same lane: seq breaks tie
    boxes.post(1, Rec{5, 7, 3}); // same key, smaller lane: wins both
    boxes.post(0, Rec{9, 0, 4});
    boxes.post(1, Rec{2, 9, 5}); // earliest cycle: first overall
    EXPECT_FALSE(boxes.empty());

    std::vector<Rec> merged = boxes.drain([](const Rec &r) {
        return std::make_tuple(r.cycle, r.thread);
    });
    ASSERT_EQ(merged.size(), 5u);
    EXPECT_EQ(merged[0].payload, 5);
    EXPECT_EQ(merged[1].payload, 3);
    EXPECT_EQ(merged[2].payload, 1);
    EXPECT_EQ(merged[3].payload, 2);
    EXPECT_EQ(merged[4].payload, 4);
    EXPECT_TRUE(boxes.empty()); // drain clears the lanes
}

TEST(ShardMailboxes, KeyOrderIsIndependentOfLanePlacement)
{
    // The same records, partitioned across lanes two different ways,
    // drain in the same key order -- the property the engine's replay
    // determinism rests on (lane assignment changes with the shard
    // count; the canonical (cycle, thread) key does not).
    auto key = [](const Rec &r) {
        return std::make_tuple(r.cycle, r.thread);
    };
    std::vector<Rec> records = {{4, 1, 10}, {4, 2, 11}, {3, 9, 12},
                                {8, 0, 13}, {3, 4, 14}, {6, 6, 15}};

    sim::ShardMailboxes<Rec> two(2);
    for (std::size_t i = 0; i < records.size(); ++i)
        two.post(i % 2, records[i]);
    sim::ShardMailboxes<Rec> four(4);
    for (std::size_t i = 0; i < records.size(); ++i)
        four.post(i % 4, records[i]);

    std::vector<Rec> a = two.drain(key);
    std::vector<Rec> b = four.drain(key);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].cycle, b[i].cycle) << "at " << i;
        EXPECT_EQ(a[i].thread, b[i].thread) << "at " << i;
        EXPECT_EQ(a[i].payload, b[i].payload) << "at " << i;
    }
}

// --------------------------------------------------------------------
// EventQueue::firstBusyCycle: the exact quiescence probe.

namespace
{

class NopEvent : public Event
{
  public:
    using Event::Event;
    void process() override {}
};

} // namespace

TEST(FirstBusyCycle, QuietWindowReportsInvalid)
{
    EventQueue queue;
    EXPECT_EQ(queue.firstBusyCycle(1000), invalidCycle);

    NopEvent ev;
    queue.schedule(&ev, 500);
    // The event sits past the probed window: still quiet.
    EXPECT_EQ(queue.firstBusyCycle(499), invalidCycle);
    queue.deschedule(&ev);
}

TEST(FirstBusyCycle, ReportsTheCycleThatBrokeQuiescence)
{
    EventQueue queue;
    NopEvent ev;
    queue.schedule(&ev, 321);
    EXPECT_EQ(queue.firstBusyCycle(321), 321u);
    EXPECT_EQ(queue.firstBusyCycle(100000), 321u);
    queue.deschedule(&ev);
}

TEST(FirstBusyCycle, StaleRecordsStillCount)
{
    // A descheduled event leaves a stale wheel record; like
    // quietUntil(), the probe must report it (conservative for the
    // bypass, exact for the wheel's occupancy).
    EventQueue queue;
    NopEvent ev;
    queue.schedule(&ev, 77);
    queue.deschedule(&ev);
    EXPECT_EQ(queue.firstBusyCycle(200), 77u);
}

TEST(FirstBusyCycle, ExactBeyondTheWheelHorizon)
{
    // quietUntil() reports false for any window leaving the 4096-cycle
    // wheel horizon; firstBusyCycle() stays exact out there because
    // the overflow heap's head bounds everything beyond the wheel.
    EventQueue queue;
    NopEvent far;
    queue.schedule(&far, 100000); // overflow heap
    EXPECT_FALSE(queue.quietUntil(50000));
    EXPECT_EQ(queue.firstBusyCycle(50000), invalidCycle);
    EXPECT_EQ(queue.firstBusyCycle(100000), 100000u);
    queue.deschedule(&far);
}

// --------------------------------------------------------------------
// ShardCrew: every shard runs exactly once per window, and writes made
// inside a window are visible to the caller after it.

namespace
{

void
exerciseCrew(bool parallel)
{
    constexpr unsigned shards = 4;
    constexpr unsigned windows = 200;
    sim::ShardCrew crew(shards, parallel);
    ASSERT_EQ(crew.shards(), shards);

    std::vector<std::uint64_t> perShard(shards, 0);
    std::uint64_t expected = 0;
    for (unsigned w = 0; w < windows; ++w) {
        crew.runWindow([&](unsigned shard) {
            perShard[shard] += shard + 1; // shard-owned slot, no races
        });
        // Between windows only this thread runs; the barrier published
        // the workers' writes.
        expected += 1;
        for (unsigned s = 0; s < shards; ++s)
            ASSERT_EQ(perShard[s], expected * (s + 1))
                << "window " << w << " shard " << s;
    }
}

} // namespace

TEST(ShardCrew, SerialModeRunsEveryShardOnTheCaller)
{
    exerciseCrew(false);
}

TEST(ShardCrew, ParallelModeBarriersEveryWindow)
{
    exerciseCrew(true);
}

TEST(ShardCrew, ParkHookReportsBalancedParkWakePairs)
{
    // The observability hook fires on the worker thread at every
    // condvar park and wake; after the crew is destroyed, every park
    // must have a matching wake (the destructor wakes sleepers before
    // joining), and only worker shards (never shard 0) report.
    std::mutex mutex;
    std::vector<std::pair<unsigned, bool>> events;
    {
        sim::ShardCrew crew(
            2, /*parallel=*/true, [&](unsigned shard, bool parked) {
                std::lock_guard<std::mutex> lock(mutex);
                events.emplace_back(shard, parked);
            });
        std::atomic<unsigned> hits{0};
        crew.runWindow([&](unsigned) { hits.fetch_add(1); });
        EXPECT_EQ(hits.load(), 2u);
        // Idle long enough for the worker to fall through its
        // spin-then-yield phases onto the condvar.
        for (int i = 0; i < 5000; ++i) {
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (!events.empty() && events.back().second)
                    break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        // The next window must wake it again.
        crew.runWindow([&](unsigned) {});
    }
    ASSERT_FALSE(events.empty()) << "worker never parked";
    bool parked = false; // per-shard state; only shard 1 reports here
    for (const auto &[shard, park] : events) {
        EXPECT_EQ(shard, 1u);
        EXPECT_NE(park, parked) << "park/wake must alternate";
        parked = park;
    }
    EXPECT_FALSE(parked) << "crew destroyed with a worker parked";
}

// --------------------------------------------------------------------
// The headline guarantee: byte-identical results at every shard count.

namespace
{

SystemConfig
smallConfig(core::OrgKind kind, unsigned cores = 8)
{
    SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    AppConfig app;
    app.spec = workload::testWorkload();
    app.threads = cores;
    config.apps.push_back(std::move(app));
    config.seed = 7;
    return config;
}

void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_DOUBLE_EQ(a.meanCycles, b.meanCycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.appCycles, b.appCycles) << what;
    EXPECT_EQ(a.appIpc, b.appIpc) << what;
    EXPECT_EQ(a.l1Accesses, b.l1Accesses) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    EXPECT_EQ(a.l2Accesses, b.l2Accesses) << what;
    EXPECT_EQ(a.l2Hits, b.l2Hits) << what;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << what;
    EXPECT_EQ(a.walks, b.walks) << what;
    EXPECT_DOUBLE_EQ(a.avgL2AccessLatency, b.avgL2AccessLatency)
        << what;
    EXPECT_DOUBLE_EQ(a.avgWalkLatency, b.avgWalkLatency) << what;
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj) << what;
    EXPECT_DOUBLE_EQ(a.beyondL2Fraction, b.beyondL2Fraction) << what;
    EXPECT_DOUBLE_EQ(a.fabricAvgLatency, b.fabricAvgLatency) << what;
    EXPECT_EQ(a.faultsInjected, b.faultsInjected) << what;
    EXPECT_EQ(a.degradedMessages, b.degradedMessages) << what;
    EXPECT_EQ(a.eccRewalks, b.eccRewalks) << what;
    EXPECT_EQ(a.shootdowns, b.shootdowns) << what;
    EXPECT_DOUBLE_EQ(a.avgShootdownLatency, b.avgShootdownLatency)
        << what;
    EXPECT_EQ(a.concurrencyBuckets, b.concurrencyBuckets) << what;
    EXPECT_EQ(a.sliceConcurrencyBuckets, b.sliceConcurrencyBuckets)
        << what;
}

void
expectShardCountInvariant(const SystemConfig &base,
                          std::uint64_t accesses,
                          const std::string &what)
{
    SystemConfig one = base;
    one.shards = 1;
    RunResult baseline = System(one).run(accesses);
    for (unsigned shards : {2u, 4u}) {
        SystemConfig cfg = base;
        cfg.shards = shards;
        RunResult r = System(cfg).run(accesses);
        expectIdentical(baseline, r,
                        what + " shards=" + std::to_string(shards));
    }
}

} // namespace

class ShardIdentityTest : public ::testing::TestWithParam<core::OrgKind>
{};

TEST_P(ShardIdentityTest, RunResultInvariantAcrossShardCounts)
{
    expectShardCountInvariant(smallConfig(GetParam()), 2000,
                              core::orgKindName(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    AllOrgs, ShardIdentityTest,
    ::testing::Values(core::OrgKind::Private,
                      core::OrgKind::MonolithicMesh,
                      core::OrgKind::MonolithicSmart,
                      core::OrgKind::Distributed,
                      core::OrgKind::IdealShared,
                      core::OrgKind::Nocstar,
                      core::OrgKind::NocstarIdeal));

TEST(ShardIdentity, WithFaultPlanStormAndContextSwitches)
{
    // Every cross-shard interaction at once: fabric outages + ECC
    // rewalks (uncore fault machinery), storm shootdowns and context
    // switches (chip-wide flushes poking every shard's L1 state).
    SystemConfig config = smallConfig(core::OrgKind::Nocstar, 16);
    std::istringstream plan("link 5 E 0 permanent\n"
                            "grant-loss 0.01\n"
                            "slice-ecc 0.002\n"
                            "walk-ecc 0.002\n"
                            "seed 7\n");
    config.org.faults = sim::FaultPlan::parse(plan, "test");
    config.contextSwitchInterval = 20000;
    config.stormRemapInterval = 3000;
    expectShardCountInvariant(config, 2500, "faults+storm");
}

TEST(ShardIdentity, WithSmtThreadsSharingCores)
{
    // SMT threads of one core must land in one shard (their same-cycle
    // ordering is a per-queue property); 3 shards over 8 cores also
    // exercises uneven contiguous partitions.
    SystemConfig config = smallConfig(core::OrgKind::Distributed);
    config.smtPerCore = 2;
    config.apps[0].threads = 16;
    SystemConfig one = config;
    one.shards = 1;
    RunResult baseline = System(one).run(1500);
    for (unsigned shards : {3u, 8u}) {
        SystemConfig cfg = config;
        cfg.shards = shards;
        RunResult r = System(cfg).run(1500);
        expectIdentical(baseline, r,
                        "smt shards=" + std::to_string(shards));
    }
}

TEST(ShardIdentity, EpochStatsJsonIsByteIdentical)
{
    // The whole machine-readable stats document -- every epoch
    // snapshot and the final tree -- must match byte for byte, which
    // pins down every Scalar in the tree, not just the RunResult
    // aggregates.
    auto document = [](unsigned shards) {
        SystemConfig config;
        config.org.kind = core::OrgKind::Nocstar;
        config.org.numCores = 8;
        AppConfig app;
        app.spec = workload::testWorkload();
        app.threads = 8;
        config.apps.push_back(std::move(app));
        config.seed = 7;
        config.shards = shards;
        config.statsEpochInterval = 5000;
        System system(config);
        system.run(2000);
        std::ostringstream os;
        system.dumpStatsJson(os);
        return os.str();
    };
    std::string one = document(1);
    EXPECT_EQ(one, document(2));
    EXPECT_EQ(one, document(4));
    EXPECT_NE(one.find("\"epochs\":[{"), std::string::npos)
        << "epoch snapshots were expected in the document";
}

TEST(ShardIdentity, LatencyHistogramsAreByteIdenticalAcrossShards)
{
    // The latency histograms record through two different paths under
    // the window engine (miss classes at replay, hit zeros folded per
    // window from lane counters), so pin the full stats document --
    // which embeds every histogram's buckets and percentiles -- across
    // shard counts, per-context split included.
    auto document = [](unsigned shards) {
        SystemConfig config = smallConfig(core::OrgKind::Nocstar);
        config.shards = shards;
        config.latencyStats = true;
        config.latencyPerContext = true;
        System system(config);
        system.run(2000);
        std::ostringstream os;
        system.dumpStatsJson(os);
        return os.str();
    };
    std::string one = document(1);
    EXPECT_EQ(one, document(2));
    EXPECT_EQ(one, document(4));
    EXPECT_NE(one.find("\"latency\":{"), std::string::npos)
        << "latency histograms were expected in the document";
    EXPECT_NE(one.find("\"ctx\":{"), std::string::npos)
        << "per-context histograms were expected in the document";
}

TEST(ShardIdentity, LatencyStatsOffLeavesDocumentUnchanged)
{
    // With the knob off, the stats document must be byte-identical to
    // one from a system that never had the feature: the latency group
    // is created lazily, so its absence is the whole guarantee.
    auto document = [](bool lat) {
        SystemConfig config = smallConfig(core::OrgKind::Nocstar);
        config.latencyStats = lat;
        System system(config);
        system.run(1000);
        std::ostringstream os;
        system.dumpStatsJson(os);
        return os.str();
    };
    std::string off = document(false);
    EXPECT_EQ(off.find("\"latency\""), std::string::npos);
    EXPECT_NE(off, document(true));
}

TEST(ShardConfig, ValidationRejectsBadShardCounts)
{
    SystemConfig config = smallConfig(core::OrgKind::Private, 4);
    config.shards = 5; // > tile count
    EXPECT_FALSE(config.validate().empty());

    config.shards = 4;
    EXPECT_TRUE(config.validate().empty());

    // Trace capture consumes addresses inside parallel windows: only
    // the legacy engine may capture.
    config.captureTracePath = "/tmp/capture.trace";
    EXPECT_FALSE(config.validate().empty());
    config.shards = 0;
    EXPECT_TRUE(config.validate().empty());
}

// --------------------------------------------------------------------
// Uncore sharding (the parallel pre-probe phase): the deferred-miss
// drain order, eligibility gating, and identity on workloads where the
// uncore dominates.

namespace
{

/**
 * A workload whose hot set blows out the 64-entry L1 arrays: most
 * accesses defer to the window boundary and replay through the
 * organization, so the parallel pre-probe phase carries real load.
 */
workload::WorkloadSpec
missHeavySpec()
{
    workload::WorkloadSpec spec = workload::testWorkload();
    spec.hotPages = 2048;
    spec.warmFraction = 0.2;
    spec.coldFraction = 0.01;
    return spec;
}

} // namespace

TEST(ShardMailboxes, DrainsByCycleSourceSeq)
{
    // The uncore drain order the engine relies on: primary key the
    // record's cycle, then the posting shard (the "source"), then the
    // intra-lane sequence. Same-cycle records from different shards
    // must interleave by shard index, not arrival time.
    sim::ShardMailboxes<Rec> boxes(3);
    boxes.post(2, Rec{7, 0, 1}); // cycle 7 from shard 2, posted first
    boxes.post(0, Rec{7, 0, 2}); // cycle 7 from shard 0: drains first
    boxes.post(1, Rec{7, 0, 3});
    boxes.post(1, Rec{7, 0, 4}); // same shard: seq order preserved
    boxes.post(0, Rec{6, 0, 5}); // earlier cycle beats every shard

    std::vector<Rec> merged =
        boxes.drain([](const Rec &r) { return r.cycle; });
    ASSERT_EQ(merged.size(), 5u);
    EXPECT_EQ(merged[0].payload, 5);
    EXPECT_EQ(merged[1].payload, 2);
    EXPECT_EQ(merged[2].payload, 3);
    EXPECT_EQ(merged[3].payload, 4);
    EXPECT_EQ(merged[4].payload, 1);
}

TEST(ShardIdentity, MissHeavyInvariantAcrossOrgsAndShardCounts)
{
    // The headline bar for uncore sharding: on a workload where nearly
    // every access replays through the organization (so the pre-probe
    // phase handles the bulk of the home-array lookups), every shard
    // count must produce the same bytes.
    for (core::OrgKind kind :
         {core::OrgKind::Private, core::OrgKind::MonolithicMesh,
          core::OrgKind::Distributed, core::OrgKind::Nocstar}) {
        SystemConfig config = smallConfig(kind);
        config.apps[0].spec = missHeavySpec();
        expectShardCountInvariant(
            config, 1500,
            std::string(core::orgKindName(kind)) + " miss-heavy");
    }
}

TEST(ShardIdentity, PrivateOrgMatchesLegacyEngine)
{
    // Where the window engine provably agrees with the legacy
    // single-queue engine: organizations with no same-cycle
    // cross-thread contention point. Private L2s have per-core arrays,
    // ports and walkers, so the engines' different same-cycle service
    // orders (legacy: event insertion order; windowed: canonical
    // (cycle, thread)) act on disjoint state and the results coincide
    // -- even miss-heavy. Shared-structure organizations diverge from
    // legacy by design (bank-port and fabric-arbitration service
    // order); see DESIGN.md "canonical service order vs the legacy
    // engine".
    SystemConfig config = smallConfig(core::OrgKind::Private);
    config.apps[0].spec = missHeavySpec();
    SystemConfig legacy = config;
    legacy.shards = 0;
    RunResult baseline = System(legacy).run(1500);
    for (unsigned shards : {1u, 2u, 4u}) {
        SystemConfig cfg = config;
        cfg.shards = shards;
        RunResult r = System(cfg).run(1500);
        expectIdentical(baseline, r,
                        "private legacy vs shards=" +
                            std::to_string(shards));
    }
}

TEST(ShardIdentity, SliceEccPlanDisablesPreProbeButStaysInvariant)
{
    // A slice-ECC probability makes hit outcomes depend on a global
    // draw stream consumed in probe order, so the engine must fall
    // back to live replay-time probes -- and still be shard-count
    // invariant.
    SystemConfig config = smallConfig(core::OrgKind::Nocstar);
    config.apps[0].spec = missHeavySpec();
    std::istringstream plan("slice-ecc 0.01\nseed 11\n");
    config.org.faults = sim::FaultPlan::parse(plan, "test");
    expectShardCountInvariant(config, 1500, "slice-ecc fallback");
}

TEST(ShardIdentity, MissHeavyWithStormAndSmt)
{
    // Storm shootdowns + context switches mutate home arrays from
    // main-queue events while SMT threads share cores: the pre-probe
    // eligibility rules (window-interior, already-probed misses only)
    // must hold the identity gate under all of it.
    SystemConfig config = smallConfig(core::OrgKind::Distributed);
    config.apps[0].spec = missHeavySpec();
    config.smtPerCore = 2;
    config.apps[0].threads = 16;
    config.contextSwitchInterval = 20000;
    config.stormRemapInterval = 3000;
    SystemConfig one = config;
    one.shards = 1;
    RunResult baseline = System(one).run(1200);
    for (unsigned shards : {3u, 4u}) {
        SystemConfig cfg = config;
        cfg.shards = shards;
        RunResult r = System(cfg).run(1200);
        expectIdentical(baseline, r,
                        "storm+smt shards=1 vs shards=" +
                            std::to_string(shards));
    }
}

TEST(ShardTiming, WindowLoopCountersAccumulate)
{
    SystemConfig config = smallConfig(core::OrgKind::Nocstar);
    config.apps[0].spec = missHeavySpec();
    config.shards = 4;
    System system(config);
    system.run(1500);
    const System::ShardTiming &t = system.shardTiming();
    EXPECT_GT(t.windows, 0u);
    EXPECT_GT(t.deferredMisses, 0u);
    // Miss-heavy without a fault plan: most deferred misses are
    // eligible for the parallel pre-probe.
    EXPECT_GT(t.preProbes, 0u);
    EXPECT_LE(t.preProbes, t.deferredMisses);
    EXPECT_GT(t.uncoreNanos, 0u);
}

TEST(ShardTiming, EccPlanDisablesPreProbes)
{
    SystemConfig config = smallConfig(core::OrgKind::Nocstar);
    config.apps[0].spec = missHeavySpec();
    config.shards = 2;
    std::istringstream plan("slice-ecc 0.01\nseed 11\n");
    config.org.faults = sim::FaultPlan::parse(plan, "test");
    System system(config);
    system.run(1000);
    EXPECT_EQ(system.shardTiming().preProbes, 0u);
    EXPECT_GT(system.shardTiming().deferredMisses, 0u);
}

TEST(ShardCrew, ParksIdleWorkersAndWakesForTheNextWindow)
{
    // Long gaps between windows must not wedge the crew: workers fall
    // back from spinning to a condvar park, and the next runWindow()
    // (and the destructor) must wake them reliably.
    sim::ShardCrew crew(3, true);
    std::vector<std::uint64_t> ran(3, 0);
    auto window = [&](unsigned shard) { ++ran[shard]; };
    crew.runWindow(window);
    // Far beyond the spin + yield budget: workers are parked by now.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    crew.runWindow(window);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    crew.runWindow(window);
    for (unsigned s = 0; s < 3; ++s)
        EXPECT_EQ(ran[s], 3u) << "shard " << s;
}

TEST(AutoShards, DeterministicFromTilesAndBudget)
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    // Never exceeds the tile count or the per-job hardware budget,
    // never below 1.
    EXPECT_EQ(sim::autoShards(1), 1u);
    EXPECT_LE(sim::autoShards(64), std::max(1u, hw));
    EXPECT_LE(sim::autoShards(64, 2), std::max(1u, hw / 2));
    EXPECT_GE(sim::autoShards(64, 1000000), 1u);
    EXPECT_EQ(sim::autoShards(1000000), std::max(1u, hw));
    // Deterministic on a fixed host.
    EXPECT_EQ(sim::autoShards(64, 2), sim::autoShards(64, 2));
}
