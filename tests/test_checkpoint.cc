/**
 * @file
 * Checkpoint/restore and sampled-simulation tests: restore-then-resume
 * must be RunResult-identical to a straight-through run for every
 * organization and shard count, damaged checkpoint files must be
 * rejected with structured errors, and sampled runs must be
 * deterministic at a fixed seed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "sim/checkpoint.hh"

using namespace nocstar;
using namespace nocstar::cpu;

namespace
{

SystemConfig
smallConfig(core::OrgKind kind, unsigned cores = 8, unsigned shards = 0)
{
    SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    {
        cpu::AppConfig app_config;
        app_config.spec = workload::testWorkload();
        app_config.threads = cores;
        config.apps.push_back(std::move(app_config));
    }
    config.seed = 7;
    config.shards = shards;
    return config;
}

std::string
ckptPath(const std::string &name)
{
    return ::testing::TempDir() + "nocstar_" + name + ".ckpt";
}

/** Every RunResult field the timing model produces must agree. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.meanCycles, b.meanCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.appCycles, b.appCycles);
    EXPECT_EQ(a.appIpc, b.appIpc);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_DOUBLE_EQ(a.avgL2AccessLatency, b.avgL2AccessLatency);
    EXPECT_DOUBLE_EQ(a.avgWalkLatency, b.avgWalkLatency);
    EXPECT_DOUBLE_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
    EXPECT_DOUBLE_EQ(a.beyondL2Fraction, b.beyondL2Fraction);
    EXPECT_DOUBLE_EQ(a.fabricAvgLatency, b.fabricAvgLatency);
    EXPECT_DOUBLE_EQ(a.fabricNoContention, b.fabricNoContention);
    EXPECT_EQ(a.fabricSetupAttempts, b.fabricSetupAttempts);
    EXPECT_EQ(a.fabricSetupFailures, b.fabricSetupFailures);
    EXPECT_EQ(a.shootdowns, b.shootdowns);
    EXPECT_EQ(a.concurrencyBuckets, b.concurrencyBuckets);
    EXPECT_EQ(a.sliceConcurrencyBuckets, b.sliceConcurrencyBuckets);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_EQ(a.sampleWindows, b.sampleWindows);
    EXPECT_EQ(a.sampledFfAccesses, b.sampledFfAccesses);
    EXPECT_DOUBLE_EQ(a.sampledIpcMean, b.sampledIpcMean);
    EXPECT_DOUBLE_EQ(a.sampledIpcCi95, b.sampledIpcCi95);
    EXPECT_DOUBLE_EQ(a.sampledLatencyMean, b.sampledLatencyMean);
    EXPECT_DOUBLE_EQ(a.sampledLatencyCi95, b.sampledLatencyCi95);
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<std::uint8_t> buf;
    int c;
    while ((c = std::fgetc(f)) != EOF)
        buf.push_back(static_cast<std::uint8_t>(c));
    std::fclose(f);
    return buf;
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &buf)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    std::fwrite(buf.data(), 1, buf.size(), f);
    std::fclose(f);
}

} // namespace

class CheckpointRoundTrip
    : public ::testing::TestWithParam<core::OrgKind>
{};

TEST_P(CheckpointRoundTrip, RestoreResumesIdentically)
{
    const std::string path = ckptPath("roundtrip");
    // Straight-through reference run (also exercises save-then-keep-
    // running: writing the checkpoint must not perturb the run).
    SystemConfig save_config = smallConfig(GetParam());
    save_config.checkpointSavePath = path;
    RunResult saved = System(save_config).run(2000);

    RunResult plain = System(smallConfig(GetParam())).run(2000);
    expectSameResult(saved, plain);

    SystemConfig restore_config = smallConfig(GetParam());
    restore_config.checkpointRestorePath = path;
    RunResult restored = System(restore_config).run(2000);
    expectSameResult(restored, plain);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    AllOrgs, CheckpointRoundTrip,
    ::testing::Values(core::OrgKind::Private,
                      core::OrgKind::MonolithicMesh,
                      core::OrgKind::MonolithicSmart,
                      core::OrgKind::Distributed,
                      core::OrgKind::IdealShared,
                      core::OrgKind::Nocstar,
                      core::OrgKind::NocstarIdeal));

TEST(Checkpoint, RoundTripAcrossShardCounts)
{
    // The fingerprint deliberately excludes the shard count (a pure
    // wall-clock knob): a checkpoint taken under any engine restores
    // under any other, reproducing that engine's own straight-through
    // result exactly.
    const std::string path = ckptPath("shards");
    for (unsigned save_shards : {0u, 1u, 4u}) {
        SystemConfig save_config =
            smallConfig(core::OrgKind::Nocstar, 8, save_shards);
        save_config.checkpointSavePath = path;
        System(save_config).run(2000);
        for (unsigned run_shards : {0u, 1u, 4u}) {
            RunResult plain =
                System(smallConfig(core::OrgKind::Nocstar, 8,
                                   run_shards))
                    .run(2000);
            SystemConfig restore_config =
                smallConfig(core::OrgKind::Nocstar, 8, run_shards);
            restore_config.checkpointRestorePath = path;
            RunResult restored = System(restore_config).run(2000);
            expectSameResult(restored, plain);
        }
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsFatal)
{
    SystemConfig config = smallConfig(core::OrgKind::Private);
    config.checkpointRestorePath = ckptPath("does_not_exist");
    System system(config);
    EXPECT_THROW(system.run(500), FatalError);
}

TEST(Checkpoint, DamagedFilesAreRejected)
{
    const std::string path = ckptPath("damage");
    SystemConfig save_config = smallConfig(core::OrgKind::Nocstar);
    save_config.checkpointSavePath = path;
    System(save_config).run(1000);
    const std::vector<std::uint8_t> good = readFile(path);
    ASSERT_GT(good.size(), 64u);

    auto restore = [&] {
        SystemConfig config = smallConfig(core::OrgKind::Nocstar);
        config.checkpointRestorePath = path;
        return System(config).run(1000);
    };

    // Bad magic.
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xff;
    writeFile(path, bad);
    EXPECT_THROW(restore(), FatalError);

    // Unsupported format version (checked before the checksum, so the
    // rejection names the version, not generic corruption).
    bad = good;
    bad[4] += 1;
    writeFile(path, bad);
    try {
        restore();
        FAIL() << "version mismatch not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("version"),
                  std::string::npos)
            << err.what();
    }

    // Truncated below the header.
    bad = std::vector<std::uint8_t>(good.begin(), good.begin() + 16);
    writeFile(path, bad);
    EXPECT_THROW(restore(), FatalError);

    // Truncated mid-payload.
    bad = std::vector<std::uint8_t>(good.begin(),
                                    good.begin() + good.size() / 2);
    writeFile(path, bad);
    EXPECT_THROW(restore(), FatalError);

    // Flipped payload byte: checksum mismatch.
    bad = good;
    bad[good.size() / 2] ^= 0x40;
    writeFile(path, bad);
    try {
        restore();
        FAIL() << "corruption not rejected";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("checksum"),
                  std::string::npos)
            << err.what();
    }

    // Undamaged file still restores after all that.
    writeFile(path, good);
    EXPECT_NO_THROW(restore());
    std::remove(path.c_str());
}

TEST(Checkpoint, ConfigFingerprintMismatchIsRejected)
{
    const std::string path = ckptPath("fingerprint");
    SystemConfig save_config = smallConfig(core::OrgKind::Nocstar);
    save_config.checkpointSavePath = path;
    System(save_config).run(1000);

    // Same organization, different functional state shape (seed).
    SystemConfig other = smallConfig(core::OrgKind::Nocstar);
    other.seed = 8;
    other.checkpointRestorePath = path;
    {
        System system(other);
        try {
            system.run(1000);
            FAIL() << "fingerprint mismatch not rejected";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find("fingerprint"),
                      std::string::npos)
                << err.what();
        }
    }

    // Different organization entirely.
    SystemConfig wrong_org = smallConfig(core::OrgKind::Private);
    wrong_org.checkpointRestorePath = path;
    {
        System system(wrong_org);
        EXPECT_THROW(system.run(1000), FatalError);
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, ForbiddenFeaturesFailValidation)
{
    // Periodic mutation events and fault plans would have to be
    // serialized mid-flight; validate() forbids the combination
    // instead of silently diverging.
    SystemConfig config = smallConfig(core::OrgKind::Nocstar);
    config.checkpointSavePath = ckptPath("invalid");
    config.contextSwitchInterval = 1000;
    EXPECT_FALSE(config.validate().empty());

    SystemConfig sampled = smallConfig(core::OrgKind::Nocstar);
    sampled.sampling.windows = 4;
    sampled.sampling.detailAccesses = 100;
    sampled.statsEpochInterval = 500;
    EXPECT_FALSE(sampled.validate().empty());

    // One detail window is not a sample.
    SystemConfig degenerate = smallConfig(core::OrgKind::Nocstar);
    degenerate.sampling.windows = 1;
    degenerate.sampling.detailAccesses = 100;
    EXPECT_FALSE(degenerate.validate().empty());
}

TEST(Sampling, DeterministicAtFixedSeed)
{
    SystemConfig config = smallConfig(core::OrgKind::Nocstar);
    config.sampling.windows = 4;
    config.sampling.detailAccesses = 200;
    config.sampling.warmupAccesses = 500;
    RunResult a = System(config).run(4000);
    RunResult b = System(config).run(4000);
    expectSameResult(a, b);
    EXPECT_TRUE(a.sampled);
    EXPECT_EQ(a.sampleWindows, 4u);
    EXPECT_GT(a.sampledFfAccesses, 0u);
    EXPECT_GT(a.sampledIpcMean, 0.0);
    EXPECT_GT(a.sampledLatencyMean, 0.0);
    // Detail windows simulate only windows * detailAccesses accesses
    // per thread in the timing model.
    EXPECT_EQ(a.l1Accesses, 8u * 4u * 200u);
}

TEST(Sampling, SampledRestoreMatchesStraightThrough)
{
    const std::string path = ckptPath("sampled");
    auto sampled_config = [&] {
        SystemConfig config = smallConfig(core::OrgKind::Nocstar);
        config.sampling.windows = 4;
        config.sampling.detailAccesses = 200;
        config.sampling.warmupAccesses = 500;
        return config;
    };
    SystemConfig save_config = sampled_config();
    save_config.checkpointSavePath = path;
    RunResult saved = System(save_config).run(4000);

    SystemConfig restore_config = sampled_config();
    restore_config.checkpointRestorePath = path;
    RunResult restored = System(restore_config).run(4000);
    expectSameResult(saved, restored);
    std::remove(path.c_str());
}

TEST(Sampling, WarmupOnlyFastForwardRuns)
{
    // warmupAccesses without measurement windows is a standalone
    // functional warming mode: the detail phase starts 2000 stream
    // positions in, against functionally-evolved TLB/cache state,
    // and must stay deterministic.
    SystemConfig warm = smallConfig(core::OrgKind::Nocstar);
    warm.sampling.warmupAccesses = 2000;
    RunResult hot = System(warm).run(1000);
    RunResult again = System(warm).run(1000);
    expectSameResult(hot, again);
    RunResult cold = System(smallConfig(core::OrgKind::Nocstar))
                         .run(1000);
    EXPECT_FALSE(hot.sampled);
    // Only the requested detail accesses are timed; the fast-forward
    // stretch is invisible to the demand counters but moved the
    // stream, so the timing outcome differs from the cold run.
    EXPECT_EQ(hot.l1Accesses, cold.l1Accesses);
    EXPECT_NE(hot.cycles, cold.cycles);
}

TEST(System, MemoryAuditAccountsComponents)
{
    System system(smallConfig(core::OrgKind::Nocstar, 16));
    system.run(500); // walk-cache line stores allocate on first use
    System::MemoryAudit audit = system.memoryAudit();
    EXPECT_GT(audit.orgArrayBytes, 0u);
    EXPECT_GT(audit.l1Bytes, 0u);
    EXPECT_GT(audit.pageTableBytes, 0u);
    EXPECT_GT(audit.cacheModelBytes, 0u);
    EXPECT_GT(audit.fabricBytes, 0u);
    EXPECT_EQ(audit.checkpointBytes, 0u);
    EXPECT_EQ(audit.total(),
              audit.orgArrayBytes + audit.l1Bytes +
                  audit.pageTableBytes + audit.cacheModelBytes +
                  audit.fabricBytes + audit.checkpointBytes);

    // The private organization has no fabric to account.
    System private_system(smallConfig(core::OrgKind::Private, 16));
    EXPECT_EQ(private_system.memoryAudit().fabricBytes, 0u);
}
