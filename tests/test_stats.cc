/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/stats.hh"

using namespace nocstar;
using namespace nocstar::stats;

TEST(Stats, ScalarAccumulates)
{
    StatGroup group("g");
    Scalar s(&group, "s", "a scalar");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 7;
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, VectorIndexingAndTotal)
{
    StatGroup group("g");
    Vector v(&group, "v", "a vector", 4);
    v[0] = 1;
    v[3] = 9;
    EXPECT_DOUBLE_EQ(v.total(), 10.0);
    EXPECT_THROW(v[4], std::out_of_range);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Stats, DistributionBucketsAndMoments)
{
    StatGroup group("g");
    Distribution d(&group, "d", "a distribution", 0, 10, 2);
    d.sample(1);
    d.sample(3);
    d.sample(3);
    d.sample(-5); // underflow
    d.sample(42); // overflow
    EXPECT_EQ(d.numSamples(), 5u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.buckets()[0], 1u); // [0,2)
    EXPECT_EQ(d.buckets()[1], 2u); // [2,4)
    EXPECT_DOUBLE_EQ(d.minSample(), -5.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 42.0);
    EXPECT_NEAR(d.mean(), (1 + 3 + 3 - 5 + 42) / 5.0, 1e-9);
}

TEST(Stats, DistributionWeightedSamples)
{
    StatGroup group("g");
    Distribution d(&group, "d", "weighted", 0, 8, 1);
    d.sample(2, 10);
    EXPECT_EQ(d.numSamples(), 10u);
    EXPECT_EQ(d.buckets()[2], 10u);
}

TEST(Stats, DistributionBadBoundsIsFatal)
{
    // Misconfigured bounds are a user error, not an internal invariant
    // violation: fatal(), not panic().
    StatGroup group("g");
    EXPECT_THROW(Distribution(&group, "bad", "x", 5, 5, 1), FatalError);
    EXPECT_THROW(Distribution(&group, "bad2", "x", 7, 3, 1), FatalError);
    EXPECT_THROW(Distribution(&group, "bad3", "x", 0, 5, 0), FatalError);
    EXPECT_THROW(Distribution(&group, "bad4", "x", 0, 5, -1),
                 FatalError);
}

TEST(Stats, DistributionFirstSampleSetsExtrema)
{
    StatGroup group("g");
    Distribution d(&group, "d", "x", 0, 10, 1);
    // The first sample must become both min and max, even when it is
    // above/below the zero the extrema are initialized to.
    d.sample(7);
    EXPECT_DOUBLE_EQ(d.minSample(), 7.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 7.0);

    Distribution e(&group, "e", "x", -10, 10, 1);
    e.sample(-4);
    EXPECT_DOUBLE_EQ(e.minSample(), -4.0);
    EXPECT_DOUBLE_EQ(e.maxSample(), -4.0);
}

TEST(Stats, DistributionResetThenSample)
{
    StatGroup group("g");
    Distribution d(&group, "d", "x", 0, 10, 2);
    d.sample(1);
    d.sample(9);
    d.sample(-1);
    d.sample(11);
    d.reset();
    EXPECT_EQ(d.numSamples(), 0u);
    EXPECT_EQ(d.underflow(), 0u);
    EXPECT_EQ(d.overflow(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    // Extrema must re-latch from the first post-reset sample.
    d.sample(5);
    EXPECT_EQ(d.numSamples(), 1u);
    EXPECT_DOUBLE_EQ(d.minSample(), 5.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 5.0);
    EXPECT_EQ(d.buckets()[2], 1u);
}

TEST(Stats, FormulaComputesOnDemand)
{
    StatGroup group("g");
    Scalar hits(&group, "hits", "h");
    Scalar total(&group, "total", "t");
    Formula rate(&group, "rate", "hit rate", [&] {
        return total.value() > 0 ? hits.value() / total.value() : 0.0;
    });
    EXPECT_EQ(rate.value(), 0.0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, DuplicateNamePanics)
{
    StatGroup group("g");
    Scalar a(&group, "x", "first");
    EXPECT_THROW(Scalar(&group, "x", "second"), PanicError);
}

TEST(Stats, OrphanStatPanics)
{
    EXPECT_THROW(Scalar(nullptr, "x", "orphan"), PanicError);
}

TEST(Stats, FindLocatesByName)
{
    StatGroup group("g");
    Scalar a(&group, "alpha", "a");
    EXPECT_EQ(group.find("alpha"), &a);
    EXPECT_EQ(group.find("missing"), nullptr);
}

TEST(Stats, DumpIncludesHierarchy)
{
    StatGroup parent("root");
    StatGroup child("leaf", &parent);
    Scalar a(&parent, "a", "top level");
    Scalar b(&child, "b", "nested");
    a += 1;
    b += 2;
    std::ostringstream os;
    parent.dumpAll(os);
    std::string text = os.str();
    EXPECT_NE(text.find("root.a"), std::string::npos);
    EXPECT_NE(text.find("root.leaf.b"), std::string::npos);
    EXPECT_NE(text.find("# top level"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup parent("root");
    StatGroup child("leaf", &parent);
    Scalar a(&parent, "a", "top");
    Scalar b(&child, "b", "nested");
    a += 5;
    b += 5;
    parent.resetAll();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
}

TEST(Stats, DumpJsonScalarVectorFormula)
{
    StatGroup group("g");
    Scalar s(&group, "s", "scalar");
    s += 2.5;
    Vector v(&group, "v", "vector", 3);
    v[1] = 4;
    Formula f(&group, "f", "formula", [] { return 0.5; });

    std::ostringstream os;
    group.dumpJson(os);
    std::string text = os.str();
    EXPECT_NE(text.find("\"s\":2.5"), std::string::npos) << text;
    EXPECT_NE(text.find("\"v\":{\"values\":[0,4,0],\"total\":4}"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("\"f\":0.5"), std::string::npos) << text;
}

TEST(Stats, PercentilePointMassReportsBucketValue)
{
    // Regression: a >99%-zero streak distribution used to report
    // p50_est ~ 0.5 because the estimator interpolated within the
    // bucket holding the rank. The median of a point mass at 0 is 0.
    StatGroup group("g");
    Distribution d(&group, "d", "streaks", 0, 64, 1);
    d.sample(0, 9950);
    d.sample(3, 40);
    d.sample(17, 10);
    EXPECT_DOUBLE_EQ(d.percentileEst(0.50), 0.0);
    EXPECT_DOUBLE_EQ(d.percentileEst(0.99), 0.0);
    EXPECT_DOUBLE_EQ(d.percentileEst(0.999), 3.0);
    EXPECT_DOUBLE_EQ(d.percentileEst(0.9999), 17.0);
}

TEST(Stats, PercentileBucketLowerEdge)
{
    // The bucket holding the rank reports its lower edge: with 2-wide
    // buckets, samples at 5 land in [4, 6) and the estimate is 4,
    // clamped up to the recorded minimum when that is larger.
    StatGroup group("g");
    Distribution d(&group, "d", "x", 0, 10, 2);
    d.sample(5, 10);
    EXPECT_DOUBLE_EQ(d.percentileEst(0.50), 5.0); // clamp to minSample
    d.sample(1, 1);
    // Median rank now falls in [4, 6); lower edge 4 >= minSample 1.
    EXPECT_DOUBLE_EQ(d.percentileEst(0.50), 4.0);
}

TEST(Stats, DumpJsonDistribution)
{
    StatGroup group("g");
    Distribution d(&group, "d", "dist", 0, 10, 2);
    d.sample(1);
    d.sample(3);
    d.sample(-5);
    std::ostringstream os;
    group.dumpJson(os);
    std::string text = os.str();
    EXPECT_NE(text.find("\"samples\":3"), std::string::npos) << text;
    EXPECT_NE(text.find("\"underflow\":1"), std::string::npos) << text;
    // Only non-zero buckets appear, as [lo, count] pairs.
    EXPECT_NE(text.find("[0,1]"), std::string::npos) << text;
    EXPECT_NE(text.find("[2,1]"), std::string::npos) << text;
    EXPECT_EQ(text.find("[4,"), std::string::npos) << text;
}

TEST(Stats, DumpJsonNestedGroupsParse)
{
    StatGroup parent("root");
    StatGroup child("leaf", &parent);
    Scalar a(&parent, "a", "top");
    Scalar b(&child, "b", "nested");
    a += 1;
    b += 2;
    std::ostringstream os;
    parent.dumpJson(os);
    std::string text = os.str();
    EXPECT_NE(text.find("\"leaf\":{\"b\":2}"), std::string::npos)
        << text;
    // Shape sanity: braces balance.
    EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
              std::count(text.begin(), text.end(), '}'));
}

TEST(Stats, ChildRemovesItselfOnDestruction)
{
    StatGroup parent("root");
    {
        StatGroup child("leaf", &parent);
        Scalar b(&child, "b", "nested");
    }
    std::ostringstream os;
    parent.dumpAll(os);
    EXPECT_EQ(os.str().find("leaf"), std::string::npos);
}
