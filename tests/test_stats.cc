/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace nocstar;
using namespace nocstar::stats;

TEST(Stats, ScalarAccumulates)
{
    StatGroup group("g");
    Scalar s(&group, "s", "a scalar");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s = 7;
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Stats, VectorIndexingAndTotal)
{
    StatGroup group("g");
    Vector v(&group, "v", "a vector", 4);
    v[0] = 1;
    v[3] = 9;
    EXPECT_DOUBLE_EQ(v.total(), 10.0);
    EXPECT_THROW(v[4], std::out_of_range);
    v.reset();
    EXPECT_DOUBLE_EQ(v.total(), 0.0);
}

TEST(Stats, DistributionBucketsAndMoments)
{
    StatGroup group("g");
    Distribution d(&group, "d", "a distribution", 0, 10, 2);
    d.sample(1);
    d.sample(3);
    d.sample(3);
    d.sample(-5); // underflow
    d.sample(42); // overflow
    EXPECT_EQ(d.numSamples(), 5u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.buckets()[0], 1u); // [0,2)
    EXPECT_EQ(d.buckets()[1], 2u); // [2,4)
    EXPECT_DOUBLE_EQ(d.minSample(), -5.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 42.0);
    EXPECT_NEAR(d.mean(), (1 + 3 + 3 - 5 + 42) / 5.0, 1e-9);
}

TEST(Stats, DistributionWeightedSamples)
{
    StatGroup group("g");
    Distribution d(&group, "d", "weighted", 0, 8, 1);
    d.sample(2, 10);
    EXPECT_EQ(d.numSamples(), 10u);
    EXPECT_EQ(d.buckets()[2], 10u);
}

TEST(Stats, DistributionBadBoundsPanics)
{
    StatGroup group("g");
    EXPECT_THROW(Distribution(&group, "bad", "x", 5, 5, 1), PanicError);
    EXPECT_THROW(Distribution(&group, "bad2", "x", 0, 5, 0), PanicError);
}

TEST(Stats, FormulaComputesOnDemand)
{
    StatGroup group("g");
    Scalar hits(&group, "hits", "h");
    Scalar total(&group, "total", "t");
    Formula rate(&group, "rate", "hit rate", [&] {
        return total.value() > 0 ? hits.value() / total.value() : 0.0;
    });
    EXPECT_EQ(rate.value(), 0.0);
    hits += 3;
    total += 4;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
}

TEST(Stats, DuplicateNamePanics)
{
    StatGroup group("g");
    Scalar a(&group, "x", "first");
    EXPECT_THROW(Scalar(&group, "x", "second"), PanicError);
}

TEST(Stats, OrphanStatPanics)
{
    EXPECT_THROW(Scalar(nullptr, "x", "orphan"), PanicError);
}

TEST(Stats, FindLocatesByName)
{
    StatGroup group("g");
    Scalar a(&group, "alpha", "a");
    EXPECT_EQ(group.find("alpha"), &a);
    EXPECT_EQ(group.find("missing"), nullptr);
}

TEST(Stats, DumpIncludesHierarchy)
{
    StatGroup parent("root");
    StatGroup child("leaf", &parent);
    Scalar a(&parent, "a", "top level");
    Scalar b(&child, "b", "nested");
    a += 1;
    b += 2;
    std::ostringstream os;
    parent.dumpAll(os);
    std::string text = os.str();
    EXPECT_NE(text.find("root.a"), std::string::npos);
    EXPECT_NE(text.find("root.leaf.b"), std::string::npos);
    EXPECT_NE(text.find("# top level"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup parent("root");
    StatGroup child("leaf", &parent);
    Scalar a(&parent, "a", "top");
    Scalar b(&child, "b", "nested");
    a += 5;
    b += 5;
    parent.resetAll();
    EXPECT_EQ(a.value(), 0.0);
    EXPECT_EQ(b.value(), 0.0);
}

TEST(Stats, ChildRemovesItselfOnDestruction)
{
    StatGroup parent("root");
    {
        StatGroup child("leaf", &parent);
        Scalar b(&child, "b", "nested");
    }
    std::ostringstream os;
    parent.dumpAll(os);
    EXPECT_EQ(os.str().find("leaf"), std::string::npos);
}
