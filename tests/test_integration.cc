/**
 * @file
 * Cross-organization integration properties: the orderings and
 * invariants the paper's argument rests on, checked on live
 * simulations rather than single modules.
 */

#include <gtest/gtest.h>

#include "cpu/system.hh"

using namespace nocstar;
using namespace nocstar::cpu;

namespace
{

RunResult
runKind(core::OrgKind kind, const workload::WorkloadSpec &spec,
        unsigned cores, std::uint64_t accesses)
{
    SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    {
        cpu::AppConfig app_config;
        app_config.spec = spec;
        app_config.threads = cores;
        config.apps.push_back(std::move(app_config));
    }
    config.seed = 42;
    System system(config);
    return system.run(accesses);
}

} // namespace

TEST(Integration, L1BehaviourIdenticalAcrossOrganizations)
{
    // The L1 TLBs sit above the organization, so for a fixed seed the
    // demand stream into the L2 must be identical everywhere.
    auto spec = workload::testWorkload();
    auto priv = runKind(core::OrgKind::Private, spec, 8, 4000);
    auto mono = runKind(core::OrgKind::MonolithicMesh, spec, 8, 4000);
    auto nocstar = runKind(core::OrgKind::Nocstar, spec, 8, 4000);
    EXPECT_EQ(priv.l1Misses, mono.l1Misses);
    EXPECT_EQ(priv.l1Misses, nocstar.l1Misses);
}

TEST(Integration, SharedHitRateOrdering)
{
    // Shared organizations see one another's fills; every shared
    // variant must beat private on misses, and the hit *rates* of the
    // shared variants must essentially coincide (same capacity).
    auto spec = workload::testWorkload();
    auto priv = runKind(core::OrgKind::Private, spec, 8, 6000);
    auto mono = runKind(core::OrgKind::MonolithicMesh, spec, 8, 6000);
    auto dist = runKind(core::OrgKind::Distributed, spec, 8, 6000);
    auto nocstar = runKind(core::OrgKind::Nocstar, spec, 8, 6000);

    EXPECT_LT(mono.l2Misses, priv.l2Misses);
    EXPECT_LT(dist.l2Misses, priv.l2Misses);
    EXPECT_LT(nocstar.l2Misses, priv.l2Misses);
    // 920-entry slices sacrifice a little capacity vs 1024 slices.
    EXPECT_NEAR(static_cast<double>(nocstar.l2Misses),
                static_cast<double>(dist.l2Misses),
                0.25 * static_cast<double>(dist.l2Misses) + 50);
}

TEST(Integration, LatencyOrderingMatchesPaper)
{
    // Average L2 access latency: ideal < NOCSTAR < distributed <
    // monolithic (Fig 11a collapsed into the full system).
    auto spec = workload::testWorkload();
    auto mono = runKind(core::OrgKind::MonolithicMesh, spec, 16, 5000);
    auto dist = runKind(core::OrgKind::Distributed, spec, 16, 5000);
    auto nocstar = runKind(core::OrgKind::Nocstar, spec, 16, 5000);
    auto ideal = runKind(core::OrgKind::IdealShared, spec, 16, 5000);

    EXPECT_LT(ideal.avgL2AccessLatency, nocstar.avgL2AccessLatency);
    EXPECT_LT(nocstar.avgL2AccessLatency, dist.avgL2AccessLatency);
    EXPECT_LT(dist.avgL2AccessLatency, mono.avgL2AccessLatency);
}

TEST(Integration, NocstarWithinFractionOfIdeal)
{
    // §I: NOCSTAR comes within ~95 % of the zero-latency-interconnect
    // shared TLB. Allow a little slack at small scale.
    auto spec = workload::testWorkload();
    auto nocstar = runKind(core::OrgKind::Nocstar, spec, 16, 8000);
    auto ideal = runKind(core::OrgKind::IdealShared, spec, 16, 8000);
    EXPECT_GT(ideal.meanCycles / nocstar.meanCycles, 0.90);
}

TEST(Integration, NocstarIdealRemovesContention)
{
    auto spec = workload::testWorkload();
    auto real = runKind(core::OrgKind::Nocstar, spec, 16, 6000);
    auto contention_free =
        runKind(core::OrgKind::NocstarIdeal, spec, 16, 6000);
    // Link contention is gone (only per-tile setup-port queueing can
    // remain), so the ideal fabric is at least as fast and at least
    // as contention-free.
    EXPECT_LE(contention_free.meanCycles, real.meanCycles * 1.005);
    EXPECT_GE(contention_free.fabricNoContention,
              real.fabricNoContention - 1e-9);
}

TEST(Integration, SharedSavesTranslationEnergy)
{
    // Fig 14 right: shared organizations eliminate page walks and the
    // cache/DRAM references they imply.
    auto spec = workload::testWorkload();
    auto priv = runKind(core::OrgKind::Private, spec, 16, 6000);
    auto nocstar = runKind(core::OrgKind::Nocstar, spec, 16, 6000);
    EXPECT_LT(nocstar.energyPj, priv.energyPj);
}

TEST(Integration, EliminationGrowsWithCoreCount)
{
    // Fig 2: the shared TLB removes a larger share of private misses
    // at higher core counts.
    auto spec = workload::findWorkload("graph500");
    double elim[2];
    int i = 0;
    for (unsigned cores : {8u, 32u}) {
        auto priv = runKind(core::OrgKind::Private, spec, cores, 4000);
        auto shared =
            runKind(core::OrgKind::Nocstar, spec, cores, 4000);
        elim[i++] = 1.0 - static_cast<double>(shared.l2Misses) /
                              static_cast<double>(priv.l2Misses);
    }
    EXPECT_GT(elim[1], elim[0]);
    EXPECT_GT(elim[1], 0.5);
}

TEST(Integration, RemoteWalkPollutesRemoteCaches)
{
    // Fig 17: remote-core walks fill PTE lines into other cores' L2s.
    auto spec = workload::testWorkload();
    SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 8;
    config.org.ptwPlacement = core::PtwPlacement::Remote;
    {
        cpu::AppConfig app_config;
        app_config.spec = spec;
        app_config.threads = 8;
        config.apps.push_back(std::move(app_config));
    }
    config.seed = 42;
    System remote(config);
    auto r = remote.run(4000);
    config.org.ptwPlacement = core::PtwPlacement::Requester;
    System requester(config);
    auto q = requester.run(4000);
    EXPECT_GT(r.walks, 0u);
    EXPECT_GE(r.meanCycles, q.meanCycles * 0.95);
}

TEST(Integration, StormHurtsButNocstarStillLeads)
{
    // Fig 19 structure: with the TLB storm, every organization slows
    // down, and NOCSTAR still beats monolithic.
    auto spec = workload::testWorkload();
    SystemConfig base;
    base.org.numCores = 8;
    {
        cpu::AppConfig app_config;
        app_config.spec = spec;
        app_config.threads = 8;
        base.apps.push_back(std::move(app_config));
    }
    base.seed = 42;

    auto run_with = [&](core::OrgKind kind, bool storm) {
        SystemConfig config = base;
        config.org.kind = kind;
        if (storm) {
            config.contextSwitchInterval = 20000;
            config.stormRemapInterval = 4000;
        }
        System system(config);
        return system.run(6000);
    };

    auto nocstar_alone = run_with(core::OrgKind::Nocstar, false);
    auto nocstar_storm = run_with(core::OrgKind::Nocstar, true);
    auto mono_storm = run_with(core::OrgKind::MonolithicMesh, true);

    EXPECT_GT(nocstar_storm.meanCycles, nocstar_alone.meanCycles);
    EXPECT_LT(nocstar_storm.meanCycles, mono_storm.meanCycles);
    EXPECT_GT(nocstar_storm.shootdowns, 0u);
}
