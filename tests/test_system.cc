/**
 * @file
 * Full-system tests: smoke runs of every organization, determinism,
 * SMT and multiprogramming, microbenchmark drivers, and the paper
 * bucketing helper.
 */

#include <gtest/gtest.h>

#include "cpu/system.hh"

using namespace nocstar;
using namespace nocstar::cpu;

namespace
{

SystemConfig
smallConfig(core::OrgKind kind, unsigned cores = 8)
{
    SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    {
        cpu::AppConfig app_config;
        app_config.spec = workload::testWorkload();
        app_config.threads = cores;
        config.apps.push_back(std::move(app_config));
    }
    config.seed = 7;
    return config;
}

} // namespace

class SystemSmokeTest
    : public ::testing::TestWithParam<core::OrgKind>
{};

TEST_P(SystemSmokeTest, RunsToCompletionWithSaneStats)
{
    System system(smallConfig(GetParam()));
    RunResult result = system.run(2000);

    EXPECT_GT(result.cycles, 0u);
    EXPECT_GE(static_cast<double>(result.cycles), result.meanCycles);
    EXPECT_EQ(result.l1Accesses, 8u * 2000u);
    EXPECT_EQ(result.l2Accesses, result.l1Misses);
    EXPECT_EQ(result.l2Hits + result.l2Misses, result.l2Accesses);
    EXPECT_EQ(result.walks, result.l2Misses);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.energyPj, 0.0);
    EXPECT_GE(result.avgL2AccessLatency, 9.0);
    // Bucket fractions sum to ~1.
    double sum = 0;
    for (double b : result.concurrencyBuckets)
        sum += b;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrgs, SystemSmokeTest,
    ::testing::Values(core::OrgKind::Private,
                      core::OrgKind::MonolithicMesh,
                      core::OrgKind::MonolithicSmart,
                      core::OrgKind::Distributed,
                      core::OrgKind::IdealShared,
                      core::OrgKind::Nocstar,
                      core::OrgKind::NocstarIdeal));

TEST(System, DeterministicAcrossRuns)
{
    RunResult a = System(smallConfig(core::OrgKind::Nocstar)).run(3000);
    RunResult b = System(smallConfig(core::OrgKind::Nocstar)).run(3000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

TEST(System, BypassIsScheduleExact)
{
    // The hit-streak bypass must be unobservable: every RunResult
    // field identical with it on (default) and off, for both a
    // private baseline and the fabric organization (whose in-flight
    // L2/walk events exercise the quiet-window check hardest).
    for (core::OrgKind kind :
         {core::OrgKind::Private, core::OrgKind::Nocstar}) {
        SystemConfig off = smallConfig(kind);
        off.stepBypass = false;
        SystemConfig on = smallConfig(kind);
        ASSERT_TRUE(on.stepBypass);
        RunResult a = System(off).run(3000);
        RunResult b = System(on).run(3000);
        EXPECT_EQ(a.cycles, b.cycles);
        EXPECT_DOUBLE_EQ(a.meanCycles, b.meanCycles);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
        EXPECT_EQ(a.appCycles, b.appCycles);
        EXPECT_EQ(a.l1Accesses, b.l1Accesses);
        EXPECT_EQ(a.l1Misses, b.l1Misses);
        EXPECT_EQ(a.l2Accesses, b.l2Accesses);
        EXPECT_EQ(a.l2Hits, b.l2Hits);
        EXPECT_EQ(a.l2Misses, b.l2Misses);
        EXPECT_EQ(a.walks, b.walks);
        EXPECT_DOUBLE_EQ(a.avgL2AccessLatency, b.avgL2AccessLatency);
        EXPECT_DOUBLE_EQ(a.avgWalkLatency, b.avgWalkLatency);
        EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
        EXPECT_DOUBLE_EQ(a.fabricAvgLatency, b.fabricAvgLatency);
        EXPECT_EQ(a.concurrencyBuckets, b.concurrencyBuckets);
    }
}

TEST(System, BypassExactUnderPeriodicEvents)
{
    // Context-switch flushes are the adversarial case for the bypass:
    // overflow-heap events (interval >= wheel size) keep landing in
    // the middle of hit streaks, so the quiet-window check must cut
    // every streak exactly at the flush boundary.
    SystemConfig off = smallConfig(core::OrgKind::Nocstar);
    off.contextSwitchInterval = 5000;
    off.stepBypass = false;
    SystemConfig on = off;
    on.stepBypass = true;
    RunResult a = System(off).run(3000);
    RunResult b = System(on).run(3000);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.walks, b.walks);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

TEST(System, SeedChangesStreams)
{
    SystemConfig config = smallConfig(core::OrgKind::Private);
    RunResult a = System(config).run(3000);
    config.seed = 8;
    RunResult b = System(config).run(3000);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(System, SharedOrgEliminatesMisses)
{
    RunResult priv =
        System(smallConfig(core::OrgKind::Private)).run(6000);
    RunResult nocstar =
        System(smallConfig(core::OrgKind::Nocstar)).run(6000);
    EXPECT_EQ(priv.l1Misses, nocstar.l1Misses);
    EXPECT_LT(nocstar.l2Misses, priv.l2Misses);
}

TEST(System, IdealSharedBeatsDistributed)
{
    RunResult dist =
        System(smallConfig(core::OrgKind::Distributed)).run(6000);
    RunResult ideal =
        System(smallConfig(core::OrgKind::IdealShared)).run(6000);
    EXPECT_LT(ideal.meanCycles, dist.meanCycles);
}

TEST(System, NocstarReportsFabricStats)
{
    RunResult r = System(smallConfig(core::OrgKind::Nocstar)).run(4000);
    EXPECT_GT(r.fabricAvgLatency, 1.0);
    EXPECT_LT(r.fabricAvgLatency, 6.0);
    EXPECT_GT(r.fabricNoContention, 0.5);
    RunResult p = System(smallConfig(core::OrgKind::Private)).run(1000);
    EXPECT_EQ(p.fabricAvgLatency, 0.0);
}

TEST(System, SmtMultipliesThreads)
{
    SystemConfig config = smallConfig(core::OrgKind::Private, 4);
    config.apps[0].threads = 8; // 2 threads per core
    config.smtPerCore = 2;
    System system(config);
    RunResult r = system.run(1000);
    EXPECT_EQ(r.l1Accesses, 8000u);
}

TEST(System, TooManyThreadsIsFatal)
{
    SystemConfig config = smallConfig(core::OrgKind::Private, 4);
    config.apps[0].threads = 8;
    config.smtPerCore = 1;
    EXPECT_THROW(System system(config), FatalError);
}

TEST(System, MultiprogrammedAppsTrackSeparateIpc)
{
    SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 8;
    {
        cpu::AppConfig app_config;
        app_config.spec = workload::testWorkload();
        app_config.threads = 4;
        config.apps.push_back(std::move(app_config));
    }
    auto second = workload::testWorkload();
    second.warmFraction = 0.3;
    {
        cpu::AppConfig app_config;
        app_config.spec = second;
        app_config.threads = 4;
        config.apps.push_back(std::move(app_config));
    }
    config.seed = 3;
    System system(config);
    RunResult r = system.run(2000);
    ASSERT_EQ(r.appCycles.size(), 2u);
    ASSERT_EQ(r.appIpc.size(), 2u);
    EXPECT_GT(r.appIpc[0], 0.0);
    EXPECT_GT(r.appIpc[1], 0.0);
}

TEST(System, HotspotSliceConcentratesTraffic)
{
    SystemConfig config = smallConfig(core::OrgKind::Nocstar);
    config.hotspotSlice = 3;
    System system(config);
    RunResult r = system.run(2000);
    // Per-slice concurrency must pile up relative to the spread case.
    RunResult spread =
        System(smallConfig(core::OrgKind::Nocstar)).run(2000);
    EXPECT_GT(r.sliceConcurrencyBuckets.back() +
                  r.sliceConcurrencyBuckets[1],
              spread.sliceConcurrencyBuckets.back() +
                  spread.sliceConcurrencyBuckets[1] - 1e-9);
    EXPECT_GT(r.meanCycles, spread.meanCycles);
}

TEST(System, ContextSwitchFlushCausesMisses)
{
    SystemConfig base = smallConfig(core::OrgKind::Nocstar);
    RunResult quiet = System(base).run(4000);
    base.contextSwitchInterval = 3000;
    RunResult flushed = System(base).run(4000);
    EXPECT_GT(flushed.l2Misses, quiet.l2Misses);
    EXPECT_GT(flushed.meanCycles, quiet.meanCycles);
}

TEST(System, StormDriverIssuesShootdowns)
{
    SystemConfig config = smallConfig(core::OrgKind::Nocstar);
    config.stormRemapInterval = 2000;
    config.stormMessagesPerOp = 4;
    System system(config);
    RunResult r = system.run(4000);
    EXPECT_GT(r.shootdowns, 0u);
    EXPECT_GT(r.avgShootdownLatency, 0.0);
}

TEST(System, PaperBucketsBinning)
{
    stats::StatGroup g("g");
    stats::Distribution d(&g, "d", "conc", 1, 513, 1);
    d.sample(1, 40); // bucket "1"
    d.sample(3, 30); // bucket "2-4"
    d.sample(7, 20); // bucket "5-8"
    d.sample(29, 5); // bucket "29+"
    d.sample(600, 5); // overflow -> "29+"
    auto bins = System::paperBuckets(d);
    ASSERT_EQ(bins.size(), 9u);
    EXPECT_NEAR(bins[0], 0.40, 1e-9);
    EXPECT_NEAR(bins[1], 0.30, 1e-9);
    EXPECT_NEAR(bins[2], 0.20, 1e-9);
    EXPECT_NEAR(bins[8], 0.10, 1e-9);
}

TEST(System, NoAppsIsFatal)
{
    SystemConfig config;
    config.org.numCores = 4;
    EXPECT_THROW(System system(config), FatalError);
}

TEST(System, SuperpagesReduceL1Misses)
{
    SystemConfig on = smallConfig(core::OrgKind::Private);
    SystemConfig off = smallConfig(core::OrgKind::Private);
    off.superpages = false;
    RunResult with_sp = System(on).run(4000);
    RunResult without_sp = System(off).run(4000);
    EXPECT_LT(with_sp.l1Misses, without_sp.l1Misses);
}
