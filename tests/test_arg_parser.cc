/**
 * @file
 * The bench command-line parser: typed stores, --opt value and
 * --opt=value spellings, flags, optional-value options, positionals,
 * error collection (unknown options, garbage values, missing required
 * arguments) and usage generation.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "bench/arg_parser.hh"

using namespace nocstar::bench;

namespace
{

/** argv builder: parse() wants a mutable char** shaped like main's. */
struct Argv
{
    std::vector<std::string> storage;
    std::vector<char *> ptrs;

    explicit Argv(std::initializer_list<const char *> args)
    {
        storage.emplace_back("prog");
        for (const char *a : args)
            storage.emplace_back(a);
        for (std::string &s : storage)
            ptrs.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs.size()); }
    char **argv() { return ptrs.data(); }
};

} // namespace

TEST(ParseUnsigned, AcceptsNumbersRejectsGarbage)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseUnsigned("12345", v));
    EXPECT_EQ(v, 12345u);
    EXPECT_TRUE(parseUnsigned("0", v));
    EXPECT_FALSE(parseUnsigned("", v));
    EXPECT_FALSE(parseUnsigned("12abc", v));
    EXPECT_FALSE(parseUnsigned("abc", v));
    EXPECT_FALSE(parseUnsigned("-5", v));
    EXPECT_FALSE(parseUnsigned("99999999999999999999999", v));
}

TEST(ParseDouble, AcceptsNumbersRejectsGarbage)
{
    double v = 0;
    EXPECT_TRUE(parseDouble("0.25", v));
    EXPECT_DOUBLE_EQ(v, 0.25);
    EXPECT_TRUE(parseDouble("-1.5", v));
    EXPECT_FALSE(parseDouble("", v));
    EXPECT_FALSE(parseDouble("1.5x", v));
    EXPECT_FALSE(parseDouble("x", v));
}

TEST(ArgParser, BothOptionSpellingsWork)
{
    std::uint64_t n = 0;
    double x = 0;
    std::string s;
    ArgParser parser("t", "");
    parser.option("num", &n, "").option("rate", &x, "")
        .option("file", &s, "");
    Argv a{"--num", "7", "--rate=0.5", "--file", "out.json"};
    EXPECT_TRUE(parser.parse(a.argc(), a.argv()));
    EXPECT_EQ(n, 7u);
    EXPECT_DOUBLE_EQ(x, 0.5);
    EXPECT_EQ(s, "out.json");
    EXPECT_TRUE(parser.seen("num"));
    EXPECT_FALSE(parser.seen("nope"));
}

TEST(ArgParser, FlagsAndOptionalValues)
{
    bool flag = false;
    bool bare = false;
    std::string value;
    ArgParser parser("t", "");
    parser.flag("verbose", &flag, "");
    parser.optionalValue(
        "trace", [&bare] { bare = true; },
        [&value](const std::string &v) {
            value = v;
            return true;
        },
        "");
    Argv a{"--verbose", "--trace"};
    EXPECT_TRUE(parser.parse(a.argc(), a.argv()));
    EXPECT_TRUE(flag);
    EXPECT_TRUE(bare);
    EXPECT_TRUE(value.empty());

    ArgParser parser2("t", "");
    parser2.optionalValue(
        "trace", [] {},
        [&value](const std::string &v) {
            value = v;
            return true;
        },
        "");
    Argv b{"--trace=fabric,walk"};
    EXPECT_TRUE(parser2.parse(b.argc(), b.argv()));
    EXPECT_EQ(value, "fabric,walk");
}

TEST(ArgParser, OptionalValueNeverEatsNextArgument)
{
    bool bare = false;
    std::uint64_t pos = 0;
    ArgParser parser("t", "");
    parser.optionalValue(
        "trace", [&bare] { bare = true; },
        [](const std::string &) { return true; }, "");
    parser.positional("N", &pos, "");
    Argv a{"--trace", "42"};
    EXPECT_TRUE(parser.parse(a.argc(), a.argv()));
    EXPECT_TRUE(bare);
    EXPECT_EQ(pos, 42u); // went to the positional, not --trace
}

TEST(ArgParser, PositionalsFillInOrder)
{
    std::string name;
    std::uint64_t count = 99;
    ArgParser parser("t", "");
    parser.positional("NAME", &name, "");
    parser.positional("COUNT", &count, "");
    Argv a{"gups", "123"};
    EXPECT_TRUE(parser.parse(a.argc(), a.argv()));
    EXPECT_EQ(name, "gups");
    EXPECT_EQ(count, 123u);

    // Absent optional positionals keep their defaults.
    std::uint64_t untouched = 7;
    ArgParser parser2("t", "");
    parser2.positional("N", &untouched, "");
    Argv b{};
    EXPECT_TRUE(parser2.parse(b.argc(), b.argv()));
    EXPECT_EQ(untouched, 7u);
}

TEST(ArgParser, CollectsEveryError)
{
    std::uint64_t n = 0;
    ArgParser parser("t", "");
    parser.option("num", &n, "");
    Argv a{"--num", "abc", "--bogus", "extra", "-x"};
    EXPECT_FALSE(parser.parse(a.argc(), a.argv()));
    ASSERT_EQ(parser.errors().size(), 4u);
    EXPECT_NE(parser.errors()[0].find("invalid value 'abc'"),
              std::string::npos);
    EXPECT_NE(parser.errors()[1].find("unknown option --bogus"),
              std::string::npos);
    EXPECT_NE(parser.errors()[2].find("unexpected argument 'extra'"),
              std::string::npos);
    EXPECT_NE(parser.errors()[3].find("unknown option -x"),
              std::string::npos);
}

TEST(ArgParser, MissingValueAndRequiredPositional)
{
    std::uint64_t n = 0;
    std::string req;
    ArgParser parser("t", "");
    parser.option("num", &n, "");
    parser.positional("REQ", &req, "", /*required=*/true);
    Argv a{"--num"};
    EXPECT_FALSE(parser.parse(a.argc(), a.argv()));
    ASSERT_EQ(parser.errors().size(), 2u);
    EXPECT_NE(parser.errors()[0].find("--num needs a value"),
              std::string::npos);
    EXPECT_NE(parser.errors()[1].find("missing required argument REQ"),
              std::string::npos);
}

TEST(ArgParser, UnsignedOptionRejectsOverflowAndNegatives)
{
    unsigned n = 1;
    ArgParser parser("t", "");
    parser.option("num", &n, "");
    Argv a{"--num=4294967296"}; // 2^32: too wide for unsigned
    EXPECT_FALSE(parser.parse(a.argc(), a.argv()));

    unsigned m = 1;
    ArgParser parser2("t", "");
    parser2.option("num", &m, "");
    Argv b{"--num=-3"};
    EXPECT_FALSE(parser2.parse(b.argc(), b.argv()));
    EXPECT_EQ(m, 1u);
}

TEST(ArgParser, CustomStoreValidates)
{
    std::string mode;
    ArgParser parser("t", "");
    parser.option(
        "mode",
        [&mode](const std::string &v) {
            if (v != "fast" && v != "slow")
                return false;
            mode = v;
            return true;
        },
        "");
    Argv bad{"--mode=medium"};
    EXPECT_FALSE(parser.parse(bad.argc(), bad.argv()));

    ArgParser parser2("t", "");
    parser2.option(
        "mode",
        [&mode](const std::string &v) {
            if (v != "fast" && v != "slow")
                return false;
            mode = v;
            return true;
        },
        "");
    Argv good{"--mode=fast"};
    EXPECT_TRUE(parser2.parse(good.argc(), good.argv()));
    EXPECT_EQ(mode, "fast");
}

TEST(ArgParser, HelpIsDetectedAndUsageListsEverything)
{
    std::uint64_t n = 0;
    bool f = false;
    ArgParser parser("mybench", "does things");
    parser.positional("ACCESSES", &n, "accesses per thread");
    parser.option("jobs", &n, "worker count");
    parser.flag("fast", &f, "skip the slow part");
    Argv a{"--help"};
    EXPECT_TRUE(parser.parse(a.argc(), a.argv()));
    EXPECT_TRUE(parser.helpRequested());

    std::ostringstream usage;
    parser.printUsage(usage);
    std::string text = usage.str();
    EXPECT_NE(text.find("usage: mybench [options] [ACCESSES]"),
              std::string::npos);
    EXPECT_NE(text.find("does things"), std::string::npos);
    EXPECT_NE(text.find("--jobs N"), std::string::npos);
    EXPECT_NE(text.find("--fast"), std::string::npos);
    EXPECT_NE(text.find("accesses per thread"), std::string::npos);
    EXPECT_NE(text.find("--help"), std::string::npos);
}

TEST(ArgParser, FlagRejectsAttachedValue)
{
    bool f = false;
    ArgParser parser("t", "");
    parser.flag("fast", &f, "");
    Argv a{"--fast=1"};
    EXPECT_FALSE(parser.parse(a.argc(), a.argv()));
    EXPECT_FALSE(f);
}
