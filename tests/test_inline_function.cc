/**
 * @file
 * Unit tests for InlineFunction, the fixed-capacity move-only callable
 * used for every continuation on the per-access hot path.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/inline_function.hh"

using namespace nocstar;

namespace
{

/** Counts live instances so tests can observe destruction/relocation. */
struct Tracker
{
    static int live;
    static int moves;

    Tracker() { ++live; }
    Tracker(Tracker &&) noexcept
    {
        ++live;
        ++moves;
    }
    Tracker(const Tracker &) { ++live; }
    ~Tracker() { --live; }

    static void
    reset()
    {
        live = 0;
        moves = 0;
    }
};

int Tracker::live = 0;
int Tracker::moves = 0;

} // namespace

TEST(InlineFunction, DefaultIsEmpty)
{
    InlineFunction<int(int)> fn;
    EXPECT_FALSE(fn);
    EXPECT_TRUE(fn == nullptr);

    InlineFunction<int(int)> null_fn(nullptr);
    EXPECT_FALSE(null_fn);
}

TEST(InlineFunction, InvokingEmptyPanics)
{
    // std::function threw std::bad_function_call here; calling through
    // a null pointer instead would be silent UB. Keep the failure
    // diagnosable.
    InlineFunction<void()> fn;
    EXPECT_THROW(fn(), PanicError);

    const InlineFunction<int(int)> cfn(nullptr);
    EXPECT_THROW(cfn(3), PanicError);

    InlineFunction<int()> moved_from = [] { return 1; };
    InlineFunction<int()> sink = std::move(moved_from);
    EXPECT_THROW(moved_from(), // NOLINT(bugprone-use-after-move)
                 PanicError);
    EXPECT_EQ(sink(), 1);
}

TEST(InlineFunction, InvokesWithArgumentsAndReturn)
{
    InlineFunction<int(int, int)> add = [](int a, int b) {
        return a + b;
    };
    ASSERT_TRUE(add);
    EXPECT_EQ(add(2, 3), 5);
    EXPECT_NE(add, nullptr);
}

TEST(InlineFunction, ConstInvocation)
{
    const InlineFunction<int()> fn = [] { return 17; };
    EXPECT_EQ(fn(), 17);
}

TEST(InlineFunction, CaptureFillsWholeBufferAtTheBoundary)
{
    // A capture block of exactly Capacity bytes must be accepted (one
    // byte more is a static_assert, i.e. a compile error, so the
    // boundary itself is the largest testable case).
    constexpr std::size_t cap = 64;
    struct Exact
    {
        unsigned char bytes[cap];
    };
    static_assert(sizeof(Exact) == cap);

    Exact block;
    for (std::size_t i = 0; i < cap; ++i)
        block.bytes[i] = static_cast<unsigned char>(i * 3 + 1);

    InlineFunction<unsigned(std::size_t), cap> fn =
        [block](std::size_t i) {
            return static_cast<unsigned>(block.bytes[i]);
        };
    EXPECT_EQ(fn.capacity(), cap);
    for (std::size_t i = 0; i < cap; ++i)
        EXPECT_EQ(fn(i), static_cast<unsigned>(i * 3 + 1));
}

TEST(InlineFunction, AcceptsMoveOnlyCallables)
{
    auto value = std::make_unique<int>(99);
    InlineFunction<int()> fn = [v = std::move(value)] { return *v; };
    EXPECT_EQ(fn(), 99);
    // std::function would reject this capture outright (copyable
    // target requirement); here moving is part of the contract.
    InlineFunction<int()> moved = std::move(fn);
    EXPECT_EQ(moved(), 99);
}

TEST(InlineFunction, MoveTransfersAndEmptiesSource)
{
    InlineFunction<int()> a = [] { return 7; };
    InlineFunction<int()> b = std::move(a);

    EXPECT_FALSE(a); // NOLINT(bugprone-use-after-move): documented
    ASSERT_TRUE(b);
    EXPECT_EQ(b(), 7);

    InlineFunction<int()> c;
    c = std::move(b);
    EXPECT_FALSE(b); // NOLINT(bugprone-use-after-move)
    EXPECT_EQ(c(), 7);
}

TEST(InlineFunction, MoveRelocatesCaptureExactlyOnce)
{
    Tracker::reset();
    {
        InlineFunction<void()> fn = [t = Tracker{}] { (void)t; };
        EXPECT_EQ(Tracker::live, 1);
        int moves_before = Tracker::moves;

        InlineFunction<void()> other = std::move(fn);
        EXPECT_EQ(Tracker::live, 1);
        EXPECT_EQ(Tracker::moves, moves_before + 1);
    }
    EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFunction, ResetAndNullAssignmentDestroyCapture)
{
    Tracker::reset();
    InlineFunction<void()> fn = [t = Tracker{}] { (void)t; };
    EXPECT_EQ(Tracker::live, 1);
    fn.reset();
    EXPECT_EQ(Tracker::live, 0);
    EXPECT_FALSE(fn);

    fn = [t = Tracker{}] { (void)t; };
    EXPECT_EQ(Tracker::live, 1);
    fn = nullptr;
    EXPECT_EQ(Tracker::live, 0);
}

TEST(InlineFunction, ReassignmentReplacesCallable)
{
    InlineFunction<int()> fn = [] { return 1; };
    fn = [] { return 2; };
    EXPECT_EQ(fn(), 2);
}

TEST(InlineFunction, SelfRescheduleFromInsideCallback)
{
    // A pooled lambda event releases itself before running its
    // callback, so the callback may immediately schedule again through
    // the same pool -- the pattern every step/retry loop relies on.
    EventQueue queue;
    std::size_t count = 0;
    struct Chain
    {
        EventQueue *q;
        std::size_t *count;
        void
        operator()() const
        {
            ++*count;
            if (*count < 4)
                q->scheduleLambda(q->curCycle() + 2, Chain{*this});
        }
    };
    queue.scheduleLambda(1, Chain{&queue, &count});
    queue.run();
    EXPECT_EQ(count, 4u);
    // Steady-state: the chain reused one pooled event, not four.
    EXPECT_EQ(queue.allocatedLambdaEvents(), queue.freeLambdaEvents());
    EXPECT_LE(queue.allocatedLambdaEvents(), 2u);
}

TEST(InlineFunction, NestedInlineFunctionsMoveThroughLayers)
{
    // Continuations own nested continuations by value, exactly like
    // the fabric -> organization -> system callback chain.
    InlineFunction<int(int)> inner = [](int x) { return x * 2; };
    InlineFunction<int(int), 96> outer =
        [inner = std::move(inner)](int x) mutable {
            return inner(x) + 1;
        };
    InlineFunction<int(int), 160> outermost =
        [outer = std::move(outer)](int x) mutable {
            return outer(x) + 10;
        };
    EXPECT_EQ(outermost(5), 21);
}
