/**
 * @file
 * Quickstart: build a 16-core Haswell-like system with a NOCSTAR
 * shared last-level TLB, run the graph500 workload model, and print
 * the headline numbers plus a full statistics dump.
 *
 *   ./examples/quickstart [workload] [accesses-per-thread]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench/arg_parser.hh"
#include "cpu/system.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    std::string name = "graph500";
    std::uint64_t accesses = 20000;
    bench::ArgParser parser(
        "quickstart",
        "16-core NOCSTAR system running one workload model");
    parser.positional("WORKLOAD", &name,
                      "workload name (default graph500)");
    parser.positional("ACCESSES", &accesses,
                      "accesses per thread (default 20000)");
    parser.parseOrExit(argc, argv);

    // 1. Pick a workload model (the 11 paper workloads are built in).
    const workload::WorkloadSpec &spec = workload::findWorkload(name);

    // 2. Describe the machine: 16 cores, one thread per core, NOCSTAR
    //    organization with its 920-entry area-normalized slices over
    //    the single-cycle circuit-switched fabric.
    cpu::SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 16;
    {
        cpu::AppConfig app_config;
        app_config.spec = spec;
        app_config.threads = 16;
        config.apps.push_back(std::move(app_config));
    }
    config.seed = 1;

    // 3. Run, and compare against the private-L2-TLB baseline.
    cpu::System nocstar_system(config);
    cpu::RunResult nocstar = nocstar_system.run(accesses);

    config.org.kind = core::OrgKind::Private;
    cpu::System private_system(config);
    cpu::RunResult baseline = private_system.run(accesses);

    std::printf("workload            : %s\n", spec.name.c_str());
    std::printf("cores               : %u\n", config.org.numCores);
    std::printf("accesses per thread : %llu\n",
                static_cast<unsigned long long>(accesses));
    std::printf("\n%-28s %14s %14s\n", "", "private", "nocstar");
    std::printf("%-28s %14.0f %14.0f\n", "mean thread cycles",
                baseline.meanCycles, nocstar.meanCycles);
    std::printf("%-28s %14llu %14llu\n", "L2 TLB misses (walks)",
                static_cast<unsigned long long>(baseline.l2Misses),
                static_cast<unsigned long long>(nocstar.l2Misses));
    std::printf("%-28s %14.1f %14.1f\n", "avg L2 access latency",
                baseline.avgL2AccessLatency,
                nocstar.avgL2AccessLatency);
    std::printf("%-28s %14.2f %14.2f\n", "translation energy (uJ)",
                baseline.energyPj * 1e-6, nocstar.energyPj * 1e-6);
    std::printf("\nspeedup             : %.3fx\n",
                baseline.meanCycles / nocstar.meanCycles);
    std::printf("misses eliminated   : %.1f %%\n",
                100.0 * (1.0 - static_cast<double>(nocstar.l2Misses) /
                                   static_cast<double>(
                                       baseline.l2Misses)));
    std::printf("fabric avg latency  : %.2f cycles "
                "(%.0f %% messages contention-free)\n",
                nocstar.fabricAvgLatency,
                100.0 * nocstar.fabricNoContention);

    std::printf("\n--- full statistics dump (nocstar run) ---\n");
    nocstar_system.dumpAll(std::cout);
    return 0;
}
