/**
 * @file
 * Architecture design study: evaluate all last-level TLB organizations
 * on one workload across core counts, printing the paper's key
 * metrics side by side -- the kind of sweep an architect would run
 * before committing to a TLB organization.
 *
 *   ./examples/design_space_study [workload] [accesses-per-thread]
 */

#include <cstdio>
#include <cstdlib>

#include "bench/arg_parser.hh"
#include "cpu/system.hh"

using namespace nocstar;

namespace
{

cpu::RunResult
run(core::OrgKind kind, unsigned cores,
    const workload::WorkloadSpec &spec, std::uint64_t accesses)
{
    cpu::SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    config.org.banks = cores >= 64 ? 8 : 4;
    {
        cpu::AppConfig app_config;
        app_config.spec = spec;
        app_config.threads = cores;
        config.apps.push_back(std::move(app_config));
    }
    config.seed = 21;
    cpu::System system(config);
    return system.run(accesses);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = "xsbench";
    std::uint64_t base_accesses = 10000;
    bench::ArgParser parser(
        "design_space_study",
        "all organizations at 16/32/64 cores for one workload");
    parser.positional("WORKLOAD", &name,
                      "workload name (default xsbench)");
    parser.positional("ACCESSES", &base_accesses,
                      "base accesses per thread (default 10000)");
    parser.parseOrExit(argc, argv);
    const workload::WorkloadSpec &spec = workload::findWorkload(name);

    const core::OrgKind kinds[] = {
        core::OrgKind::Private, core::OrgKind::MonolithicMesh,
        core::OrgKind::MonolithicSmart, core::OrgKind::Distributed,
        core::OrgKind::Nocstar, core::OrgKind::NocstarIdeal,
        core::OrgKind::IdealShared};

    std::printf("Design study: workload %s\n\n", spec.name.c_str());
    for (unsigned cores : {16u, 32u, 64u}) {
        std::uint64_t accesses = base_accesses * 16 / cores + 2000;
        std::printf("--- %u cores ---\n", cores);
        std::printf("%-18s %9s %9s %9s %10s %10s\n", "organization",
                    "speedup", "l2miss%", "lat(cyc)", "walks",
                    "energy(uJ)");
        cpu::RunResult baseline;
        for (core::OrgKind kind : kinds) {
            cpu::RunResult result = run(kind, cores, spec, accesses);
            if (kind == core::OrgKind::Private)
                baseline = result;
            std::printf("%-18s %9.3f %9.2f %9.1f %10llu %10.2f\n",
                        core::orgKindName(kind),
                        baseline.meanCycles / result.meanCycles,
                        100.0 * result.l2MissRate,
                        result.avgL2AccessLatency,
                        static_cast<unsigned long long>(result.walks),
                        result.energyPj * 1e-6);
        }
        std::printf("\n");
    }
    return 0;
}
