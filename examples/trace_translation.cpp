/**
 * @file
 * Observability walkthrough: runs a 16-core NOCSTAR system with the
 * structured trace recorder and epoch stats snapshots enabled, then
 * writes
 *
 *   trace_translation.json        Chrome trace-event JSON -- open in
 *                                 Perfetto / chrome://tracing to see
 *                                 translation lifecycles, slice
 *                                 occupancy, page walks, fabric link
 *                                 holds and message spans on separate
 *                                 lanes;
 *   trace_translation_stats.json  the machine-readable stats document
 *                                 (epoch snapshots + final tree).
 *
 * Also demonstrates the debug-print flags (TRACE lines for the first
 * few cycles) and the per-link occupancy heatmap.
 *
 * Exits nonzero unless the captured trace actually contains
 * translation spans and fabric link spans, so CI can run this as a
 * smoke test of the whole observability layer. A second leg re-runs
 * the system on the sharded window engine (--shards 2 equivalent)
 * with counter sampling on and requires shard-phase spans (phase A /
 * B1 / B2) and counter-track samples in the capture.
 */

#include <cstdio>
#include <iostream>

#include "bench/bench_common.hh"
#include "core/nocstar_org.hh"
#include "cpu/system.hh"
#include "sim/trace.hh"
#include "sim/trace_recorder.hh"
#include "workload/spec.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    bench::ArgParser parser(
        "trace_translation",
        "structured-event capture demo: Chrome trace + link heatmap");
    parser.parseOrExit(argc, argv);

    // 1. Turn on structured capture before building the system.
    sim::TraceRecorder::global().start();

    // 2. Configure a small NOCSTAR system: one app, 16 threads on
    //    16 cores, epoch snapshots every 2000 cycles.
    cpu::SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 16;
    cpu::AppConfig app;
    app.spec = workload::paperWorkloads()[0];
    app.threads = 16;
    config.apps.push_back(std::move(app));
    config.seed = 12345;
    config.statsEpochInterval = 2000;
    config.statsJsonPath = "trace_translation_stats.json";

    // Fresh stats file: System::run appends (JSONL across a sweep).
    if (std::FILE *f = std::fopen("trace_translation_stats.json", "w"))
        std::fclose(f);

    cpu::System system(config);
    std::uint64_t accesses = 2000;
    cpu::RunResult result = system.run(accesses);

    // 3. Export the Chrome trace.
    const sim::TraceRecorder &rec = sim::TraceRecorder::global();
    if (!rec.exportChromeJson("trace_translation.json")) {
        std::fprintf(stderr, "cannot write trace_translation.json\n");
        return 1;
    }

    // 4. Count what was captured, per lane.
    std::uint64_t per_lane[sim::numLanes] = {};
    for (const auto &r : rec.snapshot())
        ++per_lane[static_cast<unsigned>(r.lane)];

    std::printf("ran %llu cycles, %llu L2 accesses "
                "(%.1f%% L2 hit rate)\n",
                static_cast<unsigned long long>(result.cycles),
                static_cast<unsigned long long>(result.l2Accesses),
                100.0 * (1.0 - result.l2MissRate));
    std::printf("captured %llu trace events (%llu dropped):\n",
                static_cast<unsigned long long>(rec.size()),
                static_cast<unsigned long long>(rec.dropped()));
    for (unsigned l = 0; l < sim::numLanes; ++l)
        std::printf("  %-12s %llu\n",
                    sim::laneName(static_cast<sim::Lane>(l)),
                    static_cast<unsigned long long>(per_lane[l]));
    std::printf("wrote trace_translation.json "
                "(open in Perfetto / chrome://tracing)\n");
    std::printf("wrote trace_translation_stats.json "
                "(epoch snapshots + final stats)\n");

    // 5. The per-link occupancy heatmap from the fabric's vectors.
    if (auto *org = dynamic_cast<core::NocstarOrg *>(
            &system.organization())) {
        const core::Interconnect &fabric = org->fabric();
        double busiest = 0;
        std::uint32_t busiest_link = 0;
        for (std::uint32_t l = 0; l < fabric.linkHoldCycles.size();
             ++l) {
            if (fabric.linkHoldCycles[l] > busiest) {
                busiest = fabric.linkHoldCycles[l];
                busiest_link = l;
            }
        }
        std::printf("busiest link: tile %u dir %u, held %.0f of %llu "
                    "cycles (%.1f%%)\n",
                    busiest_link / 4, busiest_link % 4, busiest,
                    static_cast<unsigned long long>(result.cycles),
                    result.cycles
                        ? 100.0 * busiest /
                              static_cast<double>(result.cycles)
                        : 0.0);
        bench::printLinkHeatmap(std::cout, fabric.topology(),
                                fabric.linkHoldCycles, result.cycles);
    }

    // 6. Debug-print flags: re-run a few translations with TLB and
    //    Fabric lines on, to stderr.
    std::fprintf(stderr, "\n--- TRACE(TLB,Fabric) sample ---\n");
    trace::setFlags("TLB,Fabric");
    cpu::SystemConfig tiny = config;
    tiny.statsEpochInterval = 0;
    tiny.statsJsonPath.clear();
    cpu::System sample(tiny);
    sample.run(2);
    trace::clearFlags();

    bool ok = per_lane[static_cast<unsigned>(
                  sim::Lane::Translation)] > 0 &&
              per_lane[static_cast<unsigned>(sim::Lane::Link)] > 0 &&
              per_lane[static_cast<unsigned>(sim::Lane::Walker)] > 0;
    if (!ok) {
        std::fprintf(stderr,
                     "expected translation, link and walker events in "
                     "the capture\n");
        return 1;
    }

    // 7. Sharded-engine leg: the same system on 2 shards with counter
    //    sampling on must emit window-phase spans on the shard lane
    //    and counter-track samples -- the pieces Perfetto renders as
    //    the engine's phase timeline.
    sim::TraceRecorder::global().clear();
    sim::TraceRecorder::global().start();
    cpu::SystemConfig sharded = config;
    sharded.statsEpochInterval = 0;
    sharded.statsJsonPath.clear();
    sharded.shards = 2;
    sharded.counterInterval = 500;
    cpu::System shardRun(sharded);
    shardRun.run(accesses);
    std::uint64_t shard_events = 0, counter_events = 0;
    for (const auto &r : sim::TraceRecorder::global().snapshot()) {
        shard_events += r.lane == sim::Lane::Shard;
        counter_events += r.lane == sim::Lane::Counter;
    }
    std::printf("sharded leg: %llu shard-phase events, %llu counter "
                "samples\n",
                static_cast<unsigned long long>(shard_events),
                static_cast<unsigned long long>(counter_events));
    if (shard_events == 0 || counter_events == 0) {
        std::fprintf(stderr,
                     "expected shard-phase spans and counter samples "
                     "from the --shards 2 leg\n");
        return 1;
    }
    return 0;
}
