/**
 * @file
 * TLB shootdown scenario: an OS-driven page remap storm (promotions /
 * demotions of 2 MB regions firing inter-processor interrupts and
 * shared-slice invalidations) running against the canneal workload
 * model. Compares the invalidation relay policies of §III-G: direct
 * per-core messages versus invalidation leaders for groups of 4 / 8 /
 * all cores.
 *
 *   ./examples/shootdown_storm [cores] [accesses-per-thread]
 */

#include <cstdio>
#include <cstdlib>

#include "bench/arg_parser.hh"
#include "cpu/system.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    unsigned cores = 32;
    std::uint64_t accesses = 8000;
    bench::ArgParser parser(
        "shootdown_storm",
        "remap-storm shootdown scenario across invalidation-relay "
        "policies");
    parser.positional("CORES", &cores, "core count (default 32)");
    parser.positional("ACCESSES", &accesses,
                      "accesses per thread (default 8000)");
    parser.parseOrExit(argc, argv);

    const auto &spec = workload::findWorkload("canneal");

    std::printf("Shootdown storm on %u cores (canneal + remap storm)\n",
                cores);
    std::printf("%-10s %12s %14s %16s %12s\n", "policy", "cycles",
                "shootdowns", "avg shoot lat", "slowdown%");

    double quiet_cycles = 0;
    {
        cpu::SystemConfig config;
        config.org.kind = core::OrgKind::Nocstar;
        config.org.numCores = cores;
        {
        cpu::AppConfig app_config;
        app_config.spec = spec;
        app_config.threads = cores;
        config.apps.push_back(std::move(app_config));
    }
        config.seed = 5;
        cpu::System system(config);
        auto result = system.run(accesses);
        quiet_cycles = result.meanCycles;
        std::printf("%-10s %12.0f %14llu %16s %12s\n", "no-storm",
                    result.meanCycles,
                    static_cast<unsigned long long>(result.shootdowns),
                    "-", "-");
    }

    struct Policy
    {
        const char *name;
        unsigned group;
    };
    const Policy policies[] = {
        {"direct", 0}, {"per-4", 4}, {"per-8", 8}, {"per-N", cores}};

    for (const Policy &policy : policies) {
        cpu::SystemConfig config;
        config.org.kind = core::OrgKind::Nocstar;
        config.org.numCores = cores;
        config.org.invalLeaderGroup = policy.group;
        {
        cpu::AppConfig app_config;
        app_config.spec = spec;
        app_config.threads = cores;
        config.apps.push_back(std::move(app_config));
    }
        config.seed = 5;
        config.contextSwitchInterval = 50000;
        config.stormRemapInterval = 3000;
        config.stormMessagesPerOp = 8;
        cpu::System system(config);
        auto result = system.run(accesses);
        std::printf("%-10s %12.0f %14llu %16.1f %12.1f\n", policy.name,
                    result.meanCycles,
                    static_cast<unsigned long long>(result.shootdowns),
                    result.avgShootdownLatency,
                    100.0 * (result.meanCycles / quiet_cycles - 1.0));
    }
    return 0;
}
