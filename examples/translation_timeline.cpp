/**
 * @file
 * Reconstructs the paper's Fig 10: the cycle-by-cycle timeline of a
 * virtual-address translation that misses the L1 TLB and is serviced
 * by a remote NOCSTAR L2 TLB slice. The timeline is driven by a live
 * simulation of a 16-core fabric, so the printed completion cycle is
 * the measured one, not a formula.
 */

#include <cstdio>

#include "bench/arg_parser.hh"
#include "core/nocstar_org.hh"
#include "mem/cache_model.hh"
#include "mem/page_walker.hh"

using namespace nocstar;
using namespace nocstar::core;

int
main(int argc, char **argv)
{
    bench::ArgParser parser(
        "translation_timeline",
        "cycle-by-cycle walkthrough of one NOCSTAR translation");
    parser.parseOrExit(argc, argv);
    EventQueue queue;
    stats::StatGroup root("root");
    mem::PageTable table(0.0, 1);
    mem::CacheModel caches("caches", 16, mem::CacheModelConfig{},
                           &root);

    OrgConfig config;
    config.kind = OrgKind::Nocstar;
    config.numCores = 16;

    OrgContext context;
    context.queue = &queue;
    context.pageTable = &table;
    std::vector<std::unique_ptr<mem::PageTableWalker>> walkers;
    for (CoreId c = 0; c < 16; ++c) {
        walkers.push_back(std::make_unique<mem::PageTableWalker>(
            "walker" + std::to_string(c), c, table, caches,
            mem::WalkerConfig{}, &root));
        context.walkers.push_back(walkers.back().get());
    }
    NocstarOrg org(config, std::move(context), &root);

    // An address homed on slice 1, requested by core 0 (one hop).
    Addr vaddr = Addr{1} << pageShift(PageSize::FourKB);
    org.preloadShared(1, vaddr, table.translate(1, vaddr));

    Cycle completed = 0;
    org.translate(0, 1, vaddr, 0, [&](const TranslationResult &r) {
        completed = r.completedAt;
    });
    queue.run();

    Cycle lookup = org.sliceLatency();
    std::printf("Fig 10: timeline of an L1-miss remote L2 slice access "
                "(core 0 -> slice 1)\n\n");
    std::printf("  cycle %2u  L1 TLB miss detected\n", 0u);
    std::printf("  cycle %2u  path setup: requests to every link "
                "arbiter on the XY path\n", 1u);
    std::printf("  cycle %2u  single-cycle traversal through latchless "
                "switches\n", 2u);
    std::printf("  cycle %2u..%2llu  L2 TLB slice SRAM access "
                "(%llu cycles)\n", 3u,
                static_cast<unsigned long long>(2 + lookup),
                static_cast<unsigned long long>(lookup));
    std::printf("  (response path setup overlaps the lookup, "
                "speculative)\n");
    std::printf("  cycle %2llu  response traversal back to core 0\n",
                static_cast<unsigned long long>(completed));
    std::printf("  cycle %2llu  translation inserted into the L1 TLB\n",
                static_cast<unsigned long long>(completed));
    std::printf("\nmeasured completion: cycle %llu "
                "(paper Fig 10: cycle 13)\n",
                static_cast<unsigned long long>(completed));
    std::printf("fabric network latency: %.1f cycles per message "
                "(setup + traversal)\n",
                org.fabric().averageLatency());
    return completed == 13 ? 0 : 1;
}
