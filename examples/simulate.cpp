/**
 * @file
 * General-purpose simulation driver: every organization and policy
 * knob behind command-line flags, for design exploration without
 * writing code.
 *
 *   ./examples/simulate --org nocstar --cores 32 --workload gups \
 *       --accesses 20000 --smt 2 --prefetch 2 --ptw remote \
 *       --no-superpages --capture trace.txt --stats \
 *       --fault-plan outage.plan
 *
 * Run with --help for the full flag list. Both `--flag value` and
 * `--flag=value` spellings work.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/arg_parser.hh"
#include "bench/bench_common.hh"
#include "cpu/system.hh"
#include "sim/fault.hh"
#include "sim/parallel.hh"
#include "sim/trace_recorder.hh"

using namespace nocstar;

namespace
{

bool
parseOrg(const std::string &name, core::OrgKind &out)
{
    if (name == "private")
        out = core::OrgKind::Private;
    else if (name == "monolithic")
        out = core::OrgKind::MonolithicMesh;
    else if (name == "monolithic-smart")
        out = core::OrgKind::MonolithicSmart;
    else if (name == "distributed")
        out = core::OrgKind::Distributed;
    else if (name == "ideal")
        out = core::OrgKind::IdealShared;
    else if (name == "nocstar")
        out = core::OrgKind::Nocstar;
    else if (name == "nocstar-ideal")
        out = core::OrgKind::NocstarIdeal;
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    cpu::SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 16;
    std::string workload_name = "graph500";
    std::string trace_file;
    std::uint64_t accesses = 20000;
    unsigned threads = 0;
    bool no_superpages = false;
    bool storm = false;
    bool dump_stats = false;
    bool shards_auto = false;
    bool do_trace = false;
    std::string trace_out = "simulate_trace.json";

    bench::ArgParser parser(
        "simulate",
        "single-run simulation driver: every organization and policy "
        "knob behind a flag");
    parser.option(
        "org",
        [&config](const std::string &value) {
            return parseOrg(value, config.org.kind);
        },
        "private | monolithic | monolithic-smart | distributed | "
        "ideal | nocstar | nocstar-ideal (default nocstar)",
        "KIND");
    parser.option("cores", &config.org.numCores,
                  "core count (default 16)");
    parser.option("workload", &workload_name,
                  "one of the 11 paper workloads (default graph500)",
                  "NAME");
    parser.option("accesses", &accesses,
                  "accesses per thread (default 20000)");
    parser.option("threads", &threads, "app threads (default = cores)");
    parser.option("smt", &config.smtPerCore,
                  "SMT slots per core (default 1)");
    parser.option("prefetch", &config.org.prefetchDistance,
                  "TLB prefetch distance 0..3 (default 0)");
    parser.option(
        "ptw",
        [&config](const std::string &value) {
            if (value != "requester" && value != "remote")
                return false;
            config.org.ptwPlacement = value == "remote"
                ? core::PtwPlacement::Remote
                : core::PtwPlacement::Requester;
            return true;
        },
        "requester | remote (default requester)", "WHERE");
    parser.option(
        "acquire",
        [&config](const std::string &value) {
            if (value != "oneway" && value != "roundtrip")
                return false;
            config.org.pathAcquire = value == "roundtrip"
                ? core::PathAcquire::RoundTrip
                : core::PathAcquire::OneWay;
            return true;
        },
        "oneway | roundtrip (default oneway)", "MODE");
    parser.option("hpcmax", &config.org.hpcMax,
                  "fabric hops per cycle (default 16)");
    parser.option(
        "fabric",
        [&config](const std::string &value) {
            if (std::string err =
                    core::parseFabricSpec(value, config.org);
                !err.empty()) {
                std::fprintf(stderr, "simulate: --fabric: %s\n",
                             err.c_str());
                return false;
            }
            return true;
        },
        "flat (default), hier, or hier:WxH cluster geometry "
        "(NOCSTAR orgs only)",
        "KIND");
    parser.option(
        "slice-map",
        [&config](const std::string &value) {
            if (value != "row-major" && value != "cluster-local")
                return false;
            config.org.sliceMapping = value == "cluster-local"
                ? core::SliceMapping::ClusterLocal
                : core::SliceMapping::RowMajor;
            return true;
        },
        "row-major | cluster-local slice placement (default "
        "row-major; cluster-local needs --fabric hier)",
        "MAP");
    parser.option("leaders", &config.org.invalLeaderGroup,
                  "invalidation leader group (default 0)");
    parser.option("fixed-ptw", &config.walker.fixedLatency,
                  "fixed walk latency in cycles (default variable)");
    parser.option("seed", &config.seed, "random seed (default 1)");
    parser.option(
        "shards",
        [&config, &shards_auto](const std::string &value) {
            if (value == "auto") {
                shards_auto = true;
                return true;
            }
            std::uint64_t n = 0;
            if (!bench::parseUnsigned(value, n) || n < 1)
                return false;
            config.shards = static_cast<unsigned>(n);
            return true;
        },
        "run on N >= 1 parallel shards (window engine; byte-identical "
        "results at every N), or 'auto' to pick N from the core count "
        "and host hardware", "N");
    parser.option(
        "hotspot",
        [&config](const std::string &value) {
            std::uint64_t slice;
            if (!bench::parseUnsigned(value, slice))
                return false;
            config.hotspotSlice = static_cast<int>(slice);
            return true;
        },
        "warp a fraction of all traffic onto one slice", "SLICE");
    parser.option("replay", &trace_file, "replay a captured trace",
                  "FILE");
    parser.option("capture", &config.captureTracePath,
                  "capture the address trace to FILE", "FILE");
    parser.flag("trace", &do_trace,
                "record structured events (Chrome/Perfetto JSON)");
    parser.option(
        "trace-out",
        [&do_trace, &trace_out](const std::string &file) {
            do_trace = true;
            trace_out = file;
            return true;
        },
        "trace JSON destination (default simulate_trace.json; "
        "implies --trace)",
        "FILE");
    parser.option(
        "counters",
        [&config](const std::string &value) {
            std::uint64_t n = 0;
            if (!bench::parseUnsigned(value, n))
                return false;
            config.counterInterval = n;
            return true;
        },
        "sample Perfetto counter tracks every N cycles "
        "(needs --trace)",
        "N");
    parser.optionalValue(
        "progress", [&config] { config.progressSeconds = 2.0; },
        [&config](const std::string &value) {
            char *end = nullptr;
            double s = std::strtod(value.c_str(), &end);
            if (!end || *end != '\0' || s < 0)
                return false;
            config.progressSeconds = s;
            return true;
        },
        "print a heartbeat line to stderr every SECONDS "
        "(default 2; =0 emits at every check)",
        "SECONDS");
    parser.optionalValue(
        "lat-hist", [&config] { config.latencyStats = true; },
        [&config](const std::string &mode) {
            if (mode != "ctx")
                return false;
            config.latencyStats = true;
            config.latencyPerContext = true;
            return true;
        },
        "record per-class translation-latency histograms "
        "(=ctx adds a per-context split)",
        "ctx");
    parser.flag("no-superpages", &no_superpages, "4 KB pages only");
    parser.flag("storm", &storm,
                "enable the TLB-storm microbenchmark");
    parser.option(
        "fault-plan",
        [&config](const std::string &file) {
            try {
                config.org.faults = sim::FaultPlan::parseFile(file);
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return false;
            }
            return true;
        },
        "inject faults per this plan file (see docs)", "FILE");
    parser.option("fault-seed", &config.org.faults.seed,
                  "override the fault plan's random seed");
    parser.option(
        "sample",
        [&config](const std::string &spec) {
            if (!bench::parseSampleSpec(spec, config.sampling)) {
                std::fprintf(
                    stderr,
                    "simulate: --sample expects "
                    "WINDOWS,DETAIL[,FF[,WARMUP]] (got '%s')\n",
                    spec.c_str());
                return false;
            }
            return true;
        },
        "SMARTS-style sampled simulation: WINDOWS detail windows of "
        "DETAIL accesses/thread, fast-forwarding ~FF accesses/thread "
        "between them (0 = derive from --accesses) after WARMUP "
        "functional warming",
        "SPEC");
    parser.option("checkpoint", &config.checkpointSavePath,
                  "save a checkpoint of the warmed state to FILE, "
                  "then keep running",
                  "FILE");
    parser.option("restore", &config.checkpointRestorePath,
                  "restore warmed state from FILE instead of "
                  "re-warming (config fingerprint must match)",
                  "FILE");
    parser.flag("stats", &dump_stats, "dump the full statistics tree");
    parser.parseOrExit(argc, argv);

    if (no_superpages)
        config.superpages = false;
    if (storm) {
        config.contextSwitchInterval = 50000;
        config.stormRemapInterval = 5000;
    }

    if (shards_auto)
        // Resolved after --cores is known; a single run has no sweep
        // jobs competing for the hardware budget.
        config.shards = sim::autoShards(config.org.numCores);

    config.org.banks = config.org.numCores >= 64 ? 8 : 4;
    cpu::AppConfig app{workload::findWorkload(workload_name),
                       threads ? threads : config.org.numCores};
    app.traceFile = trace_file;
    config.apps.push_back(app);

    if (std::vector<std::string> errors = config.validate();
        !errors.empty()) {
        for (const std::string &error : errors)
            std::fprintf(stderr, "simulate: invalid config: %s\n",
                         error.c_str());
        return 2;
    }

    if (do_trace)
        sim::TraceRecorder::global().start();

    cpu::System system(config);
    cpu::RunResult result = system.run(accesses);

    if (do_trace) {
        sim::TraceRecorder &rec = sim::TraceRecorder::global();
        rec.stop();
        if (rec.exportChromeJson(trace_out))
            std::fprintf(stderr,
                         "simulate: wrote %llu trace events to %s "
                         "(%llu dropped)\n",
                         static_cast<unsigned long long>(rec.size()),
                         trace_out.c_str(),
                         static_cast<unsigned long long>(rec.dropped()));
        else
            std::fprintf(stderr, "simulate: cannot write %s\n",
                         trace_out.c_str());
    }

    std::printf("org                 : %s\n",
                core::orgKindName(config.org.kind));
    std::printf("cores / threads     : %u / %u\n", config.org.numCores,
                config.apps[0].threads * config.smtPerCore);
    std::printf("cycles (max / mean) : %llu / %.0f\n",
                static_cast<unsigned long long>(result.cycles),
                result.meanCycles);
    std::printf("chip IPC            : %.3f\n", result.ipc);
    if (result.sampled) {
        std::printf("sampled IPC         : %.3f +/- %.3f (95%% CI, "
                    "%u windows)\n",
                    result.sampledIpcMean, result.sampledIpcCi95,
                    result.sampleWindows);
        std::printf("sampled L2 latency  : %.1f +/- %.1f cycles\n",
                    result.sampledLatencyMean,
                    result.sampledLatencyCi95);
        std::printf("fast-forwarded      : %llu accesses\n",
                    static_cast<unsigned long long>(
                        result.sampledFfAccesses));
    }
    std::printf("L1 miss rate        : %.2f %%\n",
                100.0 * static_cast<double>(result.l1Misses) /
                    static_cast<double>(result.l1Accesses));
    std::printf("L2 miss rate        : %.2f %%\n",
                100.0 * result.l2MissRate);
    std::printf("avg L2 latency      : %.1f cycles\n",
                result.avgL2AccessLatency);
    std::printf("page walks          : %llu (avg %.1f cycles)\n",
                static_cast<unsigned long long>(result.walks),
                result.avgWalkLatency);
    std::printf("translation energy  : %.2f uJ\n",
                result.energyPj * 1e-6);
    if (result.fabricAvgLatency > 0)
        std::printf("fabric latency      : %.2f cycles (%.0f %% "
                    "contention-free)\n",
                    result.fabricAvgLatency,
                    100.0 * result.fabricNoContention);
    if (result.shootdowns)
        std::printf("shootdowns          : %llu (avg %.1f cycles)\n",
                    static_cast<unsigned long long>(result.shootdowns),
                    result.avgShootdownLatency);
    if (!config.org.faults.empty())
        std::printf("faults              : %llu injected, %llu "
                    "degraded msgs (%.2f %%), %llu ECC rewalks\n",
                    static_cast<unsigned long long>(
                        result.faultsInjected),
                    static_cast<unsigned long long>(
                        result.degradedMessages),
                    100.0 * result.degradedFraction,
                    static_cast<unsigned long long>(result.eccRewalks));

    if (dump_stats) {
        std::printf("\n--- statistics ---\n");
        system.dumpAll(std::cout);
    }
    return 0;
}
