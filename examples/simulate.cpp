/**
 * @file
 * General-purpose simulation driver: every organization and policy
 * knob behind command-line flags, for design exploration without
 * writing code.
 *
 *   ./examples/simulate --org=nocstar --cores=32 --workload=gups \
 *       --accesses=20000 --smt=2 --prefetch=2 --ptw=remote \
 *       --no-superpages --capture=trace.txt --stats
 *
 * Run with --help for the full flag list.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "cpu/system.hh"

using namespace nocstar;

namespace
{

[[noreturn]] void
usage()
{
    std::printf(
        "usage: simulate [flags]\n"
        "  --org=KIND        private | monolithic | monolithic-smart |\n"
        "                    distributed | ideal | nocstar |\n"
        "                    nocstar-ideal (default nocstar)\n"
        "  --cores=N         core count (default 16)\n"
        "  --workload=NAME   one of the 11 paper workloads "
        "(default graph500)\n"
        "  --accesses=N      accesses per thread (default 20000)\n"
        "  --threads=N       app threads (default = cores)\n"
        "  --smt=N           SMT slots per core (default 1)\n"
        "  --prefetch=N      TLB prefetch distance 0..3 (default 0)\n"
        "  --ptw=WHERE       requester | remote (default requester)\n"
        "  --acquire=MODE    oneway | roundtrip (default oneway)\n"
        "  --hpcmax=N        fabric hops per cycle (default 16)\n"
        "  --leaders=N       invalidation leader group (default 0)\n"
        "  --fixed-ptw=N     fixed walk latency in cycles (default "
        "variable)\n"
        "  --seed=N          random seed (default 1)\n"
        "  --no-superpages   4 KB pages only\n"
        "  --storm           enable the TLB-storm microbenchmark\n"
        "  --hotspot=SLICE   warp all traffic onto one slice\n"
        "  --trace=FILE      replay a captured trace\n"
        "  --capture=FILE    capture the address trace to FILE\n"
        "  --stats           dump the full statistics tree\n");
    std::exit(2);
}

core::OrgKind
parseOrg(const std::string &name)
{
    if (name == "private")
        return core::OrgKind::Private;
    if (name == "monolithic")
        return core::OrgKind::MonolithicMesh;
    if (name == "monolithic-smart")
        return core::OrgKind::MonolithicSmart;
    if (name == "distributed")
        return core::OrgKind::Distributed;
    if (name == "ideal")
        return core::OrgKind::IdealShared;
    if (name == "nocstar")
        return core::OrgKind::Nocstar;
    if (name == "nocstar-ideal")
        return core::OrgKind::NocstarIdeal;
    std::fprintf(stderr, "unknown organization '%s'\n", name.c_str());
    usage();
}

bool
flagValue(const char *arg, const char *name, std::string &out)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        out = arg + len + 1;
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    cpu::SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 16;
    std::string workload_name = "graph500";
    std::string trace_file;
    std::uint64_t accesses = 20000;
    unsigned threads = 0;
    bool dump_stats = false;

    for (int i = 1; i < argc; ++i) {
        std::string value;
        const char *arg = argv[i];
        if (flagValue(arg, "--org", value))
            config.org.kind = parseOrg(value);
        else if (flagValue(arg, "--cores", value))
            config.org.numCores =
                static_cast<unsigned>(std::stoul(value));
        else if (flagValue(arg, "--workload", value))
            workload_name = value;
        else if (flagValue(arg, "--accesses", value))
            accesses = std::stoull(value);
        else if (flagValue(arg, "--threads", value))
            threads = static_cast<unsigned>(std::stoul(value));
        else if (flagValue(arg, "--smt", value))
            config.smtPerCore =
                static_cast<unsigned>(std::stoul(value));
        else if (flagValue(arg, "--prefetch", value))
            config.org.prefetchDistance =
                static_cast<unsigned>(std::stoul(value));
        else if (flagValue(arg, "--ptw", value))
            config.org.ptwPlacement = value == "remote"
                ? core::PtwPlacement::Remote
                : core::PtwPlacement::Requester;
        else if (flagValue(arg, "--acquire", value))
            config.org.pathAcquire = value == "roundtrip"
                ? core::PathAcquire::RoundTrip
                : core::PathAcquire::OneWay;
        else if (flagValue(arg, "--hpcmax", value))
            config.org.hpcMax =
                static_cast<unsigned>(std::stoul(value));
        else if (flagValue(arg, "--leaders", value))
            config.org.invalLeaderGroup =
                static_cast<unsigned>(std::stoul(value));
        else if (flagValue(arg, "--fixed-ptw", value))
            config.walker.fixedLatency = std::stoull(value);
        else if (flagValue(arg, "--seed", value))
            config.seed = std::stoull(value);
        else if (flagValue(arg, "--hotspot", value))
            config.hotspotSlice = std::stoi(value);
        else if (flagValue(arg, "--trace", value))
            trace_file = value;
        else if (flagValue(arg, "--capture", value))
            config.captureTracePath = value;
        else if (std::strcmp(arg, "--no-superpages") == 0)
            config.superpages = false;
        else if (std::strcmp(arg, "--storm") == 0) {
            config.contextSwitchInterval = 50000;
            config.stormRemapInterval = 5000;
        } else if (std::strcmp(arg, "--stats") == 0)
            dump_stats = true;
        else
            usage();
    }

    config.org.banks = config.org.numCores >= 64 ? 8 : 4;
    cpu::AppConfig app{workload::findWorkload(workload_name),
                       threads ? threads : config.org.numCores};
    app.traceFile = trace_file;
    config.apps.push_back(app);

    cpu::System system(config);
    cpu::RunResult result = system.run(accesses);

    std::printf("org                 : %s\n",
                core::orgKindName(config.org.kind));
    std::printf("cores / threads     : %u / %u\n", config.org.numCores,
                config.apps[0].threads * config.smtPerCore);
    std::printf("cycles (max / mean) : %llu / %.0f\n",
                static_cast<unsigned long long>(result.cycles),
                result.meanCycles);
    std::printf("chip IPC            : %.3f\n", result.ipc);
    std::printf("L1 miss rate        : %.2f %%\n",
                100.0 * static_cast<double>(result.l1Misses) /
                    static_cast<double>(result.l1Accesses));
    std::printf("L2 miss rate        : %.2f %%\n",
                100.0 * result.l2MissRate);
    std::printf("avg L2 latency      : %.1f cycles\n",
                result.avgL2AccessLatency);
    std::printf("page walks          : %llu (avg %.1f cycles)\n",
                static_cast<unsigned long long>(result.walks),
                result.avgWalkLatency);
    std::printf("translation energy  : %.2f uJ\n",
                result.energyPj * 1e-6);
    if (result.fabricAvgLatency > 0)
        std::printf("fabric latency      : %.2f cycles (%.0f %% "
                    "contention-free)\n",
                    result.fabricAvgLatency,
                    100.0 * result.fabricNoContention);
    if (result.shootdowns)
        std::printf("shootdowns          : %llu (avg %.1f cycles)\n",
                    static_cast<unsigned long long>(result.shootdowns),
                    result.avgShootdownLatency);

    if (dump_stats) {
        std::printf("\n--- statistics ---\n");
        system.dumpAll(std::cout);
    }
    return 0;
}
