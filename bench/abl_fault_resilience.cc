/**
 * @file
 * Ablation: NOCSTAR under fabric faults. Left sweep: permanently dead
 * links (route-around + mesh fallback) -- speedup over a healthy
 * private baseline and the fraction of messages that had to take the
 * store-and-forward mesh. Right sweep: transient grant loss -- the
 * retry/backoff machinery's cost as the loss rate rises. All plans are
 * built programmatically and seeded, so every row is reproducible;
 * `--fault-plan FILE` still overrides all of them for ad-hoc what-ifs.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "noc/topology.hh"

using namespace nocstar;

namespace
{

/**
 * A plan with @p dead interior east-links out permanently from cycle
 * 0, spread deterministically across the grid so consecutive counts
 * keep earlier links dead (monotone damage).
 */
sim::FaultPlan
deadLinkPlan(const noc::GridTopology &topo, unsigned dead)
{
    sim::FaultPlan plan;
    unsigned placed = 0;
    for (unsigned i = 0; placed < dead; ++i) {
        unsigned x = 1 + (i * 3) % (topo.width() - 1);
        unsigned y = (i * 5 + 2) % topo.height();
        noc::LinkId link{y * topo.width() + x, noc::Direction::East};
        bool duplicate = false;
        for (const sim::LinkFaultSpec &f : plan.linkFaults)
            duplicate |= f.link == link.flatten();
        if (duplicate)
            continue;
        plan.linkFaults.push_back({link.flatten(), 0, 0});
        ++placed;
    }
    return plan;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr unsigned cores = 32;
    auto args = bench::parseBenchArgs(
        argc, argv, 6000,
        "NOCSTAR resilience: dead fabric links and transient grant "
        "loss (32 cores)");

    const noc::GridTopology topo = noc::GridTopology::forCores(cores);
    const unsigned deadCounts[] = {0, 1, 2, 4, 8, 16};
    const double lossRates[] = {0.001, 0.01, 0.05, 0.1};
    const char *focus[] = {"gups", "graph500", "xsbench"};
    constexpr std::size_t numFocus = 3;

    std::vector<bench::SimJob> jobs;
    for (const char *name : focus) {
        const auto &spec = workload::findWorkload(name);
        jobs.push_back({bench::makeConfig(core::OrgKind::Private,
                                          cores, spec),
                        args.accesses});
        for (unsigned dead : deadCounts) {
            auto config =
                bench::makeConfig(core::OrgKind::Nocstar, cores, spec);
            config.org.faults = deadLinkPlan(topo, dead);
            jobs.push_back({config, args.accesses});
        }
        for (double rate : lossRates) {
            auto config =
                bench::makeConfig(core::OrgKind::Nocstar, cores, spec);
            config.org.faults.grantLossProb = rate;
            jobs.push_back({config, args.accesses});
        }
    }

    bench::SweepHarness harness("fault", args.jobs);
    auto results = harness.runMany(jobs);

    constexpr std::size_t perWorkload = 1 + 6 + 4;

    std::printf("Ablation: NOCSTAR speedup vs healthy private as "
                "links die (%u cores)\n",
                cores);
    bench::printHeader("workload", {"dead0", "dead1", "dead2", "dead4",
                                    "dead8", "dead16", "degr16%"});
    for (std::size_t w = 0; w < numFocus; ++w) {
        const auto &priv = results[w * perWorkload];
        std::vector<double> row;
        double degraded16 = 0;
        for (std::size_t i = 0; i < 6; ++i) {
            const auto &r = results[w * perWorkload + 1 + i];
            row.push_back(bench::speedupVsPrivate(priv, r));
            degraded16 = 100.0 * r.degradedFraction;
        }
        row.push_back(degraded16);
        bench::printRow(focus[w], row);
    }

    std::printf("\nAblation: transient grant loss (retry + backoff)\n");
    bench::printHeader("workload", {"p.001", "p.01", "p.05", "p.1"});
    for (std::size_t w = 0; w < numFocus; ++w) {
        const auto &priv = results[w * perWorkload];
        std::vector<double> row;
        for (std::size_t i = 0; i < 4; ++i)
            row.push_back(bench::speedupVsPrivate(
                priv, results[w * perWorkload + 7 + i]));
        bench::printRow(focus[w], row);
    }
    return 0;
}
