/**
 * @file
 * Fig 3: access latency of an SRAM TLB array versus entry count,
 * relative to the 1536-entry Skylake-class private L2 TLB (post-
 * synthesis 28 nm TSMC shape).
 */

#include <cstdio>
#include <initializer_list>

#include "bench/arg_parser.hh"
#include "energy/sram_model.hh"

using namespace nocstar;
using energy::SramModel;

int
main(int argc, char **argv)
{
    nocstar::bench::ArgParser parser(
        "fig03_sram_latency",
        "Fig 3: SRAM TLB access latency vs size (analytic model)");
    parser.parseOrExit(argc, argv);
    std::printf("Fig 3: SRAM TLB access latency vs size "
                "(1x = %llu entries)\n",
                static_cast<unsigned long long>(SramModel::refEntries));
    std::printf("%8s %10s %8s\n", "size", "entries", "cycles");
    for (double scale : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
        auto entries = static_cast<std::uint64_t>(
            scale * static_cast<double>(SramModel::refEntries));
        std::printf("%7.1fx %10llu %8llu\n", scale,
                    static_cast<unsigned long long>(entries),
                    static_cast<unsigned long long>(
                        SramModel::accessLatency(entries)));
    }
    return 0;
}
