/**
 * @file
 * Fig 16: (left) NOCSTAR link acquisition modes -- one round-trip
 * acquisition versus two one-way acquisitions -- across core counts;
 * (right) TLB invalidation relay policies (leader groups of 4 / 8 /
 * all cores) versus each core sending its own invalidation, under a
 * shootdown-heavy run.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

const char *focusWorkloads[] = {"canneal", "graph500", "gups",
                                "xsbench"};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 8000,
        "Fig 16: path-setup frequency and invalidation overheads");
    std::uint64_t base_accesses = args.accesses;

    std::printf("Fig 16 (left): speedup vs private; 1x two-way vs 2x "
                "one-way link acquisition\n");
    std::printf("%8s %-12s %10s %10s\n", "cores", "workload",
                "2x1-way", "1x2-way");
    for (unsigned cores : {16u, 32u, 64u}) {
        std::uint64_t accesses = base_accesses * 16 / cores + 2000;
        for (const char *name : focusWorkloads) {
            const auto &spec = workload::findWorkload(name);
            auto priv = bench::runOnce(
                bench::makeConfig(core::OrgKind::Private, cores, spec),
                accesses);
            auto one_way = bench::runOnce(
                bench::makeConfig(core::OrgKind::Nocstar, cores, spec),
                accesses);
            auto round_trip_config =
                bench::makeConfig(core::OrgKind::Nocstar, cores, spec);
            round_trip_config.org.pathAcquire =
                core::PathAcquire::RoundTrip;
            auto round_trip = bench::runOnce(round_trip_config,
                                             accesses);
            std::printf("%8u %-12s %10.3f %10.3f\n", cores, name,
                        bench::speedupVsPrivate(priv, one_way),
                        bench::speedupVsPrivate(priv, round_trip));
        }
    }

    std::printf("\nFig 16 (right): speedup vs private under shootdown "
                "load, invalidation policies\n");
    std::printf("%8s %-12s %10s %10s %10s %10s\n", "cores", "workload",
                "direct", "per-4", "per-8", "per-N");
    for (unsigned cores : {16u, 32u, 64u}) {
        std::uint64_t accesses = base_accesses * 16 / cores + 2000;
        for (const char *name : focusWorkloads) {
            const auto &spec = workload::findWorkload(name);
            auto storm = [&](core::OrgKind kind, unsigned group) {
                auto config = bench::makeConfig(kind, cores, spec);
                config.org.invalLeaderGroup = group;
                config.stormRemapInterval = 4000;
                config.stormMessagesPerOp = 8;
                return bench::runOnce(config, accesses);
            };
            auto priv = storm(core::OrgKind::Private, 0);
            std::printf("%8u %-12s", cores, name);
            for (unsigned group : {0u, 4u, 8u, cores}) {
                auto result = storm(core::OrgKind::Nocstar, group);
                std::printf("%10.3f",
                            bench::speedupVsPrivate(priv, result));
            }
            std::printf("\n");
        }
    }
    return 0;
}
