/**
 * @file
 * Fig 12: speedups of the monolithic, distributed, NOCSTAR and ideal
 * (zero-interconnect-latency) shared L2 TLBs over private L2 TLBs on
 * a 16-core system using only 4 KB pages.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    constexpr unsigned cores = 16;
    auto args = bench::parseBenchArgs(argc, argv, 12000);

    std::printf("Fig 12: speedup vs private L2 TLBs, 16 cores, 4 KB "
                "pages only\n");
    bench::printHeader("workload",
                       {"mono", "dist", "nocstar", "ideal"});

    // Per workload: the private baseline then the four shared
    // organizations, all independent simulations.
    const core::OrgKind kinds[] = {
        core::OrgKind::Private, core::OrgKind::MonolithicMesh,
        core::OrgKind::Distributed, core::OrgKind::Nocstar,
        core::OrgKind::IdealShared};
    constexpr std::size_t numKinds = 5;

    const auto &specs = workload::paperWorkloads();
    std::vector<bench::SimJob> jobs;
    for (const auto &spec : specs)
        for (core::OrgKind kind : kinds)
            jobs.push_back({bench::makeConfig(kind, cores, spec,
                                              /*superpages=*/false),
                            args.accesses});

    bench::SweepHarness harness("fig12_speedup_4k", args.jobs);
    auto results = harness.runMany(jobs);

    std::vector<double> averages(4, 0.0);
    for (std::size_t w = 0; w < specs.size(); ++w) {
        const auto &priv = results[w * numKinds];
        std::vector<double> row;
        for (std::size_t i = 1; i < numKinds; ++i) {
            double speedup = bench::speedupVsPrivate(
                priv, results[w * numKinds + i]);
            row.push_back(speedup);
            averages[i - 1] += speedup / 11.0;
        }
        bench::printRow(specs[w].name, row);
    }
    bench::printRow("average", averages);
    return 0;
}
