/**
 * @file
 * Fig 12: speedups of the monolithic, distributed, NOCSTAR and ideal
 * (zero-interconnect-latency) shared L2 TLBs over private L2 TLBs on
 * a 16-core system using only 4 KB pages.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    constexpr unsigned cores = 16;
    std::uint64_t accesses = argc > 1
        ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 12000;

    std::printf("Fig 12: speedup vs private L2 TLBs, 16 cores, 4 KB "
                "pages only\n");
    bench::printHeader("workload",
                       {"mono", "dist", "nocstar", "ideal"});

    const core::OrgKind kinds[] = {
        core::OrgKind::MonolithicMesh, core::OrgKind::Distributed,
        core::OrgKind::Nocstar, core::OrgKind::IdealShared};

    std::vector<double> averages(4, 0.0);
    for (const auto &spec : workload::paperWorkloads()) {
        auto priv = bench::runOnce(
            bench::makeConfig(core::OrgKind::Private, cores, spec,
                              /*superpages=*/false),
            accesses);
        std::vector<double> row;
        for (std::size_t i = 0; i < 4; ++i) {
            auto result = bench::runOnce(
                bench::makeConfig(kinds[i], cores, spec,
                                  /*superpages=*/false),
                accesses);
            double speedup = bench::speedupVsPrivate(priv, result);
            row.push_back(speedup);
            averages[i] += speedup / 11.0;
        }
        bench::printRow(spec.name, row);
    }
    bench::printRow("average", averages);
    return 0;
}
