/**
 * @file
 * Ablation (Table II): the NOCSTAR slice capacity. The paper
 * conservatively shrinks slices from 1024 to 920 entries to pay for
 * the interconnect; this sweep quantifies how sensitive the speedup
 * actually is to slice capacity.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 6000,
        "NOCSTAR slice-entries ablation (32 cores)");
    std::uint64_t accesses = args.accesses;

    std::printf("Ablation: NOCSTAR slice entries (32 cores, average "
                "across workloads)\n");
    std::printf("%10s %12s %12s\n", "entries", "speedup",
                "l2 missrate");

    for (std::uint32_t entries : {512u, 768u, 920u, 1024u, 1536u,
                                  2048u}) {
        double avg_speedup = 0, avg_missrate = 0;
        for (const auto &spec : workload::paperWorkloads()) {
            auto priv = bench::runOnce(
                bench::makeConfig(core::OrgKind::Private, 32, spec),
                accesses);
            auto config =
                bench::makeConfig(core::OrgKind::Nocstar, 32, spec);
            config.org.nocstarSliceEntries = entries;
            auto result = bench::runOnce(config, accesses);
            avg_speedup += bench::speedupVsPrivate(priv, result) / 11.0;
            avg_missrate += result.l2MissRate / 11.0;
        }
        std::printf("%10u %12.3f %12.3f\n", entries, avg_speedup,
                    avg_missrate);
    }
    return 0;
}
