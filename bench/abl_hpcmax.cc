/**
 * @file
 * Ablation (§III-B3): NOCSTAR's sensitivity to the maximum hops
 * traversed per cycle (HPCmax). At high clock frequencies or large
 * dies, pipeline latches cap HPCmax; this sweep shows how much of the
 * benefit survives.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 5000,
        "NOCSTAR speedup vs private as HPCmax varies (64 cores)");
    std::uint64_t accesses = args.accesses;

    std::printf("Ablation: NOCSTAR speedup vs private as HPCmax "
                "varies (64 cores)\n");
    bench::printHeader("workload",
                       {"hpc1", "hpc2", "hpc4", "hpc8", "hpc16"});

    const unsigned hpcs[] = {1, 2, 4, 8, 16};
    std::vector<double> averages(5, 0.0);
    for (const auto &spec : workload::paperWorkloads()) {
        auto priv = bench::runOnce(
            bench::makeConfig(core::OrgKind::Private, 64, spec),
            accesses);
        std::vector<double> row;
        for (std::size_t i = 0; i < 5; ++i) {
            auto config =
                bench::makeConfig(core::OrgKind::Nocstar, 64, spec);
            config.org.hpcMax = hpcs[i];
            auto result = bench::runOnce(config, accesses);
            double s = bench::speedupVsPrivate(priv, result);
            row.push_back(s);
            averages[i] += s / 11.0;
        }
        bench::printRow(spec.name, row);
    }
    bench::printRow("average", averages);
    return 0;
}
