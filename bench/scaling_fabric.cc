/**
 * @file
 * Fabric scaling study for the 256-1024-tile design points: speedup
 * over the private-L2-TLB baseline, path-setup retry rate and per-tile
 * grant-wait p99 fairness versus tile count, for the flat NOCSTAR
 * fabric against the hierarchical crossbar-of-clusters hybrid, plus
 * the row-major vs cluster-local slice-placement ablation.
 *
 * Runs are serial and in ascending tile order so the getrusage() peak
 * RSS snapshot taken after each tile count attributes memory to the
 * largest system simulated so far; the 1024-tile figure lands in
 * BENCH_scale.json, which CI gates against regression.
 */

#include <sys/resource.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

/** Process peak RSS in KB (ru_maxrss is KB on Linux). */
long
peakRssKb()
{
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    return usage.ru_maxrss;
}

struct Row
{
    unsigned tiles;
    const char *fabric;
    double speedup;
    double retryRate;
    double p99Max;
    double p99Mean;
};

bool
parseTilesList(const std::string &value, std::vector<unsigned> &out)
{
    out.clear();
    std::size_t pos = 0;
    while (pos < value.size()) {
        std::size_t comma = value.find(',', pos);
        std::string item = value.substr(
            pos, comma == std::string::npos ? comma : comma - pos);
        std::uint64_t n = 0;
        if (!bench::parseUnsigned(item, n) || n < 4)
            return false;
        out.push_back(static_cast<unsigned>(n));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args{/*accesses=*/2000, /*jobs=*/1};
    std::vector<unsigned> tileCounts{64, 256, 1024};
    bench::ArgParser parser = bench::makeBenchParser(
        argc, argv,
        "fabric scaling: flat vs hierarchical NOCSTAR at 64-1024 tiles",
        args);
    parser.option(
        "tiles",
        [&tileCounts](const std::string &value) {
            return parseTilesList(value, tileCounts);
        },
        "comma-separated tile counts (default 64,256,1024)", "LIST");
    bench::finalizeBenchArgs(parser, argc, argv, args);

    const auto &spec = workload::paperWorkloads()[0];
    std::vector<Row> rows;
    std::vector<std::pair<unsigned, long>> rssByTiles;

    auto nocstarConfig = [&spec](unsigned tiles, core::FabricKind kind,
                                 core::SliceMapping mapping) {
        cpu::SystemConfig config =
            bench::makeConfig(core::OrgKind::Nocstar, tiles, spec);
        config.org.fabricKind = kind;
        config.org.sliceMapping = mapping;
        config.org.recordGrantWait = true;
        return config;
    };

    for (unsigned tiles : tileCounts) {
        // Keep total simulated accesses roughly constant across tile
        // counts so the 1024-tile rows stay tractable on one host core.
        std::uint64_t accesses = args.accesses * 64 / tiles + 500;

        std::fprintf(stderr, "[scaling_fabric] %u tiles, %llu accesses "
                     "per thread...\n", tiles,
                     static_cast<unsigned long long>(accesses));
        cpu::RunResult base = bench::runOnce(
            bench::makeConfig(core::OrgKind::Private, tiles, spec),
            accesses);
        struct Variant
        {
            const char *name;
            core::FabricKind kind;
            core::SliceMapping mapping;
        };
        const Variant variants[] = {
            {"flat", core::FabricKind::Flat,
             core::SliceMapping::RowMajor},
            {"hier", core::FabricKind::Hierarchical,
             core::SliceMapping::RowMajor},
            {"hier+local", core::FabricKind::Hierarchical,
             core::SliceMapping::ClusterLocal},
        };
        for (const Variant &v : variants) {
            cpu::RunResult r = bench::runOnce(
                nocstarConfig(tiles, v.kind, v.mapping), accesses);
            rows.push_back({tiles, v.name,
                            bench::speedupVsPrivate(base, r),
                            r.fabricRetryRate, r.fabricGrantWaitP99Max,
                            r.fabricGrantWaitP99Mean});
        }
        rssByTiles.push_back({tiles, peakRssKb()});
    }

    // Per-component byte accounting at the largest tile count, for
    // both fabrics: where the 1024-tile footprint actually lives
    // (SoA TLB arrays, page-table pool, walk caches, path tables).
    struct AuditRow
    {
        const char *fabric;
        cpu::System::MemoryAudit audit;
    };
    std::vector<AuditRow> audits;
    {
        unsigned tiles = tileCounts.back();
        for (auto [label, kind] :
             {std::pair{"flat", core::FabricKind::Flat},
              std::pair{"hier", core::FabricKind::Hierarchical}}) {
            cpu::System system(bench::applySelections(nocstarConfig(
                tiles, kind, core::SliceMapping::RowMajor)));
            audits.push_back({label, system.memoryAudit()});
        }
    }

    std::printf("Fabric scaling: NOCSTAR flat vs hierarchical "
                "(speedup vs private)\n");
    std::printf("%8s %-12s %10s %12s %14s %14s\n", "tiles", "fabric",
                "speedup", "retry rate", "p99 wait max",
                "p99 wait mean");
    for (const Row &r : rows)
        std::printf("%8u %-12s %10.3f %12.4f %14.1f %14.1f\n", r.tiles,
                    r.fabric, r.speedup, r.retryRate, r.p99Max,
                    r.p99Mean);
    for (auto [tiles, kb] : rssByTiles)
        std::printf("peak RSS through %4u tiles: %ld KB\n", tiles, kb);
    for (const AuditRow &a : audits)
        std::printf("%u-tile %s memory: org arrays %zu KB, L1 %zu KB, "
                    "page table %zu KB, walk caches %zu KB, "
                    "fabric %zu KB (total %zu KB)\n",
                    tileCounts.back(), a.fabric,
                    a.audit.orgArrayBytes / 1024,
                    a.audit.l1Bytes / 1024,
                    a.audit.pageTableBytes / 1024,
                    a.audit.cacheModelBytes / 1024,
                    a.audit.fabricBytes / 1024,
                    a.audit.total() / 1024);

    // Machine-readable record; CI gates peak_rss_kb at the largest
    // tile count against the committed baseline.
    if (std::FILE *f = std::fopen("BENCH_scale.json", "w")) {
        std::fprintf(f, "{\"bench\": \"scaling_fabric\", "
                     "\"accesses\": %llu, \"rows\": [",
                     static_cast<unsigned long long>(args.accesses));
        for (std::size_t i = 0; i < rows.size(); ++i)
            std::fprintf(f,
                         "%s{\"tiles\": %u, \"fabric\": \"%s\", "
                         "\"speedup\": %.4f, \"retry_rate\": %.6f, "
                         "\"grant_wait_p99_max\": %.1f, "
                         "\"grant_wait_p99_mean\": %.1f}",
                         i ? ", " : "", rows[i].tiles, rows[i].fabric,
                         rows[i].speedup, rows[i].retryRate,
                         rows[i].p99Max, rows[i].p99Mean);
        std::fprintf(f, "], \"peak_rss_kb\": {");
        for (std::size_t i = 0; i < rssByTiles.size(); ++i)
            std::fprintf(f, "%s\"%u\": %ld", i ? ", " : "",
                         rssByTiles[i].first, rssByTiles[i].second);
        std::fprintf(f, "}, \"memory_bytes\": {");
        for (std::size_t i = 0; i < audits.size(); ++i) {
            const cpu::System::MemoryAudit &a = audits[i].audit;
            std::fprintf(f,
                         "%s\"%s\": {\"tiles\": %u, "
                         "\"org_arrays\": %zu, \"l1\": %zu, "
                         "\"page_table\": %zu, \"cache_model\": %zu, "
                         "\"fabric\": %zu, \"total\": %zu}",
                         i ? ", " : "", audits[i].fabric,
                         tileCounts.back(), a.orgArrayBytes, a.l1Bytes,
                         a.pageTableBytes, a.cacheModelBytes,
                         a.fabricBytes, a.total());
        }
        std::fprintf(f, "}}\n");
        std::fclose(f);
        std::fprintf(stderr,
                     "[scaling_fabric] wrote BENCH_scale.json\n");
    } else {
        std::fprintf(stderr,
                     "[scaling_fabric] cannot write BENCH_scale.json\n");
        return 1;
    }
    return 0;
}
