/**
 * @file
 * Fig 11(a): one-way message latency (SRAM lookup + network) through
 * the TLB interconnect versus hop count, for the monolithic and
 * distributed designs over a multi-cycle mesh and for NOCSTAR at
 * HPCmax 4 / 8 / 16.
 */

#include <cstdio>
#include <initializer_list>

#include "bench/arg_parser.hh"
#include "energy/sram_model.hh"

using namespace nocstar;
using energy::SramModel;

int
main(int argc, char **argv)
{
    nocstar::bench::ArgParser parser(
        "fig11a_latency_vs_hops",
        "Fig 11a: translation latency vs hop count per organization");
    parser.parseOrExit(argc, argv);
    // 32-core equivalents: the monolithic array is 32x1536 entries,
    // slices are ~1K entries.
    const Cycle mono_lookup = SramModel::accessLatency(32 * 1536);
    const Cycle slice_lookup = SramModel::accessLatency(1024);

    std::printf("Fig 11a: message latency (cycles) = lookup + network "
                "vs hops\n");
    std::printf("%6s %14s %14s %12s %12s %12s\n", "hops",
                "monolithic", "distributed", "nstar-hpc4",
                "nstar-hpc8", "nstar-hpc16");
    for (unsigned hops : {0u, 1u, 2u, 4u, 6u, 8u, 10u, 12u}) {
        auto mesh = static_cast<Cycle>(2 * hops); // tr + tw per hop
        auto nocstar = [&](unsigned hpc) {
            if (hops == 0)
                return slice_lookup;
            // 1 setup cycle + pipelined traversal.
            return slice_lookup + 1 + (hops + hpc - 1) / hpc;
        };
        std::printf("%6u %14llu %14llu %12llu %12llu %12llu\n", hops,
                    static_cast<unsigned long long>(mono_lookup + mesh),
                    static_cast<unsigned long long>(slice_lookup +
                                                    mesh),
                    static_cast<unsigned long long>(nocstar(4)),
                    static_cast<unsigned long long>(nocstar(8)),
                    static_cast<unsigned long long>(nocstar(16)));
    }
    return 0;
}
