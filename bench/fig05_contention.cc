/**
 * @file
 * Fig 5: for every shared L2 TLB access on a 32-core system, the
 * number of concurrently outstanding shared L2 TLB accesses, bucketed
 * as in the paper (1, 2-4, ..., 29-32).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    constexpr unsigned cores = 32;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 6000,
        "Fig 5: concurrent-access distribution at a shared L2 TLB");
    std::uint64_t accesses = args.accesses;

    static const char *bucket_names[] = {"1", "2-4", "5-8", "9-12",
                                         "13-16", "17-20", "21-24",
                                         "25-28", "29+"};

    std::printf("Fig 5: concurrent shared-L2 accesses per access, "
                "32 cores (fractions)\n");
    std::printf("%-16s", "workload");
    for (const char *b : bucket_names)
        std::printf("%8s", b);
    std::printf("\n");

    std::vector<double> averages(9, 0.0);
    for (const auto &spec : workload::paperWorkloads()) {
        auto result = bench::runOnce(
            bench::makeConfig(core::OrgKind::Distributed, cores, spec),
            accesses);
        std::printf("%-16s", spec.name.c_str());
        for (std::size_t i = 0; i < 9; ++i) {
            std::printf("%8.3f", result.concurrencyBuckets[i]);
            averages[i] += result.concurrencyBuckets[i] / 11.0;
        }
        std::printf("\n");
    }
    std::printf("%-16s", "average");
    for (double avg : averages)
        std::printf("%8.3f", avg);
    std::printf("\n");
    return 0;
}
