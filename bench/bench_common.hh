/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: standard
 * system configurations (paper Table II / §IV methodology) and simple
 * fixed-width table printing.
 */

#ifndef NOCSTAR_BENCH_COMMON_HH
#define NOCSTAR_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "cpu/system.hh"
#include "workload/spec.hh"

namespace nocstar::bench
{

/** Default accesses per thread for full-system runs. */
constexpr std::uint64_t defaultAccesses = 30000;

/** Monolithic banking per the paper: 4 banks up to 32 cores, 8 at 64. */
inline unsigned
banksFor(unsigned cores)
{
    return cores >= 64 ? 8 : 4;
}

/**
 * Baseline system configuration for one multithreaded workload running
 * one thread per core, per the paper's single-workload experiments.
 */
inline cpu::SystemConfig
makeConfig(core::OrgKind kind, unsigned cores,
           const workload::WorkloadSpec &spec, bool superpages = true,
           std::uint64_t seed = 12345)
{
    cpu::SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    config.org.banks = banksFor(cores);
    cpu::AppConfig app;
    app.spec = spec;
    app.threads = cores;
    config.apps.push_back(std::move(app));
    config.superpages = superpages;
    config.seed = seed;
    return config;
}

/** Run one configuration and return the result. */
inline cpu::RunResult
runOnce(const cpu::SystemConfig &config,
        std::uint64_t accesses = defaultAccesses)
{
    cpu::System system(config);
    return system.run(accesses);
}

/** Speedup of @p config against a private-L2-TLB baseline. */
inline double
speedupVsPrivate(const cpu::RunResult &baseline,
                 const cpu::RunResult &other)
{
    return other.meanCycles > 0 ? baseline.meanCycles / other.meanCycles
                                : 0.0;
}

/** Print a row of fixed-width cells. */
inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *fmt = "%10.3f")
{
    std::printf("%-16s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

inline void
printHeader(const std::string &label,
            const std::vector<std::string> &columns, int width = 10)
{
    std::printf("%-16s", label.c_str());
    for (const std::string &c : columns)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

} // namespace nocstar::bench

#endif // NOCSTAR_BENCH_COMMON_HH
