/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: standard
 * system configurations (paper Table II / §IV methodology), simple
 * fixed-width table printing, and the parallel sweep runner.
 *
 * Sweeps run through SweepHarness::runMany(), which fans the
 * independent simulations out over a thread pool (--jobs flag /
 * NOCSTAR_JOBS env var, hardware concurrency by default). Results come
 * back in input order and each simulation is deterministic given its
 * config, so a bench's stdout is byte-identical at any job count; all
 * timing output goes to stderr and a machine-readable BENCH_<name>.json
 * so the perf trajectory can be tracked across PRs without perturbing
 * the tables.
 */

#ifndef NOCSTAR_BENCH_COMMON_HH
#define NOCSTAR_BENCH_COMMON_HH

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/build_info.hh"

#include "arg_parser.hh"
#include "cpu/system.hh"
#include "sim/parallel.hh"
#include "sim/trace.hh"
#include "sim/trace_recorder.hh"
#include "workload/spec.hh"

namespace nocstar::bench
{

/** Default accesses per thread for full-system runs. */
constexpr std::uint64_t defaultAccesses = 30000;

/** Monolithic banking per the paper: 4 banks up to 32 cores, 8 at 64. */
inline unsigned
banksFor(unsigned cores)
{
    return cores >= 64 ? 8 : 4;
}

/**
 * Baseline system configuration for one multithreaded workload running
 * one thread per core, per the paper's single-workload experiments.
 */
inline cpu::SystemConfig
makeConfig(core::OrgKind kind, unsigned cores,
           const workload::WorkloadSpec &spec, bool superpages = true,
           std::uint64_t seed = 12345)
{
    cpu::SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    config.org.banks = banksFor(cores);
    cpu::AppConfig app;
    app.spec = spec;
    app.threads = cores;
    config.apps.push_back(std::move(app));
    config.superpages = superpages;
    config.seed = seed;
    return config;
}

/**
 * Multiprogrammed-mix configuration (Fig 18 and friends): the apps
 * named by @p combo, each running cores/4 threads, with the seed the
 * paper sweep derives from the combination itself.
 */
inline cpu::SystemConfig
makeMixConfig(const std::array<std::size_t, 4> &combo, core::OrgKind kind,
              unsigned cores)
{
    cpu::SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    config.org.banks = banksFor(cores);
    for (std::size_t w : combo) {
        cpu::AppConfig app;
        app.spec = workload::paperWorkloads()[w];
        app.threads = cores / 4;
        config.apps.push_back(std::move(app));
    }
    config.seed = 9000 + combo[0] * 1331 + combo[1] * 121 +
                  combo[2] * 11 + combo[3];
    return config;
}

/**
 * Observability options shared by every bench, filled in by
 * parseBenchArgs(). All default off; the hot path is untouched (and a
 * sweep's stdout byte-identical) unless one is requested.
 */
struct Observability
{
    /** --trace: capture structured events into the global recorder. */
    bool trace = false;
    /** --trace-out FILE: Chrome trace JSON destination. */
    std::string traceOut;
    /** --stats-json FILE: per-run stats JSON (JSONL across a sweep). */
    std::string statsJson;
    /** --epoch N: snapshot the stats tree every N cycles. */
    Cycle epoch = 0;
    /** --epoch-reset: epoch snapshots are deltas, not totals. */
    bool epochReset = false;
    /** --lat-hist: per-class translation-latency histograms. */
    bool latHist = false;
    /** --lat-hist=ctx: additionally split by workload context. */
    bool latPerCtx = false;
    /** --counters N: Perfetto counter-track samples every N cycles. */
    Cycle counterInterval = 0;
    /** --progress[=S]: heartbeat period in seconds; < 0 = off. */
    double progressSeconds = -1.0;

    bool
    any() const
    {
        return trace || !traceOut.empty() || !statsJson.empty() ||
               epoch != 0 || latHist || counterInterval != 0 ||
               progressSeconds >= 0;
    }
};

/** The process-wide observability selection (set once at startup). */
inline Observability &
observability()
{
    static Observability obs;
    return obs;
}

/**
 * Fault-injection selection shared by every bench, filled in by the
 * --fault-plan / --fault-seed options. When configured, runOnce()
 * applies the plan to every simulated configuration; otherwise no
 * fault machinery is instantiated anywhere.
 */
struct FaultSelection
{
    sim::FaultPlan plan;
    bool planLoaded = false;
    bool seedSet = false;
    std::uint64_t seed = 0;
    /** Finalized: the plan should be applied to every run. */
    bool configured = false;
};

/** The process-wide fault selection (set once at startup). */
inline FaultSelection &
faultSelection()
{
    static FaultSelection faults;
    return faults;
}

/**
 * Sharded-engine selection, filled in by the --shards option. When
 * set, every configuration a bench runs uses the window engine with
 * this many shards (see SystemConfig::shards); results are
 * byte-identical at every shard count, so this is purely a wall-clock
 * knob and safe to apply sweep-wide.
 */
struct ShardSelection
{
    /** 0 = legacy single-queue engine; >= 1 = window engine. */
    unsigned shards = 0;
    bool set = false;
    /**
     * `--shards auto`: pick the count per configuration from its tile
     * count, the host's hardware concurrency, and the sweep's resolved
     * job count (sim::autoShards) instead of a fixed number.
     */
    bool autoSelect = false;
    /** Resolved sweep jobs, recorded for the auto computation. */
    unsigned jobsHint = 1;
};

/** The process-wide shard selection (set once at startup). */
inline ShardSelection &
shardSelection()
{
    static ShardSelection sel;
    return sel;
}

/**
 * Fabric selection, filled in by the --fabric option. When set, every
 * NOCSTAR configuration a bench runs uses this fabric (flat
 * circuit-switched mesh or the hierarchical crossbar-of-clusters
 * hybrid); organizations without a fabric ignore it, so the flag is
 * safe to apply sweep-wide.
 */
struct FabricSelection
{
    core::FabricKind kind = core::FabricKind::Flat;
    unsigned clusterWidth = 0;
    unsigned clusterHeight = 0;
    bool set = false;
};

/** The process-wide fabric selection (set once at startup). */
inline FabricSelection &
fabricSelection()
{
    static FabricSelection sel;
    return sel;
}

/**
 * Sampled-simulation / checkpoint selection, filled in by the
 * --sample, --checkpoint and --restore options. When set, every
 * configuration a bench runs uses SMARTS-style sampling (functional
 * fast-forward between detailed measurement windows) and/or anchors
 * at a checkpoint of the warmed functional state.
 */
struct SamplingSelection
{
    cpu::SamplingConfig sampling;
    bool samplingSet = false;
    std::string checkpointSave;
    std::string checkpointRestore;
};

/** The process-wide sampling selection (set once at startup). */
inline SamplingSelection &
samplingSelection()
{
    static SamplingSelection sel;
    return sel;
}

/**
 * Parse a --sample spec `WINDOWS,DETAIL[,FF[,WARMUP]]` into @p out.
 * FF defaults to 0 (derive the gap from the run length); WARMUP
 * defaults to FF (one gap's worth of warming before window 1).
 */
inline bool
parseSampleSpec(const std::string &spec, cpu::SamplingConfig &out)
{
    std::vector<std::uint64_t> parts;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        std::string field = spec.substr(
            start, comma == std::string::npos ? std::string::npos
                                              : comma - start);
        std::uint64_t v = 0;
        if (!parseUnsigned(field, v))
            return false;
        parts.push_back(v);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (parts.size() < 2 || parts.size() > 4)
        return false;
    out.windows = static_cast<unsigned>(parts[0]);
    out.detailAccesses = parts[1];
    out.ffAccesses = parts.size() > 2 ? parts[2] : 0;
    out.warmupAccesses = parts.size() > 3 ? parts[3] : out.ffAccesses;
    return true;
}

/**
 * Clamp @p jobs so that jobs x shards worker threads never exceed the
 * host's hardware threads (sweep workers and shard crews multiply, and
 * the shard crew spins between windows, so oversubscription destroys
 * rather than degrades the speedup). Warns on stderr the first time it
 * clamps.
 */
inline unsigned
clampJobsForShards(unsigned jobs, unsigned shards)
{
    if (shards <= 1 || jobs == 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    if (static_cast<std::uint64_t>(jobs) * shards <= hw)
        return jobs;
    unsigned clamped = std::max(1u, hw / shards);
    if (clamped >= jobs)
        return jobs;
    static bool warned = false;
    if (!warned) {
        warned = true;
        std::fprintf(stderr,
                     "note: clamping --jobs %u to %u: %u jobs x %u "
                     "shards would oversubscribe %u hardware threads\n",
                     jobs, clamped, jobs, shards, hw);
    }
    return clamped;
}

/**
 * Apply the process-wide command-line selections (observability,
 * fault plan) to a copy of @p config.
 */
inline cpu::SystemConfig
applySelections(const cpu::SystemConfig &config)
{
    const Observability &obs = observability();
    cpu::SystemConfig cfg = config;
    cfg.statsEpochInterval = obs.epoch;
    cfg.statsEpochReset = obs.epochReset;
    cfg.statsJsonPath = obs.statsJson;
    cfg.latencyStats = obs.latHist;
    cfg.latencyPerContext = obs.latPerCtx;
    cfg.counterInterval = obs.counterInterval;
    cfg.progressSeconds = obs.progressSeconds;
    if (faultSelection().configured)
        cfg.org.faults = faultSelection().plan;
    if (fabricSelection().set &&
        (cfg.org.kind == core::OrgKind::Nocstar ||
         cfg.org.kind == core::OrgKind::NocstarIdeal)) {
        cfg.org.fabricKind = fabricSelection().kind;
        cfg.org.clusterWidth = fabricSelection().clusterWidth;
        cfg.org.clusterHeight = fabricSelection().clusterHeight;
    }
    if (shardSelection().set)
        cfg.shards = shardSelection().autoSelect
            ? sim::autoShards(cfg.org.numCores, shardSelection().jobsHint)
            : shardSelection().shards;
    const SamplingSelection &sample = samplingSelection();
    if (sample.samplingSet)
        cfg.sampling = sample.sampling;
    if (!sample.checkpointSave.empty())
        cfg.checkpointSavePath = sample.checkpointSave;
    if (!sample.checkpointRestore.empty())
        cfg.checkpointRestorePath = sample.checkpointRestore;
    return cfg;
}

/**
 * Validate and run a configuration that already has the command-line
 * selections applied (SweepHarness pre-applies them so it can redirect
 * each simulation's stats stream when the sweep is parallel).
 */
inline cpu::RunResult
runApplied(const cpu::SystemConfig &cfg,
           std::uint64_t accesses = defaultAccesses)
{
    if (std::vector<std::string> errors = cfg.validate();
        !errors.empty()) {
        for (const std::string &e : errors)
            std::fprintf(stderr, "invalid config: %s\n", e.c_str());
        std::exit(2);
    }
    cpu::System system(cfg);
    return system.run(accesses);
}

/**
 * Run one configuration and return the result. Command-line
 * observability and fault-plan selections are applied to a copy of
 * the configuration, which is validated before the system is built.
 */
inline cpu::RunResult
runOnce(const cpu::SystemConfig &config,
        std::uint64_t accesses = defaultAccesses)
{
    return runApplied(applySelections(config), accesses);
}

/** One simulation of a sweep: a configuration plus its run length. */
struct SimJob
{
    cpu::SystemConfig config;
    std::uint64_t accesses = defaultAccesses;
};

/** Command-line arguments shared by every sweep bench. */
struct BenchArgs
{
    std::uint64_t accesses;
    unsigned jobs;
};

/**
 * Register the options every bench shares on @p parser: --jobs, the
 * observability group (`--trace[=FLAGS]`, `--trace-out FILE`,
 * `--stats-json FILE`, `--epoch N`, `--epoch-reset`), the fault group
 * (`--fault-plan FILE`, `--fault-seed N`), `--shards N|auto` and
 * `--fabric flat|hier[:WxH]`. All of them write into the process-wide
 * singletons; --jobs writes into @p args.
 */
inline void
addStandardBenchOptions(ArgParser &parser, BenchArgs &args)
{
    parser.option("jobs", &args.jobs,
                  "parallel sweep workers (default: NOCSTAR_JOBS, "
                  "then hardware concurrency)");
    parser.optionalValue(
        "trace", [] { observability().trace = true; },
        [](const std::string &flags) {
            observability().trace = true;
            if (!trace::setFlags(flags))
                std::fprintf(stderr,
                             "warning: unknown debug flag in '%s'\n",
                             flags.c_str());
            return true;
        },
        "capture structured events (optionally set debug flags)",
        "FLAGS");
    parser.option(
        "trace-out",
        [](const std::string &file) {
            observability().trace = true;
            observability().traceOut = file;
            return true;
        },
        "write the Chrome trace JSON to FILE (implies --trace)",
        "FILE");
    parser.option("stats-json", &observability().statsJson,
                  "append per-run stats JSON to FILE (JSONL)");
    parser.option("epoch", &observability().epoch,
                  "snapshot the stats tree every N cycles");
    parser.flag("epoch-reset", &observability().epochReset,
                "epoch snapshots are per-interval deltas, not totals");
    parser.optionalValue(
        "lat-hist", [] { observability().latHist = true; },
        [](const std::string &mode) {
            observability().latHist = true;
            if (mode == "ctx") {
                observability().latPerCtx = true;
                return true;
            }
            std::fprintf(stderr,
                         "--lat-hist only accepts 'ctx' (got '%s')\n",
                         mode.c_str());
            return false;
        },
        "record per-class translation-latency histograms "
        "(=ctx adds a per-context split)",
        "ctx");
    parser.option(
        "counters",
        [](const std::string &value) {
            std::uint64_t n = 0;
            if (!parseUnsigned(value, n))
                return false;
            observability().counterInterval = n;
            return true;
        },
        "sample Perfetto counter tracks every N cycles "
        "(needs --trace)",
        "N");
    parser.optionalValue(
        "progress", [] { observability().progressSeconds = 2.0; },
        [](const std::string &value) {
            char *end = nullptr;
            double s = std::strtod(value.c_str(), &end);
            if (!end || *end != '\0' || s < 0)
                return false;
            observability().progressSeconds = s;
            return true;
        },
        "print a heartbeat line to stderr every SECONDS "
        "(default 2; =0 emits at every check)",
        "SECONDS");
    parser.option(
        "fault-plan",
        [](const std::string &file) {
            try {
                faultSelection().plan = sim::FaultPlan::parseFile(file);
            } catch (const FatalError &err) {
                std::fprintf(stderr, "%s\n", err.what());
                return false;
            }
            faultSelection().planLoaded = true;
            return true;
        },
        "inject faults per this plan file (see docs)", "FILE");
    parser.option(
        "shards",
        [](const std::string &value) {
            ShardSelection &sel = shardSelection();
            if (value == "auto") {
                sel.autoSelect = true;
                sel.set = true;
                return true;
            }
            std::uint64_t n = 0;
            if (!parseUnsigned(value, n))
                return false;
            if (n < 1) {
                std::fprintf(stderr,
                             "--shards must be >= 1 (0 would select "
                             "the legacy engine; omit the flag "
                             "instead)\n");
                return false;
            }
            sel.shards = static_cast<unsigned>(n);
            sel.set = true;
            return true;
        },
        "run every simulation on N parallel shards (window engine; "
        "results are byte-identical at every N), or 'auto' to pick N "
        "from the tile count, host cores and sweep jobs",
        "N");
    parser.option(
        "fabric",
        [](const std::string &spec) {
            core::OrgConfig probe;
            if (std::string err = core::parseFabricSpec(spec, probe);
                !err.empty()) {
                std::fprintf(stderr, "--fabric: %s\n", err.c_str());
                return false;
            }
            FabricSelection &sel = fabricSelection();
            sel.kind = probe.fabricKind;
            sel.clusterWidth = probe.clusterWidth;
            sel.clusterHeight = probe.clusterHeight;
            sel.set = true;
            return true;
        },
        "NOCSTAR interconnect: flat (default), hier, or hier:WxH "
        "(cluster geometry; hier alone picks it per mesh)",
        "KIND");
    parser.option(
        "sample",
        [](const std::string &spec) {
            SamplingSelection &sel = samplingSelection();
            if (!parseSampleSpec(spec, sel.sampling)) {
                std::fprintf(
                    stderr,
                    "--sample expects WINDOWS,DETAIL[,FF[,WARMUP]] "
                    "(got '%s')\n",
                    spec.c_str());
                return false;
            }
            sel.samplingSet = true;
            return true;
        },
        "SMARTS-style sampled simulation: WINDOWS detail windows of "
        "DETAIL accesses/thread, fast-forwarding ~FF accesses/thread "
        "between them (0 = derive from run length) after WARMUP "
        "functional warming",
        "SPEC");
    parser.option(
        "checkpoint",
        [](const std::string &file) {
            samplingSelection().checkpointSave = file;
            return true;
        },
        "save a checkpoint of the warmed functional state to FILE, "
        "then keep running",
        "FILE");
    parser.option(
        "restore",
        [](const std::string &file) {
            samplingSelection().checkpointRestore = file;
            return true;
        },
        "restore warmed state from FILE instead of re-warming "
        "(config fingerprint must match)",
        "FILE");
    parser.option(
        "fault-seed",
        [](const std::string &value) {
            FaultSelection &faults = faultSelection();
            if (!parseUnsigned(value, faults.seed))
                return false;
            faults.seedSet = true;
            return true;
        },
        "override the fault plan's random seed", "N");
}

/**
 * Build a parser preloaded with the standard bench surface: the
 * optional ACCESSES positional (unless @p with_accesses is false)
 * plus everything addStandardBenchOptions() registers. Benches with
 * extra knobs add their own specs to the returned parser, then call
 * finalizeBenchArgs().
 */
inline ArgParser
makeBenchParser(int argc, char **argv, const std::string &description,
                BenchArgs &args, bool with_accesses = true)
{
    (void)argc;
    std::string program =
        argc > 0 && argv && argv[0] ? argv[0] : "bench";
    if (std::size_t slash = program.rfind('/');
        slash != std::string::npos)
        program.erase(0, slash + 1);
    ArgParser parser(program, description);
    if (with_accesses)
        parser.positional("ACCESSES", &args.accesses,
                          "accesses per thread (default " +
                              std::to_string(args.accesses) + ")");
    addStandardBenchOptions(parser, args);
    return parser;
}

/**
 * parseOrExit() and apply the cross-option rules: --trace forces a
 * single job (the structured recorder is one process-wide ring, so
 * concurrent simulations would interleave their events); the fault
 * seed override lands on the loaded plan regardless of option order;
 * an absent --jobs falls back to NOCSTAR_JOBS, then hardware
 * concurrency. (Stats JSON / epoch snapshots do NOT force one job:
 * SweepHarness redirects each parallel simulation to its own temp
 * file and merges them in input order, so the JSONL is byte-identical
 * at any job count. A fault plan doesn't force one job either --
 * fault injection is deterministic at any sweep parallelism.)
 */
inline BenchArgs
finalizeBenchArgs(ArgParser &parser, int argc, char **argv,
                  BenchArgs &args)
{
    parser.parseOrExit(argc, argv);
    Observability &obs = observability();
    if (obs.trace) {
        if (args.jobs > 1)
            std::fprintf(stderr,
                         "note: --trace forces --jobs 1\n");
        args.jobs = 1;
        sim::TraceRecorder::global().start();
    }
    FaultSelection &faults = faultSelection();
    if (faults.seedSet)
        faults.plan.seed = faults.seed;
    faults.configured = faults.planLoaded;
    if (args.jobs == 0)
        args.jobs = sim::defaultJobs();
    if (shardSelection().set) {
        if (shardSelection().autoSelect)
            // Auto divides the hardware budget by the resolved job
            // count per configuration instead of clamping jobs: the
            // sweep keeps its workers and each run shards into the
            // leftover threads.
            shardSelection().jobsHint = args.jobs;
        else
            args.jobs = clampJobsForShards(args.jobs,
                                           shardSelection().shards);
    }
    return args;
}

/**
 * The standard bench command line: `[ACCESSES] [--jobs N]` plus the
 * observability and fault-injection options, with auto-generated
 * --help. Unknown flags and non-numeric values are fatal (exit 2).
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, std::uint64_t default_accesses,
               const std::string &description = "")
{
    BenchArgs args{default_accesses, 0};
    ArgParser parser = makeBenchParser(argc, argv, description, args);
    return finalizeBenchArgs(parser, argc, argv, args);
}

/**
 * Wall-clock accounting and the worker pool for one bench's sweeps.
 * On finish() (or destruction) it prints a summary to stderr and
 * writes BENCH_<name>.json into the working directory.
 */
class SweepHarness
{
  public:
    SweepHarness(std::string name, unsigned jobs)
        : name_(std::move(name)), pool_(jobs),
          start_(std::chrono::steady_clock::now())
    {}

    ~SweepHarness() { finish(); }

    SweepHarness(const SweepHarness &) = delete;
    SweepHarness &operator=(const SweepHarness &) = delete;

    unsigned jobs() const { return pool_.size() > 0 ? pool_.size() : 1; }

    /**
     * Run every job on the pool; results are returned in input order,
     * so downstream printing is independent of the job count. All
     * configurations are validated up front, so a bad sweep reports
     * every problem and exits before burning any simulation time.
     *
     * When --stats-json is active on a parallel sweep, each
     * simulation appends to its own temp file (sink + ".tmpN", N a
     * sweep-wide sim index) instead of racing on the shared sink; the
     * temp files are then concatenated onto the sink in input order
     * and removed, so the JSONL bytes match a --jobs 1 run exactly.
     */
    std::vector<cpu::RunResult>
    runMany(const std::vector<SimJob> &jobs)
    {
        const Observability &obs = observability();
        const bool split_stats =
            !obs.statsJson.empty() && pool_.size() > 1;
        std::vector<SimJob> applied;
        applied.reserve(jobs.size());
        std::vector<std::string> errors;
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            cpu::SystemConfig cfg = applySelections(jobs[i].config);
            for (const std::string &e : cfg.validate())
                errors.push_back("job #" + std::to_string(i) + ": " +
                                 e);
            if (split_stats)
                cfg.statsJsonPath =
                    obs.statsJson + ".tmp" +
                    std::to_string(simIndex_ + i);
            applied.push_back(SimJob{std::move(cfg),
                                     jobs[i].accesses});
        }
        if (!errors.empty()) {
            for (const std::string &e : errors)
                std::fprintf(stderr, "[%s] invalid config: %s\n",
                             name_.c_str(), e.c_str());
            std::exit(2);
        }
        auto results = pool_.map(applied, [](const SimJob &job) {
            return runApplied(job.config, job.accesses);
        });
        if (split_stats)
            mergeStatsTemps(applied);
        simIndex_ += jobs.size();
        simsRun_ += results.size();
        for (const cpu::RunResult &r : results)
            simCycles_ += r.cycles;
        return results;
    }

    /** Write the timing artifacts; idempotent. */
    void
    finish()
    {
        if (finished_)
            return;
        finished_ = true;
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        double rate = wall > 0 ? static_cast<double>(simCycles_) / wall
                               : 0.0;
        std::fprintf(stderr,
                     "[%s] %llu sims on %u jobs in %.2fs "
                     "(%.3g sim-cycles/s)\n",
                     name_.c_str(),
                     static_cast<unsigned long long>(simsRun_), jobs(),
                     wall, rate);

        std::string path = "BENCH_" + name_ + ".json";
        if (std::FILE *f = std::fopen(path.c_str(), "w")) {
            std::fprintf(f,
                         "{\"bench\": \"%s\", \"jobs\": %u, "
                         "\"sims\": %llu, \"wall_seconds\": %.6f, "
                         "\"sim_cycles\": %llu, "
                         "\"sim_cycles_per_sec\": %.1f, "
                         "\"git_sha\": \"%s\", "
                         "\"compiler\": \"%s %s\", "
                         "\"build_type\": \"%s\", "
                         "\"host_cores\": %u}\n",
                         name_.c_str(), jobs(),
                         static_cast<unsigned long long>(simsRun_),
                         wall,
                         static_cast<unsigned long long>(simCycles_),
                         rate, build::kGitSha, build::kCompilerId,
                         build::kCompilerVersion, build::kBuildType,
                         std::thread::hardware_concurrency());
            std::fclose(f);
        } else {
            std::fprintf(stderr, "[%s] cannot write %s\n",
                         name_.c_str(), path.c_str());
        }

        // Export the structured trace if --trace captured anything.
        const Observability &obs = observability();
        if (obs.trace) {
            const sim::TraceRecorder &rec = sim::TraceRecorder::global();
            std::string tpath = obs.traceOut.empty()
                                    ? "TRACE_" + name_ + ".json"
                                    : obs.traceOut;
            if (rec.recorded() == 0) {
                std::fprintf(stderr, "[%s] no trace events captured\n",
                             name_.c_str());
            } else if (rec.exportChromeJson(tpath)) {
                std::fprintf(
                    stderr,
                    "[%s] wrote %llu trace events to %s "
                    "(%llu dropped)\n",
                    name_.c_str(),
                    static_cast<unsigned long long>(rec.size()),
                    tpath.c_str(),
                    static_cast<unsigned long long>(rec.dropped()));
            } else {
                std::fprintf(stderr, "[%s] cannot write %s\n",
                             name_.c_str(), tpath.c_str());
            }
        }
    }

  private:
    /** Concatenate the per-sim stats temp files onto the shared sink
     * in input order, then remove them. */
    void
    mergeStatsTemps(const std::vector<SimJob> &applied)
    {
        const std::string &sink = observability().statsJson;
        std::ofstream out(sink, std::ios::app | std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "[%s] cannot append to %s\n",
                         name_.c_str(), sink.c_str());
            return;
        }
        for (const SimJob &job : applied) {
            const std::string &tmp = job.config.statsJsonPath;
            {
                std::ifstream in(tmp, std::ios::binary);
                // A run that produced no stats leaves no file behind.
                if (in)
                    out << in.rdbuf();
            }
            std::remove(tmp.c_str());
        }
    }

    std::string name_;
    sim::ThreadPool pool_;
    std::chrono::steady_clock::time_point start_;
    /** Sweep-wide sim counter: unique temp-file suffixes across
     * multiple runMany() calls. */
    std::uint64_t simIndex_ = 0;
    std::uint64_t simsRun_ = 0;
    std::uint64_t simCycles_ = 0;
    bool finished_ = false;
};

/** Speedup of @p config against a private-L2-TLB baseline. */
inline double
speedupVsPrivate(const cpu::RunResult &baseline,
                 const cpu::RunResult &other)
{
    return other.meanCycles > 0 ? baseline.meanCycles / other.meanCycles
                                : 0.0;
}

/**
 * Render the per-link occupancy heatmap from a fabric's
 * link_hold_cycles vector: one row per tile, the E/W/N/S output links
 * of each tile as the fraction of @p cycles they were held. Written to
 * @p os (use stderr / a file -- sweep stdout is reserved for tables).
 */
inline void
printLinkHeatmap(std::ostream &os, const noc::GridTopology &topo,
                 const stats::Vector &hold_cycles, Cycle cycles)
{
    os << "link occupancy (E/W/N/S per tile, fraction of "
       << cycles << " cycles)\n";
    char cell[64];
    for (unsigned y = 0; y < topo.height(); ++y) {
        for (unsigned x = 0; x < topo.width(); ++x) {
            CoreId tile = topo.tileAt({x, y});
            double denom = cycles ? static_cast<double>(cycles) : 1.0;
            std::snprintf(
                cell, sizeof(cell), "  [%3u] %.2f/%.2f/%.2f/%.2f",
                tile, hold_cycles[tile * 4 + 0] / denom,
                hold_cycles[tile * 4 + 1] / denom,
                hold_cycles[tile * 4 + 2] / denom,
                hold_cycles[tile * 4 + 3] / denom);
            os << cell;
        }
        os << "\n";
    }
}

/** Print a row of fixed-width cells. */
inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *fmt = "%10.3f")
{
    std::printf("%-16s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

inline void
printHeader(const std::string &label,
            const std::vector<std::string> &columns, int width = 10)
{
    std::printf("%-16s", label.c_str());
    for (const std::string &c : columns)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

} // namespace nocstar::bench

#endif // NOCSTAR_BENCH_COMMON_HH
