/**
 * @file
 * Shared helpers for the figure/table regeneration harnesses: standard
 * system configurations (paper Table II / §IV methodology), simple
 * fixed-width table printing, and the parallel sweep runner.
 *
 * Sweeps run through SweepHarness::runMany(), which fans the
 * independent simulations out over a thread pool (--jobs flag /
 * NOCSTAR_JOBS env var, hardware concurrency by default). Results come
 * back in input order and each simulation is deterministic given its
 * config, so a bench's stdout is byte-identical at any job count; all
 * timing output goes to stderr and a machine-readable BENCH_<name>.json
 * so the perf trajectory can be tracked across PRs without perturbing
 * the tables.
 */

#ifndef NOCSTAR_BENCH_COMMON_HH
#define NOCSTAR_BENCH_COMMON_HH

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/build_info.hh"

#include "cpu/system.hh"
#include "sim/parallel.hh"
#include "sim/trace.hh"
#include "sim/trace_recorder.hh"
#include "workload/spec.hh"

namespace nocstar::bench
{

/** Default accesses per thread for full-system runs. */
constexpr std::uint64_t defaultAccesses = 30000;

/** Monolithic banking per the paper: 4 banks up to 32 cores, 8 at 64. */
inline unsigned
banksFor(unsigned cores)
{
    return cores >= 64 ? 8 : 4;
}

/**
 * Baseline system configuration for one multithreaded workload running
 * one thread per core, per the paper's single-workload experiments.
 */
inline cpu::SystemConfig
makeConfig(core::OrgKind kind, unsigned cores,
           const workload::WorkloadSpec &spec, bool superpages = true,
           std::uint64_t seed = 12345)
{
    cpu::SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    config.org.banks = banksFor(cores);
    cpu::AppConfig app;
    app.spec = spec;
    app.threads = cores;
    config.apps.push_back(std::move(app));
    config.superpages = superpages;
    config.seed = seed;
    return config;
}

/**
 * Multiprogrammed-mix configuration (Fig 18 and friends): the apps
 * named by @p combo, each running cores/4 threads, with the seed the
 * paper sweep derives from the combination itself.
 */
inline cpu::SystemConfig
makeMixConfig(const std::array<std::size_t, 4> &combo, core::OrgKind kind,
              unsigned cores)
{
    cpu::SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = cores;
    config.org.banks = banksFor(cores);
    for (std::size_t w : combo) {
        cpu::AppConfig app;
        app.spec = workload::paperWorkloads()[w];
        app.threads = cores / 4;
        config.apps.push_back(std::move(app));
    }
    config.seed = 9000 + combo[0] * 1331 + combo[1] * 121 +
                  combo[2] * 11 + combo[3];
    return config;
}

/**
 * Observability options shared by every bench, filled in by
 * parseBenchArgs(). All default off; the hot path is untouched (and a
 * sweep's stdout byte-identical) unless one is requested.
 */
struct Observability
{
    /** --trace: capture structured events into the global recorder. */
    bool trace = false;
    /** --trace-out FILE: Chrome trace JSON destination. */
    std::string traceOut;
    /** --stats-json FILE: per-run stats JSON (JSONL across a sweep). */
    std::string statsJson;
    /** --epoch N: snapshot the stats tree every N cycles. */
    Cycle epoch = 0;
    /** --epoch-reset: epoch snapshots are deltas, not totals. */
    bool epochReset = false;

    bool
    any() const
    {
        return trace || !traceOut.empty() || !statsJson.empty() ||
               epoch != 0;
    }
};

/** The process-wide observability selection (set once at startup). */
inline Observability &
observability()
{
    static Observability obs;
    return obs;
}

/**
 * Run one configuration and return the result. Epoch/stats-JSON
 * observability options requested on the command line are applied to
 * a copy of the configuration.
 */
inline cpu::RunResult
runOnce(const cpu::SystemConfig &config,
        std::uint64_t accesses = defaultAccesses)
{
    const Observability &obs = observability();
    cpu::SystemConfig cfg = config;
    cfg.statsEpochInterval = obs.epoch;
    cfg.statsEpochReset = obs.epochReset;
    cfg.statsJsonPath = obs.statsJson;
    cpu::System system(cfg);
    return system.run(accesses);
}

/** One simulation of a sweep: a configuration plus its run length. */
struct SimJob
{
    cpu::SystemConfig config;
    std::uint64_t accesses = defaultAccesses;
};

/** Command-line arguments shared by every sweep bench. */
struct BenchArgs
{
    std::uint64_t accesses;
    unsigned jobs;
};

/**
 * Parse `[accesses] [--jobs N | --jobs=N]` plus the observability
 * options (`--trace[=FLAGS]`, `--trace-out FILE`, `--stats-json FILE`,
 * `--epoch N`, `--epoch-reset`) in any order. An absent --jobs falls
 * back to NOCSTAR_JOBS, then hardware concurrency. Any observability
 * option forces a single job so traced runs stay deterministic and
 * the recorder sees one simulation's events in order.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, std::uint64_t default_accesses)
{
    BenchArgs args{default_accesses, 0};
    Observability &obs = observability();
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
            args.jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
            args.jobs = static_cast<unsigned>(std::atoi(arg + 7));
        } else if (std::strcmp(arg, "--trace") == 0) {
            obs.trace = true;
        } else if (std::strncmp(arg, "--trace=", 8) == 0) {
            obs.trace = true;
            if (!trace::setFlags(arg + 8))
                std::fprintf(stderr,
                             "warning: unknown debug flag in '%s'\n",
                             arg + 8);
        } else if (std::strcmp(arg, "--trace-out") == 0 &&
                   i + 1 < argc) {
            obs.trace = true;
            obs.traceOut = argv[++i];
        } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
            obs.trace = true;
            obs.traceOut = arg + 12;
        } else if (std::strcmp(arg, "--stats-json") == 0 &&
                   i + 1 < argc) {
            obs.statsJson = argv[++i];
        } else if (std::strncmp(arg, "--stats-json=", 13) == 0) {
            obs.statsJson = arg + 13;
        } else if (std::strcmp(arg, "--epoch") == 0 && i + 1 < argc) {
            obs.epoch = static_cast<Cycle>(std::atoll(argv[++i]));
        } else if (std::strncmp(arg, "--epoch=", 8) == 0) {
            obs.epoch = static_cast<Cycle>(std::atoll(arg + 8));
        } else if (std::strcmp(arg, "--epoch-reset") == 0) {
            obs.epochReset = true;
        } else if (arg[0] != '-') {
            args.accesses =
                static_cast<std::uint64_t>(std::atoll(arg));
        }
    }
    if (obs.any()) {
        if (args.jobs > 1)
            std::fprintf(stderr,
                         "note: observability options force --jobs 1\n");
        args.jobs = 1;
    }
    if (obs.trace)
        sim::TraceRecorder::global().start();
    if (args.jobs == 0)
        args.jobs = sim::defaultJobs();
    return args;
}

/**
 * Wall-clock accounting and the worker pool for one bench's sweeps.
 * On finish() (or destruction) it prints a summary to stderr and
 * writes BENCH_<name>.json into the working directory.
 */
class SweepHarness
{
  public:
    SweepHarness(std::string name, unsigned jobs)
        : name_(std::move(name)), pool_(jobs),
          start_(std::chrono::steady_clock::now())
    {}

    ~SweepHarness() { finish(); }

    SweepHarness(const SweepHarness &) = delete;
    SweepHarness &operator=(const SweepHarness &) = delete;

    unsigned jobs() const { return pool_.size() > 0 ? pool_.size() : 1; }

    /**
     * Run every job on the pool; results are returned in input order,
     * so downstream printing is independent of the job count.
     */
    std::vector<cpu::RunResult>
    runMany(const std::vector<SimJob> &jobs)
    {
        auto results = pool_.map(jobs, [](const SimJob &job) {
            return runOnce(job.config, job.accesses);
        });
        simsRun_ += results.size();
        for (const cpu::RunResult &r : results)
            simCycles_ += r.cycles;
        return results;
    }

    /** Write the timing artifacts; idempotent. */
    void
    finish()
    {
        if (finished_)
            return;
        finished_ = true;
        double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
        double rate = wall > 0 ? static_cast<double>(simCycles_) / wall
                               : 0.0;
        std::fprintf(stderr,
                     "[%s] %llu sims on %u jobs in %.2fs "
                     "(%.3g sim-cycles/s)\n",
                     name_.c_str(),
                     static_cast<unsigned long long>(simsRun_), jobs(),
                     wall, rate);

        std::string path = "BENCH_" + name_ + ".json";
        if (std::FILE *f = std::fopen(path.c_str(), "w")) {
            std::fprintf(f,
                         "{\"bench\": \"%s\", \"jobs\": %u, "
                         "\"sims\": %llu, \"wall_seconds\": %.6f, "
                         "\"sim_cycles\": %llu, "
                         "\"sim_cycles_per_sec\": %.1f, "
                         "\"git_sha\": \"%s\", "
                         "\"compiler\": \"%s %s\", "
                         "\"build_type\": \"%s\", "
                         "\"host_cores\": %u}\n",
                         name_.c_str(), jobs(),
                         static_cast<unsigned long long>(simsRun_),
                         wall,
                         static_cast<unsigned long long>(simCycles_),
                         rate, build::kGitSha, build::kCompilerId,
                         build::kCompilerVersion, build::kBuildType,
                         std::thread::hardware_concurrency());
            std::fclose(f);
        } else {
            std::fprintf(stderr, "[%s] cannot write %s\n",
                         name_.c_str(), path.c_str());
        }

        // Export the structured trace if --trace captured anything.
        const Observability &obs = observability();
        if (obs.trace) {
            const sim::TraceRecorder &rec = sim::TraceRecorder::global();
            std::string tpath = obs.traceOut.empty()
                                    ? "TRACE_" + name_ + ".json"
                                    : obs.traceOut;
            if (rec.recorded() == 0) {
                std::fprintf(stderr, "[%s] no trace events captured\n",
                             name_.c_str());
            } else if (rec.exportChromeJson(tpath)) {
                std::fprintf(
                    stderr,
                    "[%s] wrote %llu trace events to %s "
                    "(%llu dropped)\n",
                    name_.c_str(),
                    static_cast<unsigned long long>(rec.size()),
                    tpath.c_str(),
                    static_cast<unsigned long long>(rec.dropped()));
            } else {
                std::fprintf(stderr, "[%s] cannot write %s\n",
                             name_.c_str(), tpath.c_str());
            }
        }
    }

  private:
    std::string name_;
    sim::ThreadPool pool_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t simsRun_ = 0;
    std::uint64_t simCycles_ = 0;
    bool finished_ = false;
};

/** Speedup of @p config against a private-L2-TLB baseline. */
inline double
speedupVsPrivate(const cpu::RunResult &baseline,
                 const cpu::RunResult &other)
{
    return other.meanCycles > 0 ? baseline.meanCycles / other.meanCycles
                                : 0.0;
}

/**
 * Render the per-link occupancy heatmap from a fabric's
 * link_hold_cycles vector: one row per tile, the E/W/N/S output links
 * of each tile as the fraction of @p cycles they were held. Written to
 * @p os (use stderr / a file -- sweep stdout is reserved for tables).
 */
inline void
printLinkHeatmap(std::ostream &os, const noc::GridTopology &topo,
                 const stats::Vector &hold_cycles, Cycle cycles)
{
    os << "link occupancy (E/W/N/S per tile, fraction of "
       << cycles << " cycles)\n";
    char cell[64];
    for (unsigned y = 0; y < topo.height(); ++y) {
        for (unsigned x = 0; x < topo.width(); ++x) {
            CoreId tile = topo.tileAt({x, y});
            double denom = cycles ? static_cast<double>(cycles) : 1.0;
            std::snprintf(
                cell, sizeof(cell), "  [%3u] %.2f/%.2f/%.2f/%.2f",
                tile, hold_cycles[tile * 4 + 0] / denom,
                hold_cycles[tile * 4 + 1] / denom,
                hold_cycles[tile * 4 + 2] / denom,
                hold_cycles[tile * 4 + 3] / denom);
            os << cell;
        }
        os << "\n";
    }
}

/** Print a row of fixed-width cells. */
inline void
printRow(const std::string &label, const std::vector<double> &values,
         const char *fmt = "%10.3f")
{
    std::printf("%-16s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

inline void
printHeader(const std::string &label,
            const std::vector<std::string> &columns, int width = 10)
{
    std::printf("%-16s", label.c_str());
    for (const std::string &c : columns)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

} // namespace nocstar::bench

#endif // NOCSTAR_BENCH_COMMON_HH
