/**
 * @file
 * Table I: TLB interconnect design choices. Quantitative figures of
 * merit (average unloaded latency, saturation throughput, area and
 * power proxies) for Bus / Mesh / FBFly-wide / FBFly-narrow / SMART /
 * NOCSTAR on a 64-tile chip, plus the good/bad ratings matching the
 * paper's check-mark matrix.
 */

#include <cstdio>
#include <initializer_list>

#include "bench/arg_parser.hh"
#include "noc/design_space.hh"

using namespace nocstar;
using namespace nocstar::noc;

int
main(int argc, char **argv)
{
    unsigned cores = 64;
    bench::ArgParser parser(
        "tab1_noc_design_space",
        "Table I: TLB interconnect design choices (analytic model)");
    parser.positional("CORES", &cores, "tile count (default 64)");
    parser.parseOrExit(argc, argv);

    DesignSpace space(cores, 16);
    std::printf("Table I: TLB interconnect design choices (%u tiles)\n",
                cores);
    std::printf("%-14s %9s %9s %12s %12s | %-8s %-8s %-8s %-8s\n",
                "NOC", "lat(cyc)", "sat(thr)", "area(norm)",
                "power(norm)", "Latency", "Bandwdth", "Area",
                "Power");

    auto figures = space.evaluate();
    // Normalize proxies to the mesh row for readability.
    double mesh_area = figures[1].areaProxy;
    double mesh_power = figures[1].powerProxy;
    for (const auto &f : figures) {
        std::printf("%-14s %9.2f %9.4f %12.2f %12.2f | %-8s %-8s %-8s "
                    "%-8s\n",
                    f.name.c_str(), f.avgLatency,
                    f.saturationThroughput, f.areaProxy / mesh_area,
                    f.powerProxy / mesh_power,
                    DesignSpace::ratingString(f.latencyRating),
                    DesignSpace::ratingString(f.bandwidthRating),
                    DesignSpace::ratingString(f.areaRating),
                    DesignSpace::ratingString(f.powerRating));
    }
    return 0;
}
