/**
 * @file
 * Declarative command-line parsing for the bench binaries and examples.
 *
 * Each binary registers its options and positionals once (ArgSpec
 * records held by an ArgParser), then calls parseOrExit(). The parser
 * handles `--opt value` and `--opt=value`, generates `--help` from the
 * registered specs, rejects unknown flags, and -- unlike the atoi()
 * loops it replaces -- rejects non-numeric garbage instead of silently
 * reading it as zero.
 *
 * Exit protocol: `--help` prints usage to stdout and exits 0; any
 * parse error prints every problem plus the usage to stderr and exits
 * 2, so sweep scripts fail fast instead of simulating a typo.
 */

#ifndef NOCSTAR_BENCH_ARG_PARSER_HH
#define NOCSTAR_BENCH_ARG_PARSER_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

namespace nocstar::bench
{

/** Full-consumption unsigned parse; rejects trailing garbage. */
inline bool
parseUnsigned(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text[0] == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

/** Full-consumption double parse; rejects trailing garbage. */
inline bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

/** One registered option, flag or positional. */
struct ArgSpec
{
    enum class Kind
    {
        Flag, ///< --name, no value
        Value, ///< --name VALUE or --name=VALUE
        OptionalValue, ///< --name or --name=VALUE (never eats the
                       ///< next argument)
        Positional, ///< bare argument, filled in registration order
    };

    std::string name; ///< option name without "--"; metavar for
                      ///< positionals
    std::string metavar; ///< value placeholder in usage (Value kinds)
    std::string help;
    Kind kind = Kind::Flag;
    bool required = false; ///< positionals only
    bool seen = false;
    /** Store a value; false means the value did not parse. */
    std::function<bool(const std::string &)> store;
    /** Fire for Flag / OptionalValue-without-value. */
    std::function<void()> fire;
};

/**
 * The parser: a list of ArgSpecs plus the parse loop and the usage
 * generator. All registration methods return *this for chaining.
 */
class ArgParser
{
  public:
    ArgParser(std::string program, std::string description)
        : program_(std::move(program)),
          description_(std::move(description))
    {}

    // -- Typed value options (--name VALUE | --name=VALUE) ------------

    ArgParser &
    option(const std::string &name, std::uint64_t *out,
           const std::string &help, const std::string &metavar = "N")
    {
        return valueSpec(name, metavar, help,
                         [out](const std::string &v) {
                             return parseUnsigned(v, *out);
                         });
    }

    ArgParser &
    option(const std::string &name, unsigned *out,
           const std::string &help, const std::string &metavar = "N")
    {
        return valueSpec(name, metavar, help,
                         [out](const std::string &v) {
                             std::uint64_t wide = 0;
                             if (!parseUnsigned(v, wide) ||
                                 wide > 0xffffffffULL)
                                 return false;
                             *out = static_cast<unsigned>(wide);
                             return true;
                         });
    }

    ArgParser &
    option(const std::string &name, double *out,
           const std::string &help, const std::string &metavar = "X")
    {
        return valueSpec(name, metavar, help,
                         [out](const std::string &v) {
                             return parseDouble(v, *out);
                         });
    }

    ArgParser &
    option(const std::string &name, std::string *out,
           const std::string &help,
           const std::string &metavar = "FILE")
    {
        return valueSpec(name, metavar, help,
                         [out](const std::string &v) {
                             *out = v;
                             return true;
                         });
    }

    /** Value option with a custom store (validation included). */
    ArgParser &
    option(const std::string &name,
           std::function<bool(const std::string &)> store,
           const std::string &help, const std::string &metavar = "V")
    {
        return valueSpec(name, metavar, help, std::move(store));
    }

    /** Boolean flag (--name). */
    ArgParser &
    flag(const std::string &name, bool *out, const std::string &help)
    {
        ArgSpec spec;
        spec.name = name;
        spec.help = help;
        spec.kind = ArgSpec::Kind::Flag;
        spec.fire = [out] { *out = true; };
        specs_.push_back(std::move(spec));
        return *this;
    }

    /**
     * Option usable bare or with =VALUE (--name | --name=VALUE), e.g.
     * --trace[=FLAGS]. Never consumes the following argument.
     */
    ArgParser &
    optionalValue(const std::string &name, std::function<void()> bare,
                  std::function<bool(const std::string &)> store,
                  const std::string &help,
                  const std::string &metavar = "V")
    {
        ArgSpec spec;
        spec.name = name;
        spec.metavar = metavar;
        spec.help = help;
        spec.kind = ArgSpec::Kind::OptionalValue;
        spec.fire = std::move(bare);
        spec.store = std::move(store);
        specs_.push_back(std::move(spec));
        return *this;
    }

    // -- Positionals (filled left to right in registration order) ----

    ArgParser &
    positional(const std::string &metavar, std::uint64_t *out,
               const std::string &help, bool required = false)
    {
        return positionalSpec(metavar, help, required,
                              [out](const std::string &v) {
                                  return parseUnsigned(v, *out);
                              });
    }

    ArgParser &
    positional(const std::string &metavar, unsigned *out,
               const std::string &help, bool required = false)
    {
        return positionalSpec(metavar, help, required,
                              [out](const std::string &v) {
                                  std::uint64_t wide = 0;
                                  if (!parseUnsigned(v, wide) ||
                                      wide > 0xffffffffULL)
                                      return false;
                                  *out = static_cast<unsigned>(wide);
                                  return true;
                              });
    }

    ArgParser &
    positional(const std::string &metavar, std::string *out,
               const std::string &help, bool required = false)
    {
        return positionalSpec(metavar, help, required,
                              [out](const std::string &v) {
                                  *out = v;
                                  return true;
                              });
    }

    /** Was this option/positional supplied on the command line? */
    bool
    seen(const std::string &name) const
    {
        for (const ArgSpec &spec : specs_)
            if (spec.name == name)
                return spec.seen;
        return false;
    }

    /**
     * Parse @p argv. Returns true on success; on failure every
     * problem is appended to errors().
     */
    bool
    parse(int argc, char **argv)
    {
        std::size_t next_positional = 0;
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                helpRequested_ = true;
                continue;
            }
            if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
                std::string name = arg.substr(2);
                std::string value;
                bool has_value = false;
                if (std::size_t eq = name.find('=');
                    eq != std::string::npos) {
                    value = name.substr(eq + 1);
                    name.erase(eq);
                    has_value = true;
                }
                ArgSpec *spec = find(name);
                if (!spec) {
                    errors_.push_back("unknown option --" + name);
                    continue;
                }
                spec->seen = true;
                switch (spec->kind) {
                  case ArgSpec::Kind::Flag:
                    if (has_value)
                        errors_.push_back("--" + name +
                                          " takes no value");
                    else
                        spec->fire();
                    break;
                  case ArgSpec::Kind::OptionalValue:
                    if (has_value) {
                        if (!spec->store(value))
                            errors_.push_back("invalid value '" +
                                              value + "' for --" +
                                              name);
                    } else {
                        spec->fire();
                    }
                    break;
                  case ArgSpec::Kind::Value:
                    if (!has_value) {
                        if (i + 1 >= argc) {
                            errors_.push_back("--" + name +
                                              " needs a value");
                            break;
                        }
                        value = argv[++i];
                    }
                    if (!spec->store(value))
                        errors_.push_back("invalid value '" + value +
                                          "' for --" + name);
                    break;
                  case ArgSpec::Kind::Positional:
                    break; // unreachable: positionals aren't options
                }
                continue;
            }
            if (arg.size() > 1 && arg[0] == '-') {
                errors_.push_back("unknown option " + arg);
                continue;
            }
            // Bare argument: the next unfilled positional.
            ArgSpec *spec = nullptr;
            while (next_positional < specs_.size()) {
                ArgSpec &candidate = specs_[next_positional++];
                if (candidate.kind == ArgSpec::Kind::Positional) {
                    spec = &candidate;
                    break;
                }
            }
            if (!spec) {
                errors_.push_back("unexpected argument '" + arg + "'");
                continue;
            }
            spec->seen = true;
            if (!spec->store(arg))
                errors_.push_back("invalid value '" + arg + "' for " +
                                  spec->name);
        }
        for (const ArgSpec &spec : specs_)
            if (spec.kind == ArgSpec::Kind::Positional &&
                spec.required && !spec.seen)
                errors_.push_back("missing required argument " +
                                  spec.name);
        return errors_.empty();
    }

    /**
     * parse(), then honour --help (usage to stdout, exit 0) and
     * errors (all of them plus usage to stderr, exit 2).
     */
    void
    parseOrExit(int argc, char **argv)
    {
        bool ok = parse(argc, argv);
        if (helpRequested_) {
            printUsage(std::cout);
            std::exit(0);
        }
        if (!ok) {
            for (const std::string &e : errors_)
                std::cerr << program_ << ": " << e << "\n";
            printUsage(std::cerr);
            std::exit(2);
        }
    }

    bool helpRequested() const { return helpRequested_; }
    const std::vector<std::string> &errors() const { return errors_; }

    void
    printUsage(std::ostream &os) const
    {
        os << "usage: " << program_ << " [options]";
        for (const ArgSpec &spec : specs_) {
            if (spec.kind != ArgSpec::Kind::Positional)
                continue;
            os << (spec.required ? " " + spec.name
                                 : " [" + spec.name + "]");
        }
        os << "\n";
        if (!description_.empty())
            os << "\n" << description_ << "\n";

        bool have_positionals = false;
        for (const ArgSpec &spec : specs_)
            have_positionals |=
                spec.kind == ArgSpec::Kind::Positional;
        if (have_positionals) {
            os << "\npositional arguments:\n";
            for (const ArgSpec &spec : specs_)
                if (spec.kind == ArgSpec::Kind::Positional)
                    printSpec(os, spec.name, spec.help);
        }
        os << "\noptions:\n";
        for (const ArgSpec &spec : specs_) {
            switch (spec.kind) {
              case ArgSpec::Kind::Flag:
                printSpec(os, "--" + spec.name, spec.help);
                break;
              case ArgSpec::Kind::Value:
                printSpec(os, "--" + spec.name + " " + spec.metavar,
                          spec.help);
                break;
              case ArgSpec::Kind::OptionalValue:
                printSpec(os,
                          "--" + spec.name + "[=" + spec.metavar + "]",
                          spec.help);
                break;
              case ArgSpec::Kind::Positional:
                break;
            }
        }
        printSpec(os, "--help", "show this help and exit");
    }

  private:
    ArgParser &
    valueSpec(const std::string &name, const std::string &metavar,
              const std::string &help,
              std::function<bool(const std::string &)> store)
    {
        ArgSpec spec;
        spec.name = name;
        spec.metavar = metavar;
        spec.help = help;
        spec.kind = ArgSpec::Kind::Value;
        spec.store = std::move(store);
        specs_.push_back(std::move(spec));
        return *this;
    }

    ArgParser &
    positionalSpec(const std::string &metavar, const std::string &help,
                   bool required,
                   std::function<bool(const std::string &)> store)
    {
        ArgSpec spec;
        spec.name = metavar;
        spec.help = help;
        spec.kind = ArgSpec::Kind::Positional;
        spec.required = required;
        spec.store = std::move(store);
        specs_.push_back(std::move(spec));
        return *this;
    }

    ArgSpec *
    find(const std::string &name)
    {
        for (ArgSpec &spec : specs_)
            if (spec.kind != ArgSpec::Kind::Positional &&
                spec.name == name)
                return &spec;
        return nullptr;
    }

    static void
    printSpec(std::ostream &os, const std::string &left,
              const std::string &help)
    {
        os << "  " << left;
        if (left.size() < 24)
            os << std::string(24 - left.size(), ' ');
        else
            os << "\n  " << std::string(24, ' ');
        os << help << "\n";
    }

    std::string program_;
    std::string description_;
    std::vector<ArgSpec> specs_;
    std::vector<std::string> errors_;
    bool helpRequested_ = false;
};

} // namespace nocstar::bench

#endif // NOCSTAR_BENCH_ARG_PARSER_HH
