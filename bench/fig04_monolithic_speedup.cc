/**
 * @file
 * Fig 4: speedup of a monolithic multi-banked shared L2 TLB over
 * private L2 TLBs on a 32-core system, as the shared TLB's total
 * access latency varies from 25 cycles (realistic SRAM + interconnect)
 * down to 9 cycles (unrealizable ideal matching the private arrays).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    constexpr unsigned cores = 32;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 6000,
        "Fig 4: ideal monolithic shared-L2 speedup vs access latency");
    std::uint64_t accesses = args.accesses;
    const Cycle latencies[] = {25, 16, 11, 9};

    std::printf("Fig 4: monolithic shared L2 TLB speedup vs private, "
                "32 cores\n");
    bench::printHeader("workload",
                       {"25-cc", "16-cc", "11-cc", "9-cc"});

    std::vector<double> averages(4, 0.0);
    for (const auto &spec : workload::paperWorkloads()) {
        auto priv = bench::runOnce(
            bench::makeConfig(core::OrgKind::Private, cores, spec),
            accesses);
        std::vector<double> row;
        for (std::size_t i = 0; i < 4; ++i) {
            auto config = bench::makeConfig(
                core::OrgKind::MonolithicMesh, cores, spec);
            config.org.monolithicAccessOverride = latencies[i];
            auto shared = bench::runOnce(config, accesses);
            double speedup = bench::speedupVsPrivate(priv, shared);
            row.push_back(speedup);
            averages[i] += speedup / 11.0;
        }
        bench::printRow(spec.name, row);
    }
    bench::printRow("average", averages);
    return 0;
}
