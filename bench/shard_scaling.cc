/**
 * @file
 * Shard-scaling benchmark: wall-clock speedup of the window engine
 * (SystemConfig::shards) on one large simulation, plus a built-in
 * identity check.
 *
 * Two 64-tile configurations bracket the engine's regimes:
 *
 *  - hit-heavy (private org): nearly every access is an inline L1 hit
 *    inside a shard's window, so phase A -- parallel per-shard step
 *    execution -- dominates. Run at 1, 2 and 4 shards.
 *  - miss-heavy (NOCSTAR org): the hot set blows out the L1 arrays, so
 *    most accesses defer to the window boundary and the run is
 *    dominated by the uncore. This is the regime the parallel
 *    pre-probe phase (phase B1, see DESIGN.md "sharding the uncore")
 *    targets. Run at 1 and 4 shards.
 *
 * stdout is a deterministic table of simulation results per shard
 * count, so diffing it across hosts or shard counts proves exactness;
 * the process exits non-zero if any field differs. Wall-clock numbers
 * and the phase split (phase A / pre-probe / barrier / drain / serial
 * uncore, from System::shardTiming()) go to stderr and to the
 * machine-readable BENCH_shard.json used by the CI perf gate, making
 * the remaining Amdahl headroom visible run-over-run.
 *
 * The speedup is a hardware property: with fewer free CPUs than
 * shards the crew falls back to serial windows (same results, no
 * speedup), so BENCH_shard.json records host_cores and the CI gate
 * conditions its speedup assertions on it.
 *
 * Usage: bench_shard_scaling [ACCESSES] [--tiles N]
 *        [--baseline-json FILE]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/build_info.hh"

#include "bench_common.hh"

using namespace nocstar;
using namespace nocstar::bench;

namespace
{

/**
 * Hit-heavy variant of the test workload: the hot set stays resident
 * in the 64-entry L1 arrays and bursts are short, so nearly every
 * access is an inline L1 hit inside a shard's window.
 */
workload::WorkloadSpec
hitHeavySpec()
{
    workload::WorkloadSpec spec = workload::testWorkload();
    spec.name = "hit-heavy";
    spec.hotPages = 40;
    spec.warmFraction = 0.02;
    spec.coldFraction = 0.0005;
    spec.instructionsPerAccess = 1.0;
    spec.baseCpi = 0.5;
    spec.dataStallPerAccess = 0.5;
    return spec;
}

/**
 * Miss-heavy variant: a hot set far beyond the L1 arrays (but mostly
 * L2-resident) plus a cold tail that walks, so the bulk of every
 * window's work is deferred misses replayed through the uncore.
 */
workload::WorkloadSpec
missHeavySpec()
{
    workload::WorkloadSpec spec = workload::testWorkload();
    spec.name = "miss-heavy";
    spec.hotPages = 4096;
    spec.warmFraction = 0.2;
    spec.coldFraction = 0.01;
    spec.instructionsPerAccess = 1.0;
    spec.baseCpi = 0.5;
    spec.dataStallPerAccess = 0.5;
    return spec;
}

struct Measurement
{
    unsigned shards;
    cpu::RunResult result;
    double wallSeconds = 0;
    cpu::System::ShardTiming timing;
};

Measurement
measure(core::OrgKind kind, const workload::WorkloadSpec &spec,
        unsigned shards, unsigned tiles, std::uint64_t accesses)
{
    cpu::SystemConfig config = makeConfig(kind, tiles, spec);
    config.shards = shards;
    if (std::vector<std::string> errors = config.validate();
        !errors.empty()) {
        for (const std::string &e : errors)
            std::fprintf(stderr, "invalid config: %s\n", e.c_str());
        std::exit(2);
    }

    // Untimed warmup absorbs first-touch page-table allocation and
    // allocator/branch warmup.
    cpu::System(config).run(accesses / 4);

    cpu::System system(config);
    auto start = std::chrono::steady_clock::now();
    Measurement m{shards, system.run(accesses), 0, {}};
    m.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    m.timing = system.shardTiming();
    return m;
}

bool
identical(const cpu::RunResult &a, const cpu::RunResult &b)
{
    return a.cycles == b.cycles && a.meanCycles == b.meanCycles &&
           a.instructions == b.instructions &&
           a.l1Accesses == b.l1Accesses && a.l1Misses == b.l1Misses &&
           a.l2Accesses == b.l2Accesses && a.l2Hits == b.l2Hits &&
           a.l2Misses == b.l2Misses && a.walks == b.walks &&
           a.avgL2AccessLatency == b.avgL2AccessLatency &&
           a.avgWalkLatency == b.avgWalkLatency &&
           a.energyPj == b.energyPj &&
           a.shootdowns == b.shootdowns &&
           a.concurrencyBuckets == b.concurrencyBuckets;
}

void
printRow(const Measurement &m)
{
    std::printf("%-8u %12llu %12llu %12llu %10llu %16.3f\n", m.shards,
                static_cast<unsigned long long>(m.result.cycles),
                static_cast<unsigned long long>(m.result.l1Misses),
                static_cast<unsigned long long>(m.result.l2Misses),
                static_cast<unsigned long long>(m.result.walks),
                m.result.energyPj);
}

void
printPhaseSplit(const char *what, const Measurement &m)
{
    const cpu::System::ShardTiming &t = m.timing;
    std::fprintf(stderr,
                 "[shard] %s phase split (%u shards): %llu windows, "
                 "%llu deferred misses (%llu pre-probed); wall ms: "
                 "phase A %.1f, pre-probe %.1f, drain %.1f, uncore "
                 "%.1f, barrier wait %.1f\n",
                 what, m.shards,
                 static_cast<unsigned long long>(t.windows),
                 static_cast<unsigned long long>(t.deferredMisses),
                 static_cast<unsigned long long>(t.preProbes),
                 t.stepWallNanos / 1e6, t.probeWallNanos / 1e6,
                 t.drainNanos / 1e6, t.uncoreNanos / 1e6,
                 t.barrierNanos / 1e6);
}

double
loadBaselineSpeedup4(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read baseline json '%s'\n",
                     path.c_str());
        return 0;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    const std::string tag = "\"speedup_4\":";
    std::size_t at = text.find(tag);
    if (at == std::string::npos) {
        std::fprintf(stderr, "no speedup_4 in '%s'\n", path.c_str());
        return 0;
    }
    return std::strtod(text.c_str() + at + tag.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args{50000, 0};
    unsigned tiles = 64;
    std::string baseline_path;
    ArgParser parser = makeBenchParser(
        argc, argv,
        "window-engine shard scaling: wall-clock speedup and "
        "byte-identity on hit-heavy (phase A bound) and miss-heavy "
        "(uncore bound) 64-tile runs",
        args);
    parser.option("tiles", &tiles, "tile count (default 64)");
    parser.option("baseline-json", &baseline_path,
                  "prior BENCH_shard.json to print the speedup-ratio "
                  "against");
    finalizeBenchArgs(parser, argc, argv, args);

    // The miss-heavy run replays most accesses through the serial-ish
    // uncore, so it gets a shorter quota for comparable wall time.
    std::uint64_t miss_accesses =
        std::max<std::uint64_t>(2000, args.accesses / 5);

    std::printf("Shard scaling identity "
                "(private org, %u tiles, hit-heavy workload)\n",
                tiles);
    std::printf("%-8s %12s %12s %12s %10s %16s\n", "shards", "cycles",
                "l1_misses", "l2_misses", "walks", "energy_pj");

    std::vector<Measurement> hit_runs;
    for (unsigned shards : {1u, 2u, 4u})
        hit_runs.push_back(measure(core::OrgKind::Private,
                                   hitHeavySpec(), shards, tiles,
                                   args.accesses));

    bool hit_identical = true;
    for (const Measurement &m : hit_runs) {
        printRow(m);
        hit_identical =
            hit_identical && identical(hit_runs[0].result, m.result);
    }

    std::printf("Shard scaling identity "
                "(nocstar org, %u tiles, miss-heavy workload)\n",
                tiles);
    std::printf("%-8s %12s %12s %12s %10s %16s\n", "shards", "cycles",
                "l1_misses", "l2_misses", "walks", "energy_pj");

    std::vector<Measurement> miss_runs;
    for (unsigned shards : {1u, 4u})
        miss_runs.push_back(measure(core::OrgKind::Nocstar,
                                    missHeavySpec(), shards, tiles,
                                    miss_accesses));

    bool miss_identical = true;
    for (const Measurement &m : miss_runs) {
        printRow(m);
        miss_identical =
            miss_identical && identical(miss_runs[0].result, m.result);
    }

    bool all_identical = hit_identical && miss_identical;
    std::printf("identical: %s\n", all_identical ? "yes" : "NO");

    unsigned host_cores = std::thread::hardware_concurrency();
    double speedup_2 = hit_runs[1].wallSeconds > 0
        ? hit_runs[0].wallSeconds / hit_runs[1].wallSeconds : 0;
    double speedup_4 = hit_runs[2].wallSeconds > 0
        ? hit_runs[0].wallSeconds / hit_runs[2].wallSeconds : 0;
    double speedup_miss_4 = miss_runs[1].wallSeconds > 0
        ? miss_runs[0].wallSeconds / miss_runs[1].wallSeconds : 0;
    std::fprintf(stderr,
                 "[shard] host_cores=%u hit-heavy wall 1/2/4 shards: "
                 "%.3fs / %.3fs / %.3fs -> speedup %.2fx / %.2fx\n",
                 host_cores, hit_runs[0].wallSeconds,
                 hit_runs[1].wallSeconds, hit_runs[2].wallSeconds,
                 speedup_2, speedup_4);
    std::fprintf(stderr,
                 "[shard] miss-heavy wall 1/4 shards: %.3fs / %.3fs "
                 "-> speedup %.2fx\n",
                 miss_runs[0].wallSeconds, miss_runs[1].wallSeconds,
                 speedup_miss_4);
    printPhaseSplit("hit-heavy", hit_runs[2]);
    printPhaseSplit("miss-heavy", miss_runs[1]);
    if (host_cores < 4)
        std::fprintf(stderr,
                     "[shard] note: %u hardware threads < 4 shards -- "
                     "the crew ran serial windows, speedups are not "
                     "meaningful on this host\n",
                     host_cores);

    if (!baseline_path.empty()) {
        double base = loadBaselineSpeedup4(baseline_path);
        if (base > 0)
            std::fprintf(stderr,
                         "[shard] baseline speedup_4 %.2fx -> ratio "
                         "%.2fx\n",
                         base, speedup_4 / base);
    }

    const cpu::System::ShardTiming &mt = miss_runs[1].timing;
    if (std::FILE *f = std::fopen("BENCH_shard.json", "w")) {
        std::fprintf(f,
                     "{\"bench\": \"shard\", \"tiles\": %u, "
                     "\"accesses_per_thread\": %llu, "
                     "\"miss_accesses_per_thread\": %llu, "
                     "\"identical\": %s, "
                     "\"host_cores\": %u, "
                     "\"wall_seconds_1\": %.6f, "
                     "\"wall_seconds_2\": %.6f, "
                     "\"wall_seconds_4\": %.6f, "
                     "\"speedup_2\": %.3f, "
                     "\"speedup_4\": %.3f, "
                     "\"wall_seconds_miss_1\": %.6f, "
                     "\"wall_seconds_miss_4\": %.6f, "
                     "\"speedup_miss_4\": %.3f, "
                     "\"miss_windows_4\": %llu, "
                     "\"miss_deferred_4\": %llu, "
                     "\"miss_pre_probes_4\": %llu, "
                     "\"miss_phase_a_wall_ns_4\": %llu, "
                     "\"miss_phase_a_busy_ns_4\": %llu, "
                     "\"miss_pre_probe_wall_ns_4\": %llu, "
                     "\"miss_pre_probe_busy_ns_4\": %llu, "
                     "\"miss_barrier_ns_4\": %llu, "
                     "\"miss_drain_ns_4\": %llu, "
                     "\"miss_uncore_ns_4\": %llu, "
                     "\"git_sha\": \"%s\", "
                     "\"compiler\": \"%s %s\", "
                     "\"build_type\": \"%s\"}\n",
                     tiles,
                     static_cast<unsigned long long>(args.accesses),
                     static_cast<unsigned long long>(miss_accesses),
                     all_identical ? "true" : "false", host_cores,
                     hit_runs[0].wallSeconds, hit_runs[1].wallSeconds,
                     hit_runs[2].wallSeconds, speedup_2, speedup_4,
                     miss_runs[0].wallSeconds, miss_runs[1].wallSeconds,
                     speedup_miss_4,
                     static_cast<unsigned long long>(mt.windows),
                     static_cast<unsigned long long>(mt.deferredMisses),
                     static_cast<unsigned long long>(mt.preProbes),
                     static_cast<unsigned long long>(mt.stepWallNanos),
                     static_cast<unsigned long long>(mt.stepBusyNanos),
                     static_cast<unsigned long long>(mt.probeWallNanos),
                     static_cast<unsigned long long>(mt.probeBusyNanos),
                     static_cast<unsigned long long>(mt.barrierNanos),
                     static_cast<unsigned long long>(mt.drainNanos),
                     static_cast<unsigned long long>(mt.uncoreNanos),
                     build::kGitSha, build::kCompilerId,
                     build::kCompilerVersion, build::kBuildType);
        std::fclose(f);
    } else {
        std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    }

    return all_identical ? 0 : 1;
}
