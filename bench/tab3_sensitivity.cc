/**
 * @file
 * Table III: sensitivity of the 32-core speedups to TLB prefetching
 * (+-1, +-1..2, +-1..3 pages), hyperthreading (2 and 4 threads per
 * core) and page-table-walk latency (variable vs fixed 10/20/40/80
 * cycles). Min / avg / max speedups across workloads for monolithic,
 * distributed and NOCSTAR versus private L2 TLBs with the same
 * feature set.
 */

#include <algorithm>
#include <cstdio>
#include <functional>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

struct Row
{
    const char *pref;
    const char *smt;
    const char *ptw;
    std::function<void(cpu::SystemConfig &)> tweak;
};

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseBenchArgs(argc, argv, 3000);

    std::printf("Table III: 32-core sensitivity (speedups vs private "
                "with the same features)\n");
    std::printf("%-6s %-4s %-10s %-12s %7s %7s %7s\n", "pref", "smt",
                "ptw", "org", "min", "avg", "max");

    std::vector<Row> rows;
    rows.push_back({"no", "1", "variable", nullptr});
    for (unsigned d : {1u, 2u, 3u}) {
        static const char *labels[] = {"", "+-1", "+-1,2", "+-1..3"};
        rows.push_back({labels[d], "1", "variable",
                        [d](cpu::SystemConfig &config) {
                            config.org.prefetchDistance = d;
                        }});
    }
    for (unsigned smt : {2u, 4u}) {
        static const char *labels[] = {"", "", "2", "", "4"};
        rows.push_back({"no", labels[smt], "variable",
                        [smt](cpu::SystemConfig &config) {
                            config.smtPerCore = smt;
                            config.apps[0].threads =
                                config.org.numCores * smt;
                        }});
    }
    for (Cycle fixed : {10u, 20u, 40u, 80u}) {
        static char label[4][24];
        static int idx = 0;
        std::snprintf(label[idx], sizeof(label[idx]), "fixed-%llu",
                      static_cast<unsigned long long>(fixed));
        rows.push_back({"no", "1", label[idx],
                        [fixed](cpu::SystemConfig &config) {
                            config.walker.fixedLatency = fixed;
                        }});
        ++idx;
    }

    // Per row and workload: the private baseline then the three
    // shared organizations, all with the row's tweak applied.
    const core::OrgKind kinds[] = {
        core::OrgKind::Private, core::OrgKind::MonolithicMesh,
        core::OrgKind::Distributed, core::OrgKind::Nocstar};
    const char *names[] = {"monolithic", "distributed", "nocstar"};
    constexpr std::size_t numKinds = 4;

    const auto &specs = workload::paperWorkloads();
    std::vector<bench::SimJob> jobs;
    for (const Row &row : rows) {
        for (const auto &spec : specs) {
            for (core::OrgKind kind : kinds) {
                auto config = bench::makeConfig(kind, 32, spec);
                if (row.tweak)
                    row.tweak(config);
                jobs.push_back({std::move(config), args.accesses});
            }
        }
    }

    bench::SweepHarness harness("tab3_sensitivity", args.jobs);
    auto results = harness.runMany(jobs);

    const std::size_t rowStride = specs.size() * numKinds;
    for (std::size_t r = 0; r < rows.size(); ++r) {
        double min_s[3] = {1e9, 1e9, 1e9};
        double avg_s[3] = {0, 0, 0};
        double max_s[3] = {0, 0, 0};
        for (std::size_t w = 0; w < specs.size(); ++w) {
            const auto &priv =
                results[r * rowStride + w * numKinds];
            for (std::size_t k = 0; k < 3; ++k) {
                double s = bench::speedupVsPrivate(
                    priv,
                    results[r * rowStride + w * numKinds + 1 + k]);
                min_s[k] = std::min(min_s[k], s);
                max_s[k] = std::max(max_s[k], s);
                avg_s[k] += s / 11.0;
            }
        }
        for (std::size_t k = 0; k < 3; ++k) {
            std::printf("%-6s %-4s %-10s %-12s %7.2f %7.2f %7.2f\n",
                        rows[r].pref, rows[r].smt, rows[r].ptw,
                        names[k], min_s[k], avg_s[k], max_s[k]);
        }
    }
    return 0;
}
