/**
 * @file
 * Fig 15: teasing apart slicing versus interconnect on a 32-core
 * system. Speedups over private L2 TLBs for: monolithic over a
 * multi-hop mesh, monolithic over SMART, distributed slices over a
 * mesh, NOCSTAR, NOCSTAR with a contention-free fabric, and the ideal
 * zero-interconnect-latency shared TLB.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    constexpr unsigned cores = 32;
    std::uint64_t accesses = argc > 1
        ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 8000;

    std::printf("Fig 15: speedup vs private L2 TLBs, 32 cores\n");
    bench::printHeader("workload",
                       {"monoMesh", "monoSMART", "dist", "nocstar",
                        "nstarIdl", "ideal"});

    const core::OrgKind kinds[] = {
        core::OrgKind::MonolithicMesh, core::OrgKind::MonolithicSmart,
        core::OrgKind::Distributed, core::OrgKind::Nocstar,
        core::OrgKind::NocstarIdeal, core::OrgKind::IdealShared};

    std::vector<double> averages(6, 0.0);
    double avg_net_latency = 0;
    for (const auto &spec : workload::paperWorkloads()) {
        auto priv = bench::runOnce(
            bench::makeConfig(core::OrgKind::Private, cores, spec),
            accesses);
        std::vector<double> row;
        for (std::size_t i = 0; i < 6; ++i) {
            auto result = bench::runOnce(
                bench::makeConfig(kinds[i], cores, spec), accesses);
            double speedup = bench::speedupVsPrivate(priv, result);
            row.push_back(speedup);
            averages[i] += speedup / 11.0;
            if (kinds[i] == core::OrgKind::Nocstar)
                avg_net_latency += result.fabricAvgLatency / 11.0;
        }
        bench::printRow(spec.name, row);
    }
    bench::printRow("average", averages);
    std::printf("\nNOCSTAR average fabric latency: %.2f cycles "
                "(paper: 1-3)\n",
                avg_net_latency);
    return 0;
}
