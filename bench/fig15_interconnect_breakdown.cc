/**
 * @file
 * Fig 15: teasing apart slicing versus interconnect on a 32-core
 * system. Speedups over private L2 TLBs for: monolithic over a
 * multi-hop mesh, monolithic over SMART, distributed slices over a
 * mesh, NOCSTAR, NOCSTAR with a contention-free fabric, and the ideal
 * zero-interconnect-latency shared TLB.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    constexpr unsigned cores = 32;
    auto args = bench::parseBenchArgs(argc, argv, 8000);

    std::printf("Fig 15: speedup vs private L2 TLBs, 32 cores\n");
    bench::printHeader("workload",
                       {"monoMesh", "monoSMART", "dist", "nocstar",
                        "nstarIdl", "ideal"});

    const core::OrgKind kinds[] = {
        core::OrgKind::Private, core::OrgKind::MonolithicMesh,
        core::OrgKind::MonolithicSmart, core::OrgKind::Distributed,
        core::OrgKind::Nocstar, core::OrgKind::NocstarIdeal,
        core::OrgKind::IdealShared};
    constexpr std::size_t numKinds = 7;

    const auto &specs = workload::paperWorkloads();
    std::vector<bench::SimJob> jobs;
    for (const auto &spec : specs)
        for (core::OrgKind kind : kinds)
            jobs.push_back(
                {bench::makeConfig(kind, cores, spec), args.accesses});

    bench::SweepHarness harness("fig15_interconnect_breakdown",
                                args.jobs);
    auto results = harness.runMany(jobs);

    std::vector<double> averages(6, 0.0);
    double avg_net_latency = 0;
    for (std::size_t w = 0; w < specs.size(); ++w) {
        const auto &priv = results[w * numKinds];
        std::vector<double> row;
        for (std::size_t i = 1; i < numKinds; ++i) {
            const auto &result = results[w * numKinds + i];
            double speedup = bench::speedupVsPrivate(priv, result);
            row.push_back(speedup);
            averages[i - 1] += speedup / 11.0;
            if (kinds[i] == core::OrgKind::Nocstar)
                avg_net_latency += result.fabricAvgLatency / 11.0;
        }
        bench::printRow(specs[w].name, row);
    }
    bench::printRow("average", averages);
    std::printf("\nNOCSTAR average fabric latency: %.2f cycles "
                "(paper: 1-3)\n",
                avg_net_latency);
    return 0;
}
