/**
 * @file
 * Fig 11(c): uniform-random synthetic traffic on a 64-tile system.
 * Average network latency versus injection rate for the NOCSTAR
 * fabric and a multi-hop mesh, plus the percentage of NOCSTAR
 * messages that acquire their full path with no contention delay.
 */

#include <cstdio>
#include <initializer_list>

#include "bench/arg_parser.hh"
#include "core/interconnect.hh"
#include "noc/queued_mesh.hh"
#include "sim/random.hh"

using namespace nocstar;

namespace
{

struct SweepPoint
{
    double nocstarLatency;
    double nocstarNoContention;
    double meshLatency;
};

SweepPoint
runPoint(double rate, Cycle horizon)
{
    SweepPoint point{};
    noc::GridTopology topo = noc::GridTopology::forCores(64);

    // NOCSTAR fabric, cycle-accurate arbitration.
    {
        EventQueue queue;
        stats::StatGroup root("root");
        auto fabric = core::makeInterconnect(
            "fabric", queue, topo, core::FabricConfig{}, &root);
        Random rng(1234);
        for (Cycle t = 0; t < horizon; ++t) {
            for (CoreId src = 0; src < 64; ++src) {
                if (rng.uniform() >= rate)
                    continue;
                CoreId dst = static_cast<CoreId>(rng.below(64));
                if (dst == src)
                    continue;
                fabric->send(src, dst, t, [](Cycle) {});
            }
        }
        queue.run();
        point.nocstarLatency = fabric->averageLatency();
        point.nocstarNoContention = fabric->noContentionFraction();
    }

    // Multi-hop mesh with per-link serialization.
    {
        stats::StatGroup root("root");
        noc::QueuedMeshNetwork mesh("mesh", topo, &root);
        Random rng(1234);
        double total = 0;
        std::uint64_t count = 0;
        for (Cycle t = 0; t < horizon; ++t) {
            for (CoreId src = 0; src < 64; ++src) {
                if (rng.uniform() >= rate)
                    continue;
                CoreId dst = static_cast<CoreId>(rng.below(64));
                if (dst == src)
                    continue;
                total += static_cast<double>(mesh.traverse(src, dst,
                                                           t));
                ++count;
            }
        }
        point.meshLatency = count ? total / count : 0.0;
    }
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t horizon = 20000;
    bench::ArgParser parser(
        "fig11c_injection_sweep",
        "Fig 11c: NOCSTAR vs mesh latency under uniform random "
        "traffic");
    parser.positional("HORIZON", &horizon,
                      "simulated cycles per injection rate "
                      "(default 20000)");
    parser.parseOrExit(argc, argv);

    std::printf("Fig 11c: 64-node uniform random traffic\n");
    std::printf("%10s %14s %16s %12s\n", "inj rate", "nocstar (cyc)",
                "no-contention %", "mesh (cyc)");
    for (double rate : {0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35,
                        0.4}) {
        SweepPoint p = runPoint(rate, horizon);
        std::printf("%10.2f %14.2f %16.1f %12.2f\n", rate,
                    p.nocstarLatency, 100.0 * p.nocstarNoContention,
                    p.meshLatency);
    }
    return 0;
}
