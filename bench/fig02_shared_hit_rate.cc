/**
 * @file
 * Fig 2: percentage of private L2 TLB misses eliminated by replacing
 * private L2 TLBs with a shared L2 TLB, for 16/32/64-core systems.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 12000,
        "Fig 2: private L2 TLB misses eliminated by a shared L2");
    std::uint64_t base_accesses = args.accesses;

    std::printf("Fig 2: %% of private L2 TLB misses eliminated by a "
                "shared L2 TLB\n");
    bench::printHeader("workload", {"16-core", "32-core", "64-core"});

    std::vector<double> averages(3, 0.0);
    for (const auto &spec : workload::paperWorkloads()) {
        std::vector<double> row;
        int i = 0;
        for (unsigned cores : {16u, 32u, 64u}) {
            std::uint64_t accesses = base_accesses * 16 / cores;
            auto priv = bench::runOnce(
                bench::makeConfig(core::OrgKind::Private, cores, spec),
                accesses);
            auto shared = bench::runOnce(
                bench::makeConfig(core::OrgKind::Distributed, cores,
                                  spec),
                accesses);
            double elim = priv.l2Misses
                ? 100.0 * (1.0 -
                           static_cast<double>(shared.l2Misses) /
                               static_cast<double>(priv.l2Misses))
                : 0.0;
            row.push_back(elim);
            averages[i++] += elim / 11.0;
        }
        bench::printRow(spec.name, row, "%10.1f");
    }
    bench::printRow("Avg", averages, "%10.1f");
    return 0;
}
