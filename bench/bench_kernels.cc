/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot kernels:
 * TLB lookups, fabric arbitration, zipf sampling and full-system
 * stepping. These guard the simulation's own performance (the
 * experiment harnesses run millions of these operations).
 */

#include <benchmark/benchmark.h>

#include "core/interconnect.hh"
#include "cpu/system.hh"
#include "sim/random.hh"
#include "tlb/set_assoc_tlb.hh"
#include "workload/generator.hh"

using namespace nocstar;

namespace
{

void
BM_TlbLookup(benchmark::State &state)
{
    stats::StatGroup g("g");
    tlb::SetAssocTlb tlb("t", 1024, 8, &g);
    Random rng(1);
    for (PageNum v = 0; v < 1024; ++v) {
        tlb::TlbEntry e;
        e.valid = true;
        e.ctx = 0;
        e.vpn = v;
        e.ppn = v;
        tlb.insert(e);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tlb.lookup(0, rng.below(2048), PageSize::FourKB));
    }
}
BENCHMARK(BM_TlbLookup);

void
BM_ZipfSample(benchmark::State &state)
{
    Random rng(2);
    ZipfSampler zipf(1 << 20, 1.2);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample);

void
BM_FabricUncontendedSend(benchmark::State &state)
{
    EventQueue queue;
    stats::StatGroup root("root");
    noc::GridTopology topo = noc::GridTopology::forCores(64);
    auto fabric = core::makeInterconnect("fabric", queue, topo,
                                         core::FabricConfig{}, &root);
    Random rng(3);
    for (auto _ : state) {
        CoreId src = static_cast<CoreId>(rng.below(64));
        CoreId dst = static_cast<CoreId>(rng.below(64));
        fabric->send(src, dst, queue.curCycle(), [](Cycle) {});
        queue.run();
    }
}
BENCHMARK(BM_FabricUncontendedSend);

void
BM_GeneratorNext(benchmark::State &state)
{
    auto spec = workload::findWorkload("graph500");
    workload::AccessGenerator gen(spec, 0, 0, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_GeneratorNext);

void
BM_SystemStep(benchmark::State &state)
{
    // Whole-system throughput: accesses simulated per second.
    cpu::SystemConfig config;
    config.org.kind = core::OrgKind::Nocstar;
    config.org.numCores = 16;
    {
        cpu::AppConfig app_config;
        app_config.spec = workload::testWorkload();
        app_config.threads = 16;
        config.apps.push_back(std::move(app_config));
    }
    for (auto _ : state) {
        state.PauseTiming();
        cpu::System system(config);
        state.ResumeTiming();
        system.run(1000);
    }
    state.SetItemsProcessed(state.iterations() * 16000);
}
BENCHMARK(BM_SystemStep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
