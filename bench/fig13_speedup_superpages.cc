/**
 * @file
 * Fig 13: companion to Fig 12 with Linux-style transparent 2 MB
 * superpages enabled (50-80 % of each workload's footprint is
 * superpage-backed).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    constexpr unsigned cores = 16;
    std::uint64_t accesses = argc > 1
        ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 12000;

    std::printf("Fig 13: speedup vs private L2 TLBs, 16 cores, "
                "transparent superpages\n");
    bench::printHeader("workload",
                       {"mono", "dist", "nocstar", "ideal"});

    const core::OrgKind kinds[] = {
        core::OrgKind::MonolithicMesh, core::OrgKind::Distributed,
        core::OrgKind::Nocstar, core::OrgKind::IdealShared};

    std::vector<double> averages(4, 0.0);
    for (const auto &spec : workload::paperWorkloads()) {
        auto priv = bench::runOnce(
            bench::makeConfig(core::OrgKind::Private, cores, spec),
            accesses);
        std::vector<double> row;
        for (std::size_t i = 0; i < 4; ++i) {
            auto result = bench::runOnce(
                bench::makeConfig(kinds[i], cores, spec), accesses);
            double speedup = bench::speedupVsPrivate(priv, result);
            row.push_back(speedup);
            averages[i] += speedup / 11.0;
        }
        bench::printRow(spec.name, row);
    }
    bench::printRow("average", averages);
    return 0;
}
