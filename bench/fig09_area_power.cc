/**
 * @file
 * Fig 9: per-tile power and area of the NOCSTAR interconnect
 * components versus the co-located L2 TLB SRAM slice (28 nm TSMC,
 * 0.5 ns target clock), plus the Table II area-normalization this
 * budget implies.
 */

#include <cstdio>
#include <initializer_list>

#include "bench/arg_parser.hh"
#include "energy/area.hh"

using namespace nocstar;
using energy::TileAreaReport;

int
main(int argc, char **argv)
{
    nocstar::bench::ArgParser parser(
        "fig09_area_power",
        "Fig 9: place-and-routed NOCSTAR tile area/power budget");
    parser.parseOrExit(argc, argv);
    std::printf("Fig 9: place-and-routed NOCSTAR tile budget (28 nm, "
                "2 GHz)\n");
    std::printf("%-14s %14s %12s\n", "component", "power (mW)",
                "area (mm^2)");
    for (const auto &c :
         {TileAreaReport::tileSwitch, TileAreaReport::arbiters,
          TileAreaReport::sramTlb}) {
        std::printf("%-14s %14.2f %12.4f\n", c.name, c.powerMw,
                    c.areaMm2);
    }
    std::printf("\ninterconnect area / tile TLB SRAM area: %.2f %%\n",
                100.0 * TileAreaReport::interconnectAreaFraction());
    std::printf("area-equivalent slice for a 1024-entry private L2 "
                "TLB: %llu entries (Table II)\n",
                static_cast<unsigned long long>(
                    TileAreaReport::areaEquivalentSliceEntries(1024)));
    return 0;
}
