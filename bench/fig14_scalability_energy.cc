/**
 * @file
 * Fig 14: (left) average / min / max speedups of the shared
 * organizations versus private L2 TLBs for 16/32/64-core systems with
 * transparent superpages; (right) percent of address-translation
 * energy saved versus the private baseline.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    std::uint64_t base_accesses = argc > 1
        ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 10000;

    const core::OrgKind kinds[] = {core::OrgKind::MonolithicMesh,
                                   core::OrgKind::Distributed,
                                   core::OrgKind::Nocstar};
    const char *names[] = {"monolithic", "distributed", "nocstar"};

    std::printf("Fig 14: scalability and translation energy savings\n");
    std::printf("%8s %-12s %8s %8s %8s %14s\n", "cores", "org", "min",
                "avg", "max", "energy saved%");

    for (unsigned cores : {16u, 32u, 64u}) {
        std::uint64_t accesses = base_accesses * 16 / cores + 2000;
        // Private baselines per workload.
        std::vector<cpu::RunResult> priv;
        for (const auto &spec : workload::paperWorkloads())
            priv.push_back(bench::runOnce(
                bench::makeConfig(core::OrgKind::Private, cores, spec),
                accesses));

        for (std::size_t k = 0; k < 3; ++k) {
            double min_speedup = 1e9, max_speedup = 0, avg_speedup = 0;
            double avg_saved = 0;
            for (std::size_t w = 0; w < priv.size(); ++w) {
                auto result = bench::runOnce(
                    bench::makeConfig(kinds[k], cores,
                                      workload::paperWorkloads()[w]),
                    accesses);
                double speedup =
                    bench::speedupVsPrivate(priv[w], result);
                min_speedup = std::min(min_speedup, speedup);
                max_speedup = std::max(max_speedup, speedup);
                avg_speedup += speedup / 11.0;
                avg_saved += 100.0 *
                             (1.0 - result.energyPj /
                                        priv[w].energyPj) /
                             11.0;
            }
            std::printf("%8u %-12s %8.3f %8.3f %8.3f %14.1f\n", cores,
                        names[k], min_speedup, avg_speedup,
                        max_speedup, avg_saved);
        }
    }
    return 0;
}
