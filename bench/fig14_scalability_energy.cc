/**
 * @file
 * Fig 14: (left) average / min / max speedups of the shared
 * organizations versus private L2 TLBs for 16/32/64-core systems with
 * transparent superpages; (right) percent of address-translation
 * energy saved versus the private baseline.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    auto args = bench::parseBenchArgs(argc, argv, 10000);

    const unsigned coreCounts[] = {16u, 32u, 64u};
    const core::OrgKind kinds[] = {core::OrgKind::MonolithicMesh,
                                   core::OrgKind::Distributed,
                                   core::OrgKind::Nocstar};
    const char *names[] = {"monolithic", "distributed", "nocstar"};

    // Per core count: 11 private baselines then 3 x 11 shared runs,
    // all independent. Index layout within a core-count block:
    // [w] private, [11 + k*11 + w] shared org k on workload w.
    const auto &specs = workload::paperWorkloads();
    const std::size_t numSpecs = specs.size();
    const std::size_t block = numSpecs * 4;

    std::vector<bench::SimJob> jobs;
    for (unsigned cores : coreCounts) {
        std::uint64_t accesses = args.accesses * 16 / cores + 2000;
        for (const auto &spec : specs)
            jobs.push_back({bench::makeConfig(core::OrgKind::Private,
                                              cores, spec),
                            accesses});
        for (core::OrgKind kind : kinds)
            for (const auto &spec : specs)
                jobs.push_back(
                    {bench::makeConfig(kind, cores, spec), accesses});
    }

    bench::SweepHarness harness("fig14_scalability_energy", args.jobs);
    auto results = harness.runMany(jobs);

    std::printf("Fig 14: scalability and translation energy savings\n");
    std::printf("%8s %-12s %8s %8s %8s %14s\n", "cores", "org", "min",
                "avg", "max", "energy saved%");

    for (std::size_t c = 0; c < 3; ++c) {
        const cpu::RunResult *base = results.data() + c * block;
        for (std::size_t k = 0; k < 3; ++k) {
            const cpu::RunResult *shared =
                base + numSpecs * (1 + k);
            double min_speedup = 1e9, max_speedup = 0, avg_speedup = 0;
            double avg_saved = 0;
            for (std::size_t w = 0; w < numSpecs; ++w) {
                double speedup =
                    bench::speedupVsPrivate(base[w], shared[w]);
                min_speedup = std::min(min_speedup, speedup);
                max_speedup = std::max(max_speedup, speedup);
                avg_speedup += speedup / 11.0;
                avg_saved += 100.0 *
                             (1.0 - shared[w].energyPj /
                                        base[w].energyPj) /
                             11.0;
            }
            std::printf("%8u %-12s %8.3f %8.3f %8.3f %14.1f\n",
                        coreCounts[c], names[k], min_speedup,
                        avg_speedup, max_speedup, avg_saved);
        }
    }
    return 0;
}
