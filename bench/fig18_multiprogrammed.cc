/**
 * @file
 * Fig 18: multiprogrammed combinations of sequential workloads on a
 * 32-core system. All C(11,4) = 330 combinations of four applications
 * (8 threads each). Top: overall throughput speedup versus private L2
 * TLBs, sorted per organization. Bottom: the speedup of the
 * worst-performing application in each combination.
 *
 * Output prints the sorted curves at sampled percentiles plus the
 * headline statistics the paper quotes (fraction of combinations
 * degraded, worst case). The 1,320 simulations are independent and
 * run across the sweep thread pool.
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

void
printCurve(const char *label, std::vector<double> values)
{
    if (values.empty()) {
        std::printf("%-12s (no data)\n", label);
        return;
    }
    std::sort(values.begin(), values.end());
    std::printf("%-12s", label);
    for (double pct : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        auto idx = static_cast<std::size_t>(
            pct * static_cast<double>(values.size() - 1));
        std::printf("%9.3f", values[idx]);
    }
    double degraded = 0;
    for (double v : values)
        degraded += v < 1.0 ? 1 : 0;
    std::printf("  degraded: %4.1f%%\n",
                100.0 * degraded / static_cast<double>(values.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    auto args = bench::parseBenchArgs(argc, argv, 2500);

    // Enumerate all C(11,4) combinations.
    std::vector<std::array<std::size_t, 4>> combos;
    for (std::size_t a = 0; a < 11; ++a)
        for (std::size_t b = a + 1; b < 11; ++b)
            for (std::size_t c = b + 1; c < 11; ++c)
                for (std::size_t d = c + 1; d < 11; ++d)
                    combos.push_back({a, b, c, d});
    std::printf("Fig 18: %zu multiprogrammed combinations, 32 cores\n",
                combos.size());

    // Per combo: the private baseline then the three shared
    // organizations, every simulation independent of the rest.
    const core::OrgKind kinds[] = {
        core::OrgKind::Private, core::OrgKind::MonolithicMesh,
        core::OrgKind::Distributed, core::OrgKind::Nocstar};
    const char *names[] = {"monolithic", "distributed", "nocstar"};
    constexpr std::size_t numKinds = 4;

    std::vector<bench::SimJob> jobs;
    for (const auto &combo : combos)
        for (core::OrgKind kind : kinds)
            jobs.push_back({bench::makeMixConfig(combo, kind, 32),
                            args.accesses});

    bench::SweepHarness harness("fig18_multiprogrammed", args.jobs);
    auto results = harness.runMany(jobs);

    std::vector<std::vector<double>> throughput(3), min_app(3);
    for (std::size_t c = 0; c < combos.size(); ++c) {
        const auto &priv = results[c * numKinds];
        for (std::size_t k = 0; k < 3; ++k) {
            const auto &result = results[c * numKinds + 1 + k];
            throughput[k].push_back(priv.meanCycles /
                                    result.meanCycles);
            double min_ratio = 1e9;
            for (std::size_t a = 0; a < 4; ++a) {
                double ratio = result.appIpc[a] > 0
                    ? result.appIpc[a] / priv.appIpc[a]
                    : 0.0;
                min_ratio = std::min(min_ratio, ratio);
            }
            min_app[k].push_back(min_ratio);
        }
    }

    std::printf("\nOverall throughput speedup (sorted percentiles)\n");
    std::printf("%-12s%9s%9s%9s%9s%9s%9s%9s\n", "org", "min", "p10",
                "p25", "p50", "p75", "p90", "max");
    for (std::size_t k = 0; k < 3; ++k)
        printCurve(names[k], throughput[k]);

    std::printf("\nMinimum achieved per-app speedup (sorted "
                "percentiles)\n");
    std::printf("%-12s%9s%9s%9s%9s%9s%9s%9s\n", "org", "min", "p10",
                "p25", "p50", "p75", "p90", "max");
    for (std::size_t k = 0; k < 3; ++k)
        printCurve(names[k], min_app[k]);
    return 0;
}
