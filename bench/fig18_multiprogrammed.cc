/**
 * @file
 * Fig 18: multiprogrammed combinations of sequential workloads on a
 * 32-core system. All C(11,4) = 330 combinations of four applications
 * (8 threads each). Top: overall throughput speedup versus private L2
 * TLBs, sorted per organization. Bottom: the speedup of the
 * worst-performing application in each combination.
 *
 * Output prints the sorted curves at sampled percentiles plus the
 * headline statistics the paper quotes (fraction of combinations
 * degraded, worst case).
 */

#include <algorithm>
#include <array>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

struct ComboResult
{
    double throughputSpeedup;
    double minAppSpeedup;
};

ComboResult
runCombo(const std::array<std::size_t, 4> &combo, core::OrgKind kind,
         const cpu::RunResult &priv_result, std::uint64_t accesses)
{
    cpu::SystemConfig config;
    config.org.kind = kind;
    config.org.numCores = 32;
    config.org.banks = bench::banksFor(32);
    for (std::size_t w : combo) {
        cpu::AppConfig app;
        app.spec = workload::paperWorkloads()[w];
        app.threads = 8;
        config.apps.push_back(std::move(app));
    }
    config.seed = 9000 + combo[0] * 1331 + combo[1] * 121 +
                  combo[2] * 11 + combo[3];
    cpu::System system(config);
    auto result = system.run(accesses);

    ComboResult out;
    out.throughputSpeedup = priv_result.meanCycles / result.meanCycles;
    double min_ratio = 1e9;
    for (std::size_t a = 0; a < 4; ++a) {
        double ratio = result.appIpc[a] > 0
            ? result.appIpc[a] / priv_result.appIpc[a]
            : 0.0;
        min_ratio = std::min(min_ratio, ratio);
    }
    out.minAppSpeedup = min_ratio;
    return out;
}

void
printCurve(const char *label, std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    std::printf("%-12s", label);
    for (double pct : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        auto idx = static_cast<std::size_t>(
            pct * static_cast<double>(values.size() - 1));
        std::printf("%9.3f", values[idx]);
    }
    double degraded = 0;
    for (double v : values)
        degraded += v < 1.0 ? 1 : 0;
    std::printf("  degraded: %4.1f%%\n",
                100.0 * degraded / static_cast<double>(values.size()));
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t accesses = argc > 1
        ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 2500;

    // Enumerate all C(11,4) combinations.
    std::vector<std::array<std::size_t, 4>> combos;
    for (std::size_t a = 0; a < 11; ++a)
        for (std::size_t b = a + 1; b < 11; ++b)
            for (std::size_t c = b + 1; c < 11; ++c)
                for (std::size_t d = c + 1; d < 11; ++d)
                    combos.push_back({a, b, c, d});
    std::printf("Fig 18: %zu multiprogrammed combinations, 32 cores\n",
                combos.size());

    const core::OrgKind kinds[] = {core::OrgKind::MonolithicMesh,
                                   core::OrgKind::Distributed,
                                   core::OrgKind::Nocstar};
    const char *names[] = {"monolithic", "distributed", "nocstar"};

    std::vector<std::vector<double>> throughput(3), min_app(3);
    for (const auto &combo : combos) {
        // Private baseline for this combination.
        cpu::SystemConfig priv_config;
        priv_config.org.kind = core::OrgKind::Private;
        priv_config.org.numCores = 32;
        for (std::size_t w : combo) {
            cpu::AppConfig app;
            app.spec = workload::paperWorkloads()[w];
            app.threads = 8;
            priv_config.apps.push_back(std::move(app));
        }
        priv_config.seed = 9000 + combo[0] * 1331 + combo[1] * 121 +
                           combo[2] * 11 + combo[3];
        cpu::System priv_system(priv_config);
        auto priv_result = priv_system.run(accesses);

        for (std::size_t k = 0; k < 3; ++k) {
            ComboResult r = runCombo(combo, kinds[k], priv_result,
                                     accesses);
            throughput[k].push_back(r.throughputSpeedup);
            min_app[k].push_back(r.minAppSpeedup);
        }
    }

    std::printf("\nOverall throughput speedup (sorted percentiles)\n");
    std::printf("%-12s%9s%9s%9s%9s%9s%9s%9s\n", "org", "min", "p10",
                "p25", "p50", "p75", "p90", "max");
    for (std::size_t k = 0; k < 3; ++k)
        printCurve(names[k], throughput[k]);

    std::printf("\nMinimum achieved per-app speedup (sorted "
                "percentiles)\n");
    std::printf("%-12s%9s%9s%9s%9s%9s%9s%9s\n", "org", "min", "p10",
                "p25", "p50", "p75", "p90", "max");
    for (std::size_t k = 0; k < 3; ++k)
        printCurve(names[k], min_app[k]);
    return 0;
}
