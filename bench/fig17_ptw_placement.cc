/**
 * @file
 * Fig 17: page-table walks performed at the requesting core versus at
 * the remote core that owns the missing slice, for 16/32/64-core
 * NOCSTAR systems (speedups vs private L2 TLBs).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 8000,
        "Fig 17: page-table-walker placement (local vs remote walk)");
    std::uint64_t base_accesses = args.accesses;

    const char *focus[] = {"canneal", "graph500", "gups", "xsbench"};

    std::printf("Fig 17: page walk placement, speedup vs private\n");
    std::printf("%8s %-12s %10s %10s\n", "cores", "workload",
                "request", "remote");
    for (unsigned cores : {16u, 32u, 64u}) {
        std::uint64_t accesses = base_accesses * 16 / cores + 2000;
        double avg[2] = {0, 0};
        for (const char *name : focus) {
            const auto &spec = workload::findWorkload(name);
            auto priv = bench::runOnce(
                bench::makeConfig(core::OrgKind::Private, cores, spec),
                accesses);
            double speedups[2];
            int i = 0;
            for (auto placement : {core::PtwPlacement::Requester,
                                   core::PtwPlacement::Remote}) {
                auto config = bench::makeConfig(core::OrgKind::Nocstar,
                                                cores, spec);
                config.org.ptwPlacement = placement;
                auto result = bench::runOnce(config, accesses);
                speedups[i] = bench::speedupVsPrivate(priv, result);
                avg[i] += speedups[i] / 4.0;
                ++i;
            }
            std::printf("%8u %-12s %10.3f %10.3f\n", cores, name,
                        speedups[0], speedups[1]);
        }
        std::printf("%8u %-12s %10.3f %10.3f\n", cores, "average",
                    avg[0], avg[1]);
    }
    return 0;
}
