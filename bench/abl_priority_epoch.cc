/**
 * @file
 * Ablation (§III-B2): the arbitration priority rotation epoch. The
 * paper rotates the chip-wide static priority every 1000 cycles to
 * avoid starvation; this sweep measures fabric fairness (worst-case
 * retries) and performance across epochs under a hot-slice load.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "core/nocstar_org.hh"

using namespace nocstar;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, 5000,
        "NOCSTAR rotating-priority epoch sweep (gups, 64 cores)");
    std::uint64_t accesses = args.accesses;

    const auto &spec = workload::findWorkload("gups");

    std::printf("Ablation: priority rotation epoch (gups, 32 cores, "
                "hot slice 0)\n");
    std::printf("%10s %12s %12s %14s\n", "epoch", "speedup",
                "avg net lat", "max retries");
    auto priv_config =
        bench::makeConfig(core::OrgKind::Private, 32, spec);
    priv_config.hotspotSlice = 0;
    auto priv = bench::runOnce(priv_config, accesses);

    for (Cycle epoch : {10u, 100u, 1000u, 10000u, 1000000u}) {
        auto config = bench::makeConfig(core::OrgKind::Nocstar, 32,
                                        spec);
        config.org.priorityEpoch = epoch;
        config.hotspotSlice = 0; // concentrate contention
        cpu::System system(config);
        auto result = system.run(accesses);
        auto &org =
            dynamic_cast<core::NocstarOrg &>(system.organization());
        std::printf("%10llu %12.3f %12.2f %14.0f\n",
                    static_cast<unsigned long long>(epoch),
                    priv.meanCycles / result.meanCycles,
                    org.fabric().averageLatency(),
                    org.fabric().retryDistribution.maxSample());
    }
    return 0;
}
