/**
 * @file
 * Sampled-simulation accuracy and speedup study on the Fig 12
 * configurations (16 cores, 4 KB pages): one long full-detail run per
 * organization against a SMARTS-style sampled run (functional
 * fast-forward between detail windows), reporting wall-clock speedup
 * and the relative error of the sampled IPC and L2-latency estimates.
 *
 * The NOCSTAR row at the full run length is the CI gate: the bench
 * exits nonzero if its speedup falls below 5x or its errors exceed
 * the tolerances, and the row lands in BENCH_sample.json, which CI
 * also checks in committed form. The shorter per-organization rows
 * feed the EXPERIMENTS.md error table.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hh"

using namespace nocstar;

namespace
{

/** Sampling plan used for every row (1% detail at the gated length). */
constexpr unsigned kWindows = 10;
constexpr std::uint64_t kDetailAccesses = 2000;
constexpr std::uint64_t kWarmupAccesses = 10000;

/** CI gates on the full-length NOCSTAR row. */
constexpr double kSpeedupFloor = 5.0;
constexpr double kMaxIpcError = 0.10;
constexpr double kMaxLatencyError = 0.05;

struct Row
{
    const char *org;
    std::uint64_t accesses;
    double fullSeconds;
    double sampledSeconds;
    double speedup;
    double fullIpc;
    double sampledIpc;
    double sampledIpcCi95;
    double ipcError;
    double fullLatency;
    double sampledLatency;
    double sampledLatencyCi95;
    double latencyError;
};

double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

Row
measure(const char *name, core::OrgKind kind, std::uint64_t accesses)
{
    const auto &spec = workload::paperWorkloads()[0];
    cpu::SystemConfig config =
        bench::makeConfig(kind, 16, spec, /*superpages=*/false);

    auto start = std::chrono::steady_clock::now();
    cpu::RunResult full = bench::runOnce(config, accesses);
    double full_seconds = wallSeconds(start);

    cpu::SystemConfig sampled_config = config;
    sampled_config.sampling.windows = kWindows;
    sampled_config.sampling.detailAccesses = kDetailAccesses;
    sampled_config.sampling.warmupAccesses = kWarmupAccesses;
    start = std::chrono::steady_clock::now();
    cpu::RunResult sampled = bench::runOnce(sampled_config, accesses);
    double sampled_seconds = wallSeconds(start);

    Row row;
    row.org = name;
    row.accesses = accesses;
    row.fullSeconds = full_seconds;
    row.sampledSeconds = sampled_seconds;
    row.speedup =
        sampled_seconds > 0 ? full_seconds / sampled_seconds : 0;
    row.fullIpc = full.ipc;
    row.sampledIpc = sampled.sampledIpcMean;
    row.sampledIpcCi95 = sampled.sampledIpcCi95;
    row.ipcError = full.ipc > 0
                       ? std::abs(sampled.sampledIpcMean - full.ipc) /
                             full.ipc
                       : 0;
    row.fullLatency = full.avgL2AccessLatency;
    row.sampledLatency = sampled.sampledLatencyMean;
    row.sampledLatencyCi95 = sampled.sampledLatencyCi95;
    row.latencyError =
        full.avgL2AccessLatency > 0
            ? std::abs(sampled.sampledLatencyMean -
                       full.avgL2AccessLatency) /
                  full.avgL2AccessLatency
            : 0;
    return row;
}

void
printRow(const Row &r)
{
    std::printf("%-12s %9llu %8.2fs %8.2fs %7.2fx "
                "%6.3f %6.3f+-%.3f %5.1f%% "
                "%6.1f %6.1f+-%.1f %5.1f%%\n",
                r.org, static_cast<unsigned long long>(r.accesses),
                r.fullSeconds, r.sampledSeconds, r.speedup, r.fullIpc,
                r.sampledIpc, r.sampledIpcCi95, 100 * r.ipcError,
                r.fullLatency, r.sampledLatency, r.sampledLatencyCi95,
                100 * r.latencyError);
}

void
jsonRow(std::FILE *f, const Row &r, bool first)
{
    std::fprintf(
        f,
        "%s{\"org\": \"%s\", \"accesses\": %llu, "
        "\"full_seconds\": %.3f, \"sampled_seconds\": %.3f, "
        "\"speedup\": %.3f, "
        "\"full_ipc\": %.4f, \"sampled_ipc\": %.4f, "
        "\"sampled_ipc_ci95\": %.4f, \"ipc_rel_error\": %.4f, "
        "\"full_latency\": %.2f, \"sampled_latency\": %.2f, "
        "\"sampled_latency_ci95\": %.2f, \"latency_rel_error\": %.4f}",
        first ? "" : ", ", r.org,
        static_cast<unsigned long long>(r.accesses), r.fullSeconds,
        r.sampledSeconds, r.speedup, r.fullIpc, r.sampledIpc,
        r.sampledIpcCi95, r.ipcError, r.fullLatency, r.sampledLatency,
        r.sampledLatencyCi95, r.latencyError);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args{/*accesses=*/2000000, /*jobs=*/1};
    bench::ArgParser parser = bench::makeBenchParser(
        argc, argv,
        "sampled-simulation accuracy and speedup on Fig 12 configs",
        args);
    bench::finalizeBenchArgs(parser, argc, argv, args);

    std::printf("Sampled simulation vs full detail, 16 cores, 4 KB "
                "pages, %u windows x %llu accesses/thread detail\n",
                kWindows,
                static_cast<unsigned long long>(kDetailAccesses));
    std::printf("%-12s %9s %9s %9s %8s %6s %12s %6s %6s %11s %6s\n",
                "org", "accesses", "full", "sampled", "speedup", "ipc",
                "ipc est", "err", "lat", "lat est", "err");

    // The gated row: the paper's headline organization at the full
    // run length, where fast-forward dominates wall clock.
    std::fprintf(stderr, "[sampling_accuracy] gated NOCSTAR run, %llu "
                         "accesses per thread...\n",
                 static_cast<unsigned long long>(args.accesses));
    Row gate = measure("nocstar", core::OrgKind::Nocstar,
                       args.accesses);
    printRow(gate);

    // Per-organization error table at an eighth of the length (the
    // errors are window-count dominated, not length dominated).
    struct Kind
    {
        const char *name;
        core::OrgKind kind;
    };
    const Kind kinds[] = {
        {"private", core::OrgKind::Private},
        {"monolithic", core::OrgKind::MonolithicMesh},
        {"distributed", core::OrgKind::Distributed},
        {"nocstar", core::OrgKind::Nocstar},
        {"ideal", core::OrgKind::IdealShared},
    };
    std::vector<Row> rows;
    for (const Kind &k : kinds) {
        std::fprintf(stderr, "[sampling_accuracy] %s error row...\n",
                     k.name);
        rows.push_back(measure(k.name, k.kind, args.accesses / 8));
        printRow(rows.back());
    }

    if (std::FILE *f = std::fopen("BENCH_sample.json", "w")) {
        std::fprintf(f, "{\"bench\": \"sampling_accuracy\", "
                        "\"windows\": %u, \"detail_accesses\": %llu, "
                        "\"warmup_accesses\": %llu, "
                        "\"speedup_floor\": %.1f, "
                        "\"max_ipc_rel_error\": %.2f, "
                        "\"max_latency_rel_error\": %.2f, "
                        "\"gate\": ",
                     kWindows,
                     static_cast<unsigned long long>(kDetailAccesses),
                     static_cast<unsigned long long>(kWarmupAccesses),
                     kSpeedupFloor, kMaxIpcError, kMaxLatencyError);
        jsonRow(f, gate, true);
        std::fprintf(f, ", \"rows\": [");
        for (std::size_t i = 0; i < rows.size(); ++i)
            jsonRow(f, rows[i], i == 0);
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::fprintf(stderr,
                     "[sampling_accuracy] wrote BENCH_sample.json\n");
    } else {
        std::fprintf(stderr,
                     "[sampling_accuracy] cannot write "
                     "BENCH_sample.json\n");
        return 1;
    }

    bool ok = true;
    if (gate.speedup < kSpeedupFloor) {
        std::fprintf(stderr,
                     "[sampling_accuracy] FAIL: speedup %.2fx below "
                     "the %.1fx floor\n",
                     gate.speedup, kSpeedupFloor);
        ok = false;
    }
    if (gate.ipcError > kMaxIpcError) {
        std::fprintf(stderr,
                     "[sampling_accuracy] FAIL: IPC error %.1f%% "
                     "above %.0f%%\n",
                     100 * gate.ipcError, 100 * kMaxIpcError);
        ok = false;
    }
    if (gate.latencyError > kMaxLatencyError) {
        std::fprintf(stderr,
                     "[sampling_accuracy] FAIL: latency error %.1f%% "
                     "above %.0f%%\n",
                     100 * gate.latencyError, 100 * kMaxLatencyError);
        ok = false;
    }
    return ok ? 0 : 1;
}
