/**
 * @file
 * Table II: the simulated last-level TLB configurations -- entry
 * counts, physical organization and interconnect -- as instantiated by
 * this library for a given core count.
 */

#include <cstdio>
#include <initializer_list>

#include "bench/arg_parser.hh"
#include "core/config.hh"
#include "energy/area.hh"
#include "energy/sram_model.hh"

using namespace nocstar;
using namespace nocstar::core;

int
main(int argc, char **argv)
{
    unsigned cores = 32;
    bench::ArgParser parser(
        "tab2_configurations",
        "Table II: simulated last-level TLB configurations");
    parser.positional("CORES", &cores, "core count (default 32)");
    parser.parseOrExit(argc, argv);
    unsigned banks = cores >= 64 ? 8 : 4;

    std::printf("Table II: simulated TLB configurations (%u cores)\n",
                cores);
    std::printf("%-14s %16s %18s %-22s %8s\n", "config",
                "L2 entries", "physical org", "interconnect",
                "lookup");

    OrgConfig config;
    config.numCores = cores;
    config.banks = banks;

    auto lookup = [](std::uint64_t entries) {
        return static_cast<unsigned long long>(
            energy::SramModel::accessLatency(entries));
    };

    std::printf("%-14s %16u %18s %-22s %8llu\n", "private", 1024u,
                "1 TLB per core", "-", lookup(1024));
    std::uint64_t total = 1024ull * cores;
    std::printf("%-14s %12llux%-3u %18s %-22s %8llu\n", "monolithic",
                1024ull, cores, "banked monolithic",
                "mesh (multi-hop), SMART", lookup(total / banks));
    std::printf("%-14s %12llux%-3u %18s %-22s %8llu\n", "distributed",
                1024ull, cores, "1 slice per core", "mesh (multi-hop)",
                lookup(1024));
    std::uint64_t slice =
        energy::TileAreaReport::areaEquivalentSliceEntries(1024);
    std::printf("%-14s %12llux%-3u %18s %-22s %8llu\n", "NOCSTAR",
                static_cast<unsigned long long>(slice), cores,
                "1 slice per core", "NOCSTAR fabric", lookup(slice));
    std::printf("\nmonolithic banks: %u; NOCSTAR slice is "
                "area-equivalent (interconnect area deducted)\n",
                banks);
    return 0;
}
